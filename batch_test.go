package passivespread

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// scenarioSpec builds a Config-form StudySpec from a registered scenario
// preset, resolving the grid values the way a sweep cell would.
func scenarioSpec(t *testing.T, name string, n int, seed uint64) StudySpec {
	t.Helper()
	sc, ok := ScenarioByName(name)
	if !ok {
		t.Fatalf("scenario %q is not registered", name)
	}
	cfg := sc.config(n, SampleSize(n), DefaultMaxRounds(n), EngineAgentFast, sc.Topology, 1, seed)
	return StudySpec{Config: &cfg}
}

// TestStudyBatchBitIdenticalMatrix is the batching acceptance contract:
// for lockstep-eligible configurations and for every fallback class
// (exact engine, aggregate engine, graph topologies), the StudyReport is
// byte-identical at every Workers × Batch combination — batching is
// scheduling, never semantics. Replicates is deliberately not a multiple
// of any batch width, so every run exercises a ragged final batch.
func TestStudyBatchBitIdenticalMatrix(t *testing.T) {
	regular, err := ParseTopology("random-regular:8")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec StudySpec
	}{
		{"fet-worst-case", StudySpec{Options: Options{N: 256, Seed: 99}}},
		{"correct-zero", StudySpec{Options: Options{N: 256, Seed: 13, CorrectZero: true}}},
		{"noisy", scenarioSpec(t, "noisy", 256, 31)},
		{"trend-flip", scenarioSpec(t, "trend-flip", 256, 32)},
		{"multi-source", scenarioSpec(t, "multi-source", 256, 33)},
		{"simple-trend", scenarioSpec(t, "simple-trend", 256, 34)},
		{"parallel-engine", StudySpec{Options: Options{N: 256, Seed: 7, Engine: EngineAgentParallel, Parallelism: 2}}},
		{"exact-engine-fallback", StudySpec{Options: Options{N: 96, Seed: 7, Engine: EngineAgentExact}}},
		{"aggregate-fallback", StudySpec{Options: Options{N: 512, Seed: 7, Engine: EngineAggregate}}},
		{"topology-fallback", StudySpec{Options: Options{N: 128, Seed: 7, Topology: regular}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := tc.spec
			spec.Replicates = 33
			var base *StudyReport
			for _, workers := range []int{1, 8} {
				for _, batch := range []int{1, 4, 32} {
					spec.Workers, spec.Batch = workers, batch
					report, err := mustStudy(t, spec).Run(context.Background())
					if err != nil {
						t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
					}
					if base == nil {
						base = report
						continue
					}
					if !reflect.DeepEqual(base, report) {
						t.Fatalf("workers=%d batch=%d: report differs from the sequential run", workers, batch)
					}
				}
			}
		})
	}
}

// TestStudyChainIgnoresBatch: the Markov-chain form runs per-replicate
// regardless of Batch, with identical reports.
func TestStudyChainIgnoresBatch(t *testing.T) {
	spec := StudySpec{
		Replicates: 9,
		Options:    Options{N: 100_000, Seed: 3, Engine: EngineMarkovChain},
	}
	base, err := mustStudy(t, spec).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spec.Batch = 32
	batched, err := mustStudy(t, spec).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, batched) {
		t.Fatal("chain study with Batch=32 differs from unbatched")
	}
}

// TestStudyBatchObserveFactory: per-replicate observers keep their own
// instances under batching, and each sees exactly its replicate's rounds.
func TestStudyBatchObserveFactory(t *testing.T) {
	const replicates = 19
	recorders := make([]*TrajectoryRecorder, replicates)
	study := mustStudy(t, StudySpec{
		Replicates: replicates,
		Workers:    4,
		Batch:      8,
		Options:    Options{N: 256, Seed: 17},
		Observe: func(i int) []Observer {
			recorders[i] = &TrajectoryRecorder{}
			return []Observer{recorders[i]}
		},
	})
	report, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recorders {
		if rec == nil {
			t.Fatalf("replicate %d never got its observer", i)
		}
		if got, want := len(rec.Xs), report.Results[i].Result.Rounds; got != want {
			t.Fatalf("replicate %d recorded %d rounds, executed %d", i, got, want)
		}
	}
}

// TestStudyBatchCancellation: cancelling mid-study stops a batched run
// within one simulated round, like the sequential path.
func TestStudyBatchCancellation(t *testing.T) {
	study := mustStudy(t, StudySpec{
		Replicates: 64,
		Batch:      32,
		Options: Options{
			N:         1 << 16,
			Seed:      5,
			Init:      HalfInit(), // never absorbs within the cap below
			MaxRounds: 1 << 30,
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = study.Run(ctx)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batched study did not stop promptly after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
}

// TestBatchValidation: the Batch knob is range-checked at every layer.
func TestBatchValidation(t *testing.T) {
	for _, batch := range []int{-1, MaxBatch + 1} {
		if _, err := NewStudy(StudySpec{Replicates: 4, Batch: batch, Options: Options{N: 64, Seed: 1}}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("NewStudy(Batch=%d): err = %v, want ErrInvalidOptions", batch, err)
		}
		if _, err := NewSweep(SweepSpec{Ns: []int{64}, Replicates: 4, Batch: batch, Seed: 1}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("NewSweep(Batch=%d): err = %v, want ErrInvalidOptions", batch, err)
		}
		if _, err := NewServer(ServeConfig{Batch: batch}); !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("NewServer(Batch=%d): err = %v, want ErrInvalidOptions", batch, err)
		}
	}
}

// TestSweepBatchBitIdentical: a sweep's rows are byte-identical with
// batching on — including across an engine axis where aggregate cells
// fall back to per-replicate runs — and a Batch above Replicates clamps
// instead of failing.
func TestSweepBatchBitIdentical(t *testing.T) {
	worst, _ := ScenarioByName(DefaultScenario)
	half, _ := ScenarioByName("half-split")
	noisy, _ := ScenarioByName("noisy")
	spec := SweepSpec{
		Ns:         []int{64, 128},
		Engines:    []EngineKind{EngineAgentFast, EngineAggregate},
		Scenarios:  []Scenario{worst, half, noisy},
		Replicates: 10,
		Workers:    4,
		Seed:       21,
	}
	run := func(batch int) *SweepReport {
		t.Helper()
		spec.Batch = batch
		sweep, err := NewSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(0)
	for _, batch := range []int{8, MaxBatch} {
		if got := run(batch); !reflect.DeepEqual(base, got) {
			t.Fatalf("sweep with Batch=%d differs from unbatched:\n%s\n%s", batch, base.CSV(), got.CSV())
		}
	}
}
