package passivespread

import (
	"context"
	"fmt"
	"testing"

	"passivespread/internal/checkpoint"
	"passivespread/internal/core"
	"passivespread/internal/dist"
	"passivespread/internal/experiment"
)

// benchExperiment runs one registered experiment per iteration in Quick
// mode. Each experiment reproduces one table/figure/lemma of the paper
// (see DESIGN.md §4); the full-size outputs recorded in EXPERIMENTS.md
// come from `fetlab -full`.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiment.Config{Seed: uint64(i) + 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Sections) == 0 && len(rep.Notes) == 0 {
			b.Fatalf("%s produced an empty report", id)
		}
	}
}

func BenchmarkE01ConvergenceScaling(b *testing.B) { benchExperiment(b, "E01") }
func BenchmarkE02DomainMap(b *testing.B)          { benchExperiment(b, "E02") }
func BenchmarkE03TransitionDiagram(b *testing.B)  { benchExperiment(b, "E03") }
func BenchmarkE04YellowPartition(b *testing.B)    { benchExperiment(b, "E04") }
func BenchmarkE05Green(b *testing.B)              { benchExperiment(b, "E05") }
func BenchmarkE06Purple(b *testing.B)             { benchExperiment(b, "E06") }
func BenchmarkE07Red(b *testing.B)                { benchExperiment(b, "E07") }
func BenchmarkE08Cyan(b *testing.B)               { benchExperiment(b, "E08") }
func BenchmarkE09YellowEscape(b *testing.B)       { benchExperiment(b, "E09") }
func BenchmarkE10CoinBounds(b *testing.B)         { benchExperiment(b, "E10") }
func BenchmarkE11Impossibility(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12ClockedBaseline(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13SampleAblation(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14FETvsSimple(b *testing.B)        { benchExperiment(b, "E14") }
func BenchmarkE15MultiSource(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16Engines(b *testing.B)            { benchExperiment(b, "E16") }
func BenchmarkE17Resources(b *testing.B)          { benchExperiment(b, "E17") }
func BenchmarkE18Baselines(b *testing.B)          { benchExperiment(b, "E18") }

// Extensions beyond the paper (E19–E22; see DESIGN.md §4).

func BenchmarkE19NoiseRobustness(b *testing.B) { benchExperiment(b, "E19") }
func BenchmarkE20Restabilization(b *testing.B) { benchExperiment(b, "E20") }
func BenchmarkE21MeanField(b *testing.B)       { benchExperiment(b, "E21") }
func BenchmarkE22AsyncScheduling(b *testing.B) { benchExperiment(b, "E22") }

// Micro-benchmarks of the performance-critical primitives.

// BenchmarkFETFullRun measures a complete dissemination at n = 4096 from
// the all-wrong start (the headline operation of the library).
func BenchmarkFETFullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Disseminate(Options{N: 4096, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkFETRoundByN measures the per-round cost of the agent engine.
func BenchmarkFETRoundByN(b *testing.B) {
	for _, n := range []int{1024, 16384, 131072} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ell := SampleSize(n)
			rounds := 0
			res, err := Run(Config{
				N:         n,
				Protocol:  NewFET(ell),
				Init:      FractionInit(0.5),
				Correct:   OpinionOne,
				Seed:      1,
				MaxRounds: b.N,
				RunToEnd:  true,
				Observers: []Observer{ObserverFunc(func(RoundEvent) error {
					rounds++
					return nil
				})},
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res
			b.ReportMetric(float64(n), "agents/round")
		})
	}
}

// BenchmarkEngineRound compares the per-round cost of the sequential
// fast engine, the sharded parallel engine, and the aggregate occupancy
// engine at n ∈ {10⁴, 10⁶}. Recorded results live in BENCH_engines.json.
func BenchmarkEngineRound(b *testing.B) {
	engines := []struct {
		name string
		kind EngineKind
	}{
		{"fast", EngineAgentFast},
		{"parallel", EngineAgentParallel},
		{"aggregate", EngineAggregate},
	}
	for _, n := range []int{10_000, 1_000_000} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("n=%d/%s", n, eng.name), func(b *testing.B) {
				ell := SampleSize(n)
				res, err := Run(Config{
					N:         n,
					Protocol:  NewFET(ell),
					Init:      FractionInit(0.5),
					Correct:   OpinionOne,
					Engine:    eng.kind,
					Seed:      1,
					MaxRounds: b.N,
					RunToEnd:  true,
					Observers: []Observer{ObserverFunc(func(ev RoundEvent) error {
						if ev.Round == 0 {
							// Exclude the O(n) population construction from
							// the per-round measurement (the aggregate
							// engine's setup is O(ℓ), which would otherwise
							// skew the comparison in its favor even further).
							b.ResetTimer()
						}
						return nil
					})},
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
				b.ReportMetric(float64(n), "agents/round")
			})
		}
	}
}

// BenchmarkTopologyStep measures the per-round cost of the agent engine
// across observation topologies at n = 10⁴: complete keeps the
// tabulated-binomial fast path (the pre-topology cost), the graph
// topologies pay literal neighbor reads, and dynamic rewiring adds the
// per-agent row-resampling stream. Recorded results live in
// BENCH_topology.json and are gated by the benchgate CI job.
func BenchmarkTopologyStep(b *testing.B) {
	topologies := []struct {
		name   string
		tp     Topology
		engine EngineKind
	}{
		{"complete", nil, EngineAgentFast},
		{"random-regular", RandomRegular(8), EngineAgentFast},
		{"small-world", SmallWorld(4, 0.1), EngineAgentFast},
		{"dynamic", DynamicRewire(8, 0.2), EngineAgentFast},
		// The occupancy-level sparse engine on the same random k-out
		// graph: per-round cost is O(k·ℓ²), independent of n.
		{"aggregate-sparse", RandomRegular(8), EngineAggregateSparse},
	}
	n := 10_000 // 100²: admissible for every built-in topology
	for _, tc := range topologies {
		b.Run(fmt.Sprintf("n=%d/%s", n, tc.name), func(b *testing.B) {
			ell := SampleSize(n)
			res, err := Run(Config{
				N:         n,
				Protocol:  NewFET(ell),
				Init:      FractionInit(0.5),
				Correct:   OpinionOne,
				Engine:    tc.engine,
				Topology:  tc.tp,
				Seed:      1,
				MaxRounds: b.N,
				RunToEnd:  true,
				Observers: []Observer{ObserverFunc(func(ev RoundEvent) error {
					if ev.Round == 0 {
						// Exclude population and graph construction from the
						// per-round measurement.
						b.ResetTimer()
					}
					return nil
				})},
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res
			b.ReportMetric(float64(n), "agents/round")
		})
	}
}

// BenchmarkReplicateAlloc measures the steady-state round loop of the
// agent engines with allocation reporting: after the bitset/pooling
// overhaul the loop runs at 0 allocs/round (packed opinions, in-place
// binomial retabulation, executor-owned parallel scratch, persistent
// shard workers), which the CI allocation gate enforces on this
// benchmark's allocs/op. Timing baselines live in BENCH_hotpath.json.
func BenchmarkReplicateAlloc(b *testing.B) {
	engines := []struct {
		name string
		kind EngineKind
		par  int
		tp   Topology
	}{
		{"fast", EngineAgentFast, 0, nil},
		{"parallel", EngineAgentParallel, 4, nil},
		// The frozen-graph fused path: per-agent packed rows, bind-time
		// whole-round popcounts and deferred homogeneous-round jumps must
		// all stay allocation-free in the steady state.
		{"fast-random-regular", EngineAgentFast, 0, RandomRegular(8)},
	}
	n := 16384
	for _, eng := range engines {
		b.Run(fmt.Sprintf("n=%d/%s", n, eng.name), func(b *testing.B) {
			b.ReportAllocs()
			ell := SampleSize(n)
			res, err := Run(Config{
				N:           n,
				Protocol:    NewFET(ell),
				Init:        FractionInit(0.5),
				Correct:     OpinionOne,
				Engine:      eng.kind,
				Parallelism: eng.par,
				Topology:    eng.tp,
				Seed:        1,
				MaxRounds:   b.N,
				RunToEnd:    true,
				Observers: []Observer{ObserverFunc(func(ev RoundEvent) error {
					if ev.Round == 0 {
						// Exclude replicate setup (population build, worker
						// spawn, table growth) so allocs/op and ns/op report
						// the steady-state per-round cost.
						b.ResetTimer()
					}
					return nil
				})},
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = res
			b.ReportMetric(float64(n), "agents/round")
		})
	}

	// The pooled-replicate shape: repeated same-shape leases from one
	// Study-style pool, measuring whole replicates with executor reuse.
	b.Run("pooled-study", func(b *testing.B) {
		study, err := NewStudy(StudySpec{
			Replicates: b.N,
			Workers:    1,
			Options:    Options{N: 4096, Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		report, err := study.Run(context.Background())
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if report.Convergence.Converged == 0 {
			b.Fatal("no replicate converged")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replicates/sec")
	})

	// The lockstep shape: 32 replicates per word through one transposed
	// executor. Steady state (the executor is built once, then reused per
	// batch) must average 0 allocs per replicate, which the CI allocation
	// gate enforces via the n= row-name convention.
	b.Run("n=4096/lockstep", func(b *testing.B) {
		study, err := NewStudy(StudySpec{
			Replicates: b.N,
			Workers:    1,
			Batch:      32,
			Options:    Options{N: 4096, Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		report, err := study.Run(context.Background())
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if report.Convergence.Converged == 0 {
			b.Fatal("no replicate converged")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replicates/sec")
	})
}

// BenchmarkAggregateWorstCase measures a complete worst-case
// dissemination (all-wrong start, corrupted memories) at n = 10⁸ on the
// occupancy engine — the run that is out of reach for the agent engines.
func BenchmarkAggregateWorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Disseminate(Options{
			N:      100_000_000,
			Seed:   uint64(i) + 1,
			Engine: EngineAggregate,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkChainStep measures one aggregate-chain step at n = 10^9: the
// O(ℓ) exact-probability path plus two BTRS binomial draws.
func BenchmarkChainStep(b *testing.B) {
	n := 1_000_000_000
	c := NewChain(n, core.SampleSize(n, core.DefaultC), 1)
	s := c.StateAt(0.4, 0.5)
	for i := 0; i < b.N; i++ {
		s = c.Step(s)
		if c.Absorbed(s) {
			s = c.StateAt(0.4, 0.5)
		}
	}
}

// BenchmarkCompete measures the exact competition-probability kernel that
// dominates chain stepping.
func BenchmarkCompete(b *testing.B) {
	ell := core.SampleSize(1<<20, core.DefaultC)
	var sink dist.Competition
	for i := 0; i < b.N; i++ {
		sink = dist.Compete(ell, 0.45, 0.55)
	}
	_ = sink
}

// BenchmarkStudyReplicates measures the batch throughput of the Study
// API — replicates per second per engine at fixed n = 4096, worst-case
// start, default worker pool — plus the lockstep rows: the same agent
// study with 8 and 32 replicates per word on a single worker, isolating
// the word-parallel speedup from worker-pool parallelism. Recorded
// results live in BENCH_study.json.
func BenchmarkStudyReplicates(b *testing.B) {
	engines := []struct {
		name string
		kind EngineKind
	}{
		{"fast", EngineAgentFast},
		{"parallel", EngineAgentParallel},
		{"aggregate", EngineAggregate},
		{"chain", EngineMarkovChain},
	}
	for _, eng := range engines {
		b.Run(eng.name, func(b *testing.B) {
			study, err := NewStudy(StudySpec{
				Replicates: b.N,
				Options:    Options{N: 4096, Seed: 1, Engine: eng.kind},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			report, err := study.Run(context.Background())
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if report.Convergence.Converged == 0 {
				b.Fatal("no replicate converged")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replicates/sec")
		})
	}
	for _, w := range []int{8, 32} {
		b.Run(fmt.Sprintf("lockstep-w%d", w), func(b *testing.B) {
			study, err := NewStudy(StudySpec{
				Replicates: b.N,
				Workers:    1,
				Batch:      w,
				Options:    Options{N: 4096, Seed: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			report, err := study.Run(context.Background())
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if report.Convergence.Converged == 0 {
				b.Fatal("no replicate converged")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "replicates/sec")
		})
	}
}

// BenchmarkSweepCheckpoint measures the per-cell cost the sweep fabric
// adds: "save" is the durable envelope write on the completion path
// (canonical JSON body, SHA-256 content address, temp file + rename);
// "resume-hit" is the verified load a resumed runner pays to skip a
// completed cell (filename hash, key, and body digest all re-checked).
// Both use a real cell's canonical key and row body so sizes are
// representative. Recorded baselines live in BENCH_sweep.json.
func BenchmarkSweepCheckpoint(b *testing.B) {
	spec := SweepSpec{
		Ns:         []int{4096},
		Engines:    []EngineKind{EngineMarkovChain},
		Scenarios:  mustScenarios("worst-case"),
		Replicates: 4,
		Seed:       17,
	}
	sw, err := NewSweep(spec)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := sw.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	art, err := sw.ShardArtifact(rep)
	if err != nil {
		b.Fatal(err)
	}
	key := art.Rows[0].Key
	body, err := sweepRowBody(art.Rows[0].Row)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("save", func(b *testing.B) {
		st, err := checkpoint.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Save(key, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resume-hit", func(b *testing.B) {
		st, err := checkpoint.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Save(key, body); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := st.Load(key); !ok {
				b.Fatal("checkpoint miss")
			}
		}
	})
}
