// Command benchgate is the CI benchmark-regression gate: it compares a
// `go test -bench` text run against the committed baseline JSON files
// (BENCH_engines.json, BENCH_study.json) and fails when any baselined
// benchmark's ns/op regresses beyond a threshold factor.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=200ms . | tee bench.txt
//	benchgate -input bench.txt -out bench-fresh.json [-threshold 2.5] BENCH_engines.json BENCH_study.json
//
// Baseline entries are matched by benchmark name: the baseline name
// "EngineRound/n=10000/fast" matches the output line
// "BenchmarkEngineRound/n=10000/fast-8" (the "Benchmark" prefix and the
// trailing -GOMAXPROCS tag are stripped). Each baseline entry's ns/op
// reference is its first "ns_per_*" field — the baselines record the
// semantic unit (per round, per replicate, per dissemination), but all
// of them equal the benchmark's ns/op by construction.
//
// The threshold is deliberately loose (default 2.5×): shared CI runners
// are noisy and single-core, so the gate catches structural regressions
// (an accidentally quadratic round loop, a lost fast path), not
// percent-level drift. Fresh measurements are always written to -out for
// upload as a workflow artifact, pass or fail.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the subset of the BENCH_*.json schema the gate reads.
type baselineFile struct {
	Description string                       `json:"description"`
	Benchmarks  []map[string]json.RawMessage `json:"benchmarks"`
}

// baseline is one committed reference measurement.
type baseline struct {
	name string  // benchmark name as in bench output, without Benchmark/-P
	ns   float64 // the entry's ns_per_* value
	file string  // which baseline file it came from
}

// measurement is one parsed `go test -bench` result line.
type measurement struct {
	name string
	ns   float64
}

// gateResult is one gated comparison, serialized into the artifact.
type gateResult struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	BaselineNs float64 `json:"baseline_ns_per_op,omitempty"`
	Ratio      float64 `json:"ratio,omitempty"`
	Baselined  bool    `json:"baselined"`
	OK         bool    `json:"ok"`
}

func main() {
	var (
		input     = flag.String("input", "", "path to `go test -bench` text output (required)")
		out       = flag.String("out", "", "path to write the fresh-measurement JSON artifact")
		threshold = flag.Float64("threshold", 2.5, "fail when fresh ns/op exceeds baseline × threshold")
	)
	flag.Parse()
	if *input == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate -input bench.txt [-out fresh.json] [-threshold 2.5] BASELINE.json...")
		os.Exit(2)
	}
	if *threshold <= 1 {
		fatalf("-threshold %v must be > 1", *threshold)
	}

	baselines, err := loadBaselines(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	measurements, err := parseBenchOutput(*input)
	if err != nil {
		fatalf("%v", err)
	}
	if len(measurements) == 0 {
		fatalf("%s contains no benchmark result lines", *input)
	}

	results, failures := gate(baselines, measurements, *threshold)
	if *out != "" {
		if err := writeArtifact(*out, *threshold, results); err != nil {
			fatalf("%v", err)
		}
	}
	for _, r := range results {
		if !r.Baselined {
			continue
		}
		status := "ok"
		if !r.OK {
			status = "REGRESSION"
		}
		fmt.Printf("%-45s %12.1f ns/op  baseline %12.1f  ratio %5.2f  %s\n",
			r.Name, r.NsPerOp, r.BaselineNs, r.Ratio, status)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s) beyond %gx:\n", len(failures), *threshold)
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("\nbenchgate: %d baselined benchmark(s) within %gx\n", countBaselined(results), *threshold)
}

func countBaselined(results []gateResult) int {
	n := 0
	for _, r := range results {
		if r.Baselined {
			n++
		}
	}
	return n
}

// loadBaselines reads every ns_per_* entry of the given BENCH_*.json
// files.
func loadBaselines(paths []string) ([]baseline, error) {
	var out []baseline
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var file baselineFile
		if err := json.Unmarshal(data, &file); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for i, entry := range file.Benchmarks {
			var name string
			if raw, ok := entry["name"]; ok {
				if err := json.Unmarshal(raw, &name); err != nil {
					return nil, fmt.Errorf("%s: benchmark %d: bad name: %v", path, i, err)
				}
			}
			if name == "" {
				return nil, fmt.Errorf("%s: benchmark %d has no name", path, i)
			}
			ns, ok, err := nsField(entry)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", path, name, err)
			}
			if !ok {
				return nil, fmt.Errorf("%s: %s has no ns_per_* field", path, name)
			}
			out = append(out, baseline{name: name, ns: ns, file: path})
		}
	}
	return out, nil
}

// nsField extracts the entry's single ns_per_* value.
func nsField(entry map[string]json.RawMessage) (float64, bool, error) {
	keys := make([]string, 0, len(entry))
	for k := range entry {
		if strings.HasPrefix(k, "ns_per_") {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return 0, false, nil
	}
	if len(keys) > 1 {
		sort.Strings(keys)
		return 0, false, fmt.Errorf("ambiguous ns fields %v", keys)
	}
	var ns float64
	if err := json.Unmarshal(entry[keys[0]], &ns); err != nil {
		return 0, false, err
	}
	if ns <= 0 {
		return 0, false, fmt.Errorf("%s = %v, want > 0", keys[0], ns)
	}
	return ns, true, nil
}

// parseBenchOutput extracts (name, ns/op) pairs from `go test -bench`
// text output lines of the form
//
//	BenchmarkEngineRound/n=10000/fast-8   4322   270149 ns/op   10000 agents/round
func parseBenchOutput(path string) ([]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []measurement
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		out = append(out, measurement{name: canonicalName(fields[0]), ns: ns})
	}
	return out, sc.Err()
}

// canonicalName strips the Benchmark prefix and the -GOMAXPROCS tag of
// the final path element, matching the committed baseline names.
func canonicalName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > strings.LastIndex(s, "/") {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// gate compares measurements against baselines. Every baseline must be
// present in the fresh run (a silently vanished benchmark would
// otherwise disable its own gate).
func gate(baselines []baseline, measurements []measurement, threshold float64) ([]gateResult, []string) {
	fresh := make(map[string]float64, len(measurements))
	for _, m := range measurements {
		fresh[m.name] = m.ns
	}
	var results []gateResult
	var failures []string
	matched := map[string]bool{}
	for _, b := range baselines {
		ns, ok := fresh[b.name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s (baselined in %s) missing from the bench run — renamed? update the baseline file", b.name, b.file))
			continue
		}
		matched[b.name] = true
		ratio := ns / b.ns
		r := gateResult{Name: b.name, NsPerOp: ns, BaselineNs: b.ns, Ratio: ratio, Baselined: true, OK: ratio <= threshold}
		results = append(results, r)
		if !r.OK {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.2fx > %gx)", b.name, ns, b.ns, ratio, threshold))
		}
	}
	// Record the un-baselined measurements in the artifact too, so a new
	// benchmark's first CI numbers are captured without gating them.
	for _, m := range measurements {
		if !matched[m.name] {
			results = append(results, gateResult{Name: m.name, NsPerOp: m.ns, OK: true})
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, failures
}

// writeArtifact renders the fresh measurements as the workflow artifact.
func writeArtifact(path string, threshold float64, results []gateResult) error {
	artifact := struct {
		Description string       `json:"description"`
		Threshold   float64      `json:"threshold"`
		Results     []gateResult `json:"results"`
	}{
		Description: "fresh benchmark measurements from the CI bench job (benchgate); baselined entries are gated against the committed BENCH_*.json references",
		Threshold:   threshold,
		Results:     results,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
