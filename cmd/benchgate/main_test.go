package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkEngineRound/n=10000/fast-8": "EngineRound/n=10000/fast",
		"BenchmarkStudyReplicates/chain-16":   "StudyReplicates/chain",
		"BenchmarkAggregateWorstCase-4":       "AggregateWorstCase",
		"BenchmarkCompete":                    "Compete",
		"BenchmarkFETRoundByN/n=1024-2":       "FETRoundByN/n=1024",
	}
	for in, want := range cases {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: passivespread
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineRound/n=10000/fast-8         	    4322	    270149 ns/op	     10000 agents/round
BenchmarkEngineRound/n=10000/aggregate-8    	 2951437	       406.4 ns/op	     10000 agents/round
BenchmarkStudyReplicates/chain-8            	  327000	      3660 ns/op	    273246 replicates/sec
PASS
ok  	passivespread	12.3s
`
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d measurements, want 3: %+v", len(got), got)
	}
	if got[0].name != "EngineRound/n=10000/fast" || got[0].ns != 270149 {
		t.Fatalf("measurement 0: %+v", got[0])
	}
	if got[1].ns != 406.4 {
		t.Fatalf("measurement 1: %+v", got[1])
	}
}

func writeBaseline(t *testing.T, entries string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	data := `{"description": "test", "benchmarks": [` + entries + `]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaselinesNsFieldVariants(t *testing.T) {
	path := writeBaseline(t, `
		{"name": "A", "ns_per_round": 100},
		{"name": "B", "ns_per_replicate": 250.5},
		{"name": "C", "ns_per_dissemination": 38722, "note": "x"}`)
	got, err := loadBaselines([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].ns != 100 || got[1].ns != 250.5 || got[2].ns != 38722 {
		t.Fatalf("baselines: %+v", got)
	}
}

func TestLoadBaselinesRejectsMalformed(t *testing.T) {
	for name, entries := range map[string]string{
		"no name":     `{"ns_per_round": 1}`,
		"no ns field": `{"name": "A", "note": "x"}`,
		"zero ns":     `{"name": "A", "ns_per_round": 0}`,
		"two ns":      `{"name": "A", "ns_per_round": 1, "ns_per_replicate": 2}`,
	} {
		if got, err := loadBaselines([]string{writeBaseline(t, entries)}); err == nil {
			t.Errorf("%s: accepted %+v", name, got)
		}
	}
}

func TestGate(t *testing.T) {
	baselines := []baseline{
		{name: "A", ns: 100, file: "f"},
		{name: "B", ns: 100, file: "f"},
		{name: "Gone", ns: 100, file: "f"},
	}
	measurements := []measurement{
		{name: "A", ns: 240},  // within 2.5x
		{name: "B", ns: 260},  // regression
		{name: "New", ns: 10}, // un-baselined, recorded not gated
	}
	results, failures := gate(baselines, measurements, 2.5)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want regression for B and missing Gone", failures)
	}
	if !strings.Contains(failures[0], "B:") || !strings.Contains(failures[1], "Gone") {
		t.Fatalf("failure messages: %v", failures)
	}
	byName := map[string]gateResult{}
	for _, r := range results {
		byName[r.Name] = r
	}
	if r := byName["A"]; !r.OK || !r.Baselined || r.Ratio != 2.4 {
		t.Fatalf("A: %+v", r)
	}
	if r := byName["B"]; r.OK {
		t.Fatalf("B passed: %+v", r)
	}
	if r := byName["New"]; r.Baselined || !r.OK {
		t.Fatalf("New: %+v", r)
	}
}

// TestGateAgainstCommittedBaselines parses the repository's real
// baseline files: the CI gate must never break because a committed
// schema drifted.
func TestGateAgainstCommittedBaselines(t *testing.T) {
	baselines, err := loadBaselines([]string{"../../BENCH_engines.json", "../../BENCH_study.json"})
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) < 10 {
		t.Fatalf("only %d committed baselines parsed", len(baselines))
	}
	names := map[string]bool{}
	for _, b := range baselines {
		names[b.name] = true
	}
	for _, want := range []string{
		"EngineRound/n=1000000/aggregate",
		"StudyReplicates/chain",
		"AggregateWorstCase",
	} {
		if !names[want] {
			t.Errorf("committed baselines missing %s", want)
		}
	}
}

func TestWriteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	results := []gateResult{{Name: "A", NsPerOp: 240, BaselineNs: 100, Ratio: 2.4, Baselined: true, OK: true}}
	if err := writeArtifact(path, 2.5, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Threshold float64      `json:"threshold"`
		Results   []gateResult `json:"results"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Threshold != 2.5 || len(back.Results) != 1 || back.Results[0].Name != "A" {
		t.Fatalf("artifact round trip: %+v", back)
	}
}
