// Command fetcheck is the repository's invariant multichecker: a
// go/analysis-style driver for the five repo-specific analyzers in
// internal/analysis (detrand, seedflow, rngmirror, hotpathalloc,
// errenvelope).
//
// Usage:
//
//	fetcheck [-run names] [packages]
//
// With no packages it checks ./.... Diagnostics print as
// file:line:col: analyzer: message, one per line; the exit status is
// 1 when any diagnostic fired, 2 on a driver failure (a package that
// does not type-check, a bad flag). CI runs it in the lint job next
// to vet and staticcheck; it must exit 0 on the repository.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"passivespread/internal/analysis"
	"passivespread/internal/analysis/fwk"
)

func main() {
	var runNames string
	var list bool
	flag.StringVar(&runNames, "run", "", "comma-separated analyzer names to run (default: all)")
	flag.BoolVar(&list, "list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fetcheck [-run names] [packages]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repository's invariant analyzers over the packages\n(default ./...). Exits 1 on any diagnostic.\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if list {
		for _, a := range analysis.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	var analyzers []*fwk.Analyzer
	if runNames != "" {
		for _, name := range strings.Split(runNames, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "fetcheck: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Check(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fetcheck: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fetcheck: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
