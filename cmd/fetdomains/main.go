// Command fetdomains renders the paper's state-space figures as ASCII
// maps: Figure 1a (the Green/Purple/Red/Cyan/Yellow partition of the grid
// G) and Figure 2 (the A/B/C partition of the Yellow′ box).
//
// Usage:
//
//	fetdomains [-n 1048576] [-delta 0.05] [-res 64] [-figure 1a|2|both]
package main

import (
	"flag"
	"fmt"
	"os"

	"passivespread"
)

func main() {
	var (
		n      = flag.Int("n", 1<<20, "population size (sets 1/log n and λ_n)")
		delta  = flag.Float64("delta", passivespread.DefaultDelta, "the paper's δ")
		res    = flag.Int("res", 64, "map resolution (lattice points per axis − 1)")
		figure = flag.String("figure", "both", "which figure to render: 1a, 2, or both")
	)
	flag.Parse()

	p := passivespread.DomainParams{N: *n, Delta: *delta}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("n = %d, δ = %v, 1/ln n = %.4f, λ_n = %.4f\n\n", *n, *delta, 1/p.LogN(), p.Lambda())

	if *figure == "1a" || *figure == "both" {
		fmt.Println("Figure 1a — domain partition of G (x_t →, x_{t+1} ↑)")
		fmt.Println("legend: G/g Green, P/p Purple, R/r Red, C/c Cyan, Y Yellow (upper case = 1-side)")
		fmt.Println()
		fmt.Print(p.RenderMap(*res))
		fmt.Println()
		counts := p.CountCells(*res)
		for _, k := range passivespread.DomainKinds() {
			if counts[k] > 0 {
				fmt.Printf("  %-8s %6d cells\n", k, counts[k])
			}
		}
		fmt.Println()
	}
	if *figure == "2" || *figure == "both" {
		fmt.Println("Figure 2 — Yellow′ partition (A/B/C; upper case = 1-side)")
		fmt.Println()
		fmt.Print(p.RenderYellowMap(*res))
		fmt.Println()
	}
}
