// Command fetlab runs the reproduction experiments (E01–E23), one per
// figure, theorem, lemma, design claim, or extension of the paper. See
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// full-size results.
//
// Usage:
//
//	fetlab -list
//	fetlab -scenarios
//	fetlab -topologies
//	fetlab -run E01,E02 [-quick] [-seed 42] [-format text|markdown]
//	fetlab -all [-quick]
//
// The grid-shaped experiments (E01, E13) run through the root Sweep
// layer; -scenarios lists the scenario registry that Sweep (and the
// fetsweep tool) draw presets from.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"passivespread"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list registered experiments and exit")
		scenarios  = flag.Bool("scenarios", false, "list registered sweep scenarios and exit")
		topologies = flag.Bool("topologies", false, "list the observation-topology specs and exit")
		runIDs     = flag.String("run", "", "comma-separated experiment IDs to run (e.g. E01,E03)")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced sweep sizes (CI scale)")
		seed       = flag.Uint64("seed", 42, "root random seed")
		format     = flag.String("format", "text", "output format: text or markdown")
		workers    = flag.Int("workers", 0, "parallel trial workers (0 = all CPUs)")
	)
	flag.Parse()

	if *list {
		for _, e := range passivespread.Experiments() {
			fmt.Printf("%s  %-55s  [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}
	if *scenarios {
		for _, sc := range passivespread.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}
	if *topologies {
		for _, tp := range passivespread.TopologySpecs() {
			fmt.Printf("%-24s %s\n", tp.Spec, tp.Description)
		}
		fmt.Println("\nuse with `fetsim -topology <spec>` or `fetsweep -topologies <spec,...>`;")
		fmt.Println("agent engines, plus aggregate-sparse for the degree-annealed entries")
		fmt.Println("(random-regular, dynamic); aggregate and chain need uniform mixing")
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range passivespread.Experiments() {
			ids = append(ids, e.ID)
		}
	case *runIDs != "":
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -list, -all, or -run IDs")
		flag.Usage()
		os.Exit(2)
	}

	cfg := passivespread.ExperimentConfig{Seed: *seed, Quick: *quick, Parallelism: *workers}
	failed := 0
	for _, id := range ids {
		e, ok := passivespread.LookupExperiment(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			failed++
			continue
		}
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			failed++
			continue
		}
		if *format == "markdown" {
			fmt.Println(passivespread.RenderExperimentMarkdown(rep))
		} else {
			fmt.Println(passivespread.RenderExperimentText(rep))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
