// Command fetmerge joins sweep-shard artifacts into the single-runner
// result — the merge half of the sharded sweep fabric. Each input is a
// `fetsweep -format shard` JSON artifact; fetmerge verifies that the
// artifacts form one complete, disjoint partition of the grid (exactly
// the shards 1/m … m/m, every cell covered once, every row in its
// shard's partition class, headers in agreement) and emits the merged
// table. With -verify it additionally re-derives every row's content
// addresses: the canonical cell key must parse and agree with the row
// field by field, and the recorded SHA-256 digest must match the row's
// canonical JSON — so a corrupt, truncated, or edited artifact cannot
// merge silently.
//
// Usage:
//
//	fetsweep -ns 256,1024 -shard 1/2 -format shard > shard-1.json
//	fetsweep -ns 256,1024 -shard 2/2 -format shard > shard-2.json
//	fetmerge -verify -format csv shard-1.json shard-2.json > merged.csv
//
// Because every cell's row is a pure function of its canonical key,
// the merged CSV/JSON is byte-identical to the same grid run by one
// `fetsweep` process at any -workers value — the property the CI
// sweep-fleet job enforces on every change.
//
// Exit codes: 0 on success, 1 when the artifacts do not merge or
// verification fails, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"passivespread"
)

func main() {
	var (
		verify = flag.Bool("verify", false, "re-verify every row's cell key and body digest")
		format = flag.String("format", "csv", "output format: csv or json")
	)
	flag.Parse()
	switch *format {
	case "csv", "json":
	default:
		fatalf(2, "unknown format %q (want csv or json)", *format)
	}
	if flag.NArg() == 0 {
		fatalf(2, "usage: fetmerge [-verify] [-format csv|json] shard.json...")
	}

	artifacts := make([]*passivespread.ShardArtifact, 0, flag.NArg())
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf(2, "%v", err)
		}
		a, err := passivespread.ParseShardArtifact(data)
		if err != nil {
			fatalf(1, "%s: %v", path, err)
		}
		artifacts = append(artifacts, a)
	}

	report, err := passivespread.MergeShards(artifacts, *verify)
	if err != nil {
		fatalf(1, "%v", err)
	}

	switch *format {
	case "csv":
		if err := report.WriteCSV(os.Stdout); err != nil {
			fatalf(1, "%v", err)
		}
	case "json":
		data, err := report.JSON()
		if err != nil {
			fatalf(1, "%v", err)
		}
		fmt.Printf("%s\n", data)
	}
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
