// Command fetserve serves the phase diagram over HTTP — a
// content-addressed query service over the same Study/Sweep machinery
// the CLIs use. Every query canonicalizes to a cell key (fetcell/v1);
// answers are cached under the key's SHA-256 and replayed
// byte-identically, which is sound because every answer is a pure
// function of its key (replicate i runs with StreamSeed(seed, i),
// independent of scheduling).
//
// Usage:
//
//	fetserve [-addr :8080] [-workers 4] [-cache-dir /var/cache/fetserve]
//
//	curl -s localhost:8080/v1/tools/fet.health
//	curl -s -X POST localhost:8080/v1/tools/fet.study.run \
//	     -d '{"n":4096,"engine":"chain","seed":42}'
//	curl -s localhost:8080/v1/tools/fet.scenarios.list
//
// Tools (POST JSON unless noted; acceptance specs at /v1/specs/<tool>):
//
//	fet.study.run       compute or replay one cell (add ?stream=1 for
//	                    SSE progress)
//	fet.study.get       cache-only read (GET ?key=... or POST query)
//	fet.sweep.inspect   expand a sweep grid into keyed cells, dry
//	fet.scenarios.list  scenario/engine/topology vocabulary (GET)
//	fet.health          liveness + cache state (GET)
//
// The answer path is tiered: cache hit, then inline exact run (chain
// and aggregate engines), then the bounded -workers fallback pool for
// agent-engine queries (429 overloaded when saturated). /metrics
// exposes per-tool counters and latency histograms in Prometheus text
// format. With -cache-dir, answers persist across restarts; corrupt
// entries are rejected at boot and counted in fet.health.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"passivespread"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent fallback-tier studies (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("cache-bytes", 0, "resident answer-cache budget in bytes (0 = 64 MiB)")
		cacheDir   = flag.String("cache-dir", "", "persistent cache directory (empty = memory only)")
		replicates = flag.Int("replicates", 0, "default replicates per query (0 = 40)")
		batch      = flag.Int("batch", 0, "lockstep width for fallback-tier studies (0 or 1 = off, max 64; never changes answer bytes)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *cacheBytes, *cacheDir, *replicates, *batch); err != nil {
		fmt.Fprintln(os.Stderr, "fetserve:", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheBytes int64, cacheDir string, replicates, batch int) error {
	server, err := passivespread.NewServer(passivespread.ServeConfig{
		Workers:           workers,
		CacheBytes:        cacheBytes,
		CacheDir:          cacheDir,
		DefaultReplicates: replicates,
		Batch:             batch,
	})
	if err != nil {
		return err
	}
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fetserve: listening on %s (cache: %s)\n", addr, cacheLabel(cacheDir))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func cacheLabel(dir string) string {
	if dir == "" {
		return "memory only"
	}
	return "persisted to " + dir
}
