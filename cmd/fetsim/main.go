// Command fetsim runs a single population simulation and prints the
// convergence outcome, optionally with the full x_t trajectory.
//
// Usage:
//
//	fetsim -n 1024 [-protocol fet] [-init all-wrong] [-seed 1] [-trajectory]
//	fetsim -n 100000000 -engine aggregate
//	fetsim -n 1000000 -engine parallel [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/dynamics"
	"passivespread/internal/sim"
)

func main() {
	var (
		n        = flag.Int("n", 1024, "population size (including sources)")
		ell      = flag.Int("ell", 0, "per-half sample size ℓ (0 = ⌈3·log₂ n⌉)")
		protocol = flag.String("protocol", "fet", "protocol: fet, simple, voter, 3maj, undecided")
		initName = flag.String("init", "all-wrong", "initial config: all-wrong, uniform, half, fraction=<x>")
		correct  = flag.Int("correct", 1, "the source's opinion (0 or 1)")
		sources  = flag.Int("sources", 1, "number of agreeing sources")
		seed     = flag.Uint64("seed", 1, "random seed")
		rounds   = flag.Int("rounds", 0, "round cap (0 = 400·log₂ n)")
		engine   = flag.String("engine", "fast", "engine: fast, exact, parallel or aggregate")
		workers  = flag.Int("workers", 0, "worker goroutines for -engine parallel (0 = GOMAXPROCS)")
		traj     = flag.Bool("trajectory", false, "print x_t per round")
	)
	flag.Parse()

	if *correct != 0 && *correct != 1 {
		fatalf("-correct must be 0 or 1")
	}
	correctBit := byte(*correct)

	sampleEll := *ell
	if sampleEll == 0 {
		sampleEll = core.SampleSize(*n, core.DefaultC)
	}

	var proto sim.Protocol
	switch *protocol {
	case "fet":
		proto = core.NewFET(sampleEll)
	case "simple":
		proto = core.NewSimpleTrend(sampleEll)
	case "voter":
		proto = dynamics.Voter{}
	case "3maj":
		proto = dynamics.ThreeMajority{}
	case "undecided":
		proto = dynamics.Undecided{}
	default:
		fatalf("unknown protocol %q", *protocol)
	}

	init, err := parseInit(*initName, correctBit)
	if err != nil {
		fatalf("%v", err)
	}

	maxRounds := *rounds
	if maxRounds == 0 {
		maxRounds = 400 * log2ceil(*n)
	}

	engineKind, err := sim.ParseEngineKind(*engine)
	if err != nil {
		fatalf("unknown engine %q", *engine)
	}

	res, err := sim.Run(sim.Config{
		N:                *n,
		Sources:          *sources,
		Correct:          correctBit,
		Protocol:         proto,
		Init:             init,
		Seed:             *seed,
		MaxRounds:        maxRounds,
		Engine:           engineKind,
		Parallelism:      *workers,
		CorruptStates:    true,
		RecordTrajectory: *traj,
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("protocol   %s\n", proto.Name())
	fmt.Printf("population %d (%d source(s), correct opinion %d)\n", *n, *sources, correctBit)
	fmt.Printf("init       %s\n", init.Name())
	fmt.Printf("engine     %s, seed %d\n", engineKind, *seed)
	if res.Converged {
		fmt.Printf("converged  yes: t_con = %d (of %d executed rounds)\n", res.Round, res.Rounds)
	} else {
		fmt.Printf("converged  no within %d rounds (final x = %.4f)\n", res.Rounds, res.FinalX)
	}
	if *traj {
		for t, x := range res.Trajectory {
			fmt.Printf("x[%4d] = %.5f %s\n", t, x, bar(x, 50))
		}
	}
	if !res.Converged {
		os.Exit(1)
	}
}

func parseInit(name string, correct byte) (sim.Initializer, error) {
	switch {
	case name == "all-wrong":
		return adversary.AllWrong{Correct: correct}, nil
	case name == "uniform":
		return adversary.Uniform{}, nil
	case name == "half":
		return adversary.HalfSplit(), nil
	case strings.HasPrefix(name, "fraction="):
		x, err := strconv.ParseFloat(strings.TrimPrefix(name, "fraction="), 64)
		if err != nil || x < 0 || x > 1 {
			return nil, fmt.Errorf("bad fraction in %q", name)
		}
		return adversary.Fraction{X: x}, nil
	default:
		return nil, fmt.Errorf("unknown init %q", name)
	}
}

func log2ceil(n int) int {
	k := 0
	for v := 1; v < n; v <<= 1 {
		k++
	}
	if k == 0 {
		k = 1
	}
	return k
}

func bar(x float64, width int) string {
	filled := int(x * float64(width))
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
