// Command fetsim runs population simulations and prints the convergence
// outcome, optionally with the full x_t trajectory or, with -replicates,
// an aggregate study over many seeded runs.
//
// Usage:
//
//	fetsim -n 1024 [-protocol fet] [-init all-wrong] [-seed 1] [-trajectory]
//	fetsim -n 100000000 -engine aggregate
//	fetsim -n 1000000 -engine parallel [-workers 8]
//	fetsim -n 4096 -replicates 100 [-jobs 8]
//	fetsim -n 1000000000 -engine chain -replicates 50
//	fetsim -n 4096 -topology small-world:4:0.1 [-replicates 20]
//	fetsim -n 100000000 -engine aggregate-sparse -topology random-regular:8
//	fetsim -n 1024 -topology ring:2 -trajectory
//
// -topology selects the observation topology (default complete, the
// paper's uniform mixing): ring[:k], torus, random-regular[:k],
// small-world[:k[:beta]] or dynamic[:k[:p]]. Non-complete topologies
// run on the agent engines (fast, exact, parallel), plus
// aggregate-sparse for the degree-annealed ones (random-regular,
// dynamic), which reaches n = 10⁸ the way aggregate does under
// uniform mixing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"passivespread"
)

func main() {
	var (
		n          = flag.Int("n", 1024, "population size (including sources)")
		ell        = flag.Int("ell", 0, "per-half sample size ℓ (0 = ⌈3·log₂ n⌉)")
		protocol   = flag.String("protocol", "fet", "protocol: fet, simple, voter, 3maj, undecided")
		initName   = flag.String("init", "all-wrong", "initial config: all-wrong, uniform, half, fraction=<x>")
		correct    = flag.Int("correct", 1, "the source's opinion (0 or 1)")
		sources    = flag.Int("sources", 1, "number of agreeing sources")
		seed       = flag.Uint64("seed", 1, "random seed")
		rounds     = flag.Int("rounds", 0, "round cap (0 = 400·log₂ n)")
		engine     = flag.String("engine", "fast", "engine: fast, exact, parallel, aggregate, aggregate-sparse or chain")
		topology   = flag.String("topology", "complete", "observation topology: complete, ring[:k], torus, random-regular[:k], small-world[:k[:beta]], dynamic[:k[:p]]")
		workers    = flag.Int("workers", 0, "worker goroutines for -engine parallel (0 = GOMAXPROCS)")
		replicates = flag.Int("replicates", 1, "number of replicate runs (a study when > 1)")
		jobs       = flag.Int("jobs", 0, "concurrent replicates (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "lockstep width: replicates per word-parallel batch (0 or 1 = off, max 64; never changes results)")
		traj       = flag.Bool("trajectory", false, "print x_t per round")
	)
	flag.Parse()

	if *correct != 0 && *correct != 1 {
		fatalf("-correct must be 0 or 1")
	}
	if *replicates > 1 && *traj {
		fatalf("-trajectory requires -replicates 1")
	}
	correctBit := byte(*correct)

	engineKind, err := passivespread.ParseEngine(*engine)
	if err != nil {
		fatalf("unknown engine %q", *engine)
	}

	topoKind, err := passivespread.ParseTopology(*topology)
	if err != nil {
		fatalf("%v", err)
	}
	if passivespread.TopologyName(topoKind) == "complete" {
		topoKind = nil // the default: no topology layer in the config
	}

	init, err := parseInit(*initName, correctBit)
	if err != nil {
		fatalf("%v", err)
	}

	proto, err := parseProtocol(*protocol, *ell, *n)
	if err != nil {
		fatalf("%v", err)
	}
	var (
		study     *passivespread.Study
		protoName = proto.Name()
		initLabel = init.Name()
	)
	if engineKind == passivespread.EngineMarkovChain {
		// The chain engine runs through the Options form of a study: FET
		// only, opinion-symmetric, deterministic-fraction starts.
		if *protocol != "fet" {
			fatalf("-engine chain supports only -protocol fet")
		}
		if topoKind != nil {
			fatalf("-engine chain is exact only under uniform mixing; -topology %s needs an agent engine", *topology)
		}
		study, err = passivespread.NewStudy(passivespread.StudySpec{
			Replicates: *replicates,
			Workers:    *jobs,
			Batch:      *batch, // validated here; the chain engine runs per-replicate
			Options: passivespread.Options{
				N:                *n,
				Ell:              *ell,
				Seed:             *seed,
				CorrectZero:      correctBit == passivespread.OpinionZero,
				Sources:          *sources,
				Init:             init,
				MaxRounds:        *rounds,
				Engine:           engineKind,
				RecordTrajectory: *traj,
			},
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		cfg := passivespread.Config{
			N:                *n,
			Sources:          *sources,
			Correct:          correctBit,
			Protocol:         proto,
			Init:             init,
			Seed:             *seed,
			MaxRounds:        *rounds,
			Engine:           engineKind,
			Parallelism:      *workers,
			Topology:         topoKind,
			CorruptStates:    true,
			RecordTrajectory: *traj,
		}
		if cfg.MaxRounds == 0 {
			cfg.MaxRounds = passivespread.DefaultMaxRounds(*n)
		}
		study, err = passivespread.NewStudy(passivespread.StudySpec{
			Replicates: *replicates,
			Workers:    *jobs,
			Batch:      *batch,
			Config:     &cfg,
		})
		if err != nil {
			fatalf("%v", err)
		}
	}

	fmt.Printf("protocol   %s\n", protoName)
	fmt.Printf("population %d (%d source(s), correct opinion %d)\n", *n, *sources, correctBit)
	fmt.Printf("init       %s\n", initLabel)
	fmt.Printf("engine     %s, seed %d\n", passivespread.EngineName(engineKind), *seed)
	if topoKind != nil {
		// Printed only off the uniform-mixing default, so existing
		// complete-topology invocations stay byte-identical.
		fmt.Printf("topology   %s\n", passivespread.TopologyName(topoKind))
	}

	report, err := study.Run(context.Background())
	if err != nil {
		fatalf("%v", err)
	}

	if *replicates > 1 {
		conv := report.Convergence
		fmt.Printf("replicates %d across %d workers\n", study.Replicates(), study.Workers())
		fmt.Printf("converged  %d/%d (%.1f%%)\n", conv.Converged, conv.Replicates, 100*conv.SuccessRate)
		fmt.Printf("t_con      mean %.1f, median %.1f, p95 %.1f, max %.0f\n",
			conv.Rounds.Mean, conv.Rounds.Median, conv.Rounds.P95, conv.Rounds.Max)
		if conv.Converged < conv.Replicates {
			os.Exit(1)
		}
		return
	}

	res := report.Results[0].Result
	if res.Converged {
		fmt.Printf("converged  yes: t_con = %d (of %d executed rounds)\n", res.Round, res.Rounds)
	} else {
		fmt.Printf("converged  no within %d rounds (final x = %.4f)\n", res.Rounds, res.FinalX)
	}
	if *traj {
		for t, x := range res.Trajectory {
			fmt.Printf("x[%4d] = %.5f %s\n", t, x, bar(x, 50))
		}
	}
	if !res.Converged {
		os.Exit(1)
	}
}

func parseProtocol(name string, ell, n int) (passivespread.Protocol, error) {
	sampleEll := ell
	if sampleEll == 0 {
		sampleEll = passivespread.SampleSize(n)
	}
	switch name {
	case "fet":
		return passivespread.NewFET(sampleEll), nil
	case "simple":
		return passivespread.NewSimpleTrend(sampleEll), nil
	case "voter":
		return passivespread.Voter(), nil
	case "3maj":
		return passivespread.ThreeMajority(), nil
	case "undecided":
		return passivespread.UndecidedState(), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func parseInit(name string, correct byte) (passivespread.Initializer, error) {
	switch {
	case name == "all-wrong":
		return passivespread.AllWrong(correct), nil
	case name == "uniform":
		return passivespread.UniformInit(), nil
	case name == "half":
		return passivespread.HalfInit(), nil
	case strings.HasPrefix(name, "fraction="):
		x, err := strconv.ParseFloat(strings.TrimPrefix(name, "fraction="), 64)
		if err != nil || x < 0 || x > 1 {
			return nil, fmt.Errorf("bad fraction in %q", name)
		}
		return passivespread.FractionInit(x), nil
	default:
		return nil, fmt.Errorf("unknown init %q", name)
	}
}

func bar(x float64, width int) string {
	filled := int(x * float64(width))
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
