// Command fetsweep measures FET convergence-time scaling (the Theorem 1
// experiment) and fits the polylog exponent.
//
// Usage:
//
//	fetsweep [-ns 256,1024,4096,16384] [-trials 40] [-engine fast] [-seed 42]
//
// -engine selects the executor: fast (sequential agent engine), parallel
// (sharded agent engine), aggregate (occupancy-vector engine), or chain
// (the (K_t, K_{t+1}) Markov chain). aggregate and chain scale to
// populations of hundreds of millions; -chain is kept as an alias.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/markov"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

func main() {
	var (
		nsFlag  = flag.String("ns", "256,1024,4096,16384,65536", "comma-separated population sizes")
		trials  = flag.Int("trials", 40, "trials per population size")
		engine  = flag.String("engine", "fast", "engine: fast, parallel, aggregate or chain")
		chain   = flag.Bool("chain", false, "alias for -engine chain")
		workers = flag.Int("workers", 0, "worker goroutines for -engine parallel (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "root random seed")
		c       = flag.Float64("c", core.DefaultC, "sample-size constant: ℓ = ⌈c·log₂ n⌉")
	)
	flag.Parse()

	if *chain {
		engineSet := false
		flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })
		if engineSet && *engine != "chain" {
			fmt.Fprintf(os.Stderr, "-chain conflicts with -engine %s\n", *engine)
			os.Exit(2)
		}
		*engine = "chain"
	}
	var engineKind sim.EngineKind
	if *engine != "chain" { // the chain engine simulates (K_t, K_{t+1}) separately below
		var err error
		engineKind, err = sim.ParseEngineKind(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			os.Exit(2)
		}
	}

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tab := tablefmt.New("n", "ℓ", "trials", "mean", "median", "p95", "max")
	medians := make([]float64, 0, len(ns))
	for _, n := range ns {
		ell := core.SampleSize(n, *c)
		cap := 400 * int(math.Ceil(math.Log2(float64(n))))
		times := make([]float64, *trials)
		for trial := range times {
			trialSeed := *seed ^ uint64(n)<<20 ^ uint64(trial)
			if *engine == "chain" {
				ch := markov.New(n, ell, trialSeed)
				rounds, ok := ch.HittingTime(ch.StateAt(0, 0), cap)
				if !ok {
					rounds = cap
				}
				times[trial] = float64(rounds)
				continue
			}
			res, err := sim.Run(sim.Config{
				N:             n,
				Protocol:      core.NewFET(ell),
				Init:          adversary.AllWrong{Correct: sim.OpinionOne},
				Correct:       sim.OpinionOne,
				Engine:        engineKind,
				Parallelism:   *workers,
				Seed:          trialSeed,
				MaxRounds:     cap,
				CorruptStates: true,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if !res.Converged {
				times[trial] = float64(cap)
			} else {
				times[trial] = float64(res.Round)
			}
		}
		s := stats.Summarize(times)
		tab.AddRow(n, ell, *trials, s.Mean, s.Median, s.P95, s.Max)
		medians = append(medians, s.Median)
	}

	engineName := engineKind.String()
	if *engine == "chain" {
		engineName = "markov-chain"
	}
	fmt.Printf("FET convergence sweep (engine %s, all-wrong start, ℓ = ⌈%g·log₂n⌉)\n\n", engineName, *c)
	fmt.Print(tab.String())
	if len(ns) >= 2 {
		fit := stats.FitPolylog(ns, medians)
		fmt.Printf("\npolylog fit: t_con ≈ %.2f·(ln n)^%.2f (R² = %.3f); paper bound exponent 5/2\n",
			fit.Coefficient, fit.Exponent, fit.R2)
	}
}

func parseNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad population size %q", p)
		}
		ns = append(ns, v)
	}
	return ns, nil
}
