// Command fetsweep measures FET convergence-time scaling (the Theorem 1
// experiment) and fits the polylog exponent.
//
// Usage:
//
//	fetsweep [-ns 256,1024,4096,16384] [-trials 40] [-engine fast] [-seed 42]
//
// -engine selects the executor: fast (sequential agent engine), parallel
// (sharded agent engine), aggregate (occupancy-vector engine), or chain
// (the (K_t, K_{t+1}) Markov chain). aggregate and chain scale to
// populations of hundreds of millions; -chain is kept as an alias.
//
// Each population size runs as one Study: trials fan out across the
// worker pool with replicate seeds derived from the root seed, so any
// -jobs value produces identical numbers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"passivespread"
)

func main() {
	var (
		nsFlag  = flag.String("ns", "256,1024,4096,16384,65536", "comma-separated population sizes")
		trials  = flag.Int("trials", 40, "trials per population size")
		engine  = flag.String("engine", "fast", "engine: fast, exact, parallel, aggregate or chain")
		chain   = flag.Bool("chain", false, "alias for -engine chain")
		jobs    = flag.Int("jobs", 0, "concurrent trials (0 = GOMAXPROCS)")
		workers = flag.Int("workers", 0, "worker goroutines per trial for -engine parallel (0 = GOMAXPROCS)")
		seed    = flag.Uint64("seed", 42, "root random seed")
		c       = flag.Float64("c", passivespread.DefaultC, "sample-size constant: ℓ = ⌈c·log₂ n⌉")
	)
	flag.Parse()

	if *chain {
		engineSet := false
		flag.Visit(func(f *flag.Flag) { engineSet = engineSet || f.Name == "engine" })
		if engineSet && *engine != "chain" {
			fmt.Fprintf(os.Stderr, "-chain conflicts with -engine %s\n", *engine)
			os.Exit(2)
		}
		*engine = "chain"
	}
	engineKind, err := passivespread.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tab := passivespread.NewTable("n", "ℓ", "trials", "converged", "mean", "median", "p95", "max")
	medians := make([]float64, 0, len(ns))
	for _, n := range ns {
		ell := passivespread.SampleSizeC(n, *c)
		study, err := passivespread.NewStudy(passivespread.StudySpec{
			Replicates: *trials,
			Workers:    *jobs,
			Options: passivespread.Options{
				N:           n,
				Ell:         ell,
				Seed:        *seed ^ uint64(n)<<20,
				Engine:      engineKind,
				Parallelism: *workers,
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		report, err := study.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		conv := report.Convergence
		tab.AddRow(n, ell, *trials, fmt.Sprintf("%d/%d", conv.Converged, conv.Replicates),
			conv.Rounds.Mean, conv.Rounds.Median, conv.Rounds.P95, conv.Rounds.Max)
		medians = append(medians, conv.Rounds.Median)
	}

	fmt.Printf("FET convergence sweep (engine %s, all-wrong start, ℓ = ⌈%g·log₂n⌉)\n\n",
		passivespread.EngineName(engineKind), *c)
	fmt.Print(tab.String())
	if len(ns) >= 2 {
		fit := passivespread.FitPolylog(ns, medians)
		fmt.Printf("\npolylog fit: t_con ≈ %.2f·(ln n)^%.2f (R² = %.3f); paper bound exponent 5/2\n",
			fit.Coefficient, fit.Exponent, fit.R2)
	}
}

func parseNs(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ns := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad population size %q", p)
		}
		ns = append(ns, v)
	}
	return ns, nil
}
