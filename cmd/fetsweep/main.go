// Command fetsweep runs parameter-grid sweeps over the FET simulation —
// the phase-diagram tool. It is a thin CLI over the root Sweep API: the
// cross-product of -ns × -ells × -engines × -topologies × -scenarios
// expands into grid cells, every cell runs -trials replicates, and all
// cells × replicates draw from one shared worker pool. Results are
// bit-identical for any -workers value on a fixed -seed.
//
// Usage:
//
//	fetsweep [-ns 256,1024,4096,16384] [-trials 40] [-engines fast] [-seed 42]
//	fetsweep -scenarios worst-case,noisy,trend-flip -format csv > phase.csv
//	fetsweep -ns 4096 -ells 1,2,4,8,16,24 -format json
//	fetsweep -ns 1048576,16777216 -engines aggregate,chain
//	fetsweep -ns 1024,4096 -topologies complete,random-regular:8,small-world:4:0.1
//
// -topologies selects the observation topologies (default complete, the
// paper's uniform mixing); non-complete entries run on the agent
// engines (plus aggregate-sparse for random-regular and dynamic) and
// answer "does FET's trend-following survive sparse structure?" as a
// sweepable axis.
//
// -engines selects the executors: fast (sequential agent engine),
// parallel (sharded agent engine), aggregate (occupancy-vector engine),
// aggregate-sparse (its degree-annealed analogue for random-regular and
// dynamic topologies), or chain (the (K_t, K_{t+1}) Markov chain).
// aggregate, aggregate-sparse and chain scale to populations of
// hundreds of millions; -chain is kept as an alias
// for -engines chain. -scenarios names presets from the scenario
// registry (list them with `fetlab -scenarios`).
//
// The default table output appends a polylog fit of the median
// convergence times per (scenario, engine) group spanning ≥ 2
// population sizes — the Theorem 1 shape check. -format csv and
// -format json emit the machine-readable artifacts instead.
//
// The sweep fabric flags distribute one grid across a fleet:
//
//	fetsweep -ns 256,1024 -shard 1/4 -checkpoint ckpt -format shard > shard-1.json
//
// -shard i/m runs only the cells c with c mod m == i-1 — same grid,
// same cell indices, same seeds — so m runners' outputs join via
// `fetmerge` into bytes identical to a single run. -checkpoint makes
// each completed cell durable (atomic envelopes keyed by the cell's
// canonical key hash): a killed run re-invoked with the same flags and
// directory resumes mid-grid, skipping finished cells. -format shard
// emits the mergeable artifact (rows plus per-cell keys and digests)
// that `fetmerge -verify` checks and joins.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"passivespread"
)

func main() {
	var (
		nsFlag     = flag.String("ns", "256,1024,4096,16384,65536", "comma-separated population sizes")
		ellsFlag   = flag.String("ells", "", "comma-separated per-half sample sizes (0 or empty = ⌈c·log₂ n⌉)")
		engines    = flag.String("engines", "fast", "comma-separated engines: fast, exact, parallel, aggregate, aggregate-sparse, chain")
		topologies = flag.String("topologies", "complete", "comma-separated observation topologies: complete, ring[:k], torus, random-regular[:k], small-world[:k[:beta]], dynamic[:k[:p]]")
		scenarios  = flag.String("scenarios", passivespread.DefaultScenario, "comma-separated scenario names (see `fetlab -scenarios`)")
		trials     = flag.Int("trials", 40, "replicates per grid cell")
		workers    = flag.Int("workers", 0, "shared worker pool for the whole grid (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 0, "lockstep width: replicates per word-parallel batch within a cell (0 or 1 = off, max 64; never changes results)")
		rounds     = flag.Int("rounds", 0, "round cap per cell (0 = 400·log₂ n)")
		seed       = flag.Uint64("seed", 42, "root random seed")
		c          = flag.Float64("c", passivespread.DefaultC, "sample-size constant: ℓ = ⌈c·log₂ n⌉")
		format     = flag.String("format", "table", "output format: table, csv, json or shard")
		chain      = flag.Bool("chain", false, "alias for -engines chain")
		shard      = flag.String("shard", "", `run one deterministic grid slice: "i/m" (shard i of m, 1-based)`)
		ckptDir    = flag.String("checkpoint", "", "durable per-cell checkpoint directory (resume mid-grid after a kill)")
	)
	flag.Parse()

	if *chain {
		enginesSet := false
		flag.Visit(func(f *flag.Flag) { enginesSet = enginesSet || f.Name == "engines" })
		if enginesSet && *engines != "chain" {
			fatalf(2, "-chain conflicts with -engines %s", *engines)
		}
		*engines = "chain"
	}

	ns, err := parseNs(*nsFlag)
	if err != nil {
		fatalf(2, "%v", err)
	}
	ells, err := parseElls(*ellsFlag)
	if err != nil {
		fatalf(2, "%v", err)
	}
	engineKinds, err := parseEngines(*engines)
	if err != nil {
		fatalf(2, "%v", err)
	}
	topologyList, err := parseTopologies(*topologies)
	if err != nil {
		fatalf(2, "%v", err)
	}
	scenarioList, err := parseScenarios(*scenarios)
	if err != nil {
		fatalf(2, "%v", err)
	}
	switch *format {
	case "table", "csv", "json", "shard":
	default:
		fatalf(2, "unknown format %q (want table, csv, json or shard)", *format)
	}
	var shardSel passivespread.Shard
	if *shard != "" {
		shardSel, err = passivespread.ParseShard(*shard)
		if err != nil {
			fatalf(2, "-shard: %v", err)
		}
	}

	sweep, err := passivespread.NewSweep(passivespread.SweepSpec{
		Ns:            ns,
		Ells:          ells,
		C:             *c,
		Engines:       engineKinds,
		Topologies:    topologyList,
		Scenarios:     scenarioList,
		Replicates:    *trials,
		Workers:       *workers,
		Batch:         *batch,
		Seed:          *seed,
		MaxRounds:     *rounds,
		Shard:         shardSel,
		CheckpointDir: *ckptDir,
	})
	if err != nil {
		fatalf(2, "%v", err)
	}

	report, err := sweep.Run(context.Background())
	if err != nil {
		fatalf(1, "%v", err)
	}

	switch *format {
	case "csv":
		if err := report.WriteCSV(os.Stdout); err != nil {
			fatalf(1, "%v", err)
		}
	case "json":
		data, err := report.JSON()
		if err != nil {
			fatalf(1, "%v", err)
		}
		fmt.Printf("%s\n", data)
	case "shard":
		artifact, err := sweep.ShardArtifact(report)
		if err != nil {
			fatalf(1, "%v", err)
		}
		data, err := artifact.JSON()
		if err != nil {
			fatalf(1, "%v", err)
		}
		fmt.Printf("%s\n", data)
	default: // "table", validated before the sweep ran
		printTable(report, ns)
	}
}

func printTable(report *passivespread.SweepReport, ns []int) {
	fmt.Printf("FET parameter sweep: %d cells × %d replicates\n\n", report.Cells, report.Replicates)
	tab := passivespread.NewTable("scenario", "engine", "topology", "n", "ℓ", "trials", "converged", "mean", "median", "p95", "max")
	for _, row := range report.Rows {
		tab.AddRow(row.Scenario, row.Engine, row.Topology, row.N, row.Ell, row.Replicates,
			fmt.Sprintf("%d/%d", row.Converged, row.Replicates),
			row.Mean, row.Median, row.P95, row.Max)
	}
	fmt.Print(tab.String())

	// Polylog fits per (scenario, engine, topology) group spanning ≥ 2
	// population sizes: the Theorem 1 shape check, t_con ≈ a·(ln n)^b.
	if len(ns) < 2 {
		return
	}
	type group struct{ scenario, engine, topology string }
	medians := map[group]map[int]float64{}
	var order []group
	for _, row := range report.Rows {
		g := group{row.Scenario, row.Engine, row.Topology}
		if medians[g] == nil {
			medians[g] = map[int]float64{}
			order = append(order, g)
		}
		// With an ℓ axis, keep the first (default-ℓ) cell per n.
		if _, dup := medians[g][row.N]; !dup {
			medians[g][row.N] = row.Median
		}
	}
	fmt.Println()
	for _, g := range order {
		if len(medians[g]) < 2 {
			continue
		}
		times := make([]float64, 0, len(ns))
		fitNs := make([]int, 0, len(ns))
		for _, n := range ns {
			if m, ok := medians[g][n]; ok {
				fitNs = append(fitNs, n)
				times = append(times, m)
			}
		}
		fit := passivespread.FitPolylog(fitNs, times)
		fmt.Printf("polylog fit [%s/%s/%s]: t_con ≈ %.2f·(ln n)^%.2f (R² = %.3f); paper bound exponent 5/2\n",
			g.scenario, g.engine, g.topology, fit.Coefficient, fit.Exponent, fit.R2)
	}
}

// parseNs parses the population axis strictly: every entry must be a
// distinct integer ≥ 2. Empty, duplicate, or non-positive entries are
// rejected with a pointed error instead of silently producing a
// degenerate grid.
func parseNs(s string) ([]int, error) {
	return parseIntAxis("-ns", s, 2)
}

// parseElls parses the sample-size axis: distinct integers ≥ 0, where 0
// selects the default ℓ(n). An empty flag means "default only".
func parseElls(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	return parseIntAxis("-ells", s, 0)
}

// parseIntAxis parses a comma-separated list of distinct integers ≥ min.
func parseIntAxis(flagName, s string, min int) ([]int, error) {
	parts := strings.Split(s, ",")
	seen := make(map[int]bool, len(parts))
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("%s: empty entry in %q", flagName, s)
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("%s: bad entry %q (want an integer)", flagName, p)
		}
		if v < min {
			return nil, fmt.Errorf("%s: entry %d out of range (want ≥ %d)", flagName, v, min)
		}
		if seen[v] {
			return nil, fmt.Errorf("%s: duplicate entry %d", flagName, v)
		}
		seen[v] = true
		out = append(out, v)
	}
	return out, nil
}

func parseEngines(s string) ([]passivespread.EngineKind, error) {
	parts := strings.Split(s, ",")
	seen := make(map[passivespread.EngineKind]bool, len(parts))
	out := make([]passivespread.EngineKind, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-engines: empty entry in %q", s)
		}
		kind, err := passivespread.ParseEngine(p)
		if err != nil {
			return nil, fmt.Errorf("-engines: unknown engine %q", p)
		}
		if seen[kind] {
			return nil, fmt.Errorf("-engines: duplicate engine %q", p)
		}
		seen[kind] = true
		out = append(out, kind)
	}
	return out, nil
}

// parseTopologies parses the topology axis strictly: every entry must be
// a well-formed topology spec (passivespread.ParseTopology grammar) and
// distinct by canonical name. Empty or duplicate entries are rejected.
func parseTopologies(s string) ([]passivespread.Topology, error) {
	parts := strings.Split(s, ",")
	seen := make(map[string]bool, len(parts))
	out := make([]passivespread.Topology, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-topologies: empty entry in %q", s)
		}
		tp, err := passivespread.ParseTopology(p)
		if err != nil {
			return nil, fmt.Errorf("-topologies: %v", err)
		}
		name := passivespread.TopologyName(tp)
		if seen[name] {
			return nil, fmt.Errorf("-topologies: duplicate topology %q", name)
		}
		seen[name] = true
		out = append(out, tp)
	}
	return out, nil
}

func parseScenarios(s string) ([]passivespread.Scenario, error) {
	parts := strings.Split(s, ",")
	seen := make(map[string]bool, len(parts))
	out := make([]passivespread.Scenario, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("-scenarios: empty entry in %q", s)
		}
		sc, ok := passivespread.ScenarioByName(p)
		if !ok {
			return nil, fmt.Errorf("-scenarios: unknown scenario %q (list them with `fetlab -scenarios`)", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("-scenarios: duplicate scenario %q", p)
		}
		seen[p] = true
		out = append(out, sc)
	}
	return out, nil
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
