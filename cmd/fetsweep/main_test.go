package main

import (
	"reflect"
	"testing"

	"passivespread"
)

func TestParseNsValid(t *testing.T) {
	got, err := parseNs(" 256, 1024 ,4096 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{256, 1024, 4096}) {
		t.Fatalf("parseNs = %v", got)
	}
}

func TestParseNsRejectsDegenerateGrids(t *testing.T) {
	cases := map[string]string{
		"empty flag":       "",
		"empty entry":      "256,,1024",
		"trailing comma":   "256,1024,",
		"not a number":     "256,many",
		"non-positive":     "256,0",
		"negative":         "-4",
		"below minimum":    "1,256",
		"duplicate":        "256,1024,256",
		"spaced duplicate": "256, 256",
	}
	for name, input := range cases {
		if got, err := parseNs(input); err == nil {
			t.Errorf("%s: parseNs(%q) accepted %v", name, input, got)
		}
	}
}

func TestParseElls(t *testing.T) {
	if got, err := parseElls(""); err != nil || got != nil {
		t.Fatalf("empty -ells = %v, %v", got, err)
	}
	got, err := parseElls("0,1,8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 8}) {
		t.Fatalf("parseElls = %v", got)
	}
	for _, bad := range []string{"-1", "4,4", "4,", "x"} {
		if got, err := parseElls(bad); err == nil {
			t.Errorf("parseElls(%q) accepted %v", bad, got)
		}
	}
}

func TestParseEngines(t *testing.T) {
	got, err := parseEngines("fast,chain")
	if err != nil {
		t.Fatal(err)
	}
	want := []passivespread.EngineKind{passivespread.EngineAgentFast, passivespread.EngineMarkovChain}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseEngines = %v", got)
	}
	for _, bad := range []string{"", "fast,", "warp", "fast,fast"} {
		if got, err := parseEngines(bad); err == nil {
			t.Errorf("parseEngines(%q) accepted %v", bad, got)
		}
	}
}

func TestParseScenarios(t *testing.T) {
	got, err := parseScenarios("worst-case,noisy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "worst-case" || got[1].Name != "noisy" {
		t.Fatalf("parseScenarios = %+v", got)
	}
	for _, bad := range []string{"", "worst-case,", "no-such", "noisy,noisy"} {
		if got, err := parseScenarios(bad); err == nil {
			t.Errorf("parseScenarios(%q) accepted %v", bad, got)
		}
	}
}
