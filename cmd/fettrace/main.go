// Command fettrace runs one FET dissemination and annotates every round
// of the trajectory with the Figure 1a domain of the state (x_t, x_{t+1}),
// its Figure 2 area, and its speed — the path-through-domains narrative of
// Figure 1b, made observable.
//
// Usage:
//
//	fettrace -n 4096 [-x0 0] [-x1 0] [-seed 1] [-csv]
//
// x0 and x1 place the chain at a chosen grid point (x0 is emulated via
// seeded agent memories); the default (0, 0) is the all-wrong start.
package main

import (
	"flag"
	"fmt"
	"os"

	"passivespread"
)

func main() {
	var (
		n      = flag.Int("n", 4096, "population size")
		x0     = flag.Float64("x0", 0, "emulated previous-round fraction x_t")
		x1     = flag.Float64("x1", 0, "starting fraction x_{t+1}")
		seed   = flag.Uint64("seed", 1, "random seed")
		rounds = flag.Int("rounds", 2000, "round cap")
		asCSV  = flag.Bool("csv", false, "emit CSV instead of the table")
	)
	flag.Parse()

	if *x0 < 0 || *x0 > 1 || *x1 < 0 || *x1 > 1 {
		fmt.Fprintln(os.Stderr, "x0 and x1 must lie in [0, 1]")
		os.Exit(2)
	}

	ell := passivespread.SampleSize(*n)
	gs := passivespread.GridStart{X0: *x0, X1: *x1, Ell: ell}
	res, err := passivespread.Run(passivespread.Config{
		N:                *n,
		Protocol:         passivespread.NewFET(ell),
		Init:             gs.Init(),
		Correct:          passivespread.OpinionOne,
		Seed:             *seed,
		MaxRounds:        *rounds,
		StateInit:        gs.StateInit(),
		RecordTrajectory: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tr := passivespread.TraceFromTrajectory(passivespread.NewDomainParams(*n), *x0, res.Trajectory)
	if *asCSV {
		fmt.Print(tr.CSV())
	} else {
		fmt.Printf("n = %d, ℓ = %d, start (x_t, x_{t+1}) = (%.3f, %.3f), seed %d\n\n",
			*n, ell, *x0, *x1, *seed)
		fmt.Print(tr.String())
		fmt.Printf("\npath: ")
		for i, k := range tr.KindSequence() {
			if i > 0 {
				fmt.Print(" → ")
			}
			fmt.Print(k)
		}
		fmt.Println()
	}
	if res.Converged {
		if !*asCSV {
			fmt.Printf("converged: t_con = %d\n", res.Round)
		}
	} else {
		fmt.Fprintf(os.Stderr, "not converged within %d rounds\n", res.Rounds)
		os.Exit(1)
	}
}
