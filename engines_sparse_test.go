package passivespread

import (
	"errors"
	"math"
	"testing"

	"passivespread/internal/stats"
)

// censoredConvergenceSample collects t_con over independent seeds for
// one engine on a topology, censoring non-converged runs at the round
// cap (mirroring E16's fetTrial): near-critical sparse cells need not
// converge on every seed, and censoring keeps those runs comparable
// instead of aborting the sample.
func censoredConvergenceSample(t *testing.T, engine EngineKind, tp Topology, n, trials, cap int, seedBase uint64) []float64 {
	t.Helper()
	out := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		res, err := Disseminate(Options{
			N:         n,
			Seed:      seedBase + uint64(trial),
			Engine:    engine,
			Topology:  tp,
			MaxRounds: cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged {
			out = append(out, float64(res.Round))
		} else {
			out = append(out, float64(cap))
		}
	}
	return out
}

// TestSparseAggregateEngineMatchesAgentLevelKS: the sparse occupancy
// engine must sample the same convergence-time distribution as the
// agent-level engine on the topology it models exactly — the fully
// rewired random k-out digraph (DynamicRewire(k, 1) redraws every row
// every round, which is precisely the degree-annealed observation law).
// On a frozen RandomRegular graph the two processes genuinely differ at
// small n (quenched rows correlate rounds; the annealed law does not),
// so the frozen case is covered by the huge-population run below, not
// by a small-n KS. Kolmogorov–Smirnov at α = 0.001 on censored t_con.
func TestSparseAggregateEngineMatchesAgentLevelKS(t *testing.T) {
	n := 256
	trials := 100
	if testing.Short() {
		trials = 30
	}
	cap := 800 * int(math.Log2(float64(n)))
	tp := DynamicRewire(8, 1)
	agent := censoredConvergenceSample(t, EngineAgentFast, tp, n, trials, cap, 7<<32)
	sparse := censoredConvergenceSample(t, EngineAggregateSparse, tp, n, trials, cap, 9<<32)

	d := stats.KSStatistic(agent, sparse)
	crit := stats.KSCriticalValue(len(agent), len(sparse), 0.001)
	if d > crit {
		t.Fatalf("sparse aggregate vs agent-level t_con distributions differ: KS %v > critical %v\nagent: %v\nsparse: %v",
			d, crit, agent, sparse)
	}
}

// TestSparseAggregateEngineHugePopulation: a worst-case random-regular
// cell at n = 10⁸ must complete through the public API — the population
// scale that motivated the sparse occupancy engine (the agent engines
// top out orders of magnitude lower on graph topologies). The sparse
// k-out graph at this ℓ does not disseminate from the all-wrong start
// (observed fractions quantize to j/k, starving the drift the complete
// graph provides), so the run is asserted to execute its full horizon
// with sane accounting rather than to converge.
func TestSparseAggregateEngineHugePopulation(t *testing.T) {
	const maxRounds = 2000
	res, err := Disseminate(Options{
		N:         100_000_000,
		Seed:      1,
		Engine:    EngineAggregateSparse,
		Topology:  RandomRegular(8),
		MaxRounds: maxRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		return // fine too — just unexpected at this ℓ
	}
	if res.Rounds != maxRounds {
		t.Fatalf("run stopped after %d of %d rounds without converging: %+v", res.Rounds, maxRounds, res)
	}
	if res.FinalX < 0 || res.FinalX > 1 || math.IsNaN(res.FinalX) {
		t.Fatalf("final fraction %v outside [0, 1]", res.FinalX)
	}
}

// TestSparseAggregateEngineTopologyValidation: the sparse engine accepts
// exactly the degree-annealed topologies (random k-out and its dynamic
// rewiring) and rejects fixed-local-structure graphs and the complete
// topology with ErrInvalidOptions.
func TestSparseAggregateEngineTopologyValidation(t *testing.T) {
	run := func(tp Topology) error {
		_, err := Disseminate(Options{
			N:         64,
			Seed:      3,
			Engine:    EngineAggregateSparse,
			Topology:  tp,
			MaxRounds: 4,
		})
		return err
	}
	for _, tc := range []struct {
		name string
		tp   Topology
	}{
		{"complete", nil},
		{"ring", Ring(2)},
		{"torus", Torus()},
		{"small-world", SmallWorld(4, 0.1)},
	} {
		if err := run(tc.tp); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: want ErrInvalidOptions, got %v", tc.name, err)
		}
	}
	for _, tc := range []struct {
		name string
		tp   Topology
	}{
		{"random-regular", RandomRegular(8)},
		{"dynamic", DynamicRewire(8, 0.2)},
	} {
		if err := run(tc.tp); err != nil {
			t.Errorf("%s: sparse engine rejected a degree-annealed topology: %v", tc.name, err)
		}
	}
}

// TestSweepRejectsSparseEngineOnFixedTopology: the grid validation must
// refuse crossing the sparse engine with topologies it cannot model, and
// accept the degree-annealed ones.
func TestSweepRejectsSparseEngineOnFixedTopology(t *testing.T) {
	base := func() SweepSpec {
		return SweepSpec{
			Ns:         []int{64},
			Replicates: 1,
			Engines:    []EngineKind{EngineAggregateSparse},
			Topologies: []Topology{RandomRegular(8)},
		}
	}
	if _, err := NewSweep(base()); err != nil {
		t.Fatalf("sparse engine × random-regular rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		tps  []Topology
	}{
		{"complete", nil},
		{"small-world", []Topology{SmallWorld(4, 0.1)}},
		{"ring", []Topology{Ring(2)}},
	} {
		spec := base()
		spec.Topologies = tc.tps
		if _, err := NewSweep(spec); err == nil {
			t.Errorf("%s: NewSweep accepted sparse engine on a non-annealed topology", tc.name)
		} else if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: error %v does not wrap ErrInvalidOptions", tc.name, err)
		}
	}
}
