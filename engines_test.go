package passivespread

import (
	"reflect"
	"testing"

	"passivespread/internal/stats"
)

// TestParallelEngineBitIdentical: the acceptance bar for the parallel
// engine — byte-identical Results to the sequential fast engine for the
// same seed at every parallelism level, on the real FET protocol under
// the worst-case start.
func TestParallelEngineBitIdentical(t *testing.T) {
	base := Options{
		N:                4096,
		Seed:             9,
		RecordTrajectory: true,
	}
	ref, err := Disseminate(base)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatalf("reference run did not converge: %+v", ref)
	}
	for _, workers := range []int{0, 1, 2, 4, 13} {
		opts := base
		opts.Engine = EngineAgentParallel
		opts.Parallelism = workers
		got, err := Disseminate(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("parallelism %d diverged from the fast engine:\nfast:     %+v\nparallel: %+v",
				workers, ref, got)
		}
	}
}

// convergenceSample collects t_con over independent seeds for one engine.
func convergenceSample(t *testing.T, engine EngineKind, n, trials int, seedBase uint64) []float64 {
	t.Helper()
	out := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		res, err := Disseminate(Options{
			N:      n,
			Seed:   seedBase + uint64(trial),
			Engine: engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("engine %v trial %d did not converge", engine, trial)
		}
		out = append(out, float64(res.Round))
	}
	return out
}

// TestAggregateEngineMatchesAgentLevelKS: the occupancy engine must
// sample the same convergence-time distribution as the agent-level
// engine. Kolmogorov–Smirnov cross-check at n = 2¹² under the worst-case
// start (all wrong, corrupted memories).
func TestAggregateEngineMatchesAgentLevelKS(t *testing.T) {
	n := 1 << 12
	trials := 100
	if testing.Short() {
		trials = 30
	}
	agent := convergenceSample(t, EngineAgentFast, n, trials, 1000)
	aggregate := convergenceSample(t, EngineAggregate, n, trials, 500000)

	d := stats.KSStatistic(agent, aggregate)
	crit := stats.KSCriticalValue(len(agent), len(aggregate), 0.001)
	if d > crit {
		t.Fatalf("aggregate vs agent-level t_con distributions differ: KS %v > critical %v\nagent: %v\naggregate: %v",
			d, crit, agent, aggregate)
	}
}

// TestAggregateEngineHugePopulation: a worst-case dissemination at
// n = 10⁸ must complete through the public API (the hugescale example's
// headline claim). The occupancy engine makes this a sub-second run.
func TestAggregateEngineHugePopulation(t *testing.T) {
	res, err := Disseminate(Options{
		N:      100_000_000,
		Seed:   1,
		Engine: EngineAggregate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("n = 10⁸ worst-case run did not converge: %+v", res)
	}
	if res.Round < 2 || res.Round > 100 {
		t.Fatalf("t_con = %d at n = 10⁸, outside the plausible polylog band", res.Round)
	}
}
