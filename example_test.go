package passivespread_test

import (
	"context"
	"fmt"

	"passivespread"
)

// The primary entry point: a Study fans replicates out across a worker
// pool and aggregates convergence statistics. Replicate seeds derive
// from (root seed, replicate index) alone, so the report is identical
// at any worker count.
func ExampleNewStudy() {
	study, err := passivespread.NewStudy(passivespread.StudySpec{
		Replicates: 50,
		Options:    passivespread.Options{N: 512, Seed: 1},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := study.Run(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("replicates:", report.Convergence.Replicates)
	fmt.Println("all converged:", report.Convergence.SuccessRate == 1)
	fmt.Println("median t_con within cap:", report.Convergence.Rounds.Median < 3600)
	// Output:
	// replicates: 50
	// all converged: true
	// median t_con within cap: true
}

// Stream delivers each replicate's result as soon as it finishes —
// arrival order varies, per-replicate content never does.
func ExampleStudy_Stream() {
	study, err := passivespread.NewStudy(passivespread.StudySpec{
		Replicates: 8,
		Options:    passivespread.Options{N: 256, Seed: 2},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	converged := 0
	for r := range study.Stream(context.Background()) {
		if r.Err == nil && r.Result.Converged {
			converged++
		}
	}
	fmt.Println("converged:", converged)
	// Output:
	// converged: 8
}

// The one-call entry point: FET from the worst-case start.
func ExampleDisseminate() {
	res, err := passivespread.Disseminate(passivespread.Options{
		N:    512,
		Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("all correct:", res.FinalX == 1)
	// Output:
	// converged: true
	// all correct: true
}

// Full control via the simulation Config: protocol, initializer, engine.
func ExampleRun() {
	res, err := passivespread.Run(passivespread.Config{
		N:         256,
		Protocol:  passivespread.NewFET(passivespread.SampleSize(256)),
		Init:      passivespread.FractionInit(0.5),
		Correct:   passivespread.OpinionOne,
		Seed:      7,
		MaxRounds: 10000,
		Engine:    passivespread.EngineAgentExact,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}

// The aggregate Markov chain scales to populations no agent-level
// simulator can touch.
func ExampleNewChain() {
	n := 10_000_000
	c := passivespread.NewChain(n, passivespread.SampleSize(n), 3)
	_, ok := c.HittingTime(c.StateAt(0, 0), 100000)
	fmt.Println("absorbed:", ok)
	// Output:
	// absorbed: true
}

// Each registered experiment reproduces one artifact of the paper.
func ExampleExperiments() {
	for _, e := range passivespread.Experiments()[:3] {
		fmt.Printf("%s: %s\n", e.ID, e.PaperRef)
	}
	// Output:
	// E01: Theorem 1
	// E02: Figure 1a
	// E03: Figure 1b
}
