package passivespread_test

import (
	"fmt"

	"passivespread"
)

// The one-call entry point: FET from the worst-case start.
func ExampleDisseminate() {
	res, err := passivespread.Disseminate(passivespread.Options{
		N:    512,
		Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("all correct:", res.FinalX == 1)
	// Output:
	// converged: true
	// all correct: true
}

// Full control via the simulation Config: protocol, initializer, engine.
func ExampleRun() {
	res, err := passivespread.Run(passivespread.Config{
		N:         256,
		Protocol:  passivespread.NewFET(passivespread.SampleSize(256)),
		Init:      passivespread.FractionInit(0.5),
		Correct:   passivespread.OpinionOne,
		Seed:      7,
		MaxRounds: 10000,
		Engine:    passivespread.EngineAgentExact,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}

// The aggregate Markov chain scales to populations no agent-level
// simulator can touch.
func ExampleNewChain() {
	n := 10_000_000
	c := passivespread.NewChain(n, passivespread.SampleSize(n), 3)
	_, ok := c.HittingTime(c.StateAt(0, 0), 100000)
	fmt.Println("absorbed:", ok)
	// Output:
	// absorbed: true
}

// Each registered experiment reproduces one artifact of the paper.
func ExampleExperiments() {
	for _, e := range passivespread.Experiments()[:3] {
		fmt.Printf("%s: %s\n", e.ID, e.PaperRef)
	}
	// Output:
	// E01: Theorem 1
	// E02: Figure 1a
	// E03: Figure 1b
}
