// Dynamics: side-by-side comparison of FET against classical consensus
// dynamics (Voter, 3-Majority, Undecided-State) and the Section 1.4
// clocked baseline, on the source-driven self-stabilizing
// bit-dissemination task.
//
// The scenario is adversarial: the population starts with a 9:1 majority
// on the WRONG opinion. Consensus dynamics lock onto the initial majority
// and never recover within a polylog horizon; the clocked baseline works
// but needs clocks (non-passive messages once self-stabilization is
// required); FET solves the task with passive 1-bit observations alone.
package main

import (
	"fmt"
	"log"
	"math"

	"passivespread"
)

const n = 1024

func main() {
	horizon := 40 * int(math.Pow(math.Log2(n), 2))
	ell := passivespread.SampleSize(n)
	fmt.Printf("task: %d agents, 1 source holding 1, start = 90%% on opinion 0\n", n)
	fmt.Printf("horizon: %d rounds (polylog scale)\n\n", horizon)
	fmt.Printf("%-28s %-10s %s\n", "protocol", "passive?", "outcome")

	protocols := []struct {
		proto   passivespread.Protocol
		passive string
	}{
		{passivespread.Voter(), "yes"},
		{passivespread.ThreeMajority(), "yes"},
		{passivespread.UndecidedState(), "yes"},
		{passivespread.NewFET(ell), "yes"},
	}
	for i, p := range protocols {
		res, err := passivespread.Run(passivespread.Config{
			N:             n,
			Protocol:      p.proto,
			Init:          passivespread.FractionInit(0.1),
			Correct:       passivespread.OpinionOne,
			Seed:          uint64(10 + i),
			MaxRounds:     horizon,
			CorruptStates: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-10s %s\n", p.proto.Name(), p.passive, outcome(res.Converged, res.Round, res.FinalX))
	}

	// The clocked baseline, in both clock models.
	for _, m := range []struct {
		mode   passivespread.ClockedMode
		desync bool
		label  string
	}{
		{passivespread.ModeSharedClock, false, "Clocked phases (shared clock)"},
		{passivespread.ModeLocalClocks, true, "Clocked phases (desynced)"},
	} {
		res, err := passivespread.RunClocked(passivespread.ClockedConfig{
			N:            n,
			Correct:      passivespread.OpinionOne,
			Mode:         m.mode,
			DesyncClocks: m.desync,
			Init:         passivespread.FractionInit(0.1),
			Seed:         20,
			MaxRounds:    horizon,
		})
		if err != nil {
			log.Fatal(err)
		}
		passive := "yes*"
		if m.mode == passivespread.ModeLocalClocks {
			passive = "NO"
		}
		fmt.Printf("%-28s %-10s %s\n", m.label, passive, outcome(res.Converged, res.Round, res.FinalX))
	}

	fmt.Println("\n*  shared clocks presume global time, which self-stabilization forbids;")
	fmt.Println("   restoring clocks via messages (desynced row) breaks passive communication.")
	fmt.Println("   majority-style dynamics lock onto the wrong initial majority; the voter")
	fmt.Println("   model drifts to the source's zealot opinion only after Θ(n) rounds.")
	fmt.Println("   FET alone is passive, self-stabilizing, and polylog-fast.")
}

func outcome(converged bool, round int, finalX float64) string {
	if converged {
		return fmt.Sprintf("reached source opinion at round %d", round)
	}
	return fmt.Sprintf("stuck at x = %.3f (never adopted the source bit)", finalX)
}
