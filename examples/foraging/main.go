// Foraging: the paper's motivating scenario (Section 1.1). A group of
// animals forages an area whose eastern or western side is preferable.
// A few knowledgeable animals simply stay on the better side; everyone
// else can only scan and estimate how many animals are on each side, and
// move. Nobody can tell who is knowledgeable.
//
// The example runs two seasons. In season 1 the east side is better; in
// season 2 the environment changes and the west side becomes better —
// the group, whose state is now "arbitrary" relative to the new truth,
// must re-stabilize. This is exactly the self-stabilizing
// bit-dissemination problem under passive communication, solved by FET.
package main

import (
	"fmt"
	"log"

	"passivespread"
)

const (
	groupSize     = 2048
	knowledgeable = 4
)

func season(name string, eastBetter bool, startEastFraction float64, seed uint64) {
	correct := "west"
	if eastBetter {
		correct = "east"
	}
	fmt.Printf("— %s: the %s side is better (only %d of %d animals know) —\n",
		name, correct, knowledgeable, groupSize)

	res, err := passivespread.Disseminate(passivespread.Options{
		N:       groupSize,
		Sources: knowledgeable,
		// Opinion 1 = "forage east". The knowledgeable animals hold the
		// correct side; CorrectZero flips the truth to "west".
		CorrectZero:      !eastBetter,
		Init:             passivespread.FractionInit(startEastFraction),
		Seed:             seed,
		RecordTrajectory: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	for t, x := range res.Trajectory {
		if t%2 == 0 || t == len(res.Trajectory)-1 {
			east := int(x * groupSize)
			fmt.Printf("  day %3d: %4d east / %4d west\n", t, east, groupSize-east)
		}
	}
	if res.Converged {
		fmt.Printf("  the whole group settled on the %s side after %d days\n\n", correct, res.Round)
	} else {
		fmt.Printf("  the group had not settled after %d days (x = %.3f)\n\n", res.Rounds, res.FinalX)
	}
}

func main() {
	// Season 1: east is better; the group starts scattered arbitrarily.
	season("season 1", true, 0.31, 7)

	// Season 2: the environment flipped — west is now better. The group
	// is in the worst possible starting state: everyone on the east side,
	// convinced by last season. Self-stabilization handles it.
	season("season 2 (environment changed)", false, 0.999, 8)
}
