// Hugescale: simulate the FET dynamics for a population of one billion
// agents using the aggregate Markov-chain engine.
//
// Agent-level simulation at n = 10⁹ would need gigabytes and hours; the
// aggregate engine simulates the exact opinion-count process of
// Observation 1 — one O(ℓ) probability computation and two O(1) binomial
// draws per round — so whole trajectories take milliseconds. The example
// sweeps population sizes across six orders of magnitude to show the
// polylog scaling of Theorem 1 directly.
package main

import (
	"fmt"

	"passivespread"
)

func main() {
	fmt.Println("FET convergence from the all-wrong start, aggregate engine")
	fmt.Printf("%15s  %6s  %s\n", "population", "ℓ", "t_con per trial")

	for _, n := range []int{1_000, 1_000_000, 1_000_000_000} {
		ell := passivespread.SampleSize(n)
		fmt.Printf("%15d  %6d  ", n, ell)
		for trial := 0; trial < 8; trial++ {
			c := passivespread.NewChain(n, ell, uint64(trial)+1)
			rounds, ok := c.HittingTime(c.StateAt(0, 0), 100_000)
			if !ok {
				fmt.Print("∞ ")
				continue
			}
			fmt.Printf("%d ", rounds)
		}
		fmt.Println()
	}

	fmt.Println("\na million-fold population increase costs about one extra round:")
	fmt.Println("the bounce multiplies the correct-opinion count by ≈ℓ per round,")
	fmt.Println("so the climb from 1/n to 1 takes ~log(n)/log(ℓ) rounds.")
}
