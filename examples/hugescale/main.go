// Hugescale: simulate the FET dynamics for populations up to one hundred
// million agents with the aggregate occupancy engine, and to one billion
// with the (K_t, K_{t+1}) Markov chain.
//
// Agent-level simulation at n = 10⁸ would need gigabytes and hours. The
// aggregate engine keeps only the occupancy counts per (opinion, stored
// count) state — at most 2(ℓ+1) integers — and advances a round with
// O(ℓ) multinomial updates, so a worst-case dissemination (every agent
// starting wrong with adversarially corrupted memory) finishes in
// seconds while remaining agent-level exact in distribution. The Markov
// chain compresses further, to the opinion-count pair alone. The example
// sweeps population sizes across six orders of magnitude to show the
// polylog scaling of Theorem 1 directly.
package main

import (
	"fmt"
	"time"

	"passivespread"
)

func main() {
	fmt.Println("FET convergence from the all-wrong start (worst case:")
	fmt.Println("corrupted memories, every non-source agent wrong)")

	fmt.Println("\naggregate occupancy engine — agent-level-exact statistics:")
	fmt.Printf("%15s  %6s  %-28s %s\n", "population", "ℓ", "t_con per trial", "elapsed")
	for _, n := range []int{1_000, 1_000_000, 100_000_000} {
		ell := passivespread.SampleSize(n)
		fmt.Printf("%15d  %6d  ", n, ell)
		start := time.Now()
		cell := ""
		for trial := 0; trial < 8; trial++ {
			res, err := passivespread.Disseminate(passivespread.Options{
				N:      n,
				Seed:   uint64(trial) + 1,
				Engine: passivespread.EngineAggregate,
			})
			if err != nil {
				fmt.Println(err)
				return
			}
			if !res.Converged {
				cell += "∞ "
				continue
			}
			cell += fmt.Sprintf("%d ", res.Round)
		}
		fmt.Printf("%-28s %v\n", cell, time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nMarkov-chain engine — the opinion-count process alone:")
	fmt.Printf("%15s  %6s  %s\n", "population", "ℓ", "t_con per trial")
	for _, n := range []int{1_000_000_000} {
		ell := passivespread.SampleSize(n)
		fmt.Printf("%15d  %6d  ", n, ell)
		for trial := 0; trial < 8; trial++ {
			c := passivespread.NewChain(n, ell, uint64(trial)+1)
			rounds, ok := c.HittingTime(c.StateAt(0, 0), 100_000)
			if !ok {
				fmt.Print("∞ ")
				continue
			}
			fmt.Printf("%d ", rounds)
		}
		fmt.Println()
	}

	fmt.Println("\na million-fold population increase costs about one extra round:")
	fmt.Println("the bounce multiplies the correct-opinion count by ≈ℓ per round,")
	fmt.Println("so the climb from 1/n to 1 takes ~log(n)/log(ℓ) rounds.")
}
