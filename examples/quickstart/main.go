// Quickstart: disseminate one bit from a single source to 1023 other
// agents that start on the wrong opinion with corrupted memories, using
// only passive observation of opinions (FET, Protocol 1 of the paper).
package main

import (
	"fmt"
	"log"

	"passivespread"
)

func main() {
	res, err := passivespread.Disseminate(passivespread.Options{
		N:                1024,
		Seed:             1,
		RecordTrajectory: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population: 1024 agents, 1 source, correct opinion: 1\n")
	fmt.Printf("samples per agent per round: 2ℓ = %d\n", 2*passivespread.SampleSize(1024))
	fmt.Printf("start: every non-source on the wrong opinion, memories corrupted\n\n")

	for t, x := range res.Trajectory {
		fmt.Printf("round %3d: x = %.4f\n", t, x)
	}
	if res.Converged {
		fmt.Printf("\nconverged: t_con = %d rounds (paper bound: O(log^{5/2} n))\n", res.Round)
	} else {
		fmt.Printf("\ndid not converge within %d rounds\n", res.Rounds)
	}
}
