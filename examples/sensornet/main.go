// Sensornet: fault-injected dissemination in a wireless sensor network.
//
// A fleet of cheap sensors must agree on a one-bit configuration flag
// (e.g. "radio channel A vs B") published by a gateway node. Sensors are
// too constrained to exchange protocol messages: each can only overhear
// which channel a few random peers are currently using — passive
// communication. Periodically, a fault burst corrupts an adversarially
// chosen fraction of the fleet (opinions and memories alike).
//
// Because FET is self-stabilizing, each burst is just a new "arbitrary
// initial configuration": the fleet re-converges after every burst. The
// example measures recovery time as a function of burst severity.
package main

import (
	"fmt"
	"log"

	"passivespread"
)

const fleet = 4096

func main() {
	fmt.Printf("sensor fleet: %d nodes, 1 gateway, flag bit = 1\n", fleet)
	fmt.Printf("per round each node overhears 2ℓ = %d random peers\n\n",
		2*passivespread.SampleSize(fleet))

	// Fault bursts of increasing severity: the adversary flips a fraction
	// of the fleet to the wrong flag and scrambles node memories. Each
	// burst is modeled as a fresh adversarial start at the post-fault
	// opinion mix — exactly the self-stabilization contract.
	bursts := []struct {
		name          string
		wrongFraction float64
	}{
		{"burst 1: 10% corrupted", 0.10},
		{"burst 2: 50% corrupted", 0.50},
		{"burst 3: 90% corrupted", 0.90},
		{"burst 4: 100% corrupted (worst case)", 1.0},
	}

	for i, b := range bursts {
		res, err := passivespread.Disseminate(passivespread.Options{
			N:    fleet,
			Init: passivespread.FractionInit(1 - b.wrongFraction),
			Seed: uint64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Converged {
			fmt.Printf("%-38s fleet did NOT recover within %d rounds\n", b.name, res.Rounds)
			continue
		}
		fmt.Printf("%-38s recovered in %3d rounds\n", b.name, res.Round)
	}

	fmt.Println("\nevery burst is recovered from without any reconfiguration message:")
	fmt.Println("the gateway never does anything but keep using the right channel.")
}
