// Example sweep draws a small phase diagram with the root Sweep API: FET
// success rate and median convergence time over a population × scenario
// grid, streamed as cells finish and rendered as a CSV artifact at the
// end.
//
// The core is three lines — spec, NewSweep, Run:
//
//	sweep, _ := passivespread.NewSweep(passivespread.SweepSpec{
//		Ns: []int{256, 1024, 4096}, Replicates: 24, Seed: 7})
//	report, _ := sweep.Run(context.Background())
//	fmt.Print(report.CSV())
//
// This example additionally crosses the scenario axis (worst case,
// observation noise, a mid-run environment flip) and uses Stream to show
// progress, which is how a long-running phase-diagram job would consume
// it. Rows are bit-identical for any worker count: cell c's study runs
// with root seed StreamSeed(7, c), never anything scheduling-dependent.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"passivespread"
)

func main() {
	scenarios := make([]passivespread.Scenario, 0, 3)
	for _, name := range []string{"worst-case", "noisy", "trend-flip"} {
		sc, ok := passivespread.ScenarioByName(name)
		if !ok {
			log.Fatalf("scenario %q not registered", name)
		}
		scenarios = append(scenarios, sc)
	}

	sweep, err := passivespread.NewSweep(passivespread.SweepSpec{
		Ns:         []int{256, 1024, 4096},
		Scenarios:  scenarios,
		Replicates: 24,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	cells := sweep.Cells()
	fmt.Printf("sweeping %d cells × %d replicates across %d workers\n",
		len(cells), sweep.Replicates(), sweep.Workers())

	var rows []passivespread.SweepRow
	for row := range sweep.Stream(context.Background()) {
		rows = append(rows, row)
		fmt.Printf("  [%d/%d] %-10s n=%-5d success %3.0f%%  median t_con %.0f\n",
			len(rows), len(cells), row.Scenario, row.N, 100*row.SuccessRate, row.Median)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Cell < rows[j].Cell })

	report := &passivespread.SweepReport{Cells: len(cells), Replicates: sweep.Replicates(), Rows: rows}
	fmt.Println("\nCSV artifact:")
	fmt.Print(report.CSV())
}
