package passivespread

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesBuildAndRun compiles every examples/ program and smoke-runs
// it, so example rot (an API change that breaks a README-advertised
// program, a panic on its fixed small inputs) fails tier-1 instead of
// surviving until a user copies the code. The examples run tiny fixed
// configurations by design; the slowest (the sweep grid) is capped by a
// generous timeout.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds and runs binaries; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no example programs found under examples/")
	}

	bin := t.TempDir()
	args := append([]string{"build", "-o", bin}, func() []string {
		pkgs := make([]string, len(names))
		for i, n := range names {
			pkgs[i] = "./examples/" + n
		}
		return pkgs
	}()...)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building examples: %v\n%s", err, out)
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			start := time.Now()
			run := exec.Command(filepath.Join(bin, name))
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed after %v: %v\n%s", name, time.Since(start), err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}
