package passivespread

import (
	"context"
	"fmt"
	"math"

	"passivespread/internal/experiment"
	"passivespread/internal/stats"
)

// The grid-shaped scaling experiments run through the public Sweep
// layer: E01 (Theorem 1 convergence-time scaling) sweeps the population
// axis across scenarios and engines, E13 (sample-size ablation) sweeps
// the ℓ axis. They live at the module root — not in internal/experiment
// — because they are consumers of the Sweep API, and they double as its
// full-scale exercise.

func init() {
	experiment.Register(experiment.Experiment{
		ID:       "E01",
		Title:    "FET convergence-time scaling (agent engine + aggregate chain)",
		PaperRef: "Theorem 1",
		Run:      runE01,
	})
	experiment.Register(experiment.Experiment{
		ID:       "E13",
		Title:    "Sample-size ablation: constant ℓ vs ℓ = Θ(log n)",
		PaperRef: "Section 5 (future work)",
		Run:      runE13,
	})
}

// pickInts returns quick when the config asks for a reduced scale.
func pickInts(cfg experiment.Config, full, quick []int) []int {
	if cfg.Quick || cfg.Smoke {
		return quick
	}
	return full
}

// pickInt is pickInts for a single value.
func pickInt(cfg experiment.Config, full, quick int) int {
	if cfg.Quick || cfg.Smoke {
		return quick
	}
	return full
}

// namedScenarios resolves registry presets; a missing name is a
// programming error (the built-ins register in this package's init).
func namedScenarios(names ...string) []Scenario {
	out := make([]Scenario, len(names))
	for i, name := range names {
		sc, ok := ScenarioByName(name)
		if !ok {
			panic(fmt.Sprintf("experiment: scenario %q is not registered", name))
		}
		out[i] = sc
	}
	return out
}

func runE01(cfg experiment.Config) (*experiment.Report, error) {
	rep := &experiment.Report{
		ID:       "E01",
		Title:    "FET convergence-time scaling (agent engine + aggregate chain)",
		PaperRef: "Theorem 1",
	}

	ns := pickInts(cfg, []int{256, 1024, 4096, 16384, 65536}, []int{256, 1024, 4096})
	trials := pickInt(cfg, 40, 8)
	scenarios := namedScenarios(DefaultScenario, "half-split", "uniform")

	sweep, err := NewSweep(SweepSpec{
		Ns:         ns,
		Scenarios:  scenarios,
		Replicates: trials,
		Workers:    cfg.Parallelism,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		return nil, err
	}

	// Render n-major (the paper's presentation) from the scenario-major
	// rows, and collect the worst-case medians for the shape check.
	byCell := map[[2]string]SweepRow{}
	for _, row := range report.Rows {
		byCell[[2]string{row.Scenario, fmt.Sprint(row.N)}] = row
	}
	agentTab := NewTable("n", "ℓ", "scenario", "trials", "mean", "median", "p95", "max")
	medians := make([]float64, 0, len(ns))
	for _, n := range ns {
		for _, sc := range scenarios {
			row := byCell[[2]string{sc.Name, fmt.Sprint(n)}]
			agentTab.AddRow(row.N, row.Ell, row.Scenario, row.Replicates, row.Mean, row.Median, row.P95, row.Max)
			if sc.Name == DefaultScenario {
				medians = append(medians, row.Median)
			}
		}
	}
	rep.AddTable("agent-engine convergence times (rounds)", agentTab)

	// Polylog fit on the worst-case medians: the Theorem 1 shape check.
	fit := stats.FitPolylog(ns, medians)
	rep.AddNote("polylog fit (worst-case medians): t_con ≈ %.2f·(ln n)^%.2f, R²=%.3f; paper upper bound exponent 5/2",
		fit.Coefficient, fit.Exponent, fit.R2)

	// The Markov-chain engine extends the same sweep far past
	// agent-engine reach on the same seed-derivation contract.
	chainNs := pickInts(cfg,
		[]int{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26},
		[]int{1 << 10, 1 << 14})
	chainTrials := pickInt(cfg, 30, 6)
	chainSweep, err := NewSweep(SweepSpec{
		Ns:         chainNs,
		Engines:    []EngineKind{EngineMarkovChain},
		Replicates: chainTrials,
		Workers:    cfg.Parallelism,
		Seed:       cfg.Seed ^ 0xabcd,
	})
	if err != nil {
		return nil, err
	}
	chainReport, err := chainSweep.Run(context.Background())
	if err != nil {
		return nil, err
	}
	chainTab := NewTable("n", "ℓ", "trials", "mean", "median", "p95")
	chainMedians := make([]float64, 0, len(chainNs))
	for _, row := range chainReport.Rows {
		chainTab.AddRow(row.N, row.Ell, row.Replicates, row.Mean, row.Median, row.P95)
		chainMedians = append(chainMedians, row.Median)
	}
	rep.AddTable("aggregate-chain convergence times from all-wrong (rounds)", chainTab)
	chainFit := stats.FitPolylog(chainNs, chainMedians)
	rep.AddNote("polylog fit (chain, worst case): t_con ≈ %.2f·(ln n)^%.2f, R²=%.3f",
		chainFit.Coefficient, chainFit.Exponent, chainFit.R2)
	return rep, nil
}

func runE13(cfg experiment.Config) (*experiment.Report, error) {
	rep := &experiment.Report{
		ID:       "E13",
		Title:    "Sample-size ablation: constant ℓ vs ℓ = Θ(log n)",
		PaperRef: "Section 5 (future work)",
	}

	n := pickInt(cfg, 4096, 1024)
	trials := pickInt(cfg, 30, 6)
	cap := 3000 * int(math.Log2(float64(n)))
	ells := []int{1, 2, 4, 8, 16, 24, 0} // 0 = the default ℓ = ⌈3·log₂ n⌉
	if cfg.Smoke {
		// The ℓ ∈ {1, 2} heavy tails dominate the quick run (tens of
		// seconds at the full cap); the smoke scale keeps the shape of
		// the sweep without them.
		cap = 200 * int(math.Log2(float64(n)))
		ells = []int{4, 8, 0}
	}

	sweep, err := NewSweep(SweepSpec{
		Ns:         []int{n},
		Ells:       ells,
		Replicates: trials,
		Workers:    cfg.Parallelism,
		Seed:       cfg.Seed,
		MaxRounds:  cap,
	})
	if err != nil {
		return nil, err
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		return nil, err
	}

	tab := NewTable("ℓ", "samples/round", "trials", "median t_con", "p95", "converged")
	for _, row := range report.Rows {
		tab.AddRow(row.Ell, 2*row.Ell, row.Replicates, row.Median, row.P95,
			fmt.Sprintf("%d/%d", row.Converged, row.Replicates))
	}
	rep.AddTable(fmt.Sprintf("n = %d, all-wrong start", n), tab)
	rep.AddNote("the paper leaves poly-log convergence with O(1) samples open (§5); " +
		"small constant ℓ still converges empirically but with heavier tails")
	return rep, nil
}
