package passivespread

import (
	"context"
	"fmt"
	"strings"

	"passivespread/internal/experiment"
)

// E23 compares FET's convergence-time distribution across observation
// topologies at a fixed population — the first experiment outside the
// paper's uniform-mixing assumption. It lives at the module root, like
// E01/E13, because it is a consumer of the public Sweep API (the
// Topologies axis it exercises is the topology layer's full-scale test).

func init() {
	experiment.Register(experiment.Experiment{
		ID:       "E23",
		Title:    "Cross-topology convergence: FET beyond uniform mixing",
		PaperRef: "Section 5 (future work: structured interaction)",
		Run:      runE23,
	})
}

func runE23(cfg experiment.Config) (*experiment.Report, error) {
	rep := &experiment.Report{
		ID:       "E23",
		Title:    "Cross-topology convergence: FET beyond uniform mixing",
		PaperRef: "Section 5 (future work: structured interaction)",
	}

	// The population is a perfect square so the torus is admissible.
	n := pickInt(cfg, 4096, 1024)
	trials := pickInt(cfg, 40, 6)
	// The diameter-bound rows (ring, torus) run to the cap when they do
	// not converge, so the quick scale tightens it explicitly.
	maxRounds := pickInt(cfg, 0, 1500) // 0 = default 400·log₂ n
	topologies := []Topology{
		nil, // complete: the paper's model, the baseline row
		RandomRegular(8),
		RandomRegular(64), // degree-scaling probe: does denser mixing restore FET?
		SmallWorld(4, 0.1),
		DynamicRewire(8, 0.2),
		Torus(),
		Ring(2),
	}
	if cfg.Smoke {
		// The censored rows run to the cap and dominate the runtime; the
		// smoke scale keeps the baseline and the two random digraphs.
		n = 1024
		trials = 4
		maxRounds = 400
		topologies = []Topology{nil, RandomRegular(8), RandomRegular(64)}
	}

	sweep, err := NewSweep(SweepSpec{
		Ns:         []int{n},
		Topologies: topologies,
		Replicates: trials,
		Workers:    cfg.Parallelism,
		Seed:       cfg.Seed,
		MaxRounds:  maxRounds,
	})
	if err != nil {
		return nil, err
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		return nil, err
	}

	tab := NewTable("topology", "trials", "converged", "mean", "median", "p95", "max")
	var completeMedian float64
	var survived, censored []string
	for _, row := range report.Rows {
		tab.AddRow(row.Topology, row.Replicates,
			fmt.Sprintf("%d/%d", row.Converged, row.Replicates),
			row.Mean, row.Median, row.P95, row.Max)
		if row.Topology == "complete" {
			completeMedian = row.Median
			continue
		}
		// A topology "survives" when a majority of its trials converge;
		// censored rows carry the round cap as their quantiles and must
		// not be read as convergence times.
		if 2*row.Converged > row.Replicates {
			label := row.Topology
			if completeMedian > 0 {
				label = fmt.Sprintf("%s (median ×%.1f vs complete)", row.Topology, row.Median/completeMedian)
			}
			survived = append(survived, label)
		} else {
			censored = append(censored, row.Topology)
		}
	}
	rep.AddTable(fmt.Sprintf("convergence-time quantiles by observation topology "+
		"(n = %d, worst-case start; non-converged trials censored at the round cap)", n), tab)

	if len(survived) > 0 {
		rep.AddNote("converged in a majority of trials: %s", strings.Join(survived, ", "))
	}
	if len(censored) > 0 {
		rep.AddNote("did not converge within the cap: %s — the trend signal needs enough mixing; "+
			"a single source cannot bootstrap it through constant-degree or diameter-bound graphs at this scale",
			strings.Join(censored, ", "))
	}
	rep.AddNote("Theorem 1 assumes uniform mixing (the complete row); the axis turns that assumption " +
		"into data — structure, not just size, decides whether self-stabilizing dissemination survives")
	return rep, nil
}
