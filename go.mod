module passivespread

go 1.24
