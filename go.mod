module passivespread

go 1.23
