package passivespread_test

import (
	"math"
	"testing"

	"passivespread"
)

// TestFaultInjectionRecovery drives repeated adversarial fault bursts:
// after each convergence, the adversary rewrites an arbitrary fraction of
// opinions and all internal memories, and the population must re-converge.
// Self-stabilization means each burst is just a fresh arbitrary start.
func TestFaultInjectionRecovery(t *testing.T) {
	const n = 1024
	bursts := []float64{0.9, 0.5, 0.999, 0.25, 1.0}
	for i, wrong := range bursts {
		res, err := passivespread.Disseminate(passivespread.Options{
			N:    n,
			Seed: uint64(1000 + i),
			Init: passivespread.FractionInit(1 - wrong),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("burst %d (%.0f%% corrupted): no recovery (x = %v)",
				i, wrong*100, res.FinalX)
		}
	}
}

// TestConvergencePolylogShape is the headline integration check: the
// median convergence time across a geometric n-sweep must fit a polylog
// with a small exponent (Theorem 1's bound is 5/2), far from any
// polynomial growth.
func TestConvergencePolylogShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep")
	}
	ns := []int{1 << 8, 1 << 11, 1 << 14, 1 << 17, 1 << 20}
	const trials = 9
	medians := make([]float64, len(ns))
	for i, n := range ns {
		times := make([]float64, trials)
		ell := passivespread.SampleSize(n)
		for trial := range times {
			c := passivespread.NewChain(n, ell, uint64(n*31+trial))
			rounds, ok := c.HittingTime(c.StateAt(0, 0), 100000)
			if !ok {
				t.Fatalf("n=%d trial=%d: no absorption", n, trial)
			}
			times[trial] = float64(rounds)
		}
		sorted := append([]float64(nil), times...)
		for a := range sorted {
			for b := a + 1; b < len(sorted); b++ {
				if sorted[b] < sorted[a] {
					sorted[a], sorted[b] = sorted[b], sorted[a]
				}
			}
		}
		medians[i] = sorted[trials/2]
	}
	// If t_con were polynomial in n, medians would grow by ~8× per 8× n;
	// polylog growth over this range is a factor well under 3 end-to-end.
	growth := medians[len(medians)-1] / medians[0]
	if growth > 5 {
		t.Fatalf("median grew %vx from n=%d to n=%d — not polylog: %v",
			growth, ns[0], ns[len(ns)-1], medians)
	}
	// And convergence at the largest n must sit far below even log³ n.
	if bound := math.Pow(math.Log(float64(ns[len(ns)-1])), 3); medians[len(medians)-1] > bound {
		t.Fatalf("median %v exceeds log³ n = %v", medians[len(medians)-1], bound)
	}
}

// TestSymmetricZeroSideEndToEnd exercises the whole stack with the
// correct opinion on the 0 side.
func TestSymmetricZeroSideEndToEnd(t *testing.T) {
	res, err := passivespread.Disseminate(passivespread.Options{
		N:           2048,
		Seed:        5,
		CorrectZero: true,
		Init:        passivespread.FractionInit(0.97), // nearly everyone wrong
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalX != 0 {
		t.Fatalf("zero-side stack run failed: %+v", res)
	}
}

// TestTrajectoryMonotoneTail checks a qualitative property of converged
// runs: the recorded trajectory ends in at least two all-correct rounds
// (the absorption witness used throughout the analysis).
func TestTrajectoryMonotoneTail(t *testing.T) {
	res, err := passivespread.Disseminate(passivespread.Options{
		N:                512,
		Seed:             9,
		RecordTrajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	m := len(res.Trajectory)
	if m < 2 || res.Trajectory[m-1] != 1 || res.Trajectory[m-2] != 1 {
		t.Fatalf("trajectory tail not an absorption witness: %v", res.Trajectory[max(0, m-3):])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
