// Package adversary provides the adversarial initial configurations of the
// self-stabilizing setting: the adversary chooses every non-source agent's
// starting opinion and (via sim.Config.CorruptStates / StateInit) its
// internal memory. Convergence must hold from all of them.
package adversary

import (
	"fmt"
	"math"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// AllWrong starts every non-source agent on the opinion opposite to
// correct — the classic hard case for rumor spreading (agents may "think"
// they are already informed).
type AllWrong struct {
	// Correct is the source's opinion; non-sources start at 1−Correct.
	Correct byte
}

var _ sim.Initializer = AllWrong{}

// Name implements sim.Initializer.
func (AllWrong) Name() string { return "all-wrong" }

// Assign implements sim.Initializer.
func (a AllWrong) Assign(opinions []byte, isSource []bool, _ *rng.Source) {
	wrong := 1 - a.Correct
	for i := range opinions {
		if !isSource[i] {
			opinions[i] = wrong
		}
	}
}

// AllCorrect starts every agent on the correct opinion (the easy case;
// useful for absorption tests).
type AllCorrect struct {
	Correct byte
}

var _ sim.Initializer = AllCorrect{}

// Name implements sim.Initializer.
func (AllCorrect) Name() string { return "all-correct" }

// Assign implements sim.Initializer.
func (a AllCorrect) Assign(opinions []byte, isSource []bool, _ *rng.Source) {
	for i := range opinions {
		if !isSource[i] {
			opinions[i] = a.Correct
		}
	}
}

// Uniform starts each non-source agent on an independent fair coin.
type Uniform struct{}

var _ sim.Initializer = Uniform{}

// Name implements sim.Initializer.
func (Uniform) Name() string { return "uniform" }

// Assign implements sim.Initializer.
func (Uniform) Assign(opinions []byte, isSource []bool, src *rng.Source) {
	for i := range opinions {
		if !isSource[i] {
			opinions[i] = src.Bit()
		}
	}
}

// Fraction starts with an exact fraction X of 1-opinions among the whole
// population (the engine pre-sets sources; Fraction tops up non-sources so
// the total count of 1s is round(X·n), shuffled uniformly).
type Fraction struct {
	// X is the target fraction of 1-opinions over the whole population,
	// in [0, 1].
	X float64
}

var _ sim.Initializer = Fraction{}

// Name implements sim.Initializer.
func (f Fraction) Name() string { return fmt.Sprintf("fraction(%.4f)", f.X) }

// Assign implements sim.Initializer.
func (f Fraction) Assign(opinions []byte, isSource []bool, src *rng.Source) {
	n := len(opinions)

	// Count the 1s already fixed by the sources and collect the free slots.
	fixedOnes := 0
	free := make([]int, 0, n)
	for i := range opinions {
		if isSource[i] {
			fixedOnes += int(opinions[i])
		} else {
			free = append(free, i)
		}
	}
	// One copy of the target arithmetic: the aggregate form is the source
	// of truth, so the two initialization paths cannot drift apart.
	need := f.AggregateOnes(n, len(free), fixedOnes, src)
	src.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for k, idx := range free {
		if k < need {
			opinions[idx] = sim.OpinionOne
		} else {
			opinions[idx] = sim.OpinionZero
		}
	}
}

// HalfSplit is the maximally undecided start: an exact 50/50 split.
func HalfSplit() Fraction { return Fraction{X: 0.5} }

// Aggregate forms of the stock initializers, so the occupancy engine can
// start at populations where a per-agent opinion array is not affordable.
// Each returns the same distribution over initial 1-counts as the
// corresponding Assign (though not the same per-seed draws: the aggregate
// engine is a distributional, not bitwise, twin of the agent engines).

var (
	_ sim.AggregateInitializer = AllWrong{}
	_ sim.AggregateInitializer = AllCorrect{}
	_ sim.AggregateInitializer = Uniform{}
	_ sim.AggregateInitializer = Fraction{}
)

// AggregateOnes implements sim.AggregateInitializer.
func (a AllWrong) AggregateOnes(_, nonSources, _ int, _ *rng.Source) int {
	if a.Correct == sim.OpinionZero {
		return nonSources // everyone starts on the wrong opinion, 1
	}
	return 0
}

// AggregateOnes implements sim.AggregateInitializer.
func (a AllCorrect) AggregateOnes(_, nonSources, _ int, _ *rng.Source) int {
	return int(a.Correct) * nonSources
}

// AggregateOnes implements sim.AggregateInitializer.
func (Uniform) AggregateOnes(_, nonSources, _ int, src *rng.Source) int {
	return src.Binomial(nonSources, 0.5)
}

// AggregateOnes implements sim.AggregateInitializer.
func (f Fraction) AggregateOnes(n, nonSources, sourceOnes int, _ *rng.Source) int {
	if f.X < 0 || f.X > 1 || math.IsNaN(f.X) {
		panic(fmt.Sprintf("adversary: Fraction with X = %v", f.X))
	}
	need := int(math.Round(f.X*float64(n))) - sourceOnes
	if need < 0 {
		need = 0
	}
	if need > nonSources {
		need = nonSources
	}
	return need
}

// SeedTrendState returns a sim.Config.StateInit hook that seeds every
// trend-following agent's stored count with an independent
// Binomial(ell, x0) draw. Combined with Fraction{X: x1} opinions, this
// places the FET Markov chain exactly at the grid point
// (x_t, x_{t+1}) = (x0, x1): conditioned on the previous round having had
// a 1-fraction of x0, the stored counts are i.i.d. Binomial(ℓ, x0).
func SeedTrendState(ell int, x0 float64) func(i int, agent sim.Agent, src *rng.Source) {
	return func(_ int, agent sim.Agent, src *rng.Source) {
		if seeder, ok := agent.(sim.TrendSeeder); ok {
			seeder.SeedPrevCount(src.Binomial(ell, x0))
		}
	}
}

// GridStart bundles the initial opinions and internal-state seeding that
// place the FET chain at (x_t, x_{t+1}) = (X0, X1).
type GridStart struct {
	// X0 is the emulated previous-round fraction x_t.
	X0 float64
	// X1 is the starting fraction x_{t+1} (the actual initial opinions).
	X1 float64
	// Ell is the protocol's per-half sample size.
	Ell int
}

// Init returns the opinion initializer part (fraction X1).
func (g GridStart) Init() sim.Initializer { return Fraction{X: g.X1} }

// StateInit returns the internal-state seeding part (counts ~ B(ℓ, X0)).
func (g GridStart) StateInit() func(int, sim.Agent, *rng.Source) {
	return SeedTrendState(g.Ell, g.X0)
}
