package adversary

import (
	"math"
	"strings"
	"testing"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

func setup(n, sources int, correct byte) (opinions []byte, isSource []bool) {
	opinions = make([]byte, n)
	isSource = make([]bool, n)
	for i := 0; i < sources; i++ {
		isSource[i] = true
		opinions[i] = correct
	}
	return opinions, isSource
}

func countOnes(op []byte) int {
	c := 0
	for _, v := range op {
		c += int(v)
	}
	return c
}

func TestAllWrong(t *testing.T) {
	op, isSrc := setup(100, 3, sim.OpinionOne)
	AllWrong{Correct: sim.OpinionOne}.Assign(op, isSrc, rng.New(1))
	if got := countOnes(op); got != 3 {
		t.Fatalf("ones = %d, want 3 (sources only)", got)
	}
	op, isSrc = setup(100, 3, sim.OpinionZero)
	AllWrong{Correct: sim.OpinionZero}.Assign(op, isSrc, rng.New(1))
	if got := countOnes(op); got != 97 {
		t.Fatalf("ones = %d, want 97", got)
	}
}

func TestAllCorrect(t *testing.T) {
	op, isSrc := setup(50, 1, sim.OpinionOne)
	AllCorrect{Correct: sim.OpinionOne}.Assign(op, isSrc, rng.New(1))
	if got := countOnes(op); got != 50 {
		t.Fatalf("ones = %d, want 50", got)
	}
}

func TestUniformBalanced(t *testing.T) {
	op, isSrc := setup(20000, 1, sim.OpinionOne)
	Uniform{}.Assign(op, isSrc, rng.New(2))
	frac := float64(countOnes(op)) / 20000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("uniform ones fraction = %v", frac)
	}
}

func TestFractionExactCount(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		op, isSrc := setup(1000, 1, sim.OpinionOne)
		Fraction{X: x}.Assign(op, isSrc, rng.New(3))
		want := int(math.Round(x * 1000))
		if want < 1 {
			want = 1 // the source always holds 1
		}
		if got := countOnes(op); got != want {
			t.Fatalf("X=%v: ones = %d, want %d", x, got, want)
		}
	}
}

func TestFractionDoesNotTouchSources(t *testing.T) {
	op, isSrc := setup(100, 5, sim.OpinionOne)
	Fraction{X: 0}.Assign(op, isSrc, rng.New(4))
	for i := 0; i < 5; i++ {
		if op[i] != sim.OpinionOne {
			t.Fatalf("source %d overwritten", i)
		}
	}
	if got := countOnes(op); got != 5 {
		t.Fatalf("ones = %d, want 5", got)
	}
}

func TestFractionShuffles(t *testing.T) {
	// The 1s must not all sit at the front of the non-source range.
	op, isSrc := setup(1000, 1, sim.OpinionOne)
	Fraction{X: 0.5}.Assign(op, isSrc, rng.New(5))
	firstHalfOnes := countOnes(op[:500])
	if firstHalfOnes < 150 || firstHalfOnes > 350 {
		t.Fatalf("fraction layout unshuffled: %d ones in first half", firstHalfOnes)
	}
}

func TestFractionPanicsOnBadX(t *testing.T) {
	for _, x := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Fraction{X: %v} did not panic", x)
				}
			}()
			op, isSrc := setup(10, 1, sim.OpinionOne)
			Fraction{X: x}.Assign(op, isSrc, rng.New(1))
		}()
	}
}

func TestHalfSplit(t *testing.T) {
	if got := HalfSplit().X; got != 0.5 {
		t.Fatalf("HalfSplit X = %v", got)
	}
}

func TestNames(t *testing.T) {
	if (AllWrong{}).Name() != "all-wrong" {
		t.Fatal((AllWrong{}).Name())
	}
	if (AllCorrect{}).Name() != "all-correct" {
		t.Fatal((AllCorrect{}).Name())
	}
	if (Uniform{}).Name() != "uniform" {
		t.Fatal((Uniform{}).Name())
	}
	if !strings.HasPrefix((Fraction{X: 0.25}).Name(), "fraction(") {
		t.Fatal((Fraction{X: 0.25}).Name())
	}
}

// seedRecorder records the count passed via SeedPrevCount.
type seedRecorder struct{ got int }

func (s *seedRecorder) Step(cur byte, _ sim.Observation) byte { return cur }
func (s *seedRecorder) SeedPrevCount(c int)                   { s.got = c }

func TestSeedTrendStateBinomialLaw(t *testing.T) {
	const (
		ell    = 20
		x0     = 0.3
		trials = 50000
	)
	hook := SeedTrendState(ell, x0)
	src := rng.New(6)
	sum := 0.0
	for i := 0; i < trials; i++ {
		rec := &seedRecorder{}
		hook(i, rec, src)
		if rec.got < 0 || rec.got > ell {
			t.Fatalf("seeded count %d out of range", rec.got)
		}
		sum += float64(rec.got)
	}
	mean := sum / trials
	if want := float64(ell) * x0; math.Abs(mean-want) > 0.1 {
		t.Fatalf("seeded mean = %v, want ≈%v", mean, want)
	}
}

// plainAgent does not implement TrendSeeder.
type plainAgent struct{}

func (plainAgent) Step(cur byte, _ sim.Observation) byte { return cur }

func TestSeedTrendStateIgnoresNonSeeders(t *testing.T) {
	// Must not panic on agents without SeedPrevCount.
	SeedTrendState(8, 0.5)(0, plainAgent{}, rng.New(7))
}

func TestGridStartParts(t *testing.T) {
	gs := GridStart{X0: 0.2, X1: 0.6, Ell: 16}
	init := gs.Init()
	if f, ok := init.(Fraction); !ok || f.X != 0.6 {
		t.Fatalf("GridStart.Init = %#v", init)
	}
	if gs.StateInit() == nil {
		t.Fatal("GridStart.StateInit returned nil")
	}
}
