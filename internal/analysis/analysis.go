// Package analysis assembles the repository's invariant checkers —
// the fetcheck suite. Each subpackage mechanically enforces one
// contract that the performance PRs rest on and that previously lived
// only in DESIGN.md prose and after-the-fact runtime gates:
//
//	detrand      determinism: no wall clocks, math/rand, map-order or
//	             ambient process state in deterministic packages
//	seedflow     every generator seed flows from rng.StreamSeed
//	rngmirror    raw RNG stream access carries exact-consumption
//	             accounting
//	hotpathalloc //fet:hotpath round loops stay allocation-free
//	errenvelope  serve errors always cross the wire as the typed
//	             envelope
//
// cmd/fetcheck is the multichecker front end; Check is the shared
// entry point it and the repo-wide self-test use.
package analysis

import (
	"passivespread/internal/analysis/detrand"
	"passivespread/internal/analysis/errenvelope"
	"passivespread/internal/analysis/fwk"
	"passivespread/internal/analysis/hotpathalloc"
	"passivespread/internal/analysis/rngmirror"
	"passivespread/internal/analysis/seedflow"
)

// All returns the full fetcheck suite in stable order.
func All() []*fwk.Analyzer {
	return []*fwk.Analyzer{
		detrand.Analyzer,
		seedflow.Analyzer,
		rngmirror.Analyzer,
		hotpathalloc.Analyzer,
		errenvelope.Analyzer,
	}
}

// ByName resolves a comma-separable analyzer name, or nil.
func ByName(name string) *fwk.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check loads the packages matching patterns (relative to dir) and
// runs the given analyzers (nil = all), returning position-sorted
// diagnostics.
func Check(dir string, patterns []string, analyzers []*fwk.Analyzer) ([]fwk.Diagnostic, error) {
	if analyzers == nil {
		analyzers = All()
	}
	pkgs, err := fwk.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return fwk.RunAnalyzers(pkgs, analyzers)
}
