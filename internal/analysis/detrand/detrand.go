// Package detrand forbids nondeterminism sources inside the
// repository's deterministic packages.
//
// Every engine, sweep and serve answer in this repo is content-
// addressed by (seed, cell): byte-identical output at any Workers ×
// Batch is the contract that the golden tests, the sweep-fabric merge
// verifier and the fetserve cache all rest on. A single wall-clock
// read or unordered map iteration whose result reaches an output
// breaks that silently — the diff only shows up replicates later, in
// a cache mismatch or a shard that refuses to merge.
//
// detrand applies to the root package and everything under internal/
// (cmd/ and examples/ are operator tooling and may time things). It
// reports:
//
//   - imports of math/rand and math/rand/v2 — all randomness must flow
//     from internal/rng's seeded streams;
//   - uses of time.Now, time.Since, time.Until — wall-clock reads
//     (time.Time values and durations are fine; reading the clock is
//     not);
//   - uses of os.Getenv, os.Environ, os.Getpid and
//     runtime.NumGoroutine — ambient process state;
//   - range over a map — iteration order is deliberately randomized by
//     the runtime, so any map range in a deterministic package needs
//     an order-insensitivity argument.
//
// Legitimate sites (an injected clock's default, a key-collection loop
// that sorts before use) carry //fet:allow detrand: <reason>.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"passivespread/internal/analysis/fwk"
)

// Analyzer is the detrand pass.
var Analyzer = &fwk.Analyzer{
	Name: "detrand",
	Doc:  "forbid nondeterminism sources (wall clocks, math/rand, map ranges, ambient process state) in deterministic packages",
	Run:  run,
}

// bannedFuncs maps package path → banned top-level identifiers.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":  "ambient process state",
		"Environ": "ambient process state",
		"Getpid":  "ambient process state",
	},
	"runtime": {
		"NumGoroutine": "scheduler-dependent value",
	},
}

// inScope reports whether a package is held to the determinism
// contract: the module root, anything under internal/, and (so the
// fixtures exercise the real rules) any bare single-element fixture
// path.
func inScope(pkgPath string) bool {
	if strings.HasPrefix(pkgPath, "passivespread/internal/") {
		return true
	}
	return !strings.Contains(pkgPath, "/")
}

func run(pass *fwk.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; all randomness must derive from internal/rng seeded streams", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[node.Sel]
				if obj == nil {
					return true
				}
				pkg := fwk.PkgPath(obj)
				if banned, ok := bannedFuncs[pkg]; ok {
					if why, ok := banned[obj.Name()]; ok {
						pass.Reportf(node.Pos(),
							"deterministic package uses %s.%s (%s); inject the value or derive it from the seed",
							pkg, obj.Name(), why)
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[node.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(node.Pos(),
						"range over a map in a deterministic package: iteration order is randomized; iterate a sorted key slice, or annotate why order cannot reach any output")
				}
			}
			return true
		})
	}
	return nil
}
