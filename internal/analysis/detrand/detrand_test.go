package detrand_test

import (
	"testing"

	"passivespread/internal/analysis/detrand"
	"passivespread/internal/analysis/fwk/fwktest"
)

func TestDetrand(t *testing.T) {
	fwktest.Run(t, "testdata", detrand.Analyzer, "detfix")
}
