// Package detfix exercises every detrand rule: banned imports,
// wall-clock reads, ambient process state, and map ranges, plus the
// //fet:allow escape hatch.
package detfix

import (
	_ "math/rand" // want `deterministic package imports math/rand`
	"os"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now`
	return time.Since(start) // want `time\.Since`
}

func clockValue() func() time.Time {
	return time.Now // want `time\.Now`
}

func ambient() string {
	return os.Getenv("HOME") // want `os\.Getenv`
}

func mapOrder(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `range over a map`
		sum += v
	}
	return sum
}

func mapOrderArgued(m map[string]int) int {
	sum := 0
	//fet:allow detrand: summation is commutative; iteration order cannot reach the result
	for _, v := range m {
		sum += v
	}
	return sum
}

// durationsAreFine shows that time.Time values and durations pass; only
// reading the clock is banned.
func durationsAreFine(d time.Duration) time.Duration { return 2 * d }
