// Package errenvelope enforces the serving layer's typed error
// vocabulary.
//
// Every fetserve error crosses the wire as the canonical JSON envelope
// {"error":{"code","message"}} with a code from the closed set
// invalidArgument / notFound / overloaded / internal — that is what
// the golden wire-contract tests pin and what clients switch on.
// A handler that writes raw error text (http.Error, a bare
// WriteHeader + body, an untyped fmt.Errorf reaching the envelope
// writer) silently downgrades a typed failure into unparseable prose.
//
// In serve packages (path element "serve"), errenvelope reports:
//
//   - any call to http.Error — the envelope writer is writeError;
//   - fmt.Errorf or errors.New passed directly to writeError — the
//     error reaches the wire as code "internal" with arbitrary text;
//     construct it with Errorf(Code..., ...) so the code is chosen,
//     not defaulted;
//   - WriteHeader with a constant status ≥ 400 outside writeError —
//     an error response bypassing the envelope entirely.
package errenvelope

import (
	"go/ast"
	"go/constant"

	"passivespread/internal/analysis/fwk"
)

// Analyzer is the errenvelope pass.
var Analyzer = &fwk.Analyzer{
	Name: "errenvelope",
	Doc:  "serve handlers must answer errors through the typed envelope (Errorf + writeError), never raw text",
	Run:  run,
}

func inScope(path string) bool { return fwk.PathTail(path, "serve") }

func run(pass *fwk.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			inWriteError := fn.Name.Name == "writeError"
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, inWriteError)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *fwk.Pass, call *ast.CallExpr, inWriteError bool) {
	callee := fwk.FuncFor(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	pkg := fwk.PkgPath(callee)
	name := callee.Name()
	switch {
	case pkg == "net/http" && name == "Error":
		pass.Reportf(call.Pos(),
			"http.Error writes raw text; answer through the typed envelope (writeError with an Errorf(Code..., ...) error)")
	case name == "WriteHeader" && !inWriteError:
		if len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
					pass.Reportf(call.Pos(),
						"WriteHeader(%d) outside writeError bypasses the error envelope; return a typed error instead", status)
				}
			}
		}
	case name == "writeError" && pkg == pass.Pkg.Path():
		if len(call.Args) != 2 {
			return
		}
		argCall, ok := ast.Unparen(call.Args[1]).(*ast.CallExpr)
		if !ok {
			return
		}
		argCallee := fwk.FuncFor(pass.TypesInfo, argCall)
		if argCallee == nil {
			return
		}
		argPkg := fwk.PkgPath(argCallee)
		if (argPkg == "fmt" && argCallee.Name() == "Errorf") || (argPkg == "errors" && argCallee.Name() == "New") {
			pass.Reportf(argCall.Pos(),
				"untyped %s.%s reaches the envelope writer and defaults to code \"internal\"; construct it with Errorf(Code..., ...)",
				argPkg, argCallee.Name())
		}
	}
}
