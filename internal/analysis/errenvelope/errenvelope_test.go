package errenvelope_test

import (
	"testing"

	"passivespread/internal/analysis/errenvelope"
	"passivespread/internal/analysis/fwk/fwktest"
)

func TestErrEnvelope(t *testing.T) {
	fwktest.Run(t, "testdata", errenvelope.Analyzer, "serve")
}
