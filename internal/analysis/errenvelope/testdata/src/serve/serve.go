// Package serve exercises the errenvelope rules: serve handlers answer
// errors only through the typed envelope writer, never raw text, bare
// status codes, or untyped errors.
package serve

import (
	"errors"
	"fmt"
	"net/http"
)

type envErr struct {
	code string
	msg  string
}

func (e *envErr) Error() string { return e.code + ": " + e.msg }

// Errorf builds a typed envelope error, mirroring the real serve API.
func Errorf(code, format string, args ...any) error {
	return &envErr{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError is the envelope writer; it alone may set error statuses.
func writeError(w http.ResponseWriter, err error) {
	w.WriteHeader(http.StatusInternalServerError)
	fmt.Fprintln(w, err)
}

func rawText(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error writes raw text`
}

func bareStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusNotFound) // want `WriteHeader\(404\) outside writeError bypasses the error envelope`
}

func untyped(w http.ResponseWriter) {
	writeError(w, fmt.Errorf("no such cell"))  // want `untyped fmt\.Errorf reaches the envelope writer`
	writeError(w, errors.New("no such cell"))  // want `untyped errors\.New reaches the envelope writer`
	writeError(w, Errorf("notFound", "typed")) // the typed construction passes
}
