// Package fwk is the repository's static-analysis framework: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass shape on the standard library alone.
//
// The build environment bakes in no third-party modules, so the usual
// x/tools multichecker scaffolding is unavailable; fwk provides the
// same contract — an Analyzer is a named Run function over a
// type-checked package, reporting position-anchored diagnostics — with
// two repo-specific additions baked into the driver:
//
//   - //fet:allow <analyzer>: <reason> suppresses that analyzer's
//     diagnostics on the directive's line and the line below it. The
//     reason is mandatory: every exemption from a repo invariant is a
//     documented exemption.
//   - //fet:hotpath marks a function whose body the hotpathalloc
//     analyzer audits for allocating constructs (see IsHotpath).
//
// Malformed //fet: directives are themselves diagnostics, so a typo'd
// allowlist entry fails the build instead of silently disabling a
// check.
package fwk

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package via the Pass and reports findings with
// Pass.Reportf; returning an error aborts the whole fetcheck run
// (reserved for internal failures, not findings).
type Analyzer struct {
	Name string
	Doc  string
	// Aliases are additional keys accepted by //fet:allow directives
	// for this analyzer (hotpathalloc also answers to "alloc").
	Aliases []string
	Run     func(*Pass) error
}

// keys returns every //fet:allow key that addresses this analyzer.
func (a *Analyzer) keys() []string { return append([]string{a.Name}, a.Aliases...) }

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	allows map[string]map[int][]string // file → line → allowed keys
	sink   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a matching //fet:allow
// directive covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) allowed(pos token.Position) bool {
	lines := p.allows[pos.Filename]
	if lines == nil {
		return false
	}
	for _, key := range lines[pos.Line] {
		for _, want := range p.Analyzer.keys() {
			if key == want {
				return true
			}
		}
	}
	return false
}

// Directive prefixes. allowPrefix demands "key: reason"; hotpathDirective
// is exact.
const (
	hotpathDirective = "//fet:hotpath"
	allowPrefix      = "//fet:allow "
	directivePrefix  = "//fet:"
)

// IsHotpath reports whether fn carries the //fet:hotpath directive in
// its doc comment group.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// parseAllow splits a well-formed allow directive into its key. It
// returns ok=false when the text is not an allow directive at all, and
// a non-empty problem when it is one but malformed (missing key or
// reason).
func parseAllow(text string) (key string, ok bool, problem string) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", false, ""
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	key, reason, found := strings.Cut(rest, ":")
	key = strings.TrimSpace(key)
	if !found || key == "" || strings.TrimSpace(reason) == "" {
		return "", true, "want \"//fet:allow <analyzer>: <reason>\""
	}
	return key, true, ""
}

// directiveIndex scans a package's comments once, building the
// per-line allow index and reporting malformed //fet: directives as
// diagnostics of the pseudo-analyzer "directive".
func directiveIndex(fset *token.FileSet, files []*ast.File, sink *[]Diagnostic) map[string]map[int][]string {
	allows := map[string]map[int][]string{}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				if text == hotpathDirective {
					continue
				}
				key, isAllow, problem := parseAllow(text)
				switch {
				case !isAllow:
					*sink = append(*sink, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown //fet: directive %q (want //fet:hotpath or //fet:allow)", text)})
				case problem != "":
					*sink = append(*sink, Diagnostic{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("malformed allow directive %q: %s", text, problem)})
				default:
					byLine := allows[pos.Filename]
					if byLine == nil {
						byLine = map[int][]string{}
						allows[pos.Filename] = byLine
					}
					// The directive covers its own line (inline form) and
					// the next line (standalone form above the statement).
					byLine[pos.Line] = append(byLine[pos.Line], key)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], key)
				}
			}
		}
	}
	return allows
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Directive hygiene
// (malformed //fet: comments) is checked once per package.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := directiveIndex(pkg.Fset, pkg.Files, &diags)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				allows:    allows,
				sink:      &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// FuncFor resolves the called function or method of a call expression,
// or nil when the callee is not a declared func (a conversion, a
// builtin, a func-typed variable).
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// PkgPath returns the defining package path of obj ("" for builtins
// and universe objects).
func PkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// PathTail reports whether pkgPath's final path element equals name:
// "passivespread/internal/rng" and the fixture path "rng" both answer
// to "rng". Analyzers use it so scope rules carry over to testdata
// fixture packages unchanged.
func PathTail(pkgPath, name string) bool {
	return pkgPath == name || strings.HasSuffix(pkgPath, "/"+name)
}
