package fwk

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one dependency-free source string and runs the
// given analyzers over it, returning the diagnostics.
func checkSrc(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
	diags, err := RunAnalyzers([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// reportEveryFunc flags every function declaration; used to observe
// where //fet:allow suppresses.
func reportEveryFunc(name string, aliases ...string) *Analyzer {
	return &Analyzer{
		Name:    name,
		Doc:     "test analyzer",
		Aliases: aliases,
		Run: func(pass *Pass) error {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fn, ok := decl.(*ast.FuncDecl); ok {
						pass.Reportf(fn.Pos(), "func %s", fn.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

func TestAllowDirectiveSuppresses(t *testing.T) {
	src := `package p

func flagged() {}

//fet:allow testcheck: reasoned exemption
func standalone() {}

func inline() {} //fet:allow testcheck: inline exemption

//fet:allow other: wrong analyzer
func wrongKey() {}
`
	diags := checkSrc(t, src, reportEveryFunc("testcheck"))
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"func flagged", "func wrongKey"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
}

func TestAllowDirectiveAlias(t *testing.T) {
	src := `package p

//fet:allow short: alias addresses the analyzer
func aliased() {}
`
	diags := checkSrc(t, src, reportEveryFunc("longname", "short"))
	if len(diags) != 0 {
		t.Errorf("alias did not suppress: %v", diags)
	}
}

func TestMalformedDirectivesAreDiagnostics(t *testing.T) {
	src := `package p

//fet:allow testcheck
func missingReason() {}

//fet:allow : no key
func missingKey() {}

//fet:frobnicate
func unknown() {}
`
	diags := checkSrc(t, src)
	var malformed, unknown int
	for _, d := range diags {
		if d.Analyzer != "directive" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		switch {
		case strings.Contains(d.Message, "malformed allow directive"):
			malformed++
		case strings.Contains(d.Message, "unknown //fet: directive"):
			unknown++
		}
	}
	if malformed != 2 || unknown != 1 {
		t.Errorf("got %d malformed + %d unknown directive diagnostics, want 2 + 1: %v", malformed, unknown, diags)
	}
}

func TestIsHotpath(t *testing.T) {
	src := `package p

//fet:hotpath
func hot() {}

// plain doc comment.
func cold() {}

func bare() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"hot": true, "cold": false, "bare": false}
	for _, decl := range f.Decls {
		fn := decl.(*ast.FuncDecl)
		if got := IsHotpath(fn); got != want[fn.Name.Name] {
			t.Errorf("IsHotpath(%s) = %v, want %v", fn.Name.Name, got, want[fn.Name.Name])
		}
	}
}

func TestPathTail(t *testing.T) {
	cases := []struct {
		path, name string
		want       bool
	}{
		{"passivespread/internal/rng", "rng", true},
		{"rng", "rng", true},
		{"passivespread/internal/serve", "serve", true},
		{"passivespread/internal/rngx", "rng", false},
		{"strings", "rng", false},
	}
	for _, c := range cases {
		if got := PathTail(c.path, c.name); got != c.want {
			t.Errorf("PathTail(%q, %q) = %v, want %v", c.path, c.name, got, c.want)
		}
	}
}
