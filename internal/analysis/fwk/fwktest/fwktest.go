// Package fwktest runs fwk analyzers over testdata fixture packages
// and checks their diagnostics against // want comments — the
// analysistest contract, reimplemented on the standard library.
//
// Fixtures live under <testdata>/src/<importpath>/. A fixture package
// may import sibling fixtures by their path under src/ (a stub "rng",
// say), which are type-checked from source; any other import is
// resolved to real export data via `go list -export`.
//
// Expectations are inline comments on the offending line:
//
//	src := rand.New(nil) // want `math/rand`
//
// Each quoted string is a regular expression that must match exactly
// one diagnostic reported on that line; unmatched expectations and
// unexpected diagnostics both fail the test.
package fwktest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"passivespread/internal/analysis/fwk"
)

// Run loads each fixture package under dir/src and applies the
// analyzer, failing t on any mismatch with the // want expectations.
func Run(t *testing.T, dir string, analyzer *fwk.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := newLoader(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range pkgPaths {
		pkg, err := loader.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := fwk.RunAnalyzers([]*fwk.Package{pkg.analysisPkg}, []*fwk.Analyzer{analyzer})
		if err != nil {
			t.Fatalf("running %s on %s: %v", analyzer.Name, path, err)
		}
		checkExpectations(t, path, pkg, diags)
	}
}

type fixturePkg struct {
	analysisPkg *fwk.Package
	wants       []*expectation
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// loader type-checks fixture packages from source, memoized, with
// non-fixture imports resolved through real export data.
type loader struct {
	srcDir   string
	fset     *token.FileSet
	conf     types.Config
	pkgs     map[string]*fixturePkg
	inFlight map[string]bool
	exports  *lazyExports
}

func newLoader(srcDir string) (*loader, error) {
	l := &loader{
		srcDir:   srcDir,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*fixturePkg{},
		inFlight: map[string]bool{},
	}
	l.exports = &lazyExports{fset: l.fset}
	l.conf = types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	return l, nil
}

// loaderImporter adapts loader to types.Importer: fixture-local paths
// are built from source, everything else from export data.
type loaderImporter loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(l.srcDir, path); isDir(dir) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.analysisPkg.Types, nil
	}
	return l.exports.Import(path)
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.inFlight[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	l.inFlight[path] = true
	defer delete(l.inFlight, path)

	dir := filepath.Join(l.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		w, err := parseWants(l.fset, f)
		if err != nil {
			return nil, err
		}
		wants = append(wants, w...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	info := fwk.NewTypesInfo()
	tpkg, err := l.conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %v", path, err)
	}
	pkg := &fixturePkg{
		analysisPkg: &fwk.Package{
			Path:      path,
			Fset:      l.fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		},
		wants: wants,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// lazyExports resolves non-fixture imports through `go list -export`,
// invoked at most once per missing batch and cached.
type lazyExports struct {
	fset    *token.FileSet
	imp     types.Importer
	exports map[string]string
}

func (le *lazyExports) Import(path string) (*types.Package, error) {
	if le.exports == nil {
		le.exports = map[string]string{}
	}
	if _, ok := le.exports[path]; !ok {
		listed, err := fwk.ListExports(".", path)
		if err != nil {
			return nil, err
		}
		//fet:allow detrand: map→map table copy; insertion order cannot reach any output
		for p, f := range listed {
			le.exports[p] = f
		}
		// Rebuild the importer: its internal package cache predates the
		// new table entries.
		le.imp = nil
	}
	if le.imp == nil {
		le.imp = fwk.NewImporter(le.fset, le.exports)
	}
	return le.imp.Import(path)
}

// checkExpectations cross-matches diagnostics against wants.
func checkExpectations(t *testing.T, path string, pkg *fixturePkg, diags []fwk.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range pkg.wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", path, d)
		}
	}
	sort.Slice(pkg.wants, func(i, j int) bool {
		if pkg.wants[i].file != pkg.wants[j].file {
			return pkg.wants[i].file < pkg.wants[j].file
		}
		return pkg.wants[i].line < pkg.wants[j].line
	})
	for _, w := range pkg.wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", path, w.file, w.line, w.re)
		}
	}
}

// parseWants extracts // want "re" ["re" ...] expectations from one
// file's comments. Both double-quoted and backquoted patterns are
// accepted, as in analysistest.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
			for rest != "" {
				quoted, err := strconv.QuotedPrefix(rest)
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want comment %q: %v", pos, c.Text, err)
				}
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("%s: malformed want pattern %q: %v", pos, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: want pattern %q: %v", pos, pattern, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				rest = strings.TrimSpace(rest[len(quoted):])
			}
		}
	}
	return wants, nil
}
