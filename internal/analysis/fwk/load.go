package fwk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` over the patterns from
// dir and decodes the JSON stream. -export compiles every package and
// records its export-data file, which is what lets the type checker
// resolve imports without reparsing the world; -deps pulls in the
// transitive closure so the lookup table is complete.
func goList(dir string, patterns ...string) ([]listPackage, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from a path → export-data-file table
// via the standard gc importer.
type exportImporter struct {
	exports map[string]string
	gc      types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports}
	e.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// Load lists, parses and type-checks the packages matching the
// patterns (relative to dir). Test files are not loaded: the analyzers
// guard shipped invariants, and test packages routinely (and
// legitimately) use wall clocks, literal seeds and map ranges.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []listPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewTypesInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// ListExports resolves the patterns (and their transitive deps) to a
// package-path → export-data-file table, for callers that type-check
// their own sources — the fixture loader in fwktest.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewImporter returns a types.Importer over an export-data table (see
// ListExports), with "unsafe" handled natively.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return newExportImporter(fset, exports)
}

// NewTypesInfo allocates the types.Info maps every analyzer relies on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
