// Package hotpathalloc statically audits //fet:hotpath functions for
// allocating constructs.
//
// The PR 5/6/9 round loops are allocation-free by contract — the CI
// bench job pins allocs/op == 0 at runtime. That gate only fires on
// the benchmarked configurations; a new allocation behind an untested
// branch (an error path taken once per study, a rare topology) slips
// through until it costs a regression hunt. hotpathalloc complements
// the runtime gate at the source level: inside a function marked
//
//	//fet:hotpath
//
// it reports every construct the compiler may lower to a heap
// allocation or a scheduler interaction:
//
//   - make, new, and slice/map composite literals;
//   - append calls (grow-in-loop; hoist the buffer);
//   - func literals (closure environments escape);
//   - go and defer statements;
//   - any call into fmt;
//   - string concatenation and string ↔ []byte/[]rune conversions;
//   - interface boxing: a non-pointer concrete value passed to an
//     interface-typed parameter (pointers fit in the interface word;
//     other values may escape).
//
// Cold paths inside hot functions (a panic message, a once-per-run
// error) are annotated //fet:allow alloc: <reason>. The directive
// does not propagate into callees: the runtime gate owns whole-path
// coverage, this check owns the marked frames.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"passivespread/internal/analysis/fwk"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &fwk.Analyzer{
	Name:    "hotpathalloc",
	Doc:     "report allocating constructs inside //fet:hotpath functions",
	Aliases: []string{"alloc"},
	Run:     run,
}

func run(pass *fwk.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fwk.IsHotpath(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *fwk.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(node.Pos(), "go statement in hot path: spawn workers once, feed them per round")
		case *ast.DeferStmt:
			pass.Reportf(node.Pos(), "defer in hot path: run the epilogue inline")
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "func literal in hot path: closure environments escape to the heap")
			return false // its body is not this frame
		case *ast.CompositeLit:
			tv, ok := info.Types[node]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(node.Pos(), "slice literal in hot path: hoist the buffer onto the executor")
			case *types.Map:
				pass.Reportf(node.Pos(), "map literal in hot path: hoist the table onto the executor")
			}
		case *ast.BinaryExpr:
			if node.Op.String() == "+" {
				if tv, ok := info.Types[node]; ok && isString(tv.Type) {
					pass.Reportf(node.Pos(), "string concatenation in hot path allocates")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, node)
		}
		return true
	})
}

func checkCall(pass *fwk.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins and conversions.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path: allocate once at construction, reuse per round")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path: allocate once at construction, reuse per round")
			case "append":
				pass.Reportf(call.Pos(), "append in hot path: grow the buffer at construction, index per round")
			}
			return
		}
	default:
		_ = fun
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// A conversion: string ↔ byte/rune slices copy.
		to := tv.Type
		if len(call.Args) == 1 {
			if from, ok := info.Types[call.Args[0]]; ok {
				if (isString(to) && isByteOrRuneSlice(from.Type)) || (isByteOrRuneSlice(to) && isString(from.Type)) {
					pass.Reportf(call.Pos(), "string/slice conversion in hot path copies its operand")
				}
			}
		}
		return
	}
	callee := fwk.FuncFor(info, call)
	if callee != nil && fwk.PkgPath(callee) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates (and boxes every operand)", callee.Name())
		return
	}
	checkBoxing(pass, call)
}

// checkBoxing reports non-pointer concrete arguments passed to
// interface-typed parameters.
func checkBoxing(pass *fwk.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		t := at.Type
		if types.IsInterface(t) || at.IsNil() {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		pass.Reportf(arg.Pos(),
			"interface boxing in hot path: %s passed as %s may escape; pass a pointer or a concrete type", t, pt)
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
