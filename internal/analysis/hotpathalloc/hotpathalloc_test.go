package hotpathalloc_test

import (
	"testing"

	"passivespread/internal/analysis/fwk/fwktest"
	"passivespread/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	fwktest.Run(t, "testdata", hotpathalloc.Analyzer, "hotfix")
}
