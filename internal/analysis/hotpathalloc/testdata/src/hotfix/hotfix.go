// Package hotfix exercises every hotpathalloc rule inside a
// //fet:hotpath function, the //fet:allow alloc escape hatch (the
// analyzer's directive alias), and that unmarked functions are free to
// allocate.
package hotfix

import "fmt"

type point struct{ x, y int }

type consumer interface{ accept(v any) }

func work() {}

//fet:hotpath
func hot(t string) string {
	buf := make([]int, 8) // want `make in hot path`
	buf = append(buf, 1)  // want `append in hot path`
	m := map[int]int{}    // want `map literal in hot path`
	_ = m
	sl := []int{1, 2} // want `slice literal in hot path`
	_ = sl
	p := new(int) // want `new in hot path`
	_ = p
	go work()      // want `go statement in hot path`
	defer work()   // want `defer in hot path`
	f := func() {} // want `func literal in hot path`
	f()
	name := "round-" + t // want `string concatenation in hot path`
	b := []byte(name)    // want `string/slice conversion in hot path`
	_ = b
	fmt.Println(len(buf)) // want `fmt\.Println in hot path`
	return name
}

//fet:hotpath
func hotBoxed(c consumer, pt point) {
	c.accept(pt) // want `interface boxing in hot path`
	c.accept(&pt)
}

//fet:hotpath
func hotAllowed(broken bool) error {
	if broken {
		//fet:allow alloc: cold error path, taken at most once per run
		return fmt.Errorf("broken")
	}
	return nil
}

// coldSetup is unmarked: construction-time allocation is the point.
func coldSetup() []int { return make([]int, 8) }
