// Package rngmirror guards the exact-consumption contract around raw
// RNG stream access.
//
// The batched hot paths (rng.Batch, the fast observer's per-agent
// prefetch, the graph observer's fused counting kernels, lockstep's
// per-lane debt) are all mirrors: they must consume exactly the same
// number of stream outputs, in the same order, as the unbatched
// per-draw path they replace — otherwise every later draw of that
// stream diverges and the bit-identity gates fail far from the cause.
// The typed draw API (Intn, Float64, Bernoulli, Binomial, Batch)
// carries that accounting implicitly; raw access does not.
//
// rngmirror reports, outside internal/rng:
//
//   - calls to the raw-consumption kernels Source.Uint64, Fill,
//     Advance, CountPacked, CountPackedBlocks and Jump. Every such
//     site is a hand-maintained draw-count proof, and must say so:
//     //fet:allow rngmirror: <the accounting argument>.
//
// And inside internal/rng:
//
//   - raw-consumption kernels (Fill, Advance, CountPacked,
//     CountPackedBlocks) whose doc comment does not state their exact
//     consumption (the word "exactly") — the documentation the outside
//     annotations lean on.
package rngmirror

import (
	"go/ast"
	"go/types"
	"strings"

	"passivespread/internal/analysis/fwk"
)

// Analyzer is the rngmirror pass.
var Analyzer = &fwk.Analyzer{
	Name: "rngmirror",
	Doc:  "require documented exact-consumption accounting at every raw RNG stream access",
	Run:  run,
}

// rawMethods are the Source methods that consume stream outputs
// without the typed draw API's implicit accounting.
var rawMethods = map[string]bool{
	"Uint64":            true,
	"Fill":              true,
	"Advance":           true,
	"CountPacked":       true,
	"CountPackedBlocks": true,
	"Jump":              true,
}

// documentedKernels must declare their exact consumption in their doc
// comment inside internal/rng.
var documentedKernels = map[string]bool{
	"Fill":              true,
	"Advance":           true,
	"CountPacked":       true,
	"CountPackedBlocks": true,
}

func isRNGPkg(path string) bool { return fwk.PathTail(path, "rng") }

func run(pass *fwk.Pass) error {
	if isRNGPkg(pass.Pkg.Path()) {
		return checkKernelDocs(pass)
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := fwk.FuncFor(pass.TypesInfo, call)
			if callee == nil || !isRNGPkg(fwk.PkgPath(callee)) || !rawMethods[callee.Name()] {
				return true
			}
			if !isSourceMethod(callee) {
				return true
			}
			pass.Reportf(call.Pos(),
				"raw rng.Source.%s consumption outside internal/rng: state the draw-count accounting that keeps this site an exact mirror of the per-draw path (//fet:allow rngmirror: ...) or use a typed draw",
				callee.Name())
			return true
		})
	}
	return nil
}

// isSourceMethod reports whether fn is a method on rng.Source or
// *rng.Source.
func isSourceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Source"
}

// checkKernelDocs enforces, inside internal/rng, that each raw-
// consumption kernel documents its exact stream consumption.
func checkKernelDocs(pass *fwk.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !documentedKernels[fn.Name.Name] {
				continue
			}
			if fn.Doc == nil || !strings.Contains(strings.ToLower(fn.Doc.Text()), "exactly") {
				pass.Reportf(fn.Pos(),
					"raw-consumption kernel %s must document its exact stream consumption (say how many outputs it consumes, with the word \"exactly\")",
					fn.Name.Name)
			}
		}
	}
	return nil
}
