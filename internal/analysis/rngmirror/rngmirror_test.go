package rngmirror_test

import (
	"testing"

	"passivespread/internal/analysis/fwk/fwktest"
	"passivespread/internal/analysis/rngmirror"
)

func TestRNGMirror(t *testing.T) {
	fwktest.Run(t, "testdata", rngmirror.Analyzer, "mirrorfix", "rng")
}
