// Package mirrorfix exercises the rngmirror rule outside internal/rng:
// every raw-consumption call site must carry a draw-count accounting
// annotation; typed draws need nothing.
package mirrorfix

import "rng"

func raw(src *rng.Source) uint64 {
	return src.Uint64() // want `raw rng\.Source\.Uint64 consumption outside internal/rng`
}

func bulk(src *rng.Source, buf []uint64) {
	src.Fill(buf) // want `raw rng\.Source\.Fill consumption outside internal/rng`
}

func skip(src *rng.Source, n uint64) {
	src.Advance(n) // want `raw rng\.Source\.Advance consumption outside internal/rng`
}

func accounted(src *rng.Source, buf []uint64) {
	//fet:allow rngmirror: prefetches exactly len(buf) outputs, consumed one per draw by the caller
	src.Fill(buf)
}

func typed(src *rng.Source) int {
	return src.Intn(10)
}
