// Package rng is a stub of the real internal/rng surface for the
// rngmirror fixtures. Inside an rng package the analyzer checks that
// raw-consumption kernels document their exact consumption.
package rng

// Source is the stub generator.
type Source struct{ s uint64 }

// Fill writes exactly len(buf) successive stream outputs into buf, in
// draw order.
func (s *Source) Fill(buf []uint64) {
	for i := range buf {
		s.s++
		buf[i] = s.s
	}
}

// Advance discards the next n outputs.
func (s *Source) Advance(n uint64) { s.s += n } // want `kernel Advance must document its exact stream consumption`

// Uint64 returns the next raw stream output.
func (s *Source) Uint64() uint64 { s.s++; return s.s }

// Intn is a typed draw: the accounting is internal to rng.
func (s *Source) Intn(n int) int { return int(s.Uint64() % uint64(n)) }
