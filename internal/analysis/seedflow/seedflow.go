// Package seedflow protects the repository's single stream-derivation
// rule: every generator seed is StreamSeed(root, i).
//
// Sharding, the content-addressed serve cache, checkpoint resume and
// lockstep batching all assume that the generator consumed by
// (replicate i, agent j) is a pure function of (root seed, stream
// index) — never of scheduling, and never of an ad-hoc arithmetic
// mangle whose cross-stream decorrelation nobody has argued. seedflow
// flags seed derivations that bypass the documented constructors:
//
//   - rng.SplitMix64 calls outside internal/rng — raw derivation; use
//     rng.StreamSeed or rng.NewFrom;
//   - rng.New(x) and (*rng.Source).Reseed(x) where x does not visibly
//     flow from rng.StreamSeed: accepted are direct StreamSeed calls,
//     locals assigned from accepted expressions, and parameters,
//     fields or variables whose name contains "seed" (their derivation
//     is checked at the caller's own construction site).
//
// Anything else — literals, arithmetic on seeds (seed ^ 0xdead),
// foreign function results — is a diagnostic, answerable with
// //fet:allow seedflow: <reason> when a legacy stream is pinned by
// recorded experiments.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"passivespread/internal/analysis/fwk"
)

// Analyzer is the seedflow pass.
var Analyzer = &fwk.Analyzer{
	Name: "seedflow",
	Doc:  "require generator seeds to flow from rng.StreamSeed / documented stream constructors",
	Run:  run,
}

// isRNGPkg matches the real internal/rng package and its testdata
// stub.
func isRNGPkg(path string) bool { return fwk.PathTail(path, "rng") }

func run(pass *fwk.Pass) error {
	if isRNGPkg(pass.Pkg.Path()) {
		return nil // the constructors themselves live here
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *fwk.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := fwk.FuncFor(pass.TypesInfo, call)
		if callee == nil || !isRNGPkg(fwk.PkgPath(callee)) {
			return true
		}
		switch callee.Name() {
		case "SplitMix64":
			pass.Reportf(call.Pos(),
				"raw rng.SplitMix64 outside internal/rng: derive child streams with rng.StreamSeed or rng.NewFrom")
		case "New", "Reseed":
			if len(call.Args) != 1 {
				return true
			}
			if !seedPure(pass, fn, call.Args[0], nil) {
				pass.Reportf(call.Args[0].Pos(),
					"seed argument to rng.%s does not flow from rng.StreamSeed: ad-hoc derivations break the per-stream decorrelation contract (use rng.NewFrom or rng.StreamSeed)",
					callee.Name())
			}
		}
		return true
	})
}

// seedPure reports whether expr visibly derives from the stream
// contract: a direct StreamSeed call, a name carrying "seed" (the
// caller's derivation site is checked in its own package), or a local
// whose every assignment in fn is itself seed-pure.
func seedPure(pass *fwk.Pass, fn *ast.FuncDecl, expr ast.Expr, visiting map[types.Object]bool) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		callee := fwk.FuncFor(pass.TypesInfo, e)
		if callee != nil && isRNGPkg(fwk.PkgPath(callee)) && callee.Name() == "StreamSeed" {
			return true
		}
		return false
	case *ast.Ident:
		if namesSeed(e.Name) {
			return true
		}
		return localSeedPure(pass, fn, e, visiting)
	case *ast.SelectorExpr:
		return namesSeed(e.Sel.Name)
	default:
		return false
	}
}

func namesSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// localSeedPure scans fn for assignments and declarations of id and
// accepts id only if at least one assignment exists and all of them
// are seed-pure.
func localSeedPure(pass *fwk.Pass, fn *ast.FuncDecl, id *ast.Ident, visiting map[types.Object]bool) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	if visiting == nil {
		visiting = map[types.Object]bool{}
	}
	if visiting[obj] {
		return false // self-referential chain: nothing proven
	}
	visiting[obj] = true
	defer delete(visiting, obj)
	pure := true
	assigned := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(node.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[lid] == obj || pass.TypesInfo.Uses[lid] == obj {
					assigned = true
					if !seedPure(pass, fn, node.Rhs[i], visiting) {
						pure = false
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range node.Names {
				if pass.TypesInfo.Defs[name] == obj && i < len(node.Values) {
					assigned = true
					if !seedPure(pass, fn, node.Values[i], visiting) {
						pure = false
					}
				}
			}
		}
		return true
	})
	return assigned && pure
}
