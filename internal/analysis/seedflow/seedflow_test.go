package seedflow_test

import (
	"testing"

	"passivespread/internal/analysis/fwk/fwktest"
	"passivespread/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	fwktest.Run(t, "testdata", seedflow.Analyzer, "seedfix")
}
