// Package rng is a minimal stub of the real internal/rng surface, just
// enough for the seedflow fixtures to type-check. The analyzer matches
// it through fwk.PathTail, so the same rules apply as to the real one.
package rng

// Source is the stub generator.
type Source struct{ s uint64 }

// SplitMix64 is the raw derivation kernel.
func SplitMix64(x uint64) uint64 { return x * 0x9e3779b97f4a7c15 }

// StreamSeed derives stream i's seed from the root seed.
func StreamSeed(root, i uint64) uint64 { return SplitMix64(root + i) }

// New seeds a fresh generator.
func New(seed uint64) *Source { return &Source{s: seed} }

// NewFrom is New(StreamSeed(root, i)).
func NewFrom(root, i uint64) *Source { return New(StreamSeed(root, i)) }

// Reseed resets the generator onto seed's stream.
func (s *Source) Reseed(seed uint64) { s.s = seed }

// Uint64 returns the next output.
func (s *Source) Uint64() uint64 { s.s++; return s.s }
