// Package seedfix exercises the seedflow rules: seeds must visibly
// flow from rng.StreamSeed (directly, through a seed-pure local, or
// through a name carrying "seed"), and raw SplitMix64 stays inside rng.
package seedfix

import "rng"

type config struct{ Seed uint64 }

func goodDirect(root, i uint64) *rng.Source {
	return rng.New(rng.StreamSeed(root, i))
}

func goodLocal(root uint64) *rng.Source {
	s := rng.StreamSeed(root, 3)
	return rng.New(s)
}

func goodNamed(cfg config) *rng.Source {
	return rng.New(cfg.Seed)
}

func goodParam(laneSeed uint64) *rng.Source {
	return rng.New(laneSeed)
}

func badLiteral() *rng.Source {
	return rng.New(12345) // want `does not flow from rng\.StreamSeed`
}

func badMangle(cfg config) *rng.Source {
	return rng.New(cfg.Seed ^ 0xdead) // want `does not flow from rng\.StreamSeed`
}

func badLocal(root uint64) *rng.Source {
	x := root * 31
	return rng.New(x) // want `does not flow from rng\.StreamSeed`
}

func badReseed(src *rng.Source, x uint64) {
	src.Reseed(x + 1) // want `does not flow from rng\.StreamSeed`
}

func badSplit(root uint64) uint64 {
	return rng.SplitMix64(root) // want `raw rng\.SplitMix64 outside internal/rng`
}

func allowedLegacy(root uint64) *rng.Source {
	//fet:allow seedflow: pinned legacy stream; recorded tables depend on this exact derivation
	return rng.New(root*6364136223846793005 + 1442695040888963407)
}
