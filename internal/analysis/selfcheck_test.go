package analysis_test

import (
	"testing"

	"passivespread/internal/analysis"
)

// TestRepoIsClean runs the full fetcheck suite over the repository —
// the same invocation as CI's `go run ./cmd/fetcheck ./...` — and
// requires zero diagnostics. Every invariant exemption in the tree is
// therefore a reviewed //fet:allow with a reason, never an unnoticed
// violation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load is slow; run without -short")
	}
	diags, err := analysis.Check("../..", []string{"./..."}, nil)
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s); fix the site or annotate it with //fet:allow <analyzer>: <reason>", len(diags))
	}
}
