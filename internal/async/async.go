// Package async implements a sequential-activation (population-protocol
// style) variant of the FET dynamics, as an exploratory extension beyond
// the paper's synchronous model.
//
// The paper's related work grounds the problem in population protocols
// (Angluin et al. 2006), where agents activate one at a time under a
// uniformly random scheduler rather than in lockstep rounds. In this
// variant, each activation lets one agent draw its two ℓ-sample counts
// and apply the FET rule against the count stored at its *previous
// activation*. Time is reported in parallel units: n activations = 1
// round-equivalent.
//
// The empirical outcome is a NEGATIVE result, documented by experiment
// E22: the dynamics hover near x = 1/2 and do not converge within any
// polylog-scale horizon. The reason is structural and illuminates why
// the paper's synchronous rounds matter: in the synchronous protocol all
// agents compare the same two rounds, so their decisions are correlated
// and each round's drift concentrates into collective momentum (the
// speed build-up of Lemmas 7–10). Under sequential activation every
// agent's comparison window is a different, geometrically distributed
// stretch of the past; the trend estimates decorrelate, the momentum
// vanishes, and what remains is an unbiased wander around the center
// with only the O(1/n) source pull. Restoring coherence (e.g. with
// self-stabilizing phase clocks) is exactly the machinery the paper's
// passive-communication setting rules out.
//
// The all-correct configuration is still absorbing: once every opinion
// equals the source's, an activating agent observes the extreme count
// (ℓ on the 1 side, 0 on the 0 side), which can never lose the
// comparison against any stored value, so its opinion never changes.
package async

import (
	"fmt"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// Config describes one asynchronous FET run.
type Config struct {
	// N is the population size including sources (≥ 2).
	N int
	// Ell is the per-half sample size (≥ 1).
	Ell int
	// Sources is the number of agreeing sources (default 1).
	Sources int
	// Correct is the sources' opinion.
	Correct byte
	// Init chooses starting opinions (required).
	Init sim.Initializer
	// CorruptStates randomizes the stored counts adversarially.
	CorruptStates bool
	// Seed is the root randomness seed.
	Seed uint64
	// MaxParallelRounds caps the run in parallel-time units (each unit is
	// N activations). Required.
	MaxParallelRounds int
}

// Result reports an asynchronous run.
type Result struct {
	// Converged reports whether the all-correct configuration was
	// reached (absorbing; see the package comment).
	Converged bool
	// ParallelRound is the activation count divided by N at convergence,
	// or −1.
	ParallelRound float64
	// Activations is the number of executed activations.
	Activations int
	// FinalX is the final fraction of 1-opinions.
	FinalX float64
}

func (c *Config) validate() (Config, error) {
	cfg := *c
	if cfg.N < 2 {
		return cfg, fmt.Errorf("async: N = %d, want ≥ 2", cfg.N)
	}
	if cfg.Ell < 1 {
		return cfg, fmt.Errorf("async: Ell = %d, want ≥ 1", cfg.Ell)
	}
	if cfg.Sources == 0 {
		cfg.Sources = 1
	}
	if cfg.Sources < 1 || cfg.Sources >= cfg.N {
		return cfg, fmt.Errorf("async: Sources = %d out of [1, N)", cfg.Sources)
	}
	if cfg.Correct > 1 {
		return cfg, fmt.Errorf("async: Correct = %d", cfg.Correct)
	}
	if cfg.Init == nil {
		return cfg, fmt.Errorf("async: Init is required")
	}
	if cfg.MaxParallelRounds <= 0 {
		return cfg, fmt.Errorf("async: MaxParallelRounds = %d", cfg.MaxParallelRounds)
	}
	return cfg, nil
}

// Run executes the asynchronous FET dynamics.
func Run(cfg Config) (Result, error) {
	c, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	n := c.N

	opinions := make([]byte, n)
	counts := make([]int, n)
	isSource := make([]bool, n)
	for i := 0; i < c.Sources; i++ {
		isSource[i] = true
		opinions[i] = c.Correct
	}
	src := rng.New(c.Seed)
	c.Init.Assign(opinions, isSource, src)
	for i := 0; i < c.Sources; i++ {
		if opinions[i] != c.Correct {
			return Result{}, fmt.Errorf("async: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}
	if c.CorruptStates {
		for i := c.Sources; i < n; i++ {
			counts[i] = src.Intn(c.Ell + 1)
		}
	}

	ones := 0
	for _, o := range opinions {
		ones += int(o)
	}
	wantOnes := 0 // count of 1s in the all-correct configuration
	if c.Correct == sim.OpinionOne {
		wantOnes = n
	}

	res := Result{ParallelRound: -1}
	maxTicks := c.MaxParallelRounds * n
	for tick := 0; tick < maxTicks; tick++ {
		if ones == wantOnes {
			res.Converged = true
			res.ParallelRound = float64(tick) / float64(n)
			res.Activations = tick
			res.FinalX = float64(ones) / float64(n)
			return res, nil
		}
		i := src.Intn(n)
		if isSource[i] {
			continue
		}
		x := float64(ones) / float64(n)
		countPrime := src.Binomial(c.Ell, x)
		countDoublePrime := src.Binomial(c.Ell, x)
		out := opinions[i]
		switch {
		case countPrime > counts[i]:
			out = sim.OpinionOne
		case countPrime < counts[i]:
			out = sim.OpinionZero
		}
		counts[i] = countDoublePrime
		if out != opinions[i] {
			ones += int(out) - int(opinions[i])
			opinions[i] = out
		}
	}
	res.Activations = maxTicks
	res.FinalX = float64(ones) / float64(n)
	res.Converged = ones == wantOnes
	if res.Converged {
		res.ParallelRound = float64(c.MaxParallelRounds)
	}
	return res, nil
}
