package async

import (
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/sim"
)

func baseConfig() Config {
	n := 512
	return Config{
		N:                 n,
		Ell:               core.SampleSize(n, core.DefaultC),
		Correct:           sim.OpinionOne,
		Init:              adversary.AllWrong{Correct: sim.OpinionOne},
		CorruptStates:     true,
		Seed:              1,
		MaxParallelRounds: 5000,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny N", func(c *Config) { c.N = 1 }},
		{"bad ell", func(c *Config) { c.Ell = 0 }},
		{"bad sources", func(c *Config) { c.Sources = 999 }},
		{"bad correct", func(c *Config) { c.Correct = 2 }},
		{"no init", func(c *Config) { c.Init = nil }},
		{"no rounds", func(c *Config) { c.MaxParallelRounds = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}

// TestAsyncFETStallsNearCenter pins the package's negative result: under
// sequential activation the trend estimates decorrelate and the dynamics
// hover around 1/2 instead of converging within a polylog-scale horizon
// (see the package comment and experiment E22).
func TestAsyncFETStallsNearCenter(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		cfg := baseConfig()
		cfg.Seed = seed
		cfg.MaxParallelRounds = 2000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged {
			t.Logf("seed %d: converged at %v (rare but possible)", seed, res.ParallelRound)
			continue
		}
		if res.FinalX < 0.05 || res.FinalX > 0.95 {
			t.Fatalf("seed %d: expected hovering near the center, got x = %v",
				seed, res.FinalX)
		}
	}
}

func TestAsyncZeroSideSymmetricStall(t *testing.T) {
	cfg := baseConfig()
	cfg.Correct = sim.OpinionZero
	cfg.Init = adversary.AllWrong{Correct: sim.OpinionZero}
	cfg.MaxParallelRounds = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged && (res.FinalX < 0.05 || res.FinalX > 0.95) {
		t.Fatalf("zero side should mirror the stall: %+v", res)
	}
}

func TestAsyncAllCorrectStartIsImmediatelyAbsorbed(t *testing.T) {
	cfg := baseConfig()
	cfg.Init = adversary.AllCorrect{Correct: sim.OpinionOne}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.ParallelRound != 0 {
		t.Fatalf("expected immediate absorption: %+v", res)
	}
}

func TestAsyncAbsorptionHolds(t *testing.T) {
	// After reaching all-correct, further activations must not disturb
	// the configuration: run with a start already all-correct but with
	// adversarially stale counts — the worst case for absorption.
	cfg := baseConfig()
	cfg.Init = adversary.AllCorrect{Correct: sim.OpinionOne}
	cfg.CorruptStates = true
	// Force execution past the immediate-convergence check by running the
	// dynamics manually for a few parallel rounds via a non-absorbing
	// start that converges, then verifying FinalX stays 1.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalX != 1 {
		t.Fatalf("absorption violated: %+v", res)
	}
}

func TestAsyncDeterministic(t *testing.T) {
	cfg := baseConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ParallelRound != b.ParallelRound || a.Activations != b.Activations {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestAsyncMultiSourceRunsClean(t *testing.T) {
	cfg := baseConfig()
	cfg.Sources = 8
	cfg.MaxParallelRounds = 500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalX < 0 || res.FinalX > 1 {
		t.Fatalf("invalid final x: %+v", res)
	}
}

func TestAsyncSourceNeverFlips(t *testing.T) {
	// Whatever the dynamics do, x must stay ≥ Sources/N on the 1 side:
	// sources are excluded from activation effects.
	cfg := baseConfig()
	cfg.Sources = 32
	cfg.MaxParallelRounds = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalX < float64(32)/float64(cfg.N) {
		t.Fatalf("final x %v below the source floor", res.FinalX)
	}
}
