// Package checkpoint is the durable per-cell checkpoint store of the
// sweep fabric: a directory of atomic JSON envelopes, one per completed
// grid cell, keyed by the cell's content address (the SHA-256 of its
// canonical fetcell key, the same identity the fetserve cache uses).
//
// The store exists so a killed sweep resumes mid-grid: a shard runner
// writes each cell's aggregated row the moment it completes, and a
// restarted runner loads every valid envelope and skips those cells
// entirely. Because the cell key pins every parameter the row is a
// deterministic function of (scenario, engine, topology, n, ℓ,
// replicates, round cap, seed), a checkpoint can never be replayed
// against a different configuration — changing any parameter changes
// the key hash, and the stale envelope simply stops matching.
//
// Durability contract: writes are atomic (temp file + rename in the
// same directory), so a SIGKILL mid-write leaves a stale *.tmp file
// but never a torn envelope, and loads verify both content addresses —
// the file name against the key, the recorded digest against the body —
// rejecting anything corrupt or misnamed rather than trusting it. A
// resumed run is therefore byte-identical to an uninterrupted one: a
// cell is either fully checkpointed or re-run from its seed.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"passivespread/internal/serve"
)

// Envelope is the on-disk form of one checkpointed cell. It mirrors
// the fetserve cache's persist envelope: the canonical key, the body,
// and the body's own digest, so either store could in principle verify
// the other's files.
type Envelope struct {
	// Key is the canonical cell key string; its SHA-256 must equal the
	// file's name stem.
	Key string `json:"key"`
	// BodySHA256 is the hex SHA-256 of Body, detecting torn or
	// bit-rotted payloads independently of the file name.
	BodySHA256 string `json:"body_sha256"`
	// Body is the checkpointed payload (a sweep row in canonical JSON).
	Body json.RawMessage `json:"body"`
}

// Store is one checkpoint directory. Methods are safe for concurrent
// use by the sweep's worker pool: each cell writes exactly one file,
// distinct cells write distinct files, and re-writes of the same cell
// are idempotent replacements of identical bytes.
type Store struct {
	dir string
}

// Open creates the directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// path returns the envelope file for a canonical key.
func (s *Store) path(canonical string) string {
	return filepath.Join(s.dir, serve.HashHex(canonical)+".json")
}

// Load returns the checkpointed body for a canonical key, or ok =
// false when no valid envelope exists. A present-but-invalid file
// (torn write, bit rot, hash mismatch, foreign key) is treated as a
// miss — the cell re-runs from its seed, which is always correct.
func (s *Store) Load(canonical string) ([]byte, bool) {
	hash := serve.HashHex(canonical)
	data, err := os.ReadFile(filepath.Join(s.dir, hash+".json"))
	if err != nil {
		return nil, false
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false
	}
	if env.Key != canonical || len(env.Body) == 0 {
		return nil, false
	}
	if serve.HashHex(env.Key) != hash || serve.HashHex(string(env.Body)) != env.BodySHA256 {
		return nil, false
	}
	return env.Body, true
}

// Save durably checkpoints body under the canonical key: marshal the
// envelope to a temp file in the store directory, then rename onto
// the final name. A crash at any point leaves either the old state or
// the new envelope, never a torn file that Load would accept.
func (s *Store) Save(canonical string, body []byte) error {
	hash := serve.HashHex(canonical)
	data, err := json.Marshal(Envelope{
		Key:        canonical,
		BodySHA256: serve.HashHex(string(body)),
		Body:       body,
	})
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %v", hash, err)
	}
	tmp, err := os.CreateTemp(s.dir, "cell-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: %s: %v", hash, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: %s: %v", hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %s: %v", hash, err)
	}
	if err := os.Rename(name, s.path(canonical)); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %s: %v", hash, err)
	}
	return nil
}

// Count returns the number of envelope files currently in the store
// (valid or not — it is a progress indicator, not a verification).
func (s *Store) Count() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %v", err)
	}
	n := 0
	for _, de := range entries {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			n++
		}
	}
	return n, nil
}
