package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"passivespread/internal/serve"
)

const testKey = "fetcell/v1 scenario=worst-case engine=agent-fast topology=complete n=64 ell=18 replicates=4 max_rounds=2400 seed=9"

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"cell":0,"n":64}`)
	if _, ok := st.Load(testKey); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Save(testKey, body); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Load(testKey)
	if !ok || string(got) != string(body) {
		t.Fatalf("Load = %q, %v; want %q, true", got, ok, body)
	}
	if n, err := st.Count(); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v; want 1", n, err)
	}
	// Idempotent re-save.
	if err := st.Save(testKey, body); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Count(); n != 1 {
		t.Fatalf("Count after re-save = %d, want 1", n)
	}
}

func TestLoadRejectsCorruptEnvelopes(t *testing.T) {
	body := []byte(`{"cell":3,"n":128}`)
	hash := serve.HashHex(testKey)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"truncated file", func(t *testing.T, dir string) {
			path := filepath.Join(dir, hash+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped body bit", func(t *testing.T, dir string) {
			path := filepath.Join(dir, hash+".json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tampered := strings.Replace(string(data), `"n":128`, `"n":129`, 1)
			if tampered == string(data) {
				t.Fatal("tamper target not found")
			}
			if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"foreign key under our name", func(t *testing.T, dir string) {
			env, err := json.Marshal(Envelope{
				Key:        testKey + "0", // different cell
				BodySHA256: serve.HashHex(string(body)),
				Body:       body,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, hash+".json"), env, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing file", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, hash+".json")); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Save(testKey, body); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir)
			if got, ok := st.Load(testKey); ok {
				t.Fatalf("corrupt envelope accepted: %q", got)
			}
		})
	}
}

// TestStaleTempFilesIgnored pins the crash-mid-write story: a leftover
// *.tmp file (the state a SIGKILL between create and rename leaves) is
// neither loaded nor counted as a checkpoint.
func TestStaleTempFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cell-123.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Load(testKey); ok {
		t.Fatal("temp file loaded as a checkpoint")
	}
	if n, err := st.Count(); err != nil || n != 0 {
		t.Fatalf("Count = %d, %v; want 0", n, err)
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ckpt")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dir() != dir {
		t.Fatalf("Dir = %q, want %q", st.Dir(), dir)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
