// Package clocked implements the Section 1.4 baseline for the
// self-stabilizing bit-dissemination problem: the phase protocol that
// solves the problem in O(log n) rounds when agents share a notion of
// global time.
//
// Time is divided into phases of length T = 4·⌈log₂ n⌉, each split into
// two subphases of length T/2. In the first subphase a non-source agent
// that observes an opinion 0 copies it (ignoring 1s); in the second
// subphase it does the opposite. Whatever the source's opinion is, by the
// end of the corresponding subphase of the first complete phase the whole
// population holds it, and the configuration is absorbing.
//
// The paper's point is that *without* shared clocks this baseline needs a
// self-stabilizing clock-synchronization protocol, and known constructions
// (Boczkowski et al. 2019; Bastide et al. 2021) spend message bits beyond
// the opinion — breaking passive communication. To exhibit that trade-off
// this package also provides ModeLocalClocks, where each agent carries its
// own clock, initialized adversarially, and synchronizes by copying the
// plurality clock among ℓ_c sampled agents before incrementing. Messages
// in that mode carry (opinion, clock) — explicitly ⌈log₂ T⌉ + 1 bits, not
// passive — which is the honest cost of the prior-work approach that FET
// eliminates. (The 1-bit recursive construction of Bastide et al. is out
// of scope; the plurality rule is a simple stand-in with the same
// message-content character. The substitution is recorded in DESIGN.md.)
package clocked

import (
	"fmt"
	"math"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// Mode selects the clock model.
type Mode int

// Clock modes.
const (
	// ModeSharedClock gives every agent the true global round counter
	// (plus a common adversarial offset, which is harmless by symmetry).
	ModeSharedClock Mode = iota
	// ModeLocalClocks gives every agent its own clock, adversarially
	// initialized, synchronized by plurality copying — messages carry the
	// clock and are therefore not passive.
	ModeLocalClocks
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSharedClock:
		return "shared-clock"
	case ModeLocalClocks:
		return "local-clocks"
	default:
		return "unknown"
	}
}

// Config describes one run of the clocked baseline.
type Config struct {
	// N is the population size including sources (≥ 2).
	N int
	// Sources is the number of source agents (default 1).
	Sources int
	// Correct is the sources' opinion.
	Correct byte
	// Mode selects shared or local clocks.
	Mode Mode
	// PhaseLen is the phase length T (default 4·⌈log₂ N⌉, forced even).
	PhaseLen int
	// ClockSamples is ℓ_c, the number of agents sampled for clock
	// synchronization in ModeLocalClocks (default ⌈3·log₂ N⌉).
	ClockSamples int
	// DesyncClocks initializes local clocks adversarially (uniformly at
	// random) instead of synchronized; only meaningful in ModeLocalClocks.
	DesyncClocks bool
	// Init chooses starting opinions (required).
	Init sim.Initializer
	// Seed is the root randomness seed.
	Seed uint64
	// MaxRounds caps the run (required).
	MaxRounds int
	// RecordTrajectory stores x_t per round.
	RecordTrajectory bool
}

// Result reports a run of the clocked baseline.
type Result struct {
	// Converged reports whether the population reached the all-correct
	// configuration (absorbing for this protocol: agents only copy
	// observed opinions, so a unanimous configuration never changes).
	Converged bool
	// Round is the first all-correct round, or −1.
	Round int
	// Rounds is the number of executed rounds.
	Rounds int
	// FinalX is the final fraction of 1-opinions.
	FinalX float64
	// Trajectory holds x_t per executed round when requested.
	Trajectory []float64
}

// MessageBits returns the number of bits an agent reveals per observation
// under the mode: 1 (just the opinion — passive) for shared clocks, or
// 1 + ⌈log₂ T⌉ for local clocks.
func MessageBits(mode Mode, phaseLen int) int {
	if mode == ModeSharedClock {
		return 1
	}
	return 1 + int(math.Ceil(math.Log2(float64(phaseLen))))
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.N < 2 {
		return cfg, fmt.Errorf("clocked: N = %d, want ≥ 2", cfg.N)
	}
	if cfg.Sources == 0 {
		cfg.Sources = 1
	}
	if cfg.Sources < 1 || cfg.Sources >= cfg.N {
		return cfg, fmt.Errorf("clocked: Sources = %d out of [1, N)", cfg.Sources)
	}
	if cfg.Correct > 1 {
		return cfg, fmt.Errorf("clocked: Correct = %d", cfg.Correct)
	}
	if cfg.Init == nil {
		return cfg, fmt.Errorf("clocked: Init is required")
	}
	if cfg.MaxRounds <= 0 {
		return cfg, fmt.Errorf("clocked: MaxRounds = %d", cfg.MaxRounds)
	}
	if cfg.PhaseLen == 0 {
		cfg.PhaseLen = 4 * int(math.Ceil(math.Log2(float64(cfg.N))))
	}
	if cfg.PhaseLen%2 != 0 {
		cfg.PhaseLen++
	}
	if cfg.PhaseLen < 2 {
		return cfg, fmt.Errorf("clocked: PhaseLen = %d, want ≥ 2", cfg.PhaseLen)
	}
	if cfg.ClockSamples == 0 {
		cfg.ClockSamples = int(math.Ceil(3 * math.Log2(float64(cfg.N))))
	}
	if cfg.ClockSamples < 1 {
		return cfg, fmt.Errorf("clocked: ClockSamples = %d", cfg.ClockSamples)
	}
	return cfg, nil
}

// Run executes the clocked baseline.
func Run(cfg Config) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	n := c.N
	T := c.PhaseLen
	half := T / 2

	opinions := make([]byte, n)
	nextOpinions := make([]byte, n)
	clocks := make([]int, n)
	nextClocks := make([]int, n)
	isSource := make([]bool, n)
	for i := 0; i < c.Sources; i++ {
		isSource[i] = true
		opinions[i] = c.Correct
	}

	initSrc := rng.NewFrom(c.Seed, 0)
	c.Init.Assign(opinions, isSource, initSrc)
	for i := 0; i < c.Sources; i++ {
		if opinions[i] != c.Correct {
			return Result{}, fmt.Errorf("clocked: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}
	if c.Mode == ModeLocalClocks && c.DesyncClocks {
		for i := range clocks {
			clocks[i] = initSrc.Intn(T)
		}
	}

	srcs := make([]*rng.Source, n)
	for i := range srcs {
		srcs[i] = rng.NewFrom(c.Seed, uint64(i)+1)
	}

	countOnes := func(ops []byte) int {
		ones := 0
		for _, o := range ops {
			ones += int(o)
		}
		return ones
	}
	allCorrect := func(ops []byte) bool {
		for _, o := range ops {
			if o != c.Correct {
				return false
			}
		}
		return true
	}

	res := Result{Round: -1}
	if c.RecordTrajectory {
		res.Trajectory = make([]float64, 0, c.MaxRounds+1)
		res.Trajectory = append(res.Trajectory, float64(countOnes(opinions))/float64(n))
	}
	if allCorrect(opinions) {
		res.Converged = true
		res.Round = 0
	}

	clockVotes := make([]int, T)
	round := 0
	for ; round < c.MaxRounds && !res.Converged; round++ {
		for i := 0; i < n; i++ {
			src := srcs[i]

			// Determine this agent's clock value for the round.
			var clock int
			switch c.Mode {
			case ModeSharedClock:
				clock = round % T
				nextClocks[i] = 0 // unused
			case ModeLocalClocks:
				// Plurality of ℓ_c sampled clocks (ties → smallest), then
				// advance by one. Sources synchronize too: only their
				// opinion is pinned.
				for j := range clockVotes {
					clockVotes[j] = 0
				}
				for s := 0; s < c.ClockSamples; s++ {
					clockVotes[clocks[src.Intn(n)]]++
				}
				best := 0
				for j := 1; j < T; j++ {
					if clockVotes[j] > clockVotes[best] {
						best = j
					}
				}
				clock = clocks[i]
				nextClocks[i] = (best + 1) % T
			}

			if isSource[i] {
				nextOpinions[i] = c.Correct
				continue
			}

			// One passive opinion observation per round.
			seen := opinions[src.Intn(n)]
			out := opinions[i]
			if clock < half {
				// First subphase: copy 0s, ignore 1s.
				if seen == sim.OpinionZero {
					out = sim.OpinionZero
				}
			} else {
				// Second subphase: copy 1s, ignore 0s.
				if seen == sim.OpinionOne {
					out = sim.OpinionOne
				}
			}
			nextOpinions[i] = out
		}
		opinions, nextOpinions = nextOpinions, opinions
		clocks, nextClocks = nextClocks, clocks

		x := float64(countOnes(opinions)) / float64(n)
		if c.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, x)
		}
		if allCorrect(opinions) {
			res.Converged = true
			res.Round = round + 1
		}
	}

	res.Rounds = round
	res.FinalX = float64(countOnes(opinions)) / float64(n)
	return res, nil
}
