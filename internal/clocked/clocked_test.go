package clocked

import (
	"math"
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

func baseConfig() Config {
	return Config{
		N:         256,
		Correct:   sim.OpinionOne,
		Init:      adversary.AllWrong{Correct: sim.OpinionOne},
		Seed:      1,
		MaxRounds: 2000,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny N", func(c *Config) { c.N = 1 }},
		{"no init", func(c *Config) { c.Init = nil }},
		{"no rounds", func(c *Config) { c.MaxRounds = 0 }},
		{"bad correct", func(c *Config) { c.Correct = 3 }},
		{"bad sources", func(c *Config) { c.Sources = 500 }},
		{"bad clock samples", func(c *Config) { c.ClockSamples = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected config error")
			}
		})
	}
}

func TestSharedClockMeetsLogBound(t *testing.T) {
	// §1.4: with shared clocks, convergence within the first complete
	// phase, i.e. ≤ 2T = 8·log₂ n rounds from round 0 (we start at clock
	// 0, so one phase of T = 4·log₂ n suffices).
	for _, n := range []int{64, 256, 1024} {
		cfg := baseConfig()
		cfg.N = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("n=%d: shared-clock baseline did not converge", n)
		}
		bound := 4 * int(math.Ceil(math.Log2(float64(n))))
		if res.Round > bound {
			t.Fatalf("n=%d: converged at round %d > 4·log₂ n = %d", n, res.Round, bound)
		}
	}
}

func TestSharedClockCorrectZero(t *testing.T) {
	cfg := baseConfig()
	cfg.Correct = sim.OpinionZero
	cfg.Init = adversary.AllWrong{Correct: sim.OpinionZero}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalX != 0 {
		t.Fatalf("correct-0 run: %+v", res)
	}
	// Opinion 0 is adopted in the *first* subphase, so convergence should
	// land within the first half phase.
	if res.Round > 2*int(math.Ceil(math.Log2(256))) {
		t.Fatalf("converged at %d, expected within the first subphase", res.Round)
	}
}

func TestLocalClocksSyncedStart(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = ModeLocalClocks
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("local clocks (synced start) did not converge: %+v", res)
	}
}

func TestLocalClocksAdversarialDesync(t *testing.T) {
	// With adversarial clock offsets the plurality rule re-synchronizes
	// and the protocol still converges — at the price of non-passive
	// (opinion, clock) messages.
	cfg := baseConfig()
	cfg.Mode = ModeLocalClocks
	cfg.DesyncClocks = true
	cfg.MaxRounds = 5000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("local clocks (desynced) did not converge: final x=%v", res.FinalX)
	}
}

func TestAllCorrectIsAbsorbing(t *testing.T) {
	cfg := baseConfig()
	cfg.Init = adversary.AllCorrect{Correct: sim.OpinionOne}
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Round != 0 {
		t.Fatalf("expected immediate convergence: %+v", res)
	}
}

func TestTrajectoryRecorded(t *testing.T) {
	cfg := baseConfig()
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Rounds+1 {
		t.Fatalf("trajectory %d entries for %d rounds", len(res.Trajectory), res.Rounds)
	}
	for _, x := range res.Trajectory {
		if x < 0 || x > 1 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = ModeLocalClocks
	cfg.DesyncClocks = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Round != b.Round || a.Rounds != b.Rounds {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestMessageBits(t *testing.T) {
	if got := MessageBits(ModeSharedClock, 40); got != 1 {
		t.Fatalf("shared-clock bits = %d, want 1 (passive)", got)
	}
	if got := MessageBits(ModeLocalClocks, 40); got != 7 { // 1 + ⌈log₂ 40⌉ = 7
		t.Fatalf("local-clock bits = %d, want 7", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeSharedClock.String() != "shared-clock" ||
		ModeLocalClocks.String() != "local-clocks" ||
		Mode(9).String() != "unknown" {
		t.Fatal("mode strings")
	}
}

func TestPhaseLenForcedEven(t *testing.T) {
	// An odd phase length is rounded up to even; 33 → 34 ≈ the default
	// 4·log₂ 256 = 32, so the run must still converge within a phase or
	// two. (A deliberately tiny phase would not: each first-subphase wipe
	// undoes the second-subphase growth.)
	cfg := baseConfig()
	cfg.PhaseLen = 33
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("odd phase length broke the run: %+v", res)
	}
}

func TestSourceOverwriteRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.Init = overwriteInit{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error for source overwrite")
	}
}

type overwriteInit struct{}

func (overwriteInit) Name() string { return "overwrite" }
func (overwriteInit) Assign(op []byte, _ []bool, _ *rng.Source) {
	for i := range op {
		op[i] = sim.OpinionZero
	}
}
