package core

import (
	"passivespread/internal/dist"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// Aggregate (occupancy-vector) support for the trend protocols: both FET
// and SimpleTrend carry exactly one small-integer state — the stored count
// in {0, …, ℓ} — and their round update depends only on (opinion, stored
// count) and the round's observation law B(ℓ, x_t). The whole population
// therefore advances as counts per (opinion, state), with per-round cost
// independent of n.

var (
	_ sim.AggregateProtocol = (*FET)(nil)
	_ sim.AggregateProtocol = (*SimpleTrend)(nil)
)

// AggregateStates implements sim.AggregateProtocol: the stored count″
// ranges over {0, …, ℓ}.
func (f *FET) AggregateStates() int { return f.ell + 1 }

// StepOccupancy implements sim.AggregateProtocol.
//
// Per agent, FET draws two independent B(ℓ, x) counts: count′ decides the
// next opinion against the stored count″_{t−1} (greater → 1, smaller → 0,
// tie → keep), and a fresh count″ becomes the next state. Because count″
// is independent of the comparison, the occupancy update factorizes: each
// (opinion, state) group splits trinomially by the comparison outcome,
// and the next states are a fresh B(ℓ, x) multinomial per new opinion
// class — O(ℓ) binomial draws per round in total.
func (f *FET) StepOccupancy(occ, next *sim.Occupancy, xObs float64, src *rng.Source) {
	pmf := dist.PMFVector(f.ell, xObs)

	var newOnes, newZeros int
	cumBelow := 0.0 // P(B < s), updated as s sweeps upward
	for s := 0; s <= f.ell; s++ {
		pEq := pmf[s]
		pLeq := cumBelow + pEq
		pGt := 1 - pLeq
		if pGt < 0 {
			pGt = 0
		}
		for o := 0; o < 2; o++ {
			m := occ.Counts[o][s]
			if m == 0 {
				continue
			}
			// Trinomial split by conditional binomials: winners adopt 1,
			// ties keep o, the rest adopt 0.
			win := src.Binomial(m, pGt)
			rest := m - win
			tie := 0
			if rest > 0 && pLeq > 0 {
				cond := pEq / pLeq
				if cond > 1 {
					cond = 1
				}
				tie = src.Binomial(rest, cond)
			}
			lose := rest - tie
			if o == 1 {
				newOnes += win + tie
				newZeros += lose
			} else {
				newOnes += win
				newZeros += tie + lose
			}
		}
		cumBelow = pLeq
	}

	src.Multinomial(newOnes, pmf, next.Counts[1])
	src.Multinomial(newZeros, pmf, next.Counts[0])
}

// AggregateStates implements sim.AggregateProtocol: the stored count
// ranges over {0, …, ℓ}.
func (s *SimpleTrend) AggregateStates() int { return s.ell + 1 }

// StepOccupancy implements sim.AggregateProtocol.
//
// SimpleTrend draws a single count ~ B(ℓ, x) that is both compared with
// the stored count (greater → 1, smaller → 0, tie → keep) and stored as
// the next state, so opinion and state are coupled: each (opinion, state)
// group splits multinomially over the ℓ+1 possible counts, giving O(ℓ²)
// binomial draws per round.
func (s *SimpleTrend) StepOccupancy(occ, next *sim.Occupancy, xObs float64, src *rng.Source) {
	pmf := dist.PMFVector(s.ell, xObs)
	counts := make([]int, s.ell+1)
	for st := 0; st <= s.ell; st++ {
		for o := 0; o < 2; o++ {
			m := occ.Counts[o][st]
			if m == 0 {
				continue
			}
			src.Multinomial(m, pmf, counts)
			for c, k := range counts {
				if k == 0 {
					continue
				}
				op := o
				switch {
				case c > st:
					op = 1
				case c < st:
					op = 0
				}
				next.Counts[op][c] += k
			}
		}
	}
}
