package core

import (
	"passivespread/internal/dist"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// Degree-annealed (configuration-model) aggregate support: on a sparse
// topology whose rows look like fresh uniform k-samples every round
// (random k-out, dynamic rewiring), an agent's neighborhood carries
// j ~ B(k, x) one-opinions and each of its observations reads a uniform
// neighbor — i.i.d. Bernoulli(q_j) given j, with q_j the noise-folded
// fraction j/k. The population therefore advances as occupancy counts
// split over the k+1 neighborhood classes: the complete-graph update law
// applied per class with x_obs → q_j, at O(k·ℓ²) per round independent
// of n.

var (
	_ sim.SparseAggregateProtocol = (*FET)(nil)
	_ sim.SparseAggregateProtocol = (*SimpleTrend)(nil)
)

// observedFrac folds per-observation noise into a read fraction,
// mirroring the agent engines' observation law.
func observedFrac(x, eps float64) float64 {
	if eps <= 0 {
		return x
	}
	return x*(1-eps) + (1-x)*eps
}

// classPMFs returns the B(ℓ, q_j) observation-count PMF for each
// neighborhood class j ∈ {0, …, k}.
func classPMFs(ell, k int, x, noiseEps float64) [][]float64 {
	pmfs := make([][]float64, k+1)
	for j := 0; j <= k; j++ {
		pmfs[j] = dist.PMFVector(ell, observedFrac(float64(j)/float64(k), noiseEps))
	}
	return pmfs
}

// addMultinomial draws a multinomial split of m over pmf into scratch
// and accumulates it into dst (rng.Source.Multinomial overwrites its
// out slice, and several classes land in the same destination).
func addMultinomial(src *rng.Source, m int, pmf []float64, scratch, dst []int) {
	if m == 0 {
		return
	}
	src.Multinomial(m, pmf, scratch)
	for i, v := range scratch {
		dst[i] += v
	}
}

// StepOccupancySparse implements sim.SparseAggregateProtocol.
//
// The complete-graph factorization survives conditioning on the
// neighborhood class: given j, FET's comparison count′ and fresh stored
// count″ are i.i.d. B(ℓ, q_j) — both draws sample the same row — so each
// (opinion, state) group splits multinomially over j, each (o, s, j)
// cell splits trinomially by the comparison outcome against B(ℓ, q_j),
// and the next states refill from the agent's own class PMF.
func (f *FET) StepOccupancySparse(occ, next *sim.Occupancy, k int, x, noiseEps float64, src *rng.Source) {
	degPMF := dist.PMFVector(k, x)
	pmfs := classPMFs(f.ell, k, x, noiseEps)

	jCounts := make([]int, k+1)
	newOnes := make([]int, k+1)
	newZeros := make([]int, k+1)
	cumBelow := make([]float64, k+1) // per class: P(B_j < s), swept upward
	for s := 0; s <= f.ell; s++ {
		for o := 0; o < 2; o++ {
			m := occ.Counts[o][s]
			if m == 0 {
				continue
			}
			src.Multinomial(m, degPMF, jCounts)
			for j, mj := range jCounts {
				if mj == 0 {
					continue
				}
				pEq := pmfs[j][s]
				pLeq := cumBelow[j] + pEq
				pGt := 1 - pLeq
				if pGt < 0 {
					pGt = 0
				}
				win := src.Binomial(mj, pGt)
				rest := mj - win
				tie := 0
				if rest > 0 && pLeq > 0 {
					cond := pEq / pLeq
					if cond > 1 {
						cond = 1
					}
					tie = src.Binomial(rest, cond)
				}
				lose := rest - tie
				if o == 1 {
					newOnes[j] += win + tie
					newZeros[j] += lose
				} else {
					newOnes[j] += win
					newZeros[j] += tie + lose
				}
			}
		}
		for j := range cumBelow {
			cumBelow[j] += pmfs[j][s]
		}
	}

	scratch := make([]int, f.ell+1)
	for j := 0; j <= k; j++ {
		addMultinomial(src, newOnes[j], pmfs[j], scratch, next.Counts[1])
		addMultinomial(src, newZeros[j], pmfs[j], scratch, next.Counts[0])
	}
}

// StepOccupancySparse implements sim.SparseAggregateProtocol.
//
// SimpleTrend's single draw both decides the opinion and becomes the
// next state, so each (opinion, state) group splits over the
// neighborhood classes and then multinomially over the ℓ+1 counts of
// its class PMF, routing each count to the opinion the comparison
// implies.
func (s *SimpleTrend) StepOccupancySparse(occ, next *sim.Occupancy, k int, x, noiseEps float64, src *rng.Source) {
	degPMF := dist.PMFVector(k, x)
	pmfs := classPMFs(s.ell, k, x, noiseEps)

	jCounts := make([]int, k+1)
	counts := make([]int, s.ell+1)
	for st := 0; st <= s.ell; st++ {
		for o := 0; o < 2; o++ {
			m := occ.Counts[o][st]
			if m == 0 {
				continue
			}
			src.Multinomial(m, degPMF, jCounts)
			for j, mj := range jCounts {
				if mj == 0 {
					continue
				}
				src.Multinomial(mj, pmfs[j], counts)
				for c, kk := range counts {
					if kk == 0 {
						continue
					}
					op := o
					switch {
					case c > st:
						op = 1
					case c < st:
						op = 0
					}
					next.Counts[op][c] += kk
				}
			}
		}
	}
}
