package core

import (
	"testing"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
)

// bruteFETAnnealedRound advances a population one round under the exact
// degree-annealed observation law that StepOccupancySparse claims to
// aggregate: each agent independently draws its neighborhood class
// j ~ B(k, x), then comparison and refill counts i.i.d. B(ℓ, j/k), and
// applies FET's rule (greater → 1, smaller → 0, tie → keep).
func bruteFETAnnealedRound(op, st []byte, ell, k int, x float64, src *rng.Source) {
	for i := range op {
		j := src.Binomial(k, x)
		q := float64(j) / float64(k)
		comp := src.Binomial(ell, q)
		switch s := int(st[i]); {
		case comp > s:
			op[i] = 1
		case comp < s:
			op[i] = 0
		}
		st[i] = byte(src.Binomial(ell, q))
	}
}

// bruteTrendAnnealedRound is the SimpleTrend analogue: the single count
// both decides the opinion and becomes the next state.
func bruteTrendAnnealedRound(op, st []byte, ell, k int, x float64, src *rng.Source) {
	for i := range op {
		j := src.Binomial(k, x)
		c := src.Binomial(ell, float64(j)/float64(k))
		switch s := int(st[i]); {
		case c > s:
			op[i] = 1
		case c < s:
			op[i] = 0
		}
		st[i] = byte(c)
	}
}

// sparseStepper adapts a SparseAggregateProtocol to the shape of the
// brute-force rounds for the distribution comparison below.
type sparseStepper interface {
	StepOccupancySparse(occ, next *sim.Occupancy, k int, x, noiseEps float64, src *rng.Source)
}

// sampleSparseX runs rounds of StepOccupancySparse from a reproducible
// random start and returns the final one-fraction.
func sampleSparseX(p sparseStepper, ell, n, k, rounds int, seed uint64) float64 {
	src := rng.NewFrom(seed, 2)
	occ := sim.NewOccupancy(ell + 1)
	next := sim.NewOccupancy(ell + 1)
	for i := 0; i < n; i++ {
		o := 0
		if src.Intn(100) < 15 {
			o = 1
		}
		occ.Counts[o][src.Intn(ell+1)]++
	}
	step := func(x float64) {
		next.Zero()
		p.StepOccupancySparse(occ, next, k, x, 0, src)
		occ, next = next, occ
	}
	for t := 0; t < rounds; t++ {
		step(float64(occ.Ones()) / float64(n))
	}
	return float64(occ.Ones()) / float64(n)
}

// sampleBruteX runs the same number of rounds of the brute-force
// agent-level annealed process from the same start distribution.
func sampleBruteX(round func(op, st []byte, ell, k int, x float64, src *rng.Source),
	ell, n, k, rounds int, seed uint64) float64 {
	src := rng.NewFrom(seed, 1)
	op := make([]byte, n)
	st := make([]byte, n)
	for i := range op {
		if src.Intn(100) < 15 {
			op[i] = 1
		}
		st[i] = byte(src.Intn(ell + 1))
	}
	ones := func() int {
		c := 0
		for _, o := range op {
			c += int(o)
		}
		return c
	}
	for t := 0; t < rounds; t++ {
		round(op, st, ell, k, float64(ones())/float64(n), src)
	}
	return float64(ones()) / float64(n)
}

// TestStepOccupancySparseMatchesBruteForce: the occupancy-level sparse
// update must sample exactly the same process as an agent-level
// simulation of the degree-annealed observation law. Compounding a few
// rounds before comparing makes the test sensitive to errors in either
// the comparison split or the refill law. KS at α = 0.001 keeps the
// statistical false-failure rate negligible across CI runs.
func TestStepOccupancySparseMatchesBruteForce(t *testing.T) {
	const (
		n      = 400
		k      = 8
		ell    = 24
		rounds = 3
	)
	reps := 2000
	if testing.Short() {
		reps = 400
	}
	cases := []struct {
		name  string
		proto sparseStepper
		round func(op, st []byte, ell, k int, x float64, src *rng.Source)
	}{
		{"FET", NewFET(ell), bruteFETAnnealedRound},
		{"SimpleTrend", NewSimpleTrend(ell), bruteTrendAnnealedRound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			brute := make([]float64, reps)
			sparse := make([]float64, reps)
			for r := 0; r < reps; r++ {
				brute[r] = sampleBruteX(tc.round, ell, n, k, rounds, uint64(100+r))
				sparse[r] = sampleSparseX(tc.proto, ell, n, k, rounds, uint64(100+r))
			}
			d := stats.KSStatistic(brute, sparse)
			crit := stats.KSCriticalValue(reps, reps, 0.001)
			if d > crit {
				t.Fatalf("occupancy sparse step diverges from the agent-level annealed process: KS = %.4f > %.4f", d, crit)
			}
		})
	}
}

// TestStepOccupancySparseConservesPopulation mirrors the complete-graph
// aggregate test: no agents may appear or vanish across a round.
func TestStepOccupancySparseConservesPopulation(t *testing.T) {
	const ell = 17
	for _, tc := range []struct {
		name  string
		proto sparseStepper
	}{
		{"FET", NewFET(ell)},
		{"SimpleTrend", NewSimpleTrend(ell)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := rng.NewFrom(5, 0)
			occ := sim.NewOccupancy(ell + 1)
			next := sim.NewOccupancy(ell + 1)
			total := 0
			for s := 0; s <= ell; s++ {
				occ.Counts[0][s] = 3*s + 1
				occ.Counts[1][s] = 2 * s
				total += occ.Counts[0][s] + occ.Counts[1][s]
			}
			for _, x := range []float64{0, 0.2, 0.97, 1} {
				next.Zero()
				tc.proto.StepOccupancySparse(occ, next, 6, x, 0.05, src)
				got := 0
				for s := 0; s <= ell; s++ {
					got += next.Counts[0][s] + next.Counts[1][s]
				}
				if got != total {
					t.Fatalf("x = %v: population changed %d → %d", x, total, got)
				}
				occ, next = next, occ
			}
		})
	}
}
