package core

import (
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

func TestStepOccupancyConservesPopulation(t *testing.T) {
	for _, proto := range []sim.AggregateProtocol{NewFET(12), NewSimpleTrend(12)} {
		src := rng.New(3)
		occ := sim.NewOccupancy(proto.AggregateStates())
		occ.Counts[0][0] = 700
		occ.Counts[1][5] = 200
		occ.Counts[1][12] = 100
		next := sim.NewOccupancy(proto.AggregateStates())
		for round := 0; round < 50; round++ {
			next.Zero()
			proto.StepOccupancy(occ, next, 0.37, src)
			occ, next = next, occ
			if got := occ.Total(); got != 1000 {
				t.Fatalf("%s: population leaked to %d at round %d", proto.Name(), got, round)
			}
		}
	}
}

func TestStepOccupancyDegenerateFractions(t *testing.T) {
	// x = 0 and x = 1 must not produce NaN-driven panics or leaks: every
	// comparison count is deterministic there.
	for _, proto := range []sim.AggregateProtocol{NewFET(8), NewSimpleTrend(8)} {
		for _, x := range []float64{0, 1} {
			src := rng.New(1)
			occ := sim.NewOccupancy(proto.AggregateStates())
			occ.Counts[0][3] = 50
			occ.Counts[1][0] = 50
			next := sim.NewOccupancy(proto.AggregateStates())
			proto.StepOccupancy(occ, next, x, src)
			if next.Total() != 100 {
				t.Fatalf("%s at x=%v: population %d", proto.Name(), x, next.Total())
			}
			// At x = 1 every count is ℓ > any smaller stored count: all
			// agents with state < ℓ adopt 1 and store ℓ.
			if x == 1 && next.Counts[1][8] != 100 {
				t.Fatalf("%s at x=1: occupancy %+v", proto.Name(), next.Counts)
			}
		}
	}
}

func TestSimpleTrendAggregateConverges(t *testing.T) {
	res, err := sim.Run(sim.Config{
		N:             2048,
		Protocol:      NewSimpleTrend(SampleSize(2048, DefaultC)),
		Init:          adversary.AllWrong{Correct: sim.OpinionOne},
		Correct:       sim.OpinionOne,
		Engine:        sim.EngineAggregate,
		Seed:          7,
		MaxRounds:     8000,
		CorruptStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SimpleTrend aggregate run did not converge: %+v", res)
	}
}

func TestFETAggregateMatchesAgentMean(t *testing.T) {
	// Cheap distributional sanity check at small n (the full KS
	// cross-check lives in the root engines test): the mean t_con of the
	// occupancy engine must land near the agent engine's.
	const n, trials = 1024, 40
	mean := func(engine sim.EngineKind, seedBase uint64) float64 {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			res, err := sim.Run(sim.Config{
				N:             n,
				Protocol:      NewFET(SampleSize(n, DefaultC)),
				Init:          adversary.AllWrong{Correct: sim.OpinionOne},
				Correct:       sim.OpinionOne,
				Engine:        engine,
				Seed:          seedBase + uint64(trial),
				MaxRounds:     4000,
				CorruptStates: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("engine %v trial %d did not converge", engine, trial)
			}
			sum += float64(res.Round)
		}
		return sum / trials
	}
	agent := mean(sim.EngineAgentFast, 100)
	aggregate := mean(sim.EngineAggregate, 9000)
	if ratio := agent / aggregate; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("mean t_con diverges: agent %v vs aggregate %v", agent, aggregate)
	}
}
