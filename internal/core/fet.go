// Package core implements the paper's primary contribution: the Follow
// the Emerging Trend (FET) protocol (Protocol 1) for the self-stabilizing
// bit-dissemination problem under passive communication, together with its
// unpartitioned precursor (the first algorithm of Section 1.3) and the
// problem-level parameter conventions.
//
// FET at round t (per non-source agent):
//
//	partition the 2ℓ fresh samples into halves S′_t, S′′_t;
//	count′_t ← #1s in S′_t;   count′′_t ← #1s in S′′_t;
//	if count′_t > count′′_{t−1} then Y_{t+1} ← 1
//	else if count′_t < count′′_{t−1} then Y_{t+1} ← 0
//	else Y_{t+1} ← Y_t;
//
// Because the 2ℓ PULL samples are i.i.d. with replacement, a uniformly
// random equal split yields two independent ℓ-sample halves, so the
// implementation simply draws two independent ℓ-agent observations.
//
// The protocols never draw population indices themselves: all sampling
// goes through the sim.Observation seam, whose law is the engine's
// per-agent neighbor sampler (internal/topo). Under the default Complete
// topology that is the paper's uniform mixing; on a graph topology the
// same update rules run against each agent's out-neighbor row, which is
// what makes "does FET survive on a k-regular or small-world graph?" a
// configuration rather than a new protocol.
//
// Theorem 1 (stated for uniform mixing): FET converges in O(log^{5/2} n)
// rounds w.h.p. with ℓ = O(log n) samples per half and O(log ℓ) bits of
// memory per agent.
package core

import (
	"fmt"
	"math"

	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// DefaultC is the default multiplier in the sample-size rule
// ℓ = ⌈DefaultC · log₂ n⌉. The paper's proof needs a large constant
// (c > max(2/δ², 32C²/δ²)) asymptotically; empirically the dynamics'
// shape is already stable at small constants, and every experiment can
// override it.
const DefaultC = 3

// SampleSize returns the paper's ℓ = ⌈c·log₂ n⌉ for a population of n,
// with a floor of 1.
func SampleSize(n int, c float64) int {
	if n < 2 {
		return 1
	}
	ell := int(math.Ceil(c * math.Log2(float64(n))))
	if ell < 1 {
		ell = 1
	}
	return ell
}

// FET is the Follow the Emerging Trend protocol (Protocol 1).
type FET struct {
	ell int
}

var _ sim.Protocol = (*FET)(nil)

// NewFET returns the FET protocol with per-half sample size ell (each
// agent observes 2·ell agents per round). It panics if ell < 1.
func NewFET(ell int) *FET {
	if ell < 1 {
		panic(fmt.Sprintf("core: NewFET with ell = %d", ell))
	}
	return &FET{ell: ell}
}

// Name implements sim.Protocol.
func (f *FET) Name() string { return fmt.Sprintf("FET(ℓ=%d)", f.ell) }

// Ell returns the per-half sample size ℓ.
func (f *FET) Ell() int { return f.ell }

// SamplesPerRound returns the total number of agents observed per round,
// 2ℓ (Theorem 1's accounting counts ℓ = O(log n) per half).
func (f *FET) SamplesPerRound() int { return 2 * f.ell }

// MemoryBits returns the bits of internal memory per agent: the stored
// count′′ ranges over {0, …, ℓ}, hence ⌈log₂(ℓ+1)⌉ bits — the O(log ℓ)
// of Theorem 1.
func (f *FET) MemoryBits() int {
	return int(math.Ceil(math.Log2(float64(f.ell + 1))))
}

// SampleSizes implements sim.Protocol.
func (f *FET) SampleSizes() []int { return []int{f.ell} }

// DrawsPerRound implements sim.FixedDraws: every Step makes exactly two
// declared CountOnes calls and no Sample calls, so on the tabulated fast
// path an agent consumes exactly two stream outputs per round — which
// the fast observer prefetches in one bulk fill.
func (f *FET) DrawsPerRound() int { return 2 }

// LockstepRule implements sim.TrendLockstep: FETAgent.Step is exactly
// the trend-compare rule with d = 2 (count′ compared, count′′ stored),
// so the lockstep replicate engine may replay it word-parallel across
// lanes with bit-identical results.
func (f *FET) LockstepRule() {}

// NewAgent implements sim.Protocol.
func (f *FET) NewAgent(*rng.Source) sim.Agent {
	return &FETAgent{ell: f.ell}
}

// FETAgent is the per-agent state of FET: just the previous round's
// count′′ — O(log ℓ) bits.
type FETAgent struct {
	ell       int
	prevCount int // count′′_{t−1}
}

var (
	_ sim.Agent            = (*FETAgent)(nil)
	_ sim.StateCorruptible = (*FETAgent)(nil)
	_ sim.TrendSeeder      = (*FETAgent)(nil)
	_ sim.AgentResetter    = (*FETAgent)(nil)
	_ sim.PrevCounter      = (*FETAgent)(nil)
	_ sim.FixedDraws       = (*FET)(nil)
	_ sim.TrendLockstep    = (*FET)(nil)
)

// ResetAgent implements sim.AgentResetter: a fresh FET agent stores
// count″ = 0, so pooled executors reset the field instead of
// reallocating the agent.
func (a *FETAgent) ResetAgent() { a.prevCount = 0 }

// Step implements sim.Agent.
func (a *FETAgent) Step(cur byte, obs sim.Observation) byte {
	countPrime := obs.CountOnes(a.ell)       // count′_t, compared with the past
	countDoublePrime := obs.CountOnes(a.ell) // count′′_t, stored for the future

	next := cur
	switch {
	case countPrime > a.prevCount:
		next = sim.OpinionOne
	case countPrime < a.prevCount:
		next = sim.OpinionZero
	}
	a.prevCount = countDoublePrime
	return next
}

// CorruptState implements sim.StateCorruptible: the adversary may place
// any value in the agent's memory, so pick a uniform count in {0, …, ℓ}.
func (a *FETAgent) CorruptState(src *rng.Source) {
	a.prevCount = src.Intn(a.ell + 1)
}

// SeedPrevCount implements sim.TrendSeeder. Seeding with an independent
// Binomial(ℓ, x0) draw per agent conditions the induced chain on
// x_{t−1} = x0.
func (a *FETAgent) SeedPrevCount(count int) {
	if count < 0 {
		count = 0
	}
	if count > a.ell {
		count = a.ell
	}
	a.prevCount = count
}

// PrevCount returns the stored count′′ (exposed for tests and the
// resource-accounting experiment).
func (a *FETAgent) PrevCount() int { return a.prevCount }

// SimpleTrend is the unpartitioned precursor of FET described at the start
// of Section 1.3: a single ℓ-sample count per round is both compared with
// the previous round's count and stored for the next comparison. This
// couples Y_{t+1} and Y_{t+2} (a large count_t makes Y_{t+1} lean 1 and
// Y_{t+2} lean 0), which is exactly the dependence that motivated the
// partitioned FET. It is retained as an ablation baseline (experiment
// E14): it works in practice but is harder to analyze.
type SimpleTrend struct {
	ell int
}

var _ sim.Protocol = (*SimpleTrend)(nil)

// NewSimpleTrend returns the unpartitioned trend protocol with sample
// size ell. It panics if ell < 1.
func NewSimpleTrend(ell int) *SimpleTrend {
	if ell < 1 {
		panic(fmt.Sprintf("core: NewSimpleTrend with ell = %d", ell))
	}
	return &SimpleTrend{ell: ell}
}

// Name implements sim.Protocol.
func (s *SimpleTrend) Name() string { return fmt.Sprintf("SimpleTrend(ℓ=%d)", s.ell) }

// Ell returns the per-round sample size ℓ.
func (s *SimpleTrend) Ell() int { return s.ell }

// SamplesPerRound returns ℓ: the unpartitioned variant reuses one count.
func (s *SimpleTrend) SamplesPerRound() int { return s.ell }

// SampleSizes implements sim.Protocol.
func (s *SimpleTrend) SampleSizes() []int { return []int{s.ell} }

// DrawsPerRound implements sim.FixedDraws: one declared CountOnes call
// per Step, no Sample calls.
func (s *SimpleTrend) DrawsPerRound() int { return 1 }

// LockstepRule implements sim.TrendLockstep: SimpleTrendAgent.Step is
// the trend-compare rule with d = 1 (the single count both compared and
// stored).
func (s *SimpleTrend) LockstepRule() {}

// NewAgent implements sim.Protocol.
func (s *SimpleTrend) NewAgent(*rng.Source) sim.Agent {
	return &SimpleTrendAgent{ell: s.ell}
}

// SimpleTrendAgent is the per-agent state of SimpleTrend.
type SimpleTrendAgent struct {
	ell       int
	prevCount int // count_{t−1}
}

var (
	_ sim.Agent            = (*SimpleTrendAgent)(nil)
	_ sim.StateCorruptible = (*SimpleTrendAgent)(nil)
	_ sim.TrendSeeder      = (*SimpleTrendAgent)(nil)
	_ sim.AgentResetter    = (*SimpleTrendAgent)(nil)
	_ sim.PrevCounter      = (*SimpleTrendAgent)(nil)
	_ sim.FixedDraws       = (*SimpleTrend)(nil)
	_ sim.TrendLockstep    = (*SimpleTrend)(nil)
)

// ResetAgent implements sim.AgentResetter.
func (a *SimpleTrendAgent) ResetAgent() { a.prevCount = 0 }

// Step implements sim.Agent.
func (a *SimpleTrendAgent) Step(cur byte, obs sim.Observation) byte {
	count := obs.CountOnes(a.ell)
	next := cur
	switch {
	case count > a.prevCount:
		next = sim.OpinionOne
	case count < a.prevCount:
		next = sim.OpinionZero
	}
	a.prevCount = count
	return next
}

// CorruptState implements sim.StateCorruptible.
func (a *SimpleTrendAgent) CorruptState(src *rng.Source) {
	a.prevCount = src.Intn(a.ell + 1)
}

// SeedPrevCount implements sim.TrendSeeder.
func (a *SimpleTrendAgent) SeedPrevCount(count int) {
	if count < 0 {
		count = 0
	}
	if count > a.ell {
		count = a.ell
	}
	a.prevCount = count
}

// PrevCount returns the stored count.
func (a *SimpleTrendAgent) PrevCount() int { return a.prevCount }
