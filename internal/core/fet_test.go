package core

import (
	"math"
	"reflect"
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
	"passivespread/internal/topo"
)

func TestSampleSize(t *testing.T) {
	tests := []struct {
		n    int
		c    float64
		want int
	}{
		{2, 3, 3},
		{1024, 3, 30},
		{1 << 16, 3, 48},
		{1024, 1, 10},
		{1, 3, 1},   // floor at 1
		{0, 3, 1},   // floor at 1
		{2, 0.1, 1}, // floor at 1
	}
	for _, tc := range tests {
		if got := SampleSize(tc.n, tc.c); got != tc.want {
			t.Errorf("SampleSize(%d, %v) = %d, want %d", tc.n, tc.c, got, tc.want)
		}
	}
}

func TestNewFETPanicsOnBadEll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFET(0) did not panic")
		}
	}()
	NewFET(0)
}

func TestNewSimpleTrendPanicsOnBadEll(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSimpleTrend(0) did not panic")
		}
	}()
	NewSimpleTrend(0)
}

func TestFETAccounting(t *testing.T) {
	f := NewFET(30)
	if f.Ell() != 30 {
		t.Fatalf("Ell = %d", f.Ell())
	}
	if f.SamplesPerRound() != 60 {
		t.Fatalf("SamplesPerRound = %d, want 60", f.SamplesPerRound())
	}
	if got := f.MemoryBits(); got != 5 { // ⌈log₂ 31⌉ = 5
		t.Fatalf("MemoryBits = %d, want 5", got)
	}
	if got := NewFET(1).MemoryBits(); got != 1 { // ⌈log₂ 2⌉ = 1
		t.Fatalf("MemoryBits(ℓ=1) = %d, want 1", got)
	}
	sizes := f.SampleSizes()
	if len(sizes) != 1 || sizes[0] != 30 {
		t.Fatalf("SampleSizes = %v", sizes)
	}
	if f.Name() == "" || NewSimpleTrend(5).Name() == "" {
		t.Fatal("empty protocol name")
	}
	st := NewSimpleTrend(30)
	if st.SamplesPerRound() != 30 {
		t.Fatalf("SimpleTrend SamplesPerRound = %d, want 30", st.SamplesPerRound())
	}
}

// fixedObs returns scripted CountOnes values for deterministic rule tests.
type fixedObs struct {
	counts []int
	i      int
}

func (f *fixedObs) CountOnes(int) int {
	v := f.counts[f.i%len(f.counts)]
	f.i++
	return v
}

func (f *fixedObs) Sample() byte { return 0 }

func TestFETAgentRule(t *testing.T) {
	tests := []struct {
		name       string
		prev       int // count′′_{t−1}
		countPrime int
		cur        byte
		want       byte
	}{
		{"up adopts 1", 3, 5, 0, 1},
		{"down adopts 0", 5, 3, 1, 0},
		{"tie keeps 1", 4, 4, 1, 1},
		{"tie keeps 0", 4, 4, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := &FETAgent{ell: 8, prevCount: tc.prev}
			// First CountOnes call is count′_t, second is count′′_t.
			obs := &fixedObs{counts: []int{tc.countPrime, 6}}
			if got := a.Step(tc.cur, obs); got != tc.want {
				t.Fatalf("Step = %d, want %d", got, tc.want)
			}
			if a.PrevCount() != 6 {
				t.Fatalf("stored count′′ = %d, want 6", a.PrevCount())
			}
		})
	}
}

func TestFETAgentUsesIndependentHalves(t *testing.T) {
	// The decision must use count′ (first draw), not count′′ (second).
	a := &FETAgent{ell: 8, prevCount: 4}
	obs := &fixedObs{counts: []int{7, 1}} // count′ = 7 > 4 → adopt 1
	if got := a.Step(0, obs); got != 1 {
		t.Fatalf("Step = %d, want 1 (decision must use the first draw)", got)
	}
	if a.PrevCount() != 1 {
		t.Fatalf("stored = %d, want 1 (storage must use the second draw)", a.PrevCount())
	}
}

func TestSimpleTrendAgentReusesSingleCount(t *testing.T) {
	a := &SimpleTrendAgent{ell: 8, prevCount: 4}
	obs := &fixedObs{counts: []int{7}}
	if got := a.Step(0, obs); got != 1 {
		t.Fatalf("Step = %d, want 1", got)
	}
	if a.PrevCount() != 7 {
		t.Fatalf("stored = %d, want 7 (same count is stored)", a.PrevCount())
	}
	if obs.i != 1 {
		t.Fatalf("SimpleTrend drew %d observations, want 1", obs.i)
	}
}

func TestSeedPrevCountClamps(t *testing.T) {
	a := &FETAgent{ell: 8}
	a.SeedPrevCount(-3)
	if a.PrevCount() != 0 {
		t.Fatalf("clamp low: %d", a.PrevCount())
	}
	a.SeedPrevCount(99)
	if a.PrevCount() != 8 {
		t.Fatalf("clamp high: %d", a.PrevCount())
	}
	b := &SimpleTrendAgent{ell: 8}
	b.SeedPrevCount(-1)
	if b.PrevCount() != 0 {
		t.Fatalf("clamp low: %d", b.PrevCount())
	}
	b.SeedPrevCount(9)
	if b.PrevCount() != 8 {
		t.Fatalf("clamp high: %d", b.PrevCount())
	}
}

func TestCorruptStateStaysInRange(t *testing.T) {
	src := rng.New(9)
	a := &FETAgent{ell: 5}
	for i := 0; i < 1000; i++ {
		a.CorruptState(src)
		if a.PrevCount() < 0 || a.PrevCount() > 5 {
			t.Fatalf("corrupted count %d out of range", a.PrevCount())
		}
	}
	b := &SimpleTrendAgent{ell: 5}
	for i := 0; i < 1000; i++ {
		b.CorruptState(src)
		if b.PrevCount() < 0 || b.PrevCount() > 5 {
			t.Fatalf("corrupted count %d out of range", b.PrevCount())
		}
	}
}

// runFET executes one FET simulation with standard settings.
func runFET(t *testing.T, n int, init sim.Initializer, seed uint64, correct byte) sim.Result {
	t.Helper()
	ell := SampleSize(n, DefaultC)
	res, err := sim.Run(sim.Config{
		N:             n,
		Protocol:      NewFET(ell),
		Init:          init,
		Correct:       correct,
		Seed:          seed,
		MaxRounds:     4000,
		CorruptStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFETConvergesFromAllWrong(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		for seed := uint64(0); seed < 3; seed++ {
			res := runFET(t, n, adversary.AllWrong{Correct: sim.OpinionOne}, seed, sim.OpinionOne)
			if !res.Converged {
				t.Fatalf("n=%d seed=%d: FET did not converge (final x=%v after %d rounds)",
					n, seed, res.FinalX, res.Rounds)
			}
		}
	}
}

func TestFETConvergesFromUniform(t *testing.T) {
	for _, n := range []int{64, 512} {
		res := runFET(t, n, adversary.Uniform{}, 7, sim.OpinionOne)
		if !res.Converged {
			t.Fatalf("n=%d: FET did not converge from uniform start", n)
		}
	}
}

func TestFETConvergesFromHalfSplit(t *testing.T) {
	res := runFET(t, 512, adversary.HalfSplit(), 11, sim.OpinionOne)
	if !res.Converged {
		t.Fatal("FET did not converge from half split")
	}
}

func TestFETSymmetricOnZero(t *testing.T) {
	res := runFET(t, 512, adversary.AllWrong{Correct: sim.OpinionZero}, 13, sim.OpinionZero)
	if !res.Converged {
		t.Fatal("FET did not converge when the correct opinion is 0")
	}
	if res.FinalX != 0 {
		t.Fatalf("final x = %v, want 0", res.FinalX)
	}
}

func TestFETStaysAbsorbedLongHorizon(t *testing.T) {
	// Once converged, the configuration must remain correct: run far past
	// convergence and confirm the final state is still all-correct.
	ell := SampleSize(512, DefaultC)
	res, err := sim.Run(sim.Config{
		N:             512,
		Protocol:      NewFET(ell),
		Init:          adversary.AllWrong{Correct: sim.OpinionOne},
		Correct:       sim.OpinionOne,
		Seed:          17,
		MaxRounds:     2000,
		CorruptStates: true,
		RunToEnd:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.FinalX != 1 {
		t.Fatalf("left the absorbing state: final x = %v", res.FinalX)
	}
	if res.Rounds != 2000 {
		t.Fatalf("RunToEnd executed %d rounds", res.Rounds)
	}
}

func TestFETMultipleAgreeingSources(t *testing.T) {
	ell := SampleSize(512, DefaultC)
	res, err := sim.Run(sim.Config{
		N:             512,
		Sources:       4,
		Protocol:      NewFET(ell),
		Init:          adversary.AllWrong{Correct: sim.OpinionOne},
		Correct:       sim.OpinionOne,
		Seed:          23,
		MaxRounds:     4000,
		CorruptStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("FET with 4 sources did not converge")
	}
}

func TestFETGridStartConditioning(t *testing.T) {
	// Seeding (x0, x1) = (0.3, 0.5) must make the first step's drift match
	// the exact g(0.3, 0.5) of Observation 1.
	const (
		n      = 4096
		x0, x1 = 0.3, 0.5
		trials = 40
	)
	ell := SampleSize(n, DefaultC)
	gs := adversary.GridStart{X0: x0, X1: x1, Ell: ell}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		var first float64
		_, err := sim.Run(sim.Config{
			N:         n,
			Protocol:  NewFET(ell),
			Init:      gs.Init(),
			Correct:   sim.OpinionOne,
			Seed:      uint64(100 + trial),
			MaxRounds: 1,
			StateInit: gs.StateInit(),
			Observers: []sim.Observer{sim.StopWhen(func(ev sim.RoundEvent) bool {
				first = ev.X
				return true
			})},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum += first
	}
	mean := sum / trials
	// Exact drift from Observation 1 via the dist package would create an
	// import cycle in spirit (core should not depend on analysis); instead
	// compare against a direct Monte-Carlo of the comparison rule.
	src := rng.New(999)
	const mc = 200000
	agree := 0.0
	for i := 0; i < mc; i++ {
		older := src.Binomial(ell, x0)
		newer := src.Binomial(ell, x1)
		switch {
		case newer > older:
			agree++
		case newer == older:
			agree += x1 // tie keeps current opinion; fraction x1 holds 1
		}
	}
	want := agree / mc
	if math.Abs(mean-want) > 0.02 {
		t.Fatalf("grid-start drift: simulated mean x_{t+2} = %v, want ≈%v", mean, want)
	}
}

func TestSimpleTrendAlsoConverges(t *testing.T) {
	// The unpartitioned variant works in practice (the paper notes it is
	// only harder to analyze).
	n := 512
	ell := SampleSize(n, DefaultC)
	res, err := sim.Run(sim.Config{
		N:             n,
		Protocol:      NewSimpleTrend(ell),
		Init:          adversary.AllWrong{Correct: sim.OpinionOne},
		Correct:       sim.OpinionOne,
		Seed:          31,
		MaxRounds:     8000,
		CorruptStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SimpleTrend did not converge")
	}
}

// TestFETThroughGraphTopology: FET's update rule must run unmodified
// against the topology layer's neighbor sampler — on a reasonably dense
// random k-out observation graph the worst-case dissemination still
// succeeds, and the run is deterministic per seed.
func TestFETThroughGraphTopology(t *testing.T) {
	n := 1024
	run := func(seed uint64) sim.Result {
		res, err := sim.Run(sim.Config{
			N:             n,
			Protocol:      NewFET(SampleSize(n, DefaultC)),
			Init:          adversary.AllWrong{Correct: sim.OpinionOne},
			Topology:      topo.RandomRegular(16),
			CorruptStates: true,
			Seed:          seed,
			MaxRounds:     400 * 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	converged := 0
	for seed := uint64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: FET on random-regular:16 is not deterministic", seed)
		}
		if a.Converged {
			converged++
		}
	}
	if converged < 3 {
		t.Fatalf("FET converged in only %d/5 seeds on random-regular:16 at n=%d", converged, n)
	}
}
