// Package dist provides the exact binomial-competition probabilities that
// drive every aggregate view of the FET dynamics, together with the
// closed-form bounds the paper proves about them (Lemmas 12–15) and the
// one-step drift of Observation 1.
//
// The central object is the coin competition: two players flip k coins
// each, with heads probabilities p and q. Under passive communication an
// agent's trend comparison is exactly such a competition — the stored
// count″ is a Binomial(ℓ, x_t) variate and the fresh count′ is a
// Binomial(ℓ, x_{t+1}) variate — so the exact win/tie/lose probabilities
// determine the per-agent flip law, the aggregate Markov chain of
// internal/markov, the occupancy engine of internal/sim, and the
// mean-field map of internal/meanfield.
//
// All probabilities here are computed exactly (up to float64 rounding)
// from binomial pmfs in O(k) time; nothing is sampled.
package dist

import "math"

// Competition holds the exact outcome probabilities of a coin competition
// between X ~ Binomial(k, p) and Y ~ Binomial(k, q).
type Competition struct {
	// Less is P(X < Y).
	Less float64
	// Equal is P(X = Y).
	Equal float64
	// Greater is P(X > Y).
	Greater float64
}

// Compete returns the exact competition probabilities for
// X ~ Binomial(k, p) versus Y ~ Binomial(k, q), computed by pairing the
// pmf of Y with the prefix sums of the pmf of X. It panics if k < 0.
func Compete(k int, p, q float64) Competition {
	px := PMFVector(k, p)
	py := PMFVector(k, q)

	var c Competition
	// cdfBelow accumulates P(X < y) as y sweeps upward.
	cdfBelow := 0.0
	for y := 0; y <= k; y++ {
		c.Less += py[y] * cdfBelow
		c.Equal += py[y] * px[y]
		cdfBelow += px[y]
	}
	c.Greater = 1 - c.Less - c.Equal
	if c.Greater < 0 {
		c.Greater = 0
	}
	return c
}

// PMFVector returns the probability mass function of Binomial(n, p) as a
// slice of length n+1: index k holds P(B = k). Out-of-range p is clamped
// to [0, 1]. It panics if n < 0.
func PMFVector(n int, p float64) []float64 {
	if n < 0 {
		panic("dist: PMFVector with negative n")
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	pmf := make([]float64, n+1)
	switch {
	case p == 0:
		pmf[0] = 1
	case p == 1:
		pmf[n] = 1
	default:
		q := 1 - p
		f := math.Pow(q, float64(n))
		if f > 0 {
			// Forward recurrence P(k+1) = P(k)·(n−k)/(k+1)·p/q.
			r := p / q
			for k := 0; k <= n; k++ {
				pmf[k] = f
				f *= float64(n-k) / float64(k+1) * r
			}
		} else {
			// q^n underflowed: evaluate every term in log space.
			for k := 0; k <= n; k++ {
				pmf[k] = math.Exp(logBinomPMF(n, k, p))
			}
		}
	}
	return pmf
}

// logBinomPMF returns log P(Binomial(n, p) = k) for 0 < p < 1.
func logBinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1)) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// HoeffdingFavoriteWins is the Lemma 13 lower bound on the probability
// that the favorite (the player with the larger success probability) wins
// the competition strictly: writing the score difference as a sum of k
// i.i.d. variables in [−1, 1] with mean |q−p|, Hoeffding's inequality
// gives
//
//	P(favorite wins) ≥ 1 − exp(−k(q−p)²/2).
func HoeffdingFavoriteWins(k int, p, q float64) float64 {
	gap := math.Abs(q - p)
	return 1 - math.Exp(-float64(k)*gap*gap/2)
}

// BerryEsseenUnderdogWins is the Lemma 15 lower bound on the probability
// that the underdog (the player with the smaller success probability)
// wins strictly: the normal approximation of the score difference minus
// the Berry–Esseen error (with Shevtsova's constant C = 0.56). The bound
// can be negative when the gap is large; callers should treat
// non-positive values as vacuous.
func BerryEsseenUnderdogWins(k int, p, q float64) float64 {
	if p > q {
		p, q = q, p
	}
	// D = Σᵢ (ξᵢ − ηᵢ), ξ ~ Bernoulli(p), η ~ Bernoulli(q) independent.
	// The underdog wins iff D > 0.
	mean := p - q
	variance := p*(1-p) + q*(1-q)
	if variance == 0 {
		return 0
	}
	// Exact third absolute central moment of one summand, which takes the
	// values +1, −1, 0 with probabilities p(1−q), q(1−p) and the rest.
	rho := p*(1-q)*math.Pow(math.Abs(1-mean), 3) +
		q*(1-p)*math.Pow(math.Abs(-1-mean), 3) +
		(p*q+(1-p)*(1-q))*math.Pow(math.Abs(mean), 3)

	kf := float64(k)
	sigma := math.Sqrt(kf * variance)
	const shevtsova = 0.56
	z := -kf * mean / sigma // standardized threshold at 0; mean ≤ 0
	return 1 - normalCDF(z) - shevtsova*kf*rho/(sigma*sigma*sigma)
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// Lemma12UpperBound is the Lemma 12 upper bound on the probability that
// the favorite wins a close competition: in the regime p, q ∈ [1/3, 2/3]
// and |q−p| ≤ 1/√k, the competition stays nearly fair —
//
//	P(favorite wins) < (1 − P(tie))/2 + P(tie)/2 + 2√k·|q−p|,
//
// i.e. the favorite's advantage over the fair share is at most the tie
// mass plus O(√k·|q−p|). The caller supplies the exact tie probability
// (available from Compete).
func Lemma12UpperBound(k int, p, q float64, equal float64) float64 {
	gap := math.Abs(q - p)
	bound := (1-equal)/2 + equal/2 + 2*math.Sqrt(float64(k))*gap
	if bound > 1 {
		bound = 1
	}
	return bound
}

// StepProbs holds the two per-agent transition probabilities of
// Observation 1, conditioned on consecutive opinion fractions
// (x_t, x_{t+1}): every non-source agent compares a fresh
// count′ ~ Binomial(ℓ, x_{t+1}) against its stored
// count″ ~ Binomial(ℓ, x_t).
type StepProbs struct {
	// StayOne is the probability that a 1-holder keeps opinion 1:
	// P(B_ℓ(x_{t+1}) ≥ B_ℓ(x_t)) (ties keep the current opinion).
	StayOne float64
	// GainOne is the probability that a 0-holder switches to 1:
	// P(B_ℓ(x_{t+1}) > B_ℓ(x_t)).
	GainOne float64
}

// Step returns the exact per-agent transition probabilities for per-half
// sample size ell, conditioned on (x_t, x_{t+1}) = (x0, x1).
func Step(ell int, x0, x1 float64) StepProbs {
	c := Compete(ell, x0, x1)
	return StepProbs{
		StayOne: c.Less + c.Equal,
		GainOne: c.Less,
	}
}

// Drift returns the exact one-step drift g(x_t, x_{t+1}) of Observation 1
// (Eq. (2)): the expected fraction of 1-opinions at round t+2 for a
// population of n agents with one source holding opinion 1,
//
//	g(x0, x1) = (1 + (n·x1 − 1)·StayOne + n·(1 − x1)·GainOne) / n.
func Drift(n, ell int, x0, x1 float64) float64 {
	st := Step(ell, x0, x1)
	nf := float64(n)
	k1 := x1 * nf
	return (1 + (k1-1)*st.StayOne + (nf-k1)*st.GainOne) / nf
}
