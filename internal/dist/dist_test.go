package dist

import (
	"math"
	"testing"

	"passivespread/internal/rng"
)

func TestPMFVectorNormalized(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.3}, {1, 0.5}, {16, 0.25}, {200, 0.5}, {1000, 0.01}, {2000, 0.5}} {
		pmf := PMFVector(tc.n, tc.p)
		if len(pmf) != tc.n+1 {
			t.Fatalf("PMFVector(%d, %v) has length %d", tc.n, tc.p, len(pmf))
		}
		sum := 0.0
		for k, v := range pmf {
			if v < 0 {
				t.Fatalf("negative mass at k=%d for n=%d p=%v", k, tc.n, tc.p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf for n=%d p=%v sums to %v", tc.n, tc.p, sum)
		}
	}
}

func TestPMFVectorDegenerate(t *testing.T) {
	if pmf := PMFVector(5, 0); pmf[0] != 1 {
		t.Fatalf("p=0 pmf = %v", pmf)
	}
	if pmf := PMFVector(5, 1); pmf[5] != 1 {
		t.Fatalf("p=1 pmf = %v", pmf)
	}
}

func TestCompeteAgainstMonteCarlo(t *testing.T) {
	const trials = 200000
	src := rng.New(7)
	for _, tc := range []struct {
		k    int
		p, q float64
	}{{12, 0.3, 0.5}, {36, 0.45, 0.55}, {60, 0.5, 0.5}, {20, 0.1, 0.9}} {
		comp := Compete(tc.k, tc.p, tc.q)
		if sum := comp.Less + comp.Equal + comp.Greater; math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Compete(%d, %v, %v) sums to %v", tc.k, tc.p, tc.q, sum)
		}
		var less, equal, greater float64
		for i := 0; i < trials; i++ {
			x := src.Binomial(tc.k, tc.p)
			y := src.Binomial(tc.k, tc.q)
			switch {
			case x < y:
				less++
			case x == y:
				equal++
			default:
				greater++
			}
		}
		// 5σ Monte-Carlo tolerance.
		tol := 5 / math.Sqrt(trials)
		if math.Abs(less/trials-comp.Less) > tol ||
			math.Abs(equal/trials-comp.Equal) > tol ||
			math.Abs(greater/trials-comp.Greater) > tol {
			t.Fatalf("Compete(%d, %v, %v) = %+v, Monte-Carlo (%v, %v, %v)",
				tc.k, tc.p, tc.q, comp, less/trials, equal/trials, greater/trials)
		}
	}
}

func TestCompeteSymmetry(t *testing.T) {
	a := Compete(40, 0.3, 0.6)
	b := Compete(40, 0.6, 0.3)
	if math.Abs(a.Less-b.Greater) > 1e-12 || math.Abs(a.Equal-b.Equal) > 1e-12 {
		t.Fatalf("swap asymmetry: %+v vs %+v", a, b)
	}
}

func TestBoundsHoldOnGrid(t *testing.T) {
	for _, k := range []int{20, 60, 200, 1000} {
		for _, gap := range []float64{0.005, 0.02, 0.08} {
			for _, base := range [][2]float64{
				{0.5 - gap/2, 0.5 + gap/2},
				{0.4, 0.4 + gap},
			} {
				p, q := base[0], base[1]
				comp := Compete(k, p, q)
				favorite := comp.Less
				if lb := HoeffdingFavoriteWins(k, p, q); favorite < lb-1e-12 {
					t.Errorf("Hoeffding violated at k=%d p=%v q=%v: %v < %v", k, p, q, favorite, lb)
				}
				if lb := BerryEsseenUnderdogWins(k, p, q); lb > 0 && comp.Greater < lb-1e-12 {
					t.Errorf("Berry–Esseen violated at k=%d p=%v q=%v: %v < %v", k, p, q, comp.Greater, lb)
				}
				if p >= 1.0/3 && q <= 2.0/3 && q-p <= 1/math.Sqrt(float64(k)) {
					if ub := Lemma12UpperBound(k, p, q, comp.Equal); favorite >= ub {
						t.Errorf("Lemma 12 violated at k=%d p=%v q=%v: %v >= %v", k, p, q, favorite, ub)
					}
				}
			}
		}
	}
}

func TestStepMatchesCompete(t *testing.T) {
	c := Compete(24, 0.3, 0.55)
	st := Step(24, 0.3, 0.55)
	if st.GainOne != c.Less || st.StayOne != c.Less+c.Equal {
		t.Fatalf("Step inconsistent with Compete: %+v vs %+v", st, c)
	}
	if st.StayOne < st.GainOne {
		t.Fatal("StayOne must dominate GainOne (ties keep the opinion)")
	}
}

func TestDriftFixedPoints(t *testing.T) {
	// At the absorbing corner the drift is exactly 1; with everyone on 0
	// except the source, the drift stays near 0 on the diagonal of a large
	// population (the source contributes O(1/n)).
	n, ell := 4096, 36
	if g := Drift(n, ell, 1, 1); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Drift at (1,1) = %v", g)
	}
	// The chain's domain has K1 ≥ 1 (the source holds 1): the deepest
	// reachable corner is (0, 1/n), where only the source persists.
	if g := Drift(n, ell, 0, 1.0/float64(n)); g <= 0 || g > 0.01 {
		t.Fatalf("Drift at (0, 1/n) = %v", g)
	}
	// Symmetric ties dilute toward 1/2: drift from the diagonal points
	// strictly toward the center (up to the source's O(1/n) push).
	if g := Drift(n, ell, 0.8, 0.8); g >= 0.8 {
		t.Fatalf("Drift at (0.8, 0.8) = %v, want < 0.8", g)
	}
	if g := Drift(n, ell, 0.2, 0.2); g <= 0.2 {
		t.Fatalf("Drift at (0.2, 0.2) = %v, want > 0.2", g)
	}
}

func TestDriftAgainstMonteCarlo(t *testing.T) {
	const trials = 200000
	n, ell := 4096, 36
	src := rng.New(11)
	for _, xy := range [][2]float64{{0.3, 0.5}, {0.5, 0.5}, {0.9, 0.95}} {
		x, y := xy[0], xy[1]
		exact := Drift(n, ell, x, y)
		sum := 0.0
		for i := 0; i < trials; i++ {
			older := src.Binomial(ell, x)
			newer := src.Binomial(ell, y)
			switch {
			case newer > older:
				sum++
			case newer == older:
				sum += y
			}
		}
		mc := sum / trials
		if math.Abs(mc-exact) > 5/math.Sqrt(trials)+1.0/float64(n) {
			t.Fatalf("Drift(%v, %v) = %v, Monte-Carlo %v", x, y, exact, mc)
		}
	}
}
