// Package domain implements the state-space geometry of the paper's
// analysis: the two-dimensional grid G = {0, 1/n, …, 1}² of consecutive
// opinion fractions (x_t, x_{t+1}), its partition into the Green, Purple,
// Red, Cyan and Yellow domains of Figure 1a (Section 2.1), and the finer
// partition of the Yellow′ bounding box into the A, B and C areas of
// Figure 2 (Section 3.1).
//
// Each domain comes in a 1-side and a 0-side variant; the 0-side is the
// mirror image of the 1-side through the center (1/2, 1/2). Classification
// resolves the paper's (measure-zero) boundary overlaps with a fixed
// priority: Green, Yellow, Cyan, Purple, Red.
package domain

import (
	"fmt"
	"math"
)

// Params fixes the geometry of the partition.
type Params struct {
	// N is the population size; it sets the 1/log n and 1/n thresholds.
	N int
	// Delta is the paper's δ ∈ (0, 1/2), the width of the low-speed band
	// and the scale of the Yellow area. The paper takes δ small; the
	// default used across experiments is 0.05.
	Delta float64
}

// DefaultDelta is the δ used by the experiments unless overridden.
const DefaultDelta = 0.05

// NewParams returns Params for population n with the default δ.
func NewParams(n int) Params { return Params{N: n, Delta: DefaultDelta} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("domain: N = %d, want ≥ 2", p.N)
	}
	if !(p.Delta > 0 && p.Delta < 0.5) {
		return fmt.Errorf("domain: Delta = %v, want in (0, 1/2)", p.Delta)
	}
	return nil
}

// LogN returns log n (natural logarithm). The paper's thresholds 1/log n
// and λ_n are stated up to constant factors; the natural log is used
// consistently throughout this repository.
func (p Params) LogN() float64 { return math.Log(float64(p.N)) }

// Lambda returns λ_n = 1 / log^{1/2+δ} n (Section 2.1), the multiplicative
// contraction separating Purple from Red.
func (p Params) Lambda() float64 {
	return 1 / math.Pow(p.LogN(), 0.5+p.Delta)
}

// Kind identifies a domain of the Figure 1a partition.
type Kind int

// The domains. KindOther is a defensive catch-all: with a valid Params the
// five families cover the whole grid, and tests assert KindOther never
// occurs.
const (
	KindGreen1 Kind = iota
	KindGreen0
	KindPurple1
	KindPurple0
	KindRed1
	KindRed0
	KindCyan1
	KindCyan0
	KindYellow
	KindOther
)

var kindNames = [...]string{
	KindGreen1:  "Green1",
	KindGreen0:  "Green0",
	KindPurple1: "Purple1",
	KindPurple0: "Purple0",
	KindRed1:    "Red1",
	KindRed0:    "Red0",
	KindCyan1:   "Cyan1",
	KindCyan0:   "Cyan0",
	KindYellow:  "Yellow",
	KindOther:   "Other",
}

// String returns the domain's name as used in the paper.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Family is a side-agnostic domain family.
type Family int

// The five families of Figure 1a plus the defensive catch-all.
const (
	FamilyGreen Family = iota
	FamilyPurple
	FamilyRed
	FamilyCyan
	FamilyYellow
	FamilyOther
)

var familyNames = [...]string{
	FamilyGreen:  "Green",
	FamilyPurple: "Purple",
	FamilyRed:    "Red",
	FamilyCyan:   "Cyan",
	FamilyYellow: "Yellow",
	FamilyOther:  "Other",
}

// String returns the family name.
func (f Family) String() string {
	if f < 0 || int(f) >= len(familyNames) {
		return fmt.Sprintf("Family(%d)", int(f))
	}
	return familyNames[f]
}

// Family returns the side-agnostic family of k.
func (k Kind) Family() Family {
	switch k {
	case KindGreen1, KindGreen0:
		return FamilyGreen
	case KindPurple1, KindPurple0:
		return FamilyPurple
	case KindRed1, KindRed0:
		return FamilyRed
	case KindCyan1, KindCyan0:
		return FamilyCyan
	case KindYellow:
		return FamilyYellow
	default:
		return FamilyOther
	}
}

// Side returns +1 for 1-side domains, 0 for 0-side domains, and -1 for the
// sideless Yellow/Other.
func (k Kind) Side() int {
	switch k {
	case KindGreen1, KindPurple1, KindRed1, KindCyan1:
		return 1
	case KindGreen0, KindPurple0, KindRed0, KindCyan0:
		return 0
	default:
		return -1
	}
}

// Speed returns |x_{t+1} − x_t|, the paper's "speed" of a grid point
// (the larger it is, the faster the convergence from that point).
func Speed(x, y float64) float64 { return math.Abs(y - x) }

// Classify returns the domain of the grid point (x, y) = (x_t, x_{t+1}).
// Boundary overlaps between adjacent domains are resolved with the fixed
// priority Green > Yellow > Cyan > Purple > Red.
func (p Params) Classify(x, y float64) Kind {
	d := p.Delta
	invLog := 1 / p.LogN()
	lambda := p.Lambda()

	// Green: speed at least δ (Section 2.1; one round to consensus).
	if y >= x+d {
		return KindGreen1
	}
	if y <= x-d {
		return KindGreen0
	}

	// From here on |y − x| < δ (the low-speed band).

	// Yellow: both coordinates near 1/2.
	if x >= 0.5-3*d && x <= 0.5+3*d &&
		y >= 0.5-4*d && y <= 0.5+4*d {
		return KindYellow
	}

	// Cyan: almost-consensus on one value over two consecutive rounds.
	if math.Min(x, y) < invLog {
		return KindCyan1
	}
	if math.Max(x, y) > 1-invLog {
		return KindCyan0
	}

	// Purple / Red on the 1-side: x well below 1/2.
	if x < 0.5-3*d {
		if y >= (1-lambda)*x {
			return KindPurple1
		}
		return KindRed1
	}
	// Purple / Red on the 0-side: mirror through (1/2, 1/2).
	if x > 0.5+3*d {
		if 1-y >= (1-lambda)*(1-x) {
			return KindPurple0
		}
		return KindRed0
	}

	// Unreachable for valid Params: the band with x ∈ [1/2−3δ, 1/2+3δ]
	// is Yellow.
	return KindOther
}

// YellowPrimeContains reports whether (x, y) lies in the Yellow′ bounding
// box [1/2 − 4δ, 1/2 + 4δ]² of Section 3 (Lemma 6). Yellow ⊂ Yellow′.
func (p Params) YellowPrimeContains(x, y float64) bool {
	d := p.Delta
	return x >= 0.5-4*d && x <= 0.5+4*d && y >= 0.5-4*d && y <= 0.5+4*d
}

// Area identifies a sub-area of the Yellow′ partition of Figure 2.
type Area int

// The Yellow′ sub-areas. AreaOutside marks points not in Yellow′.
const (
	AreaA1 Area = iota
	AreaA0
	AreaB1
	AreaB0
	AreaC1
	AreaC0
	AreaOutside
)

var areaNames = [...]string{
	AreaA1:      "A1",
	AreaA0:      "A0",
	AreaB1:      "B1",
	AreaB0:      "B0",
	AreaC1:      "C1",
	AreaC0:      "C0",
	AreaOutside: "outside",
}

// String returns the area's name as used in the paper.
func (a Area) String() string {
	if a < 0 || int(a) >= len(areaNames) {
		return fmt.Sprintf("Area(%d)", int(a))
	}
	return areaNames[a]
}

// Letter returns the side-agnostic letter 'A', 'B', 'C', or 'X' for
// outside.
func (a Area) Letter() byte {
	switch a {
	case AreaA1, AreaA0:
		return 'A'
	case AreaB1, AreaB0:
		return 'B'
	case AreaC1, AreaC0:
		return 'C'
	default:
		return 'X'
	}
}

// ClassifyYellow returns the Figure 2 sub-area of (x, y) within Yellow′:
//
//	A1 = {y ≥ 1/2 and y − x ≥ x − 1/2}
//	B1 = {y ≥ x and y − x < x − 1/2}
//	C1 = {y < 1/2 and y ≥ x}
//
// intersected with Yellow′, plus their mirror images A0, B0, C0. Boundary
// overlaps are resolved with priority A > B > C, and the diagonal y = x
// belongs to the 1-side.
func (p Params) ClassifyYellow(x, y float64) Area {
	if !p.YellowPrimeContains(x, y) {
		return AreaOutside
	}
	if y >= x {
		switch {
		case y >= 0.5 && y-x >= x-0.5:
			return AreaA1
		case y-x < x-0.5:
			return AreaB1
		default:
			return AreaC1
		}
	}
	// Mirror: classify (1−x, 1−y) on the 1-side.
	mx, my := 1-x, 1-y
	switch {
	case my >= 0.5 && my-mx >= mx-0.5:
		return AreaA0
	case my-mx < mx-0.5:
		return AreaB0
	default:
		return AreaC0
	}
}

// Mirror returns the point reflected through the center (1/2, 1/2).
func Mirror(x, y float64) (float64, float64) { return 1 - x, 1 - y }

// MirrorKind returns the domain obtained by swapping the 1-side and
// 0-side (Yellow and Other are self-mirrored).
func MirrorKind(k Kind) Kind {
	switch k {
	case KindGreen1:
		return KindGreen0
	case KindGreen0:
		return KindGreen1
	case KindPurple1:
		return KindPurple0
	case KindPurple0:
		return KindPurple1
	case KindRed1:
		return KindRed0
	case KindRed0:
		return KindRed1
	case KindCyan1:
		return KindCyan0
	case KindCyan0:
		return KindCyan1
	default:
		return k
	}
}

// MirrorArea returns the Yellow′ area reflected through the center.
func MirrorArea(a Area) Area {
	switch a {
	case AreaA1:
		return AreaA0
	case AreaA0:
		return AreaA1
	case AreaB1:
		return AreaB0
	case AreaB0:
		return AreaB1
	case AreaC1:
		return AreaC0
	case AreaC0:
		return AreaC1
	default:
		return a
	}
}

// Kinds lists every Kind, for iteration in tables and tests.
func Kinds() []Kind {
	return []Kind{
		KindGreen1, KindGreen0, KindPurple1, KindPurple0,
		KindRed1, KindRed0, KindCyan1, KindCyan0, KindYellow, KindOther,
	}
}

// Areas lists every Yellow′ Area, for iteration in tables and tests.
func Areas() []Area {
	return []Area{AreaA1, AreaA0, AreaB1, AreaB0, AreaC1, AreaC0, AreaOutside}
}
