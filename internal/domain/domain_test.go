package domain

import (
	"math"
	"testing"
	"testing/quick"
)

func params() Params { return NewParams(1 << 20) }

func TestValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{N: 1, Delta: 0.05},
		{N: 100, Delta: 0},
		{N: 100, Delta: 0.5},
		{N: 100, Delta: -0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Params %+v validated", p)
		}
	}
}

func TestLambda(t *testing.T) {
	p := params()
	want := 1 / math.Pow(math.Log(float64(p.N)), 0.5+p.Delta)
	if got := p.Lambda(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Lambda = %v, want %v", got, want)
	}
	if p.Lambda() <= 0 || p.Lambda() >= 1 {
		t.Fatalf("Lambda = %v out of (0,1)", p.Lambda())
	}
}

func TestClassifyKnownPoints(t *testing.T) {
	p := params() // δ = 0.05, n = 2^20: 1/log n ≈ 0.072, λ ≈ 0.236
	tests := []struct {
		x, y float64
		want Kind
	}{
		{0.2, 0.5, KindGreen1},   // big upward speed
		{0.5, 0.2, KindGreen0},   // big downward speed
		{0.3, 0.3, KindPurple1},  // low speed, x well below 1/2, y ≥ (1−λ)x
		{0.7, 0.7, KindPurple0},  // mirror
		{0.15, 0.105, KindRed1},  // y < (1−λ)x but within δ band, y ≥ 1/log n
		{0.85, 0.895, KindRed0},  // mirror
		{0.05, 0.05, KindCyan1},  // almost-consensus on 0
		{0.95, 0.95, KindCyan0},  // almost-consensus on 1
		{0.5, 0.5, KindYellow},   // dead center
		{0.4, 0.44, KindYellow},  // inside the yellow box
		{1, 1, KindCyan0},        // absorbing corner
		{0.001, 0.02, KindCyan1}, // near origin, inside band (|y−x| < δ)
	}
	for _, tc := range tests {
		if got := p.Classify(tc.x, tc.y); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestClassifyRedRequiresContraction(t *testing.T) {
	p := params()
	// Red1 is nonempty only where λ·x < δ; x = 0.15 qualifies at n = 2^20.
	x := 0.15
	lambda := p.Lambda()
	yPurple := (1 - lambda) * x * 1.001 // just above the frontier
	yRed := (1 - lambda) * x * 0.999    // just below
	if got := p.Classify(x, yPurple); got != KindPurple1 {
		t.Fatalf("just above frontier: %v", got)
	}
	if got := p.Classify(x, yRed); got != KindRed1 {
		t.Fatalf("just below frontier: %v", got)
	}
}

func TestClassifyNeverOther(t *testing.T) {
	// The five families must cover the grid: sweep a fine lattice.
	p := params()
	const m = 400
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := float64(i) / m
			y := float64(j) / m
			if got := p.Classify(x, y); got == KindOther {
				t.Fatalf("Classify(%v, %v) = Other: partition has a hole", x, y)
			}
		}
	}
}

func TestClassifyMirrorSymmetry(t *testing.T) {
	// Classify(1−x, 1−y) must be the mirror kind of Classify(x, y).
	p := params()
	f := func(xr, yr uint16) bool {
		x := float64(xr) / math.MaxUint16
		y := float64(yr) / math.MaxUint16
		k := p.Classify(x, y)
		mx, my := Mirror(x, y)
		return p.Classify(mx, my) == MirrorKind(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestGreenSpeedThreshold(t *testing.T) {
	p := params()
	// Exactly at speed δ upward is Green1; just inside the band is not.
	if got := p.Classify(0.3, 0.3+p.Delta); got != KindGreen1 {
		t.Fatalf("speed=δ up: %v", got)
	}
	if got := p.Classify(0.3, 0.3+p.Delta-1e-9); got == KindGreen1 {
		t.Fatalf("speed<δ misclassified Green1")
	}
	if got := p.Classify(0.3, 0.3-p.Delta); got != KindGreen0 {
		t.Fatalf("speed=δ down: %v", got)
	}
}

func TestKindStringAndFamily(t *testing.T) {
	wantFamily := map[Kind]Family{
		KindGreen1: FamilyGreen, KindGreen0: FamilyGreen,
		KindPurple1: FamilyPurple, KindPurple0: FamilyPurple,
		KindRed1: FamilyRed, KindRed0: FamilyRed,
		KindCyan1: FamilyCyan, KindCyan0: FamilyCyan,
		KindYellow: FamilyYellow, KindOther: FamilyOther,
	}
	for _, k := range Kinds() {
		if k.String() == "" {
			t.Fatalf("empty name for kind %d", int(k))
		}
		if k.Family() != wantFamily[k] {
			t.Fatalf("%v.Family() = %v", k, k.Family())
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal(Kind(99).String())
	}
	if Family(99).String() != "Family(99)" {
		t.Fatal(Family(99).String())
	}
	if Area(99).String() != "Area(99)" {
		t.Fatal(Area(99).String())
	}
}

func TestKindSide(t *testing.T) {
	if KindGreen1.Side() != 1 || KindCyan1.Side() != 1 {
		t.Fatal("1-side kinds")
	}
	if KindGreen0.Side() != 0 || KindRed0.Side() != 0 {
		t.Fatal("0-side kinds")
	}
	if KindYellow.Side() != -1 || KindOther.Side() != -1 {
		t.Fatal("sideless kinds")
	}
}

func TestSpeed(t *testing.T) {
	if Speed(0.3, 0.5) != 0.2 {
		t.Fatal("speed up")
	}
	if Speed(0.5, 0.3) != 0.2 {
		t.Fatal("speed down")
	}
}

func TestYellowPrimeContainsYellow(t *testing.T) {
	// Yellow ⊂ Yellow′ (the paper's motivation for the bounding box).
	p := params()
	const m = 300
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := float64(i) / m
			y := float64(j) / m
			if p.Classify(x, y) == KindYellow && !p.YellowPrimeContains(x, y) {
				t.Fatalf("Yellow point (%v, %v) outside Yellow′", x, y)
			}
		}
	}
}

func TestClassifyYellowKnownPoints(t *testing.T) {
	p := params() // Yellow′ = [0.3, 0.7]²
	tests := []struct {
		x, y float64
		want Area
	}{
		{0.5, 0.6, AreaA1},   // above diagonal and above anti-slope
		{0.5, 0.4, AreaA0},   // mirror
		{0.65, 0.66, AreaB1}, // x > 1/2, tiny positive speed
		{0.35, 0.34, AreaB0}, // mirror
		{0.4, 0.45, AreaC1},  // below 1/2, moving up
		{0.6, 0.55, AreaC0},  // mirror
		{0.9, 0.9, AreaOutside},
		{0.1, 0.5, AreaOutside},
	}
	for _, tc := range tests {
		if got := p.ClassifyYellow(tc.x, tc.y); got != tc.want {
			t.Errorf("ClassifyYellow(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestClassifyYellowCoversBox(t *testing.T) {
	p := params()
	const m = 200
	lo, hi := 0.5-4*p.Delta, 0.5+4*p.Delta
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := lo + (hi-lo)*float64(i)/m
			y := lo + (hi-lo)*float64(j)/m
			if got := p.ClassifyYellow(x, y); got == AreaOutside {
				t.Fatalf("point (%v, %v) in Yellow′ classified outside", x, y)
			}
		}
	}
}

func TestClassifyYellowMirrorSymmetry(t *testing.T) {
	p := params()
	lo, hi := 0.5-4*p.Delta, 0.5+4*p.Delta
	const m = 120
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := lo + (hi-lo)*float64(i)/m
			y := lo + (hi-lo)*float64(j)/m
			if x == y || x+y == 1 {
				continue // boundary points may flip side under mirroring
			}
			a := p.ClassifyYellow(x, y)
			mx, my := Mirror(x, y)
			if got := p.ClassifyYellow(mx, my); got != MirrorArea(a) {
				t.Fatalf("mirror asymmetry at (%v, %v): %v vs %v", x, y, a, got)
			}
		}
	}
}

func TestAreaLetter(t *testing.T) {
	tests := map[Area]byte{
		AreaA1: 'A', AreaA0: 'A',
		AreaB1: 'B', AreaB0: 'B',
		AreaC1: 'C', AreaC0: 'C',
		AreaOutside: 'X',
	}
	for a, want := range tests {
		if got := a.Letter(); got != want {
			t.Errorf("%v.Letter() = %c, want %c", a, got, want)
		}
	}
}

func TestAreasAndKindsComplete(t *testing.T) {
	if len(Kinds()) != 10 {
		t.Fatalf("Kinds() has %d entries", len(Kinds()))
	}
	if len(Areas()) != 7 {
		t.Fatalf("Areas() has %d entries", len(Areas()))
	}
}

func TestMirrorInvolution(t *testing.T) {
	for _, k := range Kinds() {
		if MirrorKind(MirrorKind(k)) != k {
			t.Fatalf("MirrorKind not an involution at %v", k)
		}
	}
	for _, a := range Areas() {
		if MirrorArea(MirrorArea(a)) != a {
			t.Fatalf("MirrorArea not an involution at %v", a)
		}
	}
}

func TestB1RequiresRightHalf(t *testing.T) {
	// B1 needs y ≥ x and y − x < x − 1/2, which forces x > 1/2.
	p := params()
	const m = 200
	lo, hi := 0.5-4*p.Delta, 0.5+4*p.Delta
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := lo + (hi-lo)*float64(i)/m
			y := lo + (hi-lo)*float64(j)/m
			if p.ClassifyYellow(x, y) == AreaB1 {
				if x <= 0.5 {
					t.Fatalf("B1 point with x = %v ≤ 1/2", x)
				}
				if y < x {
					t.Fatalf("B1 point with y < x: (%v, %v)", x, y)
				}
			}
		}
	}
}
