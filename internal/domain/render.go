package domain

import "strings"

// kindGlyphs maps each domain to its map character: upper case for the
// 1-side, lower case for the 0-side.
var kindGlyphs = map[Kind]byte{
	KindGreen1:  'G',
	KindGreen0:  'g',
	KindPurple1: 'P',
	KindPurple0: 'p',
	KindRed1:    'R',
	KindRed0:    'r',
	KindCyan1:   'C',
	KindCyan0:   'c',
	KindYellow:  'Y',
	KindOther:   '?',
}

// Glyph returns the single-character map glyph for a domain.
func (k Kind) Glyph() byte {
	if g, ok := kindGlyphs[k]; ok {
		return g
	}
	return '?'
}

// areaGlyphs maps each Yellow′ sub-area to its map character.
var areaGlyphs = map[Area]byte{
	AreaA1:      'A',
	AreaA0:      'a',
	AreaB1:      'B',
	AreaB0:      'b',
	AreaC1:      'C',
	AreaC0:      'c',
	AreaOutside: '.',
}

// Glyph returns the single-character map glyph for an area.
func (a Area) Glyph() byte {
	if g, ok := areaGlyphs[a]; ok {
		return g
	}
	return '.'
}

// RenderMap reproduces Figure 1a as an ASCII map of the domain partition,
// on an (m+1)×(m+1) lattice over [0, 1]². Rows run from x_{t+1} = 1 at the
// top down to 0, columns from x_t = 0 on the left to 1, matching the
// figure's axes. The legend of glyphs is given by Kind.Glyph.
func (p Params) RenderMap(m int) string {
	var b strings.Builder
	b.Grow((m + 2) * (m + 1))
	for j := m; j >= 0; j-- {
		y := float64(j) / float64(m)
		for i := 0; i <= m; i++ {
			x := float64(i) / float64(m)
			b.WriteByte(p.Classify(x, y).Glyph())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderYellowMap reproduces Figure 2 as an ASCII map of the Yellow′
// partition into A/B/C, on an (m+1)×(m+1) lattice over the Yellow′
// bounding box. Axes are oriented as in RenderMap.
func (p Params) RenderYellowMap(m int) string {
	lo, hi := 0.5-4*p.Delta, 0.5+4*p.Delta
	var b strings.Builder
	b.Grow((m + 2) * (m + 1))
	for j := m; j >= 0; j-- {
		y := lo + (hi-lo)*float64(j)/float64(m)
		for i := 0; i <= m; i++ {
			x := lo + (hi-lo)*float64(i)/float64(m)
			b.WriteByte(p.ClassifyYellow(x, y).Glyph())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CountCells classifies every cell of an (m+1)×(m+1) lattice over [0, 1]²
// and returns the number of cells per domain — the quantitative companion
// to RenderMap used by experiment E02.
func (p Params) CountCells(m int) map[Kind]int {
	counts := make(map[Kind]int, len(kindGlyphs))
	for j := 0; j <= m; j++ {
		y := float64(j) / float64(m)
		for i := 0; i <= m; i++ {
			x := float64(i) / float64(m)
			counts[p.Classify(x, y)]++
		}
	}
	return counts
}

// CountYellowCells classifies every cell of a lattice over the Yellow′
// box and returns the number of cells per area (experiment E04).
func (p Params) CountYellowCells(m int) map[Area]int {
	lo, hi := 0.5-4*p.Delta, 0.5+4*p.Delta
	counts := make(map[Area]int, len(areaGlyphs))
	for j := 0; j <= m; j++ {
		y := lo + (hi-lo)*float64(j)/float64(m)
		for i := 0; i <= m; i++ {
			x := lo + (hi-lo)*float64(i)/float64(m)
			counts[p.ClassifyYellow(x, y)]++
		}
	}
	return counts
}
