package domain

import (
	"strings"
	"testing"
)

func TestRenderMapShape(t *testing.T) {
	p := params()
	const m = 40
	out := p.RenderMap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != m+1 {
		t.Fatalf("map has %d rows, want %d", len(lines), m+1)
	}
	for i, line := range lines {
		if len(line) != m+1 {
			t.Fatalf("row %d has %d columns, want %d", i, len(line), m+1)
		}
	}
}

func TestRenderMapCorners(t *testing.T) {
	p := params()
	const m = 40
	lines := strings.Split(strings.TrimRight(p.RenderMap(m), "\n"), "\n")
	// Top-left corner is (x=0, y=1): speed 1 upward → Green1.
	if lines[0][0] != 'G' {
		t.Fatalf("top-left glyph %c, want G", lines[0][0])
	}
	// Bottom-right corner is (x=1, y=0): speed 1 downward → Green0.
	if lines[m][m] != 'g' {
		t.Fatalf("bottom-right glyph %c, want g", lines[m][m])
	}
	// Bottom-left corner is (0, 0): Cyan1. Top-right (1, 1): Cyan0.
	if lines[m][0] != 'C' {
		t.Fatalf("bottom-left glyph %c, want C", lines[m][0])
	}
	if lines[0][m] != 'c' {
		t.Fatalf("top-right glyph %c, want c", lines[0][m])
	}
}

func TestRenderMapContainsAllReachableDomains(t *testing.T) {
	p := params()
	out := p.RenderMap(200)
	for _, glyph := range []string{"G", "g", "P", "p", "R", "r", "C", "c", "Y"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("map missing glyph %q", glyph)
		}
	}
	if strings.Contains(out, "?") {
		t.Fatal("map contains the Other glyph: partition hole")
	}
}

func TestRenderYellowMapShapeAndContent(t *testing.T) {
	p := params()
	const m = 60
	out := p.RenderYellowMap(m)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != m+1 {
		t.Fatalf("map has %d rows", len(lines))
	}
	for _, glyph := range []string{"A", "a", "B", "b", "C", "c"} {
		if !strings.Contains(out, glyph) {
			t.Fatalf("yellow map missing glyph %q", glyph)
		}
	}
	if strings.Contains(out, ".") {
		t.Fatal("yellow map contains outside glyph inside the box")
	}
}

func TestCountCellsTotalsAndSymmetry(t *testing.T) {
	p := params()
	const m = 150
	counts := p.CountCells(m)
	total := 0
	for _, c := range counts {
		total += c
	}
	if want := (m + 1) * (m + 1); total != want {
		t.Fatalf("cell total %d, want %d", total, want)
	}
	if counts[KindOther] != 0 {
		t.Fatalf("%d Other cells", counts[KindOther])
	}
	// Mirror symmetry: the two sides of each family have equal counts
	// (the lattice is symmetric under (x,y) → (1−x, 1−y) for even m+1...
	// with m even the lattice maps onto itself exactly).
	pairs := [][2]Kind{
		{KindGreen1, KindGreen0},
		{KindPurple1, KindPurple0},
		{KindRed1, KindRed0},
		{KindCyan1, KindCyan0},
	}
	for _, pair := range pairs {
		if counts[pair[0]] != counts[pair[1]] {
			t.Fatalf("%v count %d != %v count %d",
				pair[0], counts[pair[0]], pair[1], counts[pair[1]])
		}
	}
	if counts[KindYellow] == 0 {
		t.Fatal("no Yellow cells")
	}
}

func TestCountYellowCellsTotals(t *testing.T) {
	p := params()
	const m = 100
	counts := p.CountYellowCells(m)
	total := 0
	for _, c := range counts {
		total += c
	}
	if want := (m + 1) * (m + 1); total != want {
		t.Fatalf("cell total %d, want %d", total, want)
	}
	if counts[AreaOutside] != 0 {
		t.Fatalf("%d outside cells within the box", counts[AreaOutside])
	}
	for _, a := range []Area{AreaA1, AreaA0, AreaB1, AreaB0, AreaC1, AreaC0} {
		if counts[a] == 0 {
			t.Fatalf("area %v empty", a)
		}
	}
}

func TestGlyphFallbacks(t *testing.T) {
	if Kind(99).Glyph() != '?' {
		t.Fatal("kind glyph fallback")
	}
	if Area(99).Glyph() != '.' {
		t.Fatal("area glyph fallback")
	}
}
