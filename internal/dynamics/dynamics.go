// Package dynamics implements classical opinion dynamics as comparison
// baselines for FET: the Voter model, 3-Majority, and Undecided-State
// Dynamics (Section 1.4's related work: Liggett 1985; Doerr et al. 2011;
// Angluin et al. 2008).
//
// All three reach consensus fast, but on the majority (or a random) value
// as evident in the initial configuration — not on the source's value.
// Experiment E18 uses them to demonstrate why the self-stabilizing
// bit-dissemination problem is not solved by plain consensus dynamics: a
// single stubborn source cannot reliably steer them within polylog time
// from adversarial starts.
//
// The Voter and 3-Majority rules are natively passive (the information
// used is exactly the sampled opinions). Undecided-State Dynamics
// classically exchanges a three-valued state; to stay inside the passive
// binary-opinion model, undecided agents here keep displaying their last
// opinion while internally undecided — a faithful passive-communication
// projection of the dynamics (documented deviation; see DESIGN.md).
package dynamics

import (
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

// Voter is the voter model: copy the opinion of one uniformly sampled
// agent each round.
type Voter struct{}

var _ sim.Protocol = Voter{}

// Name implements sim.Protocol.
func (Voter) Name() string { return "Voter" }

// SampleSizes implements sim.Protocol.
func (Voter) SampleSizes() []int { return nil }

// NewAgent implements sim.Protocol.
func (Voter) NewAgent(*rng.Source) sim.Agent { return voterAgent{} }

type voterAgent struct{}

func (voterAgent) Step(_ byte, obs sim.Observation) byte { return obs.Sample() }

// ThreeMajority samples three agents and adopts the majority opinion of
// the sample.
type ThreeMajority struct{}

var _ sim.Protocol = ThreeMajority{}

// Name implements sim.Protocol.
func (ThreeMajority) Name() string { return "3-Majority" }

// SampleSizes implements sim.Protocol.
func (ThreeMajority) SampleSizes() []int { return []int{3} }

// NewAgent implements sim.Protocol.
func (ThreeMajority) NewAgent(*rng.Source) sim.Agent { return threeMajorityAgent{} }

type threeMajorityAgent struct{}

func (threeMajorityAgent) Step(_ byte, obs sim.Observation) byte {
	if obs.CountOnes(3) >= 2 {
		return sim.OpinionOne
	}
	return sim.OpinionZero
}

// Undecided is the Undecided-State Dynamics, projected to passive binary
// communication: an agent holding opinion b that samples 1−b becomes
// undecided (still displaying b); an undecided agent adopts whatever it
// samples next.
type Undecided struct{}

var _ sim.Protocol = Undecided{}

// Name implements sim.Protocol.
func (Undecided) Name() string { return "Undecided-State" }

// SampleSizes implements sim.Protocol.
func (Undecided) SampleSizes() []int { return nil }

// NewAgent implements sim.Protocol.
func (Undecided) NewAgent(*rng.Source) sim.Agent { return &undecidedAgent{} }

type undecidedAgent struct {
	undecided bool
}

var (
	_ sim.Agent            = (*undecidedAgent)(nil)
	_ sim.StateCorruptible = (*undecidedAgent)(nil)
)

func (a *undecidedAgent) Step(cur byte, obs sim.Observation) byte {
	seen := obs.Sample()
	if a.undecided {
		a.undecided = false
		return seen
	}
	if seen != cur {
		a.undecided = true
	}
	return cur
}

// CorruptState implements sim.StateCorruptible.
func (a *undecidedAgent) CorruptState(src *rng.Source) {
	a.undecided = src.Bit() == 1
}

// Undecidedness reports the agent's internal flag (exposed for tests).
func (a *undecidedAgent) Undecidedness() bool { return a.undecided }
