package dynamics

import (
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
)

func run(t *testing.T, p sim.Protocol, init sim.Initializer, n, maxRounds int, seed uint64) sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		N:             n,
		Protocol:      p,
		Init:          init,
		Correct:       sim.OpinionOne,
		Seed:          seed,
		MaxRounds:     maxRounds,
		CorruptStates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNamesAndSampleSizes(t *testing.T) {
	if (Voter{}).Name() != "Voter" || (Voter{}).SampleSizes() != nil {
		t.Fatal("voter metadata")
	}
	if (ThreeMajority{}).Name() != "3-Majority" {
		t.Fatal("3-majority name")
	}
	if got := (ThreeMajority{}).SampleSizes(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("3-majority sizes %v", got)
	}
	if (Undecided{}).Name() != "Undecided-State" || (Undecided{}).SampleSizes() != nil {
		t.Fatal("undecided metadata")
	}
}

func TestThreeMajorityConvergesToInitialMajority(t *testing.T) {
	// From a 90% majority of 1s, 3-majority locks in the majority fast —
	// which happens to be the correct opinion here.
	res := run(t, ThreeMajority{}, adversary.Fraction{X: 0.9}, 500, 500, 1)
	if !res.Converged {
		t.Fatalf("3-majority did not lock the 90%% majority: %+v", res)
	}
	if res.Round > 30 {
		t.Fatalf("3-majority took %d rounds from a 90%% majority", res.Round)
	}
}

func TestThreeMajorityIgnoresSourceFromWrongMajority(t *testing.T) {
	// From a 90% majority of 0s, a single stubborn 1-source cannot steer
	// 3-majority within a polylog horizon: the population locks on 0.
	// This is the E18 failure mode that motivates FET.
	res := run(t, ThreeMajority{}, adversary.Fraction{X: 0.1}, 500, 200, 2)
	if res.Converged {
		t.Fatalf("3-majority converged to the source's opinion from a wrong majority: %+v", res)
	}
	if res.FinalX > 0.05 {
		t.Fatalf("expected lock-in near 0, final x = %v", res.FinalX)
	}
}

func TestVoterDriftsSlowly(t *testing.T) {
	// The voter model with one stubborn source does converge eventually
	// (the source is an absorbing zealot) but needs Ω(n) rounds, far past
	// a polylog horizon.
	res := run(t, Voter{}, adversary.AllWrong{Correct: sim.OpinionOne}, 400, 60, 3)
	if res.Converged {
		t.Fatalf("voter converged within a polylog horizon: %+v", res)
	}
}

func TestVoterEventuallyConvergesSmallN(t *testing.T) {
	// With a generous Ω(n²) horizon and a small population the zealot
	// wins: validates that the dynamics are wired correctly.
	res := run(t, Voter{}, adversary.AllWrong{Correct: sim.OpinionOne}, 30, 20000, 4)
	if !res.Converged {
		t.Fatalf("voter with zealot never converged: final x = %v", res.FinalX)
	}
}

func TestUndecidedConvergesToClearMajority(t *testing.T) {
	res := run(t, Undecided{}, adversary.Fraction{X: 0.85}, 500, 1000, 5)
	if !res.Converged {
		t.Fatalf("undecided-state did not lock the 85%% majority: %+v", res)
	}
}

func TestUndecidedAgentStateMachine(t *testing.T) {
	a := &undecidedAgent{}
	obs := &scriptedObs{samples: []byte{0, 1, 1}}
	// Holding 1, sees 0: becomes undecided but still displays 1.
	if got := a.Step(1, obs); got != 1 {
		t.Fatalf("step 1 output %d, want 1", got)
	}
	if !a.Undecidedness() {
		t.Fatal("agent should be undecided")
	}
	// Undecided, sees 1: adopts 1, decided again.
	if got := a.Step(1, obs); got != 1 {
		t.Fatalf("step 2 output %d", got)
	}
	if a.Undecidedness() {
		t.Fatal("agent should be decided")
	}
	// Holding 1, sees 1: stays decided.
	if got := a.Step(1, obs); got != 1 {
		t.Fatalf("step 3 output %d", got)
	}
	if a.Undecidedness() {
		t.Fatal("agent should remain decided")
	}
}

type scriptedObs struct {
	samples []byte
	i       int
}

func (s *scriptedObs) CountOnes(m int) int {
	c := 0
	for j := 0; j < m; j++ {
		c += int(s.Sample())
	}
	return c
}

func (s *scriptedObs) Sample() byte {
	v := s.samples[s.i%len(s.samples)]
	s.i++
	return v
}

func TestUndecidedCorruptState(t *testing.T) {
	src := rng.New(1)
	sawTrue, sawFalse := false, false
	for i := 0; i < 100; i++ {
		a := &undecidedAgent{}
		a.CorruptState(src)
		if a.Undecidedness() {
			sawTrue = true
		} else {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatal("CorruptState never varied the flag")
	}
}
