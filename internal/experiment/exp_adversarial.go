package experiment

import (
	"fmt"
	"math"

	"passivespread/internal/adversary"
	"passivespread/internal/clocked"
	"passivespread/internal/core"
	"passivespread/internal/dynamics"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

func init() {
	register(Experiment{
		ID:       "E11",
		Title:    "Majority bit-dissemination impossibility construction",
		PaperRef: "Section 1.2 (impossibility argument)",
		Run:      runE11,
	})
	register(Experiment{
		ID:       "E12",
		Title:    "Clocked phase-protocol baseline",
		PaperRef: "Section 1.4",
		Run:      runE12,
	})
	register(Experiment{
		ID:       "E18",
		Title:    "Consensus dynamics do not solve source-driven dissemination",
		PaperRef: "Section 1.4 related work (Voter, 3-Majority, Undecided-State)",
		Run:      runE18,
	})
}

// stubbornSim is a minimal bespoke simulator for the §1.2 impossibility
// construction: it supports arbitrary sets of stubborn agents (agents that
// never change their displayed opinion — the "sources" of the majority
// problem) with the remaining agents running FET. The main engine assumes
// a single agreeing source group, so this scenario needs its own loop.
type stubbornSim struct {
	n        int
	ell      int
	opinions []byte
	stubborn []bool
	counts   []int // FET count′′ memories
	srcs     []*rng.Source
}

func newStubbornSim(n, ell int, seed uint64) *stubbornSim {
	s := &stubbornSim{
		n:        n,
		ell:      ell,
		opinions: make([]byte, n),
		stubborn: make([]bool, n),
		counts:   make([]int, n),
		srcs:     make([]*rng.Source, n),
	}
	for i := range s.srcs {
		s.srcs[i] = rng.NewFrom(seed, uint64(i))
	}
	return s
}

func (s *stubbornSim) x() float64 {
	ones := 0
	for _, o := range s.opinions {
		ones += int(o)
	}
	return float64(ones) / float64(s.n)
}

// step runs one synchronous FET round; stubborn agents keep their opinion.
func (s *stubbornSim) step() {
	x := s.x()
	tab := rng.NewBinomialCDF(s.ell, x)
	next := make([]byte, s.n)
	for i := 0; i < s.n; i++ {
		if s.stubborn[i] {
			next[i] = s.opinions[i]
			continue
		}
		countPrime := tab.Sample(s.srcs[i])
		countDoublePrime := tab.Sample(s.srcs[i])
		out := s.opinions[i]
		switch {
		case countPrime > s.counts[i]:
			out = sim.OpinionOne
		case countPrime < s.counts[i]:
			out = sim.OpinionZero
		}
		s.counts[i] = countDoublePrime
		next[i] = out
	}
	s.opinions = next
}

func runE11(cfg Config) (*Report, error) {
	e, _ := Lookup("E11")
	rep := newReport(e)

	n := pick(cfg, 4096, 512)
	ell := core.SampleSize(n, core.DefaultC)
	horizon := pick(cfg, 200000, 5000)
	polylog := math.Pow(math.Log(float64(n)), 2.5)

	// The paper's argument posits a hypothetical algorithm that solves
	// majority bit-dissemination. In scenario 1 (k1 = n/2 ≫ k0 = n/4)
	// that algorithm must converge to all-1 and hold it for polynomial
	// time; from then on every observation in the passive model reads
	// unanimously 1, so each agent's internal state is forced to whatever
	// all-1 observations produce — for FET-family states, count′′ = ℓ.
	// No simulation is needed for scenario 1: its post-convergence
	// snapshot is fully determined by the problem statement.
	//
	// Scenario 2 (the adversarial copy): k0 = n/4 sources prefer 0, no
	// 1-sources at all. The adversary initializes every agent — including
	// the 0-preferring sources — with exactly that snapshot: displayed
	// opinion 1 and count′′ = ℓ. All observations are then unanimously 1,
	// the execution is indistinguishable from scenario 1 after
	// convergence, and nothing ever changes — though the correct bit is 0.
	s2 := newStubbornSim(n, ell, cfg.Seed^0x53)
	for i := 0; i < n; i++ {
		if i < n/4 {
			s2.stubborn[i] = true // the 0-preferring sources…
		}
		s2.opinions[i] = sim.OpinionOne // …whose displayed opinion was set to 1
		s2.counts[i] = ell
	}
	deviation := -1
	for r := 0; r < horizon; r++ {
		s2.step()
		if s2.x() < 1 {
			deviation = r + 1
			break
		}
	}

	tab := tablefmt.New("scenario", "population", "outcome")
	tab.AddRow("1: k1=n/2 vs k0=n/4 (hypothetical solver)",
		fmt.Sprintf("n=%d", n),
		"converges to all-1 by assumption; all-1 observations force count′′ = ℓ")
	outcome2 := fmt.Sprintf("no deviation from all-1 within %d rounds (≫ polylog %.0f); correct bit was 0", horizon, polylog)
	if deviation >= 0 {
		outcome2 = fmt.Sprintf("UNEXPECTED deviation at round %d", deviation)
	}
	tab.AddRow("2: adversarial copy, k0=n/4 only", fmt.Sprintf("n=%d", n), outcome2)
	rep.AddTable("the §1.2 indistinguishability construction", tab)
	rep.AddNote("under passive communication the all-1 configuration with all-ℓ " +
		"counts is a fixed point regardless of source preferences: sampling yields " +
		"count′ = count′′ = ℓ deterministically, every comparison ties, and no " +
		"agent moves — so no algorithm in this family can solve majority " +
		"bit-dissemination in poly-log time, exactly as the paper argues")
	return rep, nil
}

func runE12(cfg Config) (*Report, error) {
	e, _ := Lookup("E12")
	rep := newReport(e)

	ns := pick(cfg, []int{256, 1024, 4096, 16384}, []int{256, 1024})
	trials := pick(cfg, 30, 6)

	tab := tablefmt.New("n", "mode", "message bits", "median t_con", "bound 4·log₂n", "FET median (passive)")
	for _, n := range ns {
		n := n
		cap := 600 * int(math.Ceil(math.Log2(float64(n))))
		bound := 4 * int(math.Ceil(math.Log2(float64(n))))
		ell := core.SampleSize(n, core.DefaultC)

		fetTimes := parallelTimes(cfg, trials, func(trial int) float64 {
			return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
				sim.EngineAgentFast, cfg.Seed^uint64(n)<<14^uint64(trial), cap)
		})
		fetMedian := stats.Summarize(fetTimes).Median

		modes := []struct {
			name   string
			mode   clocked.Mode
			desync bool
		}{
			{"shared clock", clocked.ModeSharedClock, false},
			{"local clocks, desynced", clocked.ModeLocalClocks, true},
		}
		for _, m := range modes {
			m := m
			times := parallelTimes(cfg, trials, func(trial int) float64 {
				res, err := clocked.Run(clocked.Config{
					N:            n,
					Correct:      sim.OpinionOne,
					Mode:         m.mode,
					DesyncClocks: m.desync,
					Init:         adversary.AllWrong{Correct: sim.OpinionOne},
					Seed:         cfg.Seed ^ uint64(n)<<10 ^ uint64(trial),
					MaxRounds:    cap,
				})
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					return float64(cap)
				}
				return float64(res.Round)
			})
			med := stats.Summarize(times).Median
			phaseLen := 4 * int(math.Ceil(math.Log2(float64(n))))
			tab.AddRow(n, m.name, clocked.MessageBits(m.mode, phaseLen), med, bound, fetMedian)
		}
	}
	rep.AddTable("clocked baseline vs FET", tab)
	rep.AddNote("§1.4: with shared clocks the phase protocol meets its 4·log₂n bound " +
		"using passive 1-bit observations — but sharing clocks is exactly what " +
		"self-stabilization forbids; restoring it via clock messages costs " +
		"1+⌈log₂T⌉ bits per observation, which FET avoids entirely")
	return rep, nil
}

func runE18(cfg Config) (*Report, error) {
	e, _ := Lookup("E18")
	rep := newReport(e)

	n := pick(cfg, 1024, 256)
	trials := pick(cfg, 20, 5)
	ell := core.SampleSize(n, core.DefaultC)
	horizon := 40 * int(math.Pow(math.Log2(float64(n)), 2)) // generous polylog

	protocols := []sim.Protocol{
		dynamics.Voter{},
		dynamics.ThreeMajority{},
		dynamics.Undecided{},
		core.NewFET(ell),
	}
	inits := []sim.Initializer{
		adversary.AllWrong{Correct: sim.OpinionOne},
		adversary.Fraction{X: 0.1},
		adversary.Fraction{X: 0.25},
	}

	tab := tablefmt.New("protocol", "init", "converged to source bit", "median t_con (converged runs)")
	for _, proto := range protocols {
		for _, init := range inits {
			proto, init := proto, init
			times := parallelTimes(cfg, trials, func(trial int) float64 {
				res, err := sim.Run(sim.Config{
					N:             n,
					Protocol:      proto,
					Init:          init,
					Correct:       sim.OpinionOne,
					Seed:          cfg.Seed ^ uint64(trial)<<8,
					MaxRounds:     horizon,
					CorruptStates: true,
				})
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					return float64(horizon)
				}
				return float64(res.Round)
			})
			converged := 0
			var convTimes []float64
			for _, t := range times {
				if t < float64(horizon) {
					converged++
					convTimes = append(convTimes, t)
				}
			}
			med := "-"
			if len(convTimes) > 0 {
				med = fmt.Sprintf("%.0f", stats.Summarize(convTimes).Median)
			}
			tab.AddRow(proto.Name(), init.Name(),
				fmt.Sprintf("%d/%d", converged, trials), med)
		}
	}
	rep.AddTable(fmt.Sprintf("polylog horizon = %d rounds, n = %d", horizon, n), tab)
	rep.AddNote("plain consensus dynamics lock onto the initial majority and ignore " +
		"the source; only FET reliably stabilizes on the source's bit from every " +
		"adversarial start — the problem the paper is about")
	return rep, nil
}
