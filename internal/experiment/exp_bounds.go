package experiment

import (
	"math"

	"passivespread/internal/dist"
	"passivespread/internal/rng"
	"passivespread/internal/tablefmt"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Title:    "Coin-competition probabilities vs the paper's bounds",
		PaperRef: "Lemmas 12–15, Observation 1",
		Run:      runE10,
	})
}

func runE10(cfg Config) (*Report, error) {
	e, _ := Lookup("E10")
	rep := newReport(e)

	// Part 1: the four competition bounds over a (k, p, q) grid.
	type gridCase struct {
		k    int
		p, q float64
	}
	var cases []gridCase
	for _, k := range []int{20, 60, 200, 1000} {
		for _, gap := range []float64{0.005, 0.02, 0.08} {
			cases = append(cases, gridCase{k, 0.5 - gap/2, 0.5 + gap/2})
			cases = append(cases, gridCase{k, 0.4, 0.4 + gap})
		}
	}
	tab := tablefmt.New("k", "p", "q", "P(favorite wins)", "Hoeffding LB (L13)",
		"P(underdog wins)", "Berry–Esseen LB (L15)", "Lemma 12 UB", "all hold")
	violations := 0
	for _, c := range cases {
		comp := dist.Compete(c.k, c.p, c.q)
		favorite := comp.Less // P(B_k(p) < B_k(q))
		underdog := comp.Greater
		hoeffding := dist.HoeffdingFavoriteWins(c.k, c.p, c.q)
		berry := dist.BerryEsseenUnderdogWins(c.k, c.p, c.q)
		l12 := math.NaN()
		inL12Regime := c.p >= 1.0/3 && c.q <= 2.0/3 && c.q-c.p <= 1/math.Sqrt(float64(c.k))
		if inL12Regime {
			l12 = dist.Lemma12UpperBound(c.k, c.p, c.q, comp.Equal)
		}
		holds := favorite >= hoeffding-1e-12 &&
			(berry <= 0 || underdog >= berry-1e-12) &&
			(!inL12Regime || favorite < l12)
		if !holds {
			violations++
		}
		tab.AddRow(c.k, c.p, c.q, favorite, hoeffding, underdog, berry, l12, holds)
	}
	rep.AddTable("competition bounds (exact probabilities via convolution)", tab)
	if violations == 0 {
		rep.AddNote("all %d grid cases satisfy Lemmas 12, 13 and 15 (Lemma 12 checked in its regime p,q ∈ [1/3,2/3], q−p ≤ 1/√k)", len(cases))
	} else {
		rep.AddNote("WARNING: %d bound violations", violations)
	}

	// Part 2: Observation 1 — exact drift g(x, y) vs Monte-Carlo.
	n := 4096
	ell := 36
	mcTrials := pick(cfg, 200000, 20000)
	driftTab := tablefmt.New("x_t", "x_{t+1}", "g(x,y) exact", "Monte-Carlo", "abs diff")
	//fet:allow seedflow: legacy pre-StreamSeed derivation; the E-series Monte-Carlo tables recorded in EXPERIMENTS.md pin this stream
	src := rng.New(cfg.Seed ^ 0xdead)
	worst := 0.0
	for _, xy := range [][2]float64{{0.1, 0.1}, {0.3, 0.5}, {0.5, 0.5}, {0.52, 0.5}, {0.9, 0.95}} {
		x, y := xy[0], xy[1]
		exact := dist.Drift(n, ell, x, y)
		// Monte-Carlo of the per-agent rule, aggregated: simulate the two
		// flip probabilities directly.
		sum := 0.0
		for i := 0; i < mcTrials; i++ {
			older := src.Binomial(ell, x)
			newer := src.Binomial(ell, y)
			switch {
			case newer > older:
				sum++
			case newer == older:
				sum += y // a fraction x_{t+1} of agents holds 1 on ties
			}
		}
		mc := sum / float64(mcTrials)
		diff := math.Abs(mc - exact)
		if diff > worst {
			worst = diff
		}
		driftTab.AddRow(x, y, exact, mc, diff)
	}
	rep.AddTable("Observation 1: exact one-step drift vs Monte-Carlo (1/n terms below MC noise)", driftTab)
	rep.AddNote("worst drift deviation %.4f (MC noise scale ~%.4f)", worst, 1/math.Sqrt(float64(mcTrials)))
	return rep, nil
}
