package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"passivespread/internal/core"
	"passivespread/internal/domain"
	"passivespread/internal/markov"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

func init() {
	register(Experiment{
		ID:       "E02",
		Title:    "Domain partition map of the grid G",
		PaperRef: "Figure 1a",
		Run:      runE02,
	})
	register(Experiment{
		ID:       "E03",
		Title:    "Empirical domain-transition diagram",
		PaperRef: "Figure 1b",
		Run:      runE03,
	})
	register(Experiment{
		ID:       "E04",
		Title:    "Yellow′ partition map and per-area escape behavior",
		PaperRef: "Figure 2",
		Run:      runE04,
	})
}

func runE02(cfg Config) (*Report, error) {
	e, _ := Lookup("E02")
	rep := newReport(e)

	n := 1 << 20
	p := domain.NewParams(n)
	rep.AddNote("parameters: n = %d, δ = %v, 1/ln n = %.4f, λ_n = %.4f",
		n, p.Delta, 1/p.LogN(), p.Lambda())

	rep.AddText("Figure 1a (G = glyph legend: G/g Green, P/p Purple, R/r Red, C/c Cyan, Y Yellow; upper case = 1-side)",
		p.RenderMap(pick(cfg, 64, 32)))

	m := pick(cfg, 600, 200)
	counts := p.CountCells(m)
	total := (m + 1) * (m + 1)
	tab := tablefmt.New("domain", "cells", "share")
	for _, k := range domain.Kinds() {
		if counts[k] == 0 && k == domain.KindOther {
			continue
		}
		tab.AddRow(k.String(), counts[k], float64(counts[k])/float64(total))
	}
	rep.AddTable(fmt.Sprintf("cell census on a %d×%d lattice", m+1, m+1), tab)
	if counts[domain.KindOther] != 0 {
		rep.AddNote("WARNING: %d cells unclassified — partition hole", counts[domain.KindOther])
	} else {
		rep.AddNote("partition covers the grid: no unclassified cells (paper: 'We partition G into domains')")
	}
	return rep, nil
}

// domainPoints scans an m×m lattice and returns up to k points of the
// given kind, spread evenly across the domain's cells.
func domainPoints(p domain.Params, kind domain.Kind, m, k int) [][2]float64 {
	var cells [][2]float64
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			x := float64(i) / float64(m)
			y := float64(j) / float64(m)
			if p.Classify(x, y) == kind {
				cells = append(cells, [2]float64{x, y})
			}
		}
	}
	if len(cells) <= k {
		return cells
	}
	out := make([][2]float64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, cells[i*len(cells)/k])
	}
	return out
}

// transitionStats aggregates chain excursions out of one domain.
type transitionStats struct {
	residences []float64
	exits      map[string]int
}

func runE03(cfg Config) (*Report, error) {
	e, _ := Lookup("E03")
	rep := newReport(e)

	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)
	trialsPerPoint := pick(cfg, 40, 8)
	pointsPerKind := pick(cfg, 5, 3)
	maxRounds := 4000

	kinds := []domain.Kind{
		domain.KindGreen1, domain.KindGreen0,
		domain.KindPurple1, domain.KindPurple0,
		domain.KindRed1, domain.KindRed0,
		domain.KindCyan1, domain.KindCyan0,
		domain.KindYellow,
	}

	tab := tablefmt.New("from", "points", "trials", "res. median", "res. max", "exits to")
	for _, kind := range kinds {
		points := domainPoints(p, kind, 400, pointsPerKind)
		if len(points) == 0 {
			tab.AddRow(kind.String(), 0, 0, "-", "-", "domain empty at these parameters")
			continue
		}
		st := transitionStats{exits: map[string]int{}}
		for pi, pt := range points {
			for trial := 0; trial < trialsPerPoint; trial++ {
				c := markov.New(n, ell, cfg.Seed^uint64(kind)<<40^uint64(pi)<<20^uint64(trial))
				s := c.StateAt(pt[0], pt[1])
				residence := 0
				dest := "timeout"
				for r := 0; r < maxRounds; r++ {
					if c.Absorbed(s) {
						dest = "(1,1) absorbed"
						break
					}
					x0, x1 := c.X(s)
					if k := p.Classify(x0, x1); k != kind {
						dest = k.String()
						break
					}
					residence++
					s = c.Step(s)
				}
				st.residences = append(st.residences, float64(residence))
				st.exits[dest]++
			}
		}
		sum := stats.Summarize(st.residences)
		tab.AddRow(kind.String(), len(points), len(st.residences),
			sum.Median, sum.Max, formatExits(st.exits))
	}
	rep.AddTable(fmt.Sprintf("chain excursions (n = %d, ℓ = %d, source opinion 1)", n, ell), tab)
	rep.AddNote("Figure 1b predictions: Green1 → consensus on 1; Green0 → Cyan1 (via all-zeros); " +
		"Purple → Green in 1 round; Red exits within log^{1/2+2δ}n rounds avoiding Yellow∪Red; " +
		"Cyan1 → Green1∪Purple1 within log n/log log n; Yellow exits within O(log^{5/2}n)")
	return rep, nil
}

// formatExits renders an exit histogram as "dest 97%, other 3%".
func formatExits(exits map[string]int) string {
	total := 0
	//fet:allow detrand: order-insensitive sum over the histogram
	for _, c := range exits {
		total += c
	}
	type kv struct {
		k string
		v int
	}
	list := make([]kv, 0, len(exits))
	//fet:allow detrand: keys are collected then sorted before rendering
	for k, v := range exits {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	parts := make([]string, 0, len(list))
	for _, item := range list {
		parts = append(parts, fmt.Sprintf("%s %.0f%%", item.k, 100*float64(item.v)/float64(total)))
	}
	return strings.Join(parts, ", ")
}

func runE04(cfg Config) (*Report, error) {
	e, _ := Lookup("E04")
	rep := newReport(e)

	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)

	rep.AddText("Figure 2 (Yellow′ box; glyphs A/B/C, upper case = 1-side)",
		p.RenderYellowMap(pick(cfg, 48, 24)))

	m := pick(cfg, 400, 150)
	counts := p.CountYellowCells(m)
	total := (m + 1) * (m + 1)
	censusTab := tablefmt.New("area", "cells", "share")
	for _, a := range domain.Areas() {
		if a == domain.AreaOutside {
			continue
		}
		censusTab.AddRow(a.String(), counts[a], float64(counts[a])/float64(total))
	}
	rep.AddTable("Yellow′ cell census", censusTab)

	// Escape behavior per starting area.
	trials := pick(cfg, 120, 20)
	maxRounds := 20000
	starts := []struct {
		name string
		x, y float64
	}{
		{"center", 0.5, 0.5},
		{"A1", 0.5, 0.5 + 2*p.Delta},
		{"B1", 0.5 + 3*p.Delta, 0.5 + 3.2*p.Delta},
		{"C1", 0.5 - 2*p.Delta, 0.5 - p.Delta},
	}
	escTab := tablefmt.New("start", "area", "trials", "escape median", "escape p95", "escape max")
	for si, st := range starts {
		area := p.ClassifyYellow(st.x, st.y)
		times := parallelTimes(cfg, trials, func(trial int) float64 {
			c := markov.New(n, ell, cfg.Seed^uint64(si)<<36^uint64(trial))
			s := c.StateAt(st.x, st.y)
			for r := 0; r < maxRounds; r++ {
				s = c.Step(s)
				x0, x1 := c.X(s)
				if !p.YellowPrimeContains(x0, x1) {
					return float64(r + 1)
				}
			}
			return float64(maxRounds)
		})
		sum := stats.Summarize(times)
		escTab.AddRow(st.name, area.String(), trials, sum.Median, sum.P95, sum.Max)
	}
	rep.AddTable(fmt.Sprintf("rounds to escape Yellow′ (n = %d, ℓ = %d)", n, ell), escTab)
	lnn := math.Log(float64(n))
	rep.AddNote("paper bound (Lemma 6): O(log^{5/2} n) ≈ O(%.0f) at this n; escapes are far faster in practice", math.Pow(lnn, 2.5))
	return rep, nil
}
