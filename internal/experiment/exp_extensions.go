package experiment

import (
	"fmt"
	"math"

	"passivespread/internal/adversary"
	"passivespread/internal/async"
	"passivespread/internal/core"
	"passivespread/internal/markov"
	"passivespread/internal/meanfield"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

// E19–E22 extend the paper: robustness and model-variation studies that
// the paper's discussion and related work motivate but do not evaluate.

func init() {
	register(Experiment{
		ID:       "E19",
		Title:    "FET under noisy observations",
		PaperRef: "extension (noisy-communication models of the related work)",
		Run:      runE19,
	})
	register(Experiment{
		ID:       "E20",
		Title:    "Re-stabilization after the correct bit flips mid-run",
		PaperRef: "extension (§1.2: the correct value may change)",
		Run:      runE20,
	})
	register(Experiment{
		ID:       "E21",
		Title:    "Mean-field skeleton vs stochastic dynamics",
		PaperRef: "extension (the noise-driven escape behind Lemmas 7–10)",
		Run:      runE21,
	})
	register(Experiment{
		ID:       "E22",
		Title:    "Sequential (population-protocol) scheduling breaks the trend signal",
		PaperRef: "extension (negative result; cf. Angluin et al. 2006)",
		Run:      runE22,
	})
}

func runE19(cfg Config) (*Report, error) {
	e, _ := Lookup("E19")
	rep := newReport(e)

	n := pick(cfg, 4096, 512)
	trials := pick(cfg, 30, 6)
	ell := core.SampleSize(n, core.DefaultC)
	cap := 800 * int(math.Log2(float64(n)))
	epsilons := []float64{0, 0.01, 0.05, 0.1, 0.2, 0.3}
	if cfg.Smoke {
		// High noise stretches convergence toward the cap; the smoke
		// scale keeps one noisy point per regime.
		cap = 200 * int(math.Log2(float64(n)))
		epsilons = []float64{0, 0.1}
	}

	tab := tablefmt.New("noise ε", "trials", "converged", "median t_con", "p95", "median final x")
	for _, eps := range epsilons {
		eps := eps
		finalXs := make([]float64, trials)
		converged := make([]bool, trials)
		times := parallelTimes(cfg, trials, func(trial int) float64 {
			res, err := sim.Run(sim.Config{
				N:             n,
				Protocol:      core.NewFET(ell),
				Init:          adversary.AllWrong{Correct: sim.OpinionOne},
				Correct:       sim.OpinionOne,
				Seed:          cfg.Seed ^ uint64(eps*1000)<<22 ^ uint64(trial),
				MaxRounds:     cap,
				CorruptStates: true,
				NoiseEps:      eps,
			})
			if err != nil {
				panic(err)
			}
			finalXs[trial] = res.FinalX
			converged[trial] = res.Converged
			if !res.Converged {
				return float64(cap)
			}
			return float64(res.Round)
		})
		conv := stats.SummarizeConvergence(times, converged)
		fx := stats.Summarize(finalXs)
		tab.AddRow(eps, trials, fmt.Sprintf("%d/%d", conv.Converged, conv.Replicates),
			conv.Rounds.Median, conv.Rounds.P95, fx.Median)
	}
	rep.AddTable(fmt.Sprintf("n = %d, all-wrong start, each observed bit flipped w.p. ε", n), tab)
	rep.AddNote("the trend comparison is invariant to the affine squeeze of the " +
		"observation rate (x ↦ x(1−2ε)+ε preserves order), so FET tolerates " +
		"substantial symmetric noise; only the signal-to-noise ratio — and hence " +
		"the convergence time — degrades as ε approaches 1/2. Note the absorbing " +
		"state is exact only at ε = 0: with noise, 'convergence' means reaching " +
		"and holding the all-correct configuration through the absorb window")
	return rep, nil
}

func runE20(cfg Config) (*Report, error) {
	e, _ := Lookup("E20")
	rep := newReport(e)

	n := pick(cfg, 4096, 512)
	trials := pick(cfg, 30, 6)
	ell := core.SampleSize(n, core.DefaultC)
	flipAt := 60
	cap := flipAt + 800*int(math.Log2(float64(n)))

	times := parallelTimes(cfg, trials, func(trial int) float64 {
		res, err := sim.Run(sim.Config{
			N:             n,
			Protocol:      core.NewFET(ell),
			Init:          adversary.AllWrong{Correct: sim.OpinionOne},
			Correct:       sim.OpinionOne,
			Seed:          cfg.Seed ^ 0xf11b<<16 ^ uint64(trial),
			MaxRounds:     cap,
			CorruptStates: true,
			FlipCorrectAt: flipAt,
		})
		if err != nil {
			panic(err)
		}
		if !res.Converged {
			return float64(cap)
		}
		return float64(res.Round - flipAt) // recovery time after the flip
	})
	s := stats.Summarize(times)

	fresh := parallelTimes(cfg, trials, func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAgentFast, cfg.Seed^0xf22b<<16^uint64(trial), cap)
	})
	fs := stats.Summarize(fresh)

	tab := tablefmt.New("scenario", "trials", "median rounds", "p95")
	tab.AddRow(fmt.Sprintf("re-stabilize after flip at round %d", flipAt), trials, s.Median, s.P95)
	tab.AddRow("fresh worst-case start (reference)", trials, fs.Median, fs.P95)
	rep.AddTable(fmt.Sprintf("n = %d: the sources switch sides mid-run", n), tab)
	rep.AddNote("§1.2: 'the adversary may initially set a different opinion to the " +
		"source, but then the value of the correct bit would change, and the " +
		"convergence should be guaranteed with respect to the new value' — " +
		"self-stabilization makes the post-flip state just another arbitrary " +
		"start, and recovery matches the fresh worst case")
	return rep, nil
}

func runE21(cfg Config) (*Report, error) {
	e, _ := Lookup("E21")
	rep := newReport(e)

	n := pick(cfg, 4096, 512)
	ell := core.SampleSize(n, core.DefaultC)
	m := meanfield.New(n, ell)

	rep.AddText("expected-motion field (direction of x_{t+2} − x_{t+1}; axes as Figure 1a)",
		m.RenderField(pick(cfg, 40, 24)))

	// Deterministic skeleton: rounds for the noiseless map to escape the
	// central band, vs the stochastic chain's escape.
	band := 0.2 // |x − 1/2| ≤ band is the central region
	detRounds := -1
	x0, x1 := 0.5, 0.5
	maxDet := 200 * n
	for r := 0; r < maxDet; r++ {
		x0, x1 = m.Next(x0, x1)
		if math.Abs(x1-0.5) > band {
			detRounds = r + 1
			break
		}
	}

	trials := pick(cfg, 60, 10)
	stoch := parallelTimes(cfg, trials, func(trial int) float64 {
		ch := markov.New(n, ell, cfg.Seed^uint64(trial)<<18)
		s := ch.StateAt(0.5, 0.5)
		for r := 0; r < maxDet; r++ {
			s = ch.Step(s)
			_, sx1 := ch.X(s)
			if math.Abs(sx1-0.5) > band {
				return float64(r + 1)
			}
		}
		return float64(maxDet)
	})
	ss := stats.Summarize(stoch)

	tab := tablefmt.New("dynamics", "rounds to leave |x−1/2| ≤ 0.2")
	tab.AddRow("deterministic mean-field skeleton", detRounds)
	tab.AddRow("stochastic chain (median)", ss.Median)
	tab.AddRow("stochastic chain (p95)", ss.P95)
	rep.AddTable(fmt.Sprintf("noise-driven escape (n = %d, ℓ = %d)", n, ell), tab)

	roots := m.DiagonalFixedPoints(400)
	rep.AddNote("the center is a saddle of the mean-field map: the diagonal drift "+
		"g(x,x)−x pulls toward 1/2 (rest points near %v), but the speed direction "+
		"is unstable — any deviation |x_{t+1}−x_t| is amplified by a ~√ℓ-scale "+
		"multiplier per round (Claim 11's derivative bound). The deterministic "+
		"skeleton is seeded only by the source's O(1/n) push and escapes in %d "+
		"rounds; the stochastic chain seeds the same amplification with Θ(1/√n) "+
		"sampling fluctuations and escapes faster (median %v) — this multiplicative "+
		"speed build-up is the mechanism behind Lemmas 7–10", roots, detRounds, ss.Median)
	return rep, nil
}

func runE22(cfg Config) (*Report, error) {
	e, _ := Lookup("E22")
	rep := newReport(e)

	n := pick(cfg, 1024, 256)
	trials := pick(cfg, 20, 5)
	ell := core.SampleSize(n, core.DefaultC)
	horizon := pick(cfg, 2000, 300) // parallel rounds; ≫ the synchronous scale

	syncTimes := parallelTimes(cfg, trials, func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAgentFast, cfg.Seed^0xa51c<<16^uint64(trial), horizon)
	})
	syncMed := stats.Summarize(syncTimes).Median

	var finalXs []float64
	asyncConverged := 0
	for trial := 0; trial < trials; trial++ {
		res, err := async.Run(async.Config{
			N:                 n,
			Ell:               ell,
			Correct:           sim.OpinionOne,
			Init:              adversary.AllWrong{Correct: sim.OpinionOne},
			CorruptStates:     true,
			Seed:              cfg.Seed ^ 0xa52c<<16 ^ uint64(trial),
			MaxParallelRounds: horizon,
		})
		if err != nil {
			return nil, err
		}
		if res.Converged {
			asyncConverged++
		}
		finalXs = append(finalXs, res.FinalX)
	}
	fx := stats.Summarize(finalXs)

	tab := tablefmt.New("scheduler", "converged", "median t_con / final x")
	tab.AddRow("synchronous rounds", fmt.Sprintf("%d/%d", trials, trials),
		fmt.Sprintf("t_con median %v", syncMed))
	tab.AddRow("uniform sequential", fmt.Sprintf("%d/%d", asyncConverged, trials),
		fmt.Sprintf("final x median %.3f (hovering)", fx.Median))
	rep.AddTable(fmt.Sprintf("n = %d, horizon %d parallel rounds, all-wrong start", n, horizon), tab)
	rep.AddNote("negative result: without synchronous rounds the agents' trend " +
		"windows decorrelate, collective momentum vanishes, and the dynamics " +
		"wander near 1/2 — evidence that FET's power comes from everyone " +
		"reacting to the same emerging trend, not from the comparison rule alone")
	return rep, nil
}
