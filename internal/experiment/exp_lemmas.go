package experiment

import (
	"fmt"
	"math"

	"passivespread/internal/core"
	"passivespread/internal/dist"
	"passivespread/internal/domain"
	"passivespread/internal/markov"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

func init() {
	register(Experiment{
		ID:       "E05",
		Title:    "Green area: one-round consensus",
		PaperRef: "Lemma 1",
		Run:      runE05,
	})
	register(Experiment{
		ID:       "E06",
		Title:    "Purple area: one round to Green",
		PaperRef: "Lemma 2",
		Run:      runE06,
	})
	register(Experiment{
		ID:       "E07",
		Title:    "Red area: geometric contraction and exit",
		PaperRef: "Lemma 3",
		Run:      runE07,
	})
	register(Experiment{
		ID:       "E08",
		Title:    "Cyan area: logarithmic bounce-back",
		PaperRef: "Lemma 4",
		Run:      runE08,
	})
	register(Experiment{
		ID:       "E09",
		Title:    "Yellow area: escape time and speed build-up",
		PaperRef: "Lemmas 5–11",
		Run:      runE09,
	})
}

func runE05(cfg Config) (*Report, error) {
	e, _ := Lookup("E05")
	rep := newReport(e)

	n := pick(cfg, 1<<14, 1<<10)
	trials := pick(cfg, 300, 40)
	points := []struct {
		name   string
		x0, x1 float64
		toOnes bool // Green1 expects consensus on 1, Green0 on 0
	}{
		{"Green1 fast (0.25→0.75)", 0.25, 0.75, true},
		{"Green1 slow (0.40→0.52)", 0.40, 0.52, true},
		{"Green0 fast (0.75→0.25)", 0.75, 0.25, false},
	}

	tab := tablefmt.New("start", "c", "ℓ", "per-agent fail prob (exact)",
		"predicted all-ok", "observed all-ok")
	for pi, pt := range points {
		for _, c := range []float64{3, 6, 12} {
			ell := core.SampleSize(n, c)
			// Per-agent failure: ending on the wrong opinion after one round.
			comp := dist.Compete(ell, pt.x0, pt.x1) // X~B(ℓ,x0) vs Y~B(ℓ,x1)
			var fail float64
			if pt.toOnes {
				// Fails to adopt 1: count′ ≤ count′′ and (on tie) held 0.
				// Upper bound (Remark 2): P(B(x1) ≤ B(x0)).
				fail = comp.Greater + comp.Equal
			} else {
				fail = comp.Less + comp.Equal
			}
			predicted := math.Pow(1-fail, float64(n-1))

			success := 0
			for trial := 0; trial < trials; trial++ {
				ch := markov.New(n, ell, cfg.Seed^uint64(pi)<<32^uint64(c)<<20^uint64(trial))
				next := ch.Step(ch.StateAt(pt.x0, pt.x1))
				if pt.toOnes && next.K1 == n {
					success++
				}
				if !pt.toOnes && next.K1 == 1 { // only the source holds 1
					success++
				}
			}
			tab.AddRow(pt.name, c, ell, fail, predicted, float64(success)/float64(trials))
		}
	}
	rep.AddTable(fmt.Sprintf("one-round consensus from Green (n = %d)", n), tab)
	rep.AddNote("Lemma 1 is asymptotic in the sample constant c (needs c > 2/δ²); " +
		"the observed all-consensus rate approaches 1 as c grows, matching the " +
		"exact per-agent tie/loss probability (tie failures use the Remark 2 upper bound)")
	return rep, nil
}

func runE06(cfg Config) (*Report, error) {
	e, _ := Lookup("E06")
	rep := newReport(e)

	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)
	trials := pick(cfg, 200, 30)

	points := domainPoints(p, domain.KindPurple1, 300, pick(cfg, 6, 3))
	tab := tablefmt.New("start (x_t, x_{t+1})", "trials", "→Green1", "→Green", "→elsewhere")
	for pi, pt := range points {
		toGreen1, toGreen, other := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			ch := markov.New(n, ell, cfg.Seed^uint64(pi)<<36^uint64(trial))
			next := ch.Step(ch.StateAt(pt[0], pt[1]))
			x0, x1 := ch.X(next)
			switch p.Classify(x0, x1) {
			case domain.KindGreen1:
				toGreen1++
				toGreen++
			case domain.KindGreen0:
				toGreen++
			default:
				other++
			}
		}
		tab.AddRow(fmt.Sprintf("(%.3f, %.3f)", pt[0], pt[1]), trials,
			float64(toGreen1)/float64(trials),
			float64(toGreen)/float64(trials),
			float64(other)/float64(trials))
	}
	rep.AddTable(fmt.Sprintf("one-step destination from Purple1 (n = %d, ℓ = %d)", n, ell), tab)
	rep.AddNote("Lemma 2: Purple1 → Green1 in one round w.h.p. " +
		"(the next fraction jumps near 1/2, gaining speed ≥ δ)")
	return rep, nil
}

func runE07(cfg Config) (*Report, error) {
	e, _ := Lookup("E07")
	rep := newReport(e)

	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)
	trials := pick(cfg, 200, 30)

	points := domainPoints(p, domain.KindRed1, 600, pick(cfg, 4, 2))
	bound := math.Pow(p.LogN(), 0.5+2*p.Delta)
	tab := tablefmt.New("start", "trials", "res. median", "res. max",
		"exits to Yellow∪Red", "bound log^{1/2+2δ}n")
	if len(points) == 0 {
		rep.AddNote("Red1 is empty at these parameters (λ_n·x ≥ δ everywhere); " +
			"this happens at small n where the contraction band vanishes")
		return rep, nil
	}
	for pi, pt := range points {
		var residences []float64
		badExits := 0
		for trial := 0; trial < trials; trial++ {
			ch := markov.New(n, ell, cfg.Seed^uint64(pi)<<34^uint64(trial))
			s := ch.StateAt(pt[0], pt[1])
			residence := 0
			for r := 0; r < 2000; r++ {
				x0, x1 := ch.X(s)
				k := p.Classify(x0, x1)
				if k != domain.KindRed1 {
					if k.Family() == domain.FamilyYellow || k.Family() == domain.FamilyRed {
						badExits++
					}
					break
				}
				residence++
				s = ch.Step(s)
			}
			residences = append(residences, float64(residence))
		}
		sum := stats.Summarize(residences)
		tab.AddRow(fmt.Sprintf("(%.3f, %.3f)", pt[0], pt[1]), trials,
			sum.Median, sum.Max, badExits, bound)
	}
	rep.AddTable(fmt.Sprintf("Red1 residence (n = %d, ℓ = %d)", n, ell), tab)
	rep.AddNote("Lemma 3: while in Red1, x_t contracts by (1−λ_n) per round, so " +
		"residence < log^{1/2+2δ} n and the exit avoids Yellow ∪ Red")
	return rep, nil
}

func runE08(cfg Config) (*Report, error) {
	e, _ := Lookup("E08")
	rep := newReport(e)

	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)
	trials := pick(cfg, 200, 30)

	// The bounce: start from the deepest Cyan1 state, reached after a
	// Green0 consensus — everyone wrong except the source.
	inv := 1 / float64(n)
	exitBound := p.LogN() / math.Log(p.LogN())

	var exitRounds, growths []float64
	exitDest := map[string]int{}
	for trial := 0; trial < trials; trial++ {
		ch := markov.New(n, ell, cfg.Seed^0xc7a1<<16^uint64(trial))
		s := ch.StateAt(inv, inv)
		prevX1 := inv
		for r := 0; r < 4000; r++ {
			s = ch.Step(s)
			x0, x1 := ch.X(s)
			k := p.Classify(x0, x1)
			if k != domain.KindCyan1 {
				exitRounds = append(exitRounds, float64(r+1))
				exitDest[k.String()]++
				break
			}
			if x1 > prevX1 && prevX1 > 0 {
				growths = append(growths, x1/prevX1)
			}
			prevX1 = x1
		}
	}

	tab := tablefmt.New("metric", "value")
	sumExit := stats.Summarize(exitRounds)
	tab.AddRow("exit rounds median", sumExit.Median)
	tab.AddRow("exit rounds p95", sumExit.P95)
	tab.AddRow("paper bound log n/log log n", exitBound)
	if len(growths) > 0 {
		sumG := stats.Summarize(growths)
		tab.AddRow("per-round growth factor median", sumG.Median)
		tab.AddRow("ℓ (growth scale = Θ(log n))", ell)
	}
	tab.AddRow("exit destinations", formatExits(exitDest))
	rep.AddTable(fmt.Sprintf("Cyan1 bounce-back from (1/n, 1/n) (n = %d, ℓ = %d)", n, ell), tab)
	rep.AddNote("Lemma 4: each Cyan1 round multiplies x by Θ(log n) " +
		"(agents seeing all-0 then one 1 adopt 1), so the chain leaves Cyan1 " +
		"within log n/log log n rounds, landing in Green1 ∪ Purple1")
	return rep, nil
}

func runE09(cfg Config) (*Report, error) {
	e, _ := Lookup("E09")
	rep := newReport(e)

	// Part 1: Yellow′ escape time scaling (Lemma 6 / Lemma 5 bound).
	ns := pick(cfg, []int{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22}, []int{1 << 10, 1 << 13})
	trials := pick(cfg, 120, 15)
	tab := tablefmt.New("n", "ℓ", "trials", "median", "p95", "max", "bound ~log^{5/2}n")
	medians := make([]float64, 0, len(ns))
	for _, n := range ns {
		n := n
		ell := core.SampleSize(n, core.DefaultC)
		p := domain.NewParams(n)
		times := parallelTimes(cfg, trials, func(trial int) float64 {
			ch := markov.New(n, ell, cfg.Seed^uint64(n)<<12^uint64(trial))
			s := ch.StateAt(0.5, 0.5)
			for r := 0; r < 100000; r++ {
				s = ch.Step(s)
				x0, x1 := ch.X(s)
				if !p.YellowPrimeContains(x0, x1) {
					return float64(r + 1)
				}
			}
			return 100000
		})
		sum := stats.Summarize(times)
		tab.AddRow(n, ell, trials, sum.Median, sum.P95, sum.Max,
			math.Pow(math.Log(float64(n)), 2.5))
		medians = append(medians, sum.Median)
	}
	rep.AddTable("escape time from Yellow′ starting at (1/2, 1/2)", tab)
	fit := stats.FitPolylog(ns, medians)
	rep.AddNote("polylog fit of escape medians: %.2f·(ln n)^%.2f (R²=%.3f); "+
		"paper upper bound exponent 5/2 — measured escapes are much faster, "+
		"consistent with the paper's remark that the analysis may be loose",
		fit.Coefficient, fit.Exponent, fit.R2)

	// Part 2: Lemma 7 — speed doubling in area A.
	n := pick(cfg, 1<<16, 1<<12)
	ell := core.SampleSize(n, core.DefaultC)
	p := domain.NewParams(n)
	dblTrials := pick(cfg, 400, 60)
	dblTab := tablefmt.New("start speed s", "trials",
		"P(speed doubles ∧ stays A∪outside)", "Lemma 7 bound 1−exp(−3ns²)")
	for si, speed := range []float64{0.01, 0.02, 0.05} {
		x := 0.5
		y := 0.5 + speed // in A1: y ≥ 1/2 and y−x ≥ x−1/2
		ok := 0
		for trial := 0; trial < dblTrials; trial++ {
			ch := markov.New(n, ell, cfg.Seed^uint64(si)<<44^uint64(trial))
			next := ch.Step(ch.StateAt(x, y))
			nx0, nx1 := ch.X(next)
			newSpeed := math.Abs(nx1 - nx0)
			area := p.ClassifyYellow(nx0, nx1)
			inAOrOut := area == domain.AreaA1 || area == domain.AreaOutside
			if newSpeed > 2*speed && inAOrOut {
				ok++
			}
		}
		bound := 1 - math.Exp(-3*float64(n)*speed*speed)
		dblTab.AddRow(speed, dblTrials, float64(ok)/float64(dblTrials), bound)
	}
	rep.AddTable(fmt.Sprintf("Lemma 7(a): speed doubling in A1 (n = %d, ℓ = %d)", n, ell), dblTab)
	rep.AddNote("Lemma 7(a) says the doubling event has probability at least " +
		"1−exp(−3n·s²) (for δ small); area A is the engine that launches the " +
		"chain out of Yellow′")
	return rep, nil
}
