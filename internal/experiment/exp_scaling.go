package experiment

import (
	"fmt"
	"math"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/markov"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
)

// E01 and E13 — the grid-shaped scaling experiments — are registered by
// the module root (experiments_scaling.go), where they run through the
// public Sweep layer instead of hand-rolled loops over internals.

func init() {
	register(Experiment{
		ID:       "E14",
		Title:    "FET vs unpartitioned SimpleTrend",
		PaperRef: "Section 1.3 (design choice)",
		Run:      runE14,
	})
	register(Experiment{
		ID:       "E15",
		Title:    "Multiple agreeing sources",
		PaperRef: "Section 5 (extension)",
		Run:      runE15,
	})
	register(Experiment{
		ID:       "E16",
		Title:    "Engine cross-validation (exact, fast, parallel, occupancy, chain)",
		PaperRef: "DESIGN.md engine ablation",
		Run:      runE16,
	})
	register(Experiment{
		ID:       "E17",
		Title:    "Per-agent resource accounting",
		PaperRef: "Theorem 1 (memory and sample complexity)",
		Run:      runE17,
	})
}

// fetTrial runs one FET simulation and returns t_con, or cap when the run
// did not converge.
func fetTrial(n, ell int, init sim.Initializer, engine sim.EngineKind, seed uint64, cap int) float64 {
	res, err := sim.Run(sim.Config{
		N:             n,
		Protocol:      core.NewFET(ell),
		Init:          init,
		Correct:       sim.OpinionOne,
		Seed:          seed,
		MaxRounds:     cap,
		Engine:        engine,
		CorruptStates: true,
	})
	if err != nil {
		panic(err) // static config bug, not a runtime condition
	}
	if !res.Converged {
		return float64(cap)
	}
	return float64(res.Round)
}

// chainTrial runs one aggregate-chain simulation from the given grid
// fractions and returns the hitting time (or cap).
func chainTrial(n, ell int, x0, x1 float64, seed uint64, cap int) float64 {
	c := markov.New(n, ell, seed)
	rounds, ok := c.HittingTime(c.StateAt(x0, x1), cap)
	if !ok {
		return float64(cap)
	}
	return float64(rounds)
}

func runE14(cfg Config) (*Report, error) {
	e, _ := Lookup("E14")
	rep := newReport(e)

	ns := pick(cfg, []int{256, 1024, 4096}, []int{256, 1024})
	trials := pick(cfg, 30, 6)
	tab := tablefmt.New("n", "ℓ", "protocol", "median t_con", "p95", "max")
	for _, n := range ns {
		ell := core.SampleSize(n, core.DefaultC)
		cap := 800 * int(math.Log2(float64(n)))
		protocols := []sim.Protocol{core.NewFET(ell), core.NewSimpleTrend(ell)}
		for _, proto := range protocols {
			proto := proto
			times := parallelTimes(cfg, trials, func(trial int) float64 {
				res, err := sim.Run(sim.Config{
					N:             n,
					Protocol:      proto,
					Init:          adversary.AllWrong{Correct: sim.OpinionOne},
					Correct:       sim.OpinionOne,
					Seed:          cfg.Seed ^ uint64(n)<<18 ^ uint64(trial),
					MaxRounds:     cap,
					CorruptStates: true,
				})
				if err != nil {
					panic(err)
				}
				if !res.Converged {
					return float64(cap)
				}
				return float64(res.Round)
			})
			s := stats.Summarize(times)
			tab.AddRow(n, ell, proto.Name(), s.Median, s.P95, s.Max)
		}
	}
	rep.AddTable("FET vs SimpleTrend from all-wrong", tab)
	rep.AddNote("the partition into independent halves (Protocol 1) is an analysis " +
		"device; both variants converge empirically, as §1.3 anticipates")
	return rep, nil
}

func runE15(cfg Config) (*Report, error) {
	e, _ := Lookup("E15")
	rep := newReport(e)

	n := pick(cfg, 4096, 512)
	trials := pick(cfg, 30, 6)
	ell := core.SampleSize(n, core.DefaultC)
	cap := 400 * int(math.Log2(float64(n)))
	tab := tablefmt.New("sources k", "median t_con", "p95", "max")
	for _, k := range []int{1, 2, 4, 8, 16} {
		k := k
		times := parallelTimes(cfg, trials, func(trial int) float64 {
			res, err := sim.Run(sim.Config{
				N:             n,
				Sources:       k,
				Protocol:      core.NewFET(ell),
				Init:          adversary.AllWrong{Correct: sim.OpinionOne},
				Correct:       sim.OpinionOne,
				Seed:          cfg.Seed ^ uint64(k)<<28 ^ uint64(trial),
				MaxRounds:     cap,
				CorruptStates: true,
			})
			if err != nil {
				panic(err)
			}
			if !res.Converged {
				return float64(cap)
			}
			return float64(res.Round)
		})
		s := stats.Summarize(times)
		tab.AddRow(k, s.Median, s.P95, s.Max)
	}
	rep.AddTable(fmt.Sprintf("n = %d, all-wrong start", n), tab)
	rep.AddNote("§5: a constant number of agreeing sources is supported; " +
		"more sources can only help")
	return rep, nil
}

func runE16(cfg Config) (*Report, error) {
	e, _ := Lookup("E16")
	rep := newReport(e)

	n := pick(cfg, 1024, 256)
	trials := pick(cfg, 40, 8)
	ell := core.SampleSize(n, core.DefaultC)
	cap := 800 * int(math.Log2(float64(n)))

	tab := tablefmt.New("engine", "trials", "mean", "median", "p95")
	samples := map[string][]float64{}
	run := func(name string, f func(trial int) float64) {
		times := parallelTimes(cfg, trials, f)
		s := stats.Summarize(times)
		tab.AddRow(name, trials, s.Mean, s.Median, s.P95)
		samples[name] = times
	}
	run("agent-exact", func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAgentExact, cfg.Seed^0x11<<32^uint64(trial), cap)
	})
	run("agent-fast", func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAgentFast, cfg.Seed^0x22<<32^uint64(trial), cap)
	})
	run("agent-parallel", func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAgentParallel, cfg.Seed^0x44<<32^uint64(trial), cap)
	})
	run("aggregate-occupancy", func(trial int) float64 {
		return fetTrial(n, ell, adversary.AllWrong{Correct: sim.OpinionOne},
			sim.EngineAggregate, cfg.Seed^0x55<<32^uint64(trial), cap)
	})
	run("aggregate-chain", func(trial int) float64 {
		return chainTrial(n, ell, 0, 0, cfg.Seed^0x33<<32^uint64(trial), cap)
	})
	rep.AddTable(fmt.Sprintf("n = %d, all-wrong start", n), tab)

	// Distribution-level comparison: a Kolmogorov–Smirnov test between
	// every engine pair at α = 0.01.
	names := []string{"agent-exact", "agent-fast", "agent-parallel", "aggregate-occupancy", "aggregate-chain"}
	ksTab := tablefmt.New("pair", "KS statistic", "critical (α=0.01)", "same distribution")
	allSame := true
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := samples[names[i]], samples[names[j]]
			d := stats.KSStatistic(a, b)
			crit := stats.KSCriticalValue(len(a), len(b), 0.01)
			same := d <= crit
			allSame = allSame && same
			ksTab.AddRow(names[i]+" vs "+names[j], d, crit, same)
		}
	}
	rep.AddTable("Kolmogorov–Smirnov pairwise comparison of t_con distributions", ksTab)
	if allSame {
		rep.AddNote("all engine pairs pass the KS test: the three implementations sample the same process")
	} else {
		rep.AddNote("WARNING: KS test rejected an engine pair")
	}
	return rep, nil
}

func runE17(cfg Config) (*Report, error) {
	e, _ := Lookup("E17")
	rep := newReport(e)

	tab := tablefmt.New("n", "ℓ = ⌈3·log₂n⌉", "samples/round (2ℓ)",
		"memory bits (⌈log₂(ℓ+1)⌉)", "message bits")
	for _, n := range []int{256, 4096, 65536, 1 << 20, 1 << 30} {
		f := core.NewFET(core.SampleSize(n, core.DefaultC))
		tab.AddRow(n, f.Ell(), f.SamplesPerRound(), f.MemoryBits(), 1)
	}
	rep.AddTable("FET resources (message bits = 1: passive communication)", tab)
	rep.AddNote("Theorem 1: ℓ = O(log n) samples, O(log ℓ) = O(log log n) bits of memory; " +
		"the table shows the concrete constants used in this reproduction")
	return rep, nil
}
