// Package experiment implements the reproduction harness: one registered
// experiment per figure, theorem, lemma, or design claim of the paper
// (see DESIGN.md §4 for the index). Each experiment produces a Report of
// named sections containing tables and/or text (ASCII maps), which the
// cmd/fetlab tool renders and EXPERIMENTS.md records.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"passivespread/internal/tablefmt"
)

// Config controls an experiment run.
type Config struct {
	// Seed is the root seed; every trial derives its own stream from it.
	Seed uint64
	// Quick shrinks sweeps and trial counts for CI and unit tests. The
	// full-size run is the one recorded in EXPERIMENTS.md.
	Quick bool
	// Smoke additionally caps the few Quick sweeps that still run for
	// tens of seconds (the heavy-tail configurations of E13 and E19) to a
	// bare smoke scale, so the package tests exercise every experiment
	// end-to-end without dominating `go test ./...`. Implies Quick;
	// results are exercised, not meaningful.
	Smoke bool
	// Parallelism bounds concurrent trials (0 = GOMAXPROCS).
	Parallelism int
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// pick returns quick when Quick (or Smoke) is set, else full.
func pick[T any](c Config, full, quick T) T {
	if c.Quick || c.Smoke {
		return quick
	}
	return full
}

// Section is one titled piece of a report.
type Section struct {
	// Name titles the section.
	Name string
	// Table holds tabular results (may be nil).
	Table *tablefmt.Table
	// Text holds free-form output such as ASCII maps (may be empty).
	Text string
}

// Report is the output of one experiment.
type Report struct {
	// ID is the experiment identifier, e.g. "E01".
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef names the paper artifact being reproduced.
	PaperRef string
	// Sections holds the results in presentation order.
	Sections []Section
	// Notes holds free-form observations (paper-vs-measured commentary).
	Notes []string
}

// AddTable appends a table section.
func (r *Report) AddTable(name string, t *tablefmt.Table) {
	r.Sections = append(r.Sections, Section{Name: name, Table: t})
}

// AddText appends a text section.
func (r *Report) AddText(name, text string) {
	r.Sections = append(r.Sections, Section{Name: name, Text: text})
}

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	// ID is the stable identifier ("E01" … "E18").
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef names the reproduced artifact ("Theorem 1", "Figure 1a",…).
	PaperRef string
	// Run executes the experiment.
	Run func(cfg Config) (*Report, error)
}

var (
	registryMu sync.Mutex
	registry   = map[string]Experiment{}
)

// Register adds an experiment to the global registry; it panics on a
// duplicate ID (a programming error). Most experiments self-register
// from this package's init functions; the sweep-based experiments (E01,
// E13) are registered by the module root, which owns the Sweep layer
// they build on.
func Register(e Experiment) { register(e) }

// register adds an experiment to the global registry; it panics on
// duplicate IDs (a programming error).
func register(e Experiment) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiment: duplicate ID %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]Experiment, 0, len(registry))
	//fet:allow detrand: entries are collected then sorted by ID below
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	e, ok := registry[id]
	return e, ok
}

// newReport seeds a Report from the experiment metadata.
func newReport(e Experiment) *Report {
	return &Report{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef}
}

// parallelTimes runs trial ∈ [0, trials) across workers and collects
// f(trial) in trial order. f must be safe for concurrent use across
// distinct trial indices (each trial derives its own RNG stream).
func parallelTimes(cfg Config, trials int, f func(trial int) float64) []float64 {
	out := make([]float64, trials)
	workers := cfg.workers()
	if workers > trials {
		workers = trials
	}
	if workers <= 1 {
		for i := 0; i < trials; i++ {
			out[i] = f(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = f(i)
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
