package experiment

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(all))
	}
	// IDs must be sorted. E02–E18 reproduce paper artifacts and E19–E22
	// are documented extensions; the sweep-based scaling experiments E01
	// and E13 are registered by the module root (they build on the public
	// Sweep layer), so they are absent from this package's own registry —
	// the root package's experiment tests check the full set of 22.
	want := []string{
		"E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09",
		"E10", "E11", "E12", "E14", "E15", "E16", "E17", "E18",
		"E19", "E20", "E21", "E22",
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d has ID %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Fatalf("experiment %s has incomplete metadata: %+v", e.ID, e)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E02"); !ok {
		t.Fatal("E02 not found")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
	}()
	Register(Experiment{ID: "E02", Title: "dup", PaperRef: "x", Run: nil})
}

// TestAllExperimentsRunQuick executes every registered experiment at the
// smoke scale (Quick sizes with the heavy-tail sweeps capped): the
// harness's end-to-end integration test, fast enough for `go test ./...`.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds; skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := e.Run(Config{Seed: 42, Smoke: true})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Fatalf("report ID %q for experiment %q", rep.ID, e.ID)
			}
			if len(rep.Sections) == 0 && len(rep.Notes) == 0 {
				t.Fatalf("%s produced an empty report", e.ID)
			}
			for _, sec := range rep.Sections {
				if sec.Name == "" {
					t.Fatalf("%s has an unnamed section", e.ID)
				}
				if sec.Table == nil && sec.Text == "" {
					t.Fatalf("%s section %q has no content", e.ID, sec.Name)
				}
			}
			for _, note := range rep.Notes {
				if strings.Contains(note, "WARNING") {
					t.Errorf("%s raised: %s", e.ID, note)
				}
			}
		})
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{ID: "X", Title: "t"}
	rep.AddText("map", "...")
	rep.AddNote("n = %d", 7)
	if len(rep.Sections) != 1 || rep.Sections[0].Text != "..." {
		t.Fatalf("sections %+v", rep.Sections)
	}
	if len(rep.Notes) != 1 || rep.Notes[0] != "n = 7" {
		t.Fatalf("notes %+v", rep.Notes)
	}
}

func TestParallelTimesOrderAndCompleteness(t *testing.T) {
	cfg := Config{Parallelism: 4}
	out := parallelTimes(cfg, 100, func(trial int) float64 {
		return float64(trial * trial)
	})
	if len(out) != 100 {
		t.Fatalf("len %d", len(out))
	}
	for i, v := range out {
		if v != float64(i*i) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestParallelTimesSerialPath(t *testing.T) {
	cfg := Config{Parallelism: 1}
	out := parallelTimes(cfg, 5, func(trial int) float64 { return float64(trial) })
	for i, v := range out {
		if v != float64(i) {
			t.Fatalf("serial out[%d] = %v", i, v)
		}
	}
}

func TestPickQuick(t *testing.T) {
	if got := pick(Config{Quick: true}, 10, 2); got != 2 {
		t.Fatalf("quick pick %d", got)
	}
	if got := pick(Config{Smoke: true}, 10, 2); got != 2 {
		t.Fatalf("smoke pick %d", got)
	}
	if got := pick(Config{}, 10, 2); got != 10 {
		t.Fatalf("full pick %d", got)
	}
}

func TestFormatExits(t *testing.T) {
	out := formatExits(map[string]int{"Green1": 97, "Purple1": 3})
	if out != "Green1 97%, Purple1 3%" {
		t.Fatalf("formatExits: %q", out)
	}
}

func TestConfigWorkers(t *testing.T) {
	if got := (Config{Parallelism: 3}).workers(); got != 3 {
		t.Fatalf("workers = %d", got)
	}
	if got := (Config{}).workers(); got < 1 {
		t.Fatalf("default workers = %d", got)
	}
}
