package experiment

import (
	"fmt"
	"strings"
)

// RenderText renders a report as plain text with aligned tables.
func RenderText(rep *Report) string {
	return render(rep, false)
}

// RenderMarkdown renders a report with Markdown tables.
func RenderMarkdown(rep *Report) string {
	return render(rep, true)
}

func render(rep *Report, markdown bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s [%s] ==\n\n", rep.ID, rep.Title, rep.PaperRef)
	for _, sec := range rep.Sections {
		fmt.Fprintf(&b, "-- %s --\n", sec.Name)
		if sec.Text != "" {
			b.WriteString(sec.Text)
			if !strings.HasSuffix(sec.Text, "\n") {
				b.WriteByte('\n')
			}
		}
		if sec.Table != nil {
			if markdown {
				b.WriteString(sec.Table.Markdown())
			} else {
				b.WriteString(sec.Table.String())
			}
		}
		b.WriteByte('\n')
	}
	for _, note := range rep.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}
