package experiment

import (
	"strings"
	"testing"

	"passivespread/internal/tablefmt"
)

func sampleReport() *Report {
	rep := &Report{ID: "E99", Title: "sample", PaperRef: "nowhere"}
	tab := tablefmt.New("a", "b")
	tab.AddRow(1, 2)
	rep.AddTable("numbers", tab)
	rep.AddText("map", "XY\nZW")
	rep.AddNote("hello %s", "world")
	return rep
}

func TestRenderText(t *testing.T) {
	out := RenderText(sampleReport())
	for _, want := range []string{
		"== E99 — sample [nowhere] ==",
		"-- numbers --",
		"a  b",
		"1  2",
		"-- map --",
		"XY\nZW\n",
		"note: hello world",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	out := RenderMarkdown(sampleReport())
	if !strings.Contains(out, "| a | b |") {
		t.Fatalf("markdown render missing table header:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("markdown render missing row:\n%s", out)
	}
}

func TestRenderTextNewlineTermination(t *testing.T) {
	rep := &Report{ID: "X", Title: "t", PaperRef: "p"}
	rep.AddText("no-newline", "abc")
	out := RenderText(rep)
	if !strings.Contains(out, "abc\n") {
		t.Fatalf("text section must be newline-terminated:\n%q", out)
	}
}
