package markov

import (
	"math"
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/sim"
)

// TestExactHittingTimeMatchesAgentEngine is the cross-stack ground-truth
// check: the value-iteration solution of the Observation-1 chain must
// predict the agent-level simulator's mean convergence time. It ties
// together dist (exact probabilities), markov (the chain and the solver),
// core (the protocol), adversary (state seeding), and sim (the engine).
func TestExactHittingTimeMatchesAgentEngine(t *testing.T) {
	const (
		n      = 32
		trials = 1500
	)
	ell := core.SampleSize(n, core.DefaultC) // 15

	c := New(n, ell, 1)
	exact, err := c.ExactHittingTimeFrom(State{K0: 0, K1: 1}, 1e-10, 100000)
	if err != nil {
		t.Fatal(err)
	}

	// Agent engine from the matching start: all non-sources wrong, and
	// FET memories seeded with Binomial(ℓ, 0) = 0 — i.e. conditioned on
	// the previous round also having been all-wrong, exactly (K0, K1) =
	// (0, 1).
	gs := adversary.GridStart{X0: 0, X1: 1.0 / n, Ell: ell}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		res, err := sim.Run(sim.Config{
			N:         n,
			Protocol:  core.NewFET(ell),
			Init:      adversary.AllWrong{Correct: sim.OpinionOne},
			Correct:   sim.OpinionOne,
			Seed:      uint64(9000 + trial),
			MaxRounds: 100000,
			StateInit: gs.StateInit(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d did not converge", trial)
		}
		sum += float64(res.Round)
	}
	agentMean := sum / trials

	// The chain's h counts rounds to *enter* (n, n); the agent t_con is
	// the first round of the final all-correct run, one round earlier
	// than the (n, n) entry (which needs two consecutive all-correct
	// rounds). Allow that unit offset plus sampling error.
	if math.Abs(agentMean-(exact-1)) > 0.15*exact+0.5 {
		t.Fatalf("exact hitting time %v (−1 for the witness offset) vs agent mean %v",
			exact, agentMean)
	}
}
