package markov

import (
	"fmt"
	"math"

	"passivespread/internal/dist"
)

// StepDistribution returns the exact probability mass function of
// K_{t+2} conditioned on the state s: index k of the returned slice is
// P(K_{t+2} = k). It is the distributional form of Observation 1 —
// K_{t+2} = 1 + Binomial(K_{t+1}−1, stay) + Binomial(n−K_{t+1}, gain) —
// computed by convolving the two binomial pmfs in O(n²) time. Intended
// for moderate n (validation, exact hitting-time analysis, and the
// noise-lemma experiments); the sampling Step covers large n.
func (c *Chain) StepDistribution(s State) []float64 {
	c.validate(s)
	x0 := float64(s.K0) / float64(c.n)
	x1 := float64(s.K1) / float64(c.n)
	st := dist.Step(c.ell, x0, x1)

	a := dist.PMFVector(s.K1-1, st.StayOne)   // survivors among 1-holders
	b := dist.PMFVector(c.n-s.K1, st.GainOne) // converts among 0-holders

	pmf := make([]float64, c.n+1)
	for i, pa := range a {
		if pa == 0 {
			continue
		}
		for j, pb := range b {
			k := 1 + i + j
			if k <= c.n {
				pmf[k] += pa * pb
			}
		}
	}
	return pmf
}

// StepMoments returns the exact mean and variance of x_{t+2} conditioned
// on the state s, in fraction units. The mean equals the paper's drift
// g(x_t, x_{t+1}) (Observation 1 / Eq. (2)); the variance quantifies the
// noise that Lemmas 16–17 rely on (the process is never too concentrated
// near any point, enabling tie-breaking in the Yellow analysis).
func (c *Chain) StepMoments(s State) (mean, variance float64) {
	c.validate(s)
	x0 := float64(s.K0) / float64(c.n)
	x1 := float64(s.K1) / float64(c.n)
	st := dist.Step(c.ell, x0, x1)
	nf := float64(c.n)

	ones := float64(s.K1)
	m := 1 + (ones-1)*st.StayOne + (nf-ones)*st.GainOne
	v := (ones-1)*st.StayOne*(1-st.StayOne) + (nf-ones)*st.GainOne*(1-st.GainOne)
	return m / nf, v / (nf * nf)
}

// NoiseLowerBound empirically mirrors Lemma 16: it returns the exact
// probability that x_{t+2} deviates from its conditional mean by at least
// 1/√n, computed from the exact step distribution. The paper proves this
// is bounded below by a constant whenever E(x_{t+2}) ∈ [1/3, 2/3].
func (c *Chain) NoiseLowerBound(s State) float64 {
	pmf := c.StepDistribution(s)
	mean, _ := c.StepMoments(s)
	dev := 1 / math.Sqrt(float64(c.n))
	p := 0.0
	for k, pk := range pmf {
		x := float64(k) / float64(c.n)
		if math.Abs(x-mean) >= dev {
			p += pk
		}
	}
	return p
}

// ExpectedHittingTime estimates the mean absorption time from start by
// averaging over trials independent runs; it reports the sample mean and
// whether every run absorbed within maxRounds. It panics on trials < 1.
func (c *Chain) ExpectedHittingTime(start State, maxRounds, trials int) (mean float64, allAbsorbed bool) {
	if trials < 1 {
		panic(fmt.Sprintf("markov: ExpectedHittingTime with trials = %d", trials))
	}
	sum := 0.0
	allAbsorbed = true
	for i := 0; i < trials; i++ {
		rounds, ok := c.HittingTime(start, maxRounds)
		if !ok {
			allAbsorbed = false
		}
		sum += float64(rounds)
	}
	return sum / float64(trials), allAbsorbed
}
