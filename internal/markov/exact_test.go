package markov

import (
	"math"
	"testing"

	"passivespread/internal/core"
)

func TestStepDistributionNormalized(t *testing.T) {
	c := New(200, 16, 1)
	for _, s := range []State{{K0: 50, K1: 80}, {K0: 0, K1: 1}, {K0: 200, K1: 200}} {
		pmf := c.StepDistribution(s)
		if len(pmf) != 201 {
			t.Fatalf("pmf length %d", len(pmf))
		}
		sum := 0.0
		for _, p := range pmf {
			if p < 0 {
				t.Fatalf("negative mass in pmf for %+v", s)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pmf for %+v sums to %v", s, sum)
		}
		// The source guarantees K ≥ 1.
		if pmf[0] != 0 {
			t.Fatalf("P(K=0) = %v, want 0 (source holds 1)", pmf[0])
		}
	}
}

func TestStepDistributionAbsorbing(t *testing.T) {
	c := New(100, 12, 1)
	pmf := c.StepDistribution(State{K0: 100, K1: 100})
	if math.Abs(pmf[100]-1) > 1e-12 {
		t.Fatalf("absorbing state mass at n is %v, want 1", pmf[100])
	}
}

func TestStepDistributionMatchesSampling(t *testing.T) {
	const (
		n      = 150
		ell    = 14
		trials = 200000
	)
	c := New(n, ell, 3)
	s := State{K0: 45, K1: 70}
	pmf := c.StepDistribution(s)
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[c.Step(s).K1]++
	}
	for k := 0; k <= n; k++ {
		want := pmf[k] * trials
		if want < 30 {
			continue
		}
		if diff := math.Abs(float64(counts[k]) - want); diff > 6*math.Sqrt(want) {
			t.Fatalf("P(K=%d): sampled %d, exact ≈%v", k, counts[k], want)
		}
	}
}

func TestStepMomentsMatchDistribution(t *testing.T) {
	c := New(120, 10, 1)
	for _, s := range []State{{K0: 30, K1: 60}, {K0: 60, K1: 60}, {K0: 90, K1: 30}} {
		pmf := c.StepDistribution(s)
		var mean, second float64
		for k, p := range pmf {
			x := float64(k) / 120
			mean += x * p
			second += x * x * p
		}
		gotMean, gotVar := c.StepMoments(s)
		if math.Abs(gotMean-mean) > 1e-9 {
			t.Fatalf("mean mismatch at %+v: %v vs %v", s, gotMean, mean)
		}
		wantVar := second - mean*mean
		if math.Abs(gotVar-wantVar) > 1e-9 {
			t.Fatalf("variance mismatch at %+v: %v vs %v", s, gotVar, wantVar)
		}
	}
}

func TestStepMomentsMeanIsDrift(t *testing.T) {
	// StepMoments' mean must agree with the closed-form drift g(x, y)
	// whenever K1 = n·y exactly (Observation 1 / Eq. (2)).
	n, ell := 500, 20
	c := New(n, ell, 1)
	s := State{K0: 150, K1: 250}
	mean, _ := c.StepMoments(s)
	// Recompute via the dist drift directly.
	x0, x1 := c.X(s)
	want := driftRef(n, ell, x0, x1)
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("mean %v, drift %v", mean, want)
	}
}

// driftRef mirrors dist.Drift to keep the test independent of that
// package's internals (it exercises the same formula path).
func driftRef(n, ell int, x, y float64) float64 {
	c := New(n, ell, 1)
	s := c.StateAt(x, y)
	m, _ := c.StepMoments(s)
	return m
}

func TestNoiseLowerBoundYellowCenter(t *testing.T) {
	// Lemma 16/17: near the center the step deviates from its mean by
	// 1/√n with at least constant probability.
	n := 400
	ell := core.SampleSize(n, core.DefaultC)
	c := New(n, ell, 1)
	// The step's standard deviation at the center is ≈ 0.5/√n, so a
	// deviation of 1/√n is a ≈2σ event: the exact constant is ≈ 0.045 —
	// small, but bounded away from zero, which is all Lemma 16 needs.
	p := c.NoiseLowerBound(State{K0: n / 2, K1: n / 2})
	if p < 0.02 {
		t.Fatalf("noise probability %v too small near the center", p)
	}
	if p > 1 {
		t.Fatalf("noise probability %v > 1", p)
	}
}

func TestNoiseLowerBoundVanishesAtAbsorption(t *testing.T) {
	c := New(300, 20, 1)
	if p := c.NoiseLowerBound(State{K0: 300, K1: 300}); p != 0 {
		t.Fatalf("absorbing state has noise %v", p)
	}
}

func TestExpectedHittingTime(t *testing.T) {
	n := 256
	c := New(n, core.SampleSize(n, core.DefaultC), 5)
	mean, all := c.ExpectedHittingTime(c.StateAt(0, 0), 4000, 20)
	if !all {
		t.Fatal("some runs did not absorb")
	}
	if mean < 1 || mean > 200 {
		t.Fatalf("mean hitting time %v out of plausible range", mean)
	}
}

func TestExpectedHittingTimePanics(t *testing.T) {
	c := New(10, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for trials = 0")
		}
	}()
	c.ExpectedHittingTime(State{K0: 5, K1: 5}, 10, 0)
}
