package markov

import (
	"fmt"
	"math"
)

// ExactHittingTimes solves, by value iteration over the full state space,
// the expected number of rounds to reach the absorbing corner (n, n) from
// every state (K0, K1). The recurrence follows the chain structure: a
// state (k0, k1) moves to (k1, K2) with K2 distributed by the exact step
// law, so
//
//	h(k0, k1) = 1 + Σ_{k2} P(K2 = k2 | k0, k1) · h(k1, k2).
//
// The computation is O(iterations · n³) time and O(n²) space, so it is
// intended for small populations (n ≲ 100), where it provides ground
// truth for the Monte-Carlo estimators. It returns the matrix h indexed
// as h[k0][k1−1] (k1 ranges over 1..n because the source always holds 1),
// iterating until the maximum update falls below tol or maxIters sweeps.
func (c *Chain) ExactHittingTimes(tol float64, maxIters int) ([][]float64, error) {
	if c.n > 200 {
		return nil, fmt.Errorf("markov: ExactHittingTimes with n = %d (> 200); use Monte Carlo", c.n)
	}
	if tol <= 0 {
		return nil, fmt.Errorf("markov: ExactHittingTimes with tol = %v", tol)
	}
	n := c.n

	// Precompute the step law for every state. pmf[k0][k1-1][k2] with the
	// absorbing state handled separately.
	pmf := make([][][]float64, n+1)
	for k0 := 0; k0 <= n; k0++ {
		pmf[k0] = make([][]float64, n)
		for k1 := 1; k1 <= n; k1++ {
			pmf[k0][k1-1] = c.StepDistribution(State{K0: k0, K1: k1})
		}
	}

	h := make([][]float64, n+1)
	next := make([][]float64, n+1)
	for k0 := range h {
		h[k0] = make([]float64, n)
		next[k0] = make([]float64, n)
	}

	for iter := 0; iter < maxIters; iter++ {
		maxDelta := 0.0
		for k0 := 0; k0 <= n; k0++ {
			for k1 := 1; k1 <= n; k1++ {
				if k0 == n && k1 == n {
					next[k0][k1-1] = 0
					continue
				}
				sum := 1.0
				row := pmf[k0][k1-1]
				for k2 := 1; k2 <= n; k2++ {
					p := row[k2]
					if p == 0 {
						continue
					}
					if k1 == n && k2 == n {
						continue // absorbed next round: contributes 0
					}
					sum += p * h[k1][k2-1]
				}
				next[k0][k1-1] = sum
				if d := math.Abs(sum - h[k0][k1-1]); d > maxDelta {
					maxDelta = d
				}
			}
		}
		h, next = next, h
		if maxDelta < tol {
			return h, nil
		}
	}
	return nil, fmt.Errorf("markov: ExactHittingTimes did not converge in %d sweeps", maxIters)
}

// ExactHittingTimeFrom is a convenience wrapper returning the expected
// absorption time from a single state.
func (c *Chain) ExactHittingTimeFrom(s State, tol float64, maxIters int) (float64, error) {
	c.validate(s)
	h, err := c.ExactHittingTimes(tol, maxIters)
	if err != nil {
		return 0, err
	}
	return h[s.K0][s.K1-1], nil
}
