package markov

import (
	"math"
	"testing"
)

func TestExactHittingTimesAbsorbingZero(t *testing.T) {
	c := New(20, 6, 1)
	h, err := c.ExactHittingTimes(1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if got := h[20][19]; got != 0 {
		t.Fatalf("h(n, n) = %v, want 0", got)
	}
	for k0 := 0; k0 <= 20; k0++ {
		for k1 := 1; k1 <= 20; k1++ {
			if k0 == 20 && k1 == 20 {
				continue
			}
			if h[k0][k1-1] < 1 {
				t.Fatalf("h(%d, %d) = %v < 1", k0, k1, h[k0][k1-1])
			}
			if math.IsNaN(h[k0][k1-1]) || math.IsInf(h[k0][k1-1], 0) {
				t.Fatalf("h(%d, %d) = %v", k0, k1, h[k0][k1-1])
			}
		}
	}
}

func TestExactHittingTimeMatchesMonteCarlo(t *testing.T) {
	const (
		n      = 24
		ell    = 8
		trials = 4000
	)
	c := New(n, ell, 7)
	start := State{K0: 0, K1: 1} // all wrong except the source

	exact, err := c.ExactHittingTimeFrom(start, 1e-10, 100000)
	if err != nil {
		t.Fatal(err)
	}

	sum := 0.0
	for i := 0; i < trials; i++ {
		rounds, ok := c.HittingTime(start, 100000)
		if !ok {
			t.Fatal("Monte-Carlo run did not absorb")
		}
		sum += float64(rounds)
	}
	mc := sum / trials

	// Hitting times have heavy-ish tails; allow a 5% relative band plus
	// an absolute slack for the MC error.
	if math.Abs(mc-exact) > 0.05*exact+0.5 {
		t.Fatalf("exact %v vs Monte-Carlo %v", exact, mc)
	}
}

func TestExactHittingTimesRejectsLargeN(t *testing.T) {
	c := New(500, 10, 1)
	if _, err := c.ExactHittingTimes(1e-9, 1000); err == nil {
		t.Fatal("expected size rejection")
	}
}

func TestExactHittingTimesRejectsBadTol(t *testing.T) {
	c := New(10, 4, 1)
	if _, err := c.ExactHittingTimes(0, 1000); err == nil {
		t.Fatal("expected tol rejection")
	}
}

func TestExactHittingTimeTrendDirectionMatters(t *testing.T) {
	// FET reads trends, not positions: from (n−1, n) — an uptrend ending
	// at all-ones — absorption is nearly immediate, whereas (n, n−1) — a
	// small dip from the top — reads as a downtrend, triggers a crash to
	// the wrong side, and must go through the whole bounce again. The
	// exact solver exposes both facts.
	c := New(20, 6, 2)
	h, err := c.ExactHittingTimes(1e-9, 100000)
	if err != nil {
		t.Fatal(err)
	}
	up := h[19][19]  // h(n−1, n)
	dip := h[20][18] // h(n, n−1)
	if up > 2 {
		t.Fatalf("h(n-1, n) = %v, want ≈1 (uptrend at the top absorbs immediately)", up)
	}
	if dip <= h[0][0] {
		t.Fatalf("h(n, n-1) = %v should exceed h(0,1) = %v (dip reads as a downtrend)", dip, h[0][0])
	}
}
