// Package markov implements the aggregate engine for FET: the Markov
// chain on the grid G = {0, 1/n, …, 1}² induced by the protocol
// (Observation 1 of the paper).
//
// Conditioned on (x_t, x_{t+1}), the opinions at round t+2 are independent
// Bernoulli variables: every non-source agent currently holding 1 keeps it
// with probability P(B_ℓ(x_{t+1}) ≥ B_ℓ(x_t)), and every agent holding 0
// switches with probability P(B_ℓ(x_{t+1}) > B_ℓ(x_t)). The number of
// 1-opinions at t+2 is therefore
//
//	K_{t+2} = 1 + Binomial(K_{t+1} − 1, stay) + Binomial(n − K_{t+1}, gain)
//
// (the leading 1 is the source, which holds opinion 1 without loss of
// generality). One chain step costs O(ℓ) exact probability computation
// plus two O(1) binomial draws, so the chain scales to populations of
// 10⁹ and beyond — far past what the agent engines can reach — while
// remaining an exact simulation of the protocol's opinion-count process.
package markov

import (
	"fmt"

	"passivespread/internal/dist"
	"passivespread/internal/rng"
)

// State is a point of the chain: the integer counts of 1-opinions at two
// consecutive rounds (K0 = n·x_t, K1 = n·x_{t+1}).
type State struct {
	K0, K1 int
}

// Chain simulates the FET opinion-count process for a population of n
// agents containing exactly one source with opinion 1.
type Chain struct {
	n   int
	ell int
	src *rng.Source
}

// New returns a Chain for population n with per-half sample size ell,
// drawing randomness from seed.
func New(n, ell int, seed uint64) *Chain {
	if n < 2 {
		panic(fmt.Sprintf("markov: New with n = %d", n))
	}
	if ell < 1 {
		panic(fmt.Sprintf("markov: New with ell = %d", ell))
	}
	return &Chain{n: n, ell: ell, src: rng.New(seed)}
}

// N returns the population size.
func (c *Chain) N() int { return c.n }

// Ell returns the per-half sample size.
func (c *Chain) Ell() int { return c.ell }

// StateAt returns the grid state closest to the fractions (x0, x1),
// clamped so that K1 ≥ 1 (the source always holds 1) and both counts lie
// in [0, n].
func (c *Chain) StateAt(x0, x1 float64) State {
	clamp := func(k int) int {
		if k < 0 {
			return 0
		}
		if k > c.n {
			return c.n
		}
		return k
	}
	s := State{
		K0: clamp(int(x0*float64(c.n) + 0.5)),
		K1: clamp(int(x1*float64(c.n) + 0.5)),
	}
	if s.K1 < 1 {
		s.K1 = 1
	}
	return s
}

// X returns the state's fractional coordinates (x_t, x_{t+1}).
func (c *Chain) X(s State) (x0, x1 float64) {
	return float64(s.K0) / float64(c.n), float64(s.K1) / float64(c.n)
}

// Absorbed reports whether the state is the absorbing corner (1, 1): all
// agents held opinion 1 for two consecutive rounds, after which every FET
// comparison ties and nothing changes.
func (c *Chain) Absorbed(s State) bool {
	return s.K0 == c.n && s.K1 == c.n
}

// Step advances the chain by one round.
func (c *Chain) Step(s State) State {
	c.validate(s)
	x0 := float64(s.K0) / float64(c.n)
	x1 := float64(s.K1) / float64(c.n)
	st := dist.Step(c.ell, x0, x1)
	ones := 1 +
		c.src.Binomial(s.K1-1, st.StayOne) +
		c.src.Binomial(c.n-s.K1, st.GainOne)
	return State{K0: s.K1, K1: ones}
}

func (c *Chain) validate(s State) {
	if s.K0 < 0 || s.K0 > c.n || s.K1 < 1 || s.K1 > c.n {
		panic(fmt.Sprintf("markov: invalid state %+v for n = %d", s, c.n))
	}
}

// Result reports a chain run.
type Result struct {
	// Converged reports whether the absorbing corner was reached.
	Converged bool
	// Round is the round at which the chain entered the absorbing corner
	// (the paper's t_con), or −1.
	Round int
	// Rounds is the number of steps executed.
	Rounds int
	// Final is the last state.
	Final State
	// Trajectory holds x_{t+1} per executed round when requested.
	Trajectory []float64
}

// RunConfig controls a chain run.
type RunConfig struct {
	// Start is the initial state.
	Start State
	// MaxRounds caps the run.
	MaxRounds int
	// RecordTrajectory stores the x coordinate after every step.
	RecordTrajectory bool
	// Stop, when non-nil, is evaluated after every step; returning true
	// ends the run early.
	Stop func(round int, s State) bool
}

// Run executes the chain until absorption, the Stop predicate, or the
// round cap.
func (c *Chain) Run(cfg RunConfig) Result {
	if cfg.MaxRounds <= 0 {
		panic("markov: RunConfig.MaxRounds must be positive")
	}
	s := cfg.Start
	res := Result{Round: -1}
	if cfg.RecordTrajectory {
		res.Trajectory = make([]float64, 0, cfg.MaxRounds)
	}
	for t := 0; t < cfg.MaxRounds; t++ {
		s = c.Step(s)
		res.Rounds++
		if cfg.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, float64(s.K1)/float64(c.n))
		}
		if c.Absorbed(s) {
			res.Converged = true
			res.Round = t + 1
			break
		}
		if cfg.Stop != nil && cfg.Stop(t, s) {
			break
		}
	}
	res.Final = s
	return res
}

// HittingTime runs the chain from start and returns the number of rounds
// until absorption, or maxRounds and ok=false if the cap was hit.
func (c *Chain) HittingTime(start State, maxRounds int) (rounds int, ok bool) {
	res := c.Run(RunConfig{Start: start, MaxRounds: maxRounds})
	if !res.Converged {
		return maxRounds, false
	}
	return res.Round, true
}
