package markov

import (
	"math"
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/sim"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ n, ell int }{{1, 4}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.ell)
				}
			}()
			New(tc.n, tc.ell, 1)
		}()
	}
}

func TestStateAtClamping(t *testing.T) {
	c := New(100, 8, 1)
	if s := c.StateAt(-0.5, 2); s.K0 != 0 || s.K1 != 100 {
		t.Fatalf("clamped state = %+v", s)
	}
	if s := c.StateAt(0, 0); s.K1 != 1 {
		t.Fatalf("K1 floor: %+v (source must hold 1)", s)
	}
	s := c.StateAt(0.5, 0.25)
	if s.K0 != 50 || s.K1 != 25 {
		t.Fatalf("StateAt(0.5, 0.25) = %+v", s)
	}
	x0, x1 := c.X(s)
	if x0 != 0.5 || x1 != 0.25 {
		t.Fatalf("X = (%v, %v)", x0, x1)
	}
}

func TestAbsorbedOnlyAtAllOnes(t *testing.T) {
	c := New(50, 8, 1)
	if !c.Absorbed(State{K0: 50, K1: 50}) {
		t.Fatal("(n, n) must be absorbed")
	}
	for _, s := range []State{{49, 50}, {50, 49}, {1, 1}} {
		if c.Absorbed(s) {
			t.Fatalf("%+v wrongly absorbed", s)
		}
	}
}

func TestStepStaysAbsorbed(t *testing.T) {
	c := New(64, 12, 2)
	s := State{K0: 64, K1: 64}
	for i := 0; i < 50; i++ {
		s = c.Step(s)
		if !c.Absorbed(s) {
			t.Fatalf("left the absorbing state at step %d: %+v", i, s)
		}
	}
}

func TestStepSourceAlwaysCounted(t *testing.T) {
	c := New(64, 12, 3)
	s := State{K0: 1, K1: 1}
	for i := 0; i < 200; i++ {
		s = c.Step(s)
		if s.K1 < 1 {
			t.Fatalf("K1 = %d < 1 at step %d", s.K1, i)
		}
		if s.K1 > 64 {
			t.Fatalf("K1 = %d > n", s.K1)
		}
	}
}

func TestStepPanicsOnInvalidState(t *testing.T) {
	c := New(10, 4, 1)
	for _, s := range []State{{-1, 5}, {5, 0}, {11, 5}, {5, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Step(%+v) did not panic", s)
				}
			}()
			c.Step(s)
		}()
	}
}

func TestRunConvergesFromAllWrong(t *testing.T) {
	for _, n := range []int{256, 4096, 1 << 16} {
		ell := core.SampleSize(n, core.DefaultC)
		c := New(n, ell, uint64(n))
		start := c.StateAt(0, 0) // all wrong (except the source)
		res := c.Run(RunConfig{Start: start, MaxRounds: 5000})
		if !res.Converged {
			t.Fatalf("n=%d: chain did not converge (final %+v)", n, res.Final)
		}
		if res.Round < 1 {
			t.Fatalf("n=%d: converged at round %d", n, res.Round)
		}
	}
}

func TestRunConvergesHugePopulation(t *testing.T) {
	// The aggregate engine's selling point: n = 10^8 in milliseconds per
	// round.
	n := 100_000_000
	ell := core.SampleSize(n, core.DefaultC)
	c := New(n, ell, 99)
	res := c.Run(RunConfig{Start: c.StateAt(0.5, 0.5), MaxRounds: 5000})
	if !res.Converged {
		t.Fatalf("n=1e8: chain did not converge (final %+v)", res.Final)
	}
}

func TestRunPanicsWithoutMaxRounds(t *testing.T) {
	c := New(10, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Run without MaxRounds did not panic")
		}
	}()
	c.Run(RunConfig{Start: State{K0: 5, K1: 5}})
}

func TestRunTrajectoryAndStop(t *testing.T) {
	c := New(1024, 30, 5)
	stops := 0
	res := c.Run(RunConfig{
		Start:            c.StateAt(0.5, 0.5),
		MaxRounds:        1000,
		RecordTrajectory: true,
		Stop: func(round int, _ State) bool {
			stops++
			return round >= 9
		},
	})
	if res.Converged {
		t.Skip("converged before the stop round; extremely unlikely")
	}
	if res.Rounds != 10 {
		t.Fatalf("Rounds = %d, want 10", res.Rounds)
	}
	if len(res.Trajectory) != 10 {
		t.Fatalf("trajectory length %d", len(res.Trajectory))
	}
	for _, x := range res.Trajectory {
		if x < 0 || x > 1 {
			t.Fatalf("trajectory value %v", x)
		}
	}
}

func TestHittingTime(t *testing.T) {
	c := New(512, core.SampleSize(512, core.DefaultC), 7)
	rounds, ok := c.HittingTime(c.StateAt(0, 0), 5000)
	if !ok {
		t.Fatal("did not hit absorption")
	}
	if rounds < 1 || rounds > 5000 {
		t.Fatalf("rounds = %d", rounds)
	}
	// Impossible horizon: report not-ok.
	if _, ok := c.HittingTime(c.StateAt(0, 0), 1); ok {
		t.Fatal("cannot absorb from all-wrong in one round")
	}
}

// TestChainMatchesAgentEngine cross-validates the aggregate chain against
// the agent-level simulator: the mean one-step image of x_{t+2} from a
// fixed (x0, x1) must agree, and so must the convergence-time scale.
func TestChainMatchesAgentEngineOneStep(t *testing.T) {
	const (
		n      = 2048
		x0, x1 = 0.35, 0.45
		trials = 200
	)
	ell := core.SampleSize(n, core.DefaultC)

	// Aggregate chain mean.
	c := New(n, ell, 11)
	sumChain := 0.0
	for i := 0; i < trials; i++ {
		next := c.Step(c.StateAt(x0, x1))
		sumChain += float64(next.K1) / n
	}
	meanChain := sumChain / trials

	// Agent engine mean via grid start.
	gs := adversary.GridStart{X0: x0, X1: x1, Ell: ell}
	sumAgent := 0.0
	for trial := 0; trial < trials; trial++ {
		var first float64
		_, err := sim.Run(sim.Config{
			N:         n,
			Protocol:  core.NewFET(ell),
			Init:      gs.Init(),
			Correct:   sim.OpinionOne,
			Seed:      uint64(3000 + trial),
			MaxRounds: 1,
			StateInit: gs.StateInit(),
			Observers: []sim.Observer{sim.StopWhen(func(ev sim.RoundEvent) bool {
				first = ev.X
				return true
			})},
		})
		if err != nil {
			t.Fatal(err)
		}
		sumAgent += first
	}
	meanAgent := sumAgent / trials

	if math.Abs(meanChain-meanAgent) > 0.01 {
		t.Fatalf("one-step means diverge: chain %v vs agents %v", meanChain, meanAgent)
	}
}

func TestChainMatchesAgentEngineHittingTime(t *testing.T) {
	const (
		n      = 512
		trials = 30
	)
	ell := core.SampleSize(n, core.DefaultC)

	chainSum := 0.0
	c := New(n, ell, 13)
	for i := 0; i < trials; i++ {
		rounds, ok := c.HittingTime(c.StateAt(0, 0), 10000)
		if !ok {
			t.Fatal("chain did not converge")
		}
		chainSum += float64(rounds)
	}
	chainMean := chainSum / trials

	agentSum := 0.0
	for trial := 0; trial < trials; trial++ {
		res, err := sim.Run(sim.Config{
			N:             n,
			Protocol:      core.NewFET(ell),
			Init:          adversary.AllWrong{Correct: sim.OpinionOne},
			Correct:       sim.OpinionOne,
			Seed:          uint64(5000 + trial),
			MaxRounds:     10000,
			CorruptStates: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatal("agent run did not converge")
		}
		agentSum += float64(res.Round)
	}
	agentMean := agentSum / trials

	ratio := chainMean / agentMean
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("hitting-time means diverge: chain %v vs agents %v", chainMean, agentMean)
	}
}
