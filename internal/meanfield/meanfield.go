// Package meanfield analyzes the deterministic mean-field skeleton of the
// FET dynamics: the two-dimensional map
//
//	(x_t, x_{t+1})  →  (x_{t+1}, g(x_t, x_{t+1}))
//
// where g is the exact one-step drift of Observation 1. The map captures
// the expected motion of the opinion fraction with all stochastic
// fluctuation removed.
//
// The mean-field view isolates a structural fact behind the paper's
// analysis: the center (1/2, 1/2) is a saddle of the map. Along the
// diagonal x_t = x_{t+1} the drift pulls toward 1/2 (g(x,x) − x has the
// sign of 1/2 − x up to the O(1/n) source term), but the transverse
// "speed" direction is unstable — a deviation |x_{t+1} − x_t| is
// amplified by a ~√ℓ-scale multiplier per round (the derivative bound of
// Claim 11). The trend-following rule thus turns any asymmetry into
// exponential speed growth: the deterministic skeleton is seeded only by
// the source's O(1/n) push, while the stochastic process re-seeds the
// amplification every round with Θ(1/√n) sampling fluctuations — the
// speed build-up of Lemmas 7–10. Experiment E21 compares the two.
package meanfield

import (
	"fmt"
	"math"
	"strings"

	"passivespread/internal/dist"
)

// Map is the deterministic mean-field iteration for a population of n
// agents (one source holding opinion 1) with per-half sample size ell.
type Map struct {
	n   int
	ell int
}

// New returns the mean-field map. It panics on invalid sizes.
func New(n, ell int) Map {
	if n < 2 {
		panic(fmt.Sprintf("meanfield: New with n = %d", n))
	}
	if ell < 1 {
		panic(fmt.Sprintf("meanfield: New with ell = %d", ell))
	}
	return Map{n: n, ell: ell}
}

// N returns the population size.
func (m Map) N() int { return m.n }

// Ell returns the per-half sample size.
func (m Map) Ell() int { return m.ell }

// Next applies one step of the map.
func (m Map) Next(x0, x1 float64) (nx0, nx1 float64) {
	return x1, dist.Drift(m.n, m.ell, x0, x1)
}

// Orbit iterates the map for steps rounds and returns the visited points,
// starting with (x0, x1). The result has steps+1 entries.
func (m Map) Orbit(x0, x1 float64, steps int) [][2]float64 {
	if steps < 0 {
		panic(fmt.Sprintf("meanfield: Orbit with steps = %d", steps))
	}
	out := make([][2]float64, 0, steps+1)
	out = append(out, [2]float64{x0, x1})
	for i := 0; i < steps; i++ {
		x0, x1 = m.Next(x0, x1)
		out = append(out, [2]float64{x0, x1})
	}
	return out
}

// Limit iterates until the orbit is within tol of a diagonal fixed point
// (|x1 − x0| < tol and |g(x0,x1) − x1| < tol) or maxSteps is exhausted.
// It returns the final x value, the number of steps taken, and whether a
// fixed point was reached.
func (m Map) Limit(x0, x1 float64, maxSteps int, tol float64) (limit float64, steps int, ok bool) {
	for i := 0; i < maxSteps; i++ {
		nx0, nx1 := m.Next(x0, x1)
		if math.Abs(nx1-x1) < tol && math.Abs(x1-x0) < tol {
			return nx1, i, true
		}
		x0, x1 = nx0, nx1
	}
	return x1, maxSteps, false
}

// DiagonalDrift returns g(x, x) − x: the one-step expected motion when
// the last two rounds had the same fraction. Up to the O(1/n) source
// term it has the sign of 1/2 − x (ties dilute toward the center).
func (m Map) DiagonalDrift(x float64) float64 {
	return dist.Drift(m.n, m.ell, x, x) - x
}

// DiagonalFixedPoints scans the diagonal at the given resolution and
// returns the x values where the drift changes sign or vanishes — the
// rest points of the deterministic skeleton.
func (m Map) DiagonalFixedPoints(res int) []float64 {
	if res < 2 {
		panic(fmt.Sprintf("meanfield: DiagonalFixedPoints with res = %d", res))
	}
	var roots []float64
	prevX := 0.0
	prevD := m.DiagonalDrift(prevX)
	for i := 1; i <= res; i++ {
		x := float64(i) / float64(res)
		d := m.DiagonalDrift(x)
		if d == 0 {
			roots = append(roots, x)
		} else if prevD != 0 && (d < 0) != (prevD < 0) {
			// Sign change: bisect for the crossing.
			lo, hi := prevX, x
			for iter := 0; iter < 60; iter++ {
				mid := (lo + hi) / 2
				if (m.DiagonalDrift(mid) < 0) == (prevD < 0) {
					lo = mid
				} else {
					hi = mid
				}
			}
			roots = append(roots, (lo+hi)/2)
		}
		prevX, prevD = x, d
	}
	return roots
}

// RenderField renders the direction of the expected motion x_{t+2} − x_{t+1}
// over the grid as an ASCII quiver: '^' up, 'v' down, '·' negligible
// (|drift| < 1/n·10). Axes match the Figure 1a maps (x_t →, x_{t+1} ↑).
func (m Map) RenderField(res int) string {
	if res < 1 {
		panic(fmt.Sprintf("meanfield: RenderField with res = %d", res))
	}
	threshold := 10.0 / float64(m.n)
	var b strings.Builder
	for j := res; j >= 0; j-- {
		y := float64(j) / float64(res)
		for i := 0; i <= res; i++ {
			x := float64(i) / float64(res)
			d := dist.Drift(m.n, m.ell, x, y) - y
			switch {
			case d > threshold:
				b.WriteByte('^')
			case d < -threshold:
				b.WriteByte('v')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
