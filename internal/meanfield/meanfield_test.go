package meanfield

import (
	"math"
	"strings"
	"testing"

	"passivespread/internal/core"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ n, ell int }{{1, 4}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.n, tc.ell)
				}
			}()
			New(tc.n, tc.ell)
		}()
	}
	m := New(100, 8)
	if m.N() != 100 || m.Ell() != 8 {
		t.Fatalf("accessors: %d %d", m.N(), m.Ell())
	}
}

func TestNextMatchesDrift(t *testing.T) {
	m := New(1000, 20)
	nx0, nx1 := m.Next(0.3, 0.5)
	if nx0 != 0.5 {
		t.Fatalf("shift: %v", nx0)
	}
	if nx1 < 0 || nx1 > 1 {
		t.Fatalf("drift out of range: %v", nx1)
	}
}

func TestOrbitLengthAndRange(t *testing.T) {
	m := New(512, core.SampleSize(512, core.DefaultC))
	orbit := m.Orbit(0.2, 0.2, 50)
	if len(orbit) != 51 {
		t.Fatalf("orbit length %d", len(orbit))
	}
	for i, pt := range orbit {
		if pt[0] < 0 || pt[0] > 1 || pt[1] < 0 || pt[1] > 1 {
			t.Fatalf("orbit[%d] = %v out of the unit square", i, pt)
		}
	}
}

func TestOrbitPanicsNegativeSteps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(100, 8).Orbit(0.5, 0.5, -1)
}

func TestDiagonalDriftPullsTowardCenter(t *testing.T) {
	// Away from the center the diagonal drift points at 1/2 (the O(1/n)
	// source term is negligible at these distances).
	m := New(1<<16, 48)
	if d := m.DiagonalDrift(0.2); d <= 0 {
		t.Fatalf("drift at 0.2 = %v, want > 0 (toward center)", d)
	}
	if d := m.DiagonalDrift(0.8); d >= 0 {
		t.Fatalf("drift at 0.8 = %v, want < 0 (toward center)", d)
	}
}

func TestDiagonalDriftSourceBias(t *testing.T) {
	// Exactly at the center the only surviving term is the source's
	// O(1/n) upward push.
	m := New(1024, 30)
	d := m.DiagonalDrift(0.5)
	if d <= 0 || d > 2.0/1024 {
		t.Fatalf("center drift %v, want a small positive source push", d)
	}
}

func TestDeterministicSkeletonConvergesToOne(t *testing.T) {
	// The center is a saddle: the source's O(1/n) push seeds the unstable
	// speed direction, whose ~√ℓ-per-round amplification carries the
	// deterministic orbit to the all-ones fixed point in O(log n)-scale
	// time.
	n := 256
	m := New(n, core.SampleSize(n, core.DefaultC))
	limit, steps, ok := m.Limit(0.5, 0.5, 100*n, 1e-9)
	if !ok {
		t.Fatalf("skeleton did not settle within %d steps (at %v)", 100*n, limit)
	}
	if math.Abs(limit-1) > 1e-6 {
		t.Fatalf("skeleton limit %v, want 1", limit)
	}
	if steps < 3 {
		t.Fatalf("skeleton settled in %d steps — the saddle escape cannot be instant", steps)
	}
}

func TestSpeedAmplification(t *testing.T) {
	// The transverse instability: starting with a small positive speed,
	// one step must grow the speed (until saturation) — the mean-field
	// face of Lemma 7's doubling.
	m := New(1<<16, 48)
	x0, x1 := 0.5, 0.502 // speed 0.002
	_, x2 := m.Next(x0, x1)
	if x2-x1 <= x1-x0 {
		t.Fatalf("speed not amplified: %v → %v", x1-x0, x2-x1)
	}
}

func TestDiagonalFixedPointsContainOne(t *testing.T) {
	m := New(1024, 30)
	roots := m.DiagonalFixedPoints(200)
	foundOne := false
	for _, r := range roots {
		if math.Abs(r-1) < 1e-6 {
			foundOne = true
		}
	}
	if !foundOne {
		t.Fatalf("all-ones fixed point missing from %v", roots)
	}
}

func TestDiagonalFixedPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(100, 8).DiagonalFixedPoints(1)
}

func TestRenderFieldShapeAndGlyphs(t *testing.T) {
	m := New(1<<16, 48)
	const res = 30
	out := m.RenderField(res)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != res+1 {
		t.Fatalf("%d rows", len(lines))
	}
	for _, l := range lines {
		if len(l) != res+1 {
			t.Fatalf("row width %d", len(l))
		}
	}
	if !strings.Contains(out, "^") || !strings.Contains(out, "v") {
		t.Fatalf("field lacks both directions:\n%s", out)
	}
	// (x, y) = (0.2, 0.5): strong upward trend → nearly everyone adopts 1
	// next round, so the expected motion points up. Row index for y is
	// res − j with y = j/res.
	if g := lines[res-res/2][res/5]; g != '^' {
		t.Fatalf("glyph at (0.2, 0.5) = %c, want ^", g)
	}
	// (x, y) = (0.8, 0.5): downward trend → motion points down.
	if g := lines[res-res/2][4*res/5]; g != 'v' {
		t.Fatalf("glyph at (0.8, 0.5) = %c, want v", g)
	}
	// Saturated corners have nowhere to go: (0, 1) and (1, 1) are flat.
	if lines[0][0] != '.' || lines[0][res] != '.' {
		t.Fatalf("top corners not flat: %c %c", lines[0][0], lines[0][res])
	}
}

func TestRenderFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(100, 8).RenderField(0)
}
