package rng

// MaxBatchChunk is the largest per-refill size a Batch supports.
const MaxBatchChunk = 64

// Batch is a buffered consumer over a Source: it pre-generates stream
// outputs in chunks (one Fill per refill) and hands them out one draw at
// a time through mirrors of the Source sampling methods. Every consuming
// call reads exactly the values, in exactly the order, that the same
// call sequence would have drawn from the Source directly — Intn keeps
// Lemire's rejection discipline, Bernoulli keeps its zero-consumption
// clamps — so replacing per-draw calls with a Batch never changes a
// result.
//
// The one divergence is the generator state: a refill advances the
// Source past the values still sitting in the buffer. Batch is therefore
// only for ephemeral streams that are reseeded before their next use
// (topology row construction, per-(round, agent) rewire streams), where
// discarding the tail of a stream is unobservable. Reset discards any
// buffered leftovers after such a reseed.
type Batch struct {
	src       *Source
	buf       [MaxBatchChunk]uint64
	pos, have int
	chunk     int
}

// Init aims the batch at src with the given refill chunk size (clamped
// to [1, MaxBatchChunk]) and discards any buffered values.
func (b *Batch) Init(src *Source, chunk int) {
	if chunk < 1 {
		chunk = 1
	}
	if chunk > MaxBatchChunk {
		chunk = MaxBatchChunk
	}
	b.src, b.chunk = src, chunk
	b.pos, b.have = 0, 0
}

// Reset discards buffered values. Call it after reseeding the underlying
// Source so stale pre-generated outputs from the previous stream cannot
// leak into the new one.
func (b *Batch) Reset() { b.pos, b.have = 0, 0 }

// Uint64 returns the stream's next output, refilling the buffer in bulk
// when it runs dry.
func (b *Batch) Uint64() uint64 {
	if b.pos == b.have {
		b.src.Fill(b.buf[:b.chunk])
		b.pos, b.have = 0, b.chunk
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// Float64 returns a uniform float64 in [0, 1), consuming one output
// exactly like Source.Float64.
func (b *Batch) Float64() float64 {
	return UnitFloat(b.Uint64())
}

// Intn returns a uniform integer in [0, n) with the same nearly
// divisionless rejection discipline as Source.Intn: identical values
// consumed, identical rejection behavior.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	x := b.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = b.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// Bernoulli returns true with probability p, mirroring Source.Bernoulli
// exactly — including consuming no output at all when p is outside
// (0, 1).
func (b *Batch) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return b.Float64() < p
}
