package rng

import "testing"

// TestFillMatchesSequentialUint64: Fill must produce exactly the values
// (and final generator state) of sequential Uint64 calls — the batched
// hot paths rely on this identity for bit-for-bit reproducibility.
func TestFillMatchesSequentialUint64(t *testing.T) {
	for _, n := range []int{1, 7, 64, 1000} {
		a, b := New(12345), New(12345)
		want := make([]uint64, n)
		for i := range want {
			want[i] = a.Uint64()
		}
		got := make([]uint64, n)
		b.Fill(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Fill[%d] = %x, want %x", n, i, got[i], want[i])
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: generator states diverge after Fill", n)
		}
	}
}

// TestBatchMatchesSourceDraws: a Batch-run mixed draw sequence must
// return exactly what the same sequence run on a bare Source returns —
// Intn keeps Lemire's rejection, Bernoulli its zero-consumption clamps.
func TestBatchMatchesSourceDraws(t *testing.T) {
	for _, chunk := range []int{1, 3, 16, MaxBatchChunk} {
		direct := New(777)
		var src Source
		src.Reseed(StreamSeed(777, 0))
		direct.Reseed(StreamSeed(777, 0))
		var b Batch
		b.Init(&src, chunk)
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if got, want := b.Uint64(), direct.Uint64(); got != want {
					t.Fatalf("chunk %d, draw %d: Uint64 %x, want %x", chunk, i, got, want)
				}
			case 1:
				if got, want := b.Float64(), direct.Float64(); got != want {
					t.Fatalf("chunk %d, draw %d: Float64 %v, want %v", chunk, i, got, want)
				}
			case 2:
				// Small bound exercises Lemire's rejection path.
				if got, want := b.Intn(3), direct.Intn(3); got != want {
					t.Fatalf("chunk %d, draw %d: Intn %d, want %d", chunk, i, got, want)
				}
			case 3:
				if got, want := b.Intn(1<<40), direct.Intn(1<<40); got != want {
					t.Fatalf("chunk %d, draw %d: Intn %d, want %d", chunk, i, got, want)
				}
			default:
				// p outside (0,1) must consume nothing on either side.
				p := []float64{0.3, 0, 1, 0.9}[i%4]
				if got, want := b.Bernoulli(p), direct.Bernoulli(p); got != want {
					t.Fatalf("chunk %d, draw %d: Bernoulli %v, want %v", chunk, i, got, want)
				}
			}
		}
	}
}

// TestBatchResetDiscardsBufferedValues: after a reseed + Reset, the
// batch must serve the new stream from its start.
func TestBatchResetDiscardsBufferedValues(t *testing.T) {
	var src Source
	src.Reseed(1)
	var b Batch
	b.Init(&src, 16)
	_ = b.Uint64() // buffers 16, consumes 1

	src.Reseed(2)
	b.Reset()
	want := New(2).Uint64()
	if got := b.Uint64(); got != want {
		t.Fatalf("after Reset: %x, want the reseeded stream's first output %x", got, want)
	}
}

// TestBinomialCDFResetReuses: Reset must retabulate in place without
// reallocating when capacity allows, and produce tables identical to a
// fresh build.
func TestBinomialCDFResetReuses(t *testing.T) {
	b := NewBinomialCDF(40, 0.3)
	avg := testing.AllocsPerRun(100, func() { b.Reset(40, 0.61) })
	if avg != 0 {
		t.Fatalf("same-size Reset allocates %v times, want 0", avg)
	}
	fresh := NewBinomialCDF(40, 0.61)
	for k := 0; k <= 40; k++ {
		if got, want := b.CDF(k), fresh.CDF(k); got != want {
			t.Fatalf("CDF(%d) = %v after Reset, want %v", k, got, want)
		}
	}
	// Shrinking reuses too; growing reallocates but stays correct.
	b.Reset(10, 0.5)
	if b.N() != 10 {
		t.Fatalf("N = %d after shrink, want 10", b.N())
	}
	b.Reset(80, 0.9)
	fresh = NewBinomialCDF(80, 0.9)
	for k := 0; k <= 80; k++ {
		if got, want := b.CDF(k), fresh.CDF(k); got != want {
			t.Fatalf("CDF(%d) = %v after grow, want %v", k, got, want)
		}
	}
}

// TestSampleUMatchesSample: SampleU(u) is Sample with the uniform
// supplied — the pair must agree draw for draw.
func TestSampleUMatchesSample(t *testing.T) {
	b := NewBinomialCDF(20, 0.42)
	s1, s2 := New(5), New(5)
	for i := 0; i < 1000; i++ {
		if got, want := b.SampleU(s1.Float64()), b.Sample(s2); got != want {
			t.Fatalf("draw %d: SampleU %d, Sample %d", i, got, want)
		}
	}
}
