package rng

import "math"

// Binomial draws a Binomial(n, p) variate.
//
// The sampler dispatches on the regime:
//   - n ≤ smallN: direct sum of Bernoulli trials (exact, branch-cheap);
//   - n·min(p,1−p) ≤ inversionMean: sequential inversion from the pmf
//     recurrence (exact, O(mean) expected time);
//   - otherwise: BTRS, the transformed-rejection sampler of Hörmann
//     (exact, O(1) expected time), suitable for n up to 10^9 and beyond.
//
// All three paths are exact samplers of the binomial law; they differ only
// in speed.
func (s *Source) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic("rng: Binomial called with negative n")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	// Exploit symmetry so the worked probability is ≤ 1/2; this keeps the
	// inversion loop short and BTRS in its valid regime.
	if p > 0.5 {
		return n - s.Binomial(n, 1-p)
	}
	const (
		smallN        = 16
		inversionMean = 14.0
	)
	switch {
	case n <= smallN:
		return s.binomialBernoulli(n, p)
	case float64(n)*p <= inversionMean:
		return s.binomialInversion(n, p)
	default:
		return s.binomialBTRS(n, p)
	}
}

// binomialBernoulli sums n Bernoulli(p) trials.
func (s *Source) binomialBernoulli(n int, p float64) int {
	// Compare 53-bit fixed-point threshold against the top bits of each
	// Uint64 to avoid n Float64 conversions.
	threshold := uint64(p * (1 << 53))
	count := 0
	for i := 0; i < n; i++ {
		if s.Uint64()>>11 < threshold {
			count++
		}
	}
	return count
}

// binomialInversion draws by inverting the CDF with the pmf recurrence
// P(k+1) = P(k) · (n−k)/(k+1) · p/(1−p). Requires p ≤ 1/2 and small n·p.
func (s *Source) binomialInversion(n int, p float64) int {
	q := 1 - p
	// q^n can underflow only when n·p is large, which this path excludes.
	f := math.Pow(q, float64(n))
	r := p / q
	u := s.Float64()
	k := 0
	for u > f {
		u -= f
		f *= float64(n-k) / float64(k+1) * r
		k++
		if k > n { // numeric safety: total mass slightly below 1
			return n
		}
	}
	return k
}

// binomialBTRS implements the BTRS transformed-rejection algorithm
// (W. Hörmann, "The generation of binomial random variates", 1993).
// Requires p ≤ 1/2 and n·p ≥ 10.
func (s *Source) binomialBTRS(n int, p float64) int {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b

	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor(float64(n+1) * p)
	h := lgammaFloat(m+1) + lgammaFloat(nf-m+1)

	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int(kf)
		}
		// Squeeze failed: accept/reject via the exact log-pmf ratio.
		v = math.Log(v * alpha / (a/(us*us) + b))
		if v <= h-lgammaFloat(kf+1)-lgammaFloat(nf-kf+1)+(kf-m)*lpq {
			return int(kf)
		}
	}
}

func lgammaFloat(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// BinomialCDF is a precomputed inverse-CDF sampler for a fixed
// Binomial(n, p) law. When many agents draw from the same binomial in a
// round (all observations that round are Binomial(ℓ, x_t)), building the
// table once and sampling by binary search is far cheaper than independent
// sampling, and is exact.
type BinomialCDF struct {
	n   int
	p   float64
	cdf []float64 // cdf[k] = P(B ≤ k); cdf[n] forced to 1
}

// NewBinomialCDF builds the table for Binomial(n, p). n must be ≥ 0 and
// small enough that an (n+1)-entry table is acceptable (it is intended for
// n = ℓ = O(log population)).
func NewBinomialCDF(n int, p float64) *BinomialCDF {
	b := &BinomialCDF{}
	b.Reset(n, p)
	return b
}

// Reset retabulates the sampler for Binomial(n, p) in place, reusing the
// CDF backing array whenever its capacity allows. The round loops rebuild
// their per-round tables through Reset so retabulating the observation law
// every round costs zero steady-state allocations. A zero-value
// BinomialCDF is valid Reset input.
func (b *BinomialCDF) Reset(n int, p float64) {
	if n < 0 {
		panic("rng: BinomialCDF with negative n")
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	cdf := b.cdf
	if cap(cdf) < n+1 {
		cdf = make([]float64, n+1)
	}
	cdf = cdf[:n+1]
	// pmf by log-space evaluation at the mode would be more stable, but
	// for n = O(log population) the direct recurrence from k=0 suffices
	// unless q^n underflows; in that case start from k=n going down.
	q := 1 - p
	switch {
	case p == 0:
		for k := range cdf {
			cdf[k] = 1
		}
	case p == 1:
		for k := 0; k < n; k++ {
			cdf[k] = 0
		}
		cdf[n] = 1
	default:
		f := math.Pow(q, float64(n))
		if f > 0 {
			r := p / q
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += f
				cdf[k] = sum
				f *= float64(n-k) / float64(k+1) * r
			}
		} else {
			// Extremely skewed: evaluate each pmf term in log space.
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += math.Exp(logBinomPMF(n, k, p))
				cdf[k] = sum
			}
		}
		cdf[n] = 1
	}
	b.n, b.p, b.cdf = n, p, cdf
}

// logBinomPMF returns log P(Binomial(n,p) = k) computed in log space.
func logBinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p == 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p == 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return lgammaFloat(float64(n+1)) - lgammaFloat(float64(k+1)) - lgammaFloat(float64(n-k+1)) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// N returns the number of trials of the tabulated law.
func (b *BinomialCDF) N() int { return b.n }

// P returns the success probability of the tabulated law.
func (b *BinomialCDF) P() float64 { return b.p }

// Sample draws one variate using the source. It consumes exactly one
// Float64 (one stream output) per call, in every regime of p — the
// invariant the fast observer's per-agent draw prefetch relies on.
func (b *BinomialCDF) Sample(src *Source) int {
	return b.SampleU(src.Float64())
}

// SampleU inverts the tabulated CDF at u ∈ [0, 1): it is Sample with the
// uniform variate supplied by the caller, for consumers that draw their
// uniforms in bulk.
func (b *BinomialCDF) SampleU(u float64) int {
	// Binary search for the smallest k with cdf[k] > u.
	lo, hi := 0, b.n
	for lo < hi {
		mid := (lo + hi) / 2
		if b.cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CDF returns P(B ≤ k) for the tabulated law, with out-of-range k clamped.
func (b *BinomialCDF) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= b.n {
		return 1
	}
	return b.cdf[k]
}

// BinomialThresholds is BinomialCDF with the CDF mapped through
// UnitThreshold into 53-bit integer thresholds, so a variate inverts
// against raw generator outputs with integer compares only — no float
// conversion, no float compare — while remaining bit-exact:
// SampleRaw(raw) == SampleU(UnitFloat(raw)) for every raw uint64
// (UnitThreshold's defining property, m < T[k] ⟺ float64(m)/2^53 <
// cdf[k], applied entry-wise). The lockstep replicate engine tabulates
// one of these per lane per round and scans it inline in its agent
// kernel.
//
// The thresholds are nondecreasing over [0, n) — the accumulated CDF
// only grows — and T[n] = 2^53 strictly exceeds every 53-bit mantissa,
// so the direction-adaptive scans below always terminate in range.
// (Accumulation can overshoot 1 just before the forced-to-1 last entry,
// making T[n−1] exceed T[n] by a few units; every mantissa lies below
// both, so the "smallest k with mant < T[k]" predicate stays monotone
// and the scans agree with SampleU exactly.) The scan direction follows
// the mass: for p ≤ 1/2
// the variate concentrates near 0 and an upward scan takes an expected
// O(np+1) compares; for p > 1/2 a downward scan from n takes
// O(n(1−p)+1). At the degenerate ends (the absorption-tail rounds,
// p ∈ {0, 1}) a sample is a single compare.
type BinomialThresholds struct {
	cdf BinomialCDF
	t   []uint64 // t[k] = UnitThreshold(cdf[k]); t[n] = 2^53
	// guide[b] is the smallest k with t[k] > b·2^45 — a starting index
	// for the upward scan bucketed by the top guideBits bits of the
	// 53-bit mantissa. Because "smallest k with t[k] > X" is
	// nondecreasing in X, guide[b] never overshoots the answer for any
	// mantissa in bucket b, and the remaining scan takes an expected
	// n/2^guideBits extra compares — below one for every ℓ = O(log
	// population) table.
	guide [1 << guideBits]uint32
}

// guideBits is the number of top mantissa bits indexing the scan guide
// table.
const guideBits = 8

// GuideTable is the bucketed scan-start table exposed by Guide.
type GuideTable = [1 << guideBits]uint32

// NewBinomialThresholds builds the threshold table for Binomial(n, p).
func NewBinomialThresholds(n int, p float64) *BinomialThresholds {
	b := &BinomialThresholds{}
	b.Reset(n, p)
	return b
}

// Reset retabulates the thresholds for Binomial(n, p) in place, reusing
// both backing arrays whenever capacity allows. A zero-value
// BinomialThresholds is valid Reset input.
func (b *BinomialThresholds) Reset(n int, p float64) {
	b.cdf.Reset(n, p)
	t := b.t
	if cap(t) < n+1 {
		t = make([]uint64, n+1)
	}
	t = t[:n+1]
	for k := 0; k <= n; k++ {
		t[k] = UnitThreshold(b.cdf.cdf[k])
	}
	b.t = t
	k := 0
	for g := range b.guide {
		// t[n] = 2^53 strictly exceeds every bucket base, so k stays in
		// range without an explicit bound.
		for t[k] <= uint64(g)<<(53-guideBits) {
			k++
		}
		b.guide[g] = uint32(k)
	}
}

// N returns the number of trials of the tabulated law.
func (b *BinomialThresholds) N() int { return b.cdf.n }

// P returns the success probability of the tabulated law.
func (b *BinomialThresholds) P() float64 { return b.cdf.p }

// Thresholds exposes the threshold table (t[k] = UnitThreshold(P(B ≤
// k)), length N()+1) for consumers that inline ScanUp/ScanDown into
// their own kernels. The slice is owned by the sampler and valid until
// the next Reset.
func (b *BinomialThresholds) Thresholds() []uint64 { return b.t }

// ScanUp reports whether SampleRaw should scan upward from 0 (p ≤ 1/2)
// rather than downward from N.
func (b *BinomialThresholds) ScanUp() bool { return b.cdf.p <= 0.5 }

// Guide exposes the bucketed scan-start table: for a 53-bit mantissa,
// guide[mant >> (53−guideBits)] is a lower bound on the inversion
// answer, so an upward scan from it returns SampleRaw's exact result in
// an expected ~1 compare. The array is owned by the sampler and valid
// until the next Reset; consumers inlining the scan pair it with
// Thresholds.
func (b *BinomialThresholds) Guide() *GuideTable { return &b.guide }

// GuideShift is the right-shift mapping a 53-bit mantissa to its Guide
// bucket.
const GuideShift = 53 - guideBits

// Sample draws one variate using the source, consuming exactly one
// stream output per call — the same invariant as BinomialCDF.Sample,
// and the same value: Sample here equals SampleU(src.Float64()) on the
// equal-parameter BinomialCDF.
func (b *BinomialThresholds) Sample(src *Source) int {
	return b.SampleRaw(src.Uint64())
}

// SampleRaw inverts the tabulated law at a raw 64-bit stream output:
// it returns the smallest k with raw>>11 < t[k], which is exactly
// BinomialCDF.SampleU(UnitFloat(raw)) — the smallest k with cdf[k] >
// UnitFloat(raw) — by UnitThreshold's equivalence.
func (b *BinomialThresholds) SampleRaw(raw uint64) int {
	mant := raw >> 11
	t := b.t
	if b.cdf.p <= 0.5 {
		k := 0
		for mant >= t[k] {
			k++
		}
		return k
	}
	k := b.cdf.n
	for k > 0 && mant < t[k-1] {
		k--
	}
	return k
}
