package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// checkBinomialMoments draws `trials` variates of Binomial(n, p) and
// verifies the sample mean and variance against the exact moments within
// a z-score tolerance.
func checkBinomialMoments(t *testing.T, s *Source, n int, p float64, trials int) {
	t.Helper()
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		k := s.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %v) = %d out of range", n, p, k)
		}
		f := float64(k)
		sum += f
		sum2 += f * f
	}
	tf := float64(trials)
	mean := sum / tf
	variance := sum2/tf - mean*mean
	wantMean := float64(n) * p
	wantVar := float64(n) * p * (1 - p)
	// Standard error of the mean is sqrt(var/trials); allow 5σ.
	seMean := math.Sqrt(wantVar/tf) + 1e-12
	if math.Abs(mean-wantMean) > 5*seMean+1e-9 {
		t.Fatalf("Binomial(%d, %v): mean = %v, want %v (±%v)", n, p, mean, wantMean, 5*seMean)
	}
	// Variance of the sample variance ≈ 2·var²/trials for near-normal laws;
	// use a generous 6σ band plus slack for skew.
	seVar := math.Sqrt(2/tf)*wantVar + wantVar/10 + 1e-12
	if wantVar > 0 && math.Abs(variance-wantVar) > 6*seVar {
		t.Fatalf("Binomial(%d, %v): variance = %v, want %v", n, p, variance, wantVar)
	}
}

func TestBinomialMomentsAllRegimes(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{1, 0.5},           // Bernoulli path
		{10, 0.3},          // Bernoulli path
		{16, 0.9},          // symmetry + Bernoulli
		{100, 0.05},        // inversion path (np = 5)
		{200, 0.02},        // inversion path
		{1000, 0.4},        // BTRS path
		{100000, 0.3},      // BTRS path
		{100000, 0.97},     // symmetry + BTRS
		{10000000, 0.0002}, // inversion with huge n, small mean
	}
	for _, tc := range cases {
		s := New(uint64(tc.n)*7919 + uint64(tc.p*1e6))
		checkBinomialMoments(t, s, tc.n, tc.p, 20000)
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	s := New(1)
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := s.Binomial(10, 0); got != 0 {
		t.Fatalf("Binomial(10, 0) = %d", got)
	}
	if got := s.Binomial(10, 1); got != 10 {
		t.Fatalf("Binomial(10, 1) = %d", got)
	}
	if got := s.Binomial(1000000, 1); got != 1000000 {
		t.Fatalf("Binomial(1e6, 1) = %d", got)
	}
}

func TestBinomialPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, .5) did not panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

func TestBinomialRangeProperty(t *testing.T) {
	s := New(17)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 5000)
		p := float64(pRaw) / math.MaxUint16
		k := s.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBinomialExactSmallDistribution checks the full distribution for a
// small case against exact probabilities with a chi-square-style bound.
func TestBinomialExactSmallDistribution(t *testing.T) {
	const (
		n      = 8
		p      = 0.37
		trials = 400000
	)
	s := New(23)
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		counts[s.Binomial(n, p)]++
	}
	for k := 0; k <= n; k++ {
		want := math.Exp(logBinomPMF(n, k, p)) * trials
		if want < 20 {
			continue // too rare for a tight frequency check
		}
		if diff := math.Abs(float64(counts[k]) - want); diff > 6*math.Sqrt(want) {
			t.Fatalf("Binomial(%d,%v): P(k=%d) empirical %d, want ≈%v", n, p, k, counts[k], want)
		}
	}
}

func TestLogBinomPMFNormalization(t *testing.T) {
	for _, n := range []int{1, 5, 30, 200} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.77, 0.99} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += math.Exp(logBinomPMF(n, k, p))
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("pmf(n=%d, p=%v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestLogBinomPMFEdges(t *testing.T) {
	if got := logBinomPMF(5, -1, 0.5); !math.IsInf(got, -1) {
		t.Fatalf("pmf(k=-1) = %v, want -Inf", got)
	}
	if got := logBinomPMF(5, 6, 0.5); !math.IsInf(got, -1) {
		t.Fatalf("pmf(k>n) = %v, want -Inf", got)
	}
	if got := logBinomPMF(5, 0, 0); got != 0 {
		t.Fatalf("pmf(k=0,p=0) = %v, want 0 (= log 1)", got)
	}
	if got := logBinomPMF(5, 5, 1); got != 0 {
		t.Fatalf("pmf(k=n,p=1) = %v, want 0", got)
	}
	if got := logBinomPMF(5, 3, 0); !math.IsInf(got, -1) {
		t.Fatalf("pmf(k=3,p=0) = %v, want -Inf", got)
	}
}

func TestBinomialCDFTableMatchesExact(t *testing.T) {
	for _, n := range []int{1, 7, 33, 64} {
		for _, p := range []float64{0, 0.001, 0.25, 0.5, 0.93, 1} {
			tab := NewBinomialCDF(n, p)
			cum := 0.0
			for k := 0; k <= n; k++ {
				cum += math.Exp(logBinomPMF(n, k, p))
				got := tab.CDF(k)
				want := math.Min(cum, 1)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("CDF(n=%d,p=%v,k=%d) = %v, want %v", n, p, k, got, want)
				}
			}
			if tab.CDF(-1) != 0 {
				t.Fatalf("CDF(-1) = %v", tab.CDF(-1))
			}
			if tab.CDF(n+5) != 1 {
				t.Fatalf("CDF(n+5) = %v", tab.CDF(n+5))
			}
		}
	}
}

func TestBinomialCDFSamplerAgreesWithDirect(t *testing.T) {
	const (
		n      = 24
		p      = 0.41
		trials = 300000
	)
	tab := NewBinomialCDF(n, p)
	s := New(31)
	counts := make([]int, n+1)
	for i := 0; i < trials; i++ {
		k := tab.Sample(s)
		if k < 0 || k > n {
			t.Fatalf("table sample %d out of range", k)
		}
		counts[k]++
	}
	for k := 0; k <= n; k++ {
		want := math.Exp(logBinomPMF(n, k, p)) * trials
		if want < 20 {
			continue
		}
		if diff := math.Abs(float64(counts[k]) - want); diff > 6*math.Sqrt(want) {
			t.Fatalf("table sampler: P(k=%d) empirical %d, want ≈%v", k, counts[k], want)
		}
	}
}

func TestBinomialCDFAccessors(t *testing.T) {
	tab := NewBinomialCDF(12, 0.3)
	if tab.N() != 12 || tab.P() != 0.3 {
		t.Fatalf("accessors: N=%d P=%v", tab.N(), tab.P())
	}
}

func TestBinomialCDFClampsP(t *testing.T) {
	lo := NewBinomialCDF(4, -0.2)
	if lo.P() != 0 {
		t.Fatalf("p clamp low: %v", lo.P())
	}
	hi := NewBinomialCDF(4, 1.7)
	if hi.P() != 1 {
		t.Fatalf("p clamp high: %v", hi.P())
	}
	s := New(2)
	if k := lo.Sample(s); k != 0 {
		t.Fatalf("sample of B(4,0) = %d", k)
	}
	if k := hi.Sample(s); k != 4 {
		t.Fatalf("sample of B(4,1) = %d", k)
	}
}

func TestBinomialCDFPanicsOnNegativeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBinomialCDF(-1, .5) did not panic")
		}
	}()
	NewBinomialCDF(-1, 0.5)
}

// TestBinomialThresholdsMatchesSampleU is the bit-identity foundation of
// the lockstep replicate engine: for every raw stream output,
// SampleRaw(raw) must equal the float path's SampleU(UnitFloat(raw)) —
// both scan directions, every p regime (degenerate ends, skewed
// log-space tails, the p > 1/2 downward scan), and under in-place Reset
// reuse.
func TestBinomialThresholdsMatchesSampleU(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{1, 0.5},
		{7, 0},
		{7, 1},
		{7, 1e-12},
		{7, 1 - 1e-12},
		{36, 0.000244},
		{36, 0.0093},
		{36, 0.288},
		{36, 0.5},
		{36, 0.7},
		{36, 0.999},
		{64, 0.25},
		{200, 0.04},
		{200, 0.96},
		{2000, 1e-8}, // log-space tabulation path
	}
	var thr BinomialThresholds // exercise zero-value Reset + reuse
	s := New(97)
	for _, tc := range cases {
		cdf := NewBinomialCDF(tc.n, tc.p)
		thr.Reset(tc.n, tc.p)
		if thr.N() != tc.n || thr.P() != cdf.P() {
			t.Fatalf("accessors: N=%d P=%v, want %d %v", thr.N(), thr.P(), tc.n, cdf.P())
		}
		if got := len(thr.Thresholds()); got != tc.n+1 {
			t.Fatalf("n=%d p=%v: %d thresholds, want %d", tc.n, tc.p, got, tc.n+1)
		}
		// Structured extremes plus a random sweep of raw outputs.
		raws := []uint64{0, 1, 1 << 11, (1 << 11) - 1, ^uint64(0), ^uint64(0) - (1<<11 - 1), 1<<63 + 12345}
		for i := 0; i < 4000; i++ {
			raws = append(raws, s.Uint64())
		}
		for _, raw := range raws {
			want := cdf.SampleU(UnitFloat(raw))
			if got := thr.SampleRaw(raw); got != want {
				t.Fatalf("n=%d p=%v raw=%#x: SampleRaw=%d, SampleU=%d", tc.n, tc.p, raw, got, want)
			}
		}
	}
}

// TestBinomialThresholdsSampleStream checks that Sample consumes exactly
// one stream output per call and yields the value the float sampler
// would draw from the same stream position.
func TestBinomialThresholdsSampleStream(t *testing.T) {
	thr := NewBinomialThresholds(36, 0.288)
	cdf := NewBinomialCDF(36, 0.288)
	a, b := New(41), New(41)
	for i := 0; i < 1000; i++ {
		ka := thr.Sample(a)
		kb := cdf.Sample(b)
		if ka != kb {
			t.Fatalf("draw %d: thresholds %d, cdf %d", i, ka, kb)
		}
	}
	if *a != *b {
		t.Fatal("Sample left the two streams in different states")
	}
}

// TestBinomialThresholdsMonotone checks the scan invariants: thresholds
// nondecreasing over [0, n) and the final entry exactly 2^53 (strictly
// above every 53-bit mantissa, so scans terminate in range). The forced
// last entry may sit below an accumulation-overshot t[n−1]; both exceed
// every mantissa, so the scans stay exact.
func TestBinomialThresholdsMonotone(t *testing.T) {
	for _, p := range []float64{0, 0.001, 0.3, 0.5, 0.51, 0.97, 1} {
		thr := NewBinomialThresholds(48, p)
		ts := thr.Thresholds()
		for k := 1; k < len(ts)-1; k++ {
			if ts[k] < ts[k-1] {
				t.Fatalf("p=%v: t[%d]=%d < t[%d]=%d", p, k, ts[k], k-1, ts[k-1])
			}
		}
		if ts[len(ts)-1] != 1<<53 {
			t.Fatalf("p=%v: t[n]=%d, want 2^53", p, ts[len(ts)-1])
		}
		if thr.ScanUp() != (thr.P() <= 0.5) {
			t.Fatalf("p=%v: ScanUp=%v", p, thr.ScanUp())
		}
	}
}

func TestBinomialThresholdsGuide(t *testing.T) {
	// The guide-started upward scan — the lockstep kernel's inlined
	// inversion — must return SampleRaw's exact answer for every raw
	// output, and every guide entry must lower-bound its bucket.
	src := New(97)
	for _, c := range []struct {
		n int
		p float64
	}{
		{36, 0.000244}, {36, 0.0093}, {36, 0.288}, {36, 0.5}, {36, 0.97},
		{1, 0.3}, {48, 0.001}, {2000, 1e-8}, {300, 0.9999},
	} {
		thr := NewBinomialThresholds(c.n, c.p)
		ts := thr.Thresholds()
		g := thr.Guide()
		for b, k0 := range g {
			base := uint64(b) << GuideShift
			if want := thr.SampleRaw(base << 11); int(k0) != want {
				t.Fatalf("n=%d p=%v: guide[%d]=%d, bucket base inverts to %d", c.n, c.p, b, k0, want)
			}
		}
		raws := []uint64{0, 1, ^uint64(0), 1 << 63, 1<<53 - 1}
		for i := 0; i < 4000; i++ {
			raws = append(raws, src.Uint64())
		}
		for _, raw := range raws {
			mant := raw >> 11
			k := int(g[mant>>GuideShift])
			for mant >= ts[k] {
				k++
			}
			if want := thr.SampleRaw(raw); k != want {
				t.Fatalf("n=%d p=%v raw=%#x: guided scan %d, SampleRaw %d", c.n, c.p, raw, k, want)
			}
		}
	}
}

func BenchmarkBinomialSmall(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Binomial(30, 0.4)
	}
	_ = sink
}

func BenchmarkBinomialBTRS(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Binomial(1000000, 0.3)
	}
	_ = sink
}

func BenchmarkBinomialCDFSample(b *testing.B) {
	tab := NewBinomialCDF(30, 0.4)
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = tab.Sample(s)
	}
	_ = sink
}
