package rng

import "math/bits"

// StepJump is a precomputed m-step advance of the xoshiro256★★ state.
//
// The generator's state transition is linear over GF(2) — every update
// is a XOR, shift, or rotation — so advancing m steps is a fixed
// 256×256 bit matrix, independent of the state it is applied to.
// StepJump stores that matrix byte-sliced: one 256-entry table per
// state byte, each entry the XOR contribution of that byte value to the
// advanced state. Applying it is 32 independent table loads and XORs,
// regardless of m.
//
// Hot loops use it when a block of m outputs must be consumed but never
// inspected — the graph observer's homogeneous-row rounds, whose count
// is known from the row alone — turning a serial m-step walk into a
// constant-cost jump with the exact same resulting state as m Uint64
// calls.
type StepJump struct {
	m   int
	tab [32][256][4]uint64
}

// Steps returns the number of stream outputs one Apply consumes.
func (j *StepJump) Steps() int { return j.m }

// NewStepJump builds the m-step jump. Construction runs 256·m serial
// state steps (one per basis bit), so it is meant to be built once per
// executor and shared read-only across shards.
func NewStepJump(m int) *StepJump {
	if m < 0 {
		panic("rng: NewStepJump called with negative m")
	}
	j := &StepJump{m: m}
	// Advance each unit state to obtain the matrix columns. Linearity
	// holds on the full state space (the all-zero state maps to itself),
	// so the columns combine by XOR for arbitrary states.
	var cols [256][4]uint64
	for bit := 0; bit < 256; bit++ {
		s := unitState(bit)
		s.Advance(m)
		cols[bit] = [4]uint64{s.s0, s.s1, s.s2, s.s3}
	}
	j.fillTab(&cols)
	return j
}

// unitState returns the Source whose 256-bit state has only the given
// bit set.
func unitState(bit int) Source {
	var s Source
	switch bit >> 6 {
	case 0:
		s.s0 = 1 << uint(bit&63)
	case 1:
		s.s1 = 1 << uint(bit&63)
	case 2:
		s.s2 = 1 << uint(bit&63)
	case 3:
		s.s3 = 1 << uint(bit&63)
	}
	return s
}

// fillTab expands the matrix columns into the byte-sliced lookup form:
// tab[bp][b] is the XOR of the columns selected by the bits of b within
// byte position bp, built incrementally from the entry one bit smaller.
func (j *StepJump) fillTab(cols *[256][4]uint64) {
	for bp := 0; bp < 32; bp++ {
		for b := 1; b < 256; b++ {
			lsb := b & -b
			c := &cols[bp*8+bits.TrailingZeros(uint(lsb))]
			p := &j.tab[bp][b^lsb]
			j.tab[bp][b] = [4]uint64{p[0] ^ c[0], p[1] ^ c[1], p[2] ^ c[2], p[3] ^ c[3]}
		}
	}
}

// Square returns the jump advancing twice as many steps. The doubled
// matrix's columns are the images of the unit states under two
// applications of j, so construction costs 512 table applications
// instead of 256·m serial steps — squaring is how long jumps stay
// affordable.
func (j *StepJump) Square() *StepJump {
	out := &StepJump{m: 2 * j.m}
	var cols [256][4]uint64
	for bit := 0; bit < 256; bit++ {
		s := unitState(bit)
		j.Apply(&s)
		j.Apply(&s)
		cols[bit] = [4]uint64{s.s0, s.s1, s.s2, s.s3}
	}
	out.fillTab(&cols)
	return out
}

// JumpLadder holds the powers-of-two multiples of a base jump:
// levels[i] advances base·2^i steps. It turns an arbitrary pending
// advance of r·base steps into popcount(r) table applications, which is
// what makes *deferring* stream advances pay: a consumer that skips a
// round's worth of outputs increments a counter instead of touching the
// generator, and the accumulated debt settles in O(log r) when the
// stream is next read — or never, if it never is.
type JumpLadder struct {
	levels []*StepJump
}

// NewJumpLadder builds depth levels over base (depth ≥ 1; level 0 is
// base itself). Rungs build by repeated squaring, ~30µs each, so a
// ladder is meant to be built once per executor and shared read-only.
func NewJumpLadder(base *StepJump, depth int) *JumpLadder {
	if depth < 1 {
		panic("rng: NewJumpLadder called with depth < 1")
	}
	l := &JumpLadder{levels: make([]*StepJump, depth)}
	l.levels[0] = base
	for i := 1; i < depth; i++ {
		l.levels[i] = l.levels[i-1].Square()
	}
	return l
}

// BaseSteps returns the stream outputs one unit of Flush debt consumes.
func (l *JumpLadder) BaseSteps() int { return l.levels[0].m }

// Flush advances s by exactly units·BaseSteps() outputs: bit i of units
// applies level i. Debt beyond the top rung settles by repeated top
// applications — two per leftover unit-of-2^depth, so even a debt far
// past the ladder stays O(debt >> depth).
func (l *JumpLadder) Flush(s *Source, units uint64) {
	for i := 0; i < len(l.levels) && units != 0; i++ {
		if units&1 != 0 {
			l.levels[i].Apply(s)
		}
		units >>= 1
	}
	if units != 0 {
		top := l.levels[len(l.levels)-1]
		for k := units << 1; k > 0; k-- {
			top.Apply(s)
		}
	}
}

// Apply advances s by exactly m steps: the state afterwards is
// bit-identical to m Uint64 calls with the results discarded.
func (j *StepJump) Apply(s *Source) {
	var r0, r1, r2, r3 uint64
	x := s.s0
	for k := 0; k < 8; k++ {
		e := &j.tab[k][x&0xff]
		r0 ^= e[0]
		r1 ^= e[1]
		r2 ^= e[2]
		r3 ^= e[3]
		x >>= 8
	}
	x = s.s1
	for k := 8; k < 16; k++ {
		e := &j.tab[k][x&0xff]
		r0 ^= e[0]
		r1 ^= e[1]
		r2 ^= e[2]
		r3 ^= e[3]
		x >>= 8
	}
	x = s.s2
	for k := 16; k < 24; k++ {
		e := &j.tab[k][x&0xff]
		r0 ^= e[0]
		r1 ^= e[1]
		r2 ^= e[2]
		r3 ^= e[3]
		x >>= 8
	}
	x = s.s3
	for k := 24; k < 32; k++ {
		e := &j.tab[k][x&0xff]
		r0 ^= e[0]
		r1 ^= e[1]
		r2 ^= e[2]
		r3 ^= e[3]
		x >>= 8
	}
	s.s0, s.s1, s.s2, s.s3 = r0, r1, r2, r3
}
