package rng

import "testing"

// drain returns the next k outputs of a copy-independent source.
func drain(s *Source, k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Uint64()
	}
	return out
}

// TestAdvanceMatchesSerialDraws: Advance(m) must leave the state exactly
// where m ignored Uint64 calls would, across the unrolled and remainder
// paths.
func TestAdvanceMatchesSerialDraws(t *testing.T) {
	for _, m := range []int{0, 1, 2, 3, 4, 5, 7, 8, 80, 257} {
		a := New(uint64(m) + 9)
		b := *a
		a.Advance(m)
		for i := 0; i < m; i++ {
			b.Uint64()
		}
		if got, want := drain(a, 4), drain(&b, 4); got[0] != want[0] || got[3] != want[3] {
			t.Fatalf("Advance(%d) diverged from %d serial draws", m, m)
		}
	}
}

// TestStepJumpMatchesAdvance: one table application must equal an
// m-step serial advance for every state it is applied to.
func TestStepJumpMatchesAdvance(t *testing.T) {
	for _, m := range []int{1, 2, 3, 80, 161} {
		j := NewStepJump(m)
		if j.Steps() != m {
			t.Fatalf("NewStepJump(%d).Steps() = %d", m, j.Steps())
		}
		for seed := uint64(0); seed < 5; seed++ {
			a := New(seed)
			b := *a
			j.Apply(a)
			b.Advance(m)
			if a.Uint64() != b.Uint64() {
				t.Fatalf("StepJump(%d) at seed %d diverged from Advance", m, seed)
			}
		}
	}
}

// TestSquareDoublesSteps: squaring must produce the exact 2m-step jump,
// not merely one of the same length.
func TestSquareDoublesSteps(t *testing.T) {
	j := NewStepJump(7)
	sq := j.Square()
	if sq.Steps() != 14 {
		t.Fatalf("Square of 7 steps reports %d", sq.Steps())
	}
	a := New(3)
	b := *a
	sq.Apply(a)
	b.Advance(14)
	if a.Uint64() != b.Uint64() {
		t.Fatal("squared jump diverged from a 14-step advance")
	}
}

// TestJumpLadderFlushMatchesSerial: Flush(units) must consume exactly
// units·BaseSteps outputs for debts below, at, and far beyond the
// ladder's top rung.
func TestJumpLadderFlushMatchesSerial(t *testing.T) {
	const base, depth = 5, 3
	l := NewJumpLadder(NewStepJump(base), depth)
	if l.BaseSteps() != base {
		t.Fatalf("BaseSteps = %d, want %d", l.BaseSteps(), base)
	}
	// 7 = all rungs; 8 and 9 exercise the leftover path (depth covers
	// units < 8); 41 leaves a large multi-application remainder.
	for _, units := range []uint64{0, 1, 2, 3, 7, 8, 9, 41} {
		a := New(100 + units)
		b := *a
		l.Flush(a, units)
		b.Advance(int(units) * base)
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Flush(%d) diverged from Advance(%d)", units, units*base)
		}
	}
}

// TestNewJumpLadderPanicsOnZeroDepth guards the constructor contract.
func TestNewJumpLadderPanicsOnZeroDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewJumpLadder(base, 0) did not panic")
		}
	}()
	NewJumpLadder(NewStepJump(1), 0)
}

// TestCountPackedMatchesPerDraw: the fused counting kernel must agree
// with the literal per-draw loop — same count, same stream position —
// for every power-of-two degree, including the degenerate shift = 64
// (degree 1: every output reads bit 0).
func TestCountPackedMatchesPerDraw(t *testing.T) {
	for _, deg := range []uint{1, 2, 8, 64} {
		shift := uint(64)
		for d := deg; d > 1; d >>= 1 {
			shift--
		}
		for _, m := range []int{0, 1, 3, 4, 9, 80} {
			a := New(uint64(deg)*1000 + uint64(m))
			b := *a
			row := a.Uint64() // arbitrary opinion bits; consume from both
			b.Uint64()
			got := a.CountPacked(row, shift, m)
			want := 0
			for i := 0; i < m; i++ {
				want += int(row >> (b.Uint64() >> shift) & 1)
			}
			if got != want {
				t.Fatalf("deg %d m %d: CountPacked = %d, per-draw = %d", deg, m, got, want)
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("deg %d m %d: CountPacked left the stream misaligned", deg, m)
			}
		}
	}
}

// TestCountPackedBlocksMatchesCountPacked: the multi-block form (the
// Mul64+LUT kernel for shift ≥ 58 and the per-block fallback below)
// must equal consecutive single-block counts on the same stream.
func TestCountPackedBlocksMatchesCountPacked(t *testing.T) {
	for _, shift := range []uint{64, 61, 58, 57} { // 57: the sub-58 fallback
		for _, blocks := range []int{1, 2, 5} {
			for _, m := range []int{1, 4, 7, 80} {
				a := New(uint64(shift)<<8 ^ uint64(blocks*100+m))
				b := *a
				row := a.Uint64()
				b.Uint64()
				counts := make([]int, blocks)
				a.CountPackedBlocks(row, shift, m, counts)
				for blk := 0; blk < blocks; blk++ {
					if want := b.CountPacked(row, shift, m); counts[blk] != want {
						t.Fatalf("shift %d blocks %d m %d: block %d = %d, want %d",
							shift, blocks, m, blk, counts[blk], want)
					}
				}
				if a.Uint64() != b.Uint64() {
					t.Fatalf("shift %d blocks %d m %d: streams misaligned", shift, blocks, m)
				}
			}
		}
	}
}

// TestFirstRawMatchesFullSeed: the seeding shortcut must reproduce the
// constructed generator's first outputs exactly.
func TestFirstRawMatchesFullSeed(t *testing.T) {
	for seed := uint64(0); seed < 1000; seed += 37 {
		if got, want := FirstRaw(seed), New(seed).Uint64(); got != want {
			t.Fatalf("FirstRaw(%d) = %x, New(%d).Uint64() = %x", seed, got, seed, want)
		}
		if got, want := FirstUnit(seed), New(seed).Float64(); got != want {
			t.Fatalf("FirstUnit(%d) = %v, New(%d).Float64() = %v", seed, got, seed, want)
		}
	}
}

// TestUnitThresholdEquivalence: integer comparison against the
// threshold must decide exactly as the float comparison it replaces,
// for mantissas straddling each probability's boundary.
func TestUnitThresholdEquivalence(t *testing.T) {
	for _, p := range []float64{0, 1e-12, 0.2, 0.5, 0.999999, 1} {
		thr := UnitThreshold(p)
		for _, delta := range []int64{-2, -1, 0, 1, 2} {
			m := int64(thr) + delta
			if m < 0 || m >= 1<<53 {
				continue
			}
			intDecision := uint64(m) < thr
			floatDecision := float64(m)/(1<<53) < p
			if intDecision != floatDecision {
				t.Fatalf("p = %v mantissa %d: integer says %v, float says %v",
					p, m, intDecision, floatDecision)
			}
		}
	}
	src := New(11)
	thr := UnitThreshold(0.3)
	for i := 0; i < 4096; i++ {
		u := src.Uint64()
		if (u>>11 < thr) != (UnitFloat(u) < 0.3) {
			t.Fatalf("raw %x: threshold and UnitFloat comparisons disagree", u)
		}
	}
}

func BenchmarkStepJumpApply(b *testing.B) {
	j := NewStepJump(80)
	s := New(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.Apply(s)
	}
}

func BenchmarkAdvance80(b *testing.B) {
	s := New(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Advance(80)
	}
}

func BenchmarkCountPackedBlocks(b *testing.B) {
	s := New(42)
	row := s.Uint64()
	counts := make([]int, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountPackedBlocks(row, 61, 80, counts)
	}
}
