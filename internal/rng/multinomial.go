package rng

import (
	"fmt"
	"math"
)

// pmfMassTol bounds how far a pmf's total mass may stray from 1 before
// Multinomial refuses it: wide enough for accumulated float rounding
// over O(ℓ) categories, tight enough to catch genuinely deficient inputs
// (a truncated occupancy vector, an unnormalized weight vector), which
// would otherwise silently dump every leftover trial into the last
// category.
const pmfMassTol = 1e-9

// PMFMassError reports a probability vector whose total mass is not ~1.
// Multinomial panics with it so the aggregate hot path keeps its
// error-free signature while callers (and tests) can still recover and
// inspect the observed sum.
type PMFMassError struct {
	// Sum is the observed total mass of the rejected pmf.
	Sum float64
}

func (e *PMFMassError) Error() string {
	return fmt.Sprintf("rng: Multinomial pmf sums to %v, want 1 within %v", e.Sum, pmfMassTol)
}

// Multinomial distributes m trials over the categories of pmf by the
// standard conditional-binomial method: category i receives a
// Binomial(remaining, pmf[i]/restMass) draw, which yields an exact
// multinomial sample in O(len(pmf)) binomial draws. out must have
// len(pmf) entries (or be nil, in which case it is allocated); it is
// overwritten and returned. pmf entries must be non-negative and the
// vector must sum to 1 within pmfMassTol — deficient or superunitary
// mass panics with a *PMFMassError carrying the observed sum, rather
// than silently assigning the discrepancy to the last category. Mass
// discrepancies within the tolerance (ordinary float rounding) still
// land on the last category, which keeps the sampler exact.
func (s *Source) Multinomial(m int, pmf []float64, out []int) []int {
	if m < 0 {
		panic("rng: Multinomial with negative m")
	}
	if out == nil {
		out = make([]int, len(pmf))
	}
	if len(out) != len(pmf) {
		panic("rng: Multinomial with len(out) != len(pmf)")
	}
	total := 0.0
	for i, p := range pmf {
		if p < 0 || math.IsNaN(p) {
			panic(fmt.Sprintf("rng: Multinomial pmf[%d] = %v", i, p))
		}
		total += p
	}
	if math.Abs(total-1) > pmfMassTol {
		panic(&PMFMassError{Sum: total})
	}
	for i := range out {
		out[i] = 0
	}
	remaining := m
	restMass := 1.0
	for i, p := range pmf {
		if remaining == 0 {
			break
		}
		if i == len(pmf)-1 {
			out[i] = remaining
			break
		}
		cond := 0.0
		if restMass > 0 {
			cond = p / restMass
		}
		if cond >= 1 {
			out[i] = remaining
			remaining = 0
			break
		}
		k := s.Binomial(remaining, cond)
		out[i] = k
		remaining -= k
		restMass -= p
	}
	return out
}
