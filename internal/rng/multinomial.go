package rng

// Multinomial distributes m trials over the categories of pmf by the
// standard conditional-binomial method: category i receives a
// Binomial(remaining, pmf[i]/restMass) draw, which yields an exact
// multinomial sample in O(len(pmf)) binomial draws. out must have
// len(pmf) entries (or be nil, in which case it is allocated); it is
// overwritten and returned. pmf must be non-negative and sum to ~1; any
// trailing probability shortfall from float rounding is assigned to the
// last category.
func (s *Source) Multinomial(m int, pmf []float64, out []int) []int {
	if m < 0 {
		panic("rng: Multinomial with negative m")
	}
	if out == nil {
		out = make([]int, len(pmf))
	}
	if len(out) != len(pmf) {
		panic("rng: Multinomial with len(out) != len(pmf)")
	}
	for i := range out {
		out[i] = 0
	}
	remaining := m
	restMass := 1.0
	for i, p := range pmf {
		if remaining == 0 {
			break
		}
		if i == len(pmf)-1 {
			out[i] = remaining
			break
		}
		cond := 0.0
		if restMass > 0 {
			cond = p / restMass
		}
		if cond >= 1 {
			out[i] = remaining
			remaining = 0
			break
		}
		k := s.Binomial(remaining, cond)
		out[i] = k
		remaining -= k
		restMass -= p
	}
	return out
}
