package rng

import (
	"math"
	"testing"
)

func TestMultinomialConserves(t *testing.T) {
	src := New(1)
	pmf := []float64{0.1, 0.3, 0.4, 0.2}
	for _, m := range []int{0, 1, 7, 1000, 1 << 20} {
		out := src.Multinomial(m, pmf, nil)
		sum := 0
		for _, k := range out {
			if k < 0 {
				t.Fatalf("negative count in %v", out)
			}
			sum += k
		}
		if sum != m {
			t.Fatalf("Multinomial(%d) split into %d trials: %v", m, sum, out)
		}
	}
}

func TestMultinomialMeans(t *testing.T) {
	src := New(2)
	pmf := []float64{0.05, 0.25, 0.5, 0.2}
	const (
		m      = 1000
		trials = 5000
	)
	sums := make([]float64, len(pmf))
	out := make([]int, len(pmf))
	for i := 0; i < trials; i++ {
		src.Multinomial(m, pmf, out)
		for j, k := range out {
			sums[j] += float64(k)
		}
	}
	for j, p := range pmf {
		mean := sums[j] / trials
		want := p * m
		// 6σ band for the per-trial count across `trials` repetitions.
		tol := 6 * math.Sqrt(m*p*(1-p)/trials)
		if math.Abs(mean-want) > tol {
			t.Fatalf("category %d mean %v, want %v ± %v", j, mean, want, tol)
		}
	}
}

func TestMultinomialDegenerate(t *testing.T) {
	src := New(3)
	// All mass on the first category: everything lands there.
	out := src.Multinomial(100, []float64{1, 0, 0}, nil)
	if out[0] != 100 || out[1] != 0 || out[2] != 0 {
		t.Fatalf("degenerate split %v", out)
	}
	// Single category.
	out = src.Multinomial(42, []float64{1}, nil)
	if out[0] != 42 {
		t.Fatalf("single-category split %v", out)
	}
}

func TestMultinomialPanics(t *testing.T) {
	src := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative m")
		}
	}()
	src.Multinomial(-1, []float64{1}, nil)
}

// mustPMFMassPanic runs f and requires it to panic with a *PMFMassError
// reporting the given observed sum.
func mustPMFMassPanic(t *testing.T, wantSum float64, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for bad pmf mass")
		}
		err, ok := r.(*PMFMassError)
		if !ok {
			t.Fatalf("panicked with %T (%v), want *PMFMassError", r, r)
		}
		if math.Abs(err.Sum-wantSum) > 1e-12 {
			t.Fatalf("PMFMassError.Sum = %v, want %v", err.Sum, wantSum)
		}
		if err.Error() == "" {
			t.Fatal("empty PMFMassError message")
		}
	}()
	f()
}

// TestMultinomialRejectsDeficientPMF: a pmf that sums well below 1 (a
// truncated occupancy vector) must be rejected with the observed sum —
// not have all leftover trials silently dumped into the last category.
func TestMultinomialRejectsDeficientPMF(t *testing.T) {
	src := New(5)
	mustPMFMassPanic(t, 0.6, func() {
		src.Multinomial(100, []float64{0.1, 0.2, 0.3}, nil)
	})
}

// TestMultinomialRejectsSuperunitaryPMF: mass meaningfully above 1 is
// just as invalid.
func TestMultinomialRejectsSuperunitaryPMF(t *testing.T) {
	src := New(6)
	mustPMFMassPanic(t, 1.25, func() {
		src.Multinomial(100, []float64{0.5, 0.5, 0.25}, nil)
	})
}

// TestMultinomialRejectsNegativeEntry guards the per-entry validation.
func TestMultinomialRejectsNegativeEntry(t *testing.T) {
	src := New(7)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative pmf entry")
		}
	}()
	src.Multinomial(10, []float64{1.2, -0.2}, nil)
}

// TestMultinomialToleratesRounding: float-rounding-level mass error must
// keep working — the occupancy engines build pmfs whose sums miss 1 by a
// few ulps, and the shortfall still lands on the last category.
func TestMultinomialToleratesRounding(t *testing.T) {
	src := New(8)
	third := 1.0 / 3
	pmf := []float64{third, third, third} // sums to 1 − 1 ulp
	out := src.Multinomial(1000, pmf, nil)
	sum := 0
	for _, k := range out {
		sum += k
	}
	if sum != 1000 {
		t.Fatalf("rounded pmf split into %d trials: %v", sum, out)
	}
}
