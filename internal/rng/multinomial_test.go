package rng

import (
	"math"
	"testing"
)

func TestMultinomialConserves(t *testing.T) {
	src := New(1)
	pmf := []float64{0.1, 0.3, 0.4, 0.2}
	for _, m := range []int{0, 1, 7, 1000, 1 << 20} {
		out := src.Multinomial(m, pmf, nil)
		sum := 0
		for _, k := range out {
			if k < 0 {
				t.Fatalf("negative count in %v", out)
			}
			sum += k
		}
		if sum != m {
			t.Fatalf("Multinomial(%d) split into %d trials: %v", m, sum, out)
		}
	}
}

func TestMultinomialMeans(t *testing.T) {
	src := New(2)
	pmf := []float64{0.05, 0.25, 0.5, 0.2}
	const (
		m      = 1000
		trials = 5000
	)
	sums := make([]float64, len(pmf))
	out := make([]int, len(pmf))
	for i := 0; i < trials; i++ {
		src.Multinomial(m, pmf, out)
		for j, k := range out {
			sums[j] += float64(k)
		}
	}
	for j, p := range pmf {
		mean := sums[j] / trials
		want := p * m
		// 6σ band for the per-trial count across `trials` repetitions.
		tol := 6 * math.Sqrt(m*p*(1-p)/trials)
		if math.Abs(mean-want) > tol {
			t.Fatalf("category %d mean %v, want %v ± %v", j, mean, want, tol)
		}
	}
}

func TestMultinomialDegenerate(t *testing.T) {
	src := New(3)
	// All mass on the first category: everything lands there.
	out := src.Multinomial(100, []float64{1, 0, 0}, nil)
	if out[0] != 100 || out[1] != 0 || out[2] != 0 {
		t.Fatalf("degenerate split %v", out)
	}
	// Single category.
	out = src.Multinomial(42, []float64{1}, nil)
	if out[0] != 42 {
		t.Fatalf("single-category split %v", out)
	}
}

func TestMultinomialPanics(t *testing.T) {
	src := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative m")
		}
	}()
	src.Multinomial(-1, []float64{1}, nil)
}
