package rng

import "math/bits"

// Prefetch is a read-through buffer over a Source for hot paths that
// consume a known lower bound of stream outputs per phase (an agent's
// round of observation draws, say). Bind bulk-loads the next d outputs
// in one Source.Fill; the mirrored consuming calls (Uint64, Intn,
// Bernoulli) then read buffered values in order and fall through to the
// live Source once the buffer drains.
//
// The determinism contract: as long as the phase consumes at least d
// outputs through the Prefetch, every consuming call reads exactly the
// value it would have drawn from the Source directly, and the Source's
// state after the phase is identical to the unbatched path. (Fill is
// defined as exactly d consecutive Uint64 calls, and the fall-through
// continues the same stream.) Prefetching more than the guaranteed
// consumption would skip outputs and fork the stream — callers must
// size d from a lower bound, never an estimate.
//
// Unlike Batch, a Prefetch never discards stream outputs, so it is safe
// on persistent streams that outlive the phase (per-agent generators).
type Prefetch struct {
	src  *Source
	buf  []uint64
	pos  int
	have int
}

// Init sizes the buffer for phases of up to capacity outputs. It reuses
// the backing array when possible; Bind with a larger d than capacity
// panics, so callers size once at construction and stay allocation-free
// afterwards.
func (p *Prefetch) Init(capacity int) {
	if cap(p.buf) < capacity {
		p.buf = make([]uint64, capacity)
	}
	p.buf = p.buf[:capacity]
}

// Bind aims the Prefetch at src and bulk-loads the next d outputs.
// d = 0 loads nothing: every consuming call passes straight through to
// src, which keeps one code path for batched and unbatched callers.
func (p *Prefetch) Bind(src *Source, d int) {
	p.src = src
	if d > 0 {
		src.Fill(p.buf[:d])
	}
	p.pos, p.have = 0, d
}

// Uint64 returns the next stream output: buffered first, then live.
func (p *Prefetch) Uint64() uint64 {
	if p.pos < p.have {
		u := p.buf[p.pos]
		p.pos++
		return u
	}
	return p.src.Uint64()
}

// Float64 mirrors Source.Float64 exactly (one output, UnitFloat).
func (p *Prefetch) Float64() float64 {
	return UnitFloat(p.Uint64())
}

// Intn mirrors Source.Intn exactly — Lemire's nearly-divisionless
// bounded generation, consuming one output plus the same rejections the
// Source itself would draw. It panics if n <= 0.
func (p *Prefetch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	x := p.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = p.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Bernoulli mirrors Source.Bernoulli exactly, including consuming no
// output at all when prob lies outside (0, 1).
func (p *Prefetch) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Take returns the next m raw outputs as a buffer slice when they are
// all still buffered, advancing past them; ok = false leaves the
// position untouched. Hot loops that consume exactly one output per
// draw (power-of-two Intn bounds reject nothing) use it to run over a
// block without per-draw bounds checks.
func (p *Prefetch) Take(m int) ([]uint64, bool) {
	if m < 0 || p.pos+m > p.have {
		return nil, false
	}
	v := p.buf[p.pos : p.pos+m]
	p.pos += m
	return v, true
}
