// Package rng provides the deterministic pseudo-random substrate used by
// every simulation in this repository.
//
// All experiments are seeded, and per-trial / per-agent generators are
// derived from a root seed with SplitMix64, so any run is bit-for-bit
// reproducible. The core generator is xoshiro256★★, which is small, fast,
// and has a 2^256−1 period — comfortably enough for population simulations
// that draw billions of variates.
//
// The package deliberately does not depend on math/rand: the simulator
// needs cheap construction of many independent streams (one per agent or
// per trial) with well-defined cross-stream independence, and a stable
// algorithm whose output does not change across Go releases.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256★★ generator. The zero value is not
// usable; construct with New or NewFrom.
type Source struct {
	s0, s1, s2, s3 uint64
}

// SplitMix64 advances the given state by one step and returns the next
// 64-bit output. It is the standard seeding/stream-derivation function
// recommended by the xoshiro authors.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed via SplitMix64.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// StreamSeed derives the seed of child stream i from a root seed. It is
// the single stream-derivation rule of the repository: per-agent, per-trial
// and per-replicate generators are all seeded with StreamSeed(root, i), so
// NewFrom(root, i) ≡ New(StreamSeed(root, i)). Distinct stream indices
// yield decorrelated seeds, and the derivation depends only on (root, i) —
// never on execution order — which is what makes batch runs reproducible
// at any parallelism.
func StreamSeed(seed uint64, stream uint64) uint64 {
	st := seed
	_ = SplitMix64(&st)
	st ^= 0xd1342543de82ef95 * (stream + 1)
	return SplitMix64(&st)
}

// NewFrom derives a child Source from a parent seed and a stream index.
// It is the canonical way to obtain per-trial or per-agent generators:
// NewFrom(root, i) and NewFrom(root, j) are decorrelated for i ≠ j.
func NewFrom(seed uint64, stream uint64) *Source {
	return New(StreamSeed(seed, stream))
}

// Reseed resets the Source to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	st := seed
	s.s0 = SplitMix64(&st)
	s.s1 = SplitMix64(&st)
	s.s2 = SplitMix64(&st)
	s.s3 = SplitMix64(&st)
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// UnitFloat maps one 64-bit stream output to a uniform float64 in
// [0, 1) with 53 bits of precision. It is the single conversion every
// Float64-style draw in the repository uses — consumers that pre-fetch
// raw outputs (rng.Batch, the fast observer's per-agent prefetch) must
// apply exactly this function to stay bit-identical to a direct
// Float64 call.
func UnitFloat(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return UnitFloat(s.Uint64())
}

// Fill writes the next len(dst) outputs of the stream into dst. It is
// exactly equivalent to len(dst) consecutive Uint64 calls — same values,
// same order, same final generator state — but keeps the generator state
// in locals across the whole run, which is what the batched hot paths
// (Batch, the fast observer's per-agent prefetch) use to amortize
// per-draw overhead without changing any stream.
func (s *Source) Fill(dst []uint64) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// Advance discards the next m outputs of the stream: exactly equivalent
// to m Uint64 calls whose results are ignored, with the state kept in
// locals across the run. Batched consumers use it when a block's
// aggregate answer is known without inspecting the values (a packed-row
// count over a homogeneous row) but the stream must still move exactly
// as the per-draw path would.
func (s *Source) Advance(m int) {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	i := 0
	for ; i+4 <= m; i += 4 {
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	for ; i < m; i++ {
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// CountPacked draws the next m outputs and returns how many select a
// set bit of row when each output x is mapped to the bit index
// x >> shift. With shift = 64 − log₂(d) for a power-of-two d this is
// exactly m Lemire Intn(d) draws (a power-of-two bound never rejects)
// each reading one bit of a packed d-bit row — the graph observer's
// counting kernel, fused with the generator so the values never round-
// trip through memory. Consumes exactly m outputs.
//
// CountPackedBlocks is the same kernel with the two variable shifts
// traded for a multiply and a table load; this single-block form keeps
// the direct extraction, which wins when m is too small to amortize the
// table setup.
func (s *Source) CountPacked(row uint64, shift uint, m int) int {
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	var acc uint64
	i := 0
	for ; i+4 <= m; i += 4 {
		x0 := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		x1 := rotl(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		x2 := rotl(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		x3 := rotl(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		acc += row>>(x0>>shift)&1 + row>>(x1>>shift)&1 + row>>(x2>>shift)&1 + row>>(x3>>shift)&1
	}
	for ; i < m; i++ {
		x := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		acc += row >> (x >> shift) & 1
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
	return int(acc)
}

// CountPackedBlocks runs len(counts) consecutive CountPacked(row,
// shift, m) draws with a single state round-trip, storing each block's
// count. It consumes exactly len(counts)·m outputs — the whole round of
// a FixedDraws protocol on the fused graph path, counted at bind time.
//
// For rows of at most 64 bits (shift ≥ 58, every packed-row degree) the
// bit extraction runs through a per-call byte table indexed by the high
// Mul64 word — bit i of row at byte i, hi(x·2^k) ≡ x >> (64−k) — which
// replaces the hot loop's two variable shifts (CL-tied, multi-µop on
// amd64) with one widening multiply and one L1 load per output.
func (s *Source) CountPackedBlocks(row uint64, shift uint, m int, counts []int) {
	if shift < 58 {
		for b := range counts {
			counts[b] = s.CountPacked(row, shift, m)
		}
		return
	}
	var lut [64]byte
	deg := uint64(1)
	if shift < 64 {
		deg = 1 << (64 - shift)
	}
	for i := uint64(0); i < deg; i++ {
		lut[i] = byte(row >> i & 1)
	}
	s0, s1, s2, s3 := s.s0, s.s1, s.s2, s.s3
	for b := range counts {
		var acc uint64
		i := 0
		for ; i+4 <= m; i += 4 {
			x0 := rotl(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			x1 := rotl(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			x2 := rotl(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			x3 := rotl(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			h0, _ := bits.Mul64(x0, deg)
			h1, _ := bits.Mul64(x1, deg)
			h2, _ := bits.Mul64(x2, deg)
			h3, _ := bits.Mul64(x3, deg)
			acc += uint64(lut[h0&63]) + uint64(lut[h1&63]) + uint64(lut[h2&63]) + uint64(lut[h3&63])
		}
		for ; i < m; i++ {
			x := rotl(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = rotl(s3, 45)
			h, _ := bits.Mul64(x, deg)
			acc += uint64(lut[h&63])
		}
		counts[b] = int(acc)
	}
	s.s0, s.s1, s.s2, s.s3 = s0, s1, s2, s3
}

// FirstRaw returns the first Uint64 of New(seed) without constructing
// the generator: FirstRaw(seed) == New(seed).Uint64() for every seed.
// The first xoshiro output reads only the s1 state word, so seeding can
// stop after two SplitMix64 steps (the first advanced but not mixed —
// its value never feeds the output). Per-(round, agent) decision coins
// (dynamic-rewire Bernoulli) use this to avoid a full reseed for the
// common no-op outcome.
func FirstRaw(seed uint64) uint64 {
	st := seed + 0x9e3779b97f4a7c15 // advance past s0 unmixed
	s1 := SplitMix64(&st)
	return rotl(s1*5, 7) * 9
}

// FirstUnit returns the first Float64 of New(seed) without constructing
// the generator: FirstUnit(seed) == New(seed).Float64() for every seed.
func FirstUnit(seed uint64) float64 {
	return UnitFloat(FirstRaw(seed))
}

// UnitThreshold returns the smallest integer T such that, for every
// 53-bit mantissa m, UnitFloat-style comparison float64(m)/2^53 < p is
// equivalent to m < T. Scaling p by 2^53 is exact (a power-of-two
// exponent shift), so hot Bernoulli coins over raw outputs can compare
// u>>11 < T in integers with no float conversion per draw.
func UnitThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * (1 << 53)))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless unbiased bounded generation.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// is a compiler intrinsic (one widening multiply on amd64/arm64) with
// the exact product semantics the Lemire bound needs.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// Bernoulli returns true with probability p. Values of p outside [0,1]
// are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Bit returns a uniformly random bit as a byte (0 or 1).
func (s *Source) Bit() byte {
	return byte(s.Uint64() >> 63)
}

// Shuffle permutes the first n elements using the provided swap function,
// via Fisher–Yates.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a standard normal variate using the polar (Marsaglia)
// method. It is used only by the large-n binomial sampler's tail path and
// by statistical tests; hot paths use the binomial samplers directly.
func (s *Source) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Exp returns an exponentially distributed variate with rate 1.
func (s *Source) Exp() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Jump advances the generator by 2^128 steps, providing a cheap way to
// split one stream into non-overlapping substreams.
func (s *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var t0, t1, t2, t3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				t0 ^= s.s0
				t1 ^= s.s1
				t2 ^= s.s2
				t3 ^= s.s3
			}
			s.Uint64()
		}
	}
	s.s0, s.s1, s.s2, s.s3 = t0, t1, t2, t3
}
