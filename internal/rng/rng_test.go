package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical splitmix64.c.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs out of 1000", same)
	}
}

func TestNewFromStreamsDecorrelated(t *testing.T) {
	const n = 4096
	a := NewFrom(7, 0)
	b := NewFrom(7, 1)
	// Correlation of successive Float64 outputs should be near zero.
	var sumA, sumB, sumAB, sumA2, sumB2 float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sumA += x
		sumB += y
		sumAB += x * y
		sumA2 += x * x
		sumB2 += y * y
	}
	meanA, meanB := sumA/n, sumB/n
	cov := sumAB/n - meanA*meanB
	varA := sumA2/n - meanA*meanA
	varB := sumB2/n - meanB*meanB
	corr := cov / math.Sqrt(varA*varB)
	if math.Abs(corr) > 0.08 {
		t.Fatalf("cross-stream correlation = %v, want ~0", corr)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, trials = 10, 200000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Intn(%d): bucket %d has %d hits, want ≈%v", n, k, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestMul64(t *testing.T) {
	tests := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, tc := range tests {
		hi, lo := mul64(tc.a, tc.b)
		if hi != tc.hi || lo != tc.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				tc.a, tc.b, hi, lo, tc.hi, tc.lo)
		}
	}
}

func TestMul64Property(t *testing.T) {
	// mul64 must agree with big-int multiplication; check via the identity
	// on 32-bit inputs where the product fits in 64 bits.
	f := func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(8)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	s := New(9)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		const n = 100000
		count := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				count++
			}
		}
		got := float64(count) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) empirical mean = %v", p, got)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(10)
	const n = 100
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	s.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
	seen := make([]bool, n)
	for _, v := range a {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("shuffle output is not a permutation: %v", a)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(11)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("Perm first element %d appeared %d times, want ≈%v", k, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(12)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Normal variance = %v, want ≈1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("Exp mean = %v, want ≈1", mean)
	}
}

func TestJumpProducesDisjointStream(t *testing.T) {
	a := New(99)
	b := New(99)
	b.Jump()
	// After a jump the streams must differ immediately and not re-sync.
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided %d times with base stream", same)
	}
}

func TestBitBalance(t *testing.T) {
	s := New(14)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		b := s.Bit()
		if b != 0 && b != 1 {
			t.Fatalf("Bit() = %d", b)
		}
		ones += int(b)
	}
	if math.Abs(float64(ones)/n-0.5) > 0.01 {
		t.Fatalf("Bit() ones fraction = %v", float64(ones)/n)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = s.Intn(1000003)
	}
	_ = sink
}
