package serve

import "context"

// Tier classifies how an uncached key is answered.
type Tier int

const (
	// TierExact keys run inline in the request handler: the chain and
	// aggregate(-sparse) engines answer a full cell in microseconds to
	// milliseconds, cheaper than a queue round-trip.
	TierExact Tier = iota
	// TierFallback keys run agent-level replicates (or custom-runner
	// scenarios): seconds of work, dispatched to the bounded worker
	// pool, with streamed progress available.
	TierFallback
)

// String names the tier for the X-Fetserve-Tier response header.
func (t Tier) String() string {
	if t == TierExact {
		return "exact"
	}
	return "fallback"
}

// Query is the wire shape of a fet.study.run / fet.study.get cell
// query. Zero fields select defaults; the Backend resolves every
// default into the canonical CellKey, which is the response's (and the
// cache's) sole identity.
type Query struct {
	// Scenario is a registered scenario preset name ("" = worst-case).
	Scenario string `json:"scenario,omitempty"`
	// Engine is an engine name, parse form or canonical display form
	// ("" = the fastest engine that answers the scenario exactly).
	Engine string `json:"engine,omitempty"`
	// Topology is a ParseTopology spec ("" = the scenario's pinned
	// topology, or complete).
	Topology string `json:"topology,omitempty"`
	// N is the population size including sources (required).
	N int `json:"n"`
	// Ell is the per-half sample size (0 = ⌈3·log₂ n⌉).
	Ell int `json:"ell,omitempty"`
	// Replicates is the number of independent runs (0 = server default).
	Replicates int `json:"replicates,omitempty"`
	// MaxRounds is the per-replicate round cap (0 = 400·log₂ n).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Seed is the cell's root seed (0 is a valid seed and the default).
	Seed uint64 `json:"seed,omitempty"`
	// Sources, NoiseEps and FlipFrac override the scenario preset's
	// corresponding fields (0 = keep the preset's value).
	Sources  int     `json:"sources,omitempty"`
	NoiseEps float64 `json:"noise_eps,omitempty"`
	FlipFrac float64 `json:"flip_frac,omitempty"`
}

// SweepQuery is the wire shape of fet.sweep.inspect: the axes of a
// SweepSpec by name/value, expanded without running anything.
type SweepQuery struct {
	Scenarios  []string `json:"scenarios,omitempty"`
	Engines    []string `json:"engines,omitempty"`
	Topologies []string `json:"topologies,omitempty"`
	Ns         []int    `json:"ns"`
	Ells       []int    `json:"ells,omitempty"`
	Replicates int      `json:"replicates,omitempty"`
	MaxRounds  int      `json:"max_rounds,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
}

// InspectedCell is one planned sweep cell: its grid identity plus its
// canonical key and content address. Cached is filled by the server.
type InspectedCell struct {
	Index    int    `json:"index"`
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	Topology string `json:"topology"`
	N        int    `json:"n"`
	Ell      int    `json:"ell"`
	Seed     uint64 `json:"seed"`
	Key      string `json:"key"`
	Hash     string `json:"hash"`
	Cached   bool   `json:"cached"`
}

// Inspection is the fet.sweep.inspect response payload.
type Inspection struct {
	Cells      int             `json:"cells"`
	Replicates int             `json:"replicates"`
	Rows       []InspectedCell `json:"rows"`
}

// ScenarioInfo is one listing entry of fet.scenarios.list.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Engine is the custom-runner engine label, when the scenario
	// schedules itself ("" for synchronous-engine scenarios).
	Engine string `json:"engine,omitempty"`
	// Topology is the scenario's pinned topology, if any.
	Topology string `json:"topology,omitempty"`
}

// TopologyInfo is one topology-family listing entry.
type TopologyInfo struct {
	Spec        string `json:"spec"`
	Description string `json:"description"`
}

// Listings is the fet.scenarios.list response payload: every axis a
// query can name, each sorted so the listing is stable for docs and
// golden tests.
type Listings struct {
	Scenarios  []ScenarioInfo `json:"scenarios"`
	Engines    []string       `json:"engines"`
	Topologies []TopologyInfo `json:"topologies"`
}

// Backend is everything the server needs from the simulation layers.
// The root passivespread package implements it over the Study API and
// the scenario registry; tests substitute deterministic fakes.
//
// Run's contract carries the subsystem's correctness story: the
// returned body must be a pure function of the key — byte-identical
// across calls, processes, and worker counts — because it is cached
// under the key's content address and replayed verbatim.
type Backend interface {
	// Resolve canonicalizes a query into its cell key, resolving every
	// default and validating. Failures are *Error values
	// (invalidArgument, or notFound for an unregistered scenario).
	Resolve(q Query) (CellKey, error)

	// Tier classifies how an uncached key is executed.
	Tier(k CellKey) Tier

	// Run executes the key's study and returns the canonical answer
	// body. progress, when non-nil, is called from the run's goroutine
	// as replicates finish (monotone done ∈ [0, total]).
	Run(ctx context.Context, k CellKey, progress func(done, total int)) ([]byte, error)

	// Inspect expands a sweep grid into its planned cells and keys
	// without running anything.
	Inspect(q SweepQuery) (*Inspection, error)

	// Listings returns the sorted scenario/engine/topology listings.
	Listings() Listings
}
