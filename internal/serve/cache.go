package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Cache is the content-addressed answer cache: an LRU, byte-budgeted
// in-memory tier with an optional disk tier underneath. Entries are
// keyed by the bare hex SHA-256 of the canonical cell key; the value
// is the exact response body served for that key, so a hit replays the
// cold-run bytes verbatim.
//
// Disk layout (when a directory is configured): one file per entry,
// named <hash>.json, containing the persistEntry envelope — the
// canonical key string, the body, and the body's own SHA-256. Writes
// are atomic (temp file + rename in the same directory), loads verify
// both hashes and reject anything corrupt or misnamed, and eviction
// only trims the memory tier: the disk tier keeps every answer ever
// computed and re-promotes on demand.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	dir string // "" = memory only

	hits, diskHits, misses, evictions, puts uint64
}

// cacheEntry is one resident answer.
type cacheEntry struct {
	hash      string
	canonical string
	body      []byte
}

func (e *cacheEntry) size() int64 { return int64(len(e.body) + len(e.canonical) + len(e.hash)) }

// persistEntry is the on-disk envelope of one answer.
type persistEntry struct {
	// Key is the canonical cell key string; its SHA-256 must equal the
	// file's name stem.
	Key string `json:"key"`
	// BodySHA256 is the hex SHA-256 of Body, detecting torn or
	// bit-rotted payloads independently of the file name.
	BodySHA256 string `json:"body_sha256"`
	// Body is the exact response body.
	Body json.RawMessage `json:"body"`
}

// CacheStats is a point-in-time snapshot for fet.health and /metrics.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Puts      uint64 `json:"puts"`
	Persisted bool   `json:"persisted"`
}

// NewCache returns a cache bounded to maxBytes of resident answers
// (≤ 0 selects the 64 MiB default). When dir is non-empty it is
// created if needed and every existing well-formed entry is loaded
// (most recently modified first) until the memory budget is full;
// corrupt or misnamed entries are counted and skipped, never trusted.
// The second return value is the number of rejected entries.
func NewCache(maxBytes int64, dir string) (*Cache, int, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{maxBytes: maxBytes, ll: list.New(), items: map[string]*list.Element{}, dir: dir}
	if dir == "" {
		return c, 0, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("serve: cache dir: %v", err)
	}
	rejected, err := c.loadDir()
	if err != nil {
		return nil, 0, err
	}
	return c, rejected, nil
}

// loadDir boots the memory tier from the disk tier.
func (c *Cache) loadDir() (rejected int, err error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, fmt.Errorf("serve: cache dir: %v", err)
	}
	type candidate struct {
		name  string
		mtime int64
	}
	var files []candidate
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, candidate{de.Name(), info.ModTime().UnixNano()})
	}
	// Newest first: when the directory outgrows the memory budget, the
	// hottest (most recently written) answers stay resident.
	sort.Slice(files, func(i, j int) bool { return files[i].mtime > files[j].mtime })
	for _, f := range files {
		entry, ok := c.readEntry(strings.TrimSuffix(f.name, ".json"))
		if !ok {
			rejected++
			continue
		}
		c.mu.Lock()
		if c.bytes+entry.size() > c.maxBytes {
			c.mu.Unlock()
			break // older entries stay on disk, served via the disk tier
		}
		c.insertLocked(entry)
		c.mu.Unlock()
	}
	return rejected, nil
}

// readEntry loads and verifies one disk entry.
func (c *Cache) readEntry(hash string) (*cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, hash+".json"))
	if err != nil {
		return nil, false
	}
	var pe persistEntry
	if err := json.Unmarshal(data, &pe); err != nil {
		return nil, false
	}
	if pe.Key == "" || len(pe.Body) == 0 {
		return nil, false
	}
	// Both content addresses must hold: the file name is the key's
	// hash, and the recorded body digest is the body's.
	if HashHex(pe.Key) != hash || HashHex(string(pe.Body)) != pe.BodySHA256 {
		return nil, false
	}
	return &cacheEntry{hash: hash, canonical: pe.Key, body: pe.Body}, true
}

// insertLocked adds entry to the memory tier (caller holds mu) and
// evicts from the LRU tail to fit the budget.
func (c *Cache) insertLocked(entry *cacheEntry) {
	if el, ok := c.items[entry.hash]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[entry.hash] = c.ll.PushFront(entry)
	c.bytes += entry.size()
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		tail := c.ll.Back()
		te := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, te.hash)
		c.bytes -= te.size()
		c.evictions++
	}
}

// Get returns the cached body for a bare hex key hash, consulting the
// memory tier then the disk tier (a disk hit is re-verified and
// promoted). The returned slice must not be modified.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.items[hash]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, true
	}
	c.mu.Unlock()
	if c.dir != "" {
		if entry, ok := c.readEntry(hash); ok {
			c.mu.Lock()
			c.insertLocked(entry)
			c.diskHits++
			c.mu.Unlock()
			return entry.body, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the answer body for a canonical key string, evicting LRU
// entries beyond the byte budget, and persists it to the disk tier
// when one is configured. Identical re-puts are idempotent.
func (c *Cache) Put(canonical string, body []byte) error {
	entry := &cacheEntry{hash: HashHex(canonical), canonical: canonical, body: body}
	c.mu.Lock()
	c.insertLocked(entry)
	c.puts++
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.persist(entry)
}

// persist writes one entry atomically: marshal to a temp file in the
// cache directory, then rename onto the final name, so a crash can
// leave a stale temp file but never a torn entry (and load-time
// verification rejects anything else).
func (c *Cache) persist(entry *cacheEntry) error {
	data, err := json.Marshal(persistEntry{
		Key:        entry.canonical,
		BodySHA256: HashHex(string(entry.body)),
		Body:       entry.body,
	})
	if err != nil {
		return fmt.Errorf("serve: persisting %s: %v", entry.hash, err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: persisting %s: %v", entry.hash, err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: persisting %s: %v", entry.hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: persisting %s: %v", entry.hash, err)
	}
	if err := os.Rename(name, filepath.Join(c.dir, entry.hash+".json")); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: persisting %s: %v", entry.hash, err)
	}
	return nil
}

// Contains is a side-effect-free cache peek (no LRU touch, no counter
// bump): membership in the memory tier, or a verified disk entry.
func (c *Cache) Contains(hash string) bool {
	c.mu.Lock()
	_, ok := c.items[hash]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.dir == "" {
		return false
	}
	_, ok = c.readEntry(hash)
	return ok
}

// Stats returns a point-in-time snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Puts:      c.puts,
		Persisted: c.dir != "",
	}
}
