package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testKeyN(n int) CellKey {
	k := validKey()
	k.N = n
	return k
}

func TestCacheMemoryHitAndMiss(t *testing.T) {
	c, rejected, err := NewCache(0, "")
	if err != nil || rejected != 0 {
		t.Fatalf("NewCache: %v (rejected %d)", err, rejected)
	}
	key := validKey().Canonical()
	hash := HashHex(key)
	if _, ok := c.Get(hash); ok {
		t.Fatal("hit on empty cache")
	}
	body := []byte(`{"answer":1}`)
	if err := c.Put(key, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get(hash)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get: %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Puts != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Persisted {
		t.Fatal("memory-only cache reports Persisted")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Budget for roughly two entries; the least recently used falls out.
	keys := make([]string, 3)
	bodies := make([][]byte, 3)
	var entryBytes int64
	for i := range keys {
		keys[i] = testKeyN(1024 + i).Canonical()
		bodies[i] = []byte(fmt.Sprintf(`{"cell":%d,"pad":"0123456789abcdef"}`, i))
		entryBytes = int64(len(bodies[i]) + len(keys[i]) + 64)
	}
	c, _, err := NewCache(2*entryBytes+2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(keys[0], bodies[0])
	c.Put(keys[1], bodies[1])
	c.Get(HashHex(keys[0])) // touch 0 so 1 is LRU
	c.Put(keys[2], bodies[2])
	if _, ok := c.Get(HashHex(keys[1])); ok {
		t.Fatal("LRU entry survived past the byte budget")
	}
	for _, i := range []int{0, 2} {
		if _, ok := c.Get(HashHex(keys[i])); !ok {
			t.Fatalf("recently used entry %d was evicted", i)
		}
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("stats show no evictions: %+v", st)
	}
}

func TestCacheDiskPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	key := validKey().Canonical()
	body := []byte(`{"answer":"persisted"}`)
	c1, _, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, HashHex(key)+".json")); err != nil {
		t.Fatalf("persisted file: %v", err)
	}

	c2, rejected, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 0 {
		t.Fatalf("rejected %d entries on clean reload", rejected)
	}
	got, ok := c2.Get(HashHex(key))
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("reloaded Get: %q, %v", got, ok)
	}
	if st := c2.Stats(); st.Hits != 1 || !st.Persisted {
		t.Fatalf("reloaded entry not resident: %+v", st)
	}
}

func TestCacheRejectsCorruptDiskEntries(t *testing.T) {
	dir := t.TempDir()
	key := validKey().Canonical()
	good, _, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	good.Put(key, []byte(`{"ok":true}`))

	// Corrupt 1: valid JSON under a name that is not the key's hash.
	misnamed, _ := json.Marshal(persistEntry{Key: key, BodySHA256: HashHex(`{}`), Body: []byte(`{}`)})
	wrongName := HashHex("something else")
	os.WriteFile(filepath.Join(dir, wrongName+".json"), misnamed, 0o644)
	// Corrupt 2: body digest mismatch under the right name.
	k2 := testKeyN(8192).Canonical()
	torn, _ := json.Marshal(persistEntry{Key: k2, BodySHA256: HashHex(`other`), Body: []byte(`{"x":1}`)})
	os.WriteFile(filepath.Join(dir, HashHex(k2)+".json"), torn, 0o644)
	// Corrupt 3: not JSON at all.
	k3 := testKeyN(16384).Canonical()
	os.WriteFile(filepath.Join(dir, HashHex(k3)+".json"), []byte("garbage"), 0o644)

	c, rejected, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 3 {
		t.Fatalf("rejected %d corrupt entries, want 3", rejected)
	}
	if _, ok := c.Get(HashHex(key)); !ok {
		t.Fatal("valid entry lost among corrupt ones")
	}
	for _, h := range []string{wrongName, HashHex(k2), HashHex(k3)} {
		if _, ok := c.Get(h); ok {
			t.Fatalf("corrupt entry %s was served", h)
		}
	}
}

func TestCacheContainsIsSideEffectFree(t *testing.T) {
	c, _, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	key := validKey().Canonical()
	c.Put(key, []byte(`{}`))
	before := c.Stats()
	if !c.Contains(HashHex(key)) {
		t.Fatal("Contains missed a resident entry")
	}
	if c.Contains(HashHex("absent")) {
		t.Fatal("Contains claimed an absent entry")
	}
	after := c.Stats()
	if before.Hits != after.Hits || before.Misses != after.Misses {
		t.Fatalf("Contains mutated counters: %+v → %+v", before, after)
	}
}
