package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// ErrorCode is a typed tool-error code, in the style of the k0rdent
// MCP server specs: a small closed vocabulary that clients can switch
// on without parsing messages.
type ErrorCode string

const (
	// CodeInvalidArgument rejects a malformed or unresolvable query
	// (HTTP 400). The message carries the offending field in the
	// repository's "field: reason" form, verbatim from validation.
	CodeInvalidArgument ErrorCode = "invalidArgument"
	// CodeNotFound reports a missing resource: an unregistered scenario
	// or an uncached key on the cache-only fet.study.get path (404).
	CodeNotFound ErrorCode = "notFound"
	// CodeOverloaded reports that every fallback worker slot is busy;
	// the query was not started (429). Retry, or use an exact engine.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInternal reports an execution failure after admission (500).
	CodeInternal ErrorCode = "internal"
)

// httpStatus maps each code onto its transport status.
func (c ErrorCode) httpStatus() int {
	switch c {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeOverloaded:
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

// Error is a typed tool error. Backends return *Error (usually via
// Errorf) to select the code; anything else surfaces as CodeInternal.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds a typed tool error.
func Errorf(code ErrorCode, format string, args ...interface{}) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// errorEnvelope is the wire shape of every error response.
type errorEnvelope struct {
	Error *Error `json:"error"`
}

// asError coerces any error into a typed one (CodeInternal fallback).
func asError(err error) *Error {
	var te *Error
	if errors.As(err, &te) {
		return te
	}
	return &Error{Code: CodeInternal, Message: err.Error()}
}

// writeError renders err as the canonical JSON error envelope. It
// returns the code actually written, for metrics.
func writeError(w http.ResponseWriter, err error) ErrorCode {
	te := asError(err)
	body, mErr := json.Marshal(errorEnvelope{Error: te})
	if mErr != nil { // a string field cannot fail to marshal
		panic(mErr)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(te.Code.httpStatus())
	w.Write(body)
	return te.Code
}
