// Package serve is the fetserve query service: a long-running daemon
// that answers convergence-probability and convergence-time-quantile
// queries over HTTP+JSON with a tiered answer path — content-addressed
// cache hit, exact engine run inline, agent-engine study fallback on a
// bounded worker pool — and exposes the surface as spec'd, namespaced
// tools (fet.study.run, fet.study.get, fet.sweep.inspect,
// fet.scenarios.list, fet.health; see the specs/ directory for the
// per-tool acceptance specs).
//
// The package is deliberately engine-agnostic: everything that knows
// how to run a simulation sits behind the Backend interface, which the
// root passivespread package implements over its Study and Scenario
// layers. What lives here is the service machinery — canonical cell
// keys (key.go), the LRU+disk answer cache (cache.go), typed error
// codes (errors.go), per-tool metrics (metrics.go), and the HTTP
// server with the tier logic (server.go).
//
// The correctness story of the whole subsystem is the cell key: every
// cached byte is re-derivable from its key, because the deterministic
// StreamSeed contract makes a study's report a pure function of the
// canonical parameter tuple. A cache hit is therefore byte-identical
// to a cold run, which the golden and determinism tests pin.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// KeyVersion is the canonical serialization version prefix. Bump it
// whenever the answer payload or the canonical field set changes: old
// cache entries then simply stop matching instead of being replayed
// with stale semantics.
const KeyVersion = "fetcell/v1"

// CellKey is the canonical, content-addressed identity of one study
// cell: the fully resolved parameter tuple from which the answer is a
// deterministic pure function. All fields are resolved values — no
// zero-means-default remains (the Backend resolves defaults before
// keying), except the override fields Sources, NoiseEps and FlipFrac,
// where zero means "the scenario preset's own value" and is omitted
// from the canonical form.
type CellKey struct {
	// Scenario is the registered scenario preset name.
	Scenario string `json:"scenario"`
	// Engine is the canonical engine display name (EngineName form,
	// e.g. "agent-fast", "markov-chain") or a custom-runner scenario's
	// engine label.
	Engine string `json:"engine"`
	// Topology is the canonical topology spec (ParseTopology grammar).
	Topology string `json:"topology"`
	// N is the population size including sources.
	N int `json:"n"`
	// Ell is the resolved per-half sample size.
	Ell int `json:"ell"`
	// Replicates is the number of independent runs aggregated.
	Replicates int `json:"replicates"`
	// MaxRounds is the resolved per-replicate round cap.
	MaxRounds int `json:"max_rounds"`
	// Seed is the cell's root seed; replicate i runs with
	// StreamSeed(Seed, i).
	Seed uint64 `json:"seed"`
	// Sources overrides the scenario's source count (0 = preset value).
	Sources int `json:"sources,omitempty"`
	// NoiseEps overrides the scenario's observation noise (0 = preset).
	NoiseEps float64 `json:"noise_eps,omitempty"`
	// FlipFrac overrides the scenario's mid-run flip point (0 = preset).
	FlipFrac float64 `json:"flip_frac,omitempty"`
}

// Validate checks that the key is canonicalizable: every required
// field resolved and every name safe for the space-separated canonical
// form.
func (k CellKey) Validate() error {
	for _, f := range []struct{ name, v string }{
		{"scenario", k.Scenario}, {"engine", k.Engine}, {"topology", k.Topology},
	} {
		if f.v == "" {
			return fmt.Errorf("cell key: %s: empty", f.name)
		}
		if strings.ContainsAny(f.v, " =\n\t") {
			return fmt.Errorf("cell key: %s: %q contains canonical-form delimiters", f.name, f.v)
		}
	}
	if k.N < 2 {
		return fmt.Errorf("cell key: n: %d, want ≥ 2", k.N)
	}
	if k.Ell < 1 {
		return fmt.Errorf("cell key: ell: %d, want ≥ 1 (resolve defaults before keying)", k.Ell)
	}
	if k.Replicates < 1 {
		return fmt.Errorf("cell key: replicates: %d, want ≥ 1", k.Replicates)
	}
	if k.MaxRounds < 1 {
		return fmt.Errorf("cell key: max_rounds: %d, want ≥ 1 (resolve defaults before keying)", k.MaxRounds)
	}
	if k.Sources < 0 {
		return fmt.Errorf("cell key: sources: %d, want ≥ 0", k.Sources)
	}
	if k.NoiseEps < 0 || k.NoiseEps >= 0.5 {
		return fmt.Errorf("cell key: noise_eps: %v, want in [0, 1/2)", k.NoiseEps)
	}
	if k.FlipFrac < 0 || k.FlipFrac >= 1 {
		return fmt.Errorf("cell key: flip_frac: %v, want in [0, 1)", k.FlipFrac)
	}
	return nil
}

// Canonical returns the stable one-line serialization of the key: the
// version prefix followed by fixed-order field=value pairs, override
// fields appended only when set. Canonical() of equal keys is equal
// byte-for-byte, and ParseCellKey inverts it exactly. It panics on a
// key that fails Validate (construct keys through a Backend, which
// resolves and validates).
func (k CellKey) Canonical() string {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString(KeyVersion)
	fmt.Fprintf(&b, " scenario=%s engine=%s topology=%s n=%d ell=%d replicates=%d max_rounds=%d seed=%d",
		k.Scenario, k.Engine, k.Topology, k.N, k.Ell, k.Replicates, k.MaxRounds, k.Seed)
	if k.Sources != 0 {
		fmt.Fprintf(&b, " sources=%d", k.Sources)
	}
	if k.NoiseEps != 0 {
		b.WriteString(" noise_eps=" + strconv.FormatFloat(k.NoiseEps, 'g', -1, 64))
	}
	if k.FlipFrac != 0 {
		b.WriteString(" flip_frac=" + strconv.FormatFloat(k.FlipFrac, 'g', -1, 64))
	}
	return b.String()
}

// HashPrefix prefixes every key hash, naming the algorithm.
const HashPrefix = "sha256:"

// Hash returns the key's content address: "sha256:" plus the hex
// SHA-256 of the canonical serialization. The hex part is the cache
// entry's identity in memory and its file name on disk.
func (k CellKey) Hash() string { return HashPrefix + HashHex(k.Canonical()) }

// HashHex returns the bare hex SHA-256 of a canonical key string.
func HashHex(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// ParseCellKey inverts Canonical: it parses a canonical key string
// strictly (exact version, exact field order, no unknown or duplicate
// fields) and validates the result, so ParseCellKey(k.Canonical()) == k
// for every valid key and every non-canonical variant is rejected
// rather than silently aliasing a different cache identity.
func ParseCellKey(s string) (CellKey, error) {
	var k CellKey
	fields := strings.Split(s, " ")
	if len(fields) == 0 || fields[0] != KeyVersion {
		return k, fmt.Errorf("cell key: want version prefix %q, got %q", KeyVersion, s)
	}
	required := []string{"scenario", "engine", "topology", "n", "ell", "replicates", "max_rounds", "seed"}
	optional := []string{"sources", "noise_eps", "flip_frac"}
	pairs := fields[1:]
	if len(pairs) < len(required) {
		return k, fmt.Errorf("cell key: %d fields, want at least %d", len(pairs), len(required))
	}
	var parseErr error
	assign := func(name, value string) {
		atoi := func() int {
			v, err := strconv.Atoi(value)
			if err != nil && parseErr == nil {
				parseErr = fmt.Errorf("cell key: %s: bad integer %q", name, value)
			}
			return v
		}
		atof := func() float64 {
			v, err := strconv.ParseFloat(value, 64)
			if err != nil && parseErr == nil {
				parseErr = fmt.Errorf("cell key: %s: bad float %q", name, value)
			}
			return v
		}
		switch name {
		case "scenario":
			k.Scenario = value
		case "engine":
			k.Engine = value
		case "topology":
			k.Topology = value
		case "n":
			k.N = atoi()
		case "ell":
			k.Ell = atoi()
		case "replicates":
			k.Replicates = atoi()
		case "max_rounds":
			k.MaxRounds = atoi()
		case "seed":
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil && parseErr == nil {
				parseErr = fmt.Errorf("cell key: seed: bad uint %q", value)
			}
			k.Seed = v
		case "sources":
			k.Sources = atoi()
		case "noise_eps":
			k.NoiseEps = atof()
		case "flip_frac":
			k.FlipFrac = atof()
		}
	}
	for i, pair := range pairs {
		name, value, ok := strings.Cut(pair, "=")
		if !ok || value == "" {
			return k, fmt.Errorf("cell key: malformed field %q", pair)
		}
		// Fixed order: required fields in sequence, then any suffix of
		// the optional fields in their canonical order.
		if i < len(required) {
			if name != required[i] {
				return k, fmt.Errorf("cell key: field %d is %q, want %q", i, name, required[i])
			}
		} else {
			pos := -1
			for j, opt := range optional {
				if opt == name {
					pos = j
				}
			}
			if pos == -1 {
				return k, fmt.Errorf("cell key: unknown field %q", name)
			}
			optional = optional[pos+1:] // each optional at most once, in order
		}
		assign(name, value)
	}
	if parseErr != nil {
		return CellKey{}, parseErr
	}
	if err := k.Validate(); err != nil {
		return CellKey{}, err
	}
	// Overrides that equal their zero value would have been omitted by
	// Canonical; round-trip exactness implies the parse is canonical.
	if got := k.Canonical(); got != s {
		return CellKey{}, fmt.Errorf("cell key: %q is not canonical (want %q)", s, got)
	}
	return k, nil
}
