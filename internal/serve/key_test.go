package serve

import (
	"strings"
	"testing"
)

func validKey() CellKey {
	return CellKey{
		Scenario: "worst-case", Engine: "markov-chain", Topology: "complete",
		N: 4096, Ell: 36, Replicates: 40, MaxRounds: 4800, Seed: 42,
	}
}

func TestCellKeyCanonicalRoundTrip(t *testing.T) {
	keys := []CellKey{
		validKey(),
		func() CellKey { k := validKey(); k.Seed = 0; return k }(),
		func() CellKey { k := validKey(); k.Sources = 3; return k }(),
		func() CellKey { k := validKey(); k.NoiseEps = 0.05; return k }(),
		func() CellKey { k := validKey(); k.FlipFrac = 0.25; return k }(),
		func() CellKey {
			k := validKey()
			k.Sources, k.NoiseEps, k.FlipFrac = 2, 0.1, 0.5
			return k
		}(),
		func() CellKey { k := validKey(); k.Topology = "random-regular:8"; return k }(),
	}
	for _, k := range keys {
		s := k.Canonical()
		if !strings.HasPrefix(s, KeyVersion+" ") {
			t.Fatalf("canonical %q lacks version prefix", s)
		}
		got, err := ParseCellKey(s)
		if err != nil {
			t.Fatalf("ParseCellKey(%q): %v", s, err)
		}
		if got != k {
			t.Fatalf("round trip: got %+v, want %+v", got, k)
		}
		if got.Canonical() != s {
			t.Fatalf("re-canonicalization of %q changed to %q", s, got.Canonical())
		}
	}
}

func TestCellKeyCanonicalForm(t *testing.T) {
	got := validKey().Canonical()
	want := "fetcell/v1 scenario=worst-case engine=markov-chain topology=complete n=4096 ell=36 replicates=40 max_rounds=4800 seed=42"
	if got != want {
		t.Fatalf("canonical form:\n got %q\nwant %q", got, want)
	}
}

func TestCellKeyHash(t *testing.T) {
	k := validKey()
	h := k.Hash()
	if !strings.HasPrefix(h, HashPrefix) {
		t.Fatalf("hash %q lacks prefix %q", h, HashPrefix)
	}
	if len(strings.TrimPrefix(h, HashPrefix)) != 64 {
		t.Fatalf("hash hex length %d, want 64", len(strings.TrimPrefix(h, HashPrefix)))
	}
	if k.Hash() != h {
		t.Fatal("hash is not stable")
	}
	k2 := k
	k2.Seed++
	if k2.Hash() == h {
		t.Fatal("different keys share a hash")
	}
}

func TestCellKeyValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CellKey)
	}{
		{"empty scenario", func(k *CellKey) { k.Scenario = "" }},
		{"space in engine", func(k *CellKey) { k.Engine = "agent fast" }},
		{"equals in topology", func(k *CellKey) { k.Topology = "ring=2" }},
		{"n too small", func(k *CellKey) { k.N = 1 }},
		{"unresolved ell", func(k *CellKey) { k.Ell = 0 }},
		{"unresolved replicates", func(k *CellKey) { k.Replicates = 0 }},
		{"unresolved max_rounds", func(k *CellKey) { k.MaxRounds = 0 }},
		{"negative sources", func(k *CellKey) { k.Sources = -1 }},
		{"noise too large", func(k *CellKey) { k.NoiseEps = 0.5 }},
		{"flip too large", func(k *CellKey) { k.FlipFrac = 1 }},
	}
	for _, tc := range cases {
		k := validKey()
		tc.mutate(&k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, k)
		}
	}
}

func TestParseCellKeyRejectsNonCanonical(t *testing.T) {
	base := validKey().Canonical()
	bad := []string{
		"",
		"fetcell/v0 " + strings.TrimPrefix(base, "fetcell/v1 "),
		strings.Replace(base, "scenario=worst-case engine=markov-chain", "engine=markov-chain scenario=worst-case", 1),
		base + " unknown=1",
		base + " sources=0",               // zero override would be omitted by Canonical
		base + " noise_eps=0.1 sources=2", // optional fields out of order
		base + " sources=2 sources=3",     // duplicate optional
		strings.Replace(base, "n=4096", "n=x", 1),
		strings.Replace(base, "seed=42", "seed=", 1),
	}
	for _, s := range bad {
		if _, err := ParseCellKey(s); err == nil {
			t.Errorf("ParseCellKey accepted non-canonical %q", s)
		}
	}
}
