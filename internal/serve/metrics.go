package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// the service's three regimes: cache hits (≤ 100 µs), exact-tier runs
// (≤ 10 ms), and agent-engine fallbacks (up to tens of seconds).
var latencyBuckets = []float64{100e-6, 1e-3, 10e-3, 100e-3, 1, 10}

// metrics tracks per-tool request counters (by outcome code) and
// latency histograms, rendered in Prometheus text exposition format on
// /metrics. Everything is hand-rolled: no dependencies, one mutex —
// the measured handlers do milliseconds of work, so contention is
// irrelevant next to fidelity.
type metrics struct {
	mu    sync.Mutex
	tools map[string]*toolMetrics
}

type toolMetrics struct {
	requests map[string]uint64 // by outcome: "ok" or an ErrorCode
	buckets  []uint64          // cumulative-style counts per latencyBuckets entry
	inf      uint64            // > last bucket
	sum      float64           // total seconds
	count    uint64
}

func newMetrics() *metrics { return &metrics{tools: map[string]*toolMetrics{}} }

// observe records one request's outcome and latency under a tool name.
func (m *metrics) observe(tool, outcome string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tm := m.tools[tool]
	if tm == nil {
		tm = &toolMetrics{requests: map[string]uint64{}, buckets: make([]uint64, len(latencyBuckets))}
		m.tools[tool] = tm
	}
	tm.requests[outcome]++
	secs := d.Seconds()
	tm.sum += secs
	tm.count++
	for i, ub := range latencyBuckets {
		if secs <= ub {
			tm.buckets[i]++
			return
		}
	}
	tm.inf++
}

// render writes the Prometheus text exposition. Output is sorted by
// tool and label so scrapes are stable.
func (m *metrics) render(cache CacheStats) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	b.WriteString("# HELP fetserve_requests_total Requests per tool and outcome code.\n")
	b.WriteString("# TYPE fetserve_requests_total counter\n")
	tools := make([]string, 0, len(m.tools))
	//fet:allow detrand: keys are collected then sorted before rendering
	for name := range m.tools {
		tools = append(tools, name)
	}
	sort.Strings(tools)
	for _, name := range tools {
		tm := m.tools[name]
		codes := make([]string, 0, len(tm.requests))
		//fet:allow detrand: keys are collected then sorted before rendering
		for code := range tm.requests {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		for _, code := range codes {
			fmt.Fprintf(&b, "fetserve_requests_total{tool=%q,code=%q} %d\n", name, code, tm.requests[code])
		}
	}
	b.WriteString("# HELP fetserve_request_seconds Request latency per tool.\n")
	b.WriteString("# TYPE fetserve_request_seconds histogram\n")
	for _, name := range tools {
		tm := m.tools[name]
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += tm.buckets[i]
			fmt.Fprintf(&b, "fetserve_request_seconds_bucket{tool=%q,le=%q} %d\n",
				name, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		fmt.Fprintf(&b, "fetserve_request_seconds_bucket{tool=%q,le=\"+Inf\"} %d\n", name, cum+tm.inf)
		fmt.Fprintf(&b, "fetserve_request_seconds_sum{tool=%q} %g\n", name, tm.sum)
		fmt.Fprintf(&b, "fetserve_request_seconds_count{tool=%q} %d\n", name, tm.count)
	}
	b.WriteString("# HELP fetserve_cache_entries Resident cache entries.\n")
	b.WriteString("# TYPE fetserve_cache_entries gauge\n")
	fmt.Fprintf(&b, "fetserve_cache_entries %d\n", cache.Entries)
	b.WriteString("# HELP fetserve_cache_bytes Resident cache bytes.\n")
	b.WriteString("# TYPE fetserve_cache_bytes gauge\n")
	fmt.Fprintf(&b, "fetserve_cache_bytes %d\n", cache.Bytes)
	for _, g := range []struct {
		name string
		help string
		v    uint64
	}{
		{"fetserve_cache_hits_total", "Memory-tier cache hits.", cache.Hits},
		{"fetserve_cache_disk_hits_total", "Disk-tier cache hits (promoted).", cache.DiskHits},
		{"fetserve_cache_misses_total", "Cache misses.", cache.Misses},
		{"fetserve_cache_evictions_total", "Memory-tier evictions.", cache.Evictions},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
	return b.String()
}
