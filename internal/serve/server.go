package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// Tool names, namespaced in the k0rdent style. Each has an acceptance
// spec under specs/ (served at /v1/specs/<tool>) and a typed error
// vocabulary; ToolNames lists them sorted.
const (
	ToolStudyRun      = "fet.study.run"
	ToolStudyGet      = "fet.study.get"
	ToolSweepInspect  = "fet.sweep.inspect"
	ToolScenariosList = "fet.scenarios.list"
	ToolHealth        = "fet.health"
)

// ToolNames returns the served tools in sorted order.
func ToolNames() []string {
	return []string{ToolHealth, ToolScenariosList, ToolStudyGet, ToolStudyRun, ToolSweepInspect}
}

// Config configures a Server.
type Config struct {
	// Backend executes queries (required).
	Backend Backend
	// Workers bounds the fallback tier's concurrent agent-engine
	// studies (0 = GOMAXPROCS). When every slot is busy, fallback
	// queries are rejected with CodeOverloaded instead of queueing
	// unboundedly; cache hits and exact-tier runs are never gated.
	Workers int
	// CacheBytes bounds the resident answer cache (0 = 64 MiB).
	CacheBytes int64
	// CacheDir enables the persistent disk tier ("" = memory only).
	CacheDir string
	// Now supplies the clock for uptime and handler-latency metrics
	// (nil = time.Now). Injected so the serve package reads the wall
	// clock in exactly one place — the detrand-allowlisted default
	// below — and so latency observation is unit-testable.
	Now func() time.Time
}

// Server is the fetserve HTTP service. Construct with New; expose with
// Handler. The same Server value is safe for concurrent use.
type Server struct {
	backend  Backend
	cache    *Cache
	metrics  *metrics
	slots    chan struct{}
	workers  int
	rejected int // corrupt disk-cache entries rejected at boot
	now      func() time.Time
	started  time.Time
	mux      *http.ServeMux
}

// New validates cfg, loads the disk cache tier if configured, and
// returns a ready Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: Config.Backend is required")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("serve: Workers: %d, want ≥ 0", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache, rejected, err := NewCache(cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		//fet:allow detrand: the injected clock's default — the package's single wall-clock reference
		now = time.Now
	}
	s := &Server{
		backend:  cfg.Backend,
		cache:    cache,
		metrics:  newMetrics(),
		slots:    make(chan struct{}, workers),
		workers:  workers,
		rejected: rejected,
		now:      now,
		started:  now(),
	}
	s.mux = http.NewServeMux()
	s.route("POST /v1/tools/"+ToolStudyRun, ToolStudyRun, s.handleStudyRun)
	s.route("POST /v1/tools/"+ToolStudyGet, ToolStudyGet, s.handleStudyGet)
	s.route("GET /v1/tools/"+ToolStudyGet, ToolStudyGet, s.handleStudyGet)
	s.route("POST /v1/tools/"+ToolSweepInspect, ToolSweepInspect, s.handleSweepInspect)
	s.route("GET /v1/tools/"+ToolScenariosList, ToolScenariosList, s.handleScenariosList)
	s.route("GET /v1/tools/"+ToolHealth, ToolHealth, s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/specs", s.handleSpecIndex)
	s.mux.HandleFunc("GET /v1/specs/{tool}", s.handleSpec)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the cache counters (used by fet.health, /metrics
// and the benchmarks' sanity checks).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// route registers an instrumented tool handler: the wrapper times the
// request and records the outcome code under the tool's name.
func (s *Server) route(pattern, tool string, h func(w http.ResponseWriter, r *http.Request) string) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		outcome := h(w, r)
		s.metrics.observe(tool, outcome, s.now().Sub(start))
	})
}

// writeJSON renders v as the canonical compact JSON body.
func writeJSON(w http.ResponseWriter, v interface{}) string {
	body, err := json.Marshal(v)
	if err != nil {
		return string(writeError(w, Errorf(CodeInternal, "serve: encoding response: %v", err)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	return "ok"
}

// decodeJSON decodes a request body strictly: unknown fields and
// trailing garbage are invalidArgument, so a typo'd field name fails
// loudly instead of silently selecting a default (and a different
// cache identity than the caller intended).
func decodeJSON(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return Errorf(CodeInvalidArgument, "request body: %v", err)
	}
	if dec.More() {
		return Errorf(CodeInvalidArgument, "request body: trailing data after JSON value")
	}
	return nil
}

// wantsStream reports whether the client asked for streamed progress
// (SSE): either the stream query parameter or an event-stream Accept.
func wantsStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleStudyRun is the tiered answer path: cache hit → exact run
// inline → fallback on the bounded pool. The response body is the
// canonical answer for the resolved key — byte-identical whether it
// came from the cache or a fresh run.
func (s *Server) handleStudyRun(w http.ResponseWriter, r *http.Request) string {
	var q Query
	if err := decodeJSON(r, &q); err != nil {
		return string(writeError(w, err))
	}
	key, err := s.backend.Resolve(q)
	if err != nil {
		return string(writeError(w, err))
	}
	canonical := key.Canonical()
	hash := HashHex(canonical)
	stream := wantsStream(r)

	if body, ok := s.cache.Get(hash); ok {
		return s.writeAnswer(w, r, stream, "cache", hash, body)
	}

	tier := s.backend.Tier(key)
	if tier == TierFallback {
		select {
		case s.slots <- struct{}{}:
			defer func() { <-s.slots }()
		default:
			return string(writeError(w, Errorf(CodeOverloaded,
				"all %d fallback workers are busy; retry, or use an exact engine (aggregate, markov-chain)", s.workers)))
		}
	}

	var progress func(done, total int)
	var sse *sseWriter
	if stream {
		sse = newSSEWriter(w)
		progress = func(done, total int) {
			sse.event("progress", fmt.Sprintf(`{"done":%d,"total":%d}`, done, total))
		}
	}
	body, err := s.backend.Run(r.Context(), key, progress)
	if err != nil {
		if sse != nil {
			// Headers are gone; deliver the typed error as an event.
			te := asError(err)
			data, _ := json.Marshal(errorEnvelope{Error: te})
			sse.event("error", string(data))
			return string(te.Code)
		}
		return string(writeError(w, err))
	}
	s.cache.Put(canonical, body)
	if sse != nil {
		sse.event("result", string(body))
		return "ok"
	}
	return s.writeAnswer(w, r, false, tier.String(), hash, body)
}

// writeAnswer serves a resolved answer body. The tier travels in a
// header, never in the body: the body must be byte-identical across
// tiers for the same key (the subsystem's core guarantee).
func (s *Server) writeAnswer(w http.ResponseWriter, _ *http.Request, stream bool, tier, hash string, body []byte) string {
	if stream {
		newSSEWriter(w).event("result", string(body))
		return "ok"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fetserve-Tier", tier)
	w.Header().Set("X-Fetserve-Key", HashPrefix+hash)
	w.Write(body)
	return "ok"
}

// getRequest is the fet.study.get request shape: a key (canonical
// string or sha256: content address), or the same fields as a run
// query to resolve one.
type getRequest struct {
	Key string `json:"key,omitempty"`
	Query
}

// handleStudyGet answers from the cache only: the read-side tool for
// precomputed phase diagrams. A miss is notFound, never a run.
func (s *Server) handleStudyGet(w http.ResponseWriter, r *http.Request) string {
	var req getRequest
	if r.Method == http.MethodGet {
		req.Key = r.URL.Query().Get("key")
		if req.Key == "" {
			return string(writeError(w, Errorf(CodeInvalidArgument,
				"key: required on GET (canonical cell key or sha256: hash); POST a query body to resolve one")))
		}
	} else if err := decodeJSON(r, &req); err != nil {
		return string(writeError(w, err))
	}
	var hash string
	switch {
	case strings.HasPrefix(req.Key, HashPrefix):
		hash = strings.TrimPrefix(req.Key, HashPrefix)
		if len(hash) != 64 {
			return string(writeError(w, Errorf(CodeInvalidArgument, "key: malformed content address %q", req.Key)))
		}
	case req.Key != "":
		k, err := ParseCellKey(req.Key)
		if err != nil {
			return string(writeError(w, Errorf(CodeInvalidArgument, "key: %v", err)))
		}
		hash = HashHex(k.Canonical())
	default:
		k, err := s.backend.Resolve(req.Query)
		if err != nil {
			return string(writeError(w, err))
		}
		hash = HashHex(k.Canonical())
	}
	body, ok := s.cache.Get(hash)
	if !ok {
		return string(writeError(w, Errorf(CodeNotFound,
			"no cached answer for %s%s; compute it with %s", HashPrefix, hash, ToolStudyRun)))
	}
	return s.writeAnswer(w, r, false, "cache", hash, body)
}

// handleSweepInspect expands a sweep grid into planned cells, keys and
// cache status without running anything.
func (s *Server) handleSweepInspect(w http.ResponseWriter, r *http.Request) string {
	var q SweepQuery
	if err := decodeJSON(r, &q); err != nil {
		return string(writeError(w, err))
	}
	insp, err := s.backend.Inspect(q)
	if err != nil {
		return string(writeError(w, err))
	}
	for i := range insp.Rows {
		insp.Rows[i].Cached = s.cache.Contains(strings.TrimPrefix(insp.Rows[i].Hash, HashPrefix))
	}
	return writeJSON(w, insp)
}

// handleScenariosList serves the sorted scenario/engine/topology
// listings — the discoverable axis vocabulary of every other tool.
func (s *Server) handleScenariosList(w http.ResponseWriter, r *http.Request) string {
	return writeJSON(w, s.backend.Listings())
}

// healthResponse is the fet.health payload.
type healthResponse struct {
	Status        string     `json:"status"`
	Service       string     `json:"service"`
	KeyVersion    string     `json:"key_version"`
	Tools         []string   `json:"tools"`
	Workers       int        `json:"workers"`
	Cache         CacheStats `json:"cache"`
	CacheRejected int        `json:"cache_rejected_entries"`
}

// handleHealth reports liveness, the served tool set, and cache state.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) string {
	return writeJSON(w, healthResponse{
		Status:        "ok",
		Service:       "fetserve",
		KeyVersion:    KeyVersion,
		Tools:         ToolNames(),
		Workers:       s.workers,
		Cache:         s.cache.Stats(),
		CacheRejected: s.rejected,
	})
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.metrics.render(s.cache.Stats()))
}

// sseWriter emits server-sent events with an immediate flush per
// event, so progress is visible while replicates are still running.
type sseWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
}

func newSSEWriter(w http.ResponseWriter) *sseWriter {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	return &sseWriter{w: w, flusher: flusher}
}

func (s *sseWriter) event(name, data string) {
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	if s.flusher != nil {
		s.flusher.Flush()
	}
}
