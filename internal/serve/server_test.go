package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a deterministic Backend for server tests: Resolve
// builds a fixed-shape key, Run emits a body derived from the key.
type fakeBackend struct {
	runs  atomic.Int64
	block chan struct{} // when non-nil, Run parks until closed
}

func (f *fakeBackend) Resolve(q Query) (CellKey, error) {
	if q.Scenario == "missing" {
		return CellKey{}, Errorf(CodeNotFound, "scenario: %q is not registered", q.Scenario)
	}
	if q.N < 2 {
		return CellKey{}, Errorf(CodeInvalidArgument, "n: %d, want ≥ 2", q.N)
	}
	k := CellKey{
		Scenario: "fake", Engine: "agent-fast", Topology: "complete",
		N: q.N, Ell: 3, Replicates: 2, MaxRounds: 10, Seed: q.Seed,
	}
	if q.Engine != "" {
		k.Engine = q.Engine
	}
	return k, nil
}

func (f *fakeBackend) Tier(k CellKey) Tier {
	if k.Engine == "markov-chain" {
		return TierExact
	}
	return TierFallback
}

func (f *fakeBackend) Run(ctx context.Context, k CellKey, progress func(done, total int)) ([]byte, error) {
	f.runs.Add(1)
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if progress != nil {
		progress(1, 2)
		progress(2, 2)
	}
	return []byte(fmt.Sprintf(`{"key":%q,"n":%d}`, k.Canonical(), k.N)), nil
}

func (f *fakeBackend) Inspect(q SweepQuery) (*Inspection, error) {
	insp := &Inspection{Replicates: 2}
	for i, n := range q.Ns {
		k, err := f.Resolve(Query{N: n, Seed: q.Seed})
		if err != nil {
			return nil, err
		}
		insp.Rows = append(insp.Rows, InspectedCell{
			Index: i, Scenario: k.Scenario, Engine: k.Engine, Topology: k.Topology,
			N: k.N, Ell: k.Ell, Seed: k.Seed, Key: k.Canonical(), Hash: k.Hash(),
		})
	}
	insp.Cells = len(insp.Rows)
	return insp, nil
}

func (f *fakeBackend) Listings() Listings {
	return Listings{
		Scenarios:  []ScenarioInfo{{Name: "fake", Description: "test preset"}},
		Engines:    []string{"agent-fast", "markov-chain"},
		Topologies: []TopologyInfo{{Spec: "complete", Description: "uniform mixing"}},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *fakeBackend) {
	t.Helper()
	fb := &fakeBackend{}
	if cfg.Backend == nil {
		cfg.Backend = fb
	} else {
		fb = cfg.Backend.(*fakeBackend)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, fb
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestServerTieredAnswerPath(t *testing.T) {
	s, fb := newTestServer(t, Config{})
	h := s.Handler()
	body := `{"n":128,"engine":"markov-chain","seed":7}`

	cold := post(t, h, "/v1/tools/fet.study.run", body)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold run: %d %s", cold.Code, cold.Body)
	}
	if tier := cold.Header().Get("X-Fetserve-Tier"); tier != "exact" {
		t.Fatalf("cold tier %q, want exact", tier)
	}
	if key := cold.Header().Get("X-Fetserve-Key"); !strings.HasPrefix(key, HashPrefix) {
		t.Fatalf("key header %q", key)
	}

	hit := post(t, h, "/v1/tools/fet.study.run", body)
	if hit.Code != http.StatusOK {
		t.Fatalf("hit: %d %s", hit.Code, hit.Body)
	}
	if tier := hit.Header().Get("X-Fetserve-Tier"); tier != "cache" {
		t.Fatalf("hit tier %q, want cache", tier)
	}
	if !bytes.Equal(cold.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatalf("cache hit differs from cold run:\n%s\n%s", cold.Body, hit.Body)
	}
	if n := fb.runs.Load(); n != 1 {
		t.Fatalf("backend ran %d times, want 1", n)
	}

	// Fallback engine (the fake default) reports its tier.
	fall := post(t, h, "/v1/tools/fet.study.run", `{"n":64}`)
	if tier := fall.Header().Get("X-Fetserve-Tier"); tier != "fallback" {
		t.Fatalf("fallback tier %q", tier)
	}
}

func TestServerOverloaded(t *testing.T) {
	fb := &fakeBackend{block: make(chan struct{})}
	s, _ := newTestServer(t, Config{Backend: fb, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/tools/fet.study.run", "application/json", strings.NewReader(`{"n":64}`))
		if err == nil {
			done <- resp
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fb.runs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/tools/fet.study.run", "application/json", strings.NewReader(`{"n":65}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated pool: status %d, want 429", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code != CodeOverloaded {
		t.Fatalf("overloaded envelope: %+v, %v", env, err)
	}

	close(fb.block)
	first := <-done
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("admitted request: status %d", first.StatusCode)
	}
}

func TestServerStudyGet(t *testing.T) {
	s, fb := newTestServer(t, Config{})
	h := s.Handler()

	miss := post(t, h, "/v1/tools/fet.study.get", `{"n":128,"engine":"markov-chain"}`)
	if miss.Code != http.StatusNotFound {
		t.Fatalf("uncached get: %d %s", miss.Code, miss.Body)
	}
	if fb.runs.Load() != 0 {
		t.Fatal("fet.study.get triggered a run")
	}

	cold := post(t, h, "/v1/tools/fet.study.run", `{"n":128,"engine":"markov-chain"}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("run: %d %s", cold.Code, cold.Body)
	}
	key, _ := fb.Resolve(Query{N: 128, Engine: "markov-chain"})

	for name, w := range map[string]*httptest.ResponseRecorder{
		"by query":     post(t, h, "/v1/tools/fet.study.get", `{"n":128,"engine":"markov-chain"}`),
		"by canonical": post(t, h, "/v1/tools/fet.study.get", fmt.Sprintf(`{"key":%q}`, key.Canonical())),
		"by hash":      post(t, h, "/v1/tools/fet.study.get", fmt.Sprintf(`{"key":%q}`, key.Hash())),
		"by GET":       get(t, h, "/v1/tools/fet.study.get?key="+key.Hash()),
	} {
		if w.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", name, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), cold.Body.Bytes()) {
			t.Fatalf("%s: body differs from cold run", name)
		}
		if tier := w.Header().Get("X-Fetserve-Tier"); tier != "cache" {
			t.Fatalf("%s: tier %q", name, tier)
		}
	}

	if w := get(t, h, "/v1/tools/fet.study.get"); w.Code != http.StatusBadRequest {
		t.Fatalf("GET without key: %d", w.Code)
	}
	if w := post(t, h, "/v1/tools/fet.study.get", `{"key":"sha256:short"}`); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed address: %d", w.Code)
	}
}

func TestServerTypedErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		body string
		code int
		want ErrorCode
	}{
		{`{"n":128,"bogus":true}`, http.StatusBadRequest, CodeInvalidArgument},
		{`{"n":1}`, http.StatusBadRequest, CodeInvalidArgument},
		{`{"n":128,"scenario":"missing"}`, http.StatusNotFound, CodeNotFound},
		{`not json`, http.StatusBadRequest, CodeInvalidArgument},
		{`{"n":128}{"n":2}`, http.StatusBadRequest, CodeInvalidArgument},
	}
	for _, tc := range cases {
		w := post(t, h, "/v1/tools/fet.study.run", tc.body)
		if w.Code != tc.code {
			t.Errorf("%q: status %d, want %d (%s)", tc.body, w.Code, tc.code, w.Body)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == nil || env.Error.Code != tc.want {
			t.Errorf("%q: envelope %s, want code %s", tc.body, w.Body, tc.want)
		}
	}
}

func TestServerStreamedRun(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	plain := post(t, h, "/v1/tools/fet.study.run", `{"n":256}`)
	if plain.Code != http.StatusOK {
		t.Fatalf("plain run: %d", plain.Code)
	}

	// A second cell streamed cold: progress events then the result.
	w := post(t, h, "/v1/tools/fet.study.run?stream=1", `{"n":512}`)
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		"event: progress\ndata: {\"done\":1,\"total\":2}\n\n",
		"event: progress\ndata: {\"done\":2,\"total\":2}\n\n",
		"event: result\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("stream output missing %q:\n%s", want, out)
		}
	}
	// The streamed result's data equals the body a plain request serves.
	replay := post(t, h, "/v1/tools/fet.study.run", `{"n":512}`)
	if tier := replay.Header().Get("X-Fetserve-Tier"); tier != "cache" {
		t.Fatalf("streamed run did not populate the cache (tier %q)", tier)
	}
	if !strings.Contains(out, "event: result\ndata: "+replay.Body.String()+"\n\n") {
		t.Fatalf("streamed result differs from plain body:\n%s\nvs %s", out, replay.Body)
	}

	// A cache hit with streaming still answers as a stream.
	hit := post(t, h, "/v1/tools/fet.study.run?stream=1", `{"n":512}`)
	if ct := hit.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("cached stream content type %q", ct)
	}
	if !strings.Contains(hit.Body.String(), "event: result\ndata: "+replay.Body.String()) {
		t.Fatalf("cached stream result differs:\n%s", hit.Body)
	}
}

func TestServerSweepInspectAndCachedFlag(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	before := post(t, h, "/v1/tools/fet.sweep.inspect", `{"ns":[64,128]}`)
	if before.Code != http.StatusOK {
		t.Fatalf("inspect: %d %s", before.Code, before.Body)
	}
	var insp Inspection
	if err := json.Unmarshal(before.Body.Bytes(), &insp); err != nil {
		t.Fatal(err)
	}
	if insp.Cells != 2 || insp.Rows[0].Cached || insp.Rows[1].Cached {
		t.Fatalf("fresh inspection: %+v", insp)
	}
	statsBefore := s.CacheStats()

	if w := post(t, h, "/v1/tools/fet.study.run", `{"n":64}`); w.Code != http.StatusOK {
		t.Fatalf("run: %d", w.Code)
	}
	after := post(t, h, "/v1/tools/fet.sweep.inspect", `{"ns":[64,128]}`)
	var insp2 Inspection
	if err := json.Unmarshal(after.Body.Bytes(), &insp2); err != nil {
		t.Fatal(err)
	}
	if !insp2.Rows[0].Cached || insp2.Rows[1].Cached {
		t.Fatalf("cached flags after one run: %+v", insp2.Rows)
	}
	// Inspection peeks must not have moved the miss counter (one miss
	// and one put came from the run itself).
	statsAfter := s.CacheStats()
	if statsAfter.Misses != statsBefore.Misses+1 {
		t.Fatalf("inspect mutated miss counter: %+v → %+v", statsBefore, statsAfter)
	}
}

func TestServerHealthAndListingsAndMetrics(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 3})
	h := s.Handler()

	health := get(t, h, "/v1/tools/fet.health")
	if health.Code != http.StatusOK {
		t.Fatalf("health: %d", health.Code)
	}
	var hr healthResponse
	if err := json.Unmarshal(health.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Service != "fetserve" || hr.Workers != 3 || hr.KeyVersion != KeyVersion {
		t.Fatalf("health payload: %+v", hr)
	}
	if len(hr.Tools) != len(ToolNames()) {
		t.Fatalf("health tools: %v", hr.Tools)
	}

	list := get(t, h, "/v1/tools/fet.scenarios.list")
	var ls Listings
	if err := json.Unmarshal(list.Body.Bytes(), &ls); err != nil {
		t.Fatal(err)
	}
	if len(ls.Scenarios) == 0 || len(ls.Engines) == 0 || len(ls.Topologies) == 0 {
		t.Fatalf("listings: %+v", ls)
	}

	post(t, h, "/v1/tools/fet.study.run", `{"n":64}`)
	post(t, h, "/v1/tools/fet.study.run", `{"n":1}`)
	m := get(t, h, "/metrics")
	for _, want := range []string{
		`fetserve_requests_total{tool="fet.study.run",code="ok"} 1`,
		`fetserve_requests_total{tool="fet.study.run",code="invalidArgument"} 1`,
		`fetserve_requests_total{tool="fet.health",code="ok"} 1`,
		`fetserve_request_seconds_count{tool="fet.study.run"} 2`,
		"fetserve_cache_entries 1",
		"fetserve_cache_misses_total 1",
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, m.Body)
		}
	}
}

func TestServerSpecsCoverEveryTool(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	index := get(t, h, "/v1/specs")
	var idx map[string][]string
	if err := json.Unmarshal(index.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if got := idx["tools"]; len(got) != len(ToolNames()) {
		t.Fatalf("spec index: %v", got)
	}
	for _, tool := range ToolNames() {
		data, ok := Spec(tool)
		if !ok {
			t.Fatalf("tool %s has no embedded spec", tool)
		}
		text := string(data)
		if !strings.Contains(text, "SHALL") || !strings.Contains(text, "#### Scenario:") {
			t.Errorf("spec for %s lacks SHALL requirements or scenarios", tool)
		}
		w := get(t, h, "/v1/specs/"+tool)
		if w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), data) {
			t.Errorf("served spec for %s: %d", tool, w.Code)
		}
	}
	if w := get(t, h, "/v1/specs/fet.unknown"); w.Code != http.StatusNotFound {
		t.Fatalf("unknown spec: %d", w.Code)
	}
}

func TestServerPersistentCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, fb1 := newTestServer(t, Config{CacheDir: dir})
	cold := post(t, s1.Handler(), "/v1/tools/fet.study.run", `{"n":128,"engine":"markov-chain"}`)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: %d", cold.Code)
	}
	if fb1.runs.Load() != 1 {
		t.Fatalf("runs: %d", fb1.runs.Load())
	}

	s2, fb2 := newTestServer(t, Config{CacheDir: dir})
	hit := post(t, s2.Handler(), "/v1/tools/fet.study.run", `{"n":128,"engine":"markov-chain"}`)
	if hit.Code != http.StatusOK || hit.Header().Get("X-Fetserve-Tier") != "cache" {
		t.Fatalf("restarted daemon: %d, tier %q", hit.Code, hit.Header().Get("X-Fetserve-Tier"))
	}
	if !bytes.Equal(cold.Body.Bytes(), hit.Body.Bytes()) {
		t.Fatal("persisted answer differs across restart")
	}
	if fb2.runs.Load() != 0 {
		t.Fatal("restarted daemon re-ran a persisted cell")
	}
}

// fakeClock is a deterministic Config.Now: every reading advances a
// fixed step, so each instrumented request observes exactly one step
// of latency (route reads the clock twice, at entry and exit).
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestServerInjectedClockLatency(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1700000000, 0), step: 250 * time.Millisecond}
	s, _ := newTestServer(t, Config{Now: clock.now})
	h := s.Handler()
	if w := get(t, h, "/v1/tools/fet.health"); w.Code != http.StatusOK {
		t.Fatalf("health: %d", w.Code)
	}
	body := get(t, h, "/metrics").Body.String()
	// 250 ms lands in the le="1" bucket and nothing earlier; the sum and
	// count are exact because the clock is injected.
	for _, want := range []string{
		`fetserve_request_seconds_bucket{tool="fet.health",le="0.01"} 0`,
		`fetserve_request_seconds_bucket{tool="fet.health",le="1"} 1`,
		`fetserve_request_seconds_sum{tool="fet.health"} 0.25`,
		`fetserve_request_seconds_count{tool="fet.health"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing exact line %q\n%s", want, body)
		}
	}
}
