package serve

import (
	"embed"
	"net/http"
)

// The per-tool acceptance specs ship inside the binary and are served
// at /v1/specs/<tool>, so a running daemon documents its own contract
// (and the spec-coverage test can assert every tool has one).
//
//go:embed specs/*.md
var specFS embed.FS

// Spec returns the embedded acceptance spec for a tool name.
func Spec(tool string) ([]byte, bool) {
	data, err := specFS.ReadFile("specs/" + tool + ".md")
	if err != nil {
		return nil, false
	}
	return data, true
}

// handleSpecIndex lists the tools with specs (all of them).
func (s *Server) handleSpecIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{"tools": ToolNames()})
}

// handleSpec serves one tool's spec as markdown.
func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	tool := r.PathValue("tool")
	data, ok := Spec(tool)
	if !ok {
		writeError(w, Errorf(CodeNotFound, "no spec for tool %q; known tools: %v", tool, ToolNames()))
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.Write(data)
}
