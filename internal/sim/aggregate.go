package sim

import (
	"fmt"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// aggregateExecutor advances the population as per-(opinion, state)
// occupancy counts instead of per-agent objects. One round costs the
// protocol's StepOccupancy — O(ℓ²) binomial draws for the trend
// protocols — independent of the population size, so worst-case
// disseminations at n = 10⁸⁺ run in seconds while remaining agent-level
// exact in distribution (every agent's round update law is applied to
// every agent; only the per-agent identities are forgotten, which the
// opinion-fraction statistics never depended on).
type aggregateExecutor struct {
	cfg   *Config
	proto AggregateProtocol
	// sparse and annealedK select the degree-annealed round update
	// (EngineAggregateSparse): annealedK is the topology's uniform
	// out-degree, 0 on the uniform-mixing path.
	sparse    SparseAggregateProtocol
	annealedK int
	occ       *Occupancy
	next      *Occupancy
	// sourceOnes is the number of sources displaying 1 (all sources agree,
	// so this is Sources or 0 depending on the current correct opinion).
	sourceOnes int
	ones       int // total 1-opinions, sources included
	src        *rng.Source
}

func newAggregateExecutor(c *Config) (*aggregateExecutor, error) {
	proto, ok := c.Protocol.(AggregateProtocol)
	if !ok {
		return nil, fmt.Errorf("sim: engine %v requires an aggregate-capable protocol, %q is not",
			c.Engine, c.Protocol.Name())
	}
	var sparse SparseAggregateProtocol
	annealedK := 0
	if c.Engine == EngineAggregateSparse {
		sparse, ok = c.Protocol.(SparseAggregateProtocol)
		if !ok {
			return nil, fmt.Errorf("sim: engine %v requires a sparse-aggregate-capable protocol, %q is not",
				c.Engine, c.Protocol.Name())
		}
		k, ok := topo.AnnealedDegree(c.Topology)
		if !ok {
			// withDefaults already rejects this; keep the executor safe on
			// direct construction.
			return nil, fmt.Errorf("sim: engine %v requires a degree-annealed topology, %q is not",
				c.Engine, c.Topology.Name())
		}
		annealedK = k
	}
	if c.StateInit != nil {
		return nil, fmt.Errorf("sim: engine %v does not support StateInit (no per-agent objects)", c.Engine)
	}
	states := proto.AggregateStates()
	if states < 1 {
		return nil, fmt.Errorf("sim: protocol %q reports %d aggregate states", proto.Name(), states)
	}

	e := &aggregateExecutor{
		cfg:       c,
		proto:     proto,
		sparse:    sparse,
		annealedK: annealedK,
		occ:       NewOccupancy(states),
		next:      NewOccupancy(states),
		// Stream 0 matches the agent engines' initializer stream; all
		// aggregate draws share it (the engine is sequential by design —
		// its per-round work is O(ℓ²) regardless of n).
		src: rng.NewFrom(c.Seed, 0),
	}

	nonSources := c.N - c.Sources
	e.sourceOnes = int(c.Correct) * c.Sources
	initOnes, err := e.initialOnes(nonSources)
	if err != nil {
		return nil, err
	}

	// Opinions are set; distribute internal states. CorruptStates means
	// the adversary placed arbitrary memories — modeled, as in the agent
	// engines, by a uniform draw per agent, i.e. a uniform multinomial
	// split per opinion class. Otherwise all agents start at state 0
	// (the zero value of the agent structs).
	if c.CorruptStates {
		uniform := make([]float64, states)
		for s := range uniform {
			uniform[s] = 1 / float64(states)
		}
		e.src.Multinomial(initOnes, uniform, e.occ.Counts[1])
		e.src.Multinomial(nonSources-initOnes, uniform, e.occ.Counts[0])
	} else {
		e.occ.Counts[1][0] = initOnes
		e.occ.Counts[0][0] = nonSources - initOnes
	}
	e.ones = e.sourceOnes + initOnes
	return e, nil
}

// initialOnes computes the number of non-source agents starting at 1,
// preferring the initializer's aggregate form and falling back to a
// one-off materialized assignment for moderate populations.
func (e *aggregateExecutor) initialOnes(nonSources int) (int, error) {
	c := e.cfg
	if agg, ok := c.Init.(AggregateInitializer); ok {
		ones := agg.AggregateOnes(c.N, nonSources, e.sourceOnes, e.src)
		if ones < 0 || ones > nonSources {
			return 0, fmt.Errorf("sim: initializer %q reported %d ones among %d non-sources",
				c.Init.Name(), ones, nonSources)
		}
		return ones, nil
	}

	// Fallback: materialize the opinions once. Refuse population sizes
	// where the temporary arrays would defeat the engine's purpose.
	const materializeLimit = 1 << 26
	if c.N > materializeLimit {
		return 0, fmt.Errorf("sim: initializer %q cannot start the aggregate engine at n = %d "+
			"(implement AggregateInitializer to avoid materializing the population)", c.Init.Name(), c.N)
	}
	opinions := make([]byte, c.N)
	isSource := make([]bool, c.N)
	for i := 0; i < c.Sources; i++ {
		isSource[i] = true
		opinions[i] = c.Correct
	}
	c.Init.Assign(opinions, isSource, e.src)
	for i := 0; i < c.Sources; i++ {
		if opinions[i] != c.Correct {
			return 0, fmt.Errorf("sim: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}
	ones := 0
	for _, o := range opinions {
		ones += int(o)
	}
	return ones - e.sourceOnes, nil
}

// Ones implements roundExecutor.
func (e *aggregateExecutor) Ones() int { return e.ones }

// close implements roundExecutor (no background resources).
func (e *aggregateExecutor) close() {}

// Step implements roundExecutor.
func (e *aggregateExecutor) Step(correct byte) error {
	c := e.cfg
	e.sourceOnes = int(correct) * c.Sources
	nonSourceOnes := e.occ.Ones()
	e.ones = e.sourceOnes + nonSourceOnes

	x := float64(e.ones) / float64(c.N)

	e.next.Zero()
	if e.annealedK > 0 {
		// Annealed sparse update: noise folds in per neighborhood class
		// (observations read j/k-fraction neighborhoods, not x), so the
		// raw fraction passes through.
		e.sparse.StepOccupancySparse(e.occ, e.next, e.annealedK, x, c.NoiseEps, e.src)
	} else {
		e.proto.StepOccupancy(e.occ, e.next, observedFraction(x, c.NoiseEps), e.src)
	}
	e.occ, e.next = e.next, e.occ

	e.ones = e.sourceOnes + e.occ.Ones()
	return nil
}
