package sim

import "math/bits"

// opinionBits is the packed population opinion array: one bit per agent,
// 64 agents per word. It replaces the []byte opinion/next buffers of the
// agent executor — an 8× reduction in the memory the per-round sweep and
// the literal observers touch, with the population 1-count available by
// popcount instead of a byte-wide sum.
//
// Invariant: bits at indices ≥ n are always zero (zero and packFrom
// clear them; set never addresses them), so ones can popcount whole
// words without masking a tail.
type opinionBits struct {
	words []uint64
	n     int
}

// resize shapes the bitset for n agents, reusing the backing array when
// its capacity allows, and zeroes it.
func (b *opinionBits) resize(n int) {
	w := (n + 63) >> 6
	if cap(b.words) < w {
		b.words = make([]uint64, w)
	}
	b.words = b.words[:w]
	b.n = n
	b.zero()
}

// zero clears every bit.
func (b *opinionBits) zero() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// get returns agent i's opinion bit.
func (b *opinionBits) get(i int) byte {
	return byte(b.words[uint(i)>>6] >> (uint(i) & 63) & 1)
}

// set writes agent i's opinion bit. Concurrent writers must not share a
// word: the parallel sweep aligns its shard boundaries to multiples of
// 64 so each word has exactly one writer.
func (b *opinionBits) set(i int, v byte) {
	w := &b.words[uint(i)>>6]
	m := uint64(1) << (uint(i) & 63)
	if v != 0 {
		*w |= m
	} else {
		*w &^= m
	}
}

// ones returns the number of set bits — the population 1-count — by
// per-word popcount.
func (b *opinionBits) ones() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// packFrom packs the first b.n bytes of ops (each 0 or 1) into the
// bitset, 64 at a time.
func (b *opinionBits) packFrom(ops []byte) {
	b.zero()
	for i := 0; i < b.n; i++ {
		if ops[i] != 0 {
			b.words[uint(i)>>6] |= uint64(1) << (uint(i) & 63)
		}
	}
}
