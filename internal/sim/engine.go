package sim

import (
	"context"
	"errors"
	"fmt"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// Config describes one simulation run.
type Config struct {
	// N is the population size, including sources. Must be ≥ 2.
	N int
	// Sources is the number of source agents (default 1). The paper's
	// framework allows a constant number of sources that agree on the
	// correct opinion.
	Sources int
	// Correct is the opinion held by the sources (default OpinionOne).
	Correct byte
	// Protocol is the non-source update rule. Required.
	Protocol Protocol
	// Init chooses the adversarial starting opinions. Required.
	Init Initializer
	// Engine selects the round executor (default fast).
	Engine EngineKind
	// Parallelism bounds the number of worker goroutines used by
	// EngineAgentParallel (0 = GOMAXPROCS). Results are bit-identical
	// across all parallelism levels: every agent owns its RNG stream and
	// shards write disjoint slices.
	Parallelism int
	// Seed is the root seed; all randomness derives from it.
	Seed uint64
	// MaxRounds caps the simulation length. Required (> 0).
	MaxRounds int
	// AbsorbWindow is the number of consecutive all-correct rounds after
	// which the run is declared absorbed (default 2: under FET, two
	// consecutive all-correct rounds force ties forever, so the state is
	// provably absorbing).
	AbsorbWindow int
	// RunToEnd, when set, keeps simulating after absorption so the caller
	// can verify stability over the full horizon.
	RunToEnd bool
	// RecordTrajectory stores x_t for every executed round in the result.
	RecordTrajectory bool
	// CorruptStates, when set, calls CorruptState on every agent that
	// implements StateCorruptible before round 0 (worst-case memory). The
	// aggregate engine honors it by drawing every agent's internal state
	// uniformly.
	CorruptStates bool
	// StateInit, when non-nil, is invoked on every non-source agent after
	// construction (and after CorruptStates). It allows experiments to
	// place protocol-specific internal state, e.g. seeding FET counts to
	// start the chain at a chosen grid point. Not supported by
	// EngineAggregate (which has no per-agent objects).
	StateInit func(i int, agent Agent, src *rng.Source)
	// Observers receive a typed RoundEvent after every executed round, in
	// order. An observer returning ErrStopRun stops the run early
	// (reported as StoppedEarly, not converged unless already absorbed);
	// any other error aborts the run.
	Observers []Observer
	// Topology selects the observation topology: who each agent can
	// observe (nil = topo.Complete(), the paper's uniform mixing). On a
	// non-complete topology every agent engine samples neighbor opinions
	// literally through the graph (the tabulated-binomial fast path is a
	// uniform-mixing identity), and EngineAggregate is rejected — the
	// occupancy update law is exact only under uniform mixing.
	Topology topo.Topology
	// NoiseEps, when positive, flips every observed opinion bit
	// independently with probability NoiseEps before the agent sees it —
	// the noisy-communication model of Feinerman et al. (2017) and
	// Boczkowski et al. (2018), referenced in the paper's related work.
	// Must lie in [0, 1/2).
	NoiseEps float64
	// FlipCorrectAt, when positive, flips the correct opinion at the
	// start of that round: the environment changes mid-run and the
	// sources switch sides. Convergence is then judged against the new
	// correct value (the paper's §1.2 remark: "the adversary may initially
	// set a different opinion to the source, but then the value of the
	// correct bit would change").
	FlipCorrectAt int
}

// Result reports the outcome of a run.
type Result struct {
	// Converged reports whether the absorption criterion was met.
	Converged bool
	// Round is the first round of the final all-correct run (the paper's
	// t_con) when Converged, else −1.
	Round int
	// Rounds is the number of rounds actually executed.
	Rounds int
	// FinalX is the fraction of 1-opinions after the last executed round.
	FinalX float64
	// Trajectory holds x_t for t = 0..Rounds when requested (x_0 is the
	// initial configuration).
	Trajectory []float64
	// StoppedEarly reports that an Observer requested a stop.
	StoppedEarly bool
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.N < 2 {
		return cfg, fmt.Errorf("sim: N = %d, need at least 2 agents", cfg.N)
	}
	if cfg.Sources == 0 {
		cfg.Sources = 1
	}
	if cfg.Sources < 1 || cfg.Sources >= cfg.N {
		return cfg, fmt.Errorf("sim: Sources = %d out of range [1, N)", cfg.Sources)
	}
	if cfg.Correct > 1 {
		return cfg, fmt.Errorf("sim: Correct = %d, want 0 or 1", cfg.Correct)
	}
	if cfg.Protocol == nil {
		return cfg, fmt.Errorf("sim: Protocol is required")
	}
	if cfg.Init == nil {
		return cfg, fmt.Errorf("sim: Init is required")
	}
	if cfg.MaxRounds <= 0 {
		return cfg, fmt.Errorf("sim: MaxRounds = %d, want > 0", cfg.MaxRounds)
	}
	if cfg.AbsorbWindow == 0 {
		cfg.AbsorbWindow = 2
	}
	if cfg.AbsorbWindow < 1 {
		return cfg, fmt.Errorf("sim: AbsorbWindow = %d, want ≥ 1", cfg.AbsorbWindow)
	}
	if cfg.Parallelism < 0 {
		return cfg, fmt.Errorf("sim: Parallelism = %d, want ≥ 0", cfg.Parallelism)
	}
	if cfg.NoiseEps < 0 || cfg.NoiseEps >= 0.5 {
		return cfg, fmt.Errorf("sim: NoiseEps = %v, want in [0, 1/2)", cfg.NoiseEps)
	}
	if !topo.IsComplete(cfg.Topology) {
		if err := cfg.Topology.Validate(cfg.N); err != nil {
			return cfg, fmt.Errorf("sim: %v", err)
		}
		if cfg.Engine == EngineAggregate {
			return cfg, fmt.Errorf("sim: engine %v is exact only under uniform mixing; topology %q needs an agent engine",
				cfg.Engine, cfg.Topology.Name())
		}
		if cfg.Engine == EngineAggregateSparse {
			if _, ok := topo.AnnealedDegree(cfg.Topology); !ok {
				return cfg, fmt.Errorf("sim: engine %v models degree-annealed topologies only; topology %q has fixed local structure and needs an agent engine",
					cfg.Engine, cfg.Topology.Name())
			}
		}
	} else if cfg.Engine == EngineAggregateSparse {
		return cfg, fmt.Errorf("sim: engine %v requires a degree-annealed sparse topology; use %v under uniform mixing",
			cfg.Engine, EngineAggregate)
	}
	if cfg.FlipCorrectAt < 0 {
		return cfg, fmt.Errorf("sim: FlipCorrectAt = %d, want ≥ 0", cfg.FlipCorrectAt)
	}
	return cfg, nil
}

// Validate reports whether the configuration would be accepted by Run,
// without executing anything. It lets batch runners reject a bad
// replicate template up front instead of once per replicate.
func (c *Config) Validate() error {
	_, err := c.withDefaults()
	return err
}

// Run executes the simulation described by cfg and returns its result.
// It is RunContext with a background context.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation described by cfg, honoring ctx
// inside the round loop: cancellation or deadline expiry is checked
// between rounds, and the run returns ctx.Err() within one round of the
// context ending.
//
// RunContext is a thin orchestrator: it owns the round loop and all
// bookkeeping (absorption detection, observer dispatch, mid-run
// environment flips, early stops) while the population itself is
// advanced by a roundExecutor selected via Config.Engine. All executors
// implement the same synchronous-round semantics, so the bookkeeping is
// engine-independent.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	exec, err := newRoundExecutor(&c)
	if err != nil {
		return Result{}, err
	}
	defer exec.close()
	return runLoop(ctx, &c, exec)
}

// laneState is one replicate's round-loop bookkeeping — absorption
// detection, mid-run environment flips, observer dispatch, early stops —
// factored out of the loop so the sequential runLoop and the lockstep
// replicate driver (which interleaves up to 64 of these, one per lane)
// share a single copy of the semantics. Methods mirror the loop's
// phases: init before round 0, maybeFlip at the top of a round, step the
// population, then afterRound; result renders the final Result.
type laneState struct {
	n            int
	correct      byte
	absorbWindow int
	flipAt       int
	runToEnd     bool
	observers    []Observer
	rec          *TrajectoryRecorder
	correctRun   int
	absorbed     bool
	absorbedAt   int
	stopped      bool
}

func (ls *laneState) allCorrect(ones int) bool {
	if ls.correct == OpinionOne {
		return ones == ls.n
	}
	return ones == 0
}

// init prepares the bookkeeping for one replicate of c starting from
// ones 1-opinions, with the given per-replicate observers (the caller
// resolves them: Config.Observers for the sequential loop, per-lane
// lists for the lockstep driver).
func (ls *laneState) init(c *Config, observers []Observer, ones int) {
	ls.n = c.N
	ls.correct = c.Correct
	ls.absorbWindow = c.AbsorbWindow
	ls.flipAt = c.FlipCorrectAt
	ls.runToEnd = c.RunToEnd
	ls.stopped = false
	ls.rec = nil

	// Trajectory recording is an Observer instance; x_0 precedes the
	// first event, so the orchestrator seeds it here.
	if c.RecordTrajectory {
		ls.rec = &TrajectoryRecorder{Xs: make([]float64, 0, c.MaxRounds+1)}
		ls.rec.Xs = append(ls.rec.Xs, float64(ones)/float64(ls.n))
		observers = append(append(make([]Observer, 0, len(observers)+1), observers...), ls.rec)
	}
	ls.observers = observers

	ls.correctRun = 0
	if ls.allCorrect(ones) {
		ls.correctRun = 1
	}
	ls.absorbed = ls.correctRun >= ls.absorbWindow
	ls.absorbedAt = -1
	if ls.absorbed {
		ls.absorbedAt = 0
	}
}

// maybeFlip applies the FlipCorrectAt environment change at the top of
// a round: the sources switch to the new correct opinion and
// convergence is judged against it from here on.
func (ls *laneState) maybeFlip(round int) {
	if ls.flipAt > 0 && round == ls.flipAt {
		ls.correct = 1 - ls.correct
		ls.correctRun = 0
		ls.absorbed = false
		ls.absorbedAt = -1
	}
}

// afterRound runs the post-step bookkeeping for an executed round:
// absorption tracking, observer dispatch (ErrStopRun requests a clean
// early stop that still lets the remaining observers see the event),
// and the early-exit decision. halt reports that the replicate is done
// (stop requested, or absorbed with no pending flip and no RunToEnd);
// a non-nil err aborts the replicate.
func (ls *laneState) afterRound(round, ones int) (halt bool, err error) {
	newX := float64(ones) / float64(ls.n)
	if ls.allCorrect(ones) {
		ls.correctRun++
	} else {
		ls.correctRun = 0
		ls.absorbed = false
		ls.absorbedAt = -1
	}
	if !ls.absorbed && ls.correctRun >= ls.absorbWindow {
		ls.absorbed = true
		ls.absorbedAt = round + 1 - ls.correctRun + 1 // first round of the run
	}

	stop := false
	ev := RoundEvent{Round: round, X: newX, Ones: ones, Correct: ls.correct, Absorbed: ls.absorbed}
	for _, obs := range ls.observers {
		if err := obs.ObserveRound(ev); err != nil {
			if errors.Is(err, ErrStopRun) {
				// A stop request still lets the remaining observers
				// (including the trajectory recorder) see the event.
				stop = true
				continue
			}
			return false, err
		}
	}
	if stop {
		ls.stopped = true
		return true, nil
	}
	pendingFlip := ls.flipAt > 0 && round < ls.flipAt
	return ls.absorbed && !ls.runToEnd && !pendingFlip, nil
}

// result renders the replicate's Result after rounds executed rounds
// with a final population of ones 1-opinions.
func (ls *laneState) result(rounds, ones int) Result {
	res := Result{
		Round:        -1,
		Rounds:       rounds,
		FinalX:       float64(ones) / float64(ls.n),
		Converged:    ls.absorbed,
		StoppedEarly: ls.stopped,
	}
	if ls.absorbed {
		res.Round = ls.absorbedAt
	}
	if ls.rec != nil {
		res.Trajectory = ls.rec.Xs
	}
	return res
}

// runLoop is the engine-independent round loop shared by RunContext and
// the pooled Pool.RunContext: c must already carry defaults and exec must
// be populated for this replicate. The caller owns the executor's
// lifecycle (close or pool return).
func runLoop(ctx context.Context, cfgp *Config, exec roundExecutor) (Result, error) {
	c := *cfgp
	var ls laneState
	ls.init(&c, c.Observers, exec.Ones())

	round := 0
	for ; round < c.MaxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		ls.maybeFlip(round)
		if err := exec.Step(ls.correct); err != nil {
			return Result{}, err
		}
		halt, err := ls.afterRound(round, exec.Ones())
		if err != nil {
			return Result{}, err
		}
		if halt {
			round++
			break
		}
	}
	return ls.result(round, exec.Ones()), nil
}
