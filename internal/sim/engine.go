package sim

import (
	"fmt"

	"passivespread/internal/rng"
)

// Config describes one simulation run.
type Config struct {
	// N is the population size, including sources. Must be ≥ 2.
	N int
	// Sources is the number of source agents (default 1). The paper's
	// framework allows a constant number of sources that agree on the
	// correct opinion.
	Sources int
	// Correct is the opinion held by the sources (default OpinionOne).
	Correct byte
	// Protocol is the non-source update rule. Required.
	Protocol Protocol
	// Init chooses the adversarial starting opinions. Required.
	Init Initializer
	// Engine selects the observation implementation (default fast).
	Engine EngineKind
	// Seed is the root seed; all randomness derives from it.
	Seed uint64
	// MaxRounds caps the simulation length. Required (> 0).
	MaxRounds int
	// AbsorbWindow is the number of consecutive all-correct rounds after
	// which the run is declared absorbed (default 2: under FET, two
	// consecutive all-correct rounds force ties forever, so the state is
	// provably absorbing).
	AbsorbWindow int
	// RunToEnd, when set, keeps simulating after absorption so the caller
	// can verify stability over the full horizon.
	RunToEnd bool
	// RecordTrajectory stores x_t for every executed round in the result.
	RecordTrajectory bool
	// CorruptStates, when set, calls CorruptState on every agent that
	// implements StateCorruptible before round 0 (worst-case memory).
	CorruptStates bool
	// StateInit, when non-nil, is invoked on every non-source agent after
	// construction (and after CorruptStates). It allows experiments to
	// place protocol-specific internal state, e.g. seeding FET counts to
	// start the chain at a chosen grid point.
	StateInit func(i int, agent Agent, src *rng.Source)
	// OnRound, when non-nil, is invoked after every round with the round
	// index and the new fraction of 1-opinions. Returning false stops the
	// run early (reported as stopped, not converged unless already
	// absorbed).
	OnRound func(round int, x float64) bool
	// NoiseEps, when positive, flips every observed opinion bit
	// independently with probability NoiseEps before the agent sees it —
	// the noisy-communication model of Feinerman et al. (2017) and
	// Boczkowski et al. (2018), referenced in the paper's related work.
	// Must lie in [0, 1/2).
	NoiseEps float64
	// FlipCorrectAt, when positive, flips the correct opinion at the
	// start of that round: the environment changes mid-run and the
	// sources switch sides. Convergence is then judged against the new
	// correct value (the paper's §1.2 remark: "the adversary may initially
	// set a different opinion to the source, but then the value of the
	// correct bit would change").
	FlipCorrectAt int
}

// Result reports the outcome of a run.
type Result struct {
	// Converged reports whether the absorption criterion was met.
	Converged bool
	// Round is the first round of the final all-correct run (the paper's
	// t_con) when Converged, else −1.
	Round int
	// Rounds is the number of rounds actually executed.
	Rounds int
	// FinalX is the fraction of 1-opinions after the last executed round.
	FinalX float64
	// Trajectory holds x_t for t = 0..Rounds when requested (x_0 is the
	// initial configuration).
	Trajectory []float64
	// StoppedEarly reports that OnRound requested a stop.
	StoppedEarly bool
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.N < 2 {
		return cfg, fmt.Errorf("sim: N = %d, need at least 2 agents", cfg.N)
	}
	if cfg.Sources == 0 {
		cfg.Sources = 1
	}
	if cfg.Sources < 1 || cfg.Sources >= cfg.N {
		return cfg, fmt.Errorf("sim: Sources = %d out of range [1, N)", cfg.Sources)
	}
	if cfg.Correct > 1 {
		return cfg, fmt.Errorf("sim: Correct = %d, want 0 or 1", cfg.Correct)
	}
	if cfg.Protocol == nil {
		return cfg, fmt.Errorf("sim: Protocol is required")
	}
	if cfg.Init == nil {
		return cfg, fmt.Errorf("sim: Init is required")
	}
	if cfg.MaxRounds <= 0 {
		return cfg, fmt.Errorf("sim: MaxRounds = %d, want > 0", cfg.MaxRounds)
	}
	if cfg.AbsorbWindow == 0 {
		cfg.AbsorbWindow = 2
	}
	if cfg.AbsorbWindow < 1 {
		return cfg, fmt.Errorf("sim: AbsorbWindow = %d, want ≥ 1", cfg.AbsorbWindow)
	}
	if cfg.NoiseEps < 0 || cfg.NoiseEps >= 0.5 {
		return cfg, fmt.Errorf("sim: NoiseEps = %v, want in [0, 1/2)", cfg.NoiseEps)
	}
	if cfg.FlipCorrectAt < 0 {
		return cfg, fmt.Errorf("sim: FlipCorrectAt = %d, want ≥ 0", cfg.FlipCorrectAt)
	}
	return cfg, nil
}

// Run executes the simulation described by cfg and returns its result.
func Run(cfg Config) (Result, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}

	n := c.N
	opinions := make([]byte, n)
	next := make([]byte, n)
	isSource := make([]bool, n)
	// Sources occupy the first indices; sampling is uniform so placement
	// is irrelevant.
	for i := 0; i < c.Sources; i++ {
		isSource[i] = true
		opinions[i] = c.Correct
	}

	// Stream 0 seeds the initializer; streams 1..n seed the agents.
	initSrc := rng.NewFrom(c.Seed, 0)
	c.Init.Assign(opinions, isSource, initSrc)
	for i := 0; i < c.Sources; i++ {
		if opinions[i] != c.Correct {
			return Result{}, fmt.Errorf("sim: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}

	agents := make([]Agent, n)
	srcs := make([]*rng.Source, n)
	for i := c.Sources; i < n; i++ {
		srcs[i] = rng.NewFrom(c.Seed, uint64(i)+1)
		agents[i] = c.Protocol.NewAgent(srcs[i])
		if c.CorruptStates {
			if sc, ok := agents[i].(StateCorruptible); ok {
				sc.CorruptState(srcs[i])
			}
		}
		if c.StateInit != nil {
			c.StateInit(i, agents[i], srcs[i])
		}
	}

	sampleSizes := c.Protocol.SampleSizes()

	correct := c.Correct
	countOnes := func(ops []byte) int {
		ones := 0
		for _, o := range ops {
			ones += int(o)
		}
		return ones
	}
	allCorrect := func(ops []byte) bool {
		for _, o := range ops {
			if o != correct {
				return false
			}
		}
		return true
	}

	res := Result{Round: -1}
	if c.RecordTrajectory {
		res.Trajectory = make([]float64, 0, c.MaxRounds+1)
		res.Trajectory = append(res.Trajectory, float64(countOnes(opinions))/float64(n))
	}

	correctRun := 0
	if allCorrect(opinions) {
		correctRun = 1
	}
	absorbed := correctRun >= c.AbsorbWindow
	absorbedAt := -1
	if absorbed {
		absorbedAt = 0
	}

	round := 0
	for ; round < c.MaxRounds; round++ {
		if c.FlipCorrectAt > 0 && round == c.FlipCorrectAt {
			// The environment changed: sources switch to the new correct
			// opinion and convergence is judged against it from here on.
			correct = 1 - correct
			for i := 0; i < c.Sources; i++ {
				opinions[i] = correct
			}
			correctRun = 0
			absorbed = false
			absorbedAt = -1
		}

		x := float64(countOnes(opinions)) / float64(n)

		var tables []roundTable
		if c.Engine == EngineAgentFast {
			tables = buildRoundTables(sampleSizes, observedFraction(x, c.NoiseEps))
		}

		for i := 0; i < n; i++ {
			if isSource[i] {
				next[i] = correct
				continue
			}
			var obs Observation
			switch c.Engine {
			case EngineAgentFast:
				obs = &fastObserver{x: observedFraction(x, c.NoiseEps), tables: tables, src: srcs[i]}
			case EngineAgentExact:
				obs = &exactObserver{opinions: opinions, src: srcs[i], noiseEps: c.NoiseEps}
			default:
				return Result{}, fmt.Errorf("sim: unknown engine %v", c.Engine)
			}
			next[i] = agents[i].Step(opinions[i], obs)
			if next[i] > 1 {
				return Result{}, fmt.Errorf("sim: protocol %q produced opinion %d", c.Protocol.Name(), next[i])
			}
		}
		opinions, next = next, opinions

		newX := float64(countOnes(opinions)) / float64(n)
		if c.RecordTrajectory {
			res.Trajectory = append(res.Trajectory, newX)
		}

		if allCorrect(opinions) {
			correctRun++
		} else {
			correctRun = 0
			absorbed = false
			absorbedAt = -1
		}
		if !absorbed && correctRun >= c.AbsorbWindow {
			absorbed = true
			absorbedAt = round + 1 - correctRun + 1 // first round of the run
		}

		if c.OnRound != nil && !c.OnRound(round, newX) {
			res.StoppedEarly = true
			round++
			break
		}
		pendingFlip := c.FlipCorrectAt > 0 && round < c.FlipCorrectAt
		if absorbed && !c.RunToEnd && !pendingFlip {
			round++
			break
		}
	}

	res.Rounds = round
	res.FinalX = float64(countOnes(opinions)) / float64(n)
	res.Converged = absorbed
	if absorbed {
		res.Round = absorbedAt
	}
	return res, nil
}
