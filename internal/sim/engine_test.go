package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"passivespread/internal/rng"
)

// infectProtocol is one-way rumor spreading toward a target opinion: an
// agent that already holds the target keeps it; otherwise it adopts the
// target as soon as it samples an agent holding it. With a source this
// converges in ≈ 2·log₂ n rounds (Karp et al.), making it a fast engine
// test fixture.
type infectProtocol struct{ target byte }

func (p infectProtocol) Name() string               { return "infect" }
func (infectProtocol) SampleSizes() []int           { return nil }
func (p infectProtocol) NewAgent(*rng.Source) Agent { return infectAgent{p.target} }

type infectAgent struct{ target byte }

func (a infectAgent) Step(cur byte, obs Observation) byte {
	if cur == a.target {
		return cur
	}
	if obs.Sample() == a.target {
		return a.target
	}
	return cur
}

// constProtocol always outputs a fixed opinion.
type constProtocol struct{ v byte }

func (p constProtocol) Name() string               { return "const" }
func (constProtocol) SampleSizes() []int           { return nil }
func (p constProtocol) NewAgent(*rng.Source) Agent { return constAgent{p.v} }

type constAgent struct{ v byte }

func (a constAgent) Step(byte, Observation) byte { return a.v }

// majorityProtocol adopts 1 iff at least ⌈m/2⌉ of m samples are 1 — uses
// CountOnes so the fast engine's tables get exercised.
type majorityProtocol struct{ m int }

func (p majorityProtocol) Name() string               { return "majority" }
func (p majorityProtocol) SampleSizes() []int         { return []int{p.m} }
func (p majorityProtocol) NewAgent(*rng.Source) Agent { return majorityAgent{p.m} }

type majorityAgent struct{ m int }

func (a majorityAgent) Step(cur byte, obs Observation) byte {
	c := obs.CountOnes(a.m)
	switch {
	case 2*c > a.m:
		return OpinionOne
	case 2*c < a.m:
		return OpinionZero
	default:
		return cur
	}
}

// allWrongInit starts every non-source at 0.
type allWrongInit struct{}

func (allWrongInit) Name() string { return "all-wrong" }
func (allWrongInit) Assign(op []byte, isSource []bool, _ *rng.Source) {
	for i := range op {
		if !isSource[i] {
			op[i] = OpinionZero
		}
	}
}

// allCorrectInit starts every non-source at 1.
type allCorrectInit struct{}

func (allCorrectInit) Name() string { return "all-correct" }
func (allCorrectInit) Assign(op []byte, isSource []bool, _ *rng.Source) {
	for i := range op {
		if !isSource[i] {
			op[i] = OpinionOne
		}
	}
}

func baseConfig() Config {
	return Config{
		N:         200,
		Protocol:  infectProtocol{target: OpinionOne},
		Init:      allWrongInit{},
		Correct:   OpinionOne,
		Seed:      1,
		MaxRounds: 500,
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny N", func(c *Config) { c.N = 1 }},
		{"no protocol", func(c *Config) { c.Protocol = nil }},
		{"no init", func(c *Config) { c.Init = nil }},
		{"no rounds", func(c *Config) { c.MaxRounds = 0 }},
		{"bad correct", func(c *Config) { c.Correct = 2 }},
		{"too many sources", func(c *Config) { c.Sources = 200 }},
		{"negative sources", func(c *Config) { c.Sources = -1 }},
		{"bad absorb window", func(c *Config) { c.AbsorbWindow = -3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("expected a config error")
			}
		})
	}
}

func TestInfectSpreadsFromSource(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("infect protocol did not converge in %d rounds (final x = %v)",
			res.Rounds, res.FinalX)
	}
	// Rumor spreading completes in ~2·log₂ n ≈ 15 rounds; allow slack.
	if res.Round > 60 {
		t.Fatalf("convergence took %d rounds, suspiciously long", res.Round)
	}
}

func TestAllCorrectStartIsAbsorbedImmediately(t *testing.T) {
	cfg := baseConfig()
	cfg.Init = allCorrectInit{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Round != 0 {
		t.Fatalf("want immediate absorption at round 0, got %+v", res)
	}
}

func TestStubbornWrongNeverConverges(t *testing.T) {
	cfg := baseConfig()
	cfg.Protocol = constProtocol{v: OpinionZero}
	cfg.MaxRounds = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("const-0 protocol cannot converge to 1")
	}
	wantX := 1 / float64(cfg.N) // only the source holds 1
	if math.Abs(res.FinalX-wantX) > 1e-12 {
		t.Fatalf("FinalX = %v, want %v", res.FinalX, wantX)
	}
	if res.Rounds != 50 {
		t.Fatalf("Rounds = %d, want 50", res.Rounds)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	for _, engine := range []EngineKind{EngineAgentFast, EngineAgentExact} {
		cfg := baseConfig()
		cfg.Engine = engine
		cfg.RecordTrajectory = true
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Round != b.Round || a.Rounds != b.Rounds || len(a.Trajectory) != len(b.Trajectory) {
			t.Fatalf("engine %v: same seed diverged: %+v vs %+v", engine, a, b)
		}
		for i := range a.Trajectory {
			if a.Trajectory[i] != b.Trajectory[i] {
				t.Fatalf("engine %v: trajectories diverge at %d", engine, i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := baseConfig()
	cfg.RecordTrajectory = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := a.Rounds == b.Rounds
	if same {
		for i := range a.Trajectory {
			if i < len(b.Trajectory) && a.Trajectory[i] != b.Trajectory[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trajectories")
	}
}

func TestEnginesAgreeStatistically(t *testing.T) {
	// The exact and fast engines sample the same law; their convergence
	// time distributions must match. Compare means over repeated trials
	// with the majority protocol from a half split (if one engine were
	// biased, the hitting times would shift).
	const trials = 60
	means := make(map[EngineKind]float64)
	for _, engine := range []EngineKind{EngineAgentFast, EngineAgentExact} {
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			cfg := Config{
				N:         150,
				Protocol:  majorityProtocol{m: 9},
				Init:      halfInit{},
				Correct:   OpinionOne,
				Seed:      uint64(1000 + trial),
				MaxRounds: 3000,
				Engine:    engine,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				// Majority dynamics from a half split may tip either way;
				// count non-converged runs at the cap.
				sum += float64(cfg.MaxRounds)
				continue
			}
			sum += float64(res.Round)
		}
		means[engine] = sum / trials
	}
	a, b := means[EngineAgentFast], means[EngineAgentExact]
	if a == 0 && b == 0 {
		t.Fatal("degenerate: both engines report 0 mean rounds")
	}
	ratio := a / b
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("engine hitting-time means diverge: fast %v vs exact %v", a, b)
	}
}

// halfInit gives the first half of non-sources opinion 1.
type halfInit struct{}

func (halfInit) Name() string { return "half" }
func (halfInit) Assign(op []byte, isSource []bool, _ *rng.Source) {
	k := 0
	for i := range op {
		if isSource[i] {
			continue
		}
		if k%2 == 0 {
			op[i] = OpinionOne
		} else {
			op[i] = OpinionZero
		}
		k++
	}
}

func TestTrajectoryRecording(t *testing.T) {
	cfg := baseConfig()
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Rounds+1 {
		t.Fatalf("trajectory has %d entries for %d rounds", len(res.Trajectory), res.Rounds)
	}
	wantX0 := 1 / float64(cfg.N)
	if math.Abs(res.Trajectory[0]-wantX0) > 1e-12 {
		t.Fatalf("x_0 = %v, want %v (all-wrong + 1 source)", res.Trajectory[0], wantX0)
	}
	for i, x := range res.Trajectory {
		if x < 0 || x > 1 {
			t.Fatalf("x_%d = %v out of [0,1]", i, x)
		}
	}
	if res.Trajectory[len(res.Trajectory)-1] != 1 {
		t.Fatalf("converged run must end at x = 1, got %v", res.Trajectory[len(res.Trajectory)-1])
	}
}

func TestObserverEarlyStop(t *testing.T) {
	cfg := baseConfig()
	calls := 0
	cfg.Observers = []Observer{
		ObserverFunc(func(ev RoundEvent) error {
			calls++
			if ev.Round >= 4 {
				return ErrStopRun
			}
			return nil
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatal("expected StoppedEarly")
	}
	if res.Rounds != 5 {
		t.Fatalf("Rounds = %d, want 5 (stop requested after round index 4)", res.Rounds)
	}
	if calls != 5 {
		t.Fatalf("observer called %d times", calls)
	}
}

func TestObserverErrorAbortsRun(t *testing.T) {
	cfg := baseConfig()
	boom := errors.New("boom")
	cfg.Observers = []Observer{
		ObserverFunc(func(ev RoundEvent) error {
			if ev.Round == 2 {
				return boom
			}
			return nil
		}),
	}
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the observer's error", err)
	}
}

func TestStopWhenObserver(t *testing.T) {
	cfg := baseConfig()
	cfg.Observers = []Observer{StopWhen(func(ev RoundEvent) bool { return ev.Round == 3 })}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly || res.Rounds != 4 {
		t.Fatalf("res = %+v, want StoppedEarly after 4 rounds", res)
	}
}

func TestRunContextCancellation(t *testing.T) {
	cfg := baseConfig()
	cfg.MaxRounds = 1 << 20
	cfg.RunToEnd = true
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Observers = []Observer{
		ObserverFunc(func(ev RoundEvent) error {
			if ev.Round == 5 {
				cancel()
			}
			return nil
		}),
	}
	_, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, baseConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunToEnd(t *testing.T) {
	cfg := baseConfig()
	cfg.RunToEnd = true
	cfg.MaxRounds = 120
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("infect run did not converge")
	}
	if res.Rounds != 120 {
		t.Fatalf("RunToEnd: Rounds = %d, want full 120", res.Rounds)
	}
	if res.FinalX != 1 {
		t.Fatalf("converged state must persist to the end, final x = %v", res.FinalX)
	}
}

func TestMultipleSources(t *testing.T) {
	cfg := baseConfig()
	cfg.Sources = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge with 8 sources")
	}
}

func TestCorrectZeroSide(t *testing.T) {
	// The problem is symmetric: sources may hold 0.
	cfg := baseConfig()
	cfg.Protocol = infectProtocol{target: OpinionZero}
	cfg.Correct = OpinionZero
	cfg.Init = allCorrectInitZeroWrong{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge on 0: %+v", res)
	}
	if res.FinalX != 0 {
		t.Fatalf("final x = %v, want 0", res.FinalX)
	}
}

// allCorrectInitZeroWrong starts non-sources at 1 when correct is 0.
type allCorrectInitZeroWrong struct{}

func (allCorrectInitZeroWrong) Name() string { return "all-wrong-for-zero" }
func (allCorrectInitZeroWrong) Assign(op []byte, isSource []bool, _ *rng.Source) {
	for i := range op {
		if !isSource[i] {
			op[i] = OpinionOne
		}
	}
}

// badProtocol emits an invalid opinion value.
type badProtocol struct{}

func (badProtocol) Name() string               { return "bad" }
func (badProtocol) SampleSizes() []int         { return nil }
func (badProtocol) NewAgent(*rng.Source) Agent { return badAgent{} }

type badAgent struct{}

func (badAgent) Step(byte, Observation) byte { return 7 }

func TestInvalidOpinionRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.Protocol = badProtocol{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for invalid opinion value")
	}
}

// overwriteInit illegally rewrites source opinions.
type overwriteInit struct{}

func (overwriteInit) Name() string { return "overwrite" }
func (overwriteInit) Assign(op []byte, _ []bool, _ *rng.Source) {
	for i := range op {
		op[i] = OpinionZero
	}
}

func TestInitializerCannotTouchSources(t *testing.T) {
	cfg := baseConfig()
	cfg.Init = overwriteInit{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error when the initializer overwrites a source")
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineAgentFast.String() != "agent-fast" {
		t.Fatal(EngineAgentFast.String())
	}
	if EngineAgentExact.String() != "agent-exact" {
		t.Fatal(EngineAgentExact.String())
	}
	if EngineKind(99).String() != "unknown" {
		t.Fatal(EngineKind(99).String())
	}
}

func TestFastObserverFallbackUndeclaredSize(t *testing.T) {
	// CountOnes with a size not in SampleSizes must still work via the
	// direct binomial fallback.
	obs := &fastObserver{x: 0.5, src: rng.New(3)}
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		c := obs.CountOnes(10)
		if c < 0 || c > 10 {
			t.Fatalf("CountOnes(10) = %d", c)
		}
		sum += c
	}
	mean := float64(sum) / trials
	if math.Abs(mean-5) > 0.15 {
		t.Fatalf("fallback mean = %v, want ≈5", mean)
	}
}

// bitsOf packs a byte-per-agent opinion vector into the executor's
// bitset representation, for observer-level tests.
func bitsOf(ops []byte) *opinionBits {
	b := &opinionBits{}
	b.resize(len(ops))
	b.packFrom(ops)
	return b
}

func TestExactObserverCounts(t *testing.T) {
	opinions := []byte{1, 1, 1, 0, 0, 0, 0, 0} // x = 3/8
	obs := &exactObserver{ops: bitsOf(opinions), src: rng.New(4)}
	const trials = 40000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += obs.CountOnes(8)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-3) > 0.1 { // E = 8·(3/8) = 3
		t.Fatalf("exact observer mean = %v, want ≈3", mean)
	}
}
