package sim

import "errors"

// RoundEvent is the typed per-round notification delivered to Observers:
// a snapshot of the population right after one synchronous round was
// executed and the orchestrator's bookkeeping ran.
type RoundEvent struct {
	// Round is the 0-based index of the round just executed.
	Round int
	// X is the fraction of 1-opinions after the round.
	X float64
	// Ones is the number of 1-opinions after the round, sources included.
	Ones int
	// Correct is the opinion the sources currently display (it can change
	// mid-run under Config.FlipCorrectAt).
	Correct byte
	// Absorbed reports whether the absorption criterion is currently met;
	// unless Config.RunToEnd is set, this is the run's final event.
	Absorbed bool
}

// Observer receives a RoundEvent after every executed round. Returning
// ErrStopRun requests a clean early stop (the run reports StoppedEarly);
// any other non-nil error aborts the run and is returned from Run.
//
// Observers are the orchestrator's only extension point: trajectory
// recording (TrajectoryRecorder) and early-stop predicates (StopWhen) are
// ordinary Observer instances, and Config.RecordTrajectory is implemented
// by attaching a TrajectoryRecorder internally.
type Observer interface {
	ObserveRound(ev RoundEvent) error
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(ev RoundEvent) error

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(ev RoundEvent) error { return f(ev) }

// ErrStopRun is returned by an Observer to request a clean early stop.
// The orchestrator converts it into Result.StoppedEarly instead of
// propagating it as an error.
var ErrStopRun = errors.New("sim: observer requested stop")

// StopWhen returns an Observer that requests an early stop as soon as
// pred returns true. All observers still see the stopping round's event.
func StopWhen(pred func(ev RoundEvent) bool) Observer {
	return ObserverFunc(func(ev RoundEvent) error {
		if pred(ev) {
			return ErrStopRun
		}
		return nil
	})
}

// TrajectoryRecorder is an Observer that records x_t for every observed
// round. The orchestrator uses it to implement Config.RecordTrajectory
// (prepending x_0, which precedes the first event); attached explicitly
// via Config.Observers it collects the per-round fractions alone.
type TrajectoryRecorder struct {
	// Xs holds one entry per observed round, in round order.
	Xs []float64
}

// ObserveRound implements Observer.
func (r *TrajectoryRecorder) ObserveRound(ev RoundEvent) error {
	r.Xs = append(r.Xs, ev.X)
	return nil
}
