package sim

import (
	"fmt"
	"runtime"
	"sync"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// roundExecutor is the pluggable execution layer under Run: it owns the
// population representation and advances it one synchronous round at a
// time, while the orchestrator keeps all protocol-independent bookkeeping.
//
// Implementations: the per-agent executors (exact, fast, parallel) hold
// explicit opinion and agent arrays; the aggregate executor holds only
// per-state occupancy counts.
type roundExecutor interface {
	// Ones returns the current number of 1-opinions across the whole
	// population, sources included.
	Ones() int
	// Step advances one synchronous round. correct is the opinion the
	// sources currently display (it can change mid-run under
	// Config.FlipCorrectAt; the executor re-pins sources every round).
	Step(correct byte) error
}

// newRoundExecutor builds the executor selected by cfg.Engine from an
// already-validated config.
func newRoundExecutor(c *Config) (roundExecutor, error) {
	switch c.Engine {
	case EngineAgentFast, EngineAgentExact, EngineAgentParallel:
		return newAgentExecutor(c)
	case EngineAggregate:
		return newAggregateExecutor(c)
	default:
		return nil, fmt.Errorf("sim: unknown engine %v", c.Engine)
	}
}

// agentExecutor advances an explicit per-agent population. It backs the
// exact, fast, and parallel engines, which differ only in how a round's
// observations are sampled and how the agent sweep is scheduled.
type agentExecutor struct {
	cfg      *Config
	opinions []byte
	next     []byte
	isSource []bool
	agents   []Agent
	srcs     []*rng.Source
	// sampleSizes are the protocol's declared CountOnes sizes, used by the
	// fast path to pre-tabulate the round's binomial laws once.
	sampleSizes []int
	// ones counts the 1-opinions in opinions (sources included).
	ones int
	// workers is the shard count for EngineAgentParallel (≥ 1).
	workers int
	// observers are the per-worker reusable observation samplers: one
	// observer per shard avoids a heap allocation per agent per round
	// without sharing mutable state across goroutines.
	observers []reusableObserver
	// graph is the built observation graph for non-complete topologies
	// (nil under uniform mixing, which keeps the pre-topology fast paths
	// byte-identical).
	graph *topo.Graph
	// round counts executed rounds; dynamic topologies derive their
	// per-round rewiring streams from it.
	round int
}

// topoStream is the offset added to the population size to derive the
// topology-construction stream: streams 0 (initializer) and 1..n (agents)
// are taken, so the graph builds from StreamSeed(seed, n+topoStream).
// Complete-topology runs never draw from it — their RNG consumption is
// unchanged from the pre-topology layout.
const topoStream = 1

// reusableObserver is an Observation that can be re-aimed at a new agent's
// RNG stream between Step calls, so one allocation serves a whole shard.
type reusableObserver interface {
	Observation
	// bind prepares the observer for one agent and the current round.
	bind(agent int, src *rng.Source)
	// newRound installs the current round's observation law.
	newRound(round int, x float64, tables []roundTable)
}

// opinionReader is implemented by observers that read the live opinion
// array and must be re-aimed after the round's double-buffer swap.
type opinionReader interface {
	retarget(opinions []byte)
}

func (o *exactObserver) bind(_ int, src *rng.Source)         { o.src = src }
func (o *exactObserver) newRound(int, float64, []roundTable) {}
func (o *exactObserver) retarget(opinions []byte)            { o.opinions = opinions }

func (o *fastObserver) bind(_ int, src *rng.Source) { o.src = src }
func (o *fastObserver) newRound(_ int, x float64, tables []roundTable) {
	o.x = x
	o.tables = tables
}

func newAgentExecutor(c *Config) (*agentExecutor, error) {
	n := c.N
	e := &agentExecutor{
		cfg:         c,
		opinions:    make([]byte, n),
		next:        make([]byte, n),
		isSource:    make([]bool, n),
		agents:      make([]Agent, n),
		srcs:        make([]*rng.Source, n),
		sampleSizes: c.Protocol.SampleSizes(),
		workers:     1,
	}
	// Sources occupy the first indices; sampling is uniform so placement
	// is irrelevant.
	for i := 0; i < c.Sources; i++ {
		e.isSource[i] = true
		e.opinions[i] = c.Correct
	}

	// Stream 0 seeds the initializer; streams 1..n seed the agents.
	initSrc := rng.NewFrom(c.Seed, 0)
	c.Init.Assign(e.opinions, e.isSource, initSrc)
	for i := 0; i < c.Sources; i++ {
		if e.opinions[i] != c.Correct {
			return nil, fmt.Errorf("sim: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}
	e.ones = countOnes(e.opinions)

	for i := c.Sources; i < n; i++ {
		e.srcs[i] = rng.NewFrom(c.Seed, uint64(i)+1)
		e.agents[i] = c.Protocol.NewAgent(e.srcs[i])
		if c.CorruptStates {
			if sc, ok := e.agents[i].(StateCorruptible); ok {
				sc.CorruptState(e.srcs[i])
			}
		}
		if c.StateInit != nil {
			c.StateInit(i, e.agents[i], e.srcs[i])
		}
	}

	if c.Engine == EngineAgentParallel {
		e.workers = c.Parallelism
		if e.workers == 0 {
			e.workers = runtime.GOMAXPROCS(0)
		}
		if max := n - c.Sources; e.workers > max {
			e.workers = max
		}
		if e.workers < 1 {
			e.workers = 1
		}
	}
	if !topo.IsComplete(c.Topology) {
		// The graph builds from its own derived stream (never touched by
		// complete-topology runs) and shards row construction across the
		// same worker budget as the round sweep; per-row streams keep the
		// result byte-identical at any worker count.
		graph, err := c.Topology.Build(n, rng.StreamSeed(c.Seed, uint64(n)+topoStream), e.workers)
		if err != nil {
			return nil, fmt.Errorf("sim: building topology %q: %w", c.Topology.Name(), err)
		}
		e.graph = graph
	}
	e.observers = make([]reusableObserver, e.workers)
	for w := range e.observers {
		switch {
		case e.graph != nil:
			// Non-complete topology: every agent engine samples neighbor
			// opinions literally; fast and exact coincide here.
			e.observers[w] = &graphObserver{opinions: e.opinions, view: e.graph.NewView(), noiseEps: c.NoiseEps}
		case c.Engine == EngineAgentExact:
			e.observers[w] = &exactObserver{opinions: e.opinions, noiseEps: c.NoiseEps}
		default:
			e.observers[w] = &fastObserver{}
		}
	}
	return e, nil
}

func countOnes(ops []byte) int {
	ones := 0
	for _, o := range ops {
		ones += int(o)
	}
	return ones
}

// Ones implements roundExecutor.
func (e *agentExecutor) Ones() int { return e.ones }

// Step implements roundExecutor.
func (e *agentExecutor) Step(correct byte) error {
	c := e.cfg
	n := c.N

	// Re-pin the sources: under FlipCorrectAt the correct opinion changes
	// mid-run and the displayed source opinions must follow before this
	// round's observations are drawn.
	for i := 0; i < c.Sources; i++ {
		if e.opinions[i] != correct {
			e.ones += int(correct) - int(e.opinions[i])
			e.opinions[i] = correct
		}
	}

	x := float64(e.ones) / float64(n)
	xObs := observedFraction(x, c.NoiseEps)
	var tables []roundTable
	if c.Engine != EngineAgentExact && e.graph == nil {
		// The tabulated binomial law is a uniform-mixing identity; graph
		// topologies sample neighbor opinions literally instead.
		tables = buildRoundTables(e.sampleSizes, xObs)
	}
	for _, obs := range e.observers {
		obs.newRound(e.round, xObs, tables)
	}

	var onesDelta int
	var err error
	if e.workers == 1 {
		onesDelta, err = e.stepShard(c.Sources, n, e.observers[0])
	} else {
		onesDelta, err = e.stepParallel()
	}
	if err != nil {
		return err
	}
	for i := 0; i < c.Sources; i++ {
		e.next[i] = correct
	}

	e.opinions, e.next = e.next, e.opinions
	e.ones += onesDelta
	e.round++
	// The swap moved the live population into the other backing array;
	// re-aim the literal samplers (exact and graph observers) at it.
	for _, o := range e.observers {
		if r, ok := o.(opinionReader); ok {
			r.retarget(e.opinions)
		}
	}
	return nil
}

// stepShard advances the non-source agents in [lo, hi) and returns the
// change in the number of 1-opinions over the shard. Each agent draws only
// from its own RNG stream, so shards are independent and the sweep order
// inside a shard never affects other shards — the basis of the parallel
// engine's bit-identical determinism.
func (e *agentExecutor) stepShard(lo, hi int, obs reusableObserver) (onesDelta int, err error) {
	for i := lo; i < hi; i++ {
		obs.bind(i, e.srcs[i])
		out := e.agents[i].Step(e.opinions[i], obs)
		if out > 1 {
			return 0, fmt.Errorf("sim: protocol %q produced opinion %d", e.cfg.Protocol.Name(), out)
		}
		e.next[i] = out
		onesDelta += int(out) - int(e.opinions[i])
	}
	return onesDelta, nil
}

// stepParallel shards the non-source index range across the worker pool.
// The shard boundaries depend only on n, Sources and the worker count;
// every worker writes a disjoint slice of next and touches only its own
// agents' RNG streams, so the merged result is byte-identical to the
// sequential sweep for any worker count.
func (e *agentExecutor) stepParallel() (int, error) {
	lo := e.cfg.Sources
	total := e.cfg.N - lo
	deltas := make([]int, e.workers)
	errs := make([]error, e.workers)

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		shardLo := lo + total*w/e.workers
		shardHi := lo + total*(w+1)/e.workers
		if shardLo == shardHi {
			continue
		}
		wg.Add(1)
		go func(w, shardLo, shardHi int) {
			defer wg.Done()
			deltas[w], errs[w] = e.stepShard(shardLo, shardHi, e.observers[w])
		}(w, shardLo, shardHi)
	}
	wg.Wait()

	onesDelta := 0
	for w := 0; w < e.workers; w++ {
		if errs[w] != nil {
			return 0, errs[w]
		}
		onesDelta += deltas[w]
	}
	return onesDelta, nil
}
