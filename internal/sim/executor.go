package sim

import (
	"fmt"
	"runtime"
	"sync"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// roundExecutor is the pluggable execution layer under Run: it owns the
// population representation and advances it one synchronous round at a
// time, while the orchestrator keeps all protocol-independent bookkeeping.
//
// Implementations: the per-agent executors (exact, fast, parallel) hold
// packed opinion bitsets and agent arrays; the aggregate executor holds
// only per-state occupancy counts.
type roundExecutor interface {
	// Ones returns the current number of 1-opinions across the whole
	// population, sources included.
	Ones() int
	// Step advances one synchronous round. correct is the opinion the
	// sources currently display (it can change mid-run under
	// Config.FlipCorrectAt; the executor re-pins sources every round).
	Step(correct byte) error
	// close releases executor-owned background resources (the parallel
	// engine's persistent shard workers). A closed executor must not
	// Step again.
	close()
}

// newRoundExecutor builds the executor selected by cfg.Engine from an
// already-validated config.
func newRoundExecutor(c *Config) (roundExecutor, error) {
	switch c.Engine {
	case EngineAgentFast, EngineAgentExact, EngineAgentParallel:
		return newAgentExecutor(c)
	case EngineAggregate, EngineAggregateSparse:
		return newAggregateExecutor(c)
	default:
		return nil, fmt.Errorf("sim: unknown engine %v", c.Engine)
	}
}

// agentExecutor advances an explicit per-agent population. It backs the
// exact, fast, and parallel engines, which differ only in how a round's
// observations are sampled and how the agent sweep is scheduled.
//
// The executor is built once and re-populated per replicate (see
// populate and Pool): every O(n) buffer — the opinion bitsets, the
// initializer scratch, the per-agent RNG states, the agent objects where
// the protocol supports in-place reset, the observation graph's
// adjacency — is reused across replicates, and the round loop itself
// runs with zero steady-state allocations.
type agentExecutor struct {
	cfg *Config
	// opinions and next are the packed double-buffered population: one
	// bit per agent, swapped after every round. Observers hold pointers
	// to the structs (whose addresses never change), so the swap needs no
	// observer re-aiming.
	opinions opinionBits
	next     opinionBits
	// initBuf is the []byte scratch handed to Initializer.Assign — the
	// initializer seam keeps its byte-per-agent contract (and its RNG
	// draws) and the result is packed into the bitset once per replicate.
	initBuf  []byte
	isSource []bool
	agents   []Agent
	// srcs holds the per-agent generators by value: one reseed per agent
	// per replicate instead of one allocation. Agents capture &srcs[i],
	// which stays valid for the executor's lifetime.
	srcs []rng.Source
	// deficit counts, per agent, the homogeneous-row rounds whose stream
	// advance the graph observers deferred (nil off the fused jump path).
	// Reset each replicate; leftover debt at replicate end is dropped —
	// an absorbed population's streams are never read again.
	deficit []uint32
	// sampleSizes are the protocol's declared CountOnes sizes; tables
	// holds the per-round tabulated binomial laws for them, retabulated
	// in place every round (nil on the exact and graph paths, which
	// sample literally).
	sampleSizes []int
	tables      []roundTable
	// agentsReusable reports that the agents implement AgentResetter and
	// can be reset in place instead of reallocated per replicate. (The
	// pool key guarantees a reused executor sees the same protocol
	// identity.)
	agentsReusable bool
	// ones counts the 1-opinions in opinions (sources included).
	ones int
	// workers is the shard count for EngineAgentParallel (≥ 1).
	workers int
	// observers are the per-shard reusable observation samplers: one
	// observer per shard avoids a heap allocation per agent per round
	// without sharing mutable state across goroutines.
	observers []reusableObserver
	// graph is the built observation graph for non-complete topologies
	// (nil under uniform mixing, which keeps the pre-topology fast paths
	// byte-identical). It is rebuilt in place per replicate.
	graph *topo.Graph
	// round counts executed rounds; dynamic topologies derive their
	// per-round rewiring streams from it.
	round int

	// Parallel scheduling state (workers > 1): persistent shard workers
	// fed one shard index per round over work, so a parallel round costs
	// zero goroutine spawns and zero allocations. shardLo/shardHi are
	// word-aligned (multiples of 64) so no two shards ever read-modify-
	// write the same bitset word.
	shardLo, shardHi []int
	deltas           []int
	errs             []error
	work             chan int
	wg               sync.WaitGroup
	closed           bool
}

// topoStream is the offset added to the population size to derive the
// topology-construction stream: streams 0 (initializer) and 1..n (agents)
// are taken, so the graph builds from StreamSeed(seed, n+topoStream).
// Complete-topology runs never draw from it — their RNG consumption is
// unchanged from the pre-topology layout.
const topoStream = 1

// reusableObserver is an Observation that can be re-aimed at a new agent's
// RNG stream between Step calls, so one allocation serves a whole shard.
type reusableObserver interface {
	Observation
	// bind prepares the observer for one agent and the current round.
	bind(agent int, src *rng.Source)
	// newRound installs the current round's observation law.
	newRound(round int, x float64, tables []roundTable)
}

func newAgentExecutor(c *Config) (*agentExecutor, error) {
	n := c.N
	e := &agentExecutor{
		initBuf:     make([]byte, n),
		isSource:    make([]bool, n),
		agents:      make([]Agent, n),
		srcs:        make([]rng.Source, n),
		sampleSizes: c.Protocol.SampleSizes(),
		workers:     1,
	}
	e.opinions.resize(n)
	e.next.resize(n)
	// Sources occupy the first indices; sampling is uniform so placement
	// is irrelevant.
	for i := 0; i < c.Sources; i++ {
		e.isSource[i] = true
	}

	if c.Engine == EngineAgentParallel {
		e.workers = resolvedWorkers(c)
	}
	if !topo.IsComplete(c.Topology) {
		// The graph builds from its own derived stream (never touched by
		// complete-topology runs) and shards row construction across the
		// same worker budget as the round sweep; per-row streams keep the
		// result byte-identical at any worker count.
		graph, err := c.Topology.Build(n, rng.StreamSeed(c.Seed, uint64(n)+topoStream), e.workers)
		if err != nil {
			return nil, fmt.Errorf("sim: building topology %q: %w", c.Topology.Name(), err)
		}
		e.graph = graph
	}

	// The tabulated-binomial fast path applies under uniform mixing on
	// the non-exact engines; graph topologies sample neighbor opinions
	// literally instead.
	fastPath := c.Engine != EngineAgentExact && e.graph == nil
	if fastPath {
		e.tables = newRoundTables(e.sampleSizes)
	}
	drawsPerRound := 0
	if fd, ok := c.Protocol.(FixedDraws); ok && fastPath {
		if d := fd.DrawsPerRound(); d >= 1 && d <= maxFixedDraws {
			drawsPerRound = d
		}
	}

	e.observers = make([]reusableObserver, e.workers)
	var graphLadder *rng.JumpLadder
	if e.graph != nil {
		if j := graphRoundJump(e.graph, c); j != nil {
			// Homogeneous-row rounds defer their stream advance into a
			// per-agent debt counter; the ladder settles any debt in
			// O(log debt) applications. Shards own disjoint agent ranges,
			// so the counters race-free under parallel stepping.
			graphLadder = rng.NewJumpLadder(j, jumpLadderDepth)
			e.deficit = make([]uint32, n)
		}
	}
	for w := range e.observers {
		switch {
		case e.graph != nil:
			// Non-complete topology: every agent engine samples neighbor
			// opinions through the packed-row gather; fast and exact
			// coincide here.
			e.observers[w] = newGraphObserver(&e.opinions, e.graph, c, graphLadder, e.deficit)
		case c.Engine == EngineAgentExact:
			e.observers[w] = &exactObserver{ops: &e.opinions, noiseEps: c.NoiseEps}
		default:
			e.observers[w] = &fastObserver{draws: drawsPerRound}
		}
	}

	if e.workers > 1 {
		e.startWorkers(c)
	}
	if err := e.populate(c); err != nil {
		e.close()
		return nil, err
	}
	return e, nil
}

// resolvedWorkers returns the shard count EngineAgentParallel will use
// for c: Parallelism, defaulted to GOMAXPROCS, capped by the non-source
// population, floored at 1. It is part of the executor's reuse shape.
func resolvedWorkers(c *Config) int {
	workers := c.Parallelism
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := c.N - c.Sources; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// startWorkers precomputes the word-aligned shard bounds and spawns the
// persistent shard workers. Shard boundaries affect scheduling only:
// every agent draws from its own stream, so any partition of the
// non-source range merges to the same population.
func (e *agentExecutor) startWorkers(c *Config) {
	lo, n := c.Sources, c.N
	e.shardLo = make([]int, e.workers)
	e.shardHi = make([]int, e.workers)
	e.deltas = make([]int, e.workers)
	e.errs = make([]error, e.workers)
	prev := lo
	for w := 0; w < e.workers; w++ {
		hi := lo + (n-lo)*(w+1)/e.workers
		if w < e.workers-1 {
			// Align interior boundaries to 64 so no two shards write the
			// same word of the packed next buffer.
			hi = (hi + 63) &^ 63
			if hi < prev {
				hi = prev
			}
			if hi > n {
				hi = n
			}
		} else {
			hi = n
		}
		e.shardLo[w], e.shardHi[w] = prev, hi
		prev = hi
	}
	e.work = make(chan int)
	for w := 0; w < e.workers; w++ {
		go func() {
			for sh := range e.work {
				e.deltas[sh], e.errs[sh] = e.stepShard(e.shardLo[sh], e.shardHi[sh], e.observers[sh])
				e.wg.Done()
			}
		}()
	}
}

// populate initializes the executor for one replicate of c, reusing
// every buffer. It performs exactly the RNG consumption of a fresh
// construction — initializer stream 0, agent streams 1..n, the
// topology's derived stream — so a pooled replicate is bit-identical to
// an unpooled one.
func (e *agentExecutor) populate(c *Config) error {
	e.cfg = c
	e.round = 0
	n := c.N

	for i := range e.initBuf {
		e.initBuf[i] = 0
	}
	for i := 0; i < c.Sources; i++ {
		e.initBuf[i] = c.Correct
	}
	// Stream 0 seeds the initializer; streams 1..n seed the agents.
	var initSrc rng.Source
	initSrc.Reseed(rng.StreamSeed(c.Seed, 0))
	c.Init.Assign(e.initBuf, e.isSource, &initSrc)
	for i := 0; i < c.Sources; i++ {
		if e.initBuf[i] != c.Correct {
			return fmt.Errorf("sim: initializer %q overwrote a source opinion", c.Init.Name())
		}
	}
	e.opinions.packFrom(e.initBuf)
	e.next.zero()
	e.ones = e.opinions.ones()

	reuse := e.agentsReusable
	for i := range e.deficit {
		e.deficit[i] = 0
	}
	for i := c.Sources; i < n; i++ {
		e.srcs[i].Reseed(rng.StreamSeed(c.Seed, uint64(i)+1))
		if reuse {
			e.agents[i].(AgentResetter).ResetAgent()
		} else {
			e.agents[i] = c.Protocol.NewAgent(&e.srcs[i])
		}
		if c.CorruptStates {
			if sc, ok := e.agents[i].(StateCorruptible); ok {
				sc.CorruptState(&e.srcs[i])
			}
		}
		if c.StateInit != nil {
			c.StateInit(i, e.agents[i], &e.srcs[i])
		}
	}
	if !reuse && n > c.Sources {
		// Sources < N is validated, so at least one agent exists; all
		// agents share the protocol's concrete type.
		_, e.agentsReusable = e.agents[c.Sources].(AgentResetter)
	}

	if e.graph != nil {
		want := rng.StreamSeed(c.Seed, uint64(n)+topoStream)
		if e.graph.Seed() != want {
			if err := topo.Rebuild(e.graph, c.Topology, n, want, e.workers); err != nil {
				return fmt.Errorf("sim: rebuilding topology %q: %w", c.Topology.Name(), err)
			}
		}
	}
	// Per-replicate observer parameters (the shape — observer kind, view
	// graph, draw batching — is construction-time).
	for _, obs := range e.observers {
		switch o := obs.(type) {
		case *exactObserver:
			o.noiseEps = c.NoiseEps
		case *graphObserver:
			// Noise changes the per-observation stream consumption, so the
			// prefetch size follows it.
			o.setNoise(c.NoiseEps)
		}
	}
	return nil
}

// close stops the persistent shard workers. Idempotent.
func (e *agentExecutor) close() {
	if e.work != nil && !e.closed {
		e.closed = true
		close(e.work)
	}
}

// Ones implements roundExecutor.
func (e *agentExecutor) Ones() int { return e.ones }

// Step implements roundExecutor.
//
//fet:hotpath
func (e *agentExecutor) Step(correct byte) error {
	c := e.cfg
	n := c.N

	// Re-pin the sources: under FlipCorrectAt the correct opinion changes
	// mid-run and the displayed source opinions must follow before this
	// round's observations are drawn.
	for i := 0; i < c.Sources; i++ {
		if cur := e.opinions.get(i); cur != correct {
			e.ones += int(correct) - int(cur)
			e.opinions.set(i, correct)
		}
	}

	x := float64(e.ones) / float64(n)
	xObs := observedFraction(x, c.NoiseEps)
	if e.tables != nil {
		// Retabulate the round's binomial laws in place: a uniform-mixing
		// identity, recomputed with zero allocations.
		for i := range e.tables {
			e.tables[i].tab.Reset(e.tables[i].m, xObs)
		}
	}
	for _, obs := range e.observers {
		obs.newRound(e.round, xObs, e.tables)
	}

	var onesDelta int
	var err error
	if e.workers == 1 {
		onesDelta, err = e.stepShard(c.Sources, n, e.observers[0])
	} else {
		onesDelta, err = e.stepParallel()
	}
	if err != nil {
		return err
	}
	for i := 0; i < c.Sources; i++ {
		e.next.set(i, correct)
	}

	// Swap the double buffer. Observers hold &e.opinions, whose contents
	// (not address) change, so they read the live population with no
	// re-aiming.
	e.opinions, e.next = e.next, e.opinions
	e.ones += onesDelta
	e.round++
	return nil
}

// stepShard advances the non-source agents in [lo, hi) and returns the
// change in the number of 1-opinions over the shard. Each agent draws only
// from its own RNG stream, so shards are independent and the sweep order
// inside a shard never affects other shards — the basis of the parallel
// engine's bit-identical determinism.
//
//fet:hotpath
func (e *agentExecutor) stepShard(lo, hi int, obs reusableObserver) (onesDelta int, err error) {
	for i := lo; i < hi; i++ {
		obs.bind(i, &e.srcs[i])
		cur := e.opinions.get(i)
		out := e.agents[i].Step(cur, obs)
		if out > 1 {
			//fet:allow alloc: cold error path — taken at most once per run, on a broken Protocol implementation
			return 0, fmt.Errorf("sim: protocol %q produced opinion %d", e.cfg.Protocol.Name(), out)
		}
		e.next.set(i, out)
		onesDelta += int(out) - int(cur)
	}
	return onesDelta, nil
}

// stepParallel hands each precomputed shard to the persistent worker
// pool. Every worker writes a disjoint, word-aligned slice of the next
// bitset and touches only its shard's RNG streams, so the merged result
// is byte-identical to the sequential sweep for any worker count — and
// the whole round performs zero allocations and zero goroutine spawns.
//
//fet:hotpath
func (e *agentExecutor) stepParallel() (int, error) {
	e.wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		e.work <- w
	}
	e.wg.Wait()

	onesDelta := 0
	for w := 0; w < e.workers; w++ {
		if e.errs[w] != nil {
			return 0, e.errs[w]
		}
		onesDelta += e.deltas[w]
	}
	return onesDelta, nil
}
