package sim

import (
	"reflect"
	"testing"

	"passivespread/internal/rng"
)

// TestParallelBitIdenticalAcrossWorkerCounts: the parallel engine must
// produce byte-identical results to the sequential fast engine for every
// worker count — each agent owns its RNG stream, so sharding cannot
// change any draw.
func TestParallelBitIdenticalAcrossWorkerCounts(t *testing.T) {
	for _, proto := range []Protocol{
		majorityProtocol{m: 9},             // exercises the tabulated CountOnes path
		infectProtocol{target: OpinionOne}, // exercises the Sample path
	} {
		base := Config{
			N:                500,
			Protocol:         proto,
			Init:             halfInit{},
			Correct:          OpinionOne,
			Seed:             42,
			MaxRounds:        300,
			RecordTrajectory: true,
		}
		ref, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7, 64} {
			cfg := base
			cfg.Engine = EngineAgentParallel
			cfg.Parallelism = workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("%s: parallel(%d) diverged from fast:\nfast:     %+v\nparallel: %+v",
					proto.Name(), workers, ref, got)
			}
		}
	}
}

// trendFixture is a minimal aggregate-capable protocol for engine-level
// tests: a FET-shaped rule with state = stored count.
type trendFixture struct{ ell int }

func (p trendFixture) Name() string       { return "trend-fixture" }
func (p trendFixture) SampleSizes() []int { return []int{p.ell} }
func (p trendFixture) NewAgent(*rng.Source) Agent {
	return &trendFixtureAgent{ell: p.ell}
}
func (p trendFixture) AggregateStates() int { return p.ell + 1 }

func (p trendFixture) StepOccupancy(occ, next *Occupancy, xObs float64, src *rng.Source) {
	// Distributionally exact mirror of the per-agent rule below, written
	// naively (per-agent loop over the occupancy) — fine for tests.
	tab := rng.NewBinomialCDF(p.ell, xObs)
	for o := 0; o < 2; o++ {
		for s, m := range occ.Counts[o] {
			for a := 0; a < m; a++ {
				cmp := tab.Sample(src)
				store := tab.Sample(src)
				op := o
				switch {
				case cmp > s:
					op = 1
				case cmp < s:
					op = 0
				}
				next.Counts[op][store]++
			}
		}
	}
}

type trendFixtureAgent struct {
	ell  int
	prev int
}

func (a *trendFixtureAgent) Step(cur byte, obs Observation) byte {
	cmp := obs.CountOnes(a.ell)
	store := obs.CountOnes(a.ell)
	next := cur
	switch {
	case cmp > a.prev:
		next = OpinionOne
	case cmp < a.prev:
		next = OpinionZero
	}
	a.prev = store
	return next
}

func aggregateConfig() Config {
	return Config{
		N:         400,
		Protocol:  trendFixture{ell: 8},
		Init:      allWrongInit{},
		Correct:   OpinionOne,
		Engine:    EngineAggregate,
		Seed:      5,
		MaxRounds: 2000,
	}
}

func TestAggregateEngineConverges(t *testing.T) {
	res, err := Run(aggregateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("aggregate trend run did not converge: %+v", res)
	}
	if res.FinalX != 1 {
		t.Fatalf("converged run must end at x = 1, got %v", res.FinalX)
	}
}

func TestAggregateTrajectoryBookkeeping(t *testing.T) {
	cfg := aggregateConfig()
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Rounds+1 {
		t.Fatalf("trajectory has %d entries for %d rounds", len(res.Trajectory), res.Rounds)
	}
	if res.Trajectory[0] != 1/float64(cfg.N) {
		t.Fatalf("x_0 = %v, want 1/n (all-wrong + 1 source)", res.Trajectory[0])
	}
	for i, x := range res.Trajectory {
		if x < 0 || x > 1 {
			t.Fatalf("x_%d = %v out of [0,1]", i, x)
		}
	}
}

func TestAggregateRequiresAggregateProtocol(t *testing.T) {
	cfg := aggregateConfig()
	cfg.Protocol = infectProtocol{target: OpinionOne}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for a non-aggregate protocol")
	}
}

func TestAggregateRejectsStateInit(t *testing.T) {
	cfg := aggregateConfig()
	cfg.StateInit = func(int, Agent, *rng.Source) {}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for StateInit under the aggregate engine")
	}
}

func TestAggregateCorruptStates(t *testing.T) {
	cfg := aggregateConfig()
	cfg.CorruptStates = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("aggregate run with corrupted states did not converge: %+v", res)
	}
}

func TestAggregateFlipCorrect(t *testing.T) {
	cfg := aggregateConfig()
	cfg.FlipCorrectAt = 3
	cfg.MaxRounds = 4000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// After the flip, convergence means everyone on 0.
	if !res.Converged {
		t.Fatalf("did not re-stabilize after the flip: %+v", res)
	}
	if res.FinalX != 0 {
		t.Fatalf("final x = %v, want 0 after flipping to correct = 0", res.FinalX)
	}
}

func TestOccupancyHelpers(t *testing.T) {
	o := NewOccupancy(3)
	o.Counts[1][0] = 4
	o.Counts[1][2] = 1
	o.Counts[0][1] = 7
	if o.Ones() != 5 {
		t.Fatalf("Ones = %d", o.Ones())
	}
	if o.Total() != 12 {
		t.Fatalf("Total = %d", o.Total())
	}
	o.Zero()
	if o.Total() != 0 {
		t.Fatalf("Total after Zero = %d", o.Total())
	}
}

func TestEngineKindStringNew(t *testing.T) {
	if EngineAgentParallel.String() != "agent-parallel" {
		t.Fatal(EngineAgentParallel.String())
	}
	if EngineAggregate.String() != "aggregate" {
		t.Fatal(EngineAggregate.String())
	}
}
