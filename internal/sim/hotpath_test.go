package sim

import (
	"context"
	"reflect"
	"testing"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// hotpathProtocol is a FET-shaped trend protocol local to the hot-path
// tests (internal/sim cannot import internal/core): two declared
// CountOnes calls per round, resettable agents, fixed draws.
type hotpathProtocol struct{ ell int }

func (p *hotpathProtocol) Name() string       { return "hotpath-trend" }
func (p *hotpathProtocol) SampleSizes() []int { return []int{p.ell} }
func (p *hotpathProtocol) DrawsPerRound() int { return 2 }
func (p *hotpathProtocol) NewAgent(*rng.Source) Agent {
	return &hotpathAgent{ell: p.ell}
}

type hotpathAgent struct {
	ell  int
	prev int
}

func (a *hotpathAgent) Step(cur byte, obs Observation) byte {
	c1 := obs.CountOnes(a.ell)
	c2 := obs.CountOnes(a.ell)
	next := cur
	switch {
	case c1 > a.prev:
		next = OpinionOne
	case c1 < a.prev:
		next = OpinionZero
	}
	a.prev = c2
	return next
}

func (a *hotpathAgent) ResetAgent()                  { a.prev = 0 }
func (a *hotpathAgent) CorruptState(src *rng.Source) { a.prev = src.Intn(a.ell + 1) }

var (
	_ Protocol         = (*hotpathProtocol)(nil)
	_ FixedDraws       = (*hotpathProtocol)(nil)
	_ AgentResetter    = (*hotpathAgent)(nil)
	_ StateCorruptible = (*hotpathAgent)(nil)
)

// hotpathConfig uses engine_test.go's deterministic halfInit so the
// alloc measurements never depend on initializer randomness.
func hotpathConfig(engine EngineKind, parallelism int, tp topo.Topology) Config {
	return Config{
		N:           2048,
		Protocol:    &hotpathProtocol{ell: 8},
		Init:        halfInit{},
		Correct:     OpinionOne,
		Engine:      engine,
		Parallelism: parallelism,
		Topology:    tp,
		Seed:        42,
		MaxRounds:   1 << 30,
	}
}

// TestStepZeroAllocsPerRound pins the round loop at zero steady-state
// allocations on every agent engine path: the sequential fast engine
// (tabulated binomials retabulated in place), the sharded parallel
// engine (persistent word-aligned shard workers, executor-owned
// deltas/errs — the stepParallel per-call slices are gone), the exact
// engine, and the literal graph path including dynamic rewiring.
func TestStepZeroAllocsPerRound(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"fast", hotpathConfig(EngineAgentFast, 0, nil)},
		{"parallel", hotpathConfig(EngineAgentParallel, 4, nil)},
		{"exact", hotpathConfig(EngineAgentExact, 0, nil)},
		{"graph", hotpathConfig(EngineAgentFast, 0, topo.RandomRegular(8))},
		{"graph-dynamic", hotpathConfig(EngineAgentParallel, 4, topo.DynamicRewire(8, 0.2))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			e, err := newAgentExecutor(&c)
			if err != nil {
				t.Fatal(err)
			}
			defer e.close()
			// Warm up: first rounds grow the binomial tables and recycle
			// the first goroutine descriptors.
			for r := 0; r < 8; r++ {
				if err := e.Step(c.Correct); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(50, func() {
				if err := e.Step(c.Correct); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Fatalf("Step allocates %v times per round in steady state, want 0", avg)
			}
		})
	}
}

// TestPoolReplicatesBitIdentical is the pooling determinism contract:
// leasing a reused executor for every replicate must reproduce the
// unpooled per-replicate results bit for bit — same opinions, same
// trajectories, same convergence rounds — on the fast, parallel, exact,
// and graph paths, with state corruption exercising the agent-reset
// sequence.
func TestPoolReplicatesBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"fast", hotpathConfig(EngineAgentFast, 0, nil)},
		{"parallel", hotpathConfig(EngineAgentParallel, 3, nil)},
		{"exact", hotpathConfig(EngineAgentExact, 0, nil)},
		{"dynamic", hotpathConfig(EngineAgentFast, 0, topo.DynamicRewire(8, 0.3))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pool := NewPool()
			defer pool.Release()
			for rep := 0; rep < 4; rep++ {
				cfg := tc.cfg
				cfg.Seed = rng.StreamSeed(99, uint64(rep))
				cfg.MaxRounds = 60
				cfg.RunToEnd = true
				cfg.RecordTrajectory = true
				cfg.CorruptStates = true
				want, err := RunContext(ctx, cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pool.RunContext(ctx, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("replicate %d: pooled result diverged\nunpooled: %+v\npooled:   %+v", rep, want, got)
				}
			}
		})
	}
}

// TestPoolReusesExecutors confirms the pool actually reuses (not just
// tolerates) executors: after a lease returns, the next same-shape lease
// must receive the identical executor object.
func TestPoolReusesExecutors(t *testing.T) {
	pool := NewPool()
	defer pool.Release()
	cfg := hotpathConfig(EngineAgentFast, 0, nil)
	cfg.MaxRounds = 10
	cfg.RunToEnd = true
	if _, err := pool.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	key := poolKey{engine: EngineAgentFast, n: cfg.N, sources: 1, shards: 1,
		protocol: cfg.Protocol.Name(), topology: "complete"}
	first := pool.get(key)
	if first == nil {
		t.Fatal("no pooled executor after a completed lease")
	}
	pool.put(key, first)
	cfg.Seed++
	if _, err := pool.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	second := pool.get(key)
	if second != first {
		t.Fatalf("pool rebuilt the executor instead of reusing it")
	}
	pool.put(key, second)
}

// TestPooledParallelWorkersStop verifies the executor lifecycle: close
// must stop the persistent shard workers (Release path), and a closed
// pool must still serve fresh leases.
func TestPooledParallelWorkersStop(t *testing.T) {
	pool := NewPool()
	cfg := hotpathConfig(EngineAgentParallel, 4, nil)
	cfg.MaxRounds = 10
	cfg.RunToEnd = true
	if _, err := pool.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	pool.Release()
	// The pool stays usable after Release.
	if _, err := pool.RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	pool.Release()
}
