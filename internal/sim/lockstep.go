package sim

import (
	"context"
	"fmt"
	"math/bits"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// This file implements the lockstep replicate engine (DESIGN.md §10): up
// to 64 replicates of one configuration — same shape, different
// per-replicate seeds — advance through the round loop together, with
// the population transposed so that one uint64 word holds the same
// agent's opinion across all lanes. The per-agent trend-compare update
// (the TrendLockstep contract) is replayed directly against per-lane
// tabulated binomial thresholds, with the per-agent xoshiro draws and
// the threshold scans inlined into one kernel, so a batch amortizes the
// round loop's dispatch and bookkeeping across W replicates while
// staying bit-identical to running each lane alone: every lane consumes
// exactly the sequential fast path's RNG stream layout
// (StreamSeed(laneSeed, 0) initializer, StreamSeed(laneSeed, j+1) for
// agent j, d = DrawsPerRound outputs per agent per round).
//
// Degenerate rounds — xObs ∈ {0, 1}, the early worst-case rounds before
// a source observation lands and the absorption tails — are skipped
// entirely: the sequential fast path still draws d outputs per agent
// (fastObserver.bind prefetches unconditionally) but the values are
// unused (the p = 0 table answers 0 for every uniform, the p = 1 table
// answers m) and the population cannot move (it is homogeneous and the
// trend rule keeps it there), so the lockstep engine pins the stored
// counts once per episode, counts the skipped rounds as per-lane debt,
// and settles the debt with one bulk rng.Source.Advance(d·debt) per
// agent stream when the lane returns to live rounds — which can only
// happen through a FlipCorrectAt source switch, hence at most once per
// replicate. Debt still pending at retirement is dropped: an absorbed
// lane's streams are never read again (the same precedent as the graph
// observer's deferred advances).

// maxLockstepLanes is the lane capacity of one lockstep batch: one bit
// per lane in the transposed opinion words.
const maxLockstepLanes = 64

// maxLockstepCount bounds the protocol's declared sample size on the
// lockstep path: stored counts live in uint16 lane columns.
const maxLockstepCount = 1<<16 - 1

// LaneRun describes one replicate (lane) of a lockstep batch: its root
// seed and its private observer list (the batch template's
// Config.Observers is ignored — observers are inherently per-replicate).
type LaneRun struct {
	Seed      uint64
	Observers []Observer
}

// LaneResult is one lane's outcome: exactly the (Result, error) pair the
// same configuration would produce run alone through Pool.RunContext.
type LaneResult struct {
	Result Result
	Err    error
}

// lockstepSupported reports whether the defaulted config c can run on
// the lockstep executor: a tabulated-fast-path engine (EngineAgentFast,
// or EngineAgentParallel, which is defined to be bit-identical to fast)
// under uniform mixing, a TrendLockstep protocol with d ∈ {1, 2} draws
// of one declared sample size, agents exposing PrevCount/ResetAgent,
// and no StateInit hook (which would need live per-agent objects).
// NoiseEps and CorruptStates are supported; FlipCorrectAt, AbsorbWindow,
// RunToEnd, RecordTrajectory and Observers are driver-level and always
// supported.
func lockstepSupported(c *Config) bool {
	if c.Engine != EngineAgentFast && c.Engine != EngineAgentParallel {
		return false
	}
	if !topo.IsComplete(c.Topology) || c.StateInit != nil {
		return false
	}
	proto, ok := c.Protocol.(TrendLockstep)
	if !ok {
		return false
	}
	if d := proto.DrawsPerRound(); d < 1 || d > 2 {
		return false
	}
	m, ok := singleSampleSize(proto.SampleSizes())
	if !ok || m < 1 || m > maxLockstepCount {
		return false
	}
	var s rng.Source
	agent := proto.NewAgent(&s)
	if _, ok := agent.(PrevCounter); !ok {
		return false
	}
	if _, ok := agent.(AgentResetter); !ok {
		return false
	}
	return true
}

// lockstepExecutor holds the transposed population of one batch. All
// O(n·W) buffers are allocated at construction and reused across
// batches through the pool, and a steady-state round allocates nothing.
type lockstepExecutor struct {
	cfg   *Config
	lanes int // W, the batch width (pool shape)
	d     int // protocol draws per round (1 or 2)
	m     int // the single declared sample size

	// scratch replays per-agent construction-time RNG (CorruptState)
	// during populate; the lockstep kernel never invokes agent Steps.
	scratchReset   AgentResetter
	scratchPrev    PrevCounter
	scratchCorrupt StateCorruptible // nil when the agent is incorruptible

	isSource []bool
	initBuf  []byte
	// initSrc is the initializer-stream scratch generator: a field (not
	// a populate local) because it is passed through the Initializer
	// interface seam, which would otherwise heap-allocate it per lane.
	initSrc rng.Source

	// srcs and prev are lane-major per agent: index agent*lanes+lane, so
	// one agent's lanes are contiguous for the kernel's inner loop. cur
	// is the transposed opinion buffer: bit l of cur[j] is agent j's
	// opinion in lane l. There is no double buffer — on the tabulated
	// fast path observations never read the opinion bitset, so in-place
	// update is byte-equivalent to the sequential engine's swap.
	srcs []rng.Source
	prev []uint16
	cur  []uint64

	ones   []int                    // per-lane 1-opinion counts
	deltas []int                    // per-lane ones delta of the current round
	debt   []uint32                 // per-lane skipped degenerate rounds
	pinned []int8                   // per-lane pinned prev sign (−1 none, 0, 1)
	thr    []rng.BinomialThresholds // per-lane round law
	tcols  [][]uint64               // per-lane threshold slices for the kernel
	gcols  []*rng.GuideTable        // per-lane scan-guide tables

	states []laneState // per-lane driver bookkeeping, pooled with the buffers
}

// newLockstepExecutor allocates the transposed buffers for batches of
// exactly lanes replicates of c's shape. The caller has checked
// lockstepSupported.
func newLockstepExecutor(c *Config, lanes int) *lockstepExecutor {
	proto := c.Protocol.(TrendLockstep)
	m, _ := singleSampleSize(proto.SampleSizes())
	n := c.N
	e := &lockstepExecutor{
		lanes:    lanes,
		d:        proto.DrawsPerRound(),
		m:        m,
		isSource: make([]bool, n),
		initBuf:  make([]byte, n),
		srcs:     make([]rng.Source, n*lanes),
		prev:     make([]uint16, n*lanes),
		cur:      make([]uint64, n),
		ones:     make([]int, lanes),
		deltas:   make([]int, lanes),
		debt:     make([]uint32, lanes),
		pinned:   make([]int8, lanes),
		thr:      make([]rng.BinomialThresholds, lanes),
		tcols:    make([][]uint64, lanes),
		gcols:    make([]*rng.GuideTable, lanes),
		states:   make([]laneState, lanes),
	}
	for i := 0; i < c.Sources; i++ {
		e.isSource[i] = true
	}
	var s rng.Source
	agent := proto.NewAgent(&s)
	e.scratchReset = agent.(AgentResetter)
	e.scratchPrev = agent.(PrevCounter)
	e.scratchCorrupt, _ = agent.(StateCorruptible)
	return e
}

// populate initializes the executor for one batch, replaying per lane
// exactly the RNG consumption of the sequential populate — initializer
// stream 0, agent streams 1..n with CorruptState draws — so every lane
// starts from the state its replicate would reach alone.
func (e *lockstepExecutor) populate(c *Config, lanes []LaneRun) error {
	e.cfg = c
	n, W := c.N, e.lanes
	for j := range e.cur {
		e.cur[j] = 0
	}
	for l := range lanes {
		seed := lanes[l].Seed
		for i := range e.initBuf {
			e.initBuf[i] = 0
		}
		for i := 0; i < c.Sources; i++ {
			e.initBuf[i] = c.Correct
		}
		e.initSrc.Reseed(rng.StreamSeed(seed, 0))
		c.Init.Assign(e.initBuf, e.isSource, &e.initSrc)
		for i := 0; i < c.Sources; i++ {
			if e.initBuf[i] != c.Correct {
				return fmt.Errorf("sim: initializer %q overwrote a source opinion", c.Init.Name())
			}
		}
		bit := uint64(1) << uint(l)
		ones := 0
		for j := 0; j < n; j++ {
			if e.initBuf[j] == 1 {
				e.cur[j] |= bit
				ones++
			}
		}
		e.ones[l] = ones
		for j := c.Sources; j < n; j++ {
			idx := j*W + l
			src := &e.srcs[idx]
			src.Reseed(rng.StreamSeed(seed, uint64(j)+1))
			e.scratchReset.ResetAgent()
			if c.CorruptStates && e.scratchCorrupt != nil {
				e.scratchCorrupt.CorruptState(src)
			}
			e.prev[idx] = uint16(e.scratchPrev.PrevCount())
		}
		e.debt[l] = 0
		e.pinned[l] = -1
	}
	return nil
}

// stepRound advances every active lane one synchronous round. correct is
// the sources' current opinion (identical across active lanes — the
// flip schedule is configuration-level).
//
//fet:hotpath
func (e *lockstepExecutor) stepRound(correct byte, active uint64) {
	c := e.cfg
	n, W := c.N, e.lanes

	// Re-pin the sources in every active lane (under FlipCorrectAt the
	// displayed opinions must follow the flip before observations).
	var want uint64
	if correct == OpinionOne {
		want = ^uint64(0)
	}
	for i := 0; i < c.Sources; i++ {
		changed := (e.cur[i] ^ want) & active
		if changed == 0 {
			continue
		}
		for msk := changed; msk != 0; msk &= msk - 1 {
			l := bits.TrailingZeros64(msk)
			if correct == OpinionOne {
				e.ones[l]++
			} else {
				e.ones[l]--
			}
		}
		e.cur[i] = (e.cur[i] &^ active) | (want & active)
	}

	// Classify lanes. A degenerate lane (xObs ∈ {0, 1}) skips its RNG:
	// the stored counts pin to the forced value once per episode and the
	// d unused draws per agent accrue as debt. A live lane first settles
	// any debt with bulk stream advances, then tabulates its round law.
	var live uint64
	for msk := active; msk != 0; msk &= msk - 1 {
		l := bits.TrailingZeros64(msk)
		x := float64(e.ones[l]) / float64(n)
		xObs := observedFraction(x, c.NoiseEps)
		if xObs == 0 || xObs == 1 {
			pin, pv := uint16(0), int8(0)
			if xObs == 1 {
				pin, pv = uint16(e.m), 1
			}
			if e.pinned[l] != pv {
				for j := c.Sources; j < n; j++ {
					e.prev[j*W+l] = pin
				}
				e.pinned[l] = pv
			}
			e.debt[l]++
			continue
		}
		if e.debt[l] > 0 {
			adv := int(e.debt[l]) * e.d
			for j := c.Sources; j < n; j++ {
				//fet:allow rngmirror: settles exactly debt·d deferred draws per agent stream — the outputs the skipped degenerate rounds would have consumed
				e.srcs[j*W+l].Advance(adv)
			}
			e.debt[l] = 0
		}
		e.pinned[l] = -1
		e.thr[l].Reset(e.m, xObs)
		e.tcols[l] = e.thr[l].Thresholds()
		e.gcols[l] = e.thr[l].Guide()
		live |= 1 << uint(l)
		e.deltas[l] = 0
	}
	if live == 0 {
		return
	}
	e.kernel(live)
	for msk := live; msk != 0; msk &= msk - 1 {
		l := bits.TrailingZeros64(msk)
		e.ones[l] += e.deltas[l]
	}
}

// kernel sweeps the non-source agents once, advancing every live lane:
// per (agent, lane) it draws the protocol's d stream outputs with the
// xoshiro step inlined, inverts each against the lane's threshold table
// — the guide table starts the scan within an expected single compare
// of the answer — and applies the trend-compare rule against the lane's
// stored count, branchlessly. Everything is straight-line over
// preallocated buffers: zero allocations, no interface dispatch, and
// independent lanes give the superscalar core independent RNG
// dependency chains to overlap.
//
//fet:hotpath
func (e *lockstepExecutor) kernel(live uint64) {
	c := e.cfg
	n, W := c.N, e.lanes
	d2 := e.d == 2
	srcs := e.srcs
	prev := e.prev
	cur := e.cur
	tcols := e.tcols
	gcols := e.gcols
	deltas := e.deltas
	for j := c.Sources; j < n; j++ {
		base := j * W
		word := cur[j]
		for lm := live; lm != 0; lm &= lm - 1 {
			l := bits.TrailingZeros64(lm)
			idx := base + l
			src := &srcs[idx]
			t := tcols[l]
			g := gcols[l]

			//fet:allow rngmirror: one output per protocol draw — the same single consumption as the tabulated SampleU path
			mant := src.Uint64() >> 11
			k := int(g[mant>>rng.GuideShift])
			for mant >= t[k] {
				k++
			}
			c0 := k
			store := c0
			if d2 {
				//fet:allow rngmirror: second of the protocol's d=2 draws, single consumption as above
				mant = src.Uint64() >> 11
				k = int(g[mant>>rng.GuideShift])
				for mant >= t[k] {
					k++
				}
				store = k
			}
			p := int(prev[idx])
			prev[idx] = uint16(store)
			bit := (word >> uint(l)) & 1
			out := bit
			switch {
			case c0 > p:
				out = 1
			case c0 < p:
				out = 0
			}
			word ^= (out ^ bit) << uint(l)
			deltas[l] += int(out) - int(bit)
		}
		cur[j] = word
	}
}

// runLockstepLoop drives one populated batch to completion: the shared
// round counter advances all active lanes together, each lane's
// laneState applies exactly the sequential loop's bookkeeping, and a
// lane retires — with its Result or error written to out — the moment
// its own run would have ended. Context cancellation errors every lane
// still active; already-retired lanes keep their results, matching what
// each replicate would observe run alone.
func runLockstepLoop(ctx context.Context, c *Config, e *lockstepExecutor, lanes []LaneRun, out []LaneResult) {
	W := len(lanes)
	active := ^uint64(0) >> uint(64-W)
	for l := 0; l < W; l++ {
		e.states[l].init(c, lanes[l].Observers, e.ones[l])
	}
	for round := 0; round < c.MaxRounds && active != 0; round++ {
		if err := ctx.Err(); err != nil {
			for msk := active; msk != 0; msk &= msk - 1 {
				out[bits.TrailingZeros64(msk)] = LaneResult{Err: err}
			}
			return
		}
		for msk := active; msk != 0; msk &= msk - 1 {
			e.states[bits.TrailingZeros64(msk)].maybeFlip(round)
		}
		// All active lanes share one correct opinion: the flip schedule
		// is part of the batch's common configuration.
		e.stepRound(e.states[bits.TrailingZeros64(active)].correct, active)
		for msk := active; msk != 0; msk &= msk - 1 {
			l := bits.TrailingZeros64(msk)
			halt, err := e.states[l].afterRound(round, e.ones[l])
			if err != nil {
				out[l] = LaneResult{Err: err}
				active &^= 1 << uint(l)
				continue
			}
			if halt {
				out[l] = LaneResult{Result: e.states[l].result(round+1, e.ones[l])}
				active &^= 1 << uint(l)
			}
		}
	}
	for msk := active; msk != 0; msk &= msk - 1 {
		l := bits.TrailingZeros64(msk)
		out[l] = LaneResult{Result: e.states[l].result(c.MaxRounds, e.ones[l])}
	}
}
