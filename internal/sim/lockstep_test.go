package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// lsTrendProto is a test protocol implementing exactly the TrendLockstep
// contract through its Step method, with configurable draw count: d = 2
// mirrors FET (compare the first count, store the second), d = 1 mirrors
// SimpleTrend (one count for both). The bit-identity battery runs it
// through both the sequential fast path (agents stepping) and the
// lockstep executor (rule replayed word-parallel) and demands identical
// results.
type lsTrendProto struct {
	ell   int
	draws int
}

func (p lsTrendProto) Name() string       { return fmt.Sprintf("ls-trend(d=%d,ell=%d)", p.draws, p.ell) }
func (p lsTrendProto) SampleSizes() []int { return []int{p.ell} }
func (p lsTrendProto) DrawsPerRound() int { return p.draws }
func (p lsTrendProto) LockstepRule()      {}
func (p lsTrendProto) NewAgent(*rng.Source) Agent {
	return &lsTrendAgent{ell: p.ell, draws: p.draws}
}

type lsTrendAgent struct {
	ell, draws, prev int
}

func (a *lsTrendAgent) Step(cur byte, obs Observation) byte {
	c0 := obs.CountOnes(a.ell)
	store := c0
	if a.draws == 2 {
		store = obs.CountOnes(a.ell)
	}
	next := cur
	switch {
	case c0 > a.prev:
		next = OpinionOne
	case c0 < a.prev:
		next = OpinionZero
	}
	a.prev = store
	return next
}

func (a *lsTrendAgent) PrevCount() int               { return a.prev }
func (a *lsTrendAgent) ResetAgent()                  { a.prev = 0 }
func (a *lsTrendAgent) CorruptState(src *rng.Source) { a.prev = src.Intn(a.ell + 1) }

var (
	_ TrendLockstep    = lsTrendProto{}
	_ PrevCounter      = (*lsTrendAgent)(nil)
	_ AgentResetter    = (*lsTrendAgent)(nil)
	_ StateCorruptible = (*lsTrendAgent)(nil)
)

// randomBernoulliInit draws each non-source opinion independently,
// consuming initializer-stream outputs so the lockstep populate's
// per-lane initializer replay is exercised.
type randomBernoulliInit struct{ p float64 }

func (randomBernoulliInit) Name() string { return "random-bernoulli" }
func (r randomBernoulliInit) Assign(op []byte, isSource []bool, src *rng.Source) {
	for i := range op {
		if !isSource[i] {
			op[i] = OpinionZero
			if src.Bernoulli(r.p) {
				op[i] = OpinionOne
			}
		}
	}
}

// runLanesSequential is the reference: each lane run alone through the
// pooled sequential path.
func runLanesSequential(ctx context.Context, p *Pool, cfg Config, lanes []LaneRun) []LaneResult {
	out := make([]LaneResult, len(lanes))
	for l := range lanes {
		lc := cfg
		lc.Seed = lanes[l].Seed
		lc.Observers = lanes[l].Observers
		res, err := p.RunContext(ctx, lc)
		out[l] = LaneResult{Result: res, Err: err}
	}
	return out
}

func laneSeeds(root uint64, w int) []LaneRun {
	lanes := make([]LaneRun, w)
	for i := range lanes {
		lanes[i] = LaneRun{Seed: rng.StreamSeed(root, uint64(i))}
	}
	return lanes
}

func TestLockstepBitIdenticalMatrix(t *testing.T) {
	base := Config{
		N:             300,
		Protocol:      lsTrendProto{ell: 12, draws: 2},
		Init:          allWrongInit{},
		Correct:       OpinionOne,
		MaxRounds:     400,
		CorruptStates: true,
	}
	scenarios := []struct {
		name string
		mut  func(*Config)
	}{
		{"worst-case", func(*Config) {}},
		{"simple-trend", func(c *Config) { c.Protocol = lsTrendProto{ell: 7, draws: 1} }},
		{"random-init", func(c *Config) { c.Init = randomBernoulliInit{p: 0.5} }},
		{"correct-zero", func(c *Config) {
			c.Correct = OpinionZero
			c.Init = allCorrectInit{} // every non-source starts wrong (at 1)
		}},
		{"three-sources", func(c *Config) { c.Sources = 3 }},
		{"noise", func(c *Config) { c.NoiseEps = 0.02 }},
		{"run-to-end", func(c *Config) {
			// Absorption happens long before MaxRounds, so the tail is a
			// long degenerate episode exercising the debt counters.
			c.RunToEnd = true
			c.MaxRounds = 120
		}},
		{"flip-out-of-absorption", func(c *Config) {
			// The run absorbs, idles degenerate until the flip, then the
			// sources switch sides: the lanes leave the degenerate episode
			// through the bulk stream-advance flush and reconverge to 0.
			c.FlipCorrectAt = 90
			c.MaxRounds = 400
		}},
		{"absorb-window-3", func(c *Config) { c.AbsorbWindow = 3 }},
		{"trajectory", func(c *Config) { c.RecordTrajectory = true; c.MaxRounds = 60; c.RunToEnd = true }},
		{"parallel-engine", func(c *Config) { c.Engine = EngineAgentParallel; c.Parallelism = 4 }},
	}
	widths := []int{2, 5, 32, 64}

	for _, sc := range scenarios {
		for _, w := range widths {
			t.Run(fmt.Sprintf("%s/w=%d", sc.name, w), func(t *testing.T) {
				cfg := base
				sc.mut(&cfg)
				c, err := cfg.withDefaults()
				if err != nil {
					t.Fatalf("withDefaults: %v", err)
				}
				if !lockstepSupported(&c) {
					t.Fatalf("scenario unexpectedly ineligible for lockstep")
				}
				lanes := laneSeeds(uint64(0xC0FFEE+w), w)

				seqPool := NewPool()
				defer seqPool.Release()
				want := runLanesSequential(context.Background(), seqPool, cfg, lanes)

				lockPool := NewPool()
				defer lockPool.Release()
				got := make([]LaneResult, w)
				if err := lockPool.RunLockstep(context.Background(), cfg, lanes, got); err != nil {
					t.Fatalf("RunLockstep: %v", err)
				}
				for l := range lanes {
					if got[l].Err != nil || want[l].Err != nil {
						t.Fatalf("lane %d: errs lockstep=%v sequential=%v", l, got[l].Err, want[l].Err)
					}
					if !reflect.DeepEqual(got[l].Result, want[l].Result) {
						t.Errorf("lane %d diverged:\nlockstep:   %+v\nsequential: %+v", l, got[l].Result, want[l].Result)
					}
				}
			})
		}
	}
}

func TestLockstepPooledBatchesBitIdentical(t *testing.T) {
	// A pooled executor re-leased for a second batch must replay exactly
	// the first-lease behavior, including when the two batches differ in
	// seeds, corruption, and noise.
	cfg := Config{
		N:             257,
		Protocol:      lsTrendProto{ell: 9, draws: 2},
		Init:          randomBernoulliInit{p: 0.3},
		Correct:       OpinionOne,
		MaxRounds:     300,
		CorruptStates: true,
	}
	p := NewPool()
	defer p.Release()
	seq := NewPool()
	defer seq.Release()

	for batch := 0; batch < 3; batch++ {
		bcfg := cfg
		if batch == 2 {
			bcfg.NoiseEps = 0.01
		}
		lanes := laneSeeds(uint64(1000+batch), 16)
		got := make([]LaneResult, len(lanes))
		if err := p.RunLockstep(context.Background(), bcfg, lanes, got); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		want := runLanesSequential(context.Background(), seq, bcfg, lanes)
		for l := range lanes {
			if got[l].Err != nil {
				t.Fatalf("batch %d lane %d: %v", batch, l, got[l].Err)
			}
			if !reflect.DeepEqual(got[l].Result, want[l].Result) {
				t.Errorf("batch %d lane %d diverged:\nlockstep:   %+v\nsequential: %+v",
					batch, l, got[l].Result, want[l].Result)
			}
		}
	}
}

func TestLockstepSameRoundRetirement(t *testing.T) {
	// Identical seeds make every lane the same replicate: all 64 retire
	// in the same round, the hardest lane-retirement boundary.
	cfg := Config{
		N:             300,
		Protocol:      lsTrendProto{ell: 12, draws: 2},
		Init:          allWrongInit{},
		Correct:       OpinionOne,
		MaxRounds:     400,
		CorruptStates: true,
	}
	lanes := make([]LaneRun, 64)
	for i := range lanes {
		lanes[i].Seed = 42
	}
	p := NewPool()
	defer p.Release()
	got := make([]LaneResult, len(lanes))
	if err := p.RunLockstep(context.Background(), cfg, lanes, got); err != nil {
		t.Fatal(err)
	}
	ref := cfg
	ref.Seed = 42
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	for l := range got {
		if got[l].Err != nil {
			t.Fatalf("lane %d: %v", l, got[l].Err)
		}
		if !reflect.DeepEqual(got[l].Result, want) {
			t.Errorf("lane %d: got %+v want %+v", l, got[l].Result, want)
		}
	}
}

func TestLockstepFallbackIneligible(t *testing.T) {
	// Configurations outside the lockstep envelope fall back to per-lane
	// sequential runs with identical results.
	base := Config{
		N:         128,
		Protocol:  lsTrendProto{ell: 8, draws: 2},
		Init:      allWrongInit{},
		Correct:   OpinionOne,
		MaxRounds: 300,
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"exact-engine", func(c *Config) { c.Engine = EngineAgentExact }},
		{"graph-topology", func(c *Config) { c.Topology = topo.RandomRegular(8) }},
		{"non-trend-protocol", func(c *Config) { c.Protocol = majorityProtocol{m: 5} }},
		{"state-init", func(c *Config) {
			c.StateInit = func(_ int, a Agent, _ *rng.Source) { a.(*lsTrendAgent).prev = 3 }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			c, err := cfg.withDefaults()
			if err != nil {
				t.Fatalf("withDefaults: %v", err)
			}
			if lockstepSupported(&c) {
				t.Fatalf("config unexpectedly eligible for lockstep")
			}
			lanes := laneSeeds(7, 4)
			p := NewPool()
			defer p.Release()
			got := make([]LaneResult, len(lanes))
			if err := p.RunLockstep(context.Background(), cfg, lanes, got); err != nil {
				t.Fatal(err)
			}
			seq := NewPool()
			defer seq.Release()
			want := runLanesSequential(context.Background(), seq, cfg, lanes)
			for l := range lanes {
				if got[l].Err != nil || want[l].Err != nil {
					t.Fatalf("lane %d: errs %v / %v", l, got[l].Err, want[l].Err)
				}
				if !reflect.DeepEqual(got[l].Result, want[l].Result) {
					t.Errorf("lane %d diverged", l)
				}
			}
		})
	}
}

func TestLockstepBatchValidation(t *testing.T) {
	p := NewPool()
	defer p.Release()
	cfg := Config{
		N:         64,
		Protocol:  lsTrendProto{ell: 6, draws: 2},
		Init:      allWrongInit{},
		MaxRounds: 10,
	}
	if err := p.RunLockstep(context.Background(), cfg, make([]LaneRun, 4), make([]LaneResult, 3)); err == nil {
		t.Error("mismatched out length accepted")
	}
	if err := p.RunLockstep(context.Background(), cfg, make([]LaneRun, 65), make([]LaneResult, 65)); err == nil {
		t.Error("65 lanes accepted")
	}
	bad := cfg
	bad.N = 1
	if err := p.RunLockstep(context.Background(), bad, make([]LaneRun, 4), make([]LaneResult, 4)); err == nil {
		t.Error("invalid config accepted")
	}
	if err := p.RunLockstep(context.Background(), cfg, nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestLockstepNilPoolDegrades(t *testing.T) {
	cfg := Config{
		N:         100,
		Protocol:  lsTrendProto{ell: 6, draws: 2},
		Init:      allWrongInit{},
		MaxRounds: 200,
	}
	lanes := laneSeeds(3, 4)
	var np *Pool
	got := make([]LaneResult, len(lanes))
	if err := np.RunLockstep(context.Background(), cfg, lanes, got); err != nil {
		t.Fatal(err)
	}
	for l := range lanes {
		lc := cfg
		lc.Seed = lanes[l].Seed
		want, err := Run(lc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[l].Result, want) {
			t.Errorf("lane %d diverged", l)
		}
	}
}

func TestLockstepCancellation(t *testing.T) {
	cfg := Config{
		N:             300,
		Protocol:      lsTrendProto{ell: 12, draws: 2},
		Init:          allWrongInit{},
		Correct:       OpinionOne,
		MaxRounds:     400,
		CorruptStates: true,
	}
	lanes := laneSeeds(99, 32)

	// Reference pass: learn each lane's natural convergence round.
	seq := NewPool()
	defer seq.Release()
	want := runLanesSequential(context.Background(), seq, cfg, lanes)
	slowest, cutoff := 0, 0
	for l, r := range want {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Result.Rounds > cutoff {
			slowest, cutoff = l, r.Result.Rounds
		}
	}
	if cutoff < 3 {
		t.Fatalf("degenerate reference: slowest lane takes %d rounds", cutoff)
	}
	// Cancel from an observer on the slowest lane partway through: lanes
	// already retired keep their results, lanes still running get the
	// context error at the next round boundary.
	cancelAt := cutoff - 2
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lanes[slowest].Observers = []Observer{ObserverFunc(func(ev RoundEvent) error {
		if ev.Round == cancelAt {
			cancel()
		}
		return nil
	})}

	p := NewPool()
	defer p.Release()
	got := make([]LaneResult, len(lanes))
	if err := p.RunLockstep(ctx, cfg, lanes, got); err != nil {
		t.Fatal(err)
	}
	sawCancel := false
	for l := range got {
		finished := want[l].Result.Rounds <= cancelAt+1 && l != slowest
		switch {
		case finished:
			if got[l].Err != nil {
				t.Errorf("lane %d finished before the cancel but reports %v", l, got[l].Err)
			} else if !reflect.DeepEqual(got[l].Result, want[l].Result) {
				t.Errorf("lane %d result diverged under cancellation", l)
			}
		default:
			if got[l].Err == nil {
				// A lane retiring in the cancellation round itself is
				// legitimate — it halts before the next ctx check.
				if !reflect.DeepEqual(got[l].Result, want[l].Result) {
					t.Errorf("lane %d result diverged under cancellation", l)
				}
				continue
			}
			if !errors.Is(got[l].Err, context.Canceled) {
				t.Errorf("lane %d: got %v, want context.Canceled", l, got[l].Err)
			}
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Error("no lane observed the cancellation")
	}
}

func TestLockstepObserverErrorRetiresOnlyThatLane(t *testing.T) {
	cfg := Config{
		N:         200,
		Protocol:  lsTrendProto{ell: 10, draws: 2},
		Init:      allWrongInit{},
		Correct:   OpinionOne,
		MaxRounds: 300,
	}
	lanes := laneSeeds(5, 8)
	boom := errors.New("boom")
	lanes[3].Observers = []Observer{ObserverFunc(func(ev RoundEvent) error {
		if ev.Round == 2 {
			return boom
		}
		return nil
	})}
	p := NewPool()
	defer p.Release()
	got := make([]LaneResult, len(lanes))
	if err := p.RunLockstep(context.Background(), cfg, lanes, got); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(got[3].Err, boom) {
		t.Errorf("lane 3: got %v, want the observer error", got[3].Err)
	}
	seq := NewPool()
	defer seq.Release()
	for l := range lanes {
		if l == 3 {
			continue
		}
		if got[l].Err != nil {
			t.Fatalf("lane %d: %v", l, got[l].Err)
		}
		lc := cfg
		lc.Seed = lanes[l].Seed
		want, err := seq.RunContext(context.Background(), lc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[l].Result, want) {
			t.Errorf("lane %d diverged", l)
		}
	}
}

func TestLockstepSteadyStateAllocs(t *testing.T) {
	// After the first batch builds the pooled executor, a whole further
	// batch — hundreds of rounds across 32 lanes — must allocate at most
	// a handful of objects (the pool-key strings), proving the per-round
	// path is allocation-free.
	cfg := Config{
		N:             512,
		Protocol:      lsTrendProto{ell: 10, draws: 2},
		Init:          allWrongInit{},
		Correct:       OpinionOne,
		MaxRounds:     200,
		RunToEnd:      true,
		CorruptStates: true,
	}
	lanes := laneSeeds(11, 32)
	out := make([]LaneResult, len(lanes))
	p := NewPool()
	defer p.Release()
	if err := p.RunLockstep(context.Background(), cfg, lanes, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := p.RunLockstep(context.Background(), cfg, lanes, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("pooled lockstep batch allocated %.0f objects, want ≤ 8", allocs)
	}
}
