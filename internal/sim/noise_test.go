package sim

import (
	"math"
	"testing"

	"passivespread/internal/rng"
)

func newTestSource(seed uint64) *rng.Source { return rng.New(seed) }

func TestNoiseValidation(t *testing.T) {
	for _, eps := range []float64{-0.1, 0.5, 0.9} {
		cfg := baseConfig()
		cfg.NoiseEps = eps
		if _, err := Run(cfg); err == nil {
			t.Fatalf("NoiseEps = %v accepted", eps)
		}
	}
	cfg := baseConfig()
	cfg.FlipCorrectAt = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative FlipCorrectAt accepted")
	}
}

func TestObservedFraction(t *testing.T) {
	tests := []struct {
		x, eps, want float64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 0.1, 0.1},
		{1, 0.1, 0.9},
		{0.5, 0.3, 0.5}, // symmetric point is invariant
		{0.25, 0.2, 0.25*0.8 + 0.75*0.2},
	}
	for _, tc := range tests {
		if got := observedFraction(tc.x, tc.eps); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("observedFraction(%v, %v) = %v, want %v", tc.x, tc.eps, got, tc.want)
		}
	}
}

func TestNoisyExactObserverFlipRate(t *testing.T) {
	// All-ones population, eps = 0.2: samples must read 1 about 80% of
	// the time.
	opinions := make([]byte, 100)
	for i := range opinions {
		opinions[i] = 1
	}
	obs := &exactObserver{ops: bitsOf(opinions), src: newTestSource(7), noiseEps: 0.2}
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		ones += int(obs.Sample())
	}
	got := float64(ones) / trials
	if math.Abs(got-0.8) > 0.01 {
		t.Fatalf("noisy sample rate %v, want ≈0.8", got)
	}
}

func TestInfectUnderMildNoiseStillSpreads(t *testing.T) {
	// One-way infection tolerates observation noise: extra false 1s only
	// help, so convergence survives (this tests plumbing, not FET).
	cfg := baseConfig()
	cfg.NoiseEps = 0.05
	cfg.MaxRounds = 300
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("infection under 5%% noise did not spread: %+v", res)
	}
}

func TestNoiseEnginesAgreeOnEffectiveRate(t *testing.T) {
	// Both engines must show the same effective observation rate: compare
	// mean CountOnes under noise for a fixed population fraction.
	const (
		m      = 20
		eps    = 0.15
		trials = 40000
	)
	opinions := make([]byte, 200)
	for i := 0; i < 60; i++ { // x = 0.3
		opinions[i] = 1
	}
	exact := &exactObserver{ops: bitsOf(opinions), src: newTestSource(1), noiseEps: eps}
	fast := &fastObserver{x: observedFraction(0.3, eps), src: newTestSource(2)}
	var sumExact, sumFast float64
	for i := 0; i < trials; i++ {
		sumExact += float64(exact.CountOnes(m))
		sumFast += float64(fast.CountOnes(m))
	}
	meanExact := sumExact / trials
	meanFast := sumFast / trials
	want := float64(m) * observedFraction(0.3, eps)
	if math.Abs(meanExact-want) > 0.1 {
		t.Fatalf("exact noisy mean %v, want ≈%v", meanExact, want)
	}
	if math.Abs(meanFast-want) > 0.1 {
		t.Fatalf("fast noisy mean %v, want ≈%v", meanFast, want)
	}
}

func TestFlipCorrectMidRun(t *testing.T) {
	// Infection toward 1 until round 40, then the environment flips to 0.
	// Use a two-sided copy protocol so the population can follow the flip.
	cfg := baseConfig()
	cfg.Protocol = copyAnyProtocol{}
	cfg.Init = allWrongInit{}
	cfg.FlipCorrectAt = 40
	cfg.MaxRounds = 4000
	cfg.RecordTrajectory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not re-converge after flip: %+v", res)
	}
	if res.Round < 40 {
		t.Fatalf("convergence round %d precedes the flip", res.Round)
	}
	if res.FinalX != 0 {
		t.Fatalf("final x = %v, want 0 (the new correct value)", res.FinalX)
	}
}

// copyAnyProtocol copies the observed opinion unconditionally (voter) —
// it can follow the source either way, unlike one-way infection.
type copyAnyProtocol struct{}

func (copyAnyProtocol) Name() string               { return "copy-any" }
func (copyAnyProtocol) SampleSizes() []int         { return nil }
func (copyAnyProtocol) NewAgent(*rng.Source) Agent { return copyAnyAgent{} }

type copyAnyAgent struct{}

func (copyAnyAgent) Step(_ byte, obs Observation) byte { return obs.Sample() }
