package sim

import (
	"fmt"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// exactObserver implements Observation by sampling agent indices uniformly
// with replacement and reading their opinions — the operational definition
// of the PULL model.
type exactObserver struct {
	opinions []byte
	src      *rng.Source
	// noiseEps flips each observed bit independently (0 = noiseless).
	noiseEps float64
}

func (o *exactObserver) CountOnes(m int) int {
	count := 0
	for i := 0; i < m; i++ {
		count += int(o.Sample())
	}
	return count
}

func (o *exactObserver) Sample() byte {
	b := o.opinions[o.src.Intn(len(o.opinions))]
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// observedFraction returns the effective probability that a single noisy
// observation reads 1 when the true fraction of 1-opinions is x: each bit
// flips independently with probability eps.
func observedFraction(x, eps float64) float64 {
	if eps <= 0 {
		return x
	}
	return x*(1-eps) + (1-x)*eps
}

// fastObserver implements Observation by drawing counts directly from
// Binomial(m, x_t): under passive communication, observing m uniform
// agents with replacement reveals exactly a Binomial(m, x_t) count of
// 1-opinions, so this is distributionally identical to exactObserver.
type fastObserver struct {
	x      float64 // current fraction of 1-opinions
	tables []roundTable
	src    *rng.Source
}

// roundTable caches one Binomial(m, x_t) inverse-CDF table for the round.
type roundTable struct {
	m   int
	tab *rng.BinomialCDF
}

func (o *fastObserver) CountOnes(m int) int {
	for _, t := range o.tables {
		if t.m == m {
			return t.tab.Sample(o.src)
		}
	}
	// Sample size not pre-declared by the protocol: fall back to a direct
	// draw, which is exact but slower.
	return o.src.Binomial(m, o.x)
}

func (o *fastObserver) Sample() byte {
	if o.src.Bernoulli(o.x) {
		return OpinionOne
	}
	return OpinionZero
}

// graphObserver implements Observation on a non-complete topology: it
// draws uniform (with replacement) out-neighbors of the bound agent
// through a per-worker topo.View and reads their current opinions — the
// operational PULL definition restricted to the observation graph. The
// binomial shortcut of fastObserver is a uniform-mixing identity and
// does not apply here, so every agent engine shares this literal path on
// sparse topologies; the agent's own RNG stream drives the draws, which
// is what keeps the sharded parallel sweep bit-identical to the
// sequential one.
type graphObserver struct {
	opinions []byte
	view     *topo.View
	src      *rng.Source
	noiseEps float64
}

func (o *graphObserver) bind(agent int, src *rng.Source) {
	o.src = src
	o.view.Bind(agent)
}

func (o *graphObserver) newRound(round int, _ float64, _ []roundTable) {
	o.view.NewRound(round)
}

func (o *graphObserver) retarget(opinions []byte) { o.opinions = opinions }

func (o *graphObserver) CountOnes(m int) int {
	count := 0
	for i := 0; i < m; i++ {
		count += int(o.Sample())
	}
	return count
}

func (o *graphObserver) Sample() byte {
	b := o.opinions[o.view.Next(o.src)]
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// buildRoundTables tabulates the binomial laws for the protocol's declared
// sample sizes at the current opinion fraction.
func buildRoundTables(sizes []int, x float64) []roundTable {
	tables := make([]roundTable, 0, len(sizes))
	for _, m := range sizes {
		if m < 0 {
			panic(fmt.Sprintf("sim: protocol declared negative sample size %d", m))
		}
		tables = append(tables, roundTable{m: m, tab: rng.NewBinomialCDF(m, x)})
	}
	return tables
}
