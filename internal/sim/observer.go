package sim

import (
	"fmt"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// exactObserver implements Observation by sampling agent indices uniformly
// with replacement and reading their opinion bits — the operational
// definition of the PULL model.
type exactObserver struct {
	ops *opinionBits
	src *rng.Source
	// noiseEps flips each observed bit independently (0 = noiseless).
	noiseEps float64
}

func (o *exactObserver) bind(_ int, src *rng.Source)         { o.src = src }
func (o *exactObserver) newRound(int, float64, []roundTable) {}

func (o *exactObserver) CountOnes(m int) int {
	count := 0
	for i := 0; i < m; i++ {
		count += int(o.Sample())
	}
	return count
}

func (o *exactObserver) Sample() byte {
	b := o.ops.get(o.src.Intn(o.ops.n))
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// observedFraction returns the effective probability that a single noisy
// observation reads 1 when the true fraction of 1-opinions is x: each bit
// flips independently with probability eps.
func observedFraction(x, eps float64) float64 {
	if eps <= 0 {
		return x
	}
	return x*(1-eps) + (1-x)*eps
}

// maxFixedDraws bounds the fast observer's per-agent prefetch buffer; a
// FixedDraws protocol declaring more draws per round falls back to the
// unbatched path.
const maxFixedDraws = 8

// fastObserver implements Observation by drawing counts directly from
// Binomial(m, x_t): under passive communication, observing m uniform
// agents with replacement reveals exactly a Binomial(m, x_t) count of
// 1-opinions, so this is distributionally identical to exactObserver.
//
// For FixedDraws protocols (draws > 0), bind prefetches the agent's
// whole round of stream outputs in one bulk rng.Source.Fill and the
// sampling calls consume them in order. Because a tabulated Sample
// consumes exactly one output per call, the consumed values — and the
// agent stream's state after the round — are bit-identical to the
// unbatched per-draw path.
type fastObserver struct {
	x      float64 // current fraction of 1-opinions
	tables []roundTable
	src    *rng.Source
	// draws is the protocol's declared per-round stream consumption
	// (0 disables batching).
	draws     int
	pos, have int
	buf       [maxFixedDraws]uint64
}

// roundTable caches one Binomial(m, x_t) inverse-CDF table for the round.
// The executor owns the tables and retabulates them in place per round.
type roundTable struct {
	m   int
	tab *rng.BinomialCDF
}

func (o *fastObserver) bind(_ int, src *rng.Source) {
	o.src = src
	if o.draws > 0 {
		src.Fill(o.buf[:o.draws])
		o.pos, o.have = 0, o.draws
	}
}

func (o *fastObserver) newRound(_ int, x float64, tables []roundTable) {
	o.x = x
	o.tables = tables
	o.pos, o.have = 0, 0
}

func (o *fastObserver) CountOnes(m int) int {
	for i := range o.tables {
		if t := &o.tables[i]; t.m == m {
			if o.pos < o.have {
				u := rng.UnitFloat(o.buf[o.pos])
				o.pos++
				return t.tab.SampleU(u)
			}
			return t.tab.Sample(o.src)
		}
	}
	// Sample size not pre-declared by the protocol: fall back to a direct
	// draw, which is exact but slower. (A FixedDraws protocol never takes
	// this path — its contract is that every CountOnes size is declared.)
	return o.src.Binomial(m, o.x)
}

func (o *fastObserver) Sample() byte {
	// Mirrors Source.Bernoulli(x) exactly, including consuming no stream
	// output when x is outside (0, 1), but reads any prefetched value
	// first.
	if o.x <= 0 {
		return OpinionZero
	}
	if o.x >= 1 {
		return OpinionOne
	}
	var u float64
	if o.pos < o.have {
		u = rng.UnitFloat(o.buf[o.pos])
		o.pos++
	} else {
		u = o.src.Float64()
	}
	if u < o.x {
		return OpinionOne
	}
	return OpinionZero
}

// graphObserver implements Observation on a non-complete topology: it
// draws uniform (with replacement) out-neighbors of the bound agent
// through a per-worker topo.View and reads their current opinion bits —
// the operational PULL definition restricted to the observation graph.
// The binomial shortcut of fastObserver is a uniform-mixing identity and
// does not apply here, so every agent engine shares this literal path on
// sparse topologies; the agent's own RNG stream drives the draws, which
// is what keeps the sharded parallel sweep bit-identical to the
// sequential one.
type graphObserver struct {
	ops      *opinionBits
	view     *topo.View
	src      *rng.Source
	noiseEps float64
}

func (o *graphObserver) bind(agent int, src *rng.Source) {
	o.src = src
	o.view.Bind(agent)
}

func (o *graphObserver) newRound(round int, _ float64, _ []roundTable) {
	o.view.NewRound(round)
}

func (o *graphObserver) CountOnes(m int) int {
	count := 0
	for i := 0; i < m; i++ {
		count += int(o.Sample())
	}
	return count
}

func (o *graphObserver) Sample() byte {
	b := o.ops.get(o.view.Next(o.src))
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// newRoundTables validates the protocol's declared sample sizes and
// allocates their reusable inverse-CDF tables, tabulated lazily by the
// round loop's in-place Reset calls.
func newRoundTables(sizes []int) []roundTable {
	tables := make([]roundTable, 0, len(sizes))
	for _, m := range sizes {
		if m < 0 {
			panic(fmt.Sprintf("sim: protocol declared negative sample size %d", m))
		}
		tables = append(tables, roundTable{m: m, tab: &rng.BinomialCDF{}})
	}
	return tables
}

// buildRoundTables tabulates the binomial laws for the protocol's
// declared sample sizes at the current opinion fraction.
func buildRoundTables(sizes []int, x float64) []roundTable {
	tables := newRoundTables(sizes)
	for i := range tables {
		tables[i].tab.Reset(tables[i].m, x)
	}
	return tables
}
