package sim

import (
	"fmt"
	"math/bits"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// exactObserver implements Observation by sampling agent indices uniformly
// with replacement and reading their opinion bits — the operational
// definition of the PULL model.
type exactObserver struct {
	ops *opinionBits
	src *rng.Source
	// noiseEps flips each observed bit independently (0 = noiseless).
	noiseEps float64
}

func (o *exactObserver) bind(_ int, src *rng.Source)         { o.src = src }
func (o *exactObserver) newRound(int, float64, []roundTable) {}

func (o *exactObserver) CountOnes(m int) int {
	count := 0
	for i := 0; i < m; i++ {
		count += int(o.Sample())
	}
	return count
}

func (o *exactObserver) Sample() byte {
	b := o.ops.get(o.src.Intn(o.ops.n))
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// observedFraction returns the effective probability that a single noisy
// observation reads 1 when the true fraction of 1-opinions is x: each bit
// flips independently with probability eps.
func observedFraction(x, eps float64) float64 {
	if eps <= 0 {
		return x
	}
	return x*(1-eps) + (1-x)*eps
}

// maxFixedDraws bounds the fast observer's per-agent prefetch buffer; a
// FixedDraws protocol declaring more draws per round falls back to the
// unbatched path.
const maxFixedDraws = 8

// fastObserver implements Observation by drawing counts directly from
// Binomial(m, x_t): under passive communication, observing m uniform
// agents with replacement reveals exactly a Binomial(m, x_t) count of
// 1-opinions, so this is distributionally identical to exactObserver.
//
// For FixedDraws protocols (draws > 0), bind prefetches the agent's
// whole round of stream outputs in one bulk rng.Source.Fill and the
// sampling calls consume them in order. Because a tabulated Sample
// consumes exactly one output per call, the consumed values — and the
// agent stream's state after the round — are bit-identical to the
// unbatched per-draw path.
type fastObserver struct {
	x      float64 // current fraction of 1-opinions
	tables []roundTable
	src    *rng.Source
	// draws is the protocol's declared per-round stream consumption
	// (0 disables batching).
	draws     int
	pos, have int
	buf       [maxFixedDraws]uint64
}

// roundTable caches one Binomial(m, x_t) inverse-CDF table for the round.
// The executor owns the tables and retabulates them in place per round.
type roundTable struct {
	m   int
	tab *rng.BinomialCDF
}

func (o *fastObserver) bind(_ int, src *rng.Source) {
	o.src = src
	if o.draws > 0 {
		// Exact mirror: prefetches the protocol's declared per-round
		// consumption (FixedDraws); each tabulated Sample/CountOnes call
		// consumes exactly one buffered output, in draw order.
		//fet:allow rngmirror: Fill(draws) = the declared FixedDraws budget, consumed one per sampling call
		src.Fill(o.buf[:o.draws])
		o.pos, o.have = 0, o.draws
	}
}

func (o *fastObserver) newRound(_ int, x float64, tables []roundTable) {
	o.x = x
	o.tables = tables
	o.pos, o.have = 0, 0
}

//fet:hotpath
func (o *fastObserver) CountOnes(m int) int {
	for i := range o.tables {
		if t := &o.tables[i]; t.m == m {
			if o.pos < o.have {
				u := rng.UnitFloat(o.buf[o.pos])
				o.pos++
				return t.tab.SampleU(u)
			}
			return t.tab.Sample(o.src)
		}
	}
	// Sample size not pre-declared by the protocol: fall back to a direct
	// draw, which is exact but slower. (A FixedDraws protocol never takes
	// this path — its contract is that every CountOnes size is declared.)
	return o.src.Binomial(m, o.x)
}

//fet:hotpath
func (o *fastObserver) Sample() byte {
	// Mirrors Source.Bernoulli(x) exactly, including consuming no stream
	// output when x is outside (0, 1), but reads any prefetched value
	// first.
	if o.x <= 0 {
		return OpinionZero
	}
	if o.x >= 1 {
		return OpinionOne
	}
	var u float64
	if o.pos < o.have {
		u = rng.UnitFloat(o.buf[o.pos])
		o.pos++
	} else {
		u = o.src.Float64()
	}
	if u < o.x {
		return OpinionOne
	}
	return OpinionZero
}

// maxGraphPrefetch caps the graph observer's per-round bulk prefetch
// (in stream outputs). Prefetching less than a round's guaranteed
// consumption is always stream-exact, so the cap only bounds memory for
// adversarially large sample sizes.
const maxGraphPrefetch = 4096

// graphObserver implements Observation on a non-complete topology: it
// draws uniform (with replacement) out-neighbors of the bound agent and
// reads their current opinion bits — the operational PULL definition
// restricted to the observation graph. The binomial shortcut of
// fastObserver is a uniform-mixing identity and does not apply here, so
// every agent engine shares this path on sparse topologies; the agent's
// own RNG stream drives the draws, which is what keeps the sharded
// parallel sweep bit-identical to the sequential one.
//
// The hot path is the PR 5 playbook applied to graphs. At bind, the
// agent's whole out-row packs into one uint64 of opinion bits (a CSR
// gather over the opinion bitset, frozen at graph Build/Rebuild time —
// see topo.View.RowBits), and for FixedDraws protocols the agent's
// whole round of stream outputs is bulk-loaded in one rng.Prefetch
// fill. Every draw then mirrors the per-draw path exactly — the
// Prefetch replays Intn's Lemire rejection walk and Bernoulli's
// consumption rule over the buffered values — so the consumed stream is
// bit-identical to the unbatched loop while each observation costs a
// shift and a mask instead of a scattered bitset read. Power-of-two
// degrees reject nothing, which unlocks a branch-free block loop and,
// for homogeneous rows, an O(1) whole-count answer.
//
// Out-degrees beyond 64 (no packed row) keep the literal per-draw path.
type graphObserver struct {
	ops      *opinionBits
	view     *topo.View
	src      *rng.Source
	noiseEps float64

	// deg is the graph's uniform out-degree; fullRow its packed all-ones
	// row; shift is 64−log₂(deg) when deg is a power of two (0 sentinel
	// otherwise): Lemire's Intn on a power-of-two bound is exactly
	// x >> shift with no rejection.
	deg     int
	fullRow uint64
	shift   uint
	// baseDraws is the protocol's guaranteed per-round observation count
	// (FixedDraws calls × the single declared sample size; 0 disables
	// prefetching), draws the per-replicate effective prefetch after the
	// noise-consumption doubling.
	baseDraws int
	draws     int
	// fused selects the zero-buffer counting path: a power-of-two degree
	// with no noise consumes exactly one output per observation, so whole
	// CountOnes blocks run inside the generator kernel (rng.CountPacked)
	// with no prefetch at all.
	fused bool
	// ladder is the shared whole-round stream-jump ladder (base =
	// DrawsPerRound·m steps) and deficit the per-agent count of deferred
	// rounds: a homogeneous row under the fused contract answers every
	// CountOnes of the round from the row alone, so instead of advancing
	// the agent's stream it increments the agent's debt, settled in
	// O(log debt) ladder applications the next time the stream is
	// actually read — or dropped at replicate end if it never is. skip
	// reports that the current bind deferred (CountOnes must not touch
	// the source).
	ladder  *rng.JumpLadder
	deficit []uint32
	skip    bool
	// calls and callSize hold the FixedDraws round shape (DrawsPerRound
	// CountOnes calls of the single declared size) when it fits the
	// precount buffer; under the fused contract a mixed row's whole round
	// of counts computes at bind in one kernel pass (counted), served in
	// call order from cnts.
	calls    int
	callSize int
	counted  bool
	cpos     int
	cnts     [maxFixedDraws]int
	// packed reports that the bound agent's row is gathered into rowBits
	// for this bind.
	packed  bool
	rowBits uint64
	pre     rng.Prefetch
}

// newGraphObserver builds one per-shard graph observer. The prefetch
// size derives from the FixedDraws contract: every Step makes exactly
// DrawsPerRound CountOnes calls of declared sizes and no Sample calls,
// so with a single distinct declared size m the round consumes at least
// DrawsPerRound·m outputs (each observation is ≥ 1 Intn output, plus
// exactly one Bernoulli output when noise is in (0,1)) — the safe bulk
// load.
func newGraphObserver(ops *opinionBits, g *topo.Graph, c *Config, ladder *rng.JumpLadder, deficit []uint32) *graphObserver {
	o := &graphObserver{ops: ops, view: g.NewView(), deg: g.Degree(), ladder: ladder, deficit: deficit}
	o.fullRow = ^uint64(0)
	if o.deg < 64 {
		o.fullRow = 1<<uint(o.deg) - 1
	}
	if o.deg&(o.deg-1) == 0 {
		o.shift = uint(64 - bits.TrailingZeros(uint(o.deg)))
	}
	if g.PackedRows() {
		if fd, ok := c.Protocol.(FixedDraws); ok {
			if m, single := singleSampleSize(c.Protocol.SampleSizes()); single && m >= 1 {
				if d := fd.DrawsPerRound(); d >= 1 {
					o.baseDraws = d * m
					if o.baseDraws > maxGraphPrefetch/2 {
						o.baseDraws = maxGraphPrefetch / 2
					}
					if d <= maxFixedDraws {
						o.calls, o.callSize = d, m
					}
				}
			}
		}
	}
	o.pre.Init(2 * o.baseDraws)
	o.setNoise(c.NoiseEps)
	return o
}

// maxRoundJumpSteps bounds the whole-round jump's precompute (building
// a StepJump runs 256·steps serial state advances); protocols declaring
// more draws per round than this keep the serial homogeneous-row path.
const maxRoundJumpSteps = 1 << 16

// jumpLadderDepth is the number of powers-of-two rungs built over the
// whole-round jump: deferred-round debts up to 2^16−1 settle in
// popcount applications, and longer ones (an agent homogeneous for a
// whole epoch) fall back to repeated top-rung applications.
const jumpLadderDepth = 16

// flushDebt settles the agent's deferred stream advance before the
// source is next read, keeping the stream byte-identical to the
// never-deferred schedule.
func (o *graphObserver) flushDebt(agent int, src *rng.Source) {
	if d := o.deficit[agent]; d != 0 {
		o.ladder.Flush(src, uint64(d))
		o.deficit[agent] = 0
	}
}

// graphRoundJump builds the whole-round stream jump shared by every
// shard's graph observer: DrawsPerRound·m steps, the exact per-round
// consumption of the fused (power-of-two degree, noiseless) contract.
// nil when the contract cannot hold for this (graph, protocol) pair.
func graphRoundJump(g *topo.Graph, c *Config) *rng.StepJump {
	deg := g.Degree()
	if !g.PackedRows() || deg&(deg-1) != 0 {
		return nil
	}
	fd, ok := c.Protocol.(FixedDraws)
	if !ok {
		return nil
	}
	m, single := singleSampleSize(c.Protocol.SampleSizes())
	if !single || m < 1 {
		return nil
	}
	d := fd.DrawsPerRound()
	if d < 1 || d > maxRoundJumpSteps/m {
		return nil
	}
	return rng.NewStepJump(d * m)
}

// singleSampleSize reports the protocol's sole distinct declared sample
// size, when there is exactly one.
func singleSampleSize(sizes []int) (int, bool) {
	if len(sizes) == 0 {
		return 0, false
	}
	m := sizes[0]
	for _, s := range sizes[1:] {
		if s != m {
			return 0, false
		}
	}
	return m, true
}

// setNoise installs the replicate's noise level and the prefetch size it
// implies: noise in (0, 1) consumes exactly one extra output per
// observation (Bernoulli draws nothing outside that interval).
func (o *graphObserver) setNoise(eps float64) {
	o.noiseEps = eps
	o.fused = o.shift != 0 && eps <= 0
	o.draws = o.baseDraws
	switch {
	case o.fused:
		// The fused kernel draws straight from the source; buffering would
		// only add a memory round-trip.
		o.draws = 0
	case eps > 0 && eps < 1:
		o.draws *= 2
	}
}

//fet:hotpath
func (o *graphObserver) bind(agent int, src *rng.Source) {
	o.src = src
	o.view.Bind(agent)
	o.rowBits, o.packed = o.view.RowBits(o.ops.words)
	if !o.packed {
		if o.fused && o.ladder != nil {
			o.flushDebt(agent, src)
		}
		o.skip, o.counted = false, false
		return
	}
	if o.fused {
		if o.ladder != nil {
			if o.rowBits == 0 || o.rowBits == o.fullRow {
				// Homogeneous row, exact per-round consumption: every
				// CountOnes answer is known from the row, so the round's
				// whole stream advance is deferred — one counter
				// increment now, settled by the jump ladder when the
				// stream is next read.
				o.deficit[agent]++
				o.skip, o.counted = true, false
				return
			}
			o.flushDebt(agent, src)
		}
		o.skip = false
		if o.calls >= 1 {
			// Mixed row: the round's whole call sequence is pinned by the
			// FixedDraws contract, so all its counts compute here in one
			// generator pass and the calls just read them off.
			//fet:allow rngmirror: consumes exactly calls·callSize outputs — the round's whole FixedDraws sequence, counted at bind
			o.src.CountPackedBlocks(o.rowBits, o.shift, o.callSize, o.cnts[:o.calls])
			o.cpos, o.counted = 0, true
			return
		}
		o.counted = false
		return
	}
	o.skip, o.counted = false, false
	o.pre.Bind(src, o.draws)
}

func (o *graphObserver) newRound(round int, _ float64, _ []roundTable) {
	o.view.NewRound(round)
}

//fet:hotpath
func (o *graphObserver) CountOnes(m int) int {
	if !o.packed {
		count := 0
		for i := 0; i < m; i++ {
			count += int(o.sampleLiteral())
		}
		return count
	}
	if o.fused {
		// Power-of-two degree, no noise: every draw is exactly one output
		// (x >> shift, no Lemire rejection, no Bernoulli), so counts are
		// either pre-computed at bind (counted), known from a homogeneous
		// row (its outputs consumed by the bind-time jump or burned
		// here), or run inside the generator kernel.
		if o.counted {
			c := o.cnts[o.cpos]
			o.cpos++
			return c
		}
		switch o.rowBits {
		case 0:
			if !o.skip {
				//fet:allow rngmirror: burns exactly the m draws the per-draw path would spend on an all-zero row
				o.src.Advance(m)
			}
			return 0
		case o.fullRow:
			if !o.skip {
				//fet:allow rngmirror: burns exactly the m draws the per-draw path would spend on an all-one row
				o.src.Advance(m)
			}
			return m
		}
		//fet:allow rngmirror: exactly m one-output Lemire draws (power-of-two degree never rejects)
		return o.src.CountPacked(o.rowBits, o.shift, m)
	}
	count := 0
	for i := 0; i < m; i++ {
		b := o.rowBits >> uint(o.pre.Intn(o.deg)) & 1
		if o.noiseFlip() {
			b ^= 1
		}
		count += int(b)
	}
	return count
}

//fet:hotpath
func (o *graphObserver) Sample() byte {
	if !o.packed {
		return o.sampleLiteral()
	}
	b := byte(o.rowBits >> uint(o.pre.Intn(o.deg)) & 1)
	if o.noiseFlip() {
		b ^= 1
	}
	return b
}

// noiseFlip mirrors src.Bernoulli(noiseEps) through the prefetch,
// including its zero-consumption edges.
func (o *graphObserver) noiseFlip() bool {
	if o.noiseEps <= 0 {
		return false
	}
	if o.noiseEps >= 1 {
		return true
	}
	return o.pre.Float64() < o.noiseEps
}

// sampleLiteral is the unpacked fallback (out-degree > 64): sample a
// neighbor index through the view and read its opinion bit.
func (o *graphObserver) sampleLiteral() byte {
	b := o.ops.get(o.view.Next(o.src))
	if o.noiseEps > 0 && o.src.Bernoulli(o.noiseEps) {
		return 1 - b
	}
	return b
}

// newRoundTables validates the protocol's declared sample sizes and
// allocates their reusable inverse-CDF tables, tabulated lazily by the
// round loop's in-place Reset calls.
func newRoundTables(sizes []int) []roundTable {
	tables := make([]roundTable, 0, len(sizes))
	for _, m := range sizes {
		if m < 0 {
			panic(fmt.Sprintf("sim: protocol declared negative sample size %d", m))
		}
		tables = append(tables, roundTable{m: m, tab: &rng.BinomialCDF{}})
	}
	return tables
}

// buildRoundTables tabulates the binomial laws for the protocol's
// declared sample sizes at the current opinion fraction.
func buildRoundTables(sizes []int, x float64) []roundTable {
	tables := newRoundTables(sizes)
	for i := range tables {
		tables[i].tab.Reset(tables[i].m, x)
	}
	return tables
}
