package sim

import (
	"context"
	"sync"

	"passivespread/internal/topo"
)

// poolKey is an executor's reuse shape: two configs with equal keys can
// share an executor via populate. Everything else a replicate varies —
// seed, correct opinion, initializer, noise, corruption hooks, round
// caps, observers — is (re)applied per lease by populate and the
// orchestrator.
type poolKey struct {
	engine             EngineKind
	n, sources, shards int
	protocol           string
	topology           string
}

// Pool reuses agent executors — and with them every O(n) replicate
// buffer: the packed opinion bitsets, the initializer scratch, the
// per-agent RNG states, resettable agent objects, the observation
// graph's adjacency and its per-worker View row buffers, and the
// parallel engine's persistent shard workers — across replicates that
// share a shape. Batch runners (Study, and Sweep through its per-cell
// Studies) lease an executor per replicate instead of rebuilding one,
// which removes the per-replicate allocation storm at large n while
// keeping results bit-identical: populate replays exactly the RNG
// consumption of a fresh construction.
//
// A Pool is safe for concurrent use. Call Release when a batch
// finishes: it drops the idle executors and stops their persistent
// workers (leaked otherwise for EngineAgentParallel). The Pool remains
// usable after Release.
type Pool struct {
	mu   sync.Mutex
	free map[poolKey][]*agentExecutor
}

// NewPool returns an empty executor pool.
func NewPool() *Pool {
	return &Pool{free: make(map[poolKey][]*agentExecutor)}
}

// RunContext is RunContext with executor reuse: it leases a pooled
// executor matching cfg's shape (building one on a miss), runs the
// replicate, and returns the executor to the pool. Results are
// bit-identical to the unpooled path. A nil *Pool degrades to plain
// RunContext. Engines without per-agent state (EngineAggregate,
// EngineAggregateSparse) run unpooled — their setup is O(ℓ), not O(n).
func (p *Pool) RunContext(ctx context.Context, cfg Config) (Result, error) {
	if p == nil {
		return RunContext(ctx, cfg)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if c.Engine == EngineAggregate || c.Engine == EngineAggregateSparse {
		exec, err := newAggregateExecutor(&c)
		if err != nil {
			return Result{}, err
		}
		defer exec.close()
		return runLoop(ctx, &c, exec)
	}

	key := poolKey{
		engine:   c.Engine,
		n:        c.N,
		sources:  c.Sources,
		protocol: c.Protocol.Name(),
		topology: topo.DisplayName(c.Topology),
		shards:   1,
	}
	if c.Engine == EngineAgentParallel {
		key.shards = resolvedWorkers(&c)
	}

	e := p.get(key)
	if e == nil {
		e, err = newAgentExecutor(&c)
	} else {
		err = e.populate(&c)
	}
	if err != nil {
		if e != nil {
			e.close()
		}
		return Result{}, err
	}
	res, runErr := runLoop(ctx, &c, e)
	e.cfg = nil // do not retain the lease's Config across idle periods
	p.put(key, e)
	return res, runErr
}

func (p *Pool) get(key poolKey) *agentExecutor {
	p.mu.Lock()
	defer p.mu.Unlock()
	frees := p.free[key]
	if len(frees) == 0 {
		return nil
	}
	e := frees[len(frees)-1]
	p.free[key] = frees[:len(frees)-1]
	return e
}

func (p *Pool) put(key poolKey, e *agentExecutor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[key] = append(p.free[key], e)
}

// Release closes and drops every idle executor. Executors leased at call
// time are unaffected — they return to the pool when their replicate
// finishes and are freed by the next Release.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, frees := range p.free {
		for _, e := range frees {
			e.close()
		}
		delete(p.free, key)
	}
}
