package sim

import (
	"context"
	"fmt"
	"sync"

	"passivespread/internal/topo"
)

// poolKey is an executor's reuse shape: two configs with equal keys can
// share an executor via populate. Everything else a replicate varies —
// seed, correct opinion, initializer, noise, corruption hooks, round
// caps, observers — is (re)applied per lease by populate and the
// orchestrator. lanes is the lockstep batch width (0 for sequential
// executors): lockstep buffers are sized n·lanes, so batches of
// different widths are different shapes.
type poolKey struct {
	engine                    EngineKind
	n, sources, shards, lanes int
	protocol                  string
	topology                  string
}

// Pool reuses agent executors — and with them every O(n) replicate
// buffer: the packed opinion bitsets, the initializer scratch, the
// per-agent RNG states, resettable agent objects, the observation
// graph's adjacency and its per-worker View row buffers, and the
// parallel engine's persistent shard workers — across replicates that
// share a shape. Batch runners (Study, and Sweep through its per-cell
// Studies) lease an executor per replicate instead of rebuilding one,
// which removes the per-replicate allocation storm at large n while
// keeping results bit-identical: populate replays exactly the RNG
// consumption of a fresh construction.
//
// A Pool is safe for concurrent use. Call Release when a batch
// finishes: it drops the idle executors and stops their persistent
// workers (leaked otherwise for EngineAgentParallel). The Pool remains
// usable after Release.
type Pool struct {
	mu       sync.Mutex
	free     map[poolKey][]*agentExecutor
	freeLock map[poolKey][]*lockstepExecutor
}

// NewPool returns an empty executor pool.
func NewPool() *Pool {
	return &Pool{
		free:     make(map[poolKey][]*agentExecutor),
		freeLock: make(map[poolKey][]*lockstepExecutor),
	}
}

// RunContext is RunContext with executor reuse: it leases a pooled
// executor matching cfg's shape (building one on a miss), runs the
// replicate, and returns the executor to the pool. Results are
// bit-identical to the unpooled path. A nil *Pool degrades to plain
// RunContext. Engines without per-agent state (EngineAggregate,
// EngineAggregateSparse) run unpooled — their setup is O(ℓ), not O(n).
func (p *Pool) RunContext(ctx context.Context, cfg Config) (Result, error) {
	if p == nil {
		return RunContext(ctx, cfg)
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	if c.Engine == EngineAggregate || c.Engine == EngineAggregateSparse {
		exec, err := newAggregateExecutor(&c)
		if err != nil {
			return Result{}, err
		}
		defer exec.close()
		return runLoop(ctx, &c, exec)
	}

	key := poolKey{
		engine:   c.Engine,
		n:        c.N,
		sources:  c.Sources,
		protocol: c.Protocol.Name(),
		topology: topo.DisplayName(c.Topology),
		shards:   1,
	}
	if c.Engine == EngineAgentParallel {
		key.shards = resolvedWorkers(&c)
	}

	e := p.get(key)
	if e == nil {
		e, err = newAgentExecutor(&c)
	} else {
		err = e.populate(&c)
	}
	if err != nil {
		if e != nil {
			e.close()
		}
		return Result{}, err
	}
	res, runErr := runLoop(ctx, &c, e)
	e.cfg = nil // do not retain the lease's Config across idle periods
	p.put(key, e)
	return res, runErr
}

// RunLockstep runs len(lanes) replicates of cfg's shape — lane l seeded
// with lanes[l].Seed and observed by lanes[l].Observers — writing each
// lane's outcome to out[l]. Outcomes are bit-identical to running every
// lane alone through RunContext: when the configuration supports the
// lockstep executor (see lockstepSupported) the whole batch advances
// word-parallel through a pooled transposed executor; otherwise, and for
// single-lane batches, each lane falls back to the sequential path.
// cfg.Seed and cfg.Observers are ignored — both are per-lane.
//
// A non-nil return means the batch itself was rejected (bad
// configuration, mismatched slice lengths, too many lanes) and no lane
// ran. Per-lane failures — context cancellation, observer errors — are
// reported in out[l].Err, and lanes already finished keep their
// results. A nil *Pool degrades to unpooled sequential runs.
func (p *Pool) RunLockstep(ctx context.Context, cfg Config, lanes []LaneRun, out []LaneResult) error {
	if len(out) != len(lanes) {
		return fmt.Errorf("sim: RunLockstep with %d lanes but %d result slots", len(lanes), len(out))
	}
	if len(lanes) > maxLockstepLanes {
		return fmt.Errorf("sim: RunLockstep with %d lanes, max %d", len(lanes), maxLockstepLanes)
	}
	if len(lanes) == 0 {
		return nil
	}
	cfg.Observers = nil
	c, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	if p == nil || len(lanes) == 1 || !lockstepSupported(&c) {
		for l := range lanes {
			lc := cfg
			lc.Seed = lanes[l].Seed
			lc.Observers = lanes[l].Observers
			var res Result
			var runErr error
			if p == nil {
				res, runErr = RunContext(ctx, lc)
			} else {
				res, runErr = p.RunContext(ctx, lc)
			}
			out[l] = LaneResult{Result: res, Err: runErr}
		}
		return nil
	}

	key := poolKey{
		engine:   c.Engine,
		n:        c.N,
		sources:  c.Sources,
		protocol: c.Protocol.Name(),
		topology: topo.DisplayName(c.Topology),
		shards:   1,
		lanes:    len(lanes),
	}
	e := p.getLock(key)
	if e == nil {
		e = newLockstepExecutor(&c, len(lanes))
	}
	if err := e.populate(&c, lanes); err != nil {
		return err
	}
	runLockstepLoop(ctx, &c, e, lanes, out)
	e.cfg = nil // do not retain the lease's Config across idle periods
	p.putLock(key, e)
	return nil
}

func (p *Pool) get(key poolKey) *agentExecutor {
	p.mu.Lock()
	defer p.mu.Unlock()
	frees := p.free[key]
	if len(frees) == 0 {
		return nil
	}
	e := frees[len(frees)-1]
	p.free[key] = frees[:len(frees)-1]
	return e
}

func (p *Pool) put(key poolKey, e *agentExecutor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[key] = append(p.free[key], e)
}

func (p *Pool) getLock(key poolKey) *lockstepExecutor {
	p.mu.Lock()
	defer p.mu.Unlock()
	frees := p.freeLock[key]
	if len(frees) == 0 {
		return nil
	}
	e := frees[len(frees)-1]
	p.freeLock[key] = frees[:len(frees)-1]
	return e
}

func (p *Pool) putLock(key poolKey, e *lockstepExecutor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.freeLock[key] = append(p.freeLock[key], e)
}

// Release closes and drops every idle executor. Executors leased at call
// time are unaffected — they return to the pool when their replicate
// finishes and are freed by the next Release.
func (p *Pool) Release() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	//fet:allow detrand: shutdown drain; executors are independent, close order is unobservable
	for key, frees := range p.free {
		for _, e := range frees {
			e.close()
		}
		delete(p.free, key)
	}
	//fet:allow detrand: shutdown drain; dropping references has no observable order
	for key := range p.freeLock {
		// Lockstep executors own no background resources — dropping the
		// references releases their buffers.
		delete(p.freeLock, key)
	}
}
