package sim

import (
	"testing"
	"testing/quick"

	"passivespread/internal/rng"
)

// TestSourceImmutableUnderArbitraryProtocol: no protocol can ever change
// a source's displayed opinion, whatever the agents output.
func TestSourceImmutableUnderArbitraryProtocol(t *testing.T) {
	f := func(seed uint16, flip bool) bool {
		var proto Protocol = constProtocol{v: OpinionZero}
		if flip {
			proto = constProtocol{v: OpinionOne}
		}
		correct := OpinionOne
		res, err := Run(Config{
			N:         64,
			Sources:   5,
			Protocol:  proto,
			Init:      allWrongInit{},
			Correct:   correct,
			Seed:      uint64(seed),
			MaxRounds: 20,
			RunToEnd:  true,
		})
		if err != nil {
			return false
		}
		// Sources contribute at least 5/64 to x at every recorded point.
		return res.FinalX >= 5.0/64-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorbWindowSemantics: with window w, a run is absorbed only after
// w consecutive all-correct opinion vectors, and Round reports the first.
func TestAbsorbWindowSemantics(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5} {
		cfg := baseConfig()
		cfg.AbsorbWindow = w
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("window %d: infection did not converge", w)
		}
		// The reported t_con must not depend on the window beyond the
		// detection delay: larger windows only delay Rounds, not Round.
		if res.Round < 0 || res.Round > res.Rounds {
			t.Fatalf("window %d: inconsistent Round %d (Rounds %d)", w, res.Round, res.Rounds)
		}
	}
}

// TestTrajectoryMatchesObserver: the per-round observer events and the
// recorded trajectory must agree exactly.
func TestTrajectoryMatchesObserver(t *testing.T) {
	var seen []float64
	cfg := baseConfig()
	cfg.RecordTrajectory = true
	cfg.Observers = []Observer{
		ObserverFunc(func(ev RoundEvent) error {
			seen = append(seen, ev.X)
			return nil
		}),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Trajectory)-1 {
		t.Fatalf("observer saw %d values, trajectory has %d", len(seen), len(res.Trajectory))
	}
	for i, x := range seen {
		if res.Trajectory[i+1] != x {
			t.Fatalf("mismatch at round %d: callback %v, trajectory %v", i, x, res.Trajectory[i+1])
		}
	}
}

// TestFastEngineCountsWithinRange: whatever the protocol requests, fast
// observer counts stay in [0, m].
func TestFastEngineCountsWithinRange(t *testing.T) {
	f := func(xr uint16, mRaw uint8) bool {
		m := int(mRaw%64) + 1
		x := float64(xr) / 65535
		obs := &fastObserver{
			x:      x,
			tables: buildRoundTables([]int{m}, x),
			src:    rng.New(uint64(xr) + 1),
		}
		for i := 0; i < 50; i++ {
			c := obs.CountOnes(m)
			if c < 0 || c > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildRoundTablesPanicsOnNegative guards the table builder.
func TestBuildRoundTablesPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative sample size")
		}
	}()
	buildRoundTables([]int{-1}, 0.5)
}
