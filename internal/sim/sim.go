// Package sim implements the synchronous-round population simulator for
// the PULL model with passive communication, as defined in Section 1.2 of
// the paper.
//
// A population of n agents holds binary opinions. In every round each
// non-source agent observes the opinions of random agents (with
// replacement) and applies its protocol's update rule; source agents hold
// the correct opinion forever. Who an agent may observe is decided by the
// observation-topology layer (internal/topo, Config.Topology): under the
// default Complete topology — the paper's uniform mixing — observations
// are uniform over the whole population, and because communication is
// passive an observation of m agents then carries no information beyond
// the number of 1-opinions among them, exactly a Binomial(m, x_t)
// variate for the current 1-fraction x_t. Non-complete topologies
// restrict each agent's draws to its out-neighbor row in the built
// observation graph, sampled uniformly with replacement.
//
// The package is layered (see DESIGN.md §1): a protocol-independent
// orchestrator owns the round loop and bookkeeping, and advances the
// population through a pluggable round executor selected by EngineKind:
//
//   - EngineAgentExact samples agent indices literally and reads their
//     opinions (the model's operational definition);
//   - EngineAgentFast draws each observation directly from a tabulated
//     Binomial(m, x_t) law (the model's distributional definition);
//   - EngineAgentParallel shards the fast sweep across a worker pool,
//     bit-identical to EngineAgentFast at every parallelism level;
//   - EngineAggregate advances per-(opinion, state) occupancy counts in
//     O(ℓ²) per round independent of n, agent-level exact in
//     distribution, for populations of 10⁸ and beyond.
//
// Tests cross-validate all of them. A still-coarser engine that
// simulates only the (x_t, x_{t+1}) Markov chain of Observation 1 lives
// in internal/markov.
package sim

import (
	"fmt"

	"passivespread/internal/rng"
)

// Opinion values. Opinions are bytes restricted to {0, 1}.
const (
	OpinionZero byte = 0
	OpinionOne  byte = 1
)

// Observation gives an agent access to its random observations for the
// current round. Under passive communication the only extractable
// information is opinion bits of sampled agents. The sampling law is the
// engine's per-agent neighbor sampler: uniform over the whole population
// under the Complete topology, uniform over the agent's out-neighbor row
// on a graph topology — protocols (FET, SimpleTrend, the baselines) are
// written against this seam and never draw population indices directly.
type Observation interface {
	// CountOnes observes m random agents (with replacement, per the
	// configured topology) and returns how many currently hold opinion 1.
	CountOnes(m int) int
	// Sample observes a single random agent and returns its opinion.
	Sample() byte
}

// Agent is the per-agent update rule of a protocol. Step receives the
// agent's current opinion and its observation access for the round, and
// returns the opinion the agent will display next round.
type Agent interface {
	Step(cur byte, obs Observation) byte
}

// Protocol constructs per-agent update rules.
type Protocol interface {
	// Name identifies the protocol in results and tables.
	Name() string
	// SampleSizes lists the distinct CountOnes arguments the agents use
	// each round, so the fast engine can pre-tabulate the binomial laws.
	// Protocols that only call Sample may return nil.
	SampleSizes() []int
	// NewAgent returns a fresh agent rule drawing randomness from src.
	NewAgent(src *rng.Source) Agent
}

// Initializer chooses the adversarial starting opinions of non-source
// agents (the self-stabilizing setting allows any starting configuration).
type Initializer interface {
	// Name identifies the initial condition in results and tables.
	Name() string
	// Assign writes a starting opinion for every index of opinions whose
	// isSource flag is false. Source entries are pre-set by the engine and
	// must be left untouched.
	Assign(opinions []byte, isSource []bool, src *rng.Source)
}

// FixedDraws is implemented by protocols whose agents consume exactly
// DrawsPerRound outputs from their RNG stream per round on the
// tabulated fast path — i.e. every Step makes exactly that many
// CountOnes calls, each with a size declared in SampleSizes, and no
// Sample calls. The fast observer then prefetches each agent's whole
// round of draws in one bulk fill (rng.Source.Fill) instead of drawing
// one value at a time; because a tabulated CountOnes consumes exactly
// one output per call, every consuming call reads the same value it
// would have drawn itself and the stream stays bit-identical to the
// unbatched path. FET declares 2, SimpleTrend 1.
type FixedDraws interface {
	DrawsPerRound() int
}

// TrendLockstep is implemented by protocols eligible for the lockstep
// replicate engine (Pool.RunLockstep), which advances up to 64
// replicates of one configuration through the round loop together. The
// marker asserts that, on the tabulated fast path, the protocol's whole
// per-agent update is the trend-compare rule:
//
//	draw DrawsPerRound() counts c_0 … c_{d−1}, each a CountOnes of the
//	single declared sample size; adopt opinion 1 if c_0 exceeds the
//	stored count, 0 if it is below, keep the current opinion on a tie;
//	store c_{d−1} for the next round.
//
// with d ∈ {1, 2} (FET compares c_0 and stores c_1; SimpleTrend uses
// one count for both) and no Sample calls. The lockstep engine replays
// this rule itself — agents' Step methods are never invoked — so the
// marker is a promise, cross-checked by the bit-identity test battery,
// not a derived fact. Eligible protocols' agents must additionally
// implement PrevCounter and AgentResetter (StateCorruptible and
// TrendSeeder compose as usual).
type TrendLockstep interface {
	Protocol
	FixedDraws
	// LockstepRule is a marker method carrying no behavior.
	LockstepRule()
}

// PrevCounter is implemented by trend-following agents exposing their
// stored previous-round count. The lockstep engine reads it once per
// replicate to transpose the agent state into its lane-major buffers.
type PrevCounter interface {
	PrevCount() int
}

// AgentResetter is implemented by agents that can be restored to their
// protocol's fresh (post-NewAgent) state in place. Pooled executors
// reset such agents across replicates instead of reallocating n of
// them; agents without it are rebuilt via Protocol.NewAgent each
// replicate. Adversarial state corruption and StateInit hooks run after
// the reset, exactly as they run after construction.
type AgentResetter interface {
	ResetAgent()
}

// StateCorruptible is implemented by agents whose internal memory can be
// set adversarially before round 0. Self-stabilization demands correctness
// from arbitrary internal states, so experiments exercising worst cases
// corrupt agent memories through this hook.
type StateCorruptible interface {
	CorruptState(src *rng.Source)
}

// TrendSeeder is implemented by trend-following agents (FET and its
// unpartitioned variant) whose stored previous-round count can be seeded.
// Seeding every agent's count with an independent Binomial(ℓ, x0) draw
// places the induced Markov chain exactly at (x_t, x_{t+1}) = (x0, ·),
// which the domain experiments use to start the chain anywhere on the
// grid G.
type TrendSeeder interface {
	SeedPrevCount(count int)
}

// EngineKind selects the round executor.
type EngineKind int

// Available engines.
const (
	// EngineAgentFast draws observations from tabulated binomial laws.
	// It is the default: statistically identical to the exact engine and
	// several times faster.
	EngineAgentFast EngineKind = iota
	// EngineAgentExact samples agent indices uniformly and reads opinions.
	EngineAgentExact
	// EngineAgentParallel is EngineAgentFast sharded across a worker pool
	// (Config.Parallelism, default GOMAXPROCS). Because every agent owns
	// its RNG stream and shards write disjoint slices, results are
	// bit-identical to EngineAgentFast at every parallelism level.
	EngineAgentParallel
	// EngineAggregate advances the population as occupancy counts per
	// (opinion, internal state) instead of per-agent objects: one round
	// costs O(ℓ²) multinomial updates independent of n, reaching
	// populations of 10⁸ and beyond with agent-level-exact statistics.
	// Requires a Protocol implementing AggregateProtocol; supports
	// CorruptStates but not StateInit.
	EngineAggregate
	// EngineAggregateSparse is the occupancy engine for degree-annealed
	// sparse topologies (random k-out and its dynamic rewiring): each
	// agent's k observation targets look like a fresh uniform draw every
	// round, so an agent's neighborhood carries j ~ B(k, x) one-opinions
	// and its observations are i.i.d. Bernoulli(j/k) given j. One round
	// costs O(k·ℓ²) independent of n. Requires a Protocol implementing
	// SparseAggregateProtocol and a topology reporting an annealed
	// degree; all other topologies are rejected at validation.
	EngineAggregateSparse
)

// ParseEngineKind returns the engine selected by a CLI-style name:
// "fast", "exact", "parallel", "aggregate" or "aggregate-sparse".
func ParseEngineKind(name string) (EngineKind, error) {
	switch name {
	case "fast":
		return EngineAgentFast, nil
	case "exact":
		return EngineAgentExact, nil
	case "parallel":
		return EngineAgentParallel, nil
	case "aggregate":
		return EngineAggregate, nil
	case "aggregate-sparse":
		return EngineAggregateSparse, nil
	default:
		return 0, fmt.Errorf("sim: unknown engine %q", name)
	}
}

// String returns the engine's name.
func (k EngineKind) String() string {
	switch k {
	case EngineAgentFast:
		return "agent-fast"
	case EngineAgentExact:
		return "agent-exact"
	case EngineAgentParallel:
		return "agent-parallel"
	case EngineAggregate:
		return "aggregate"
	case EngineAggregateSparse:
		return "aggregate-sparse"
	default:
		return "unknown"
	}
}

// Occupancy is the aggregate population representation: Counts[o][s] is
// the number of non-source agents currently displaying opinion o with
// internal state s. Sources are tracked separately by the engine.
type Occupancy struct {
	Counts [2][]int
}

// NewOccupancy returns a zeroed occupancy matrix for states states.
func NewOccupancy(states int) *Occupancy {
	return &Occupancy{Counts: [2][]int{make([]int, states), make([]int, states)}}
}

// Ones returns the number of non-source agents displaying opinion 1.
func (o *Occupancy) Ones() int {
	ones := 0
	for _, c := range o.Counts[1] {
		ones += c
	}
	return ones
}

// Total returns the number of non-source agents.
func (o *Occupancy) Total() int {
	t := 0
	for op := 0; op < 2; op++ {
		for _, c := range o.Counts[op] {
			t += c
		}
	}
	return t
}

// Zero clears all counts.
func (o *Occupancy) Zero() {
	for op := 0; op < 2; op++ {
		for s := range o.Counts[op] {
			o.Counts[op][s] = 0
		}
	}
}

// AggregateProtocol is implemented by protocols whose whole population can
// be advanced as occupancy counts: the agent state is a small integer and
// the update law depends only on (opinion, state) and the round's
// observation distribution. FET and SimpleTrend qualify — their state is
// the stored count ∈ {0, …, ℓ}.
type AggregateProtocol interface {
	Protocol
	// AggregateStates returns the number of distinct internal states.
	AggregateStates() int
	// StepOccupancy advances the population one synchronous round: occ is
	// the current occupancy, next a zeroed matrix to fill, xObs the
	// effective probability that a single observation reads 1 (noise
	// already folded in), and src the round's randomness. The update must
	// be agent-level exact in distribution.
	StepOccupancy(occ, next *Occupancy, xObs float64, src *rng.Source)
}

// SparseAggregateProtocol extends AggregateProtocol with the
// degree-annealed round update used by EngineAggregateSparse: every
// agent's k observation targets are a fresh uniform draw from the
// population, so its neighborhood holds j ~ B(k, x) one-opinions and
// each observation reads 1 with probability observedFraction(j/k,
// noiseEps) given j. Unlike StepOccupancy, noise folds in per
// neighborhood class, so the raw fraction and noise level pass through.
type SparseAggregateProtocol interface {
	AggregateProtocol
	// StepOccupancySparse advances one synchronous round under the
	// annealed k-neighbor observation law. x is the raw fraction of
	// 1-opinions and noiseEps the per-observation flip probability; the
	// update must be agent-level exact in distribution for the
	// configuration-model neighborhood.
	StepOccupancySparse(occ, next *Occupancy, k int, x, noiseEps float64, src *rng.Source)
}

// AggregateInitializer is implemented by initializers that can report how
// many of the nonSources non-source agents start at opinion 1 without
// materializing a per-agent opinion array — required to start the
// aggregate engine at populations where O(n) arrays are not affordable.
// n is the total population size and sourceOnes the number of sources
// displaying opinion 1; the returned count must lie in [0, nonSources].
type AggregateInitializer interface {
	Initializer
	AggregateOnes(n, nonSources, sourceOnes int, src *rng.Source) int
}
