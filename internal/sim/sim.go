// Package sim implements the synchronous-round population simulator for
// the PULL model with passive communication, as defined in Section 1.2 of
// the paper.
//
// A population of n agents holds binary opinions. In every round each
// non-source agent observes the opinions of uniformly random agents (with
// replacement) and applies its protocol's update rule; source agents hold
// the correct opinion forever. Because communication is passive, an
// observation of m agents carries no information beyond the number of
// 1-opinions among them — which is exactly a Binomial(m, x_t) variate,
// where x_t is the current fraction of 1-opinions.
//
// The package offers two statistically identical engines:
//
//   - EngineAgentExact samples agent indices literally and reads their
//     opinions (the model's operational definition);
//   - EngineAgentFast draws each observation directly from a tabulated
//     Binomial(m, x_t) law (the model's distributional definition).
//
// Tests cross-validate the two. A third, aggregate engine that simulates
// only the (x_t, x_{t+1}) Markov chain of Observation 1 lives in
// internal/markov.
package sim

import "passivespread/internal/rng"

// Opinion values. Opinions are bytes restricted to {0, 1}.
const (
	OpinionZero byte = 0
	OpinionOne  byte = 1
)

// Observation gives an agent access to its random observations for the
// current round. Under passive communication the only extractable
// information is opinion bits of uniformly sampled agents.
type Observation interface {
	// CountOnes observes m uniformly random agents (with replacement) and
	// returns how many of them currently hold opinion 1.
	CountOnes(m int) int
	// Sample observes a single uniformly random agent and returns its
	// opinion.
	Sample() byte
}

// Agent is the per-agent update rule of a protocol. Step receives the
// agent's current opinion and its observation access for the round, and
// returns the opinion the agent will display next round.
type Agent interface {
	Step(cur byte, obs Observation) byte
}

// Protocol constructs per-agent update rules.
type Protocol interface {
	// Name identifies the protocol in results and tables.
	Name() string
	// SampleSizes lists the distinct CountOnes arguments the agents use
	// each round, so the fast engine can pre-tabulate the binomial laws.
	// Protocols that only call Sample may return nil.
	SampleSizes() []int
	// NewAgent returns a fresh agent rule drawing randomness from src.
	NewAgent(src *rng.Source) Agent
}

// Initializer chooses the adversarial starting opinions of non-source
// agents (the self-stabilizing setting allows any starting configuration).
type Initializer interface {
	// Name identifies the initial condition in results and tables.
	Name() string
	// Assign writes a starting opinion for every index of opinions whose
	// isSource flag is false. Source entries are pre-set by the engine and
	// must be left untouched.
	Assign(opinions []byte, isSource []bool, src *rng.Source)
}

// StateCorruptible is implemented by agents whose internal memory can be
// set adversarially before round 0. Self-stabilization demands correctness
// from arbitrary internal states, so experiments exercising worst cases
// corrupt agent memories through this hook.
type StateCorruptible interface {
	CorruptState(src *rng.Source)
}

// TrendSeeder is implemented by trend-following agents (FET and its
// unpartitioned variant) whose stored previous-round count can be seeded.
// Seeding every agent's count with an independent Binomial(ℓ, x0) draw
// places the induced Markov chain exactly at (x_t, x_{t+1}) = (x0, ·),
// which the domain experiments use to start the chain anywhere on the
// grid G.
type TrendSeeder interface {
	SeedPrevCount(count int)
}

// EngineKind selects the observation implementation.
type EngineKind int

// Available engines.
const (
	// EngineAgentFast draws observations from tabulated binomial laws.
	// It is the default: statistically identical to the exact engine and
	// several times faster.
	EngineAgentFast EngineKind = iota
	// EngineAgentExact samples agent indices uniformly and reads opinions.
	EngineAgentExact
)

// String returns the engine's name.
func (k EngineKind) String() string {
	switch k {
	case EngineAgentFast:
		return "agent-fast"
	case EngineAgentExact:
		return "agent-exact"
	default:
		return "unknown"
	}
}
