package sim

import (
	"reflect"
	"strings"
	"testing"

	"passivespread/internal/rng"
	"passivespread/internal/topo"
)

// majProto is a minimal majority-of-3 protocol: enough dynamics to move
// opinions around, local to the executor-level tests (the real FET is
// exercised against topologies by the root package's tests).
type majProto struct{}

func (majProto) Name() string               { return "maj3" }
func (majProto) SampleSizes() []int         { return []int{3} }
func (majProto) NewAgent(*rng.Source) Agent { return majAgent{} }

type majAgent struct{}

func (majAgent) Step(cur byte, obs Observation) byte {
	if obs.CountOnes(3) >= 2 {
		return OpinionOne
	}
	return OpinionZero
}

func topoConfig(t *testing.T, engine EngineKind, tp topo.Topology, parallelism int) Config {
	t.Helper()
	return Config{
		N:         400, // perfect square: torus-compatible
		Protocol:  majProto{},
		Init:      allWrongInit{},
		Engine:    engine,
		Topology:  tp,
		Seed:      17,
		MaxRounds: 40,
		RunToEnd:  true,

		Parallelism:      parallelism,
		RecordTrajectory: true,
	}
}

// TestGraphTopologyFastEqualsExact: on a non-complete topology every
// agent engine samples neighbor opinions literally, so the fast and
// exact engines must be byte-identical, not merely distribution-equal.
func TestGraphTopologyFastEqualsExact(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.Ring(3), topo.Torus(), topo.RandomRegular(6),
		topo.SmallWorld(3, 0.2), topo.DynamicRewire(6, 0.3),
	} {
		fast, err := Run(topoConfig(t, EngineAgentFast, tp, 0))
		if err != nil {
			t.Fatalf("%s fast: %v", tp.Name(), err)
		}
		exact, err := Run(topoConfig(t, EngineAgentExact, tp, 0))
		if err != nil {
			t.Fatalf("%s exact: %v", tp.Name(), err)
		}
		if !reflect.DeepEqual(fast, exact) {
			t.Errorf("%s: fast and exact engines diverged:\nfast:  %+v\nexact: %+v", tp.Name(), fast, exact)
		}
	}
}

// TestGraphTopologyParallelBitIdentical: the sharded sweep must match
// the sequential one at every worker count on every topology, dynamic
// rewiring included — neighbor rows derive from (seed, round, agent),
// never from scheduling.
func TestGraphTopologyParallelBitIdentical(t *testing.T) {
	for _, tp := range []topo.Topology{
		topo.RandomRegular(6), topo.SmallWorld(3, 0.2), topo.DynamicRewire(6, 0.3),
	} {
		ref, err := Run(topoConfig(t, EngineAgentFast, tp, 0))
		if err != nil {
			t.Fatalf("%s fast: %v", tp.Name(), err)
		}
		for _, workers := range []int{1, 2, 5, 16} {
			got, err := Run(topoConfig(t, EngineAgentParallel, tp, workers))
			if err != nil {
				t.Fatalf("%s parallel/%d: %v", tp.Name(), workers, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("%s: parallel(%d) diverged from fast:\nfast:     %+v\nparallel: %+v",
					tp.Name(), workers, ref, got)
			}
		}
	}
}

// TestCompleteTopologyIsDefaultIdentity: passing topo.Complete()
// explicitly must be byte-identical to the nil default — no topology
// stream is consumed under uniform mixing.
func TestCompleteTopologyIsDefaultIdentity(t *testing.T) {
	ref, err := Run(topoConfig(t, EngineAgentFast, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(topoConfig(t, EngineAgentFast, topo.Complete(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("explicit Complete() diverged from nil default:\nnil:      %+v\ncomplete: %+v", ref, got)
	}
}

// TestAggregateRejectsGraphTopology: the occupancy engine's update law
// is exact only under uniform mixing, so a graph topology must be
// rejected at validation time, before any executor is built.
func TestAggregateRejectsGraphTopology(t *testing.T) {
	cfg := topoConfig(t, EngineAggregate, topo.RandomRegular(6), 0)
	if err := cfg.Validate(); err == nil {
		t.Fatal("EngineAggregate accepted a non-complete topology")
	} else if !strings.Contains(err.Error(), "uniform mixing") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}

// TestTopologyValidatedAgainstPopulation: a topology that cannot be
// built over N must fail Validate, not surface from inside a run.
func TestTopologyValidatedAgainstPopulation(t *testing.T) {
	cfg := topoConfig(t, EngineAgentFast, topo.Ring(250), 0) // 2k > n−1 at n=400
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted ring k=250 over n=400")
	}
	cfg2 := topoConfig(t, EngineAgentFast, topo.Torus(), 0)
	cfg2.N = 401 // not a perfect square
	if err := cfg2.Validate(); err == nil {
		t.Fatal("Validate accepted a torus over a non-square population")
	}
}
