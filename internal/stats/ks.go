package stats

import (
	"math"
	"sort"
)

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup |F_a − F_b| between the empirical CDFs of the two samples.
// It panics on an empty sample.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic of empty sample")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)

	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Advance both sides past all copies of the smaller value; the
		// CDF difference is only well-defined between distinct values
		// (stepping one side at a time inflates D at ties).
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSCriticalValue returns the asymptotic two-sample critical value at
// significance alpha: c(α)·√((n+m)/(n·m)) with
// c(α) = √(−ln(α/2)/2). Reject "same distribution" when the statistic
// exceeds it. It panics unless 0 < alpha < 1.
func KSCriticalValue(n, m int, alpha float64) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic("stats: KSCriticalValue with alpha outside (0, 1)")
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m)))
}

// KSSameDistribution reports whether the two samples pass the KS test at
// significance alpha (i.e. the statistic does not exceed the critical
// value — no evidence of different distributions).
func KSSameDistribution(a, b []float64, alpha float64) bool {
	return KSStatistic(a, b) <= KSCriticalValue(len(a), len(b), alpha)
}
