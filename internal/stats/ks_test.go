package stats

import (
	"testing"

	"passivespread/internal/rng"
)

func TestKSStatisticIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(a, a); got != 0 {
		t.Fatalf("identical samples D = %v, want 0", got)
	}
}

func TestKSStatisticDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSStatistic(a, b); got != 1 {
		t.Fatalf("disjoint samples D = %v, want 1", got)
	}
}

func TestKSStatisticSymmetric(t *testing.T) {
	a := []float64{1, 3, 5, 7}
	b := []float64{2, 3, 8}
	if KSStatistic(a, b) != KSStatistic(b, a) {
		t.Fatal("KS statistic not symmetric")
	}
}

func TestKSStatisticPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	KSStatistic(nil, []float64{1})
}

func TestKSSameDistributionAcceptsSameLaw(t *testing.T) {
	src := rng.New(1)
	rejections := 0
	const repeats = 40
	for r := 0; r < repeats; r++ {
		a := make([]float64, 300)
		b := make([]float64, 300)
		for i := range a {
			a[i] = src.Normal()
			b[i] = src.Normal()
		}
		if !KSSameDistribution(a, b, 0.01) {
			rejections++
		}
	}
	// At α = 0.01 we expect ≈ 0.4 false rejections in 40 repeats.
	if rejections > 3 {
		t.Fatalf("%d/%d false rejections at α = 0.01", rejections, repeats)
	}
}

func TestKSSameDistributionRejectsShiftedLaw(t *testing.T) {
	src := rng.New(2)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = src.Normal()
		b[i] = src.Normal() + 0.5 // half-σ shift
	}
	if KSSameDistribution(a, b, 0.05) {
		t.Fatal("failed to reject a half-σ shift with n = 500")
	}
}

func TestKSCriticalValueBehavior(t *testing.T) {
	// Larger samples → smaller critical value; smaller α → larger.
	if KSCriticalValue(100, 100, 0.05) <= KSCriticalValue(1000, 1000, 0.05) {
		t.Fatal("critical value must shrink with sample size")
	}
	if KSCriticalValue(100, 100, 0.01) <= KSCriticalValue(100, 100, 0.1) {
		t.Fatal("critical value must grow as α shrinks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad alpha")
		}
	}()
	KSCriticalValue(10, 10, 0)
}
