// Package stats provides the statistical helpers used by the experiment
// harness: summary statistics, quantiles, least-squares fits (including
// the polylog-exponent fit used to check Theorem 1's scaling shape), and
// bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"

	"passivespread/internal/rng"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Var, Std   float64
	Min, Max         float64
	Median, Q25, Q75 float64
	P05, P95         float64
	StdErr           float64 // standard error of the mean
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Var = ss / float64(s.N-1)
	}
	s.Std = math.Sqrt(s.Var)
	s.StdErr = s.Std / math.Sqrt(float64(s.N))

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantileSorted(sorted, 0.5)
	s.Q25 = quantileSorted(sorted, 0.25)
	s.Q75 = quantileSorted(sorted, 0.75)
	s.P05 = quantileSorted(sorted, 0.05)
	s.P95 = quantileSorted(sorted, 0.95)
	return s
}

// Convergence aggregates replicate convergence outcomes: how many
// replicates met the absorption criterion and the distribution of their
// convergence times. It is the shared aggregation used by the root Study
// API and the experiment harness.
type Convergence struct {
	// Replicates is the number of replicates aggregated.
	Replicates int
	// Converged is the number of replicates that met the criterion.
	Converged int
	// SuccessRate is Converged / Replicates.
	SuccessRate float64
	// Rounds summarizes the per-replicate convergence times, with
	// non-converged replicates censored at their executed round count.
	Rounds Summary
}

// SummarizeConvergence aggregates times[i] (a convergence time, or the
// executed-round count for a censored replicate) with converged[i]
// reporting whether replicate i met the criterion. It panics on empty or
// mismatched inputs.
func SummarizeConvergence(times []float64, converged []bool) Convergence {
	if len(times) != len(converged) {
		panic("stats: SummarizeConvergence with mismatched inputs")
	}
	c := Convergence{Replicates: len(times), Rounds: Summarize(times)}
	for _, ok := range converged {
		if ok {
			c.Converged++
		}
	}
	c.SuccessRate = float64(c.Converged) / float64(c.Replicates)
	return c
}

// quantileTol is the slack Quantile allows around the [0, 1] boundary:
// callers that build quantile grids with float steps (q = i·Δ for
// Δ = 1/k) routinely land a hair outside the interval through rounding
// (e.g. 20×0.05 = 1.0000000000000002), which is a representation
// artifact, not a caller bug.
const quantileTol = 1e-12

// Quantile returns the q-quantile of xs (linear interpolation between
// order statistics). Values of q within quantileTol of 0 or 1 are
// clamped onto the boundary — float-stepped quantile grids overshoot the
// endpoints by an ulp or two — while q genuinely outside [0, 1] (or NaN)
// still panics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 && q >= -quantileTol {
		q = 0
	}
	if q > 1 && q <= 1+quantileTol {
		q = 1
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile with q = %v", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean. It panics on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LinearFit is an ordinary least-squares line y = Intercept + Slope·x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
}

// FitLine fits a least-squares line through (xs[i], ys[i]). It panics
// when the inputs are mismatched or have fewer than two points, and
// returns a degenerate fit (slope 0) when all xs coincide.
func FitLine(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLine with mismatched inputs")
	}
	if len(xs) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	fit := LinearFit{}
	if sxx == 0 {
		fit.Intercept = my
		return fit
	}
	fit.Slope = sxy / sxx
	fit.Intercept = my - fit.Slope*mx
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (fit.Intercept + fit.Slope*xs[i])
			ssRes += r * r
		}
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	return fit
}

// PolylogFit reports the fit of t = a · (log n)^b obtained by regressing
// log t on log log n. Exponent is b; Coefficient is a. This is the tool
// used to verify Theorem 1's shape: the measured convergence times must
// yield a small exponent (the paper's upper bound is b = 5/2), whereas a
// polynomial-in-n running time would make the exponent diverge with the
// sweep range.
type PolylogFit struct {
	Exponent, Coefficient float64
	R2                    float64
}

// FitPolylog fits times[i] ≈ a·(ln ns[i])^b. All ns must be ≥ 3 and all
// times positive.
func FitPolylog(ns []int, times []float64) PolylogFit {
	if len(ns) != len(times) {
		panic("stats: FitPolylog with mismatched inputs")
	}
	xs := make([]float64, len(ns))
	ys := make([]float64, len(times))
	for i := range ns {
		if ns[i] < 3 {
			panic(fmt.Sprintf("stats: FitPolylog with n = %d", ns[i]))
		}
		if times[i] <= 0 {
			panic(fmt.Sprintf("stats: FitPolylog with time = %v", times[i]))
		}
		xs[i] = math.Log(math.Log(float64(ns[i])))
		ys[i] = math.Log(times[i])
	}
	line := FitLine(xs, ys)
	return PolylogFit{
		Exponent:    line.Slope,
		Coefficient: math.Exp(line.Intercept),
		R2:          line.R2,
	}
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// statistic stat over xs, at the given confidence level (e.g. 0.95),
// using resamples drawn from seed.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, resamples int, seed uint64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: BootstrapCI with level = %v", level))
	}
	if resamples < 2 {
		panic(fmt.Sprintf("stats: BootstrapCI with resamples = %d", resamples))
	}
	src := rng.New(seed)
	vals := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[src.Intn(len(xs))]
		}
		vals[r] = stat(buf)
	}
	alpha := (1 - level) / 2
	return Quantile(vals, alpha), Quantile(vals, 1-alpha)
}

// Histogram bins xs into k equal-width buckets over [min, max] and
// returns the counts. Values on the top edge land in the last bucket.
func Histogram(xs []float64, k int, min, max float64) []int {
	if k < 1 {
		panic(fmt.Sprintf("stats: Histogram with k = %d", k))
	}
	if !(max > min) {
		panic("stats: Histogram with max ≤ min")
	}
	counts := make([]int, k)
	w := (max - min) / float64(k)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / w)
		if b >= k {
			b = k - 1
		}
		counts[b]++
	}
	return counts
}
