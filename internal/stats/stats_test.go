package stats

import (
	"math"
	"testing"
	"testing/quick"

	"passivespread/internal/rng"
)

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Var-2.5) > 1e-12 { // sample variance
		t.Fatalf("Var = %v, want 2.5", s.Var)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v", s.Std)
	}
	if math.Abs(s.StdErr-math.Sqrt(2.5/5)) > 1e-12 {
		t.Fatalf("StdErr = %v", s.StdErr)
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Fatalf("quartiles %v %v", s.Q25, s.Q75)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Var != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile([]float64{1}, q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile(empty) did not panic")
			}
		}()
		Quantile(nil, 0.5)
	}()
}

// TestQuantileClampsFloatSteppedBoundaries: quantile grids built with
// float steps land an ulp outside [0, 1] (e.g. 20 steps of 0.05
// accumulate to 1.0000000000000002); such values must clamp to the
// boundary instead of panicking, while q beyond the 1e-12 tolerance
// still panics.
func TestQuantileClampsFloatSteppedBoundaries(t *testing.T) {
	xs := []float64{4, 1, 3, 2}

	// A real float-stepped grid endpoint: 20 × 0.05 > 1.
	over := 0.0
	for i := 0; i < 20; i++ {
		over += 0.05
	}
	if over <= 1 {
		t.Fatalf("grid endpoint %v does not overshoot; pick another step", over)
	}
	if got := Quantile(xs, over); got != 4 {
		t.Fatalf("Quantile(%v) = %v, want the max 4", over, got)
	}
	if got := Quantile(xs, math.Nextafter(0, -1)); got != 1 {
		t.Fatalf("Quantile(-ulp) = %v, want the min 1", got)
	}
	if got := Quantile(xs, 1+1e-12); got != 4 {
		t.Fatalf("Quantile(1+1e-12) = %v, want 4", got)
	}
	if got := Quantile(xs, -1e-12); got != 1 {
		t.Fatalf("Quantile(-1e-12) = %v, want 1", got)
	}

	// Outside the tolerance the panic contract stands.
	for _, q := range []float64{1 + 1e-11, -1e-11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile(xs, q)
		}()
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	src := rng.New(1)
	f := func(seed uint16) bool {
		s := rng.New(uint64(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = s.Float64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(xs, math.Min(q, 1))
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	_ = src
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Fatalf("Mean = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Mean(empty) did not panic")
		}
	}()
	Mean(nil)
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	src := rng.New(3)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 10
		ys[i] = 5 - 0.7*xs[i] + 0.1*src.Normal()
	}
	fit := FitLine(xs, ys)
	if math.Abs(fit.Slope+0.7) > 0.02 {
		t.Fatalf("slope = %v, want ≈ -0.7", fit.Slope)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	fit := FitLine([]float64{2, 2, 2}, []float64{1, 5, 9})
	if fit.Slope != 0 || fit.Intercept != 5 {
		t.Fatalf("degenerate fit %+v", fit)
	}
}

func TestFitLinePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched inputs")
			}
		}()
		FitLine([]float64{1, 2}, []float64{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single point")
			}
		}()
		FitLine([]float64{1}, []float64{1})
	}()
}

func TestFitPolylogRecoversExponent(t *testing.T) {
	// Generate t = 3·(ln n)^2.5 exactly and recover the exponent.
	ns := []int{256, 1024, 4096, 16384, 65536, 262144}
	times := make([]float64, len(ns))
	for i, n := range ns {
		times[i] = 3 * math.Pow(math.Log(float64(n)), 2.5)
	}
	fit := FitPolylog(ns, times)
	if math.Abs(fit.Exponent-2.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 2.5", fit.Exponent)
	}
	if math.Abs(fit.Coefficient-3) > 1e-6 {
		t.Fatalf("coefficient = %v, want 3", fit.Coefficient)
	}
	if fit.R2 < 1-1e-12 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitPolylogDistinguishesPolynomial(t *testing.T) {
	// A genuinely polynomial time t = n must produce a very large
	// "exponent" over this range — the shape check Theorem 1 relies on.
	ns := []int{256, 1024, 4096, 16384, 65536}
	times := make([]float64, len(ns))
	for i, n := range ns {
		times[i] = float64(n)
	}
	fit := FitPolylog(ns, times)
	if fit.Exponent < 6 {
		t.Fatalf("polynomial data fit exponent %v, expected ≫ 2.5", fit.Exponent)
	}
}

func TestFitPolylogPanics(t *testing.T) {
	cases := []struct {
		ns    []int
		times []float64
	}{
		{[]int{10}, []float64{1, 2}},
		{[]int{2, 10}, []float64{1, 2}},
		{[]int{10, 20}, []float64{0, 2}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FitPolylog(%v, %v) did not panic", tc.ns, tc.times)
				}
			}()
			FitPolylog(tc.ns, tc.times)
		}()
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	src := rng.New(5)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + src.Normal()
	}
	lo, hi := BootstrapCI(xs, Mean, 0.95, 500, 7)
	if lo > 10 || hi < 10 {
		t.Fatalf("95%% CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI [%v, %v] too wide for n=400", lo, hi)
	}
	if lo >= hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	cases := []func(){
		func() { BootstrapCI(nil, Mean, 0.95, 100, 1) },
		func() { BootstrapCI([]float64{1}, Mean, 0, 100, 1) },
		func() { BootstrapCI([]float64{1}, Mean, 1, 100, 1) },
		func() { BootstrapCI([]float64{1}, Mean, 0.95, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	lo1, hi1 := BootstrapCI(xs, Mean, 0.9, 200, 42)
	lo2, hi2 := BootstrapCI(xs, Mean, 0.9, 200, 42)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("same-seed bootstrap differs")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0, -5, 7}
	counts := Histogram(xs, 2, 0, 1)
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("counts %v", counts) // -5 and 7 out of range; 1.0 in last bucket
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 5 {
		t.Fatalf("total %d", total)
	}
}

func TestHistogramPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=0")
			}
		}()
		Histogram([]float64{1}, 0, 0, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("max ≤ min")
			}
		}()
		Histogram([]float64{1}, 3, 1, 1)
	}()
}
