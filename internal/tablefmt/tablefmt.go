// Package tablefmt renders the experiment harness's results as aligned
// ASCII tables, Markdown tables, and CSV.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular table with a header row.
type Table struct {
	header []string
	rows   [][]string
}

// New returns a Table with the given column headers.
func New(header ...string) *Table {
	h := make([]string, len(header))
	copy(h, header)
	return &Table{header: h}
}

// AddRow appends a row. Each cell is rendered with %v; the row is padded
// or truncated to the header width.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = formatCell(cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

func formatCell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return formatFloat(x)
	case float32:
		return formatFloat(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

// formatFloat prints floats compactly: integers without decimals, small
// magnitudes with four significant decimals.
func formatFloat(f float64) string {
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.4g", f)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with aligned columns, a header separator, and
// two spaces between columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		var line strings.Builder
		for i, cell := range cells {
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (quoting cells that contain
// commas, quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
