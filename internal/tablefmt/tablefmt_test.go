package tablefmt

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("n", "rounds", "note")
	t.AddRow(1024, 33.5, "ok")
	t.AddRow(65536, 61, "w.h.p.")
	return t
}

func TestString(t *testing.T) {
	out := sample().String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n ") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "33.5") || !strings.Contains(lines[3], "65536") {
		t.Fatalf("rows:\n%s", out)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, " ") {
			t.Fatalf("trailing whitespace in %q", l)
		}
	}
}

func TestColumnsAligned(t *testing.T) {
	tab := New("a", "b")
	tab.AddRow("x", "y")
	tab.AddRow("longer", "z")
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	// Column b must start at the same offset in all full rows.
	idx := strings.Index(lines[2], "y")
	if strings.Index(lines[3], "z") != idx {
		t.Fatalf("misaligned columns:\n%s", tab.String())
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.HasPrefix(out, "| n | rounds | note |\n| --- | --- | --- |\n") {
		t.Fatalf("markdown header:\n%s", out)
	}
	if !strings.Contains(out, "| 1024 | 33.5 | ok |") {
		t.Fatalf("markdown row:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tab := New("a", "b")
	tab.AddRow(`comma,here`, `quote"here`)
	tab.AddRow(1, 2)
	out := tab.CSV()
	want := "a,b\n\"comma,here\",\"quote\"\"here\"\n1,2\n"
	if out != want {
		t.Fatalf("csv:\n%q\nwant\n%q", out, want)
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tab := New("a", "b")
	tab.AddRow(1)          // short row padded
	tab.AddRow(1, 2, 3, 4) // long row truncated
	out := tab.String()
	if strings.Contains(out, "3") || strings.Contains(out, "4") {
		t.Fatalf("extra cells leaked:\n%s", out)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := formatCell(3.0); got != "3" {
		t.Fatalf("whole float: %q", got)
	}
	if got := formatCell(float32(2.5)); got != "2.5" {
		t.Fatalf("float32: %q", got)
	}
	if got := formatCell(0.123456); got != "0.1235" {
		t.Fatalf("small float: %q", got)
	}
	if got := formatCell("s"); got != "s" {
		t.Fatalf("string: %q", got)
	}
}
