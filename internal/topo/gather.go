package topo

import "math/bits"

// Frozen-graph gather support: for graphs with out-degree ≤ 64, the
// whole out-neighbor row of an agent packs into one uint64 of opinion
// bits (bit j = opinion of row[j]). The plan below is the CSR form of
// that gather, precomputed over the opinion bitset's word layout at
// Build/Rebuild time so a round's observation sampling never walks the
// adjacency: it loads each touched bitset word once, masks it, and
// scatters the surviving bits into row positions. See DESIGN.md §7.

// maxGatherDegree bounds the packed-row representation: a gathered row
// is one uint64, so out-degrees beyond 64 keep the literal per-draw
// sampling path.
const maxGatherDegree = 64

// gatherSeg is one opinion-bitset word touched by an agent's row: the
// word index, the mask of neighbor bits within it, and the packed-row
// positions those neighbors occupy. Homogeneous words (all-zero or
// all-one under the mask) resolve in one masked load; posMask is what
// makes the all-one shortcut positionless.
type gatherSeg struct {
	word    int32
	mask    uint64
	posMask uint64
}

// gatherEnt maps one neighbor bit to its packed-row position for
// segments holding several neighbors: off is the bit offset within the
// segment's word, pos the neighbor's index in the adjacency row.
// Single-neighbor segments carry no entries — their off and pos are the
// sole set bits of mask and posMask.
type gatherEnt struct {
	off, pos uint8
}

// gatherPlan is a graph's frozen CSR gather plan: per agent, the
// segments (distinct bitset words) its row touches and the extraction
// entries of the multi-neighbor segments. segPtr and entPtr are the
// agent → range offsets of the two arrays.
type gatherPlan struct {
	segPtr []int32
	entPtr []int32
	segs   []gatherSeg
	ents   []gatherEnt
}

// refreshPlan (re)builds the graph's gather plan from its current
// adjacency, reusing the plan's backing arrays across Rebuilds. Graphs
// with out-degree beyond maxGatherDegree carry no plan.
func (g *Graph) refreshPlan() {
	if g.deg > maxGatherDegree || g.deg < 1 {
		g.plan = nil
		g.planLive = false
		return
	}
	p := g.plan
	if p == nil {
		p = &gatherPlan{}
		g.plan = p
	}
	if cap(p.segPtr) < g.n+1 {
		p.segPtr = make([]int32, g.n+1)
		p.entPtr = make([]int32, g.n+1)
	}
	p.segPtr = p.segPtr[:g.n+1]
	p.entPtr = p.entPtr[:g.n+1]
	p.segs = p.segs[:0]
	p.ents = p.ents[:0]

	// Per-agent scratch: distinct words in first-touch order. deg ≤ 64
	// bounds everything, so the grouping runs on the stack.
	var words [maxGatherDegree]int32
	var masks, posMasks [maxGatherDegree]uint64
	for a := 0; a < g.n; a++ {
		p.segPtr[a] = int32(len(p.segs))
		p.entPtr[a] = int32(len(p.ents))
		row := g.adj[a*g.deg : (a+1)*g.deg]
		nw := 0
	group:
		for j, v := range row {
			w := v >> 6
			off := uint(v) & 63
			for k := 0; k < nw; k++ {
				if words[k] == w {
					masks[k] |= 1 << off
					posMasks[k] |= 1 << uint(j)
					continue group
				}
			}
			words[nw] = w
			masks[nw] = 1 << off
			posMasks[nw] = 1 << uint(j)
			nw++
		}
		for k := 0; k < nw; k++ {
			p.segs = append(p.segs, gatherSeg{word: words[k], mask: masks[k], posMask: posMasks[k]})
			if bits.OnesCount64(masks[k]) == 1 {
				continue // the segment is its own entry
			}
			// Multi-neighbor word: emit one entry per row position, in
			// row order.
			for j, v := range row {
				if v>>6 == words[k] {
					p.ents = append(p.ents, gatherEnt{off: uint8(uint(v) & 63), pos: uint8(j)})
				}
			}
		}
	}
	p.segPtr[g.n] = int32(len(p.segs))
	p.entPtr[g.n] = int32(len(p.ents))
	// The plan only pays for itself when neighbor bits share bitset words
	// (ring, torus, small-world clusters): merged segments turn several
	// scattered reads into one masked load. Scattered graphs (random
	// k-out and its rewired variant) merge almost nothing — nearly every
	// segment is a singleton, and walking 24-byte segment records costs
	// more in instructions and cache traffic than gathering straight from
	// the 4-byte adjacency row — so the plan stays dormant unless merging
	// removed at least a quarter of the loads.
	g.planLive = 4*len(p.segs) <= 3*g.n*g.deg
}

// gather packs agent's out-row opinions into a uint64 (bit j = opinion
// of row[j]) from the population bitset words.
func (p *gatherPlan) gather(agent int, words []uint64) uint64 {
	var row uint64
	ei := int(p.entPtr[agent])
	for si, end := int(p.segPtr[agent]), int(p.segPtr[agent+1]); si < end; si++ {
		s := &p.segs[si]
		m := s.mask
		if m&(m-1) == 0 {
			// Singleton segment: a branch-free bit move. Scattered graphs
			// (random k-out) are almost all singletons, and the homogeneous
			// word tests below would mispredict half the time at mixed
			// occupancy — data-dependent branches cost more than the two
			// trailing-zero counts here.
			row |= (words[s.word] >> uint(bits.TrailingZeros64(m)) & 1) << uint(bits.TrailingZeros64(s.posMask))
			continue
		}
		w := words[s.word] & m
		cnt := bits.OnesCount64(m)
		switch w {
		case 0:
			// No neighbor in this word holds 1: contributes nothing.
		case m:
			row |= s.posMask
		default:
			for _, e := range p.ents[ei : ei+cnt] {
				row |= (w >> e.off & 1) << e.pos
			}
		}
		ei += cnt
	}
	return row
}

// CanGather reports whether the graph routes static rows through a live
// frozen gather plan (neighbors share bitset words; out-degree ≤ 64).
func (g *Graph) CanGather() bool { return g.planLive }

// PackedRows reports whether the graph's rows pack into single uint64s
// of opinion bits (out-degree in [1, 64]), i.e. whether View.RowBits
// succeeds — with or without a live frozen plan.
func (g *Graph) PackedRows() bool { return g.deg >= 1 && g.deg <= maxGatherDegree }

// RowBits packs the bound agent's current out-row opinions into a
// uint64 read from the population bitset words (bit j = opinion of
// row[j]). ok is false when the out-degree exceeds 64 — callers then
// keep the literal per-draw path. Static rows go through the frozen
// plan; dynamically resampled rows gather generically from the scratch
// row.
func (v *View) RowBits(words []uint64) (uint64, bool) {
	if v.g.deg > maxGatherDegree {
		return 0, false
	}
	if v.onBase && v.g.planLive {
		return v.g.plan.gather(v.agent, words), true
	}
	// Reverse sweep accumulates with a constant left shift (row<<1|b)
	// instead of a variable one, so each neighbor costs a single
	// CL-tied shift; bit j still holds neighbor j's opinion.
	var row uint64
	for j := len(v.row) - 1; j >= 0; j-- {
		a := v.row[j]
		row = row<<1 | (words[a>>6] >> (uint(a) & 63) & 1)
	}
	return row, true
}

// AnnealedDegree reports the uniform out-degree of topologies whose
// neighbor structure is faithfully summarized by degree-annealed
// resampling — each round every agent's k observation targets look like
// a fresh uniform draw from the population. That holds for the random
// k-out digraph (no geometry, in-degrees concentrate) and its
// dynamically rewired variant (which resamples rows literally); it
// fails for ring, torus and small-world graphs, whose fixed local
// structure the annealed occupancy update cannot model. The sparse
// aggregate engine accepts exactly the topologies reported here.
func AnnealedDegree(t Topology) (int, bool) {
	switch tt := t.(type) {
	case randomRegular:
		return tt.k, true
	case dynamicRewire:
		return tt.k, true
	}
	return 0, false
}
