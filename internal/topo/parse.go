package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse returns the topology named by a CLI-style spec. The grammar is
// name[:param[:param]] with strict validation (malformed specs error,
// never default silently):
//
//	complete
//	ring[:k]                 (default k = 2; out-degree 2k)
//	torus                    (perfect-square n, out-degree 4)
//	random-regular[:k]       (default k = 8; random k-out digraph)
//	small-world[:k[:beta]]   (defaults k = 4, beta = 0.1; Watts–Strogatz)
//	dynamic[:k[:p]]          (defaults k = 8, p = 0.1; per-round rewiring)
//
// Parse(t.Name()) reconstructs t, so topology names round-trip through
// sweep CSV/JSON artifacts.
func Parse(spec string) (Topology, error) {
	parts := strings.Split(strings.TrimSpace(spec), ":")
	name := parts[0]
	args := parts[1:]
	for _, a := range args {
		if strings.TrimSpace(a) == "" {
			return nil, fmt.Errorf("topo: empty parameter in %q", spec)
		}
	}
	argInt := func(idx, dflt int) (int, error) {
		if idx >= len(args) {
			return dflt, nil
		}
		v, err := strconv.Atoi(strings.TrimSpace(args[idx]))
		if err != nil {
			return 0, fmt.Errorf("topo: bad integer parameter %q in %q", args[idx], spec)
		}
		return v, nil
	}
	argFloat := func(idx int, dflt float64) (float64, error) {
		if idx >= len(args) {
			return dflt, nil
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(args[idx]), 64)
		if err != nil {
			return 0, fmt.Errorf("topo: bad float parameter %q in %q", args[idx], spec)
		}
		return v, nil
	}
	arity := func(max int) error {
		if len(args) > max {
			return fmt.Errorf("topo: %q takes at most %d parameter(s), got %d", name, max, len(args))
		}
		return nil
	}

	switch name {
	case "complete":
		if err := arity(0); err != nil {
			return nil, err
		}
		return Complete(), nil
	case "ring":
		if err := arity(1); err != nil {
			return nil, err
		}
		k, err := argInt(0, DefaultRingK)
		if err != nil {
			return nil, err
		}
		return checkParams(Ring(k))
	case "torus":
		if err := arity(0); err != nil {
			return nil, err
		}
		return Torus(), nil
	case "random-regular":
		if err := arity(1); err != nil {
			return nil, err
		}
		k, err := argInt(0, DefaultRegularK)
		if err != nil {
			return nil, err
		}
		return checkParams(RandomRegular(k))
	case "small-world":
		if err := arity(2); err != nil {
			return nil, err
		}
		k, err := argInt(0, DefaultSmallWorldK)
		if err != nil {
			return nil, err
		}
		beta, err := argFloat(1, DefaultBeta)
		if err != nil {
			return nil, err
		}
		return checkParams(SmallWorld(k, beta))
	case "dynamic":
		if err := arity(2); err != nil {
			return nil, err
		}
		k, err := argInt(0, DefaultRewireK)
		if err != nil {
			return nil, err
		}
		p, err := argFloat(1, DefaultRewireP)
		if err != nil {
			return nil, err
		}
		return checkParams(DynamicRewire(k, p))
	default:
		return nil, fmt.Errorf("topo: unknown topology %q (want complete, ring, torus, random-regular, small-world or dynamic)", name)
	}
}

// Spec describes one topology family for listings: the parseable spec
// grammar and a one-line summary. The single source of truth for CLI
// help (fetlab -topologies); defaults interpolate the Default*
// constants so the listing cannot drift from Parse.
type Spec struct {
	Spec        string
	Description string
}

// Specs returns the built-in topology families sorted by family name,
// so every user-facing listing (fetlab -topologies, fetserve's
// fet.scenarios.list, docs) renders identically and stays stable as
// families are added.
func Specs() []Spec {
	specs := []Spec{
		{"complete", "uniform mixing over the whole population (the paper's model; default)"},
		{"ring[:k]", fmt.Sprintf("cycle, k nearest neighbors per side (out-degree 2k; default k = %d)", DefaultRingK)},
		{"torus", "√n × √n wraparound grid, 4-neighbor observation (perfect-square n)"},
		{"random-regular[:k]", fmt.Sprintf("random k-out digraph: k fixed uniform targets per agent (default k = %d)", DefaultRegularK)},
		{"small-world[:k[:beta]]", fmt.Sprintf("Watts–Strogatz: ring:k base, out-edges rewired w.p. beta (defaults %d, %g)", DefaultSmallWorldK, DefaultBeta)},
		{"dynamic[:k[:p]]", fmt.Sprintf("random k-out, each agent's row resampled w.p. p per round (defaults %d, %g)", DefaultRewireK, DefaultRewireP)},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Spec < specs[j].Spec })
	return specs
}

// checkParams rejects parameters that no population size could accept
// (grid-independent validation; the n-dependent part runs at Build).
// Validating against the largest admissible graph population (a
// perfect square, so the torus also passes) isolates exactly the
// parameter-range checks.
func checkParams(t Topology) (Topology, error) {
	const hugeN = 1 << 30 // (2^15)^2, within MaxGraphN
	if err := t.Validate(hugeN); err != nil {
		return nil, err
	}
	return t, nil
}
