// Package topo is the observation-topology layer of the simulator: it
// decides *who* each agent can observe in a round, separately from *how*
// the engines execute rounds.
//
// The paper analyzes FET under uniform mixing — every agent's ℓ-sample
// observation is drawn uniformly from the whole population — and that
// assumption is the Complete topology, the default everywhere. The other
// topologies restrict each agent's observations to a fixed (or per-round
// rewired) out-neighbor set, turning "does FET's self-stabilizing
// trend-following survive structure?" into a runnable experiment: sparse
// random digraphs, rings, tori, Watts–Strogatz small worlds, and
// dynamically rewired graphs.
//
// # Determinism contract
//
// Everything derives from the repository's single SplitMix64 stream rule
// (internal/rng): agent i's out-neighbor row is built from stream
// StreamSeed(topoSeed, i), so graph construction can be sharded across
// any number of goroutines and still produce byte-identical adjacency.
// DynamicRewire's per-round resampling derives from
// (topoSeed, round, agent) alone — never from scheduling — which is what
// keeps the parallel engine bit-identical to the sequential one on every
// topology at every worker count.
//
// Observation direction follows the PULL model: an edge i→j means agent
// i may observe agent j's opinion. All graph topologies here are
// out-regular (every agent has exactly Degree() observable neighbors);
// in-degrees vary by construction. Sampling within a round is uniform
// with replacement over the bound agent's row, the sparse analogue of
// the paper's uniform mixing.
package topo

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"passivespread/internal/rng"
)

// Topology describes an observation structure over a population. A nil
// Topology everywhere means Complete (uniform mixing, the paper's model).
type Topology interface {
	// Name returns the canonical, parseable identity of the topology
	// (Parse(Name()) reconstructs it): "complete", "ring:2", "torus",
	// "random-regular:8", "small-world:4:0.1", "dynamic:8:0.1".
	Name() string
	// Complete reports uniform mixing. Engines keep their tabulated
	// binomial fast paths exactly when this is true.
	Complete() bool
	// Validate reports whether the topology can be built over n agents.
	Validate(n int) error
	// Build constructs the observation graph for n agents, deterministically
	// from seed, sharding row construction across up to workers goroutines
	// (0 = sequential). Complete topologies return (nil, nil): no graph.
	Build(n int, seed uint64, workers int) (*Graph, error)
}

// IsComplete reports whether t is uniform mixing (nil counts as Complete).
func IsComplete(t Topology) bool { return t == nil || t.Complete() }

// MaxGraphN is the largest population a graph topology accepts: the
// adjacency stores agent indices as int32, so larger populations must
// fail Validate instead of silently wrapping. (Complete has no graph
// and is unbounded; agent engines are memory-bound long before this.)
const MaxGraphN = math.MaxInt32

// checkGraphN bounds a graph topology's population against the int32
// adjacency representation.
func checkGraphN(n int) error {
	if n > MaxGraphN {
		return fmt.Errorf("topo: population %d exceeds the graph limit %d (int32 adjacency); use the complete topology", n, MaxGraphN)
	}
	return nil
}

// DisplayName returns t's canonical name, mapping nil to "complete".
func DisplayName(t Topology) string {
	if t == nil {
		return "complete"
	}
	return t.Name()
}

// Default degree/parameter values used by Parse when a parameter is
// omitted (e.g. "ring" ≡ "ring:2").
const (
	DefaultRingK       = 2
	DefaultRegularK    = 8
	DefaultSmallWorldK = 4
	DefaultBeta        = 0.1
	DefaultRewireK     = 8
	DefaultRewireP     = 0.1
)

// complete is the uniform-mixing topology.
type complete struct{}

// Complete returns the uniform-mixing topology: every agent observes the
// whole population, exactly the paper's model. It is the default.
func Complete() Topology { return complete{} }

func (complete) Name() string                           { return "complete" }
func (complete) Complete() bool                         { return true }
func (complete) Validate(int) error                     { return nil }
func (complete) Build(int, uint64, int) (*Graph, error) { return nil, nil }

// ring is the k-nearest-neighbor cycle.
type ring struct{ k int }

// Ring returns the cycle topology where agent i observes its k nearest
// neighbors on each side (out-degree 2k). Construction is deterministic
// and draws no randomness.
func Ring(k int) Topology { return ring{k: k} }

func (r ring) Name() string   { return fmt.Sprintf("ring:%d", r.k) }
func (r ring) Complete() bool { return false }

func (r ring) Validate(n int) error {
	if err := checkGraphN(n); err != nil {
		return err
	}
	if r.k < 1 {
		return fmt.Errorf("topo: ring k = %d, want ≥ 1", r.k)
	}
	// Division form: 2k overflows for adversarially huge k.
	if r.k > (n-1)/2 {
		return fmt.Errorf("topo: ring k = %d needs 2k ≤ n−1, got n = %d", r.k, n)
	}
	return nil
}

func (r ring) Build(n int, seed uint64, workers int) (*Graph, error) {
	return build(r, n, seed, workers)
}

func (r ring) rowSpec(n int) rowSpec {
	return rowSpec{deg: 2 * r.k, fill: func(i int, _ *rng.Batch, row []int32) {
		fillRingRow(i, n, r.k, row)
	}}
}

// fillRingRow writes agent i's ring neighbors: offsets ±1..±k.
func fillRingRow(i, n, k int, row []int32) {
	for d := 1; d <= k; d++ {
		row[2*(d-1)] = int32((i + d) % n)
		row[2*(d-1)+1] = int32((i - d + n) % n)
	}
}

// torus is the 2-D wraparound grid with the von Neumann neighborhood.
type torus struct{}

// Torus returns the √n × √n wraparound grid: agent i observes its four
// lattice neighbors (up, down, left, right). Requires n to be a perfect
// square with side ≥ 3. Construction draws no randomness.
func Torus() Topology { return torus{} }

func (torus) Name() string   { return "torus" }
func (torus) Complete() bool { return false }

func (torus) Validate(n int) error {
	if err := checkGraphN(n); err != nil {
		return err
	}
	s := isqrt(n)
	if s*s != n {
		return fmt.Errorf("topo: torus needs a perfect-square population, got n = %d", n)
	}
	if s < 3 {
		return fmt.Errorf("topo: torus side = %d, want ≥ 3 (distinct lattice neighbors)", s)
	}
	return nil
}

func (t torus) Build(n int, seed uint64, workers int) (*Graph, error) {
	return build(t, n, seed, workers)
}

func (t torus) rowSpec(n int) rowSpec {
	s := isqrt(n)
	return rowSpec{deg: 4, fill: func(i int, _ *rng.Batch, row []int32) {
		r, c := i/s, i%s
		row[0] = int32(((r+1)%s)*s + c)   // down
		row[1] = int32(((r-1+s)%s)*s + c) // up
		row[2] = int32(r*s + (c+1)%s)     // right
		row[3] = int32(r*s + (c-1+s)%s)   // left
	}}
}

func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	s := int(math.Sqrt(float64(n)))
	for s*s > n {
		s--
	}
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// randomRegular is the random k-out digraph.
type randomRegular struct{ k int }

// RandomRegular returns the random k-out observation digraph: every
// agent observes a fixed set of k distinct uniformly random other agents
// (out-degree exactly k; in-degrees are Binomial). Agent i's row derives
// from stream StreamSeed(seed, i) alone, so construction parallelizes
// deterministically.
func RandomRegular(k int) Topology { return randomRegular{k: k} }

func (r randomRegular) Name() string   { return fmt.Sprintf("random-regular:%d", r.k) }
func (r randomRegular) Complete() bool { return false }

func (r randomRegular) Validate(n int) error {
	if err := checkGraphN(n); err != nil {
		return err
	}
	if r.k < 1 {
		return fmt.Errorf("topo: random-regular k = %d, want ≥ 1", r.k)
	}
	if r.k > n-1 {
		return fmt.Errorf("topo: random-regular k = %d needs k ≤ n−1, got n = %d", r.k, n)
	}
	return nil
}

func (r randomRegular) Build(n int, seed uint64, workers int) (*Graph, error) {
	return build(r, n, seed, workers)
}

func (r randomRegular) rowSpec(n int) rowSpec {
	return rowSpec{deg: r.k, fill: func(i int, src *rng.Batch, row []int32) {
		fillKOutRowN(i, n, src, row)
	}}
}

// fillKOutRowN samples len(row) distinct non-self agent indices in [0, n)
// from src, by rejection of self and duplicates; rows are short
// (k = O(log n) in practice), so the duplicate scan is cheap. Draws come
// through a rng.Batch — one bulk Uint64 fill per chunk instead of a call
// per index — consuming exactly the values a per-draw loop would.
func fillKOutRowN(i, n int, src *rng.Batch, row []int32) {
	for j := range row {
	draw:
		for {
			v := int32(src.Intn(n))
			if int(v) == i {
				continue
			}
			for _, prev := range row[:j] {
				if prev == v {
					continue draw
				}
			}
			row[j] = v
			break
		}
	}
}

// fillKOutRowNSrc is fillKOutRowN drawing straight from a Source: the
// Batch consumes the identical value sequence (it is a prefetch of the
// same stream), so both produce the same row — the direct form serves
// hot per-bind resampling where a buffer round-trip costs more than it
// saves.
func fillKOutRowNSrc(i, n int, src *rng.Source, row []int32) {
	for j := range row {
	draw:
		for {
			v := int32(src.Intn(n))
			if int(v) == i {
				continue
			}
			for _, prev := range row[:j] {
				if prev == v {
					continue draw
				}
			}
			row[j] = v
			break
		}
	}
}

// smallWorld is the Watts–Strogatz construction.
type smallWorld struct {
	k    int
	beta float64
}

// SmallWorld returns the Watts–Strogatz small-world topology: the Ring(k)
// base (out-degree 2k), with every out-edge independently rewired to a
// uniformly random non-duplicate target with probability beta. beta = 0
// is exactly Ring(k); beta = 1 approaches a random 2k-out digraph. Agent
// i's row derives from stream StreamSeed(seed, i) alone.
func SmallWorld(k int, beta float64) Topology { return smallWorld{k: k, beta: beta} }

func (s smallWorld) Name() string {
	return fmt.Sprintf("small-world:%d:%s", s.k, strconv.FormatFloat(s.beta, 'g', -1, 64))
}
func (s smallWorld) Complete() bool { return false }

func (s smallWorld) Validate(n int) error {
	if err := checkGraphN(n); err != nil {
		return err
	}
	if s.k < 1 {
		return fmt.Errorf("topo: small-world k = %d, want ≥ 1", s.k)
	}
	// Division form: 2k overflows for adversarially huge k.
	if s.k > (n-1)/2 {
		return fmt.Errorf("topo: small-world k = %d needs 2k ≤ n−1, got n = %d", s.k, n)
	}
	if s.beta < 0 || s.beta > 1 || math.IsNaN(s.beta) {
		return fmt.Errorf("topo: small-world beta = %v, want in [0, 1]", s.beta)
	}
	return nil
}

func (s smallWorld) Build(n int, seed uint64, workers int) (*Graph, error) {
	return build(s, n, seed, workers)
}

func (s smallWorld) rowSpec(n int) rowSpec {
	return rowSpec{deg: 2 * s.k, fill: func(i int, src *rng.Batch, row []int32) {
		fillRingRow(i, n, s.k, row)
		for j := range row {
			if !src.Bernoulli(s.beta) {
				continue
			}
		rewire:
			for {
				v := int32(src.Intn(n))
				if int(v) == i {
					continue
				}
				for jj, prev := range row {
					if jj != j && prev == v {
						continue rewire
					}
				}
				row[j] = v
				break
			}
		}
	}}
}

// dynamicRewire is the per-round resampled k-out digraph.
type dynamicRewire struct {
	k int
	p float64
}

// DynamicRewire returns the dynamic topology: a random k-out base graph
// (as RandomRegular(k)) where, independently every round, each agent's
// out-neighbor row is resampled with probability p. p = 1 redraws the
// whole graph every round. The round-t row of agent i derives from
// (seed, t, i) alone, so results stay bit-identical at any parallelism.
func DynamicRewire(k int, p float64) Topology { return dynamicRewire{k: k, p: p} }

func (d dynamicRewire) Name() string {
	return fmt.Sprintf("dynamic:%d:%s", d.k, strconv.FormatFloat(d.p, 'g', -1, 64))
}
func (d dynamicRewire) Complete() bool { return false }

func (d dynamicRewire) Validate(n int) error {
	if err := checkGraphN(n); err != nil {
		return err
	}
	if d.k < 1 {
		return fmt.Errorf("topo: dynamic k = %d, want ≥ 1", d.k)
	}
	if d.k > n-1 {
		return fmt.Errorf("topo: dynamic k = %d needs k ≤ n−1, got n = %d", d.k, n)
	}
	if d.p < 0 || d.p > 1 || math.IsNaN(d.p) {
		return fmt.Errorf("topo: dynamic p = %v, want in [0, 1]", d.p)
	}
	return nil
}

func (d dynamicRewire) Build(n int, seed uint64, workers int) (*Graph, error) {
	return build(d, n, seed, workers)
}

func (d dynamicRewire) rowSpec(n int) rowSpec {
	dd := d
	return rowSpec{deg: d.k, fill: func(i int, src *rng.Batch, row []int32) {
		fillKOutRowN(i, n, src, row)
	}, dyn: &dd}
}

// Graph is a built observation graph: a flat out-adjacency array with
// uniform out-degree, plus the dynamic-rewire rule when the topology
// resamples rows per round. Graphs are immutable after Build; concurrent
// readers go through per-worker Views.
type Graph struct {
	n, deg int
	adj    []int32
	seed   uint64
	dyn    *dynamicRewire // nil for static topologies
	// plan is the frozen CSR gather plan over the opinion-bitset word
	// layout (see gather.go), rebuilt alongside adj; nil when the
	// out-degree exceeds maxGatherDegree. planLive reports whether the
	// plan actually beats a direct row gather (neighbors share words) —
	// scattered graphs keep the plan's arrays for Rebuild reuse but leave
	// it dormant.
	plan     *gatherPlan
	planLive bool
}

// N returns the population size the graph was built for.
func (g *Graph) N() int { return g.n }

// Degree returns the uniform out-degree.
func (g *Graph) Degree() int { return g.deg }

// Base returns agent i's static (round-0 base) out-neighbor row. The
// returned slice aliases the graph; callers must not modify it.
func (g *Graph) Base(i int) []int32 { return g.adj[i*g.deg : (i+1)*g.deg] }

// Dynamic reports whether rows are resampled per round.
func (g *Graph) Dynamic() bool { return g.dyn != nil }

// Seed returns the seed the current rows were built from (updated by
// Rebuild).
func (g *Graph) Seed() uint64 { return g.seed }

// rowSpec is a graph topology's row construction recipe: the uniform
// out-degree, the per-row fill function, and the dynamic-rewire rule
// when rows are resampled per round. Every built-in graph topology
// exposes one through the rowTopology interface, which is what lets
// graphs be rebuilt in place for a new seed (Rebuild) instead of
// reallocated per replicate.
type rowSpec struct {
	deg  int
	fill func(i int, src *rng.Batch, row []int32)
	dyn  *dynamicRewire
}

// rowTopology is implemented by graph topologies built from per-row
// streams via the shared fillRows path.
type rowTopology interface {
	Topology
	rowSpec(n int) rowSpec
}

// build validates and constructs a fresh graph from t's row spec.
func build(t rowTopology, n int, seed uint64, workers int) (*Graph, error) {
	if err := t.Validate(n); err != nil {
		return nil, err
	}
	spec := t.rowSpec(n)
	g := &Graph{n: n, deg: spec.deg, adj: make([]int32, n*spec.deg), seed: seed, dyn: spec.dyn}
	g.fillRows(spec.fill, workers)
	g.refreshPlan()
	return g, nil
}

// Rebuild refills an existing graph's adjacency in place for a new seed,
// reusing the O(n·deg) backing array. t must be the topology g was built
// from (same shape: population, degree, rewire rule); Views over g stay
// valid and observe the new rows. This is the executor-pooling fast
// path: per replicate the topology seed changes but the shape never
// does.
func Rebuild(g *Graph, t Topology, n int, seed uint64, workers int) error {
	rt, ok := t.(rowTopology)
	if !ok {
		return fmt.Errorf("topo: topology %q cannot be rebuilt in place", DisplayName(t))
	}
	if err := t.Validate(n); err != nil {
		return err
	}
	spec := rt.rowSpec(n)
	if g.n != n || g.deg != spec.deg {
		return fmt.Errorf("topo: Rebuild shape mismatch: graph is %d×%d, topology %q wants %d×%d",
			g.n, g.deg, t.Name(), n, spec.deg)
	}
	if (g.dyn == nil) != (spec.dyn == nil) || (g.dyn != nil && *g.dyn != *spec.dyn) {
		return fmt.Errorf("topo: Rebuild rewire-rule mismatch for topology %q", t.Name())
	}
	g.seed = seed
	g.fillRows(spec.fill, workers)
	// The gather plan indexes the rows just refilled; refresh it in the
	// same pass so Views (which read the plan through the graph pointer)
	// observe a consistent adjacency/plan pair.
	g.refreshPlan()
	return nil
}

// fillRows writes every row of the flat adjacency, sharding rows across
// up to workers goroutines. Agent i's row derives from a Source seeded
// with StreamSeed(g.seed, i) — per-row streams are what make the sharded
// construction byte-identical to the sequential one — and each worker
// consumes its streams through a rng.Batch, generating outputs in bulk
// chunks instead of one call per draw. Leftover pre-generated values are
// discarded at the next row's reseed, which is unobservable: each row's
// stream is never read again.
func (g *Graph) fillRows(fill func(i int, src *rng.Batch, row []int32), workers int) {
	n, deg, seed := g.n, g.deg, g.seed
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	chunk := deg + 1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var src rng.Source
			var batch rng.Batch
			batch.Init(&src, chunk)
			for i := lo; i < hi; i++ {
				src.Reseed(rng.StreamSeed(seed, uint64(i)))
				batch.Reset()
				fill(i, &batch, g.adj[i*deg:(i+1)*deg])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// View is a per-worker read handle over a Graph: it owns the scratch row
// and scratch RNG that dynamic rewiring needs, so any number of Views
// can walk the same graph concurrently without shared mutable state.
type View struct {
	g       *Graph
	row     []int32
	scratch []int32
	src     rng.Source // rewire-decision stream, reseeded per (round, agent)
	round   int
	// roundSeed caches StreamSeed(g.seed, round+1) — the per-round root
	// all agents' rewire streams derive from — keyed by the (round, seed)
	// pair it was computed for, so Bind pays one derivation per agent
	// instead of two.
	roundSeed uint64
	rsRound   int
	rsSeed    uint64
	rsValid   bool
	// rewireThresh is rng.UnitThreshold(p) for the dynamic rewire
	// probability: the coin compares the raw first output in integers.
	rewireThresh uint64
	// agent is the bound agent and onBase whether its current row is the
	// built (static) one — the pair RowBits needs to route a gather
	// through the frozen plan.
	agent  int
	onBase bool
}

// NewView returns a fresh read handle over the graph.
func (g *Graph) NewView() *View {
	v := &View{g: g, scratch: make([]int32, g.deg)}
	if g.dyn != nil {
		v.rewireThresh = rng.UnitThreshold(g.dyn.p)
	}
	return v
}

// NewRound installs the round number; dynamic topologies derive their
// per-agent rewire streams from it.
func (v *View) NewRound(round int) { v.round = round }

// Bind aims the view at one agent's current-round out-neighbor row. For
// static topologies this is the built row; for DynamicRewire the row is
// resampled into the view's scratch with probability p, from a stream
// derived from (graph seed, round, agent) alone.
func (v *View) Bind(agent int) {
	base := v.g.Base(agent)
	v.agent = agent
	v.onBase = true
	d := v.g.dyn
	if d == nil {
		v.row = base
		return
	}
	if !v.rsValid || v.rsRound != v.round || v.rsSeed != v.g.seed {
		v.rsRound, v.rsSeed, v.rsValid = v.round, v.g.seed, true
		v.roundSeed = rng.StreamSeed(v.g.seed, uint64(v.round)+1)
	}
	seed := rng.StreamSeed(v.roundSeed, uint64(agent))
	// The rewire coin is the first Float64 of the (round, agent) stream;
	// FirstRaw reads it without a full reseed and UnitThreshold turns the
	// float comparison into an integer one, so the common keep-the-row
	// outcome costs three SplitMix64 steps and a compare. (p outside
	// (0, 1) short-circuits exactly like Source.Bernoulli: p ≤ 0 keeps the
	// row for every coin, p ≥ 1 rewires for every coin.)
	if d.p < 1 && !(d.p > 0 && rng.FirstRaw(seed)>>11 < v.rewireThresh) {
		v.row = base
		return
	}
	v.onBase = false
	// Rewired: construct the stream for real and replay the coin draw, so
	// the resampling below consumes exactly the values the single-stream
	// per-draw path would. The row draws come straight off the source —
	// Batch.Intn replays Source.Intn value-for-value, so for the handful
	// of draws a row needs, direct sampling yields the identical row
	// without the buffer round-trip.
	v.src.Reseed(seed)
	v.src.Bernoulli(d.p)
	fillKOutRowNSrc(agent, v.g.n, &v.src, v.scratch)
	v.row = v.scratch
}

// Next draws one uniform observation target from the bound agent's row,
// using the caller's RNG stream (the observing agent's own stream, which
// is what keeps sharded sweeps deterministic).
func (v *View) Next(src *rng.Source) int {
	return int(v.row[src.Intn(len(v.row))])
}

// Degree returns the out-degree of the bound row.
func (v *View) Degree() int { return v.g.deg }
