package topo

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"passivespread/internal/rng"
)

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"complete", "ring:2", "ring:5", "torus", "random-regular:8",
		"random-regular:3", "small-world:4:0.1", "small-world:2:0.75",
		"dynamic:8:0.1", "dynamic:4:1",
	}
	for _, spec := range specs {
		tp, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if tp.Name() != spec {
			t.Errorf("Parse(%q).Name() = %q, want round-trip", spec, tp.Name())
		}
		again, err := Parse(tp.Name())
		if err != nil {
			t.Fatalf("Parse(Name()) of %q: %v", spec, err)
		}
		if !reflect.DeepEqual(tp, again) {
			t.Errorf("Parse(Name()) of %q differs: %#v vs %#v", spec, tp, again)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	cases := map[string]string{
		"ring":           "ring:2",
		"random-regular": "random-regular:8",
		"small-world":    "small-world:4:0.1",
		"small-world:6":  "small-world:6:0.1",
		"dynamic":        "dynamic:8:0.1",
		"dynamic:16":     "dynamic:16:0.1",
		" complete ":     "complete",
	}
	for spec, want := range cases {
		tp, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if tp.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", spec, tp.Name(), want)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"", "nope", "ring:", "ring:x", "ring:0", "ring:1:2", "torus:3",
		"complete:1", "random-regular:0", "random-regular:1.5",
		"small-world:4:2", "small-world:0:0.1", "small-world:4:0.1:9",
		"dynamic:8:-0.1", "dynamic:0", "dynamic:8:nan",
	}
	for _, spec := range bad {
		if tp, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted as %q, want error", spec, tp.Name())
		}
	}
}

func TestValidateAgainstPopulation(t *testing.T) {
	cases := []struct {
		tp Topology
		n  int
		ok bool
	}{
		{Complete(), 2, true},
		{Ring(2), 5, true},
		{Ring(2), 4, false}, // 2k > n−1
		{Torus(), 9, true},
		{Torus(), 10, false}, // not a square
		{Torus(), 4, false},  // side < 3
		{RandomRegular(8), 9, true},
		{RandomRegular(8), 8, false}, // k > n−1
		{SmallWorld(4, 0.1), 16, true},
		{SmallWorld(4, 0.1), 8, false},
		{DynamicRewire(8, 0.5), 64, true},
		{DynamicRewire(63, 0.5), 64, true},
		{DynamicRewire(64, 0.5), 64, false},
	}
	for _, c := range cases {
		err := c.tp.Validate(c.n)
		if c.ok && err != nil {
			t.Errorf("%s.Validate(%d): unexpected error %v", c.tp.Name(), c.n, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s.Validate(%d): want error", c.tp.Name(), c.n)
		}
	}
}

func TestRingAndTorusShapes(t *testing.T) {
	g, err := Ring(2).Build(7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 6, 2, 5}
	if got := g.Base(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("ring row 0 = %v, want %v", got, want)
	}

	g, err = Torus().Build(9, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Agent 4 is the center of the 3×3 grid.
	want = []int32{7, 1, 5, 3}
	if got := g.Base(4); !reflect.DeepEqual(got, want) {
		t.Fatalf("torus row 4 = %v, want %v", got, want)
	}
}

// TestBuildDeterministicAcrossWorkers: the concurrent row construction
// must be byte-identical to the sequential one — per-row SplitMix64
// streams make sharding invisible. This test also puts the concurrent
// construction under the race detector.
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	tops := []Topology{
		RandomRegular(8), SmallWorld(4, 0.3), Ring(3), DynamicRewire(6, 0.4),
	}
	const n = 1 << 10
	for _, tp := range tops {
		ref, err := tp.Build(n, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7, 32} {
			g, err := tp.Build(n, 42, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref.adj, g.adj) {
				t.Fatalf("%s: adjacency differs between 1 and %d build workers", tp.Name(), workers)
			}
		}
	}
}

func TestRowsAreDistinctNonSelf(t *testing.T) {
	tops := []Topology{
		Ring(2), Torus(), RandomRegular(8), SmallWorld(4, 0.5),
	}
	const n = 25 // perfect square for the torus
	for _, tp := range tops {
		g, err := tp.Build(n, 7, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			row := g.Base(i)
			seen := map[int32]bool{}
			for _, v := range row {
				if int(v) == i {
					t.Fatalf("%s: agent %d observes itself", tp.Name(), i)
				}
				if v < 0 || int(v) >= n {
					t.Fatalf("%s: agent %d row holds out-of-range %d", tp.Name(), i, v)
				}
				if seen[v] {
					t.Fatalf("%s: agent %d row holds duplicate %d", tp.Name(), i, v)
				}
				seen[v] = true
			}
		}
	}
}

// TestDynamicRewireDeterministicPerRound: a rewired row depends only on
// (seed, round, agent) — two independent views agree round by round, and
// re-binding reproduces the same row.
func TestDynamicRewireDeterministicPerRound(t *testing.T) {
	g, err := DynamicRewire(6, 0.8).Build(256, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := g.NewView(), g.NewView()
	changed := 0
	for round := 0; round < 20; round++ {
		v1.NewRound(round)
		v2.NewRound(round)
		for i := 0; i < 256; i += 17 {
			v1.Bind(i)
			row1 := append([]int32(nil), v1.row...)
			v2.Bind(i)
			if !reflect.DeepEqual(row1, v2.row) {
				t.Fatalf("round %d agent %d: views disagree: %v vs %v", round, i, row1, v2.row)
			}
			if !reflect.DeepEqual(row1, g.Base(i)) {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("p = 0.8 dynamic rewiring never changed a row in 20 rounds")
	}
}

// TestViewNextUniformOverRow: Next must only return members of the
// bound row.
func TestViewNextUniformOverRow(t *testing.T) {
	g, err := RandomRegular(5).Build(64, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := g.NewView()
	v.NewRound(0)
	v.Bind(10)
	members := map[int]bool{}
	for _, idx := range g.Base(10) {
		members[int(idx)] = true
	}
	src := rng.New(99)
	hit := map[int]bool{}
	for i := 0; i < 500; i++ {
		nb := v.Next(src)
		if !members[nb] {
			t.Fatalf("Next returned %d, not a neighbor of agent 10 (%v)", nb, g.Base(10))
		}
		hit[nb] = true
	}
	if len(hit) != 5 {
		t.Fatalf("500 draws over a degree-5 row touched %d distinct neighbors", len(hit))
	}
}

func TestIsCompleteAndDisplayName(t *testing.T) {
	if !IsComplete(nil) || !IsComplete(Complete()) {
		t.Fatal("nil and Complete() must both report complete")
	}
	if IsComplete(Ring(2)) {
		t.Fatal("ring reported complete")
	}
	if DisplayName(nil) != "complete" {
		t.Fatalf("DisplayName(nil) = %q", DisplayName(nil))
	}
	if g, err := Complete().Build(100, 1, 4); err != nil || g != nil {
		t.Fatalf("Complete().Build = (%v, %v), want (nil, nil)", g, err)
	}
}

// TestValidateRejectsOverflowDegrees: adversarially huge k must error,
// never overflow into a Build-time panic (malformed CLI specs crash
// nothing).
func TestValidateRejectsOverflowDegrees(t *testing.T) {
	huge := int(^uint(0)>>1)/2 + 1 // > MaxInt/2: 2k wraps negative
	for _, tp := range []Topology{Ring(huge), SmallWorld(huge, 0.1)} {
		if err := tp.Validate(1 << 20); err == nil {
			t.Errorf("%T accepted k = %d", tp, huge)
		}
		if _, err := tp.Build(1<<10, 1, 1); err == nil {
			t.Errorf("%T built with k = %d", tp, huge)
		}
	}
	if _, err := Parse(fmt.Sprintf("ring:%d", huge)); err == nil {
		t.Error("Parse accepted an overflowing ring degree")
	}
	if _, err := Parse(fmt.Sprintf("small-world:%d:0.1", huge)); err == nil {
		t.Error("Parse accepted an overflowing small-world degree")
	}
}

// TestValidateRejectsOverInt32Populations: the adjacency stores int32
// indices, so a graph topology over a larger population must fail
// Validate instead of wrapping inside Build.
func TestValidateRejectsOverInt32Populations(t *testing.T) {
	huge := MaxGraphN + 1
	for _, tp := range []Topology{Ring(2), Torus(), RandomRegular(8), SmallWorld(4, 0.1), DynamicRewire(8, 0.1)} {
		if err := tp.Validate(huge); err == nil {
			t.Errorf("%s accepted n = %d", tp.Name(), huge)
		}
	}
	if err := Complete().Validate(huge); err != nil {
		t.Errorf("Complete rejected n = %d: %v (no graph, no bound)", huge, err)
	}
}

// TestRebuildShapeMismatch: Rebuild refills in place and must refuse
// any shape change — population, out-degree, or rewire rule — and any
// topology that has no row representation at all.
func TestRebuildShapeMismatch(t *testing.T) {
	g, err := RandomRegular(8).Build(128, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		tp   Topology
		n    int
	}{
		{"population mismatch", RandomRegular(8), 256},
		{"degree mismatch", RandomRegular(6), 128},
		{"rewire-rule mismatch", DynamicRewire(8, 0.2), 128},
		{"complete cannot rebuild", Complete(), 128},
	} {
		if err := Rebuild(g, tc.tp, tc.n, 2, 2); err == nil {
			t.Errorf("%s: Rebuild accepted", tc.name)
		}
	}
	// A dynamic graph must also refuse a different rewire probability.
	dg, err := DynamicRewire(8, 0.2).Build(128, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Rebuild(dg, DynamicRewire(8, 0.7), 128, 2, 2); err == nil {
		t.Error("rewire-probability mismatch: Rebuild accepted")
	}
	if err := Rebuild(dg, DynamicRewire(8, 0.2), 128, 2, 2); err != nil {
		t.Errorf("same-shape dynamic Rebuild rejected: %v", err)
	}
}

// TestRebuildMatchesFreshBuild: after a reseed, both the adjacency and
// the frozen gather plan (exercised through View.RowBits) must be
// indistinguishable from a graph freshly built at the new seed — a stale
// plan would silently gather the previous replicate's neighbors.
func TestRebuildMatchesFreshBuild(t *testing.T) {
	const n = 512
	words := make([]uint64, (n+63)/64)
	wsrc := rng.NewFrom(99, 0)
	for i := range words {
		words[i] = wsrc.Uint64()
	}
	for _, tp := range []Topology{RandomRegular(8), SmallWorld(4, 0.3), DynamicRewire(6, 0.4)} {
		g, err := tp.Build(n, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := Rebuild(g, tp, n, 2, 4); err != nil {
			t.Fatalf("%s: Rebuild: %v", tp.Name(), err)
		}
		fresh, err := tp.Build(n, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g.adj, fresh.adj) {
			t.Fatalf("%s: rebuilt adjacency differs from a fresh build at the same seed", tp.Name())
		}
		if g.planLive != fresh.planLive {
			t.Fatalf("%s: rebuilt planLive = %v, fresh = %v", tp.Name(), g.planLive, fresh.planLive)
		}
		vg, vf := g.NewView(), fresh.NewView()
		for a := 0; a < n; a++ {
			vg.Bind(a)
			vf.Bind(a)
			rg, okg := vg.RowBits(words)
			rf, okf := vf.RowBits(words)
			if okg != okf || rg != rf {
				t.Fatalf("%s: agent %d RowBits (%x, %v) after Rebuild, fresh build gives (%x, %v)",
					tp.Name(), a, rg, okg, rf, okf)
			}
		}
	}
}

// TestViewValidAcrossRebuild: Views created before a Rebuild stay valid,
// observe the new rows, and support concurrent per-worker reads of the
// refreshed plan (run under -race in CI).
func TestViewValidAcrossRebuild(t *testing.T) {
	const n = 256
	tp := SmallWorld(4, 0.3)
	g, err := tp.Build(n, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	views := make([]*View, 8)
	for i := range views {
		views[i] = g.NewView() // created against the pre-Rebuild rows
	}
	if err := Rebuild(g, tp, n, 6, 4); err != nil {
		t.Fatal(err)
	}
	fresh, err := tp.Build(n, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	words := make([]uint64, (n+63)/64)
	wsrc := rng.NewFrom(123, 0)
	for i := range words {
		words[i] = wsrc.Uint64()
	}
	want := make([]uint64, n)
	vf := fresh.NewView()
	for a := 0; a < n; a++ {
		vf.Bind(a)
		want[a], _ = vf.RowBits(words)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(views))
	for w, v := range views {
		wg.Add(1)
		go func(w int, v *View) {
			defer wg.Done()
			for a := 0; a < n; a++ {
				v.Bind(a)
				got, ok := v.RowBits(words)
				if !ok || got != want[a] {
					errs <- fmt.Errorf("worker %d agent %d: RowBits %x (ok=%v), want %x", w, a, got, ok, want[a])
					return
				}
			}
		}(w, v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
