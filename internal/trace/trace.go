// Package trace records domain-annotated trajectories of the FET
// dynamics: for every round it captures the state (x_t, x_{t+1}), its
// Figure 1a domain, its speed, and — inside the Yellow′ box — its
// Figure 2 area. A trace is the observable counterpart of the proof's
// path through the state space (Figure 1b), and powers both the fettrace
// CLI and path-level integration tests.
package trace

import (
	"fmt"
	"strings"

	"passivespread/internal/domain"
)

// Point is one annotated round of a trajectory.
type Point struct {
	// Round is the round index (0 = initial configuration).
	Round int
	// X0, X1 are the state coordinates (x_t, x_{t+1}).
	X0, X1 float64
	// Kind is the Figure 1a domain of the state.
	Kind domain.Kind
	// Area is the Figure 2 sub-area (AreaOutside when not in Yellow′).
	Area domain.Area
	// Speed is |x_{t+1} − x_t|.
	Speed float64
}

// Trace is a recorded, annotated trajectory.
type Trace struct {
	// Params is the domain geometry used for annotation.
	Params domain.Params
	// Points holds the annotated rounds in order.
	Points []Point
}

// FromTrajectory annotates a raw x_t series (as produced by the
// simulation engines) given the emulated pre-round fraction x0 (use the
// first trajectory value for a plain run, or the seeded grid coordinate
// for GridStart runs).
func FromTrajectory(p domain.Params, x0 float64, xs []float64) *Trace {
	tr := &Trace{Params: p, Points: make([]Point, 0, len(xs))}
	prev := x0
	for i, x := range xs {
		tr.Points = append(tr.Points, Point{
			Round: i,
			X0:    prev,
			X1:    x,
			Kind:  p.Classify(prev, x),
			Area:  p.ClassifyYellow(prev, x),
			Speed: domain.Speed(prev, x),
		})
		prev = x
	}
	return tr
}

// Len returns the number of annotated rounds.
func (t *Trace) Len() int { return len(t.Points) }

// KindSequence returns the run-length-compressed sequence of domains
// visited, e.g. [Cyan1 Green1 Cyan0] for the canonical all-wrong bounce.
func (t *Trace) KindSequence() []domain.Kind {
	var seq []domain.Kind
	for _, pt := range t.Points {
		if len(seq) == 0 || seq[len(seq)-1] != pt.Kind {
			seq = append(seq, pt.Kind)
		}
	}
	return seq
}

// Visits returns the number of rounds spent in each domain.
func (t *Trace) Visits() map[domain.Kind]int {
	visits := make(map[domain.Kind]int)
	for _, pt := range t.Points {
		visits[pt.Kind]++
	}
	return visits
}

// MaxSpeed returns the largest observed speed.
func (t *Trace) MaxSpeed() float64 {
	max := 0.0
	for _, pt := range t.Points {
		if pt.Speed > max {
			max = pt.Speed
		}
	}
	return max
}

// Contains reports whether the trace ever visits the given domain.
func (t *Trace) Contains(k domain.Kind) bool {
	for _, pt := range t.Points {
		if pt.Kind == k {
			return true
		}
	}
	return false
}

// CSV renders the trace as CSV with a header row.
func (t *Trace) CSV() string {
	var b strings.Builder
	b.WriteString("round,x_t,x_t1,domain,area,speed\n")
	for _, pt := range t.Points {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%s,%s,%.6f\n",
			pt.Round, pt.X0, pt.X1, pt.Kind, pt.Area, pt.Speed)
	}
	return b.String()
}

// String renders a human-readable table of the trace.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %8s  %8s  %-8s  %-7s  %7s\n",
		"round", "x_t", "x_{t+1}", "domain", "area", "speed")
	for _, pt := range t.Points {
		area := ""
		if pt.Area != domain.AreaOutside {
			area = pt.Area.String()
		}
		fmt.Fprintf(&b, "%5d  %8.4f  %8.4f  %-8s  %-7s  %7.4f\n",
			pt.Round, pt.X0, pt.X1, pt.Kind, area, pt.Speed)
	}
	return b.String()
}
