package trace

import (
	"strings"
	"testing"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/domain"
	"passivespread/internal/sim"
)

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	n := 4096
	ell := core.SampleSize(n, core.DefaultC)
	res, err := sim.Run(sim.Config{
		N:                n,
		Protocol:         core.NewFET(ell),
		Init:             adversary.AllWrong{Correct: sim.OpinionOne},
		Correct:          sim.OpinionOne,
		Seed:             3,
		MaxRounds:        2000,
		CorruptStates:    true,
		RecordTrajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("fixture run did not converge")
	}
	return FromTrajectory(domain.NewParams(n), res.Trajectory[0], res.Trajectory)
}

func TestFromTrajectoryAnnotation(t *testing.T) {
	p := domain.NewParams(1 << 16)
	tr := FromTrajectory(p, 0.5, []float64{0.5, 0.6, 0.9})
	if tr.Len() != 3 {
		t.Fatalf("len %d", tr.Len())
	}
	if tr.Points[0].Kind != domain.KindYellow {
		t.Fatalf("point 0 kind %v", tr.Points[0].Kind)
	}
	if tr.Points[1].Kind != domain.KindGreen1 { // (0.5, 0.6): speed 0.1 up
		t.Fatalf("point 1 kind %v", tr.Points[1].Kind)
	}
	if tr.Points[1].X0 != 0.5 || tr.Points[1].X1 != 0.6 {
		t.Fatalf("point 1 coords %v %v", tr.Points[1].X0, tr.Points[1].X1)
	}
	if tr.Points[2].Speed != 0.30000000000000004 && tr.Points[2].Speed != 0.3 {
		t.Fatalf("point 2 speed %v", tr.Points[2].Speed)
	}
	if tr.Points[0].Area != domain.AreaA1 && tr.Points[0].Area != domain.AreaC1 {
		// (0.5, 0.5) is on the A1 boundary; priority gives A1.
		t.Fatalf("point 0 area %v", tr.Points[0].Area)
	}
}

func TestCanonicalBouncePath(t *testing.T) {
	// The Figure 1b narrative for an all-wrong start with source 1:
	// the trace must visit Cyan1 (wrong near-consensus) and then Green1
	// (the launched trend), ending absorbed at (1,1) ∈ Cyan0.
	tr := sampleTrace(t)
	if !tr.Contains(domain.KindCyan1) {
		t.Fatalf("bounce path missing Cyan1: %v", tr.KindSequence())
	}
	if !tr.Contains(domain.KindGreen1) {
		t.Fatalf("bounce path missing Green1: %v", tr.KindSequence())
	}
	seq := tr.KindSequence()
	last := seq[len(seq)-1]
	if last != domain.KindCyan0 {
		t.Fatalf("path must end in the absorbing corner region Cyan0, got %v", seq)
	}
	// Green1 must come after Cyan1 in the sequence.
	cyanIdx, greenIdx := -1, -1
	for i, k := range seq {
		if k == domain.KindCyan1 && cyanIdx == -1 {
			cyanIdx = i
		}
		if k == domain.KindGreen1 && greenIdx == -1 {
			greenIdx = i
		}
	}
	if cyanIdx == -1 || greenIdx == -1 || greenIdx < cyanIdx {
		t.Fatalf("expected Cyan1 before Green1: %v", seq)
	}
}

func TestVisitsSumToLength(t *testing.T) {
	tr := sampleTrace(t)
	total := 0
	for _, c := range tr.Visits() {
		total += c
	}
	if total != tr.Len() {
		t.Fatalf("visits sum %d, len %d", total, tr.Len())
	}
}

func TestMaxSpeed(t *testing.T) {
	tr := sampleTrace(t)
	if tr.MaxSpeed() <= 0.1 {
		t.Fatalf("bounce must reach high speed, got %v", tr.MaxSpeed())
	}
	if tr.MaxSpeed() > 1 {
		t.Fatalf("speed above 1: %v", tr.MaxSpeed())
	}
}

func TestCSVFormat(t *testing.T) {
	p := domain.NewParams(1024)
	tr := FromTrajectory(p, 0, []float64{0.001, 0.5})
	out := tr.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "round,x_t,x_t1,domain,area,speed" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0.000000,0.001000,Cyan1,") {
		t.Fatalf("row 1: %q", lines[1])
	}
}

func TestStringFormat(t *testing.T) {
	p := domain.NewParams(1024)
	tr := FromTrajectory(p, 0.5, []float64{0.5})
	out := tr.String()
	if !strings.Contains(out, "Yellow") {
		t.Fatalf("missing domain column:\n%s", out)
	}
	if !strings.Contains(out, "round") {
		t.Fatalf("missing header:\n%s", out)
	}
}

func TestEmptyTrace(t *testing.T) {
	p := domain.NewParams(1024)
	tr := FromTrajectory(p, 0, nil)
	if tr.Len() != 0 || tr.MaxSpeed() != 0 || len(tr.KindSequence()) != 0 {
		t.Fatal("empty trace invariants")
	}
}
