// Package passivespread is a reproduction of "Early Adapting to Trends:
// Self-Stabilizing Information Spread using Passive Communication"
// (Korman and Vacus, PODC 2022, arXiv:2203.11522).
//
// It provides the Follow the Emerging Trend (FET) protocol for the
// self-stabilizing bit-dissemination problem in the PULL model with
// passive communication, a layered family of simulation engines — agent
// level (sequential and sharded-parallel), aggregate occupancy level,
// and the induced Markov chain — the paper's baselines, the state-space
// geometry of its analysis, and a harness that reproduces every figure
// and lemma-level claim (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
//	res, err := passivespread.Disseminate(passivespread.Options{
//		N:    1024,
//		Seed: 1,
//	})
//	// res.Round is the paper's t_con: the first round of the final
//	// all-correct run.
//
// For full control use Run with a sim.Config-compatible Config, compose
// protocols and initializers directly, or drive the Markov chain with
// NewChain for populations far beyond agent-level reach.
package passivespread

import (
	"math"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/experiment"
	"passivespread/internal/markov"
	"passivespread/internal/sim"
)

// Re-exported simulation types. The aliases expose the full engine API at
// the module root so downstream users never import internal packages.
type (
	// Config describes one agent-level simulation run; see the field docs
	// on the underlying type.
	Config = sim.Config
	// Result reports a simulation outcome; Result.Round is t_con.
	Result = sim.Result
	// Protocol is a per-agent update rule factory.
	Protocol = sim.Protocol
	// Agent is a per-agent update rule.
	Agent = sim.Agent
	// Observation is an agent's random-sampling access within a round.
	Observation = sim.Observation
	// Initializer chooses adversarial starting opinions.
	Initializer = sim.Initializer
	// EngineKind selects the observation engine.
	EngineKind = sim.EngineKind
)

// Opinion constants and engine kinds.
const (
	OpinionZero = sim.OpinionZero
	OpinionOne  = sim.OpinionOne

	// EngineAgentFast draws observations from tabulated binomial laws
	// (default, statistically identical to exact).
	EngineAgentFast = sim.EngineAgentFast
	// EngineAgentExact samples agent indices literally.
	EngineAgentExact = sim.EngineAgentExact
	// EngineAgentParallel shards the agent sweep across a worker pool;
	// results are bit-identical to EngineAgentFast at any parallelism.
	EngineAgentParallel = sim.EngineAgentParallel
	// EngineAggregate advances per-state occupancy counts instead of
	// agents: rounds cost O(ℓ²) independent of n, reaching populations of
	// 10⁸ and beyond with agent-level-exact statistics.
	EngineAggregate = sim.EngineAggregate
)

// Run executes an agent-level simulation. It is the low-level entry
// point; Disseminate covers the common case.
func Run(cfg Config) (Result, error) { return sim.Run(cfg) }

// NewFET returns the paper's Protocol 1 with per-half sample size ell
// (2·ell observations per agent per round).
func NewFET(ell int) Protocol { return core.NewFET(ell) }

// NewSimpleTrend returns the unpartitioned trend-following variant from
// Section 1.3 (single count per round, reused for both comparisons).
func NewSimpleTrend(ell int) Protocol { return core.NewSimpleTrend(ell) }

// SampleSize returns the default ℓ = ⌈3·log₂ n⌉ used across the
// reproduction. Use core-specific constructors for other constants.
func SampleSize(n int) int { return core.SampleSize(n, core.DefaultC) }

// Initializers for the adversarial starting configurations.

// AllWrong starts every non-source agent on the opinion opposite to
// correct.
func AllWrong(correct byte) Initializer { return adversary.AllWrong{Correct: correct} }

// UniformInit starts each non-source agent on an independent fair coin.
func UniformInit() Initializer { return adversary.Uniform{} }

// FractionInit starts with an exact fraction x of 1-opinions.
func FractionInit(x float64) Initializer { return adversary.Fraction{X: x} }

// Options configures Disseminate, the one-call FET runner.
type Options struct {
	// N is the population size including the source (required, ≥ 2).
	N int
	// Seed is the root randomness seed.
	Seed uint64
	// CorrectZero makes the correct opinion 0 instead of the default 1.
	// (The problem is symmetric; a boolean keeps the zero value useful.)
	CorrectZero bool
	// Ell overrides the per-half sample size (default ⌈3·log₂ N⌉).
	Ell int
	// Sources is the number of agreeing sources (default 1).
	Sources int
	// Init overrides the starting configuration (default all-wrong with
	// adversarially corrupted internal counters — the hard case).
	Init Initializer
	// MaxRounds overrides the round cap (default 400·log₂ N).
	MaxRounds int
	// RecordTrajectory stores x_t per round in the result.
	RecordTrajectory bool
	// Engine selects the round executor (default EngineAgentFast). Use
	// EngineAgentParallel for large agent-level populations and
	// EngineAggregate for populations beyond agent-level reach.
	Engine EngineKind
	// Parallelism bounds EngineAgentParallel's worker count
	// (0 = GOMAXPROCS). Any value yields bit-identical results.
	Parallelism int
}

// Disseminate runs FET end-to-end under the worst-case defaults and
// returns the simulation result.
func Disseminate(opts Options) (Result, error) {
	correct := OpinionOne
	if opts.CorrectZero {
		correct = OpinionZero
	}
	ell := opts.Ell
	if ell == 0 {
		ell = SampleSize(opts.N)
	}
	init := opts.Init
	if init == nil {
		init = AllWrong(correct)
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 && opts.N >= 2 {
		maxRounds = 400 * int(math.Ceil(math.Log2(float64(opts.N))))
	}
	return sim.Run(sim.Config{
		N:                opts.N,
		Sources:          opts.Sources,
		Correct:          correct,
		Protocol:         core.NewFET(ell),
		Init:             init,
		Engine:           opts.Engine,
		Parallelism:      opts.Parallelism,
		Seed:             opts.Seed,
		MaxRounds:        maxRounds,
		CorruptStates:    true,
		RecordTrajectory: opts.RecordTrajectory,
	})
}

// Chain is the aggregate Markov-chain engine (Observation 1): it
// simulates only the opinion-count process and scales to populations of
// 10⁹ and beyond.
type Chain = markov.Chain

// ChainState is a point (K_t, K_{t+1}) of the chain.
type ChainState = markov.State

// NewChain returns a Chain for population n with per-half sample size
// ell, seeded deterministically.
func NewChain(n, ell int, seed uint64) *Chain { return markov.New(n, ell, seed) }

// Experiment metadata and execution, re-exported from the harness.
type (
	// Experiment is a registered reproduction experiment (E01–E18).
	Experiment = experiment.Experiment
	// ExperimentConfig controls an experiment run.
	ExperimentConfig = experiment.Config
	// ExperimentReport is an experiment's structured output.
	ExperimentReport = experiment.Report
)

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment { return experiment.All() }

// LookupExperiment returns the experiment with the given ID ("E01"…).
func LookupExperiment(id string) (Experiment, bool) { return experiment.Lookup(id) }
