// Package passivespread is a reproduction of "Early Adapting to Trends:
// Self-Stabilizing Information Spread using Passive Communication"
// (Korman and Vacus, PODC 2022, arXiv:2203.11522).
//
// It provides the Follow the Emerging Trend (FET) protocol for the
// self-stabilizing bit-dissemination problem in the PULL model with
// passive communication, a layered family of simulation engines — agent
// level (sequential and sharded-parallel), aggregate occupancy level,
// and the induced Markov chain — the paper's baselines, the state-space
// geometry of its analysis, and a harness that reproduces every figure
// and lemma-level claim (see DESIGN.md and EXPERIMENTS.md).
//
// # Quickstart
//
// The paper's claims are statements about distributions over many runs,
// so the primary entry point is the Study API: describe a batch of
// replicates, run it, stream per-replicate results, read the aggregate
// report.
//
//	study, err := passivespread.NewStudy(passivespread.StudySpec{
//		Replicates: 200,
//		Options:    passivespread.Options{N: 4096, Seed: 1},
//	})
//	report, err := study.Run(ctx)
//	// report.Convergence.SuccessRate, report.Convergence.Rounds.Median, …
//
// Replicates fan out across a worker pool (StudySpec.Workers, default
// GOMAXPROCS) over any engine, including the (K_t, K_{t+1}) Markov chain
// (EngineMarkovChain). Results stream as they finish via Study.Stream,
// and the context is honored inside every replicate's round loop.
//
// # Seed derivation
//
// Replicate i runs with seed StreamSeed(root, i), the same SplitMix64
// stream discipline that derives per-agent generators inside a run
// (internal/rng). Seeds depend only on (root seed, replicate index) —
// never on scheduling — so a Study's results are bit-identical at every
// worker count, and re-running a spec reproduces every replicate
// exactly (RunResult.Seed identifies each replicate's derived stream).
//
// For one-shot runs, Disseminate covers the common case (FET under the
// worst-case defaults) and Run takes a full Config; both are thin
// wrappers over a single-replicate Study. Per-round visibility is
// available through typed Observer event streams (Config.Observers).
//
// # Sweeps and scenarios
//
// Parameter grids — the paper's phase diagrams — are first-class: a
// SweepSpec crosses the Ns × Ells × Engines × Topologies × Scenarios
// axes, NewSweep expands the grid, and Sweep.Run / Sweep.Stream execute
// every cell's replicates from one shared worker pool, rendering
// CSV/JSON artifacts (SweepReport). Cell c runs with seed StreamSeed(root, c), extending
// the replicate rule one level up, so sweep outputs are byte-identical
// at every worker count. Scenario presets (Scenarios, ScenarioByName,
// RegisterScenario) name the qualitative conditions: adversarial
// starts, observation noise, mid-run flips of the correct bit, source
// counts, baseline protocols, sparse observation topologies, and
// async/clocked scheduling variants. See DESIGN.md §3.
//
// # Observation topologies
//
// The paper's uniform-mixing assumption is itself a pluggable layer:
// Options.Topology / Config.Topology / SweepSpec.Topologies select who
// each agent can observe (CompleteTopology, Ring, Torus, RandomRegular,
// SmallWorld, DynamicRewire; ParseTopology for CLI specs). Complete is
// the default and leaves every output byte-identical to the
// pre-topology layout; non-complete topologies run on the agent engines
// with the same determinism contract. See DESIGN.md §5.
package passivespread

import (
	"context"
	"errors"
	"fmt"
	"math"

	"passivespread/internal/adversary"
	"passivespread/internal/core"
	"passivespread/internal/experiment"
	"passivespread/internal/markov"
	"passivespread/internal/sim"
	"passivespread/internal/topo"
)

// Re-exported simulation types. The aliases expose the full engine API at
// the module root so downstream users never import internal packages.
type (
	// Config describes one agent-level simulation run; see the field docs
	// on the underlying type.
	Config = sim.Config
	// Result reports a simulation outcome; Result.Round is t_con.
	Result = sim.Result
	// Protocol is a per-agent update rule factory.
	Protocol = sim.Protocol
	// Agent is a per-agent update rule.
	Agent = sim.Agent
	// Observation is an agent's random-sampling access within a round.
	Observation = sim.Observation
	// Initializer chooses adversarial starting opinions.
	Initializer = sim.Initializer
	// EngineKind selects the observation engine.
	EngineKind = sim.EngineKind
	// Observer receives a typed RoundEvent after every executed round.
	Observer = sim.Observer
	// RoundEvent is the per-round snapshot delivered to Observers.
	RoundEvent = sim.RoundEvent
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = sim.ObserverFunc
	// TrajectoryRecorder is an Observer collecting x_t per round.
	TrajectoryRecorder = sim.TrajectoryRecorder
)

// Opinion constants and engine kinds.
const (
	OpinionZero = sim.OpinionZero
	OpinionOne  = sim.OpinionOne

	// EngineAgentFast draws observations from tabulated binomial laws
	// (default, statistically identical to exact).
	EngineAgentFast = sim.EngineAgentFast
	// EngineAgentExact samples agent indices literally.
	EngineAgentExact = sim.EngineAgentExact
	// EngineAgentParallel shards the agent sweep across a worker pool;
	// results are bit-identical to EngineAgentFast at any parallelism.
	EngineAgentParallel = sim.EngineAgentParallel
	// EngineAggregate advances per-state occupancy counts instead of
	// agents: rounds cost O(ℓ²) independent of n, reaching populations of
	// 10⁸ and beyond with agent-level-exact statistics.
	EngineAggregate = sim.EngineAggregate
	// EngineAggregateSparse is the occupancy engine for degree-annealed
	// sparse topologies (random-regular k-out and dynamic rewiring):
	// rounds cost O(k·ℓ²) independent of n, so sparse-topology sweeps
	// reach 10⁸ agents the way complete ones already do. Topologies with
	// fixed local structure (ring, torus, small-world) are rejected with
	// ErrInvalidOptions.
	EngineAggregateSparse = sim.EngineAggregateSparse

	// EngineMarkovChain selects the induced (K_t, K_{t+1}) opinion-count
	// Markov chain of Observation 1 as a Study's replicate engine. It is
	// a root-level pseudo-engine: only the Study API executes it (the
	// chain simulates the opinion-count pair alone, reaching populations
	// of 10⁹ and beyond); Run and Disseminate reject it.
	EngineMarkovChain EngineKind = -1
)

// ErrStopRun is returned by an Observer to request a clean early stop;
// the run reports StoppedEarly instead of an error.
var ErrStopRun = sim.ErrStopRun

// StopWhen returns an Observer that requests an early stop as soon as
// pred returns true.
func StopWhen(pred func(ev RoundEvent) bool) Observer { return sim.StopWhen(pred) }

// ParseEngine returns the engine selected by a CLI-style name: "fast",
// "exact", "parallel", "aggregate", "aggregate-sparse" or "chain".
func ParseEngine(name string) (EngineKind, error) {
	if name == "chain" {
		return EngineMarkovChain, nil
	}
	return sim.ParseEngineKind(name)
}

// EngineName returns the engine's display name, covering the root-level
// EngineMarkovChain pseudo-engine as well.
func EngineName(k EngineKind) string {
	if k == EngineMarkovChain {
		return "markov-chain"
	}
	return k.String()
}

// Run executes an agent-level simulation as a single-replicate Study: the
// simulation runs with seed StreamSeed(cfg.Seed, 0) per the Study seed
// contract. It is the low-level entry point; Disseminate covers the
// common case and NewStudy the batch case.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run honoring ctx inside the round loop: cancellation or
// deadline expiry ends the simulation within one round with ctx.Err().
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	study, err := NewStudy(StudySpec{Replicates: 1, Workers: 1, Config: &cfg})
	if err != nil {
		return Result{}, err
	}
	return study.runSingle(ctx)
}

// NewFET returns the paper's Protocol 1 with per-half sample size ell
// (2·ell observations per agent per round).
func NewFET(ell int) Protocol { return core.NewFET(ell) }

// NewSimpleTrend returns the unpartitioned trend-following variant from
// Section 1.3 (single count per round, reused for both comparisons).
func NewSimpleTrend(ell int) Protocol { return core.NewSimpleTrend(ell) }

// SampleSize returns the default ℓ = ⌈3·log₂ n⌉ used across the
// reproduction. SampleSizeC generalizes the constant.
func SampleSize(n int) int { return core.SampleSize(n, core.DefaultC) }

// SampleSizeC returns ℓ = ⌈c·log₂ n⌉.
func SampleSizeC(n int, c float64) int { return core.SampleSize(n, c) }

// DefaultC is the sample-size constant of SampleSize.
const DefaultC = core.DefaultC

// DefaultMaxRounds returns the default round cap 400·⌈log₂ n⌉ applied
// when Options.MaxRounds (or a CLI round flag) is zero.
func DefaultMaxRounds(n int) int {
	return 400 * int(math.Ceil(math.Log2(float64(n))))
}

// Initializers for the adversarial starting configurations.

// AllWrong starts every non-source agent on the opinion opposite to
// correct.
func AllWrong(correct byte) Initializer { return adversary.AllWrong{Correct: correct} }

// UniformInit starts each non-source agent on an independent fair coin.
func UniformInit() Initializer { return adversary.Uniform{} }

// FractionInit starts with an exact fraction x of 1-opinions.
func FractionInit(x float64) Initializer { return adversary.Fraction{X: x} }

// HalfInit starts with an exact half/half opinion split.
func HalfInit() Initializer { return adversary.HalfSplit() }

// ErrInvalidOptions is wrapped by every validation error returned from
// NewStudy, NewSweep, Disseminate and Run for a malformed specification,
// so callers can test with errors.Is without matching message text.
//
// Message convention: the text after the sentinel takes the form
// "[context: ]Field: reason" — the offending field is always named
// first (e.g. "N: 1, want ≥ 2", "scenario \"noisy\": NoiseEps: 0.7,
// want in [0, 1/2)"), so services such as fetserve can surface the
// message verbatim in typed invalidArgument payloads.
var ErrInvalidOptions = errors.New("passivespread: invalid options")

// Options configures Disseminate and the Options form of a StudySpec.
type Options struct {
	// N is the population size including the source (required, ≥ 2).
	N int
	// Seed is the root randomness seed.
	Seed uint64
	// CorrectZero makes the correct opinion 0 instead of the default 1.
	// (The problem is symmetric; a boolean keeps the zero value useful.)
	CorrectZero bool
	// Ell overrides the per-half sample size (default ⌈3·log₂ N⌉).
	Ell int
	// Sources is the number of agreeing sources (default 1).
	Sources int
	// Init overrides the starting configuration (default all-wrong with
	// adversarially corrupted internal counters — the hard case).
	Init Initializer
	// MaxRounds overrides the round cap (default 400·log₂ N).
	MaxRounds int
	// RecordTrajectory stores x_t per round in the result.
	RecordTrajectory bool
	// Engine selects the round executor (default EngineAgentFast). Use
	// EngineAgentParallel for large agent-level populations,
	// EngineAggregate for populations beyond agent-level reach, and (in
	// Studies only) EngineMarkovChain for the opinion-count chain.
	Engine EngineKind
	// Parallelism bounds EngineAgentParallel's worker count
	// (0 = GOMAXPROCS). Any value yields bit-identical results.
	Parallelism int
	// Topology selects the observation topology (nil = CompleteTopology(),
	// the paper's uniform mixing). Non-complete topologies run on the
	// agent engines only: EngineAggregate and EngineMarkovChain are exact
	// only under uniform mixing and are rejected with ErrInvalidOptions.
	Topology Topology
}

// validate checks the fields that default derivation and the simulator's
// own validation would otherwise mis-handle or report late, wrapping
// every failure in ErrInvalidOptions.
func (o Options) validate() error {
	if o.N < 2 {
		return fmt.Errorf("%w: N: %d, want ≥ 2", ErrInvalidOptions, o.N)
	}
	if o.Ell < 0 {
		return fmt.Errorf("%w: Ell: %d, want ≥ 0", ErrInvalidOptions, o.Ell)
	}
	if o.Sources < 0 || o.Sources >= o.N {
		return fmt.Errorf("%w: Sources: %d, want in [0, N)", ErrInvalidOptions, o.Sources)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("%w: MaxRounds: %d, want ≥ 0", ErrInvalidOptions, o.MaxRounds)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: Parallelism: %d, want ≥ 0", ErrInvalidOptions, o.Parallelism)
	}
	if !topo.IsComplete(o.Topology) {
		// Engine/topology incompatibilities fail here, up front, instead of
		// surfacing from inside a Study worker mid-batch.
		switch o.Engine {
		case EngineAggregate, EngineMarkovChain:
			return fmt.Errorf("%w: Engine: %s is exact only under uniform mixing; topology %q needs an agent engine (fast, exact or parallel)",
				ErrInvalidOptions, EngineName(o.Engine), o.Topology.Name())
		case EngineAggregateSparse:
			if _, ok := topo.AnnealedDegree(o.Topology); !ok {
				return fmt.Errorf("%w: Engine: %s models degree-annealed topologies only; topology %q has fixed local structure and needs an agent engine",
					ErrInvalidOptions, EngineName(o.Engine), o.Topology.Name())
			}
		}
		if err := o.Topology.Validate(o.N); err != nil {
			return fmt.Errorf("%w: Topology: %v", ErrInvalidOptions, err)
		}
	} else if o.Engine == EngineAggregateSparse {
		return fmt.Errorf("%w: Engine: %s requires a degree-annealed sparse topology; use %s under uniform mixing",
			ErrInvalidOptions, EngineName(o.Engine), EngineName(EngineAggregate))
	}
	return nil
}

// derive validates the options and resolves the defaulted parameters
// shared by the agent-level and chain forms: the per-half sample size
// and the round cap. Validation runs up front, so defaults (in
// particular the MaxRounds cap, which previously stayed 0 for N < 2 and
// surfaced as a confusing downstream error) are always well defined.
func (o Options) derive() (ell, maxRounds int, err error) {
	if err := o.validate(); err != nil {
		return 0, 0, err
	}
	ell = o.Ell
	if ell == 0 {
		ell = SampleSize(o.N)
	}
	maxRounds = o.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds(o.N)
	}
	return ell, maxRounds, nil
}

// config derives the worst-case-default simulation configuration.
func (o Options) config() (Config, error) {
	ell, maxRounds, err := o.derive()
	if err != nil {
		return Config{}, err
	}
	correct := OpinionOne
	if o.CorrectZero {
		correct = OpinionZero
	}
	init := o.Init
	if init == nil {
		init = AllWrong(correct)
	}
	return Config{
		N:                o.N,
		Sources:          o.Sources,
		Correct:          correct,
		Protocol:         core.NewFET(ell),
		Init:             init,
		Engine:           o.Engine,
		Parallelism:      o.Parallelism,
		Topology:         o.Topology,
		Seed:             o.Seed,
		MaxRounds:        maxRounds,
		CorruptStates:    true,
		RecordTrajectory: o.RecordTrajectory,
	}, nil
}

// Disseminate runs FET end-to-end under the worst-case defaults as a
// single-replicate Study and returns the simulation result. The
// Markov-chain pseudo-engine reports different semantics (opinion
// counts, not agents) and is only available through NewStudy.
func Disseminate(opts Options) (Result, error) {
	if opts.Engine == EngineMarkovChain {
		return Result{}, fmt.Errorf("%w: Engine: EngineMarkovChain is only available through NewStudy", ErrInvalidOptions)
	}
	study, err := NewStudy(StudySpec{Replicates: 1, Workers: 1, Options: opts})
	if err != nil {
		return Result{}, err
	}
	return study.runSingle(context.Background())
}

// Chain is the aggregate Markov-chain engine (Observation 1): it
// simulates only the opinion-count process and scales to populations of
// 10⁹ and beyond.
type Chain = markov.Chain

// ChainState is a point (K_t, K_{t+1}) of the chain.
type ChainState = markov.State

// NewChain returns a Chain for population n with per-half sample size
// ell, seeded deterministically.
func NewChain(n, ell int, seed uint64) *Chain { return markov.New(n, ell, seed) }

// Experiment metadata and execution, re-exported from the harness.
type (
	// Experiment is a registered reproduction experiment (E01–E22).
	Experiment = experiment.Experiment
	// ExperimentConfig controls an experiment run.
	ExperimentConfig = experiment.Config
	// ExperimentReport is an experiment's structured output.
	ExperimentReport = experiment.Report
)

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment { return experiment.All() }

// LookupExperiment returns the experiment with the given ID ("E01"…).
func LookupExperiment(id string) (Experiment, bool) { return experiment.Lookup(id) }

// RenderExperimentText renders a report as the fetlab text format.
func RenderExperimentText(r *ExperimentReport) string { return experiment.RenderText(r) }

// RenderExperimentMarkdown renders a report as Markdown.
func RenderExperimentMarkdown(r *ExperimentReport) string { return experiment.RenderMarkdown(r) }
