package passivespread

import (
	"math"
	"testing"
)

func TestDisseminateDefaults(t *testing.T) {
	res, err := Disseminate(Options{N: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("default FET run did not converge: %+v", res)
	}
	if res.FinalX != 1 {
		t.Fatalf("final x = %v", res.FinalX)
	}
}

func TestDisseminateCorrectZero(t *testing.T) {
	res, err := Disseminate(Options{N: 512, Seed: 2, CorrectZero: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalX != 0 {
		t.Fatalf("zero-side run: %+v", res)
	}
}

func TestDisseminateOverrides(t *testing.T) {
	res, err := Disseminate(Options{
		N:                256,
		Seed:             3,
		Ell:              SampleSize(256) * 2,
		Sources:          4,
		Init:             FractionInit(0.5),
		MaxRounds:        5000,
		RecordTrajectory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("override run did not converge: %+v", res)
	}
	if len(res.Trajectory) == 0 {
		t.Fatal("trajectory not recorded")
	}
}

func TestDisseminateInvalidN(t *testing.T) {
	if _, err := Disseminate(Options{N: 1, Seed: 1}); err == nil {
		t.Fatal("expected error for N = 1")
	}
}

func TestRunWithExplicitConfig(t *testing.T) {
	res, err := Run(Config{
		N:         256,
		Protocol:  NewSimpleTrend(SampleSize(256)),
		Init:      UniformInit(),
		Correct:   OpinionOne,
		Seed:      5,
		MaxRounds: 10000,
		Engine:    EngineAgentExact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SimpleTrend did not converge: %+v", res)
	}
}

func TestSampleSizeDefault(t *testing.T) {
	if got := SampleSize(1024); got != 30 {
		t.Fatalf("SampleSize(1024) = %d, want 30", got)
	}
}

func TestInitializersExported(t *testing.T) {
	if AllWrong(OpinionOne).Name() != "all-wrong" {
		t.Fatal("AllWrong")
	}
	if UniformInit().Name() != "uniform" {
		t.Fatal("UniformInit")
	}
	if FractionInit(0.25).Name() == "" {
		t.Fatal("FractionInit")
	}
}

func TestNewChainQuick(t *testing.T) {
	n := 1 << 20
	c := NewChain(n, SampleSize(n), 7)
	rounds, ok := c.HittingTime(c.StateAt(0, 0), 100000)
	if !ok {
		t.Fatal("chain did not converge")
	}
	// Sanity: convergence within a small multiple of log^{5/2} n.
	bound := 20 * math.Pow(math.Log(float64(n)), 2.5)
	if float64(rounds) > bound {
		t.Fatalf("chain took %d rounds (> %v)", rounds, bound)
	}
}

func TestExperimentRegistryExported(t *testing.T) {
	all := Experiments()
	if len(all) != 23 {
		t.Fatalf("%d experiments", len(all))
	}
	if _, ok := LookupExperiment("E17"); !ok {
		t.Fatal("E17 missing")
	}
	// Run the cheapest experiment end-to-end through the public API.
	e, _ := LookupExperiment("E17")
	rep, err := e.Run(ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "E17" || len(rep.Sections) == 0 {
		t.Fatalf("report %+v", rep)
	}
}
