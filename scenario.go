package passivespread

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"passivespread/internal/adversary"
	"passivespread/internal/async"
	"passivespread/internal/clocked"
)

// Scenario is a named, discoverable preset of the non-grid experimental
// conditions: the adversarial starting configuration, environment
// dynamics (observation noise, mid-run flips of the correct bit), the
// protocol under test, and — for the scheduling variants — a custom
// per-replicate runner (sequential activation, clocked baselines).
//
// Scenarios are the qualitative axis of a Sweep: the grid axes (n, ℓ,
// engine) say how big and how fast, the scenario says what world the
// protocol is dropped into. The built-in registry (Scenarios,
// ScenarioByName) covers the paper's configurations plus the
// extensions; RegisterScenario adds custom ones.
//
// The zero value of every field selects the paper's worst case: all-wrong
// start, corrupted memories, one source, FET, no noise, no flip,
// synchronous rounds.
type Scenario struct {
	// Name identifies the scenario in registries, CLI flags, and sweep
	// rows. Required for registration.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Init chooses the starting opinions (nil = all-wrong relative to the
	// correct opinion, the adversarial default).
	Init Initializer
	// KeepMemories, when set, skips the adversarial corruption of agent
	// internal states before round 0. The default (false) is the paper's
	// self-stabilizing worst case.
	KeepMemories bool
	// Sources is the number of agreeing sources (0 = 1).
	Sources int
	// NoiseEps, when positive, flips every observed opinion bit
	// independently with this probability (must be < 1/2).
	NoiseEps float64
	// FlipFrac, when positive, flips the correct opinion at round
	// ⌈FlipFrac·MaxRounds⌉: the environment changes mid-run and
	// convergence is judged against the new correct value. Must be < 1.
	FlipFrac float64
	// Protocol overrides the update rule under test (nil = FET with the
	// cell's sample size ℓ). The constructor receives the resolved ℓ;
	// protocols that ignore it (Voter, 3-Majority) may do so.
	Protocol func(ell int) Protocol
	// Topology pins the observation topology of the scenario (nil = the
	// sweep cell's topology-axis value, itself defaulting to complete).
	// A pinned topology cannot cross a sweep's non-default topology axis,
	// and is incompatible with custom-runner scenarios and the
	// Markov-chain engine (both are uniform-mixing constructs).
	Topology Topology
	// Run, when non-nil, replaces the synchronous engine path entirely:
	// the scenario executes each replicate itself (used by the sequential
	// activation and clocked-baseline scenarios, whose schedulers are not
	// synchronous rounds). Custom-runner scenarios ignore the sweep's
	// engine axis; EngineLabel names what ran instead.
	Run ScenarioRunner
	// EngineLabel is reported as the engine of custom-runner cells.
	EngineLabel string
}

// ScenarioRunner executes one replicate of a custom-scheduled scenario.
// Implementations derive all randomness from p.Seed, and should return
// ctx.Err() when interrupted (the built-in runners are bounded by
// p.MaxRounds and check the context at round granularity or coarser).
type ScenarioRunner func(ctx context.Context, p ScenarioParams) (Result, error)

// ScenarioParams carries one sweep cell's resolved grid values plus a
// replicate's derived seed to a ScenarioRunner.
type ScenarioParams struct {
	// N is the population size including sources.
	N int
	// Ell is the resolved per-half sample size.
	Ell int
	// Sources is the resolved number of agreeing sources (≥ 1).
	Sources int
	// MaxRounds is the resolved round cap (parallel rounds for
	// activation-scheduled scenarios).
	MaxRounds int
	// Seed is the replicate's derived seed (StreamSeed(cell seed, i)).
	Seed uint64
	// Init is the resolved initializer (never nil).
	Init Initializer
}

// resolved returns the scenario's defaulted fields: initializer and
// source count. Scenarios are opinion-symmetric presets, so the correct
// opinion is always OpinionOne.
func (sc Scenario) resolved() (Initializer, int) {
	init := sc.Init
	if init == nil {
		init = adversary.AllWrong{Correct: OpinionOne}
	}
	sources := sc.Sources
	if sources == 0 {
		sources = 1
	}
	return init, sources
}

// validate checks the scenario's own fields (grid-independent).
// Messages follow the repository's "field: reason" error convention
// (see ErrInvalidOptions), with a "scenario %q: " context prefix.
func (sc Scenario) validate() error {
	if sc.Name == "" {
		return fmt.Errorf("%w: Name: scenario name is required", ErrInvalidOptions)
	}
	if sc.NoiseEps < 0 || sc.NoiseEps >= 0.5 {
		return fmt.Errorf("%w: scenario %q: NoiseEps: %v, want in [0, 1/2)", ErrInvalidOptions, sc.Name, sc.NoiseEps)
	}
	if sc.FlipFrac < 0 || sc.FlipFrac >= 1 {
		return fmt.Errorf("%w: scenario %q: FlipFrac: %v, want in [0, 1)", ErrInvalidOptions, sc.Name, sc.FlipFrac)
	}
	if sc.Sources < 0 {
		return fmt.Errorf("%w: scenario %q: Sources: %d, want ≥ 0", ErrInvalidOptions, sc.Name, sc.Sources)
	}
	if sc.Run == nil && sc.EngineLabel != "" {
		return fmt.Errorf("%w: scenario %q: EngineLabel: only meaningful with a custom Run", ErrInvalidOptions, sc.Name)
	}
	if sc.Run != nil && sc.Topology != nil {
		return fmt.Errorf("%w: scenario %q: Topology: a custom Run defines its own scheduling and cannot pin a topology",
			ErrInvalidOptions, sc.Name)
	}
	return nil
}

// config builds the per-replicate simulation template of a synchronous
// sweep cell. The cell seed goes into Config.Seed (the Study root seed).
func (sc Scenario) config(n, ell, maxRounds int, engine EngineKind, topology Topology, parallelism int, cellSeed uint64) Config {
	init, sources := sc.resolved()
	var proto Protocol
	if sc.Protocol != nil {
		proto = sc.Protocol(ell)
	} else {
		proto = NewFET(ell)
	}
	flipAt := 0
	if sc.FlipFrac > 0 {
		flipAt = int(math.Ceil(sc.FlipFrac * float64(maxRounds)))
		if flipAt < 1 {
			flipAt = 1
		}
	}
	return Config{
		N:             n,
		Sources:       sources,
		Correct:       OpinionOne,
		Protocol:      proto,
		Init:          init,
		Engine:        engine,
		Parallelism:   parallelism,
		Topology:      topology,
		Seed:          cellSeed,
		MaxRounds:     maxRounds,
		CorruptStates: !sc.KeepMemories,
		NoiseEps:      sc.NoiseEps,
		FlipCorrectAt: flipAt,
	}
}

// chainCompatible reports whether the scenario can run on the
// EngineMarkovChain pseudo-engine, which models exactly the default FET
// process: one source, no noise, no flips, no per-agent protocol or
// scheduler overrides, and an initializer with a deterministic opinion
// fraction.
func (sc Scenario) chainCompatible() bool {
	if sc.Run != nil || sc.Protocol != nil || sc.NoiseEps != 0 || sc.FlipFrac != 0 || sc.Sources > 1 || sc.Topology != nil {
		return false
	}
	switch sc.Init.(type) {
	case nil, adversary.AllWrong, adversary.AllCorrect, adversary.Fraction:
		return true
	default:
		return false
	}
}

// options builds the Options-form study template for a chain cell.
func (sc Scenario) options(n, ell, maxRounds int, cellSeed uint64) Options {
	return Options{
		N:         n,
		Ell:       ell,
		Seed:      cellSeed,
		Sources:   sc.Sources,
		Init:      sc.Init,
		MaxRounds: maxRounds,
		Engine:    EngineMarkovChain,
	}
}

// The scenario registry. Registration order is tracked internally, but
// every listing surface sorts by name (Scenarios).

var (
	scenarioMu    sync.Mutex
	scenarioOrder []string
	scenarioByNm  = map[string]Scenario{}
)

// RegisterScenario adds a scenario to the global registry. It fails on a
// duplicate or empty name and on malformed fields, so a bad preset is
// rejected at registration rather than inside every sweep using it.
func RegisterScenario(sc Scenario) error {
	if err := sc.validate(); err != nil {
		return err
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioByNm[sc.Name]; dup {
		return fmt.Errorf("%w: scenario %q is already registered", ErrInvalidOptions, sc.Name)
	}
	scenarioOrder = append(scenarioOrder, sc.Name)
	scenarioByNm[sc.Name] = sc
	return nil
}

// mustRegisterScenario registers a built-in preset; a failure is a
// programming error.
func mustRegisterScenario(sc Scenario) {
	if err := RegisterScenario(sc); err != nil {
		panic(err)
	}
}

// Scenarios returns every registered scenario sorted by name, so every
// user-facing listing (fetlab -scenarios, fetserve's fet.scenarios.list,
// docs) renders identically regardless of registration order.
func Scenarios() []Scenario {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	names := append([]string(nil), scenarioOrder...)
	sort.Strings(names)
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		out = append(out, scenarioByNm[name])
	}
	return out
}

// ScenarioByName returns the registered scenario with the given name.
func ScenarioByName(name string) (Scenario, bool) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	sc, ok := scenarioByNm[name]
	return sc, ok
}

// DefaultScenario is the name of the paper's headline configuration
// (all-wrong start with corrupted memories), used when a SweepSpec names
// no scenarios.
const DefaultScenario = "worst-case"

func init() {
	mustRegisterScenario(Scenario{
		Name:        DefaultScenario,
		Description: "all-wrong start, corrupted memories (the paper's headline adversarial case)",
	})
	mustRegisterScenario(Scenario{
		Name:        "half-split",
		Description: "exact 50/50 opinion split, corrupted memories (maximally undecided start)",
		Init:        adversary.HalfSplit(),
	})
	mustRegisterScenario(Scenario{
		Name:        "uniform",
		Description: "independent fair-coin opinions, corrupted memories",
		Init:        adversary.Uniform{},
	})
	mustRegisterScenario(Scenario{
		Name:         "clean-start",
		Description:  "all-wrong opinions but fresh (uncorrupted) memories",
		KeepMemories: true,
	})
	mustRegisterScenario(Scenario{
		Name:        "noisy",
		Description: "worst case under ε = 0.1 observation noise (Feinerman et al. model)",
		NoiseEps:    0.1,
	})
	mustRegisterScenario(Scenario{
		Name:        "trend-flip",
		Description: "correct bit flips halfway through the horizon; re-stabilization is required",
		FlipFrac:    0.5,
	})
	mustRegisterScenario(Scenario{
		Name:        "multi-source",
		Description: "eight agreeing sources from the all-wrong start (§5 extension)",
		Sources:     8,
	})
	mustRegisterScenario(Scenario{
		Name:        "simple-trend",
		Description: "unpartitioned SimpleTrend variant (§1.3) from the worst case",
		Protocol:    func(ell int) Protocol { return NewSimpleTrend(ell) },
	})
	mustRegisterScenario(Scenario{
		Name:        "voter-control",
		Description: "Voter baseline vs a stubborn source (§1.4 control; expected not to converge)",
		Protocol:    func(int) Protocol { return Voter() },
	})
	mustRegisterScenario(Scenario{
		Name:        "async",
		Description: "sequential-activation (population-protocol) scheduling; documented negative result",
		Run:         runAsyncScenario,
		EngineLabel: "async",
	})
	mustRegisterScenario(Scenario{
		Name:        "clocked-shared",
		Description: "Section 1.4 clocked phase baseline with a shared global clock",
		Run:         clockedRunner(ModeSharedClock, false),
		EngineLabel: "clocked-shared",
	})
	mustRegisterScenario(Scenario{
		Name:        "clocked-local",
		Description: "clocked phase baseline with adversarially desynchronized local clocks (non-passive messages)",
		Run:         clockedRunner(ModeLocalClocks, true),
		EngineLabel: "clocked-local",
	})
	// The sparse-* presets drop the paper's uniform-mixing assumption:
	// the same worst-case start on structured observation topologies
	// (internal/topo).
	mustRegisterScenario(Scenario{
		Name:        "sparse-regular",
		Description: "worst case on a random 8-out observation digraph (uniform mixing removed)",
		Topology:    RandomRegular(8),
	})
	mustRegisterScenario(Scenario{
		Name:        "sparse-ring",
		Description: "worst case on the 2-nearest-neighbor ring (maximal diameter; spread is local)",
		Topology:    Ring(2),
	})
	mustRegisterScenario(Scenario{
		Name:        "sparse-small-world",
		Description: "worst case on a Watts–Strogatz small world (ring:4 base, β = 0.1 rewiring)",
		Topology:    SmallWorld(4, 0.1),
	})
	mustRegisterScenario(Scenario{
		Name:        "sparse-dynamic",
		Description: "worst case on a random 8-out digraph rewired per agent w.p. 0.2 each round",
		Topology:    DynamicRewire(8, 0.2),
	})
}

// runAsyncScenario executes one replicate under sequential activation
// (internal/async). Time is reported in parallel units: n activations =
// one round-equivalent, so the Result maps onto the synchronous shape.
func runAsyncScenario(ctx context.Context, p ScenarioParams) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	r, err := async.Run(async.Config{
		N:                 p.N,
		Ell:               p.Ell,
		Sources:           p.Sources,
		Correct:           OpinionOne,
		Init:              p.Init,
		CorruptStates:     true,
		Seed:              p.Seed,
		MaxParallelRounds: p.MaxRounds,
	})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Converged: r.Converged,
		Round:     -1,
		Rounds:    (r.Activations + p.N - 1) / p.N,
		FinalX:    r.FinalX,
	}
	if r.Converged {
		res.Round = int(math.Ceil(r.ParallelRound))
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// clockedRunner returns a ScenarioRunner for the clocked phase baseline
// in the given mode.
func clockedRunner(mode ClockedMode, desync bool) ScenarioRunner {
	return func(ctx context.Context, p ScenarioParams) (Result, error) {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		r, err := clocked.Run(clocked.Config{
			N:            p.N,
			Sources:      p.Sources,
			Correct:      OpinionOne,
			Mode:         mode,
			DesyncClocks: desync,
			Init:         p.Init,
			Seed:         p.Seed,
			MaxRounds:    p.MaxRounds,
		})
		if err != nil {
			return Result{}, err
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{
			Converged: r.Converged,
			Round:     r.Round,
			Rounds:    r.Rounds,
			FinalX:    r.FinalX,
		}, nil
	}
}
