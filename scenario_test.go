package passivespread

import (
	"context"
	"errors"
	"sort"
	"testing"
)

func TestScenarioRegistryBuiltins(t *testing.T) {
	// Sorted by name: listings must be stable for docs and for
	// fetserve's fet.scenarios.list, regardless of registration order.
	want := []string{
		"async", "clean-start", "clocked-local", "clocked-shared",
		"half-split", "multi-source", "noisy", "simple-trend",
		"sparse-dynamic", "sparse-regular", "sparse-ring", "sparse-small-world",
		"trend-flip", "uniform", "voter-control", "worst-case",
	}
	all := Scenarios()
	if len(all) < len(want) {
		t.Fatalf("registry has %d scenarios, want at least %d", len(all), len(want))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Fatal("Scenarios() is not sorted by name")
	}
	names := make(map[string]bool, len(all))
	for _, sc := range all {
		names[sc.Name] = true
		if sc.Description == "" {
			t.Fatalf("scenario %q has no description", sc.Name)
		}
	}
	for _, name := range want {
		if !names[name] {
			t.Fatalf("built-in scenario %q missing from Scenarios()", name)
		}
		if _, ok := ScenarioByName(name); !ok {
			t.Fatalf("ScenarioByName(%q) missing", name)
		}
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Fatal("ScenarioByName returned an unregistered scenario")
	}
	if sc, _ := ScenarioByName(DefaultScenario); sc.Init != nil || sc.KeepMemories || sc.Run != nil {
		t.Fatalf("default scenario is not the zero-value worst case: %+v", sc)
	}
}

func TestRegisterScenarioValidation(t *testing.T) {
	cases := []Scenario{
		{},                                        // no name
		{Name: "worst-case"},                      // duplicate
		{Name: "bad-noise", NoiseEps: 0.5},        // eps out of range
		{Name: "bad-flip", FlipFrac: 1},           // flip out of range
		{Name: "bad-sources", Sources: -1},        // negative sources
		{Name: "bad-label", EngineLabel: "async"}, // label without runner
	}
	for _, sc := range cases {
		if err := RegisterScenario(sc); err == nil {
			t.Errorf("RegisterScenario accepted %+v", sc)
		} else if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("error %v does not wrap ErrInvalidOptions", err)
		}
	}
}

func TestRegisterScenarioCustom(t *testing.T) {
	name := "test-custom-scenario"
	if err := RegisterScenario(Scenario{
		Name:        name,
		Description: "uniform start under light noise (test preset)",
		Init:        UniformInit(),
		NoiseEps:    0.05,
	}); err != nil {
		t.Fatal(err)
	}
	sc, ok := ScenarioByName(name)
	if !ok {
		t.Fatal("custom scenario not retrievable")
	}
	report := runSweep(t, SweepSpec{
		Ns:         []int{64},
		Scenarios:  []Scenario{sc},
		Replicates: 3,
		Seed:       8,
	})
	if report.Rows[0].Scenario != name || report.Rows[0].Replicates != 3 {
		t.Fatalf("custom scenario row: %+v", report.Rows[0])
	}
}

// TestScenarioTrendFlip checks that the flip scenario actually flips:
// convergence is judged against the post-flip correct opinion, so the
// final fraction must sit at the flipped value.
func TestScenarioTrendFlip(t *testing.T) {
	sc, ok := ScenarioByName("trend-flip")
	if !ok {
		t.Fatal("trend-flip not registered")
	}
	n := 256
	cfg := sc.config(n, SampleSize(n), DefaultMaxRounds(n), EngineAgentFast, nil, 0, 21)
	if cfg.FlipCorrectAt == 0 {
		t.Fatal("trend-flip built a config with no flip")
	}
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("trend-flip did not re-stabilize: %+v", res)
	}
	// Correct starts at 1 and flips to 0 mid-run: converged means x = 0.
	if res.FinalX != 0 {
		t.Fatalf("final x = %v after flip to correct-0", res.FinalX)
	}
}

// TestScenarioChainCompatibility pins which presets the Markov-chain
// pseudo-engine accepts.
func TestScenarioChainCompatibility(t *testing.T) {
	compatible := map[string]bool{
		"worst-case":   true,
		"half-split":   true,
		"clean-start":  true, // memories are irrelevant to the chain
		"uniform":      false,
		"noisy":        false,
		"trend-flip":   false,
		"multi-source": false,
		"simple-trend": false,
		"async":        false,
	}
	for name, want := range compatible {
		sc, ok := ScenarioByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if got := sc.chainCompatible(); got != want {
			t.Errorf("%s chainCompatible = %v, want %v", name, got, want)
		}
	}
}
