package passivespread

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"passivespread/internal/rng"
	"passivespread/internal/serve"
	"passivespread/internal/stats"
	"passivespread/internal/topo"
)

// This file wires the fetserve subsystem (internal/serve) to the
// simulation layers: the content-addressed cell key is re-exported, and
// serveBackend implements serve.Backend over the scenario registry and
// the Study API. The layering is deliberate: internal/serve knows HTTP,
// caching and metrics but nothing about simulations; this file knows
// simulations but nothing about HTTP; cmd/fetserve imports only the
// root package (per the repository's import-hygiene rule).

// CellKey is the canonical, content-addressed identity of one
// phase-diagram cell: scenario, engine, topology, grid values,
// replicate count, round cap, root seed, and any per-query overrides.
// Equal keys guarantee byte-identical fetserve answers; the key's
// SHA-256 is the cache address.
type CellKey = serve.CellKey

// CellKeyVersion is the canonical key schema version ("fetcell/v1").
const CellKeyVersion = serve.KeyVersion

// ParseCellKey parses a canonical cell-key string (the inverse of
// CellKey.Canonical).
func ParseCellKey(s string) (CellKey, error) { return serve.ParseCellKey(s) }

// Server is the fetserve HTTP service. Construct with NewServer and
// mount Handler() on any http.Server.
type Server = serve.Server

// ServeConfig configures NewServer.
type ServeConfig struct {
	// Workers bounds concurrent fallback-tier (agent-engine) studies
	// (0 = GOMAXPROCS). Saturation rejects with the overloaded code
	// rather than queueing; exact-tier and cached answers are never
	// gated. The value never affects answer bytes, only admission.
	Workers int
	// CacheBytes bounds the resident answer cache (0 = 64 MiB).
	CacheBytes int64
	// CacheDir enables the persistent disk cache ("" = memory only).
	CacheDir string
	// DefaultReplicates resolves a query's zero replicates field
	// (0 = 40, enough for a stable success-rate estimate).
	DefaultReplicates int
	// Batch is the lockstep width fallback-tier studies run with (see
	// StudySpec.Batch; 0 or 1 = sequential, max MaxBatch). Answer bytes
	// are identical at every width — batching only changes how fast the
	// fallback tier turns a cold cell into a cached answer.
	Batch int
}

// defaultServeReplicates is the replicate count a query gets when it
// does not ask for one.
const defaultServeReplicates = 40

// NewServer returns the fetserve service over the full scenario
// registry and engine set.
func NewServer(cfg ServeConfig) (*Server, error) {
	reps := cfg.DefaultReplicates
	if reps == 0 {
		reps = defaultServeReplicates
	}
	if reps < 1 {
		return nil, fmt.Errorf("%w: DefaultReplicates: %d, want ≥ 1", ErrInvalidOptions, cfg.DefaultReplicates)
	}
	if cfg.Batch < 0 || cfg.Batch > MaxBatch {
		return nil, fmt.Errorf("%w: Batch: %d, want 0…%d", ErrInvalidOptions, cfg.Batch, MaxBatch)
	}
	return serve.New(serve.Config{
		Backend:    &serveBackend{defaultReplicates: reps, batch: cfg.Batch},
		Workers:    cfg.Workers,
		CacheBytes: cfg.CacheBytes,
		CacheDir:   cfg.CacheDir,
	})
}

// CellKeys returns the canonical cell key of every planned sweep cell,
// in expansion order: the serving-layer identity of each future CSV
// row, so a sweep's artifacts can be cross-checked against (or warmed
// into) a fetserve cache. Keys name scenarios by preset name; for
// unregistered custom scenarios the key is only meaningful to a server
// whose registry resolves that name to the same preset.
func (s *Sweep) CellKeys() []CellKey {
	out := make([]CellKey, len(s.cells))
	for i := range s.cells {
		m := s.cells[i].meta
		out[i] = CellKey{
			Scenario:   m.Scenario,
			Engine:     m.Engine,
			Topology:   m.Topology,
			N:          m.N,
			Ell:        m.Ell,
			Replicates: s.replicates,
			MaxRounds:  m.MaxRounds,
			Seed:       m.Seed,
		}
	}
	return out
}

// serveBackend implements serve.Backend over the scenario registry,
// ParseTopology/ParseEngine, and the Study API.
type serveBackend struct {
	defaultReplicates int
	// batch is the lockstep width for fallback-tier studies (0/1 =
	// sequential); it never changes answer bytes.
	batch int
}

// resolvedCell is a key plus its executable ingredients.
type resolvedCell struct {
	key      CellKey
	scenario Scenario // overrides applied
	engine   EngineKind
	topology Topology
}

// invalidf builds an invalidArgument error in "field: reason" form.
func invalidf(format string, args ...interface{}) error {
	return serve.Errorf(serve.CodeInvalidArgument, format, args...)
}

// asToolError maps repository validation failures onto typed tool
// errors: an ErrInvalidOptions message becomes an invalidArgument
// payload verbatim (minus the sentinel prefix), anything else stays
// as-is (the transport layer reports it as internal).
func asToolError(err error) error {
	if errors.Is(err, ErrInvalidOptions) {
		return invalidf("%s", strings.TrimPrefix(err.Error(), ErrInvalidOptions.Error()+": "))
	}
	return err
}

// parseEngineName accepts both the CLI parse names ("fast", "chain")
// and the canonical display names ("agent-fast", "markov-chain"), so
// keys and sweep artifacts round-trip through queries.
func parseEngineName(name string) (EngineKind, error) {
	switch name {
	case "agent-fast":
		return EngineAgentFast, nil
	case "agent-exact":
		return EngineAgentExact, nil
	case "agent-parallel":
		return EngineAgentParallel, nil
	case "markov-chain":
		return EngineMarkovChain, nil
	}
	return ParseEngine(name)
}

// Resolve canonicalizes a query into its cell key: defaults resolved,
// overrides normalized against the preset, names canonicalized, and
// engine/topology compatibility checked — all without running
// anything, because the cache-hit path pays this cost on every request.
func (b *serveBackend) Resolve(q serve.Query) (CellKey, error) {
	name := q.Scenario
	if name == "" {
		name = DefaultScenario
	}
	sc, ok := ScenarioByName(name)
	if !ok {
		return CellKey{}, serve.Errorf(serve.CodeNotFound,
			"scenario: %q is not registered; see %s", name, serve.ToolScenariosList)
	}
	if q.N < 2 {
		return CellKey{}, invalidf("n: %d, want ≥ 2", q.N)
	}
	if q.Ell < 0 {
		return CellKey{}, invalidf("ell: %d, want ≥ 0 (0 = ⌈3·log₂ n⌉)", q.Ell)
	}
	if q.Replicates < 0 {
		return CellKey{}, invalidf("replicates: %d, want ≥ 0 (0 = server default)", q.Replicates)
	}
	if q.MaxRounds < 0 {
		return CellKey{}, invalidf("max_rounds: %d, want ≥ 0 (0 = 400·log₂ n)", q.MaxRounds)
	}

	key := CellKey{Scenario: name, N: q.N, Seed: q.Seed}
	key.Ell = q.Ell
	if key.Ell == 0 {
		key.Ell = SampleSize(q.N)
	}
	key.MaxRounds = q.MaxRounds
	if key.MaxRounds == 0 {
		key.MaxRounds = DefaultMaxRounds(q.N)
	}
	key.Replicates = q.Replicates
	if key.Replicates == 0 {
		key.Replicates = b.defaultReplicates
	}

	// Overrides are recorded in the key only when they differ from the
	// preset, so "explicitly the default" and "defaulted" canonicalize
	// to the same cell.
	_, presetSources := sc.resolved()
	if q.Sources < 0 || q.Sources >= q.N {
		if q.Sources != 0 {
			return CellKey{}, invalidf("sources: %d, want in [1, n)", q.Sources)
		}
	}
	if q.Sources > 0 && q.Sources != presetSources {
		key.Sources = q.Sources
	}
	if q.NoiseEps != 0 {
		if math.IsNaN(q.NoiseEps) || q.NoiseEps < 0 || q.NoiseEps >= 0.5 {
			return CellKey{}, invalidf("noise_eps: %v, want in (0, 1/2)", q.NoiseEps)
		}
		if q.NoiseEps != sc.NoiseEps {
			key.NoiseEps = q.NoiseEps
		}
	}
	if q.FlipFrac != 0 {
		if math.IsNaN(q.FlipFrac) || q.FlipFrac < 0 || q.FlipFrac >= 1 {
			return CellKey{}, invalidf("flip_frac: %v, want in (0, 1)", q.FlipFrac)
		}
		if q.FlipFrac != sc.FlipFrac {
			key.FlipFrac = q.FlipFrac
		}
	}

	eff := applyOverrides(sc, key)

	// Topology: a scenario pin wins; otherwise the query's spec is
	// parsed and canonicalized (so "ring" and "ring:2" are one cell).
	switch {
	case sc.Topology != nil:
		pinned := TopologyName(sc.Topology)
		if q.Topology != "" && q.Topology != pinned {
			return CellKey{}, invalidf("topology: scenario %q pins topology %q", name, pinned)
		}
		key.Topology = pinned
	case q.Topology == "":
		key.Topology = "complete"
	default:
		t, err := ParseTopology(q.Topology)
		if err != nil {
			return CellKey{}, invalidf("topology: %v", strings.TrimPrefix(err.Error(), ErrInvalidOptions.Error()+": "))
		}
		key.Topology = TopologyName(t)
	}
	cellTopo, err := ParseTopology(key.Topology)
	if err != nil {
		return CellKey{}, invalidf("topology: %v", err)
	}

	// Engine: custom-runner scenarios schedule themselves; everything
	// else resolves or validates an engine against the topology.
	if eff.Run != nil {
		label := eff.EngineLabel
		if label == "" {
			label = eff.Name
		}
		if q.Engine != "" && q.Engine != label {
			return CellKey{}, invalidf("engine: scenario %q schedules itself (engine label %q); omit the engine or name the label", name, label)
		}
		if key.NoiseEps != 0 || key.FlipFrac != 0 {
			return CellKey{}, invalidf("noise_eps: scenario %q has a custom runner; per-query noise/flip overrides are not supported", name)
		}
		if !topo.IsComplete(cellTopo) {
			return CellKey{}, invalidf("topology: scenario %q has a custom scheduler and runs under uniform mixing only", name)
		}
		key.Engine = label
	} else {
		var engine EngineKind
		if q.Engine == "" {
			if eff.chainCompatible() && topo.IsComplete(cellTopo) {
				engine = EngineMarkovChain
			} else {
				engine = EngineAgentFast
			}
		} else {
			engine, err = parseEngineName(q.Engine)
			if err != nil {
				return CellKey{}, invalidf("engine: %v", err)
			}
		}
		if err := checkEngineTopology(engine, eff, cellTopo); err != nil {
			return CellKey{}, err
		}
		key.Engine = EngineName(engine)
	}
	if err := key.Validate(); err != nil {
		return CellKey{}, invalidf("%v", err)
	}
	return key, nil
}

// applyOverrides folds a key's recorded overrides back into the
// scenario preset, producing the effective scenario the cell runs.
func applyOverrides(sc Scenario, key CellKey) Scenario {
	if key.Sources != 0 {
		sc.Sources = key.Sources
	}
	if key.NoiseEps != 0 {
		sc.NoiseEps = key.NoiseEps
	}
	if key.FlipFrac != 0 {
		sc.FlipFrac = key.FlipFrac
	}
	return sc
}

// checkEngineTopology mirrors the sweep-layer compatibility rules so a
// bad combination is a 400 at resolve time, not a failure mid-run.
func checkEngineTopology(engine EngineKind, sc Scenario, t Topology) error {
	complete := topo.IsComplete(t)
	switch engine {
	case EngineMarkovChain:
		if !sc.chainCompatible() {
			return invalidf("engine: scenario %q is not expressible on the Markov-chain engine", sc.Name)
		}
		if !complete {
			return invalidf("engine: markov-chain is exact only under uniform mixing, not topology %q", topo.DisplayName(t))
		}
	case EngineAggregate:
		if !complete {
			return invalidf("engine: aggregate is exact only under uniform mixing, not topology %q", topo.DisplayName(t))
		}
	case EngineAggregateSparse:
		if complete {
			return invalidf("engine: aggregate-sparse requires a degree-annealed sparse topology, not %q", topo.DisplayName(t))
		}
		if _, annealed := topo.AnnealedDegree(t); !annealed {
			return invalidf("engine: aggregate-sparse models degree-annealed topologies only, not %q", topo.DisplayName(t))
		}
	}
	return nil
}

// fromKey rebuilds a resolved cell from its key. Keys produced by
// Resolve always round-trip; keys from other sources get the same
// validation.
func (b *serveBackend) fromKey(key CellKey) (resolvedCell, error) {
	cell := resolvedCell{key: key}
	sc, ok := ScenarioByName(key.Scenario)
	if !ok {
		return cell, serve.Errorf(serve.CodeNotFound, "scenario: %q is not registered", key.Scenario)
	}
	cell.scenario = applyOverrides(sc, key)
	t, err := ParseTopology(key.Topology)
	if err != nil {
		return cell, asToolError(err)
	}
	cell.topology = t
	if cell.scenario.Run == nil {
		cell.engine, err = parseEngineName(key.Engine)
		if err != nil {
			return cell, invalidf("engine: %v", err)
		}
	}
	return cell, nil
}

// Tier classifies a key by its engine: the chain and occupancy engines
// answer a cell inline; agent engines and custom runners go to the
// bounded fallback pool.
func (b *serveBackend) Tier(key CellKey) serve.Tier {
	switch key.Engine {
	case "markov-chain", "aggregate", "aggregate-sparse":
		return serve.TierExact
	}
	return serve.TierFallback
}

// cellAnswer is the canonical response body of fet.study.run /
// fet.study.get: the resolved identity (key, hash, every cell
// parameter) plus the convergence aggregate. Field order and types are
// the wire contract — the marshaled bytes are cached and replayed
// verbatim, and golden tests pin them.
type cellAnswer struct {
	Key        string  `json:"key"`
	Hash       string  `json:"hash"`
	Scenario   string  `json:"scenario"`
	Engine     string  `json:"engine"`
	Topology   string  `json:"topology"`
	N          int     `json:"n"`
	Ell        int     `json:"ell"`
	Replicates int     `json:"replicates"`
	MaxRounds  int     `json:"max_rounds"`
	Seed       uint64  `json:"seed"`
	Sources    int     `json:"sources,omitempty"`
	NoiseEps   float64 `json:"noise_eps,omitempty"`
	FlipFrac   float64 `json:"flip_frac,omitempty"`
	Converged  int     `json:"converged"`
	// SuccessRate is the convergence probability estimate.
	SuccessRate float64 `json:"success_rate"`
	// Rounds summarizes the replicate convergence times (non-converged
	// replicates censored at their executed round count).
	Rounds answerRounds `json:"rounds"`
}

// answerRounds is the convergence-time summary in stable wire form.
type answerRounds struct {
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	StdErr float64 `json:"stderr"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	Q25    float64 `json:"q25"`
	Q75    float64 `json:"q75"`
	P05    float64 `json:"p05"`
	P95    float64 `json:"p95"`
}

// Run executes the key's cell and returns the canonical answer body.
// Everything derives from the key alone — replicate i runs with
// StreamSeed(key.Seed, i) and results aggregate in replicate order —
// so the bytes are identical across calls, processes and worker
// counts, which is what makes caching them sound.
func (b *serveBackend) Run(ctx context.Context, key CellKey, progress func(done, total int)) ([]byte, error) {
	cell, err := b.fromKey(key)
	if err != nil {
		return nil, err
	}
	total := key.Replicates
	results := make([]RunResult, total)
	if cell.scenario.Run != nil {
		init, sources := cell.scenario.resolved()
		for i := 0; i < total; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p := ScenarioParams{
				N: key.N, Ell: key.Ell, Sources: sources, MaxRounds: key.MaxRounds,
				Init: init, Seed: rng.StreamSeed(key.Seed, uint64(i)),
			}
			rr := RunResult{Replicate: i, Seed: p.Seed}
			rr.Result, rr.Err = cell.scenario.Run(ctx, p)
			results[i] = rr
			if progress != nil {
				progress(i+1, total)
			}
		}
	} else {
		var study *Study
		if cell.engine == EngineMarkovChain {
			study, err = NewStudy(StudySpec{
				Replicates: total,
				Options:    cell.scenario.options(key.N, key.Ell, key.MaxRounds, key.Seed),
			})
		} else {
			cfg := cell.scenario.config(key.N, key.Ell, key.MaxRounds, cell.engine, cell.topology, 1, key.Seed)
			study, err = NewStudy(StudySpec{Replicates: total, Batch: b.batch, Config: &cfg})
		}
		if err != nil {
			return nil, asToolError(err)
		}
		done := 0
		for rr := range study.Stream(ctx) {
			results[rr.Replicate] = rr
			done++
			if progress != nil {
				progress(done, total)
			}
		}
		if done < total {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("study lost %d of %d replicates", total-done, total)
		}
	}
	for i := range results {
		if err := results[i].Err; err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			return nil, asToolError(fmt.Errorf("replicate %d: %w", i, err))
		}
	}
	times, converged := censorConvergence(results)
	conv := stats.SummarizeConvergence(times, converged)
	canonical := key.Canonical()
	ans := cellAnswer{
		Key:         canonical,
		Hash:        serve.HashPrefix + serve.HashHex(canonical),
		Scenario:    key.Scenario,
		Engine:      key.Engine,
		Topology:    key.Topology,
		N:           key.N,
		Ell:         key.Ell,
		Replicates:  key.Replicates,
		MaxRounds:   key.MaxRounds,
		Seed:        key.Seed,
		Sources:     key.Sources,
		NoiseEps:    key.NoiseEps,
		FlipFrac:    key.FlipFrac,
		Converged:   conv.Converged,
		SuccessRate: conv.SuccessRate,
		Rounds: answerRounds{
			Mean:   conv.Rounds.Mean,
			Std:    conv.Rounds.Std,
			StdErr: conv.Rounds.StdErr,
			Min:    conv.Rounds.Min,
			Max:    conv.Rounds.Max,
			Median: conv.Rounds.Median,
			Q25:    conv.Rounds.Q25,
			Q75:    conv.Rounds.Q75,
			P05:    conv.Rounds.P05,
			P95:    conv.Rounds.P95,
		},
	}
	return json.Marshal(ans)
}

// Inspect expands a sweep grid into planned cells and their keys.
func (b *serveBackend) Inspect(q serve.SweepQuery) (*serve.Inspection, error) {
	spec := SweepSpec{
		Ns:         q.Ns,
		Ells:       q.Ells,
		Replicates: q.Replicates,
		MaxRounds:  q.MaxRounds,
		Seed:       q.Seed,
	}
	if spec.Replicates == 0 {
		spec.Replicates = b.defaultReplicates
	}
	for _, name := range q.Scenarios {
		sc, ok := ScenarioByName(name)
		if !ok {
			return nil, serve.Errorf(serve.CodeNotFound,
				"scenarios: %q is not registered; see %s", name, serve.ToolScenariosList)
		}
		spec.Scenarios = append(spec.Scenarios, sc)
	}
	for _, name := range q.Engines {
		engine, err := parseEngineName(name)
		if err != nil {
			return nil, invalidf("engines: %v", err)
		}
		spec.Engines = append(spec.Engines, engine)
	}
	for _, ts := range q.Topologies {
		t, err := ParseTopology(ts)
		if err != nil {
			return nil, invalidf("topologies: %v", strings.TrimPrefix(err.Error(), ErrInvalidOptions.Error()+": "))
		}
		spec.Topologies = append(spec.Topologies, t)
	}
	sweep, err := NewSweep(spec)
	if err != nil {
		return nil, asToolError(err)
	}
	keys := sweep.CellKeys()
	insp := &serve.Inspection{
		Cells:      len(keys),
		Replicates: sweep.Replicates(),
		Rows:       make([]serve.InspectedCell, len(keys)),
	}
	for i, key := range keys {
		if err := key.Validate(); err != nil {
			return nil, invalidf("scenarios: cell %d: %v", i, err)
		}
		canonical := key.Canonical()
		insp.Rows[i] = serve.InspectedCell{
			Index:    i,
			Scenario: key.Scenario,
			Engine:   key.Engine,
			Topology: key.Topology,
			N:        key.N,
			Ell:      key.Ell,
			Seed:     key.Seed,
			Key:      canonical,
			Hash:     serve.HashPrefix + serve.HashHex(canonical),
		}
	}
	return insp, nil
}

// Listings enumerates the query vocabulary, each axis sorted.
func (b *serveBackend) Listings() serve.Listings {
	var ls serve.Listings
	for _, sc := range Scenarios() {
		info := serve.ScenarioInfo{Name: sc.Name, Description: sc.Description, Engine: sc.EngineLabel}
		if sc.Topology != nil {
			info.Topology = TopologyName(sc.Topology)
		}
		ls.Scenarios = append(ls.Scenarios, info)
	}
	ls.Engines = []string{"agent-exact", "agent-fast", "agent-parallel", "aggregate", "aggregate-sparse", "markov-chain"}
	for _, spec := range TopologySpecs() {
		ls.Topologies = append(ls.Topologies, serve.TopologyInfo{Spec: spec.Spec, Description: spec.Description})
	}
	return ls
}
