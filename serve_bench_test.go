package passivespread_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"passivespread"
)

// BenchmarkServeQuery measures the fetserve answer path end to end
// (mux, decode, resolve, hash, cache, encode) through the HTTP
// handler. The two sub-benchmarks pin the subsystem's latency
// acceptance criteria, gated in CI via BENCH_serve.json: a cache hit
// must stay under 100 µs and an uncached chain-tier worst-case cell
// under 10 ms even at the gate's 2.5x headroom.
func BenchmarkServeQuery(b *testing.B) {
	const path = "/v1/tools/fet.study.run"
	const body = `{"n":4096,"engine":"chain","replicates":40,"seed":42}`

	b.Run("cache-hit", func(b *testing.B) {
		h := newServeHandler(b, passivespread.ServeConfig{Workers: 2})
		warm := servePost(b, h, path, body)
		if warm.Code != http.StatusOK {
			b.Fatalf("warm run: %d %s", warm.Code, warm.Body)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("hit: %d", w.Code)
			}
		}
		b.StopTimer()
		if tier := servePost(b, h, path, body).Header().Get("X-Fetserve-Tier"); tier != "cache" {
			b.Fatalf("benchmark did not measure the cache tier (got %q)", tier)
		}
	})

	b.Run("chain-cold", func(b *testing.B) {
		// A fresh daemon per iteration: every request is a true miss
		// answered inline by the exact tier.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			h := newServeHandler(b, passivespread.ServeConfig{Workers: 2})
			req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
			w := httptest.NewRecorder()
			b.StartTimer()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("cold run: %d %s", w.Code, w.Body)
			}
		}
	})
}
