package passivespread_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"passivespread"
)

func newServeHandler(t testing.TB, cfg passivespread.ServeConfig) http.Handler {
	t.Helper()
	s, err := passivespread.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	return s.Handler()
}

func servePost(t testing.TB, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func serveGet(t testing.TB, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// TestServeDeterminism is the subsystem's acceptance test: for every
// engine (including aggregate-sparse and a dynamic topology) and for a
// custom-runner scenario, the cache-hit answer is byte-identical to
// the cold run, and a second daemon with a different Workers setting
// cold-computes the exact same bytes.
func TestServeDeterminism(t *testing.T) {
	queries := []struct {
		name, body, tier string
	}{
		{"markov-chain", `{"n":512,"engine":"chain","replicates":16,"seed":42}`, "exact"},
		{"aggregate", `{"n":512,"engine":"aggregate","replicates":8,"seed":42}`, "exact"},
		{"aggregate-sparse", `{"n":512,"engine":"aggregate-sparse","topology":"random-regular:8","replicates":6,"seed":7}`, "exact"},
		{"agent-fast", `{"n":128,"engine":"fast","replicates":6,"seed":3}`, "fallback"},
		{"agent-exact", `{"n":96,"engine":"exact","replicates":4,"seed":3}`, "fallback"},
		{"agent-parallel", `{"n":128,"engine":"parallel","replicates":4,"seed":3}`, "fallback"},
		{"dynamic-topology", `{"n":128,"engine":"fast","topology":"dynamic:8:0.1","replicates":4,"seed":9}`, "fallback"},
		{"custom-runner", `{"n":96,"scenario":"async","replicates":4,"seed":5}`, "fallback"},
		{"noisy-overrides", `{"n":128,"scenario":"noisy","noise_eps":0.1,"sources":2,"replicates":4,"seed":11}`, "fallback"},
	}
	daemonA := newServeHandler(t, passivespread.ServeConfig{Workers: 1})
	daemonB := newServeHandler(t, passivespread.ServeConfig{Workers: 8})
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			cold := servePost(t, daemonA, "/v1/tools/fet.study.run", q.body)
			if cold.Code != http.StatusOK {
				t.Fatalf("cold run: %d %s", cold.Code, cold.Body)
			}
			if tier := cold.Header().Get("X-Fetserve-Tier"); tier != q.tier {
				t.Fatalf("cold tier %q, want %q", tier, q.tier)
			}
			hit := servePost(t, daemonA, "/v1/tools/fet.study.run", q.body)
			if hit.Code != http.StatusOK || hit.Header().Get("X-Fetserve-Tier") != "cache" {
				t.Fatalf("hit: %d, tier %q", hit.Code, hit.Header().Get("X-Fetserve-Tier"))
			}
			if !bytes.Equal(cold.Body.Bytes(), hit.Body.Bytes()) {
				t.Fatalf("cache hit differs from cold run:\n%s\n%s", cold.Body, hit.Body)
			}
			other := servePost(t, daemonB, "/v1/tools/fet.study.run", q.body)
			if other.Code != http.StatusOK {
				t.Fatalf("daemon B: %d %s", other.Code, other.Body)
			}
			if !bytes.Equal(cold.Body.Bytes(), other.Body.Bytes()) {
				t.Fatalf("daemons with different Workers disagree:\n%s\n%s", cold.Body, other.Body)
			}
			var ans struct {
				Key  string `json:"key"`
				Hash string `json:"hash"`
			}
			if err := json.Unmarshal(cold.Body.Bytes(), &ans); err != nil {
				t.Fatal(err)
			}
			key, err := passivespread.ParseCellKey(ans.Key)
			if err != nil {
				t.Fatalf("answer key %q does not parse: %v", ans.Key, err)
			}
			if key.Hash() != ans.Hash {
				t.Fatalf("answer hash %q does not match key %q", ans.Hash, ans.Key)
			}
		})
	}
}

// TestServeCanonicalization: different spellings of the same cell must
// resolve to one cache entry — engine parse names vs display names,
// topology parameter defaults, and explicitly-stated preset defaults.
func TestServeCanonicalization(t *testing.T) {
	h := newServeHandler(t, passivespread.ServeConfig{})
	ell := passivespread.SampleSize(512)
	rounds := passivespread.DefaultMaxRounds(512)
	base := `{"n":512,"engine":"chain","replicates":8,"seed":42}`
	cold := servePost(t, h, "/v1/tools/fet.study.run", base)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body)
	}
	aliases := []string{
		`{"n":512,"engine":"markov-chain","replicates":8,"seed":42}`,
		`{"n":512,"scenario":"worst-case","engine":"chain","replicates":8,"seed":42}`,
		fmt.Sprintf(`{"n":512,"engine":"chain","ell":%d,"replicates":8,"seed":42}`, ell),
		fmt.Sprintf(`{"n":512,"engine":"chain","max_rounds":%d,"replicates":8,"seed":42}`, rounds),
		`{"n":512,"engine":"chain","sources":1,"replicates":8,"seed":42}`,
		`{"n":512,"engine":"chain","topology":"complete","replicates":8,"seed":42}`,
	}
	for _, alias := range aliases {
		w := servePost(t, h, "/v1/tools/fet.study.run", alias)
		if w.Code != http.StatusOK {
			t.Fatalf("alias %s: %d %s", alias, w.Code, w.Body)
		}
		if tier := w.Header().Get("X-Fetserve-Tier"); tier != "cache" {
			t.Errorf("alias %s resolved to a different cell (tier %q)", alias, tier)
		}
	}
	// Topology parameter defaults canonicalize too: "ring" is "ring:2".
	ringBase := `{"n":64,"engine":"fast","topology":"ring","replicates":2,"seed":1}`
	ringFull := `{"n":64,"engine":"fast","topology":"ring:2","replicates":2,"seed":1}`
	if w := servePost(t, h, "/v1/tools/fet.study.run", ringBase); w.Code != http.StatusOK {
		t.Fatalf("ring: %d %s", w.Code, w.Body)
	}
	if w := servePost(t, h, "/v1/tools/fet.study.run", ringFull); w.Header().Get("X-Fetserve-Tier") != "cache" {
		t.Error(`"ring" and "ring:2" resolved to different cells`)
	}
}

// TestServeRejections: engine/topology/scenario combinations the sweep
// layer refuses must be clean 4xx tool errors here too.
func TestServeRejections(t *testing.T) {
	h := newServeHandler(t, passivespread.ServeConfig{})
	cases := []struct {
		name, body string
		status     int
	}{
		{"aggregate on sparse", `{"n":64,"engine":"aggregate","topology":"ring"}`, http.StatusBadRequest},
		{"chain on sparse", `{"n":64,"engine":"chain","topology":"ring"}`, http.StatusBadRequest},
		{"chain on noisy", `{"n":64,"engine":"chain","scenario":"noisy"}`, http.StatusBadRequest},
		{"sparse engine on complete", `{"n":64,"engine":"aggregate-sparse"}`, http.StatusBadRequest},
		{"sparse engine on ring", `{"n":64,"engine":"aggregate-sparse","topology":"ring"}`, http.StatusBadRequest},
		{"engine on custom runner", `{"n":64,"scenario":"async","engine":"fast"}`, http.StatusBadRequest},
		{"topology on custom runner", `{"n":64,"scenario":"async","topology":"ring"}`, http.StatusBadRequest},
		{"pinned topology conflict", `{"n":64,"scenario":"sparse-ring","topology":"torus"}`, http.StatusBadRequest},
		{"unknown topology", `{"n":64,"topology":"hypercube"}`, http.StatusBadRequest},
		{"unknown engine", `{"n":64,"engine":"quantum"}`, http.StatusBadRequest},
		{"unregistered scenario", `{"n":64,"scenario":"no-such-preset"}`, http.StatusNotFound},
		{"sources out of range", `{"n":64,"sources":64}`, http.StatusBadRequest},
		{"noise out of range", `{"n":64,"noise_eps":0.5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		w := servePost(t, h, "/v1/tools/fet.study.run", tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.status, w.Body)
			continue
		}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error.Code == "" {
			t.Errorf("%s: malformed error envelope %s", tc.name, w.Body)
		}
	}
}

// TestSweepCellKeys: the sweep's planned cells and fetserve resolve to
// the same canonical identities, so a sweep CSV row is individually
// reproducible over HTTP.
func TestSweepCellKeys(t *testing.T) {
	sweep, err := passivespread.NewSweep(passivespread.SweepSpec{
		Ns:         []int{64, 128},
		Replicates: 3,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := sweep.CellKeys()
	cells := sweep.Cells()
	if len(keys) != len(cells) {
		t.Fatalf("%d keys for %d cells", len(keys), len(cells))
	}
	for i, key := range keys {
		meta := cells[i]
		if key.Scenario != meta.Scenario || key.Engine != meta.Engine || key.Topology != meta.Topology ||
			key.N != meta.N || key.Ell != meta.Ell || key.Seed != meta.Seed ||
			key.MaxRounds != meta.MaxRounds || key.Replicates != 3 {
			t.Fatalf("key %d %+v does not match cell %+v", i, key, meta)
		}
		if meta.MaxRounds != passivespread.DefaultMaxRounds(meta.N) {
			t.Fatalf("cell %d MaxRounds %d, want default %d", i, meta.MaxRounds, passivespread.DefaultMaxRounds(meta.N))
		}
		round, err := passivespread.ParseCellKey(key.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if round != key {
			t.Fatalf("key %d does not round-trip", i)
		}
	}

	h := newServeHandler(t, passivespread.ServeConfig{})
	w := servePost(t, h, "/v1/tools/fet.sweep.inspect", `{"ns":[64,128],"replicates":3,"seed":11}`)
	if w.Code != http.StatusOK {
		t.Fatalf("inspect: %d %s", w.Code, w.Body)
	}
	var insp struct {
		Cells int `json:"cells"`
		Rows  []struct {
			Key  string `json:"key"`
			Hash string `json:"hash"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &insp); err != nil {
		t.Fatal(err)
	}
	if insp.Cells != len(keys) {
		t.Fatalf("inspection cells %d, want %d", insp.Cells, len(keys))
	}
	for i, row := range insp.Rows {
		if row.Key != keys[i].Canonical() {
			t.Fatalf("inspected key %d:\n got %s\nwant %s", i, row.Key, keys[i].Canonical())
		}
	}

	// Re-running cell 0's identity through fet.study.run resolves the
	// identical content address.
	k := keys[0]
	body := fmt.Sprintf(`{"scenario":%q,"engine":%q,"topology":%q,"n":%d,"ell":%d,"replicates":%d,"max_rounds":%d,"seed":%d}`,
		k.Scenario, k.Engine, k.Topology, k.N, k.Ell, k.Replicates, k.MaxRounds, k.Seed)
	run := servePost(t, h, "/v1/tools/fet.study.run", body)
	if run.Code != http.StatusOK {
		t.Fatalf("run of cell 0: %d %s", run.Code, run.Body)
	}
	if got := run.Header().Get("X-Fetserve-Key"); got != insp.Rows[0].Hash {
		t.Fatalf("run key %s, want inspected hash %s", got, insp.Rows[0].Hash)
	}
}

// goldenServe compares (or with FETSERVE_UPDATE_GOLDEN=1, rewrites)
// one golden response file.
func goldenServe(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("FETSERVE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s diverged:\n--- golden\n%s\n--- got\n%s", name, want, got)
	}
}

// TestServeGoldenResponses pins the wire contract byte for byte: the
// same files back the CI smoke job's curl diffs. Regenerate with
// FETSERVE_UPDATE_GOLDEN=1 go test -run TestServeGoldenResponses .
func TestServeGoldenResponses(t *testing.T) {
	// Health first, on a fresh daemon, so the cache counters are zero —
	// the same state the smoke job sees right after boot.
	h := newServeHandler(t, passivespread.ServeConfig{Workers: 2})
	health := serveGet(t, h, "/v1/tools/fet.health")
	if health.Code != http.StatusOK {
		t.Fatalf("health: %d", health.Code)
	}
	goldenServe(t, "golden_serve_health.json", health.Body.Bytes())

	miss := servePost(t, h, "/v1/tools/fet.study.run", `{"n":512,"engine":"chain","replicates":16,"seed":42}`)
	if miss.Code != http.StatusOK || miss.Header().Get("X-Fetserve-Tier") != "exact" {
		t.Fatalf("miss: %d, tier %q", miss.Code, miss.Header().Get("X-Fetserve-Tier"))
	}
	goldenServe(t, "golden_serve_run.json", miss.Body.Bytes())

	hit := servePost(t, h, "/v1/tools/fet.study.run", `{"n":512,"engine":"chain","replicates":16,"seed":42}`)
	if hit.Header().Get("X-Fetserve-Tier") != "cache" || !bytes.Equal(hit.Body.Bytes(), miss.Body.Bytes()) {
		t.Fatal("cache hit is not a byte replay of the miss")
	}

	invalid := servePost(t, h, "/v1/tools/fet.study.run", `{"n":1}`)
	if invalid.Code != http.StatusBadRequest {
		t.Fatalf("invalid: %d", invalid.Code)
	}
	goldenServe(t, "golden_serve_invalid.json", invalid.Body.Bytes())

	notFound := servePost(t, h, "/v1/tools/fet.study.run", `{"n":64,"scenario":"no-such-preset"}`)
	if notFound.Code != http.StatusNotFound {
		t.Fatalf("not found: %d", notFound.Code)
	}
	goldenServe(t, "golden_serve_notfound.json", notFound.Body.Bytes())

	list := serveGet(t, h, "/v1/tools/fet.scenarios.list")
	if list.Code != http.StatusOK {
		t.Fatalf("list: %d", list.Code)
	}
	goldenServe(t, "golden_serve_scenarios.json", stripTestScenarios(t, list.Body.Bytes()))
}

// stripTestScenarios drops "test-"-prefixed presets from a
// fet.scenarios.list body. The scenario registry is process-global
// and other tests in this binary register throwaway presets under
// that prefix, so the in-process listing is normalized before the
// golden diff; the CI smoke job diffs a live daemon's listing (built-in
// presets only) against the same golden byte for byte.
func stripTestScenarios(t *testing.T, body []byte) []byte {
	t.Helper()
	var doc struct {
		Scenarios  []json.RawMessage `json:"scenarios"`
		Engines    json.RawMessage   `json:"engines"`
		Topologies json.RawMessage   `json:"topologies"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("scenarios listing: %v", err)
	}
	kept := doc.Scenarios[:0]
	for _, raw := range doc.Scenarios {
		var entry struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &entry); err != nil {
			t.Fatalf("scenario entry: %v", err)
		}
		if !strings.HasPrefix(entry.Name, "test-") {
			kept = append(kept, raw)
		}
	}
	doc.Scenarios = kept
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
