package passivespread

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"passivespread/internal/serve"
)

// This file is the sweep fabric's shard protocol: the deterministic
// 1/m grid partition (Shard, ParseShard), the mergeable per-shard
// artifact (ShardArtifact), and the join/verify logic (MergeShards)
// behind cmd/fetmerge. The whole design leans on one fact: a cell's
// row is a pure function of its canonical cell key (the fetserve
// CellKey), so shards computed on different machines at different
// worker counts join into output byte-identical to a single runner —
// and every claim in an artifact is re-verifiable from content
// addresses alone.

// Shard selects a deterministic 1/m slice of a sweep grid. The zero
// value selects the whole grid. Index is 1-based: shard i of m owns
// every cell c (in expansion order) with c mod m == i−1, so cells
// round-robin across shards and heterogeneous cell costs balance.
// Sharding never re-seeds anything — cell indices, seeds, and keys are
// those of the full grid, which is what makes shard output mergeable.
type Shard struct {
	// Index is the 1-based shard number, in [1, Count].
	Index int
	// Count is the total number of shards, ≥ 1.
	Count int
}

// IsZero reports whether the shard is the whole-grid zero value.
func (sh Shard) IsZero() bool { return sh == Shard{} }

// String renders the canonical "i/m" form ("" for the zero value).
func (sh Shard) String() string {
	if sh.IsZero() {
		return ""
	}
	return strconv.Itoa(sh.Index) + "/" + strconv.Itoa(sh.Count)
}

// validate checks the invariants (typed: wraps ErrInvalidOptions).
func (sh Shard) validate() error {
	if sh.IsZero() {
		return nil
	}
	if sh.Count < 1 {
		return fmt.Errorf("%w: Shard: count %d, want ≥ 1", ErrInvalidOptions, sh.Count)
	}
	if sh.Index < 1 || sh.Index > sh.Count {
		return fmt.Errorf("%w: Shard: index %d out of range [1, %d]", ErrInvalidOptions, sh.Index, sh.Count)
	}
	return nil
}

// owns reports whether the shard executes grid cell c. The zero value
// owns every cell, and so does 1/1: m = 1 is exactly the unsharded
// sweep.
func (sh Shard) owns(c int) bool {
	return sh.IsZero() || c%sh.Count == sh.Index-1
}

// ParseShard parses the canonical "i/m" shard form strictly: two
// base-10 integers, 1 ≤ i ≤ m. Anything else — empty parts, extra
// slashes, signs, spaces, zero or out-of-range indices — is rejected
// with a typed error wrapping ErrInvalidOptions.
func ParseShard(s string) (Shard, error) {
	is, ms, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("%w: Shard: %q, want \"i/m\"", ErrInvalidOptions, s)
	}
	parse := func(part string) (int, error) {
		if part == "" || part != strings.TrimSpace(part) {
			return 0, fmt.Errorf("%w: Shard: %q, want \"i/m\" with bare integers", ErrInvalidOptions, s)
		}
		v, err := strconv.Atoi(part)
		if err != nil || part[0] == '+' {
			return 0, fmt.Errorf("%w: Shard: %q, want \"i/m\" with base-10 integers", ErrInvalidOptions, s)
		}
		return v, nil
	}
	i, err := parse(is)
	if err != nil {
		return Shard{}, err
	}
	m, err := parse(ms)
	if err != nil {
		return Shard{}, err
	}
	sh := Shard{Index: i, Count: m}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// ShardArtifactVersion is the shard artifact schema version. Bump it
// whenever the envelope or row schema changes: MergeShards then
// rejects stale artifacts instead of joining them with new semantics.
const ShardArtifactVersion = "fetshard/v1"

// ShardArtifact is one shard runner's mergeable output: the grid
// header (full grid size, replicates, root seed) plus this shard's
// completed rows, each carrying its canonical cell key and the digest
// of its row JSON so fetmerge can verify agreement without re-running
// anything.
type ShardArtifact struct {
	// Version is the schema version (ShardArtifactVersion).
	Version string `json:"version"`
	// Shard is the canonical "i/m" form ("1/1" for a whole-grid run).
	Shard string `json:"shard"`
	// Cells is the full grid size — not this shard's share.
	Cells int `json:"cells"`
	// Replicates is the per-cell replicate count.
	Replicates int `json:"replicates"`
	// Seed is the sweep's root seed.
	Seed uint64 `json:"seed"`
	// Rows holds the shard's completed cells in cell-index order.
	Rows []ShardRow `json:"rows"`
}

// ShardRow is one cell's row plus its verifiable identity.
type ShardRow struct {
	// Cell is the cell's index in full-grid expansion order.
	Cell int `json:"cell"`
	// Key is the cell's canonical fetcell key.
	Key string `json:"key"`
	// Digest is the bare hex SHA-256 of Row's canonical JSON — the
	// same body bytes a checkpoint envelope stores.
	Digest string `json:"digest"`
	// Row is the aggregated outcome.
	Row SweepRow `json:"row"`

	// shardLabel records which artifact the row came from during a
	// merge, for error messages only (never serialized).
	shardLabel string
}

// sweepRowBody renders a row's canonical JSON body — the bytes that
// checkpoints persist and shard digests commit to.
func sweepRowBody(row SweepRow) ([]byte, error) {
	return json.Marshal(row)
}

// canonicalKeys resolves every grid cell's canonical cell-key string,
// in expansion order. It fails (typed, ErrInvalidOptions) when a cell
// is not expressible as a canonical key — e.g. an unregistered custom
// scenario whose name would not round-trip — because the fabric's
// durability and merge verification both hang off these keys.
func (s *Sweep) canonicalKeys() ([]string, error) {
	keys := s.CellKeys()
	out := make([]string, len(keys))
	for i, k := range keys {
		if err := k.Validate(); err != nil {
			return nil, fmt.Errorf("%w: Shard/CheckpointDir: cell %d: %v", ErrInvalidOptions, i, err)
		}
		out[i] = k.Canonical()
	}
	return out, nil
}

// ShardArtifact packages a report produced by this sweep into the
// mergeable artifact form. The report must come from this sweep's Run
// (rows are matched to cells by index and digested as-is).
func (s *Sweep) ShardArtifact(rep *SweepReport) (*ShardArtifact, error) {
	keys, err := s.canonicalKeys()
	if err != nil {
		return nil, err
	}
	sh := s.shard
	if sh.IsZero() {
		sh = Shard{Index: 1, Count: 1}
	}
	art := &ShardArtifact{
		Version:    ShardArtifactVersion,
		Shard:      sh.String(),
		Cells:      len(s.cells),
		Replicates: s.replicates,
		Seed:       s.seed,
		Rows:       make([]ShardRow, 0, len(rep.Rows)),
	}
	for _, row := range rep.Rows {
		if row.Cell < 0 || row.Cell >= len(keys) {
			return nil, fmt.Errorf("shard artifact: row cell %d outside grid of %d cells", row.Cell, len(keys))
		}
		body, err := sweepRowBody(row)
		if err != nil {
			return nil, fmt.Errorf("shard artifact: cell %d: %v", row.Cell, err)
		}
		art.Rows = append(art.Rows, ShardRow{
			Cell:   row.Cell,
			Key:    keys[row.Cell],
			Digest: serve.HashHex(string(body)),
			Row:    row,
		})
	}
	return art, nil
}

// JSON renders the artifact in its canonical indented form (the bytes
// fetsweep -format shard emits and fetmerge consumes).
func (a *ShardArtifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a, "", "  ")
}

// ParseShardArtifact parses an artifact rendered by ShardArtifact.JSON.
func ParseShardArtifact(data []byte) (*ShardArtifact, error) {
	var a ShardArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("passivespread: parsing shard artifact: %w", err)
	}
	if a.Version != ShardArtifactVersion {
		return nil, fmt.Errorf("passivespread: shard artifact version %q, want %q", a.Version, ShardArtifactVersion)
	}
	return &a, nil
}

// ErrShardMerge is the typed failure of MergeShards: artifacts that do
// not join into one complete, consistent grid — overlapping or missing
// shards, duplicate or uncovered cells, header disagreement, or (under
// full verification) a cell whose key or digest does not agree with
// its row.
var ErrShardMerge = errors.New("shard artifacts do not merge")

func mergeErrf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrShardMerge, fmt.Sprintf(format, args...))
}

// MergeShards joins shard artifacts into the single-runner report.
//
// Structural verification always runs: every artifact must carry the
// current schema version and agree on (cells, replicates, seed); the
// shard set must be exactly {1/m, …, m/m} with no duplicates (an
// overlapping or missing shard is a typed ErrShardMerge); every row
// must sit in its artifact's partition class; and the union of rows
// must cover every grid cell exactly once.
//
// With verify set, each row is additionally re-verified from content
// addresses: its canonical key must parse and agree field-by-field
// with the row it labels (n, ℓ, replicates, seed, scenario, engine,
// topology), and the recorded digest must equal the SHA-256 of the
// row's canonical JSON — so a bit-flipped or hand-edited artifact
// cannot merge silently.
//
// The merged report renders CSV and JSON byte-identical to the same
// grid run unsharded, because rows are the same bytes in the same cell
// order and both renderers are deterministic.
func MergeShards(artifacts []*ShardArtifact, verify bool) (*SweepReport, error) {
	if len(artifacts) == 0 {
		return nil, mergeErrf("no artifacts")
	}
	head := artifacts[0]
	m := 0
	seenShard := map[int]bool{}
	rowsByCell := map[int]ShardRow{}
	for ai, a := range artifacts {
		if a.Version != ShardArtifactVersion {
			return nil, mergeErrf("artifact %d: version %q, want %q", ai, a.Version, ShardArtifactVersion)
		}
		if a.Cells != head.Cells || a.Replicates != head.Replicates || a.Seed != head.Seed {
			return nil, mergeErrf("artifact %d (%s): grid header (cells=%d replicates=%d seed=%d) disagrees with artifact 0 (cells=%d replicates=%d seed=%d)",
				ai, a.Shard, a.Cells, a.Replicates, a.Seed, head.Cells, head.Replicates, head.Seed)
		}
		sh, err := ParseShard(a.Shard)
		if err != nil {
			return nil, mergeErrf("artifact %d: shard %q: %v", ai, a.Shard, err)
		}
		if m == 0 {
			m = sh.Count
		} else if sh.Count != m {
			return nil, mergeErrf("artifact %d: shard %s disagrees with count %d of artifact 0", ai, a.Shard, m)
		}
		if seenShard[sh.Index] {
			return nil, mergeErrf("overlapping shards: %s appears twice", a.Shard)
		}
		seenShard[sh.Index] = true
		for _, r := range a.Rows {
			if r.Cell < 0 || r.Cell >= a.Cells {
				return nil, mergeErrf("shard %s: cell %d outside grid of %d cells", a.Shard, r.Cell, a.Cells)
			}
			if !sh.owns(r.Cell) {
				return nil, mergeErrf("shard %s: cell %d belongs to shard %d/%d", a.Shard, r.Cell, r.Cell%m+1, m)
			}
			if prev, dup := rowsByCell[r.Cell]; dup {
				return nil, mergeErrf("overlapping coverage: cell %d appears in shard %s and again in shard %s", r.Cell, prev.shardLabel, a.Shard)
			}
			r.shardLabel = a.Shard
			if verify {
				if err := verifyShardRow(r); err != nil {
					return nil, err
				}
			}
			rowsByCell[r.Cell] = r
		}
	}
	for i := 1; i <= m; i++ {
		if !seenShard[i] {
			return nil, mergeErrf("missing shard %d/%d (%d of %d artifacts present)", i, m, len(artifacts), m)
		}
	}
	if len(rowsByCell) != head.Cells {
		missing := make([]string, 0, 4)
		for c := 0; c < head.Cells && len(missing) < 4; c++ {
			if _, ok := rowsByCell[c]; !ok {
				missing = append(missing, strconv.Itoa(c))
			}
		}
		return nil, mergeErrf("incomplete coverage: %d of %d cells present (first missing: %s) — a shard run was interrupted; resume it from its checkpoint directory",
			len(rowsByCell), head.Cells, strings.Join(missing, ", "))
	}
	rep := &SweepReport{Cells: head.Cells, Replicates: head.Replicates, Rows: make([]SweepRow, 0, head.Cells)}
	//fet:allow detrand: rows are collected then sorted by cell index below
	for _, r := range rowsByCell {
		rep.Rows = append(rep.Rows, r.Row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Cell < rep.Rows[j].Cell })
	return rep, nil
}

// verifyShardRow re-derives a row's content addresses and checks key ↔
// row agreement.
func verifyShardRow(r ShardRow) error {
	key, err := ParseCellKey(r.Key)
	if err != nil {
		return mergeErrf("cell %d (shard %s): key: %v", r.Cell, r.shardLabel, err)
	}
	row := r.Row
	if row.Cell != r.Cell {
		return mergeErrf("cell %d (shard %s): row labels itself cell %d", r.Cell, r.shardLabel, row.Cell)
	}
	if key.Scenario != row.Scenario || key.Engine != row.Engine || key.Topology != row.Topology ||
		key.N != row.N || key.Ell != row.Ell || key.Seed != row.Seed || key.Replicates != row.Replicates {
		return mergeErrf("cell %d (shard %s): key %q disagrees with its row (scenario=%s engine=%s topology=%s n=%d ell=%d seed=%d replicates=%d)",
			r.Cell, r.shardLabel, r.Key, row.Scenario, row.Engine, row.Topology, row.N, row.Ell, row.Seed, row.Replicates)
	}
	body, err := sweepRowBody(row)
	if err != nil {
		return mergeErrf("cell %d (shard %s): %v", r.Cell, r.shardLabel, err)
	}
	if got := serve.HashHex(string(body)); got != r.Digest {
		return mergeErrf("cell %d (shard %s): digest %s does not match the row body (%s) — artifact corrupt or edited", r.Cell, r.shardLabel, r.Digest, got)
	}
	return nil
}
