package passivespread

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"passivespread/internal/serve"
)

func TestParseShard(t *testing.T) {
	valid := map[string]Shard{
		"1/1":   {1, 1},
		"1/4":   {1, 4},
		"4/4":   {4, 4},
		"7/128": {7, 128},
	}
	for s, want := range valid {
		got, err := ParseShard(s)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("ParseShard(%q).String() = %q", s, got.String())
		}
	}
	invalid := []string{
		"", "1", "/", "1/", "/4", "0/4", "5/4", "1/0", "-1/4", "1/-4",
		"+1/4", "1/+4", "1/4/2", "a/b", " 1/4", "1/4 ", "1 /4", "1/ 4",
		"1.5/4", "0x1/4",
	}
	for _, s := range invalid {
		if sh, err := ParseShard(s); err == nil {
			t.Errorf("ParseShard(%q) = %v, want error", s, sh)
		} else if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("ParseShard(%q) error %v is not typed ErrInvalidOptions", s, err)
		}
	}
}

func TestNewSweepShardValidation(t *testing.T) {
	for _, sh := range []Shard{{0, 4}, {5, 4}, {1, 0}, {-1, -1}} {
		spec := smallSweepSpec(1)
		spec.Shard = sh
		if _, err := NewSweep(spec); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("NewSweep with shard %+v: err = %v, want ErrInvalidOptions", sh, err)
		}
	}
}

// TestShardPartition pins the partition law: shard i of m owns exactly
// the cells c with c mod m == i−1, the shards are disjoint, their
// union is the grid, and the cells a shard reports carry full-grid
// indices and seeds.
func TestShardPartition(t *testing.T) {
	spec := smallSweepSpec(1) // 8 cells
	full, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := full.Cells()
	const m = 3
	owned := map[int]int{}
	for i := 1; i <= m; i++ {
		sharded := spec
		sharded.Shard = Shard{Index: i, Count: m}
		sw, err := NewSweep(sharded)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(rep.Rows), sw.PlannedCells(); got != want {
			t.Fatalf("shard %d/%d: %d rows, planned %d", i, m, got, want)
		}
		if rep.Cells != len(cells) {
			t.Fatalf("shard %d/%d: report.Cells = %d, want full grid %d", i, m, rep.Cells, len(cells))
		}
		for _, row := range rep.Rows {
			if row.Cell%m != i-1 {
				t.Fatalf("shard %d/%d ran cell %d outside its partition class", i, m, row.Cell)
			}
			if prev, dup := owned[row.Cell]; dup {
				t.Fatalf("cell %d ran on shards %d and %d", row.Cell, prev, i)
			}
			owned[row.Cell] = i
			if row.Seed != cells[row.Cell].Seed {
				t.Fatalf("shard %d/%d cell %d seed %d, want full-grid seed %d", i, m, row.Cell, row.Seed, cells[row.Cell].Seed)
			}
		}
	}
	if len(owned) != len(cells) {
		t.Fatalf("shards covered %d of %d cells", len(owned), len(cells))
	}
}

// TestShardOneEqualsUnsharded: m = 1 is the unsharded sweep,
// byte-for-byte.
func TestShardOneEqualsUnsharded(t *testing.T) {
	spec := smallSweepSpec(2)
	unsharded := runSweep(t, spec).CSV()
	spec.Shard = Shard{Index: 1, Count: 1}
	sharded := runSweep(t, spec).CSV()
	if unsharded != sharded {
		t.Fatalf("shard 1/1 CSV differs from unsharded:\n%s\nvs\n%s", sharded, unsharded)
	}
}

// TestShardCountBeyondCells: with m larger than the grid, high shards
// own nothing and still run (and merge) cleanly.
func TestShardCountBeyondCells(t *testing.T) {
	spec := SweepSpec{
		Ns:         []int{64, 128},
		Engines:    []EngineKind{EngineMarkovChain},
		Scenarios:  mustScenarios("worst-case"),
		Replicates: 2,
		Seed:       7,
	} // 2 cells
	single := runSweep(t, spec)
	const m = 5
	var artifacts []*ShardArtifact
	empty := 0
	for i := 1; i <= m; i++ {
		sharded := spec
		sharded.Shard = Shard{Index: i, Count: m}
		sw, err := NewSweep(sharded)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, m, err)
		}
		if len(rep.Rows) == 0 {
			empty++
			if got := rep.CSV(); !strings.HasPrefix(got, "cell,") || strings.Count(got, "\n") != 1 {
				t.Fatalf("empty shard CSV should be header-only, got %q", got)
			}
		}
		art, err := sw.ShardArtifact(rep)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, art)
	}
	if empty != m-2 {
		t.Fatalf("%d empty shards, want %d", empty, m-2)
	}
	merged, err := MergeShards(artifacts, true)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CSV() != single.CSV() {
		t.Fatalf("merged CSV differs from single runner")
	}
}

// TestMergeShardsByteIdentical is the fabric's headline contract: for
// any shard count, joining the shard artifacts reproduces the
// single-runner CSV and JSON byte for byte.
func TestMergeShardsByteIdentical(t *testing.T) {
	spec := smallSweepSpec(0) // 8 cells, default pool
	single := runSweep(t, spec)
	singleCSV := single.CSV()
	singleJSON, err := single.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 2, 4, 8} {
		var artifacts []*ShardArtifact
		for i := 1; i <= m; i++ {
			sharded := spec
			sharded.Shard = Shard{Index: i, Count: m}
			sharded.Workers = 1 + i%3 // shards at different pool sizes still merge identically
			sw, err := NewSweep(sharded)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sw.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			art, err := sw.ShardArtifact(rep)
			if err != nil {
				t.Fatal(err)
			}
			artifacts = append(artifacts, art)
		}
		// Artifacts round-trip through their wire form, as in CI.
		for j, a := range artifacts {
			data, err := a.JSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseShardArtifact(data)
			if err != nil {
				t.Fatalf("m=%d shard %d: %v", m, j+1, err)
			}
			artifacts[j] = back
		}
		merged, err := MergeShards(artifacts, true)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if merged.CSV() != singleCSV {
			t.Fatalf("m=%d: merged CSV differs from single runner", m)
		}
		mergedJSON, err := merged.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(mergedJSON) != string(singleJSON) {
			t.Fatalf("m=%d: merged JSON differs from single runner", m)
		}
	}
}

// chainShardArtifacts builds a fresh 2-shard split of a 3-cell chain
// grid for tamper tests (regenerated per case so mutations don't leak).
func chainShardArtifacts(t *testing.T) []*ShardArtifact {
	t.Helper()
	spec := SweepSpec{
		Ns:         []int{64, 128, 256},
		Engines:    []EngineKind{EngineMarkovChain},
		Scenarios:  mustScenarios("worst-case"),
		Replicates: 2,
		Seed:       13,
	}
	var artifacts []*ShardArtifact
	for i := 1; i <= 2; i++ {
		sharded := spec
		sharded.Shard = Shard{Index: i, Count: 2}
		sw, err := NewSweep(sharded)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		art, err := sw.ShardArtifact(rep)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, art)
	}
	return artifacts
}

func TestMergeShardsDetectsConflicts(t *testing.T) {
	cases := []struct {
		name   string
		verify bool
		mutate func([]*ShardArtifact) []*ShardArtifact
		want   string
	}{
		{"no artifacts", false, func(a []*ShardArtifact) []*ShardArtifact { return nil }, "no artifacts"},
		{"stale version", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[1].Version = "fetshard/v0"
			return a
		}, "version"},
		{"header disagreement", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[1].Seed++
			return a
		}, "disagrees"},
		{"malformed shard", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Shard = "one/two"
			return a
		}, "shard"},
		{"shard count disagreement", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[1].Shard = "2/3"
			return a
		}, "disagrees with count"},
		{"overlapping shards", false, func(a []*ShardArtifact) []*ShardArtifact {
			return []*ShardArtifact{a[0], a[0], a[1]}
		}, "overlapping shards"},
		{"missing shard", false, func(a []*ShardArtifact) []*ShardArtifact {
			return a[:1]
		}, "missing shard 2/2"},
		{"cell outside grid", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Rows[0].Cell = 99
			a[0].Rows[0].Row.Cell = 99
			return a
		}, "outside grid"},
		{"cell in wrong partition class", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Rows = append(a[0].Rows, a[1].Rows[0])
			return a
		}, "belongs to shard"},
		{"duplicate cell", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Rows = append(a[0].Rows, a[0].Rows[0])
			return a
		}, "overlapping coverage"},
		{"incomplete coverage", false, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Rows = a[0].Rows[:1]
			return a
		}, "incomplete coverage"},
		{"tampered row body", true, func(a []*ShardArtifact) []*ShardArtifact {
			a[1].Rows[0].Row.Mean++
			return a
		}, "digest"},
		{"key/row disagreement", true, func(a []*ShardArtifact) []*ShardArtifact {
			// Recompute the digest so only the key check can catch it.
			a[1].Rows[0].Row.Seed++
			body, err := sweepRowBody(a[1].Rows[0].Row)
			if err != nil {
				panic(err)
			}
			a[1].Rows[0].Digest = serve.HashHex(string(body))
			return a
		}, "disagrees with its row"},
		{"unparseable key", true, func(a []*ShardArtifact) []*ShardArtifact {
			a[0].Rows[0].Key = "fetcell/v1 garbage"
			return a
		}, "key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			artifacts := tc.mutate(chainShardArtifacts(t))
			_, err := MergeShards(artifacts, tc.verify)
			if err == nil {
				t.Fatal("merge succeeded")
			}
			if !errors.Is(err, ErrShardMerge) {
				t.Fatalf("error %v is not typed ErrShardMerge", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Structural-only merge accepts what -verify rejects: the digest
	// tamper is invisible without content-address verification.
	artifacts := chainShardArtifacts(t)
	artifacts[1].Rows[0].Row.Mean++
	if _, err := MergeShards(artifacts, false); err != nil {
		t.Fatalf("structural merge rejected a digest-only tamper: %v", err)
	}
}

// TestSweepCheckpointResume is the durability contract: a run killed
// mid-grid (modeled by context cancellation, which like SIGKILL leaves
// only completed-cell envelopes behind) resumes from its checkpoint
// directory to output byte-identical to an uninterrupted run.
func TestSweepCheckpointResume(t *testing.T) {
	spec := smallSweepSpec(2)
	clean := runSweep(t, spec).CSV()

	dir := t.TempDir()
	ck := spec
	ck.CheckpointDir = dir
	interrupted, err := NewSweep(ck)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	for range interrupted.Stream(ctx) {
		if delivered++; delivered == 3 {
			cancel() // kill mid-grid: 3 of 8 cells delivered (and checkpointed)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 || len(files) >= 8 {
		t.Fatalf("interrupted run left %d checkpoints, want in [3, 8)", len(files))
	}

	resumed := runSweep(t, ck).CSV()
	if resumed != clean {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", resumed, clean)
	}
}

// TestSweepCheckpointSkipsCompletedCells proves resume actually skips:
// a second run over a fully checkpointed grid rewrites nothing (every
// fresh completion writes its envelope before delivery, so untouched
// mtimes mean no cell re-ran) and reproduces the rows exactly.
func TestSweepCheckpointSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	spec := smallSweepSpec(4)
	spec.CheckpointDir = dir
	first := runSweep(t, spec)
	mtimes := checkpointMTimes(t, dir)
	if len(mtimes) != 8 {
		t.Fatalf("%d checkpoints after full run, want 8", len(mtimes))
	}

	second := runSweep(t, spec)
	if !reflect.DeepEqual(first.Rows, second.Rows) {
		t.Fatal("resumed rows differ from first run")
	}
	for name, mt := range checkpointMTimes(t, dir) {
		if !mt.Equal(mtimes[name]) {
			t.Fatalf("checkpoint %s was rewritten on resume", name)
		}
	}

	// A corrupted envelope is never trusted: the cell re-runs and the
	// rows still match.
	var victim string
	for name := range mtimes {
		victim = name
		break
	}
	if err := os.WriteFile(filepath.Join(dir, victim), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	third := runSweep(t, spec)
	if !reflect.DeepEqual(first.Rows, third.Rows) {
		t.Fatal("rows differ after a corrupted checkpoint forced a re-run")
	}
	if checkpointMTimes(t, dir)[victim].Equal(mtimes[victim]) {
		t.Fatal("corrupted checkpoint was not rewritten")
	}
}

func checkpointMTimes(t *testing.T, dir string) map[string]time.Time {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]time.Time, len(files))
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(f)] = info.ModTime()
	}
	return out
}

// TestShardedCheckpointedSweepComposes runs the full fabric in-process:
// 4 checkpointed shard runners (one resumed after an interruption),
// artifacts merged with verification, output byte-identical to one
// runner.
func TestShardedCheckpointedSweepComposes(t *testing.T) {
	spec := smallSweepSpec(2)
	single := runSweep(t, spec).CSV()
	const m = 4
	var artifacts []*ShardArtifact
	for i := 1; i <= m; i++ {
		sharded := spec
		sharded.Shard = Shard{Index: i, Count: m}
		sharded.CheckpointDir = filepath.Join(t.TempDir(), fmt.Sprintf("shard-%d", i))
		if i == 1 {
			// Interrupt shard 1 immediately; its real run below resumes.
			sw, err := NewSweep(sharded)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			for range sw.Stream(ctx) {
				cancel()
			}
			cancel()
		}
		sw, err := NewSweep(sharded)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sw.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		art, err := sw.ShardArtifact(rep)
		if err != nil {
			t.Fatal(err)
		}
		artifacts = append(artifacts, art)
	}
	merged, err := MergeShards(artifacts, true)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CSV() != single {
		t.Fatal("fabric output differs from single runner")
	}
}
