package passivespread

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"passivespread/internal/adversary"
	"passivespread/internal/markov"
	"passivespread/internal/rng"
	"passivespread/internal/sim"
	"passivespread/internal/stats"
)

// StudySpec describes a batch of replicate simulations: R independent
// runs of one configuration, differing only in their derived seeds.
type StudySpec struct {
	// Replicates is the number of independent runs (required, ≥ 1).
	Replicates int
	// Workers bounds the replicate worker pool (0 = GOMAXPROCS). The
	// worker count affects scheduling only: replicate seeds derive from
	// (root seed, replicate index) alone, so results are bit-identical at
	// every parallelism level.
	Workers int
	// Batch is the lockstep width W: each worker runs up to W replicates
	// word-parallel through one transposed executor when the replicate
	// configuration supports it (complete topology, trend-rule protocol,
	// agent engines; see the sim package's lockstep executor), falling
	// back to sequential per-replicate runs otherwise. 0 or 1 disables
	// batching; the maximum is MaxBatch (one replicate per bit of a
	// uint64 word). Like Workers, Batch affects scheduling only: reports
	// are bit-identical at every Workers × Batch combination. The
	// EngineMarkovChain form ignores Batch.
	Batch int
	// Options is the per-replicate template for the common case (FET
	// under the worst-case defaults). Options.Seed is the study's root
	// seed: replicate i runs with StreamSeed(Seed, i).
	Options Options
	// Config, when non-nil, bypasses Options entirely and uses this
	// sim-level configuration as the replicate template — full control
	// over protocol, initializer, noise, and engine (except
	// EngineMarkovChain, which only the Options form supports).
	// Config.Seed is the root seed. Config.Observers is allowed only for
	// a single replicate: observers are stateful and replicates run
	// concurrently, so batches must use Observe instead.
	Config *Config
	// Observe, when non-nil, is called once per replicate (from the
	// replicate's worker goroutine) and returns the observers attached to
	// that replicate's run, so per-round visibility composes with the
	// concurrent worker pool: each replicate gets its own instances.
	// Returning nil attaches none. Observers must not mutate shared
	// state without their own synchronization.
	Observe func(replicate int) []Observer
}

// MaxBatch is the largest StudySpec.Batch (and SweepSpec.Batch) width:
// the lockstep executor packs one replicate per bit of a uint64 word.
const MaxBatch = 64

// StreamSeed exposes the repository's SplitMix64 stream-derivation rule:
// replicate i of a Study with root seed s runs with StreamSeed(s, i).
// The derived value identifies a replicate's randomness (RunResult.Seed
// reports it) and lets external tooling pre-compute or verify replicate
// seeds. Note that re-running NewStudy with a derived value as the root
// is NOT the same replicate (the single replicate would derive again):
// to reproduce replicate i exactly, re-run the same spec — any worker
// count — and read Results[i].
func StreamSeed(seed, stream uint64) uint64 { return rng.StreamSeed(seed, stream) }

// RunResult is one replicate's outcome, as streamed by Study.Stream.
type RunResult struct {
	// Replicate is the replicate index in [0, Replicates).
	Replicate int
	// Seed is the derived seed the replicate ran with.
	Seed uint64
	// Result is the simulation outcome (zero when Err is non-nil).
	Result Result
	// Err is the replicate's failure, if any. A cancelled context
	// surfaces here as ctx.Err() for replicates interrupted mid-run.
	Err error
}

// ConvergenceStats aggregates replicate convergence outcomes (success
// rate plus a full Summary of the convergence times).
type ConvergenceStats = stats.Convergence

// Summary holds descriptive statistics of a sample (mean, quantiles,
// extremes).
type Summary = stats.Summary

// StudyReport is the aggregate output of Study.Run.
type StudyReport struct {
	// Convergence aggregates t_con across replicates: success rate, and
	// mean/median/quantiles of the convergence times with non-converged
	// replicates censored at their executed round count.
	Convergence ConvergenceStats
	// Results holds the per-replicate outcomes ordered by replicate
	// index — byte-identical for any StudySpec.Workers value.
	Results []RunResult
}

// Study is a prepared batch of replicate simulations. Construct with
// NewStudy; run with Run (aggregate report) or Stream (results as they
// finish).
type Study struct {
	replicates int
	workers    int
	batch      int
	rootSeed   uint64
	observe    func(replicate int) []Observer

	// pool leases per-replicate round executors: every O(n) buffer (the
	// packed opinion bitsets, per-agent RNG states, resettable agent
	// objects, topology adjacency and View scratch) is reused across the
	// study's replicates instead of reallocated, with bit-identical
	// results. Idle executors are released when a Run/Stream finishes.
	pool *sim.Pool

	// Agent-level template (nil chain fields), or chain parameters.
	cfg   Config
	chain bool
	// chainN, chainEll, chainCap parameterize EngineMarkovChain
	// replicates; the chain starts at grid point (chainX0, chainX1).
	chainN, chainEll, chainCap int
	chainX0, chainX1           float64
	chainTrajectory            bool
}

// NewStudy validates spec and returns a runnable Study. Validation
// failures wrap ErrInvalidOptions.
func NewStudy(spec StudySpec) (*Study, error) {
	if spec.Replicates < 1 {
		return nil, fmt.Errorf("%w: Replicates: %d, want ≥ 1", ErrInvalidOptions, spec.Replicates)
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers: %d, want ≥ 0", ErrInvalidOptions, spec.Workers)
	}
	if spec.Batch < 0 || spec.Batch > MaxBatch {
		return nil, fmt.Errorf("%w: Batch: %d, want 0…%d", ErrInvalidOptions, spec.Batch, MaxBatch)
	}
	batch := spec.Batch
	if batch == 0 {
		batch = 1
	}
	if batch > spec.Replicates {
		batch = spec.Replicates
	}
	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Replicates {
		workers = spec.Replicates
	}
	s := &Study{replicates: spec.Replicates, workers: workers, batch: batch, observe: spec.Observe}

	if spec.Config != nil {
		if spec.Config.Engine == EngineMarkovChain {
			return nil, fmt.Errorf("%w: Config: EngineMarkovChain requires the Options form of StudySpec", ErrInvalidOptions)
		}
		if len(spec.Config.Observers) > 0 && spec.Replicates > 1 {
			return nil, fmt.Errorf("%w: Config.Observers: shared state; use StudySpec.Observe for %d replicates",
				ErrInvalidOptions, spec.Replicates)
		}
		s.cfg = *spec.Config
		s.rootSeed = spec.Config.Seed
		if err := s.cfg.Validate(); err != nil {
			return nil, fmt.Errorf("%w: Config: %v", ErrInvalidOptions, err)
		}
		s.pool = sim.NewPool()
		return s, nil
	}

	if spec.Options.Engine == EngineMarkovChain {
		if spec.Observe != nil {
			return nil, fmt.Errorf("%w: Observe: EngineMarkovChain does not deliver round events", ErrInvalidOptions)
		}
		return s.withChain(spec.Options)
	}
	cfg, err := spec.Options.config()
	if err != nil {
		return nil, err
	}
	s.cfg = cfg
	s.rootSeed = spec.Options.Seed
	s.pool = sim.NewPool()
	return s, nil
}

// withChain derives the Markov-chain replicate parameters from opts. The
// chain models one source and is opinion-symmetric, so CorrectZero has no
// observable effect and results are reported as if the correct opinion
// were 1.
func (s *Study) withChain(opts Options) (*Study, error) {
	ell, maxRounds, err := opts.derive()
	if err != nil {
		return nil, err
	}
	if opts.Sources > 1 {
		return nil, fmt.Errorf("%w: Sources: EngineMarkovChain models exactly one source, got %d",
			ErrInvalidOptions, opts.Sources)
	}
	correct := OpinionOne
	if opts.CorrectZero {
		correct = OpinionZero
	}
	x0, x1, err := chainStart(opts.Init, correct)
	if err != nil {
		return nil, err
	}
	s.chain = true
	s.rootSeed = opts.Seed
	s.chainN = opts.N
	s.chainEll = ell
	s.chainCap = maxRounds
	s.chainX0, s.chainX1 = x0, x1
	s.chainTrajectory = opts.RecordTrajectory
	return s, nil
}

// chainStart maps an Options initializer onto the chain's grid start
// (x_t, x_{t+1}), expressed as fractions of CORRECT opinions (the chain
// reports as if the correct opinion were 1, so a Fraction of 1-opinions
// mirrors when the correct opinion is 0). AllWrong/AllCorrect carry
// their own Correct field: relative to the study's correct opinion,
// AllWrong(correct) starts everyone wrong but AllWrong(1−correct)
// starts everyone right. The chain carries no per-agent state, so only
// initializers with a deterministic opinion fraction are supported.
func chainStart(init Initializer, correct byte) (x0, x1 float64, err error) {
	switch v := init.(type) {
	case nil:
		return 0, 0, nil // the all-wrong worst case
	case adversary.AllWrong:
		if v.Correct != correct {
			// "Wrong" relative to the other opinion = everyone correct.
			return 1, 1, nil
		}
		return 0, 0, nil
	case adversary.AllCorrect:
		if v.Correct != correct {
			return 0, 0, nil
		}
		return 1, 1, nil
	case adversary.Fraction:
		x := v.X
		if correct == OpinionZero {
			x = 1 - x
		}
		return x, x, nil
	default:
		return 0, 0, fmt.Errorf("%w: Init: initializer %q is not supported by EngineMarkovChain",
			ErrInvalidOptions, init.Name())
	}
}

// Replicates returns the number of replicates the study will run.
func (s *Study) Replicates() int { return s.replicates }

// Workers returns the resolved worker-pool size.
func (s *Study) Workers() int { return s.workers }

// Stream starts the study and returns a channel delivering each
// replicate's RunResult as it finishes (completion order; per-replicate
// content is deterministic regardless of order). The channel is closed
// once every replicate has been delivered or the context has ended;
// after cancellation, undelivered replicates are dropped and in-flight
// ones finish within one simulated round. The caller must drain the
// channel or cancel ctx, or the worker pool leaks.
func (s *Study) Stream(ctx context.Context) <-chan RunResult {
	batch := s.batch
	if s.chain || batch < 1 {
		batch = 1
	}
	out := make(chan RunResult)
	go func() {
		defer close(out)
		// Workers claim batch-start indices; a batch of 1 degenerates to
		// the per-replicate scheduling this loop always used.
		starts := make(chan int)
		var wg sync.WaitGroup
		workers := s.workers
		if nb := (s.replicates + batch - 1) / batch; workers > nb {
			workers = nb
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for lo := range starts {
					if batch == 1 {
						r := s.runReplicate(ctx, lo)
						select {
						case out <- r:
						case <-ctx.Done():
							return
						}
						continue
					}
					for _, r := range s.runBatch(ctx, lo, batch) {
						select {
						case out <- r:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		}
	feed:
		for i := 0; i < s.replicates; i += batch {
			select {
			case starts <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(starts)
		wg.Wait()
		// All leases are back: free the pooled executors (and stop the
		// parallel engine's persistent shard workers).
		s.release()
	}()
	return out
}

// release drops the study's idle pooled executors.
func (s *Study) release() {
	if s.pool != nil {
		s.pool.Release()
	}
}

// Run executes every replicate across the worker pool and aggregates the
// convergence statistics. The report is bit-identical for any worker
// count on a fixed root seed. Run returns ctx.Err() if the context ends
// before all replicates finish, and the first replicate error (by
// replicate index) otherwise.
func (s *Study) Run(ctx context.Context) (*StudyReport, error) {
	results := make([]RunResult, s.replicates)
	received := 0
	for r := range s.Stream(ctx) {
		results[r.Replicate] = r
		received++
	}
	if received < s.replicates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("passivespread: study lost %d of %d replicates", s.replicates-received, s.replicates)
	}

	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("replicate %d: %w", i, r.Err)
		}
	}
	times, converged := censorConvergence(results)
	return &StudyReport{
		Convergence: stats.SummarizeConvergence(times, converged),
		Results:     results,
	}, nil
}

// censorConvergence maps error-free replicate results onto the t_con
// sample aggregated by stats.SummarizeConvergence: a converged
// replicate contributes its convergence round, a non-converged one is
// censored at its executed round count. Study and Sweep both aggregate
// through this single copy of the convention.
func censorConvergence(results []RunResult) (times []float64, converged []bool) {
	times = make([]float64, len(results))
	converged = make([]bool, len(results))
	for i, r := range results {
		if r.Result.Converged {
			times[i] = float64(r.Result.Round)
			converged[i] = true
		} else {
			times[i] = float64(r.Result.Rounds)
		}
	}
	return times, converged
}

// runSingle backs the Disseminate/Run compatibility wrappers: replicate 0
// executed inline, with its error unwrapped.
func (s *Study) runSingle(ctx context.Context) (Result, error) {
	defer s.release()
	r := s.runReplicate(ctx, 0)
	return r.Result, r.Err
}

// runReplicate executes replicate i with its derived seed.
func (s *Study) runReplicate(ctx context.Context, i int) RunResult {
	seed := rng.StreamSeed(s.rootSeed, uint64(i))
	rr := RunResult{Replicate: i, Seed: seed}
	if s.chain {
		rr.Result, rr.Err = s.runChainReplicate(ctx, seed)
		return rr
	}
	cfg := s.cfg
	cfg.Seed = seed
	if s.observe != nil {
		// Fresh observer instances per replicate: the template's slice is
		// never shared across concurrently running replicates.
		cfg.Observers = append(append([]Observer(nil), cfg.Observers...), s.observe(i)...)
	}
	rr.Result, rr.Err = s.pool.RunContext(ctx, cfg)
	return rr
}

// runBatch executes replicates [lo, min(lo+batch, Replicates)) as one
// lockstep batch. Each lane keeps the exact per-replicate contract of
// runReplicate — seed StreamSeed(rootSeed, i), fresh observer instances
// from the template slice plus Observe(i) — so every RunResult is
// bit-identical to the sequential path. A batch-level rejection (which
// RunLockstep reserves for invalid configurations) surfaces on every
// lane of the batch.
func (s *Study) runBatch(ctx context.Context, lo, batch int) []RunResult {
	hi := lo + batch
	if hi > s.replicates {
		hi = s.replicates
	}
	w := hi - lo
	lanes := make([]sim.LaneRun, w)
	laneOut := make([]sim.LaneResult, w)
	for l := 0; l < w; l++ {
		i := lo + l
		lanes[l].Seed = rng.StreamSeed(s.rootSeed, uint64(i))
		if s.observe != nil || len(s.cfg.Observers) > 0 {
			lanes[l].Observers = append([]Observer(nil), s.cfg.Observers...)
			if s.observe != nil {
				lanes[l].Observers = append(lanes[l].Observers, s.observe(i)...)
			}
		}
	}
	err := s.pool.RunLockstep(ctx, s.cfg, lanes, laneOut)
	results := make([]RunResult, w)
	for l := 0; l < w; l++ {
		results[l] = RunResult{Replicate: lo + l, Seed: lanes[l].Seed}
		if err != nil {
			results[l].Err = err
			continue
		}
		results[l].Result, results[l].Err = laneOut[l].Result, laneOut[l].Err
	}
	return results
}

// runChainReplicate advances the (K_t, K_{t+1}) chain to absorption and
// reports it in the common Result shape. The context is checked after
// every chain step.
func (s *Study) runChainReplicate(ctx context.Context, seed uint64) (Result, error) {
	ch := markov.New(s.chainN, s.chainEll, seed)
	start := ch.StateAt(s.chainX0, s.chainX1)
	cres := ch.Run(markov.RunConfig{
		Start:            start,
		MaxRounds:        s.chainCap,
		RecordTrajectory: s.chainTrajectory,
		Stop:             func(int, markov.State) bool { return ctx.Err() != nil },
	})
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := Result{
		Converged: cres.Converged,
		Round:     cres.Round,
		Rounds:    cres.Rounds,
		FinalX:    float64(cres.Final.K1) / float64(s.chainN),
	}
	if s.chainTrajectory {
		// Match the agent engines' convention: the trajectory starts at
		// the initial fraction, then one entry per executed round.
		res.Trajectory = append([]float64{float64(start.K1) / float64(s.chainN)}, cres.Trajectory...)
	}
	return res, nil
}
