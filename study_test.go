package passivespread

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"passivespread/internal/rng"
	"passivespread/internal/stats"
)

func mustStudy(t *testing.T, spec StudySpec) *Study {
	t.Helper()
	study, err := NewStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	return study
}

// TestStudyDeterministicAcrossWorkers: the acceptance contract — on a
// fixed root seed, the study output is byte-identical for one worker and
// for GOMAXPROCS workers (and an awkward in-between count).
func TestStudyDeterministicAcrossWorkers(t *testing.T) {
	spec := StudySpec{
		Replicates: 24,
		Options:    Options{N: 512, Seed: 99},
	}
	var base *StudyReport
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		spec.Workers = workers
		report, err := mustStudy(t, spec).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = report
			continue
		}
		if !reflect.DeepEqual(base, report) {
			t.Fatalf("workers=%d: report differs from the single-worker run", workers)
		}
	}
	if base.Convergence.Replicates != 24 {
		t.Fatalf("aggregated %d replicates, want 24", base.Convergence.Replicates)
	}
}

// TestStudySeedContract: replicate i must run with StreamSeed(root, i),
// and feeding that seed to a direct simulation reproduces the replicate.
func TestStudySeedContract(t *testing.T) {
	const root = 1234
	report, err := mustStudy(t, StudySpec{
		Replicates: 5,
		Options:    Options{N: 256, Seed: root, RecordTrajectory: true},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range report.Results {
		if r.Replicate != i {
			t.Fatalf("result %d has replicate index %d", i, r.Replicate)
		}
		if want := rng.StreamSeed(root, uint64(i)); r.Seed != want {
			t.Fatalf("replicate %d seed = %d, want StreamSeed(root, %d) = %d", i, r.Seed, i, want)
		}
	}
	// Replicates with distinct seeds are distinct runs (overwhelmingly).
	if reflect.DeepEqual(report.Results[0].Result.Trajectory, report.Results[1].Result.Trajectory) {
		t.Fatal("replicates 0 and 1 produced identical trajectories")
	}
}

// TestStudyReportMatchesStats: the report's quantiles must agree with
// internal/stats applied to the raw per-replicate times.
func TestStudyReportMatchesStats(t *testing.T) {
	report, err := mustStudy(t, StudySpec{
		Replicates: 32,
		Options:    Options{N: 512, Seed: 7},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	times := make([]float64, 0, len(report.Results))
	converged := 0
	for _, r := range report.Results {
		if r.Result.Converged {
			converged++
			times = append(times, float64(r.Result.Round))
		} else {
			times = append(times, float64(r.Result.Rounds))
		}
	}
	want := stats.Summarize(times)
	if got := report.Convergence.Rounds; got != want {
		t.Fatalf("report summary %+v\nwant %+v", got, want)
	}
	if report.Convergence.Converged != converged {
		t.Fatalf("Converged = %d, want %d", report.Convergence.Converged, converged)
	}
	wantRate := float64(converged) / float64(len(report.Results))
	if report.Convergence.SuccessRate != wantRate {
		t.Fatalf("SuccessRate = %v, want %v", report.Convergence.SuccessRate, wantRate)
	}
}

// TestStudyCancellation: cancelling the context mid-study must surface
// ctx.Err() promptly — within one simulated round, not after the full
// batch.
func TestStudyCancellation(t *testing.T) {
	// Large population and absurd round cap: running to completion would
	// take far longer than the test timeout.
	study := mustStudy(t, StudySpec{
		Replicates: 64,
		Options: Options{
			N:         1 << 16,
			Seed:      5,
			Init:      HalfInit(), // never absorbs within the cap below
			MaxRounds: 1 << 30,
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = study.Run(ctx)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("study did not stop promptly after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", runErr)
	}
}

// TestStudyStreamDelivery: Stream must deliver every replicate exactly
// once, with deterministic per-replicate content in any arrival order.
func TestStudyStreamDelivery(t *testing.T) {
	study := mustStudy(t, StudySpec{Replicates: 16, Options: Options{N: 256, Seed: 11}})
	seen := make(map[int]RunResult)
	for r := range study.Stream(context.Background()) {
		if _, dup := seen[r.Replicate]; dup {
			t.Fatalf("replicate %d delivered twice", r.Replicate)
		}
		seen[r.Replicate] = r
	}
	if len(seen) != 16 {
		t.Fatalf("received %d replicates, want 16", len(seen))
	}
	for i, r := range seen {
		if r.Err != nil {
			t.Fatalf("replicate %d failed: %v", i, r.Err)
		}
	}
}

// TestStudyChainEngine: the Markov chain is a first-class study engine
// at populations no agent-level engine could reach.
func TestStudyChainEngine(t *testing.T) {
	report, err := mustStudy(t, StudySpec{
		Replicates: 8,
		Options: Options{
			N:      100_000_000,
			Seed:   3,
			Engine: EngineMarkovChain,
		},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Convergence.SuccessRate != 1 {
		t.Fatalf("chain study success rate %v, want 1", report.Convergence.SuccessRate)
	}
	if report.Convergence.Rounds.Max <= 0 {
		t.Fatalf("chain study times %+v", report.Convergence.Rounds)
	}
	for _, r := range report.Results {
		if r.Result.FinalX != 1 {
			t.Fatalf("replicate %d final x = %v", r.Replicate, r.Result.FinalX)
		}
	}
}

// TestStudyChainInitCorrectField: AllWrong/AllCorrect are relative to
// their own Correct field. "All wrong" against the opposite opinion
// means everyone already holds the study's correct opinion, and the
// chain must see that benign start exactly like the agent engines do —
// not silently run the worst case.
func TestStudyChainInitCorrectField(t *testing.T) {
	report, err := mustStudy(t, StudySpec{
		Replicates: 4,
		Options: Options{
			N:           1 << 15,
			Seed:        2,
			CorrectZero: true,
			Init:        AllWrong(OpinionOne), // wrong vs 1 = all on 0 = all correct
			Engine:      EngineMarkovChain,
		},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if max := report.Convergence.Rounds.Max; max > 2 {
		t.Fatalf("benign start took %v rounds; chain treated it as the worst case", max)
	}
	// And the true worst case stays the worst case.
	worst, err := mustStudy(t, StudySpec{
		Replicates: 4,
		Options: Options{
			N:           1 << 15,
			Seed:        2,
			CorrectZero: true,
			Init:        AllWrong(OpinionZero),
			Engine:      EngineMarkovChain,
		},
	}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if worst.Convergence.Rounds.Median <= report.Convergence.Rounds.Max {
		t.Fatalf("worst-case median %v not above benign max %v",
			worst.Convergence.Rounds.Median, report.Convergence.Rounds.Max)
	}
}

// TestStudyChainDeterministicAcrossWorkers: determinism holds for the
// chain engine too.
func TestStudyChainDeterministicAcrossWorkers(t *testing.T) {
	spec := StudySpec{
		Replicates: 12,
		Options:    Options{N: 1 << 20, Seed: 21, Engine: EngineMarkovChain, RecordTrajectory: true},
	}
	spec.Workers = 1
	a, err := mustStudy(t, spec).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spec.Workers = runtime.GOMAXPROCS(0)
	b, err := mustStudy(t, spec).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("chain study differs across worker counts")
	}
}

// TestNewStudyValidation: malformed specs fail fast with typed errors.
func TestNewStudyValidation(t *testing.T) {
	cases := []struct {
		name string
		spec StudySpec
	}{
		{"zero replicates", StudySpec{Options: Options{N: 64, Seed: 1}}},
		{"negative workers", StudySpec{Replicates: 1, Workers: -1, Options: Options{N: 64}}},
		{"tiny population", StudySpec{Replicates: 1, Options: Options{N: 1}}},
		{"negative rounds", StudySpec{Replicates: 1, Options: Options{N: 64, MaxRounds: -1}}},
		{"negative ell", StudySpec{Replicates: 1, Options: Options{N: 64, Ell: -3}}},
		{"sources out of range", StudySpec{Replicates: 1, Options: Options{N: 64, Sources: 64}}},
		{"chain via config", StudySpec{Replicates: 1, Config: &Config{N: 64, Engine: EngineMarkovChain}}},
		{"chain multi source", StudySpec{Replicates: 1, Options: Options{N: 64, Sources: 2, Engine: EngineMarkovChain}}},
		{"chain uniform init", StudySpec{Replicates: 1, Options: Options{N: 64, Init: UniformInit(), Engine: EngineMarkovChain}}},
		{"chain with observe", StudySpec{Replicates: 1,
			Options: Options{N: 64, Engine: EngineMarkovChain},
			Observe: func(int) []Observer { return nil }}},
		{"shared observers in batch", StudySpec{Replicates: 2, Config: &Config{
			N: 64, Protocol: NewFET(8), Init: HalfInit(), MaxRounds: 100,
			Observers: []Observer{&TrajectoryRecorder{}},
		}}},
	}
	for _, tc := range cases {
		if _, err := NewStudy(tc.spec); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: err = %v, want ErrInvalidOptions", tc.name, err)
		}
	}
}

// TestDisseminateInvalidOptionsTyped: the one-shot wrapper reports the
// same typed validation error, fixing the old silent MaxRounds=0 edge,
// and rejects the Study-only chain pseudo-engine.
func TestDisseminateInvalidOptionsTyped(t *testing.T) {
	_, err := Disseminate(Options{N: 1, Seed: 1})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	_, err = Disseminate(Options{N: 512, MaxRounds: -5})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	_, err = Disseminate(Options{N: 512, Engine: EngineMarkovChain})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("chain via Disseminate: err = %v, want ErrInvalidOptions", err)
	}
}

// TestStudyObserveFactory: per-replicate observers get their own
// instances, composing with the concurrent worker pool.
func TestStudyObserveFactory(t *testing.T) {
	const replicates = 12
	recorders := make([]*TrajectoryRecorder, replicates)
	study := mustStudy(t, StudySpec{
		Replicates: replicates,
		Workers:    4,
		Options:    Options{N: 256, Seed: 17},
		Observe: func(i int) []Observer {
			recorders[i] = &TrajectoryRecorder{}
			return []Observer{recorders[i]}
		},
	})
	report, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recorders {
		if rec == nil {
			t.Fatalf("replicate %d never got its observer", i)
		}
		if got, want := len(rec.Xs), report.Results[i].Result.Rounds; got != want {
			t.Fatalf("replicate %d recorded %d rounds, executed %d", i, got, want)
		}
	}
}

// TestRunContextCancelledRoot: the root single-run context wrapper
// honors cancellation like the batch path.
func TestRunContextCancelledRoot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		N:         1 << 14,
		Protocol:  NewFET(SampleSize(1 << 14)),
		Init:      HalfInit(),
		Correct:   OpinionOne,
		Seed:      1,
		MaxRounds: 1 << 20,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParseEngineChain: the root-level engine namespace covers the chain.
func TestParseEngineChain(t *testing.T) {
	k, err := ParseEngine("chain")
	if err != nil || k != EngineMarkovChain {
		t.Fatalf("ParseEngine(chain) = %v, %v", k, err)
	}
	if got := EngineName(k); got != "markov-chain" {
		t.Fatalf("EngineName = %q", got)
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("ParseEngine(bogus) should fail")
	}
	for _, name := range []string{"fast", "exact", "parallel", "aggregate"} {
		if _, err := ParseEngine(name); err != nil {
			t.Fatalf("ParseEngine(%s): %v", name, err)
		}
	}
}
