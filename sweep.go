package passivespread

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"passivespread/internal/checkpoint"
	"passivespread/internal/rng"
	"passivespread/internal/stats"
	"passivespread/internal/topo"
)

// SweepSpec describes a parameter grid: the cross-product of the
// population, sample-size, engine, topology, and scenario axes, with
// Replicates independent runs per cell. A Sweep is the batch layer above Study —
// where a Study answers "what does this configuration do", a Sweep
// answers "what does the phase diagram look like".
//
// Cells expand in a fixed, documented order (see NewSweep) and cell c's
// study runs with root seed StreamSeed(Seed, c), from which replicate i
// derives StreamSeed(StreamSeed(Seed, c), i) — the repository's single
// SplitMix64 stream rule, applied twice. Seeds depend only on (root
// seed, cell index, replicate index), never on scheduling, so a sweep's
// rows are bit-identical at every Workers value.
type SweepSpec struct {
	// Ns is the population-size axis (required, each ≥ 2, no duplicates).
	Ns []int
	// Ells is the per-half sample-size axis. An entry of 0 selects the
	// default ℓ = ⌈c·log₂ n⌉ for each cell's n. Nil means [0].
	Ells []int
	// C overrides the sample-size constant used when an Ells entry is 0
	// (0 = DefaultC; must be positive otherwise).
	C float64
	// Engines is the engine axis (nil = [EngineAgentFast]). Scenarios
	// with a custom runner define their own scheduling and require this
	// axis to have at most one entry.
	Engines []EngineKind
	// Topologies is the observation-topology axis (nil = [complete],
	// the paper's uniform mixing). Non-complete entries require agent
	// engines: crossing them with EngineAggregate or EngineMarkovChain,
	// with a custom-runner scenario, or with a scenario that pins its own
	// Topology is rejected up front with ErrInvalidOptions. Entries are
	// identified by Topology.Name() in cells, rows and artifacts.
	Topologies []Topology
	// Scenarios is the scenario axis (nil = the worst-case preset).
	// Entries need not be registered; they are validated directly.
	Scenarios []Scenario
	// Replicates is the number of runs per cell (required, ≥ 1).
	Replicates int
	// Workers bounds the sweep's one shared worker pool (0 = GOMAXPROCS).
	// Cells and replicates draw from the same budget: all
	// cells × replicates work items feed one pool, so small cells cannot
	// starve the grid and the last straggler cell still saturates the
	// hardware. Scheduling never affects results.
	Workers int
	// Batch is the per-cell lockstep width W (see StudySpec.Batch): a
	// worker claims up to W consecutive replicates of one cell and runs
	// them word-parallel when the cell's configuration supports the
	// lockstep executor, falling back to sequential runs otherwise.
	// 0 or 1 disables batching; the maximum is MaxBatch. Custom-runner
	// scenarios and EngineMarkovChain cells always run per-replicate.
	// Like Workers, Batch never affects results.
	Batch int
	// Seed is the sweep's root seed.
	Seed uint64
	// MaxRounds overrides the per-cell round cap (0 = 400·log₂ n per
	// cell).
	MaxRounds int
	// Parallelism bounds EngineAgentParallel's inner worker count per
	// replicate (0 = 1: the sweep already parallelizes across cells and
	// replicates, so inner sharding would only oversubscribe the CPUs —
	// set this explicitly to shard within replicates anyway). Any value
	// yields bit-identical results.
	Parallelism int
	// Shard restricts execution to a deterministic 1/m slice of the
	// grid: shard i of m owns every cell c with c mod m == i−1 (zero
	// value = the whole grid). Sharding only selects which cells run —
	// the grid, its cell indices, seeds, and keys stay those of the
	// full sweep — so m runners' outputs merge (MergeShards, fetmerge)
	// into bytes identical to a single runner's.
	Shard Shard
	// CheckpointDir enables durable per-cell checkpoints: each cell's
	// row is persisted to this directory (atomic JSON envelopes keyed
	// by the cell's canonical fetcell key hash) the moment the cell
	// completes, and a rerun pointed at the same directory skips every
	// validly checkpointed cell, resuming mid-grid after a crash or
	// kill to byte-identical output. "" disables checkpointing.
	// Requires every grid cell to be expressible as a canonical cell
	// key (all registered-scenario sweeps are).
	CheckpointDir string
}

// SweepCell identifies one grid cell of a prepared Sweep.
type SweepCell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Scenario is the cell's scenario name.
	Scenario string
	// Engine is the display name of what executes the cell (an engine
	// name, or a custom-runner scenario's EngineLabel).
	Engine string
	// Topology is the canonical name of the cell's observation topology
	// ("complete" under uniform mixing).
	Topology string
	// N and Ell are the resolved grid values.
	N, Ell int
	// MaxRounds is the cell's resolved round cap (the spec override, or
	// 400·log₂ n for this cell's n).
	MaxRounds int
	// Seed is the cell's derived root seed, StreamSeed(sweep seed, Index).
	Seed uint64
}

// SweepRow is one cell's aggregated outcome. Rows marshal directly to
// the sweep's CSV and JSON artifacts.
type SweepRow struct {
	// Cell is the cell index in expansion order.
	Cell int `json:"cell"`
	// Scenario, Engine and Topology name the cell's conditions.
	Scenario string `json:"scenario"`
	Engine   string `json:"engine"`
	Topology string `json:"topology"`
	// N and Ell are the resolved grid values.
	N   int `json:"n"`
	Ell int `json:"ell"`
	// Seed is the cell's derived root seed.
	Seed uint64 `json:"seed"`
	// Replicates is the number of runs aggregated.
	Replicates int `json:"replicates"`
	// Converged counts replicates that met the absorption criterion.
	Converged int `json:"converged"`
	// SuccessRate is Converged / Replicates.
	SuccessRate float64 `json:"success_rate"`
	// Mean, Median, P95 and Max summarize the replicate convergence
	// times, with non-converged replicates censored at their executed
	// round count.
	Mean   float64 `json:"mean_rounds"`
	Median float64 `json:"median_rounds"`
	P95    float64 `json:"p95_rounds"`
	Max    float64 `json:"max_rounds"`
	// Err is the first replicate failure, if any (statistics are zero
	// then). Context cancellation never surfaces here: interrupted cells
	// are dropped, not reported.
	Err string `json:"error,omitempty"`
}

// SweepReport is the aggregate output of Sweep.Run: completed rows in
// cell order plus the planned grid size.
type SweepReport struct {
	// Cells is the full grid size — also for sharded runs, whose Rows
	// hold only the shard's partition class.
	Cells int `json:"cells"`
	// Replicates is the per-cell replicate count.
	Replicates int `json:"replicates"`
	// Rows holds the completed cells ordered by cell index. After a
	// cancelled run this may be a prefix-complete subset of the grid.
	Rows []SweepRow `json:"rows"`
}

// sweepCell pairs a cell's public identity with its executable form:
// either a prepared Study (synchronous engines, chain) or a scenario
// runner with resolved parameters.
type sweepCell struct {
	meta   SweepCell
	study  *Study
	runner ScenarioRunner
	params ScenarioParams
	// batch is the cell's lockstep scheduling width (1 = per-replicate;
	// always 1 for runner and chain cells).
	batch int
}

// release frees the cell study's pooled executors once the cell's last
// replicate has been aggregated (or the sweep was cancelled).
func (c *sweepCell) release() {
	if c.study != nil {
		c.study.release()
	}
}

// runReplicate executes replicate i of the cell with its derived seed.
func (c *sweepCell) runReplicate(ctx context.Context, i int) RunResult {
	if c.study != nil {
		return c.study.runReplicate(ctx, i)
	}
	p := c.params
	p.Seed = rng.StreamSeed(c.meta.Seed, uint64(i))
	rr := RunResult{Replicate: i, Seed: p.Seed}
	rr.Result, rr.Err = c.runner(ctx, p)
	return rr
}

// runBatch executes the cell's replicates starting at lo — one lockstep
// batch for study-backed cells with a batch width, a single replicate
// otherwise.
func (c *sweepCell) runBatch(ctx context.Context, lo int) []RunResult {
	if c.batch > 1 && c.study != nil {
		return c.study.runBatch(ctx, lo, c.batch)
	}
	return []RunResult{c.runReplicate(ctx, lo)}
}

// Sweep is a prepared parameter grid. Construct with NewSweep; run with
// Run (ordered report) or Stream (rows as cells finish).
type Sweep struct {
	cells      []sweepCell
	replicates int
	workers    int
	seed       uint64
	shard      Shard
	planned    []int // cell indices this shard owns, ascending

	ckpt    *checkpoint.Store
	keys    []string // canonical cell keys, set iff ckpt != nil
	ckptMu  sync.Mutex
	ckptErr error
}

// NewSweep validates spec, expands the grid, and prepares every cell
// (all per-cell validation happens here, not mid-run).
//
// Cells expand scenario-major: for each scenario, for each engine, for
// each topology, for each n, for each ℓ — so cell index =
// (((s·|Engines| + e)·|Topologies| + t)·|Ns| + n)·|Ells| + ℓ in axis
// order. The expansion order is part of the seed contract: reordering
// axis values re-seeds cells, while changing Replicates, Workers, or
// axis *lengths elsewhere in the grid* does not affect a cell with the
// same index. A nil Topologies axis is the singleton [complete], so
// pre-topology sweeps keep their exact cell indices and seeds.
func NewSweep(spec SweepSpec) (*Sweep, error) {
	if spec.Replicates < 1 {
		return nil, fmt.Errorf("%w: Replicates: %d, want ≥ 1", ErrInvalidOptions, spec.Replicates)
	}
	if spec.Workers < 0 {
		return nil, fmt.Errorf("%w: Workers: %d, want ≥ 0", ErrInvalidOptions, spec.Workers)
	}
	if spec.Batch < 0 || spec.Batch > MaxBatch {
		return nil, fmt.Errorf("%w: Batch: %d, want 0…%d", ErrInvalidOptions, spec.Batch, MaxBatch)
	}
	if spec.MaxRounds < 0 {
		return nil, fmt.Errorf("%w: MaxRounds: %d, want ≥ 0", ErrInvalidOptions, spec.MaxRounds)
	}
	if spec.C < 0 || math.IsNaN(spec.C) {
		return nil, fmt.Errorf("%w: C: %v, want > 0 (0 = DefaultC)", ErrInvalidOptions, spec.C)
	}
	if err := spec.Shard.validate(); err != nil {
		return nil, err
	}
	if len(spec.Ns) == 0 {
		return nil, fmt.Errorf("%w: Ns: axis is empty", ErrInvalidOptions)
	}
	seenN := make(map[int]bool, len(spec.Ns))
	for _, n := range spec.Ns {
		if n < 2 {
			return nil, fmt.Errorf("%w: Ns: population size %d, want ≥ 2", ErrInvalidOptions, n)
		}
		if seenN[n] {
			return nil, fmt.Errorf("%w: Ns: duplicate population size %d", ErrInvalidOptions, n)
		}
		seenN[n] = true
	}
	ells := spec.Ells
	if len(ells) == 0 {
		ells = []int{0}
	}
	seenEll := make(map[int]bool, len(ells))
	for _, ell := range ells {
		if ell < 0 {
			return nil, fmt.Errorf("%w: Ells: sample size %d, want ≥ 0", ErrInvalidOptions, ell)
		}
		if seenEll[ell] {
			return nil, fmt.Errorf("%w: Ells: duplicate sample size %d", ErrInvalidOptions, ell)
		}
		seenEll[ell] = true
	}
	engines := spec.Engines
	if len(engines) == 0 {
		engines = []EngineKind{EngineAgentFast}
	}
	seenEng := make(map[EngineKind]bool, len(engines))
	for _, e := range engines {
		if seenEng[e] {
			return nil, fmt.Errorf("%w: Engines: duplicate engine %s", ErrInvalidOptions, EngineName(e))
		}
		seenEng[e] = true
	}
	topologies := spec.Topologies
	if len(topologies) == 0 {
		topologies = []Topology{nil} // uniform mixing, the default
	}
	anySparse := false
	seenTopo := make(map[string]bool, len(topologies))
	for _, tp := range topologies {
		name := topo.DisplayName(tp)
		if seenTopo[name] {
			return nil, fmt.Errorf("%w: Topologies: duplicate topology %q", ErrInvalidOptions, name)
		}
		seenTopo[name] = true
		if topo.IsComplete(tp) {
			for _, e := range engines {
				if e == EngineAggregateSparse {
					return nil, fmt.Errorf("%w: Engines: engine %s requires a degree-annealed sparse topology and cannot cross %q; sweep it separately",
						ErrInvalidOptions, EngineName(e), name)
				}
			}
			continue
		}
		anySparse = true
		// Engine/topology incompatibilities fail for the whole grid, up
		// front: the exact engines are exact only under uniform mixing,
		// and the sparse occupancy engine models annealed degrees only.
		_, annealed := topo.AnnealedDegree(tp)
		for _, e := range engines {
			if e == EngineAggregate || e == EngineMarkovChain {
				return nil, fmt.Errorf("%w: Engines: engine %s is exact only under uniform mixing and cannot cross topology %q; sweep it separately",
					ErrInvalidOptions, EngineName(e), name)
			}
			if e == EngineAggregateSparse && !annealed {
				return nil, fmt.Errorf("%w: Engines: engine %s models degree-annealed topologies only and cannot cross %q; sweep it separately",
					ErrInvalidOptions, EngineName(e), name)
			}
		}
	}
	scenarios := spec.Scenarios
	if len(scenarios) == 0 {
		sc, ok := ScenarioByName(DefaultScenario)
		if !ok {
			return nil, fmt.Errorf("%w: Scenarios: default scenario %q is not registered", ErrInvalidOptions, DefaultScenario)
		}
		scenarios = []Scenario{sc}
	}
	seenSc := make(map[string]bool, len(scenarios))
	for _, sc := range scenarios {
		if err := sc.validate(); err != nil {
			return nil, err
		}
		if seenSc[sc.Name] {
			return nil, fmt.Errorf("%w: Scenarios: duplicate scenario %q", ErrInvalidOptions, sc.Name)
		}
		seenSc[sc.Name] = true
		if sc.Run != nil && len(engines) > 1 {
			return nil, fmt.Errorf("%w: Scenarios: scenario %q has its own scheduler and cannot cross the engine axis %v; sweep it separately",
				ErrInvalidOptions, sc.Name, engineNames(engines))
		}
		if anySparse && sc.Run != nil {
			return nil, fmt.Errorf("%w: Scenarios: scenario %q has its own scheduler and cannot cross a non-complete topology axis; sweep it separately",
				ErrInvalidOptions, sc.Name)
		}
		if sc.Topology != nil && (anySparse || len(topologies) > 1) {
			return nil, fmt.Errorf("%w: Scenarios: scenario %q pins topology %q and cannot cross the topology axis; sweep it separately",
				ErrInvalidOptions, sc.Name, sc.Topology.Name())
		}
	}

	c := spec.C
	if c == 0 {
		c = DefaultC
	}
	parallelism := spec.Parallelism
	if parallelism == 0 {
		parallelism = 1
	}
	batch := spec.Batch
	if batch == 0 {
		batch = 1
	}
	if batch > spec.Replicates {
		batch = spec.Replicates
	}
	s := &Sweep{replicates: spec.Replicates, seed: spec.Seed, shard: spec.Shard}
	s.cells = make([]sweepCell, 0, len(scenarios)*len(engines)*len(topologies)*len(spec.Ns)*len(ells))
	for _, sc := range scenarios {
		for _, engine := range engines {
			for _, axisTopo := range topologies {
				// A scenario that pins its own topology wins; validation
				// above guarantees the axis is the default [complete] then.
				cellTopo := axisTopo
				if sc.Topology != nil {
					cellTopo = sc.Topology
				}
				for _, n := range spec.Ns {
					for _, specEll := range ells {
						idx := len(s.cells)
						ell := specEll
						if ell == 0 {
							ell = SampleSizeC(n, c)
						}
						maxRounds := spec.MaxRounds
						if maxRounds == 0 {
							maxRounds = DefaultMaxRounds(n)
						}
						cell, err := newSweepCell(idx, sc, engine, cellTopo, n, ell, maxRounds, parallelism,
							rng.StreamSeed(spec.Seed, uint64(idx)), spec.Replicates, batch)
						if err != nil {
							return nil, fmt.Errorf("cell %d (scenario %s, engine %s, topology %s, n=%d, ℓ=%d): %w",
								idx, sc.Name, EngineName(engine), topo.DisplayName(cellTopo), n, ell, err)
						}
						s.cells = append(s.cells, cell)
					}
				}
			}
		}
	}

	// The shard's share of the grid: its cell indices in ascending
	// (expansion) order. An unsharded sweep owns every cell; a shard
	// with no cells (m > grid size, high index) is a valid empty run.
	for idx := range s.cells {
		if s.shard.owns(idx) {
			s.planned = append(s.planned, idx)
		}
	}

	if spec.CheckpointDir != "" {
		keys, err := s.canonicalKeys()
		if err != nil {
			return nil, err
		}
		store, err := checkpoint.Open(spec.CheckpointDir)
		if err != nil {
			return nil, fmt.Errorf("%w: CheckpointDir: %v", ErrInvalidOptions, err)
		}
		s.keys = keys
		s.ckpt = store
	}

	workers := spec.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if total := len(s.planned) * spec.Replicates; workers > total {
		workers = total
	}
	if workers < 1 {
		workers = 1 // an empty shard still needs a well-formed (idle) pool
	}
	s.workers = workers
	return s, nil
}

// newSweepCell prepares one grid cell.
func newSweepCell(idx int, sc Scenario, engine EngineKind, cellTopo Topology, n, ell, maxRounds, parallelism int,
	cellSeed uint64, replicates, batch int) (sweepCell, error) {
	cell := sweepCell{meta: SweepCell{
		Index:     idx,
		Scenario:  sc.Name,
		Engine:    EngineName(engine),
		Topology:  topo.DisplayName(cellTopo),
		N:         n,
		Ell:       ell,
		MaxRounds: maxRounds,
		Seed:      cellSeed,
	}, batch: 1}
	switch {
	case sc.Run != nil:
		init, sources := sc.resolved()
		cell.meta.Engine = sc.EngineLabel
		if cell.meta.Engine == "" {
			cell.meta.Engine = sc.Name
		}
		cell.runner = sc.Run
		cell.params = ScenarioParams{N: n, Ell: ell, Sources: sources, MaxRounds: maxRounds, Init: init}
		return cell, nil
	case engine == EngineMarkovChain:
		if !sc.chainCompatible() {
			return cell, fmt.Errorf("%w: Scenarios: scenario %q is not expressible on the Markov-chain engine", ErrInvalidOptions, sc.Name)
		}
		study, err := NewStudy(StudySpec{
			Replicates: replicates,
			Workers:    1, // the sweep schedules replicates itself
			Options:    sc.options(n, ell, maxRounds, cellSeed),
		})
		if err != nil {
			return cell, err
		}
		cell.study = study
		return cell, nil
	default:
		cfg := sc.config(n, ell, maxRounds, engine, cellTopo, parallelism, cellSeed)
		study, err := NewStudy(StudySpec{Replicates: replicates, Workers: 1, Batch: batch, Config: &cfg})
		if err != nil {
			return cell, err
		}
		cell.study = study
		cell.batch = batch
		return cell, nil
	}
}

func engineNames(engines []EngineKind) []string {
	out := make([]string, len(engines))
	for i, e := range engines {
		out[i] = EngineName(e)
	}
	return out
}

// Cells returns the planned grid in expansion order, with each cell's
// derived seed — the sweep-level view of the seed contract.
func (s *Sweep) Cells() []SweepCell {
	out := make([]SweepCell, len(s.cells))
	for i, c := range s.cells {
		out[i] = c.meta
	}
	return out
}

// Replicates returns the per-cell replicate count.
func (s *Sweep) Replicates() int { return s.replicates }

// Workers returns the resolved shared worker-pool size.
func (s *Sweep) Workers() int { return s.workers }

// Shard returns the sweep's shard selector (zero value = whole grid).
func (s *Sweep) Shard() Shard { return s.shard }

// PlannedCells returns how many grid cells this sweep will execute —
// the whole grid unsharded, or this shard's partition class.
func (s *Sweep) PlannedCells() int { return len(s.planned) }

// CheckpointErr returns the first checkpoint-write failure of the
// current or last run, if any. Results delivered before or after the
// failure are still correct; only durability (resume skipping) is
// degraded. Run surfaces this error itself; Stream callers should
// check it after draining.
func (s *Sweep) CheckpointErr() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.ckptErr
}

// loadCheckpoint loads and verifies cell's checkpointed row: the
// envelope must be content-address-valid (checkpoint.Store.Load), and
// the row inside must describe exactly this cell — matching index,
// identity columns, seed, and replicate count. Anything less is a miss
// and the cell re-runs, which is always correct.
func (s *Sweep) loadCheckpoint(cell int) (SweepRow, bool) {
	body, ok := s.ckpt.Load(s.keys[cell])
	if !ok {
		return SweepRow{}, false
	}
	var row SweepRow
	if err := json.Unmarshal(body, &row); err != nil {
		return SweepRow{}, false
	}
	m := s.cells[cell].meta
	if row.Cell != m.Index || row.Scenario != m.Scenario || row.Engine != m.Engine ||
		row.Topology != m.Topology || row.N != m.N || row.Ell != m.Ell ||
		row.Seed != m.Seed || row.Replicates != s.replicates || row.Err != "" {
		return SweepRow{}, false
	}
	return row, true
}

// saveCheckpoint persists a completed cell's row, recording the first
// write failure instead of aborting the grid (the row itself is still
// delivered).
func (s *Sweep) saveCheckpoint(cell int, row SweepRow) {
	body, err := sweepRowBody(row)
	if err == nil {
		err = s.ckpt.Save(s.keys[cell], body)
	}
	if err != nil {
		s.ckptMu.Lock()
		if s.ckptErr == nil {
			s.ckptErr = fmt.Errorf("passivespread: sweep cell %d: %w", cell, err)
		}
		s.ckptMu.Unlock()
	}
}

// Stream starts the sweep and returns a channel delivering each cell's
// SweepRow as its last replicate finishes (completion order; row content
// is deterministic regardless of order). All planned cells × replicates
// work items feed one shared worker pool; a sharded sweep plans only
// its own partition class. With a checkpoint directory configured,
// validly checkpointed cells are delivered up front (cell order) without
// running, and every newly completed cell is durably checkpointed before
// its row is delivered. The channel is closed once every planned cell
// has been delivered or the context has ended; after cancellation,
// completed cells already streamed stand, interrupted cells are dropped,
// and in-flight replicates finish within one simulated round. The caller
// must drain the channel or cancel ctx, or the pool leaks.
func (s *Sweep) Stream(ctx context.Context) <-chan SweepRow {
	out := make(chan SweepRow)
	go func() {
		defer close(out)
		// Resume pass: planned cells with a valid checkpoint replay
		// their stored row and never enter the pool; the rest run.
		todo := s.planned
		if s.ckpt != nil {
			todo = make([]int, 0, len(s.planned))
		restore:
			for _, c := range s.planned {
				row, ok := s.loadCheckpoint(c)
				if !ok {
					todo = append(todo, c)
					continue
				}
				s.cells[c].release()
				select {
				case out <- row:
				case <-ctx.Done():
					break restore // cancelled: nothing more runs
				}
			}
			if ctx.Err() != nil {
				todo = nil
			}
		}

		// Tasks are batch-granular: a task is a cell plus the start index
		// of up to cell.batch consecutive replicates, which the claiming
		// worker runs as one lockstep batch (cells with batch 1 degenerate
		// to the historical one-replicate-per-task scheduling). Results
		// still flow back one replicate at a time.
		type task struct{ cell, rep int }
		type taskDone struct {
			cell int
			res  RunResult
		}
		tasks := make(chan task)
		results := make(chan taskDone)
		var wg sync.WaitGroup
		for w := 0; w < s.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range tasks {
					for _, res := range s.cells[t.cell].runBatch(ctx, t.rep) {
						select {
						case results <- taskDone{t.cell, res}:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		}
		go func() {
		feed:
			for _, c := range todo {
				step := s.cells[c].batch
				for r := 0; r < s.replicates; r += step {
					select {
					case tasks <- task{c, r}:
					case <-ctx.Done():
						break feed
					}
				}
			}
			close(tasks)
			wg.Wait()
			close(results)
		}()

		pending := make([][]RunResult, len(s.cells))
		remaining := make([]int, len(s.cells))
		for i := range remaining {
			remaining[i] = s.replicates
		}
		for d := range results {
			cell := d.cell
			if pending[cell] == nil {
				pending[cell] = make([]RunResult, s.replicates)
			}
			pending[cell][d.res.Replicate] = d.res
			if remaining[cell]--; remaining[cell] > 0 {
				continue
			}
			row, ok := s.row(cell, pending[cell])
			pending[cell] = nil
			// The cell's last replicate returned its leased executor
			// before its result was delivered, so the cell's pooled
			// buffers can be freed as the grid progresses.
			s.cells[cell].release()
			if !ok {
				continue // interrupted mid-run; drop, don't misreport
			}
			// Durability point: the checkpoint hits disk before the row
			// is delivered, so a consumer never sees a result the fabric
			// could lose. Rows carrying a replicate failure are not
			// persisted — a rerun re-attempts them.
			if s.ckpt != nil && row.Err == "" {
				s.saveCheckpoint(cell, row)
			}
			select {
			case out <- row:
			case <-ctx.Done():
				// The consumer may be gone; keep draining results so the
				// workers can exit.
			}
		}
		// Cancellation can leave interrupted cells with leased-and-
		// returned executors; every worker has exited, so sweep them all.
		for i := range s.cells {
			s.cells[i].release()
		}
	}()
	return out
}

// row aggregates one completed cell. It reports ok = false when a
// replicate was interrupted by context cancellation (the cell is then
// incomplete work, not a result).
func (s *Sweep) row(cell int, results []RunResult) (SweepRow, bool) {
	meta := s.cells[cell].meta
	row := SweepRow{
		Cell:       meta.Index,
		Scenario:   meta.Scenario,
		Engine:     meta.Engine,
		Topology:   meta.Topology,
		N:          meta.N,
		Ell:        meta.Ell,
		Seed:       meta.Seed,
		Replicates: s.replicates,
	}
	for i, r := range results {
		if r.Err == nil {
			continue
		}
		if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
			return SweepRow{}, false
		}
		if row.Err == "" {
			row.Err = fmt.Sprintf("replicate %d: %v", i, r.Err)
		}
	}
	if row.Err != "" {
		return row, true
	}
	times, converged := censorConvergence(results)
	conv := stats.SummarizeConvergence(times, converged)
	row.Converged = conv.Converged
	row.SuccessRate = conv.SuccessRate
	row.Mean = conv.Rounds.Mean
	row.Median = conv.Rounds.Median
	row.P95 = conv.Rounds.P95
	row.Max = conv.Rounds.Max
	return row, true
}

// Run executes the planned grid (the whole grid, or this shard's slice
// of it) across the shared worker pool and returns the rows ordered by
// cell index — bit-identical for any Workers value on a fixed root
// seed, whether cells ran fresh or replayed from checkpoints. On
// context cancellation Run returns the completed rows alongside
// ctx.Err(); on a replicate failure it returns the full report
// alongside an error naming the first failing cell; on a
// checkpoint-write failure it returns the complete report alongside
// the durability error.
func (s *Sweep) Run(ctx context.Context) (*SweepReport, error) {
	rep := &SweepReport{Cells: len(s.cells), Replicates: s.replicates}
	for row := range s.Stream(ctx) {
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Cell < rep.Rows[j].Cell })
	if len(rep.Rows) < len(s.planned) {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		return rep, fmt.Errorf("passivespread: sweep lost %d of %d planned cells", len(s.planned)-len(rep.Rows), len(s.planned))
	}
	for _, row := range rep.Rows {
		if row.Err != "" {
			return rep, fmt.Errorf("passivespread: sweep cell %d (scenario %s, engine %s, n=%d, ℓ=%d): %s",
				row.Cell, row.Scenario, row.Engine, row.N, row.Ell, row.Err)
		}
	}
	if err := s.CheckpointErr(); err != nil {
		return rep, err
	}
	return rep, nil
}

// sweepCSVHeader is the column order of the CSV artifact. The topology
// column was added with the topology axis; rows from uniform-mixing
// sweeps carry "complete" there, and all other columns are unchanged
// from the pre-topology schema.
var sweepCSVHeader = []string{
	"cell", "scenario", "engine", "topology", "n", "ell", "seed", "replicates",
	"converged", "success_rate", "mean_rounds", "median_rounds", "p95_rounds", "max_rounds", "error",
}

// WriteCSV renders the report's rows as a CSV artifact. Formatting is
// deterministic (shortest round-trip float encoding), so equal reports
// render byte-identically.
func (r *SweepReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range r.Rows {
		rec := []string{
			strconv.Itoa(row.Cell), row.Scenario, row.Engine, row.Topology,
			strconv.Itoa(row.N), strconv.Itoa(row.Ell),
			strconv.FormatUint(row.Seed, 10), strconv.Itoa(row.Replicates),
			strconv.Itoa(row.Converged), f(row.SuccessRate),
			f(row.Mean), f(row.Median), f(row.P95), f(row.Max), row.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV returns the report's CSV artifact as a string.
func (r *SweepReport) CSV() string {
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		// strings.Builder never errors; a csv quoting failure would be a
		// programming error in the renderer.
		panic(err)
	}
	return b.String()
}

// JSON returns the report as an indented JSON artifact.
func (r *SweepReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseSweepJSON parses a report rendered by SweepReport.JSON.
func ParseSweepJSON(data []byte) (*SweepReport, error) {
	var rep SweepReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("passivespread: parsing sweep JSON: %w", err)
	}
	return &rep, nil
}

// ParseSweepCSV parses rows rendered by SweepReport.WriteCSV.
func ParseSweepCSV(r io.Reader) ([]SweepRow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("passivespread: parsing sweep CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("passivespread: sweep CSV has no header")
	}
	if got, want := strings.Join(records[0], ","), strings.Join(sweepCSVHeader, ","); got != want {
		return nil, fmt.Errorf("passivespread: sweep CSV header %q, want %q", got, want)
	}
	rows := make([]SweepRow, 0, len(records)-1)
	for lineNo, rec := range records[1:] {
		if len(rec) != len(sweepCSVHeader) {
			return nil, fmt.Errorf("passivespread: sweep CSV row %d has %d fields, want %d", lineNo+2, len(rec), len(sweepCSVHeader))
		}
		var row SweepRow
		var parseErr error
		atoi := func(s string) int {
			v, err := strconv.Atoi(s)
			if err != nil && parseErr == nil {
				parseErr = err
			}
			return v
		}
		atof := func(s string) float64 {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil && parseErr == nil {
				parseErr = err
			}
			return v
		}
		row.Cell = atoi(rec[0])
		row.Scenario = rec[1]
		row.Engine = rec[2]
		row.Topology = rec[3]
		row.N = atoi(rec[4])
		row.Ell = atoi(rec[5])
		seed, err := strconv.ParseUint(rec[6], 10, 64)
		if err != nil && parseErr == nil {
			parseErr = err
		}
		row.Seed = seed
		row.Replicates = atoi(rec[7])
		row.Converged = atoi(rec[8])
		row.SuccessRate = atof(rec[9])
		row.Mean = atof(rec[10])
		row.Median = atof(rec[11])
		row.P95 = atof(rec[12])
		row.Max = atof(rec[13])
		row.Err = rec[14]
		if parseErr != nil {
			return nil, fmt.Errorf("passivespread: sweep CSV row %d: %w", lineNo+2, parseErr)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
