package passivespread

import (
	"context"
	"strings"
	"testing"
)

// seedSweepCSV renders a real two-topology sweep report once, giving the
// fuzzers a well-formed corpus entry that includes the topology column.
func seedSweepCSV(tb testing.TB) *SweepReport {
	tb.Helper()
	sweep, err := NewSweep(SweepSpec{
		Ns:         []int{64},
		Topologies: []Topology{CompleteTopology(), RandomRegular(8)},
		Replicates: 2,
		Seed:       3,
		MaxRounds:  40,
	})
	if err != nil {
		tb.Fatal(err)
	}
	rep, err := sweep.Run(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// FuzzParseSweepCSV: ParseSweepCSV must never panic, and any input it
// accepts must round-trip — rendering the parsed rows and re-parsing
// them is a fixed point (the renderer's canonical formatting absorbs
// any cosmetic variation the parser tolerated).
func FuzzParseSweepCSV(f *testing.F) {
	rep := seedSweepCSV(f)
	f.Add(rep.CSV())
	header := "cell,scenario,engine,topology,n,ell,seed,replicates,converged,success_rate,mean_rounds,median_rounds,p95_rounds,max_rounds,error"
	f.Add(header + "\n")
	f.Add(header + "\n0,worst-case,agent-fast,ring:2,64,18,1,2,2,1,4,4,4,4,\n")
	f.Add(header + "\n0,worst-case,agent-fast,complete,64,18,1,2,2,1,4,4,4,4,boom\n")
	// Malformed rows: short, long, non-numeric, bad seed, wrong header.
	f.Add(header + "\n0,worst-case\n")
	f.Add(header + "\n0,worst-case,agent-fast,complete,64,18,1,2,2,1,4,4,4,4,x,y\n")
	f.Add(header + "\nzero,worst-case,agent-fast,complete,64,18,1,2,2,1,4,4,4,4,\n")
	f.Add(header + "\n0,worst-case,agent-fast,complete,64,18,-1,2,2,1,4,4,4,4,\n")
	f.Add(header + "\n0,worst-case,agent-fast,complete,64,18,1,2,2,NaN,4,4,4,4,\n")
	f.Add("cell,scenario\n0,worst-case\n")
	f.Add("")
	f.Add("\"unterminated")

	f.Fuzz(func(t *testing.T, input string) {
		rows, err := ParseSweepCSV(strings.NewReader(input))
		if err != nil {
			return // rejected is fine; panicking is the bug being hunted
		}
		rendered := (&SweepReport{Cells: len(rows), Replicates: 0, Rows: rows}).CSV()
		rows2, err := ParseSweepCSV(strings.NewReader(rendered))
		if err != nil {
			t.Fatalf("re-parsing our own rendering failed: %v\ninput: %q\nrendered: %q", err, input, rendered)
		}
		rendered2 := (&SweepReport{Cells: len(rows2), Replicates: 0, Rows: rows2}).CSV()
		if rendered != rendered2 {
			t.Fatalf("render∘parse is not a fixed point:\nfirst:  %q\nsecond: %q", rendered, rendered2)
		}
	})
}

// FuzzParseSweepJSON: same contract for the JSON artifact.
func FuzzParseSweepJSON(f *testing.F) {
	rep := seedSweepCSV(f)
	data, err := rep.JSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
	f.Add(`{}`)
	f.Add(`{"cells": 1, "replicates": 2, "rows": [{"cell": 0, "topology": "ring:2"}]}`)
	f.Add(`{"cells": "one"}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"rows": [{"seed": -1}]}`)
	f.Add(``)
	f.Add(`{`)

	f.Fuzz(func(t *testing.T, input string) {
		rep, err := ParseSweepJSON([]byte(input))
		if err != nil {
			return
		}
		rendered, err := rep.JSON()
		if err != nil {
			t.Fatalf("re-rendering parsed JSON failed: %v\ninput: %q", err, input)
		}
		rep2, err := ParseSweepJSON(rendered)
		if err != nil {
			t.Fatalf("re-parsing our own rendering failed: %v\nrendered: %s", err, rendered)
		}
		rendered2, err := rep2.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(rendered) != string(rendered2) {
			t.Fatalf("render∘parse is not a fixed point:\nfirst:  %s\nsecond: %s", rendered, rendered2)
		}
	})
}

// TestParseSweepCSVTopologyColumn: the seed-corpus cases as a plain
// test, so the malformed-row behavior is exercised on every `go test`
// run, not only under `go test -fuzz`.
func TestParseSweepCSVTopologyColumn(t *testing.T) {
	rep := seedSweepCSV(t)
	rows, err := ParseSweepCSV(strings.NewReader(rep.CSV()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Topology != "complete" || rows[1].Topology != "random-regular:8" {
		t.Fatalf("round-trip lost the topology column: %+v", rows)
	}
	bad := []string{
		"", // no header
		"cell,scenario\n",
		"cell,scenario,engine,n,ell,seed,replicates,converged,success_rate,mean_rounds,median_rounds,p95_rounds,max_rounds,error\n", // pre-topology header
		"cell,scenario,engine,topology,n,ell,seed,replicates,converged,success_rate,mean_rounds,median_rounds,p95_rounds,max_rounds,error\n0,w,f,complete,64\n",
		"cell,scenario,engine,topology,n,ell,seed,replicates,converged,success_rate,mean_rounds,median_rounds,p95_rounds,max_rounds,error\nzero,w,f,complete,64,18,1,2,2,1,4,4,4,4,\n",
	}
	for _, input := range bad {
		if _, err := ParseSweepCSV(strings.NewReader(input)); err == nil {
			t.Errorf("ParseSweepCSV accepted %q", input)
		}
	}
}
