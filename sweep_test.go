package passivespread

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"passivespread/internal/experiment"
	"passivespread/internal/rng"
)

// smallSweepSpec is a quick multi-axis grid shared by several tests:
// 2 scenarios × 2 engines × 2 ns × 1 ℓ = 8 cells.
func smallSweepSpec(workers int) SweepSpec {
	return SweepSpec{
		Ns:         []int{64, 128},
		Engines:    []EngineKind{EngineAgentFast, EngineAggregate},
		Scenarios:  mustScenarios("worst-case", "half-split"),
		Replicates: 4,
		Workers:    workers,
		Seed:       99,
	}
}

func mustScenarios(names ...string) []Scenario {
	out := make([]Scenario, len(names))
	for i, name := range names {
		sc, ok := ScenarioByName(name)
		if !ok {
			panic("scenario not registered: " + name)
		}
		out[i] = sc
	}
	return out
}

func runSweep(t *testing.T, spec SweepSpec) *SweepReport {
	t.Helper()
	sweep, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// TestSweepDeterministicAcrossWorkers is the heart of the seed contract:
// the rendered CSV must be byte-identical at every shared-pool size.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	spec1 := smallSweepSpec(1)
	spec8 := smallSweepSpec(8)
	csv1 := runSweep(t, spec1).CSV()
	csv8 := runSweep(t, spec8).CSV()
	if csv1 != csv8 {
		t.Fatalf("CSV differs between 1 and 8 workers:\n--- workers=1\n%s--- workers=8\n%s", csv1, csv8)
	}
}

// TestSweepCellSeedContract verifies that each cell's results derive
// from (root seed, cell index) alone: a standalone Study seeded with
// StreamSeed(root, index) reproduces the cell's row exactly, regardless
// of where in the grid the cell sits or how the sweep was scheduled.
func TestSweepCellSeedContract(t *testing.T) {
	spec := smallSweepSpec(3)
	sweep, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells := sweep.Cells()
	for i, cell := range cells {
		if cell.Index != i {
			t.Fatalf("cell %d has Index %d", i, cell.Index)
		}
		if want := rng.StreamSeed(spec.Seed, uint64(i)); cell.Seed != want {
			t.Fatalf("cell %d seed %d, want StreamSeed(root, %d) = %d", i, cell.Seed, i, want)
		}
	}
	report, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Reproduce cell 5 (half-split would be cell 4+; pick one mid-grid)
	// as a standalone Study from its derived seed.
	row := report.Rows[5]
	cell := cells[5]
	sc, ok := ScenarioByName(cell.Scenario)
	if !ok {
		t.Fatalf("scenario %q not registered", cell.Scenario)
	}
	var kind EngineKind = -2
	for _, k := range []EngineKind{EngineAgentFast, EngineAggregate} {
		if EngineName(k) == cell.Engine {
			kind = k
		}
	}
	if kind == -2 {
		t.Fatalf("unexpected engine %q", cell.Engine)
	}
	cfg := sc.config(cell.N, cell.Ell, DefaultMaxRounds(cell.N), kind, nil, 0, cell.Seed)
	study, err := NewStudy(StudySpec{Replicates: spec.Replicates, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	conv := rep.Convergence
	if row.Converged != conv.Converged || row.Mean != conv.Rounds.Mean ||
		row.Median != conv.Rounds.Median || row.P95 != conv.Rounds.P95 || row.Max != conv.Rounds.Max {
		t.Fatalf("cell row %+v does not match standalone study %+v", row, conv)
	}
}

// TestSweepChainCellMatchesStudy checks the chain pseudo-engine path of
// the same contract.
func TestSweepChainCellMatchesStudy(t *testing.T) {
	spec := SweepSpec{
		Ns:         []int{1 << 12, 1 << 14},
		Engines:    []EngineKind{EngineMarkovChain},
		Replicates: 8,
		Seed:       5,
	}
	report := runSweep(t, spec)
	row := report.Rows[1]
	study, err := NewStudy(StudySpec{
		Replicates: 8,
		Options:    Options{N: 1 << 14, Seed: rng.StreamSeed(5, 1), Engine: EngineMarkovChain},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := study.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if row.Median != rep.Convergence.Rounds.Median || row.Converged != rep.Convergence.Converged {
		t.Fatalf("chain cell row %+v does not match study %+v", row, rep.Convergence)
	}
}

// TestSweepCancellationPartialRows cancels mid-grid and checks that the
// stream closes cleanly with a subset of valid rows and that Run reports
// ctx.Err() alongside the completed prefix.
func TestSweepCancellationPartialRows(t *testing.T) {
	spec := SweepSpec{
		Ns:         []int{256, 512, 1024, 2048},
		Scenarios:  mustScenarios("worst-case", "uniform"),
		Replicates: 6,
		Workers:    2,
		Seed:       3,
	}
	sweep, err := NewSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var got []SweepRow
	for row := range sweep.Stream(ctx) {
		got = append(got, row)
		if len(got) == 2 {
			cancel()
		}
	}
	cancel()
	if len(got) < 2 || len(got) >= len(sweep.Cells()) {
		t.Fatalf("got %d rows after cancelling at 2, want a strict subset ≥ 2 of %d cells", len(got), len(sweep.Cells()))
	}
	for _, row := range got {
		if row.Err != "" {
			t.Fatalf("cancelled sweep delivered an error row: %+v", row)
		}
		if row.Replicates != spec.Replicates {
			t.Fatalf("partial row with %d replicates: %+v", row.Replicates, row)
		}
	}

	// Run under an already-expiring context: partial rows plus ctx.Err().
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	rep, err := sweep.Run(ctx2)
	if err == nil {
		// The grid can legitimately finish within the deadline on a fast
		// machine; only the error/rows pairing is asserted.
		if len(rep.Rows) != len(sweep.Cells()) {
			t.Fatalf("nil error with %d of %d rows", len(rep.Rows), len(sweep.Cells()))
		}
	} else {
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Run error = %v, want deadline", err)
		}
		if len(rep.Rows) >= len(sweep.Cells()) {
			t.Fatalf("deadline error with all %d rows present", len(rep.Rows))
		}
	}
}

// TestSweepCSVRoundTrip renders and re-parses the CSV artifact.
func TestSweepCSVRoundTrip(t *testing.T) {
	report := runSweep(t, smallSweepSpec(0))
	rows, err := ParseSweepCSV(strings.NewReader(report.CSV()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, report.Rows) {
		t.Fatalf("CSV round trip:\ngot  %+v\nwant %+v", rows, report.Rows)
	}
	var buf bytes.Buffer
	if err := report.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != report.CSV() {
		t.Fatal("WriteCSV and CSV disagree")
	}
}

// TestSweepJSONRoundTrip renders and re-parses the JSON artifact.
func TestSweepJSONRoundTrip(t *testing.T) {
	report := runSweep(t, smallSweepSpec(0))
	data, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSweepJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, report) {
		t.Fatalf("JSON round trip:\ngot  %+v\nwant %+v", back, report)
	}
}

// TestSweepCustomRunnerScenarios runs the clocked-baseline scenarios,
// which execute through a ScenarioRunner rather than a Study.
func TestSweepCustomRunnerScenarios(t *testing.T) {
	report := runSweep(t, SweepSpec{
		Ns:         []int{64},
		Scenarios:  mustScenarios("clocked-shared", "clocked-local"),
		Replicates: 3,
		Seed:       11,
	})
	if len(report.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(report.Rows))
	}
	for _, row := range report.Rows {
		if row.Engine != row.Scenario {
			t.Fatalf("custom-runner row engine %q, want label %q", row.Engine, row.Scenario)
		}
	}
	// The shared-clock baseline is the paper's O(log n) upper bound: it
	// must converge from the worst case.
	if report.Rows[0].Converged != 3 {
		t.Fatalf("clocked-shared converged %d/3: %+v", report.Rows[0].Converged, report.Rows[0])
	}

	// Custom-runner rows are deterministic across worker counts too.
	again := runSweep(t, SweepSpec{
		Ns:         []int{64},
		Scenarios:  mustScenarios("clocked-shared", "clocked-local"),
		Replicates: 3,
		Workers:    4,
		Seed:       11,
	})
	if !reflect.DeepEqual(again.Rows, report.Rows) {
		t.Fatalf("custom-runner rows differ across worker counts")
	}
}

// TestSweepAsyncScenario exercises the sequential-activation runner at a
// tiny scale (its convergence is a documented negative result; only the
// plumbing is asserted).
func TestSweepAsyncScenario(t *testing.T) {
	report := runSweep(t, SweepSpec{
		Ns:         []int{32},
		Scenarios:  mustScenarios("async"),
		Replicates: 2,
		Seed:       1,
		MaxRounds:  20,
	})
	row := report.Rows[0]
	if row.Engine != "async" || row.Replicates != 2 {
		t.Fatalf("async row: %+v", row)
	}
}

func TestNewSweepValidation(t *testing.T) {
	base := func() SweepSpec {
		return SweepSpec{Ns: []int{64}, Replicates: 2}
	}
	cases := []struct {
		name   string
		mutate func(*SweepSpec)
	}{
		{"no replicates", func(s *SweepSpec) { s.Replicates = 0 }},
		{"negative workers", func(s *SweepSpec) { s.Workers = -1 }},
		{"empty ns", func(s *SweepSpec) { s.Ns = nil }},
		{"tiny n", func(s *SweepSpec) { s.Ns = []int{1} }},
		{"duplicate ns", func(s *SweepSpec) { s.Ns = []int{64, 64} }},
		{"negative ell", func(s *SweepSpec) { s.Ells = []int{-1} }},
		{"negative C", func(s *SweepSpec) { s.C = -1 }},
		{"duplicate ells", func(s *SweepSpec) { s.Ells = []int{4, 4} }},
		{"duplicate engines", func(s *SweepSpec) { s.Engines = []EngineKind{EngineAgentFast, EngineAgentFast} }},
		{"duplicate scenarios", func(s *SweepSpec) { s.Scenarios = mustScenarios("uniform", "uniform") }},
		{"unnamed scenario", func(s *SweepSpec) { s.Scenarios = []Scenario{{}} }},
		{"runner × engine axis", func(s *SweepSpec) {
			s.Scenarios = mustScenarios("async")
			s.Engines = []EngineKind{EngineAgentFast, EngineAggregate}
		}},
		{"chain × uniform init", func(s *SweepSpec) {
			s.Scenarios = mustScenarios("uniform")
			s.Engines = []EngineKind{EngineMarkovChain}
		}},
		{"chain × noisy", func(s *SweepSpec) {
			s.Scenarios = mustScenarios("noisy")
			s.Engines = []EngineKind{EngineMarkovChain}
		}},
	}
	for _, tc := range cases {
		spec := base()
		tc.mutate(&spec)
		if _, err := NewSweep(spec); err == nil {
			t.Errorf("%s: NewSweep accepted %+v", tc.name, spec)
		} else if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: error %v does not wrap ErrInvalidOptions", tc.name, err)
		}
	}
	if _, err := NewSweep(base()); err != nil {
		t.Fatalf("base spec rejected: %v", err)
	}
}

// TestSweepScenarioAxes runs one cell of every sync built-in scenario at
// a small scale: the whole registry must at least execute.
func TestSweepScenarioAxes(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario axis takes seconds; skipped in -short")
	}
	var sync []Scenario
	for _, sc := range Scenarios() {
		if sc.Run == nil {
			sync = append(sync, sc)
		}
	}
	report := runSweep(t, SweepSpec{
		Ns:         []int{128},
		Scenarios:  sync,
		Replicates: 2,
		Seed:       17,
		MaxRounds:  600, // keeps the non-converging voter control bounded
	})
	if len(report.Rows) != len(sync) {
		t.Fatalf("got %d rows, want %d", len(report.Rows), len(sync))
	}
	for _, row := range report.Rows {
		if row.Err != "" {
			t.Errorf("scenario %s failed: %s", row.Scenario, row.Err)
		}
	}
}

// TestRootExperimentRegistry verifies that the sweep-based experiments
// registered by this package complete the harness registry (E01–E23).
func TestRootExperimentRegistry(t *testing.T) {
	all := Experiments()
	if len(all) != 23 {
		t.Fatalf("root registry has %d experiments, want 23", len(all))
	}
	for _, id := range []string{"E01", "E13", "E23"} {
		if _, ok := LookupExperiment(id); !ok {
			t.Fatalf("sweep-based experiment %s not registered", id)
		}
	}
}

// TestSweepExperimentsSmoke executes the ported scaling experiments end
// to end at the smoke scale.
func TestSweepExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke experiments take seconds; skipped in -short")
	}
	for _, id := range []string{"E01", "E13", "E23"} {
		e, ok := LookupExperiment(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		rep, err := e.Run(experiment.Config{Seed: 42, Smoke: true})
		if err != nil {
			t.Fatalf("%s failed: %v", id, err)
		}
		if len(rep.Sections) == 0 {
			t.Fatalf("%s produced no sections", id)
		}
	}
}
