package passivespread

import (
	"passivespread/internal/adversary"
	"passivespread/internal/clocked"
	"passivespread/internal/domain"
	"passivespread/internal/dynamics"
	"passivespread/internal/stats"
	"passivespread/internal/tablefmt"
	"passivespread/internal/trace"
)

// This file re-exports the analysis and presentation toolkit that the
// CLI tools and examples build on, so that nothing outside this module
// root ever imports an internal package: the paper's state-space
// geometry (domain), trajectory annotation (trace), baseline protocols
// (dynamics, clocked), statistics, and table rendering.

// State-space geometry of the paper's analysis (Figures 1a and 2).
type (
	// DomainParams fixes the population-dependent constants of the
	// domain partition; methods classify and render the grid.
	DomainParams = domain.Params
	// DomainKind is one colored domain of Figure 1a.
	DomainKind = domain.Kind
	// DomainArea is one A/B/C area of the Yellow′ box (Figure 2).
	DomainArea = domain.Area
)

// DefaultDelta is the paper's default δ margin.
const DefaultDelta = domain.DefaultDelta

// NewDomainParams returns the partition parameters for population n with
// the default δ.
func NewDomainParams(n int) DomainParams { return domain.NewParams(n) }

// DomainKinds lists every domain kind in rendering order.
func DomainKinds() []DomainKind { return domain.Kinds() }

// Trajectory annotation: each round of a trajectory classified by the
// domain of its (x_t, x_{t+1}) state.
type (
	// Trace is a domain-annotated trajectory.
	Trace = trace.Trace
	// TracePoint is one annotated round.
	TracePoint = trace.Point
)

// TraceFromTrajectory annotates a recorded trajectory (x_0 … x_T) with
// the domain geometry; x0 is the emulated round-(−1) fraction.
func TraceFromTrajectory(p DomainParams, x0 float64, xs []float64) *Trace {
	return trace.FromTrajectory(p, x0, xs)
}

// GridStart places a simulation at a chosen grid point (x_t, x_{t+1}) by
// combining a fraction initializer with seeded agent memories.
type GridStart = adversary.GridStart

// Baseline protocols from the paper's related-work comparisons.

// Voter returns the voter-model dynamics (adopt one sampled opinion).
func Voter() Protocol { return dynamics.Voter{} }

// ThreeMajority returns the 3-majority dynamics.
func ThreeMajority() Protocol { return dynamics.ThreeMajority{} }

// UndecidedState returns the undecided-state dynamics.
func UndecidedState() Protocol { return dynamics.Undecided{} }

// The Section 1.4 clocked phase-protocol baseline.
type (
	// ClockedConfig configures a clocked baseline run.
	ClockedConfig = clocked.Config
	// ClockedResult reports a clocked baseline outcome.
	ClockedResult = clocked.Result
	// ClockedMode selects the clock model.
	ClockedMode = clocked.Mode
)

// Clock models of the clocked baseline.
const (
	ModeSharedClock = clocked.ModeSharedClock
	ModeLocalClocks = clocked.ModeLocalClocks
)

// RunClocked executes the clocked phase-protocol baseline.
func RunClocked(cfg ClockedConfig) (ClockedResult, error) { return clocked.Run(cfg) }

// Statistics used when post-processing study results.

// PolylogFit reports a t ≈ a·(ln n)^b least-squares fit.
type PolylogFit = stats.PolylogFit

// Summarize computes descriptive statistics of a sample.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// FitPolylog fits times[i] ≈ a·(ln ns[i])^b — the Theorem 1 shape check.
func FitPolylog(ns []int, times []float64) PolylogFit { return stats.FitPolylog(ns, times) }

// Table renders aligned text / Markdown / CSV tables.
type Table = tablefmt.Table

// NewTable returns an empty table with the given header.
func NewTable(header ...string) *Table { return tablefmt.New(header...) }
